// Micro-benchmarks of the simulation substrate itself (google-benchmark):
// host-side throughput of the deterministic conductor, the simulated MPI
// point-to-point path, collectives, RMA, and the storage model. These
// bound the wall-clock cost of the paper-reproduction sweeps and act as
// regression guards for the simulator's hot paths.

#include <benchmark/benchmark.h>

#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "sched/sync.hpp"

namespace sim = tpio::sim;
namespace net = tpio::net;
namespace smpi = tpio::smpi;
namespace pfs = tpio::pfs;

namespace {

net::FabricParams flat_fabric() {
  net::FabricParams p;
  p.inter_bw = 3e9;
  p.intra_bw = 8e9;
  p.inter_latency = 1800;
  p.intra_latency = 400;
  return p;
}

/// Baton handoff rate: two ranks alternating actions.
void BM_ConductorPingPongActions(benchmark::State& state) {
  const auto iters = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Conductor c(2);
    c.run([&](sim::RankCtx& ctx) {
      for (int i = 0; i < iters; ++i) {
        ctx.advance(1);
        ctx.act([] {});
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * iters * 2);
}
BENCHMARK(BM_ConductorPingPongActions)->Arg(1000);

/// Event chain: rank i wakes rank i+1 — measures block/wake cost.
void BM_ConductorEventChain(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    sim::Conductor c(n);
    std::vector<sim::EventPtr> evs;
    for (int i = 0; i < n; ++i) evs.push_back(std::make_shared<sim::Event>());
    c.run([&](sim::RankCtx& ctx) {
      const int r = ctx.rank();
      if (r > 0) ctx.wait_event(*evs[static_cast<std::size_t>(r - 1)]);
      ctx.advance(5);
      ctx.act([&] { ctx.complete(*evs[static_cast<std::size_t>(r)], ctx.now()); });
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConductorEventChain)->Arg(64)->Arg(256);

void BM_SyncPointRounds(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int rounds = 50;
  for (auto _ : state) {
    sim::Conductor c(n);
    sim::SyncPoint sp(n);
    c.run([&](sim::RankCtx& ctx) {
      for (int i = 0; i < rounds; ++i) {
        ctx.advance(static_cast<sim::Duration>(ctx.rank() % 7 + 1));
        sp.arrive(ctx);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * rounds * n);
}
BENCHMARK(BM_SyncPointRounds)->Arg(16)->Arg(64);

void BM_MpiEagerPingPong(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  const int rounds = 50;
  for (auto _ : state) {
    net::Topology topo{2, 1};
    net::Fabric fabric(topo, flat_fabric());
    smpi::Machine machine(fabric, smpi::MpiParams{});
    sim::Conductor c(2);
    c.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      std::vector<std::byte> buf(bytes);
      for (int i = 0; i < rounds; ++i) {
        if (mpi.rank() == 0) {
          mpi.send(1, i, buf);
          mpi.recv(1, i, buf);
        } else {
          mpi.recv(0, i, buf);
          mpi.send(0, i, buf);
        }
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * rounds * 2 *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MpiEagerPingPong)->Arg(1024)->Arg(64 * 1024);

void BM_MpiIncast(benchmark::State& state) {
  const int senders = static_cast<int>(state.range(0));
  const std::size_t bytes = 64 * 1024;
  for (auto _ : state) {
    net::Topology topo{senders + 1, 1};
    net::Fabric fabric(topo, flat_fabric());
    smpi::Machine machine(fabric, smpi::MpiParams{});
    sim::Conductor c(senders + 1);
    c.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      std::vector<std::byte> buf(bytes);
      if (mpi.rank() == 0) {
        std::vector<std::vector<std::byte>> bufs(
            static_cast<std::size_t>(senders), std::vector<std::byte>(bytes));
        std::vector<smpi::Request> reqs;
        for (int s = 1; s <= senders; ++s) {
          reqs.push_back(mpi.irecv(s, 0, bufs[static_cast<std::size_t>(s - 1)]));
        }
        mpi.waitall(reqs);
      } else {
        mpi.send(0, 0, buf);
      }
    });
  }
  state.SetBytesProcessed(state.iterations() * senders *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_MpiIncast)->Arg(16)->Arg(64);

void BM_RmaFencePutEpochs(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const std::size_t bytes = 16 * 1024;
  const int epochs = 10;
  for (auto _ : state) {
    net::Topology topo{n, 1};
    net::Fabric fabric(topo, flat_fabric());
    smpi::Machine machine(fabric, smpi::MpiParams{});
    sim::Conductor c(n);
    c.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      auto win = mpi.win_allocate(
          mpi.rank() == 0 ? bytes * static_cast<std::size_t>(n) : 0);
      std::vector<std::byte> buf(bytes);
      for (int e = 0; e < epochs; ++e) {
        mpi.win_fence(*win);
        if (mpi.rank() != 0) {
          mpi.put(*win, 0, static_cast<std::size_t>(mpi.rank()) * bytes, buf);
        }
        mpi.win_fence(*win);
      }
    });
  }
  state.SetItemsProcessed(state.iterations() * epochs * (n - 1));
}
BENCHMARK(BM_RmaFencePutEpochs)->Arg(16);

void BM_PfsStripedWrite(benchmark::State& state) {
  const auto bytes = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    pfs::PfsParams p;
    p.num_targets = 16;
    p.stripe_size = 128 * 1024;
    p.target_bw = 1e9;
    p.client_bw = 3e9;
    pfs::StorageSystem sys(p, nullptr);
    auto f = sys.create("bench", pfs::Integrity::None);
    sim::Conductor c(1);
    std::vector<std::byte> data(bytes);
    c.run([&](sim::RankCtx& ctx) { f->write_at(ctx, 0, 0, data); });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PfsStripedWrite)->Arg(1 << 20)->Arg(8 << 20);

void BM_PfsDigestRecording(benchmark::State& state) {
  const std::size_t bytes = 1 << 20;
  for (auto _ : state) {
    pfs::PfsParams p;
    p.stripe_size = 128 * 1024;
    pfs::StorageSystem sys(p, nullptr);
    auto f = sys.create("bench", pfs::Integrity::Digest);
    sim::Conductor c(1);
    std::vector<std::byte> data(bytes);
    c.run([&](sim::RankCtx& ctx) { f->write_at(ctx, 0, 0, data); });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_PfsDigestRecording);

}  // namespace

BENCHMARK_MAIN();
