// Multi-tenant contention study: what happens to the paper's Table-I
// story when the collective write shares the PFS with other jobs?
//
//   A. Lone-tenant isolation: a single tenant on the shared-system runner
//      is bit-identical to the solo runner, per scheduler — the tenancy
//      layer is free when unused.
//   B. Winner table, idle vs contended: the full (quick-grid) overlap
//      sweep next to the same sweep with 2 same-shape NoOverlap background
//      writers per cell. Reports every cell where the winning scheduler
//      flips — the paper's ranking was measured on dedicated nodes with a
//      shared PFS, so contention is exactly where it is most fragile.
//   C. Determinism: the contended tables are bit-identical at --jobs 1
//      and --jobs 8.
//   D. QoS disciplines: one 3-tenant mix under fifo / fair / priority;
//      strict priority must never make the top tenant slower than FIFO.
//
// Self-checks (exit 1 on failure):
//   - lone-tenant bit-identity for all five schedulers;
//   - contended tables identical across worker counts;
//   - priority top tenant <= its FIFO turnaround;
//   - the winner-flip table prints either the flipped cells or an explicit
//     "no flip" note (both are results; neither fails the bench).
//
//   ./build/bench/fig_contention [--quick]

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"
#include "simbase/rng.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;

namespace {

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

xp::RunSpec base_spec() {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_tile1m(1, 2);
  spec.nprocs = 16;
  spec.options.cb_size = xp::kCbSize;
  spec.verify = true;
  return spec;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// The timing/shape fields two runs must agree on to count as
/// bit-identical (mirrors the differential suite's fingerprint).
bool same_run(const xp::RunResult& a, const xp::RunResult& b) {
  return a.arrival == b.arrival && a.completion == b.completion &&
         a.makespan == b.makespan && a.bytes == b.bytes &&
         a.aggregators == b.aggregators && a.cycles == b.cycles &&
         a.inter_node_bytes == b.inter_node_bytes &&
         a.inter_node_messages == b.inter_node_messages &&
         a.intra_node_bytes == b.intra_node_bytes &&
         a.io_error == b.io_error && a.verify_error == b.verify_error;
}

bool same_tables(const std::vector<xp::OverlapSeries>& a,
                 const std::vector<xp::OverlapSeries>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].min_ms != b[i].min_ms) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr, "usage: fig_contention [--quick]\n");
    return 2;
  }
  const int reps = args.quick ? 1 : 2;
  bool ok = true;

  // -------------------------------------------------------------------------
  // A. Lone-tenant isolation
  // -------------------------------------------------------------------------
  std::puts("== A. Lone tenant on the shared system vs the solo runner ==\n");
  for (coll::OverlapMode m : kModes) {
    xp::RunSpec spec = base_spec();
    spec.options.overlap = m;
    spec.seed = sim::Rng::derive_seed(11, static_cast<std::uint64_t>(m));
    const xp::RunResult solo = xp::execute(spec);
    xp::MultiRunSpec ms;
    ms.tenants.push_back(spec);
    ms.seed = spec.seed;
    const xp::MultiRunResult multi = xp::execute_multi(ms);
    if (!same_run(solo, multi.tenants[0].run)) {
      std::printf("FAIL: lone tenant differs from solo run (%s)\n",
                  coll::to_string(m));
      ok = false;
    }
  }
  if (ok) {
    std::puts("self-check A: lone tenant bit-identical to the solo runner, "
              "all five schedulers\n");
  }

  // -------------------------------------------------------------------------
  // B. Winner table: idle system vs 2 background writers
  // -------------------------------------------------------------------------
  const xp::Platform plat = xp::ibex();
  const coll::Options base;
  xp::ExecOptions e8;
  e8.jobs = 8;
  xp::ContentionConfig cc;
  cc.neighbors = 2;
  cc.qos = pfs::QosPolicy::Fifo;

  const std::vector<xp::OverlapSeries> idle =
      xp::run_overlap_sweep(plat, base, reps, 0xC57, /*quick=*/true, e8);
  const std::vector<xp::OverlapSeries> contended = xp::run_contended_sweep(
      plat, base, cc, reps, 0xC57, /*quick=*/true, e8);

  std::printf("== B. Table-I winners, idle vs contended (2 NoOverlap "
              "neighbors, fifo; min over %d reps) ==\n\n", reps);
  xp::Table winners({"benchmark", "size", "procs", "idle winner",
                     "contended winner", "idle best(ms)",
                     "contended best(ms)"});
  int flips = 0;
  for (std::size_t i = 0; i < idle.size() && i < contended.size(); ++i) {
    const coll::OverlapMode wi = idle[i].winner();
    const coll::OverlapMode wc = contended[i].winner();
    if (wi != wc) ++flips;
    winners.add_row({wl::to_string(idle[i].kind), idle[i].size_label,
                     std::to_string(idle[i].procs),
                     coll::to_string(wi),
                     std::string(coll::to_string(wc)) + (wi != wc ? " *" : ""),
                     fmt3(idle[i].min_ms.at(wi)),
                     fmt3(contended[i].min_ms.at(wc))});
  }
  winners.print();
  if (flips > 0) {
    std::printf("\nresult B: contention flips the Table-I winner in %d of "
                "%zu cells (*)\n\n", flips, idle.size());
  } else {
    std::printf("\nresult B: no winner flip at this contention level — the "
                "overlap ranking is robust to %d same-shape neighbors on "
                "this grid\n\n", cc.neighbors);
  }

  // -------------------------------------------------------------------------
  // C. Worker-count determinism of the contended sweep
  // -------------------------------------------------------------------------
  xp::ExecOptions e1;
  e1.jobs = 1;
  const std::vector<xp::OverlapSeries> serial = xp::run_contended_sweep(
      plat, base, cc, reps, 0xC57, /*quick=*/true, e1);
  if (!same_tables(contended, serial)) {
    std::puts("FAIL: contended tables differ between --jobs 1 and --jobs 8");
    ok = false;
  } else {
    std::puts("self-check C: contended tables bit-identical at --jobs 1 "
              "and --jobs 8");
  }

  // -------------------------------------------------------------------------
  // D. QoS disciplines on a 3-tenant mix
  // -------------------------------------------------------------------------
  std::puts("\n== D. QoS disciplines, 3 tenants (tenant 0 write-comm-2, "
            "two NoOverlap neighbors, 0.5 ms arrivals) ==\n");
  xp::MultiRunSpec mix;
  {
    xp::RunSpec measured = base_spec();
    measured.options.overlap = coll::OverlapMode::WriteComm2;
    xp::RunSpec neighbor = measured;
    neighbor.options.overlap = coll::OverlapMode::None;
    mix.tenants = {measured, neighbor, neighbor};
    mix.arrival.model = xp::ArrivalModel::Fixed;
    mix.arrival.gap = sim::milliseconds(0.5);
    mix.seed = 29;
  }
  xp::Table qos_table({"policy", "t0 turnaround(ms)", "t0 slowdown",
                       "t0 cross-wait(ms)", "peak queue", "makespan(ms)"});
  sim::Duration fifo_t0 = 0, prio_t0 = 0;
  for (pfs::QosPolicy p : {pfs::QosPolicy::Fifo, pfs::QosPolicy::FairShare,
                           pfs::QosPolicy::Priority}) {
    xp::MultiRunSpec ms = mix;
    ms.qos = p;
    if (p == pfs::QosPolicy::Priority) ms.priorities = {1, 0, 0};
    const xp::MultiRunResult r = xp::execute_multi(ms, /*with_baselines=*/true);
    for (const auto& t : r.tenants) {
      if (!t.run.verify_error.empty()) {
        std::printf("FAIL: verification under %s: %s\n", pfs::to_string(p),
                    t.run.verify_error.c_str());
        ok = false;
      }
    }
    const auto& t0 = r.tenants[0];
    qos_table.add_row({pfs::to_string(p), fmt3(sim::to_millis(t0.run.makespan)),
                       fmt3(t0.slowdown) + "x",
                       fmt3(sim::to_millis(t0.qos.cross_wait)),
                       std::to_string(t0.qos.peak_active),
                       fmt3(sim::to_millis(r.makespan))});
    if (p == pfs::QosPolicy::Fifo) fifo_t0 = t0.run.makespan;
    if (p == pfs::QosPolicy::Priority) prio_t0 = t0.run.makespan;
  }
  qos_table.print();
  if (prio_t0 > fifo_t0) {
    std::puts("\nFAIL: strict priority made the top tenant slower than FIFO");
    ok = false;
  } else {
    std::puts("\nself-check D: priority top tenant never slower than FIFO");
  }

  if (ok) std::puts("\nOK: contention acceptance criteria hold");
  return ok ? 0 : 1;
}
