// Adaptive scheduler selection (OverlapMode::Auto) vs the per-series
// oracle: on the quick Table I grid over crill, ibex, and the lustre
// (pathological-aio) profile, run all five fixed schedulers plus Auto and
// compare Auto's measured time against
//   oracle = min over the five fixed schedulers  (perfect hindsight)
//   worst  = max over the five fixed schedulers  (the cost of guessing
//            wrong with a static mca parameter)
//
// Auto pays for its probes only once per configuration: a shared tuning
// cache warm-starts repetition 2+, and the series minimum (the paper's
// methodology) therefore reflects the chosen scheduler at full speed.
//
// Self-check (exit 1 on failure): Auto within 5% of the oracle in >= 80%
// of series, and never slower than the worst fixed scheduler (modulo a 2%
// allowance for the columns' independent noise seeds).
//
//   ./build/bench/fig_auto_selection [--quick] [--jobs N] [--progress]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;

namespace {

constexpr coll::OverlapMode kFixed[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: fig_auto_selection [--quick] [--jobs N] "
                 "[--progress]\n");
    return 2;
  }
  // The acceptance grid is the quick one either way. Six repetitions even
  // in --quick mode: Auto's first rep is the cold probe run, so its series
  // minimum is a min over reps-1 warm samples while every fixed column
  // gets all reps — fewer repetitions would stack the noise statistics
  // against Auto rather than measure its decision (on the noisiest series
  // the min needs ~5 warm draws to converge to the chosen scheduler's own
  // column minimum).
  const int reps = 6;

  int series_count = 0, within_5pct = 0, beats_worst = 0, chose_oracle = 0;
  double worst_excess = 0.0;
  std::string worst_label;

  std::printf(
      "== Adaptive selection vs per-series oracle (quick grid, %d reps) "
      "==\n\n",
      reps);
  for (const auto& platform : {xp::crill(), xp::ibex(), xp::lustre()}) {
    // Fresh tuning cache per platform: repetition 1 of every Auto series
    // probes cold and seeds the cache; later repetitions warm-start.
    const std::string cache =
        "fig_auto_cache_" + platform.name + ".json";
    std::remove(cache.c_str());
    coll::Options base;
    base.tuning_cache = cache;
    const auto sweep = xp::run_overlap_sweep(platform, base, reps, 0xA07,
                                             /*quick=*/true, args.exec,
                                             /*include_auto=*/true);
    std::remove(cache.c_str());

    xp::Table table({"series", "oracle", "oracle(ms)", "auto(ms)", "worst(ms)",
                     "vs oracle"});
    for (const auto& s : sweep) {
      const double auto_ms = s.min_ms.at(coll::OverlapMode::Auto);
      double oracle = 0.0, worst = 0.0;
      coll::OverlapMode oracle_mode = coll::OverlapMode::None;
      bool first = true;
      for (coll::OverlapMode m : kFixed) {
        const double ms = s.min_ms.at(m);
        if (first || ms < oracle) {
          oracle = ms;
          oracle_mode = m;
        }
        if (first || ms > worst) worst = ms;
        first = false;
      }
      const double excess = auto_ms / oracle - 1.0;
      ++series_count;
      if (auto_ms <= oracle * 1.05) ++within_5pct;
      // Every column runs under its own noise seeds (separate measurements
      // on the machine), so in a near-tie series Auto's draw can land a
      // hair past the worst column's minimum even when its *decision* is
      // within a percent of the oracle. 2% covers the platforms' run-to-run
      // sigma without masking a genuinely bad selection.
      if (auto_ms <= worst * 1.02) ++beats_worst;
      if (oracle_mode == s.winner()) ++chose_oracle;
      const std::string label = s.platform + "/" +
                                std::string(wl::to_string(s.kind)) + "/" +
                                s.size_label + "/p" + std::to_string(s.procs);
      if (excess > worst_excess) {
        worst_excess = excess;
        worst_label = label;
      }
      char o[32], a[32], w[32], x[32];
      std::snprintf(o, sizeof(o), "%.3f", oracle);
      std::snprintf(a, sizeof(a), "%.3f", auto_ms);
      std::snprintf(w, sizeof(w), "%.3f", worst);
      std::snprintf(x, sizeof(x), "%+.1f%%", excess * 100.0);
      table.add_row({label, coll::to_string(oracle_mode), o, a, w, x});
    }
    table.print();
    std::puts("");
  }

  const double within_rate =
      100.0 * within_5pct / std::max(series_count, 1);
  std::printf(
      "auto within 5%% of oracle: %d/%d series (%.0f%%); "
      "never slower than worst fixed: %d/%d; worst excess %+.1f%% (%s)\n",
      within_5pct, series_count, within_rate, beats_worst, series_count,
      worst_excess * 100.0, worst_label.c_str());

  bool ok = true;
  if (within_5pct * 5 < series_count * 4) {  // >= 80%
    std::printf("FAIL: auto within 5%% of oracle in under 80%% of series\n");
    ok = false;
  }
  if (beats_worst != series_count) {
    std::printf("FAIL: auto slower than the worst fixed scheduler "
                "(beyond the 2%% noise allowance) in %d series\n",
                series_count - beats_worst);
    ok = false;
  }
  if (ok) std::printf("OK: adaptive selection acceptance criteria hold\n");
  return ok ? 0 : 1;
}
