// Reproduces Figure 4 and the section IV-B analysis: with the
// Write-Comm-2 overlap scheduler, which data-transfer primitive for the
// shuffle phase (non-blocking two-sided, Put + Win_fence, Put +
// Win_lock/unlock + Barrier) is fastest?
//
// Shapes to reproduce:
//  - two-sided wins the overwhelming majority (~75%) of series overall;
//  - the exception is Tile I/O 256: active-target RMA (fence) wins a large
//    minority (~37%) of those series with average gains of 27-30%,
//    because origin-side placement removes the aggregator's per-element
//    unpack work;
//  - on crill, one-sided gets relatively better at larger process counts
//    (deep unexpected-message queues make two-sided matching costly).

#include <cstdio>
#include <map>
#include <string>

#include "harness/sweep.hpp"
#include "simbase/stats.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

constexpr coll::Transfer kTransfers[] = {
    coll::Transfer::TwoSided,
    coll::Transfer::OneSidedFence,
    coll::Transfer::OneSidedLock,
};

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: fig4_primitive_wins [--quick] [--jobs N] "
                 "[--progress]\n");
    return 2;
  }
  const bool quick = args.quick;
  const int reps = quick ? 2 : 3;

  std::vector<xp::PrimitiveSeries> all;
  for (const auto& platform : {xp::crill(), xp::ibex()}) {
    auto sweep =
        xp::run_primitive_sweep(platform, reps, 0xF164, quick, args.exec);
    all.insert(all.end(), sweep.begin(), sweep.end());
  }

  std::printf(
      "== Fig. 4: series won by each shuffle data-transfer primitive "
      "(Write-Comm-2 scheduler, %zu series) ==\n\n",
      all.size());

  std::map<wl::Kind, std::map<coll::Transfer, int>> wins;
  std::map<coll::Transfer, int> total;
  for (const auto& s : all) {
    wins[s.kind][s.winner()] += 1;
    total[s.winner()] += 1;
  }

  xp::Table table({"Benchmark", "two-sided", "one-sided fence",
                   "one-sided lock"});
  for (wl::Kind kind : {wl::Kind::Ior, wl::Kind::Tile256, wl::Kind::Tile1M}) {
    std::vector<std::string> row{wl::to_string(kind)};
    for (coll::Transfer t : kTransfers) row.push_back(std::to_string(wins[kind][t]));
    table.add_row(std::move(row));
  }
  {
    std::vector<std::string> row{"Total:"};
    for (coll::Transfer t : kTransfers) row.push_back(std::to_string(total[t]));
    table.add_row(std::move(row));
  }
  table.print();
  std::printf("\nPaper: two-sided fastest in ~75%% of cases overall; fence "
              "leads in ~37%% of Tile I/O 256 cases.\n");

  // Average fence gain on Tile 256 where it won (paper: ~27% crill, ~30%
  // ibex).
  for (const char* plat : {"crill", "ibex"}) {
    sim::Summary gain;
    for (const auto& s : all) {
      if (s.kind != wl::Kind::Tile256 || s.platform != plat) continue;
      const double imp = s.improvement(coll::Transfer::OneSidedFence);
      if (imp > 0) gain.add(imp);
    }
    if (!gain.empty()) {
      std::printf("Tile 256 on %s: fence beat two-sided by %s on average "
                  "when ahead (paper: 27-30%%).\n",
                  plat, xp::fmt_pct(gain.mean()).c_str());
    }
  }

  // Crossover with process count on crill (paper: one-sided benefits only
  // appear at >= 256 processes; scaled counts here, same trend).
  std::printf("\nOne-sided wins on crill by process count (paper: benefits "
              "only at larger scale):\n");
  std::map<int, std::pair<int, int>> by_procs;  // procs -> (one-sided, total)
  for (const auto& s : all) {
    if (s.platform != "crill") continue;
    auto& [osw, tot] = by_procs[s.procs];
    tot += 1;
    if (s.winner() != coll::Transfer::TwoSided) osw += 1;
  }
  for (const auto& [procs, counts] : by_procs) {
    std::printf("  %4d procs: one-sided fastest in %d/%d series\n", procs,
                counts.first, counts.second);
  }
  return 0;
}
