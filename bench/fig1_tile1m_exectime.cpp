// Reproduces Figure 1: execution time of the Tile I/O benchmark (1 MiB
// tile elements) for each overlap algorithm, on both clusters, at two
// process counts. The paper reports, for its 256/576-process points, ~0%/6%
// best-case improvement over no-overlap on crill and ~34%/17% on Ibex,
// with asynchronous-write algorithms leading.
//
// Scaling (see harness/sweep.hpp): geometry 1/8, process counts 64/144
// stand in for the paper's 256/576 (same nodes-per-aggregator and
// cycles-per-domain regime).

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "simbase/stats.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: fig1_tile1m_exectime [--quick] [--jobs N] "
                 "[--progress] [--paper-scale]\n");
    return 2;
  }
  const bool quick = args.quick;
  // --paper-scale runs the published 256/576-process points on the
  // unscaled platform presets (paper collective buffer, stripes, eager
  // limit); the default grid uses the 1/8-geometry stand-ins.
  const std::vector<int> proc_counts =
      args.paper_scale ? (quick ? std::vector<int>{256}
                                : std::vector<int>{256, 576})
                       : (quick ? std::vector<int>{16, 36}
                                : std::vector<int>{64, 144});
  const int reps = quick ? 2 : 3;

  std::puts("== Fig. 1: Tile I/O (1M elements) execution time per overlap "
            "algorithm ==");
  if (args.paper_scale) {
    std::puts("Paper (256/576 procs): crill ~0%/6% best improvement; "
              "ibex ~34%/17%. Unscaled geometry.\n");
  } else {
    std::puts("Paper (256/576 procs): crill ~0%/6% best improvement; "
              "ibex ~34%/17%. Scaled stand-ins: 64/144 procs.\n");
  }

  // Plan the (platform x procs x mode) grid, fan out over the executor,
  // then render rows in grid order. Seeds depend only on the grid point,
  // so any --jobs value prints the identical table.
  std::vector<xp::SweepJob> jobs;
  for (const auto& platform : {xp::crill(), xp::ibex()}) {
    const xp::Platform plat = xp::bench_platform(platform, args.paper_scale);
    for (int procs : proc_counts) {
      for (coll::OverlapMode mode : kModes) {
        xp::RunSpec spec;
        spec.platform = plat;
        spec.workload = wl::make_tile1m(1, 2);  // 2 MiB per process
        spec.nprocs = procs;
        spec.options.cb_size = xp::bench_cb_size(args.paper_scale);
        spec.options.overlap = mode;
        const std::uint64_t seed =
            0xF161000 + static_cast<std::uint64_t>(procs);
        jobs.push_back(xp::SweepJob{
            plat.name + "/p" + std::to_string(procs) + "/" +
                coll::to_string(mode),
            [spec, reps, seed] {
              return sim::to_millis(
                  xp::execute_series(spec, reps, seed).min_makespan());
            }});
      }
    }
  }
  const std::vector<double> min_ms = xp::run_jobs(jobs, args.exec);

  xp::Table table({"platform", "procs", "algorithm", "min time(ms)",
                   "vs no-overlap"});
  std::size_t i = 0;
  for (const auto& platform : {xp::crill(), xp::ibex()}) {
    const xp::Platform plat = xp::bench_platform(platform, args.paper_scale);
    for (int procs : proc_counts) {
      double base = 0.0;
      for (coll::OverlapMode mode : kModes) {
        const double t = min_ms[i++];
        if (mode == coll::OverlapMode::None) base = t;
        char tbuf[32], ibuf[32];
        std::snprintf(tbuf, sizeof(tbuf), "%.2f", t);
        std::snprintf(ibuf, sizeof(ibuf), "%+.1f%%", (base - t) / base * 100.0);
        table.add_row({plat.name, std::to_string(procs),
                       coll::to_string(mode), tbuf,
                       mode == coll::OverlapMode::None ? "--" : ibuf});
      }
    }
  }
  table.print();
  return 0;
}
