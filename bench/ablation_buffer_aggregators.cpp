// Ablation: the two structural tuning knobs of two-phase collective I/O —
// collective buffer size (number of internal cycles) and aggregator count
// (file-domain width / storage parallelism). DESIGN.md calls these out as
// the design choices whose values the paper inherits from OMPIO defaults
// (32 MiB buffer, automatic aggregator selection).

#include <cstdio>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

double run(const xp::Platform& plat, std::uint64_t cb, int aggs,
           coll::OverlapMode mode) {
  xp::RunSpec spec;
  spec.platform = plat;
  spec.workload = wl::make_tile1m(1, 2);
  spec.nprocs = 64;
  spec.options.cb_size = cb;
  spec.options.num_aggregators = aggs;
  spec.options.overlap = mode;
  spec.seed = 31;
  return sim::to_millis(xp::execute(spec).makespan);
}

}  // namespace

int main() {
  const xp::Platform plat = xp::scaled(xp::ibex());

  std::puts("== Ablation A: collective buffer size (Tile 1M, 64 procs, ibex) ==");
  xp::Table t1({"cb size", "no-overlap(ms)", "write-comm-2(ms)", "overlap gain"});
  for (std::uint64_t cb : {1ull << 20, 2ull << 20, 4ull << 20, 8ull << 20,
                           16ull << 20}) {
    const double none = run(plat, cb, 0, coll::OverlapMode::None);
    const double wc2 = run(plat, cb, 0, coll::OverlapMode::WriteComm2);
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%.2f", none);
    std::snprintf(b, sizeof(b), "%.2f", wc2);
    std::snprintf(c, sizeof(c), "%+.1f%%", (none - wc2) / none * 100);
    t1.add_row({sim::format_bytes(cb), a, b, c});
  }
  t1.print();
  std::puts("Small buffers -> many cycles -> per-op overheads dominate; huge "
            "buffers -> too few cycles to pipeline.\n");

  std::puts("== Ablation B: aggregator count (same job; 0 = automatic) ==");
  xp::Table t2({"aggregators", "no-overlap(ms)", "write-comm-2(ms)"});
  for (int aggs : {0, 1, 2, 4, 6, 12, 24}) {
    const double none = run(plat, xp::kCbSize, aggs, coll::OverlapMode::None);
    const double wc2 = run(plat, xp::kCbSize, aggs, coll::OverlapMode::WriteComm2);
    char a[32], b[32];
    std::snprintf(a, sizeof(a), "%.2f", none);
    std::snprintf(b, sizeof(b), "%.2f", wc2);
    t2.add_row({aggs == 0 ? "auto" : std::to_string(aggs), a, b});
  }
  t2.print();
  std::puts("Expected: too few aggregators serialize the file phase; too "
            "many per node contend for NICs and storage paths.");
  return 0;
}
