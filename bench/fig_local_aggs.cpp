// Extension figure: local aggregators per node (Kang et al.'s `co`) with
// pipelined intra-node gather/forward. Reproduces the shape of Kang's
// Table I: a (ppn x message-size) grid, each cell swept over
// co in {1, 2, 4, ppn}, on both cluster profiles. With co == 1 the node's
// single leader serializes ppn - 1 member receives before anything crosses
// the network; splitting the node into co lanes divides that chain and
// lets each lane's forward overlap the other lanes' gathers — the win
// grows with ppn and shrinks with message size (large messages are
// bandwidth-bound, not chain-bound).
//
// Reported per cell: write-comm-2 makespan, the intra-node gather
// critical path (max over ranks of gather time — the only bucket that
// means the same thing at every co, since co == 1 charges forwards to
// shuffle), and the pipelined-overlap fraction measured under the
// comm-overlap scheduler — the one whose call order lets a leader start
// the next lane gather between posting forwards and waiting on them
// (write-comm-2 posts and immediately waits, so its per-rank overlap is
// structurally zero). Self-checks: co == 1 must be bit-identical to the
// default single-leader run, and every co must land the same bytes.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

struct Cell {
  std::string platform;
  int ppn = 0;
  std::string size_label;
  std::vector<int> cos;
  std::vector<xp::RunResult> runs;  // parallel to cos
  int best_by_gather() const {
    int best = 0;
    for (std::size_t i = 1; i < runs.size(); ++i) {
      if (runs[i].gather_critical < runs[static_cast<std::size_t>(best)]
                                        .gather_critical) {
        best = static_cast<int>(i);
      }
    }
    return best;
  }
};

xp::Platform with_ppn(xp::Platform p, int ppn) {
  // Same fabric/storage physics, re-packed nodes: the grid varies how many
  // ranks share a node leader, exactly Kang's experiment.
  p.name += "-ppn" + std::to_string(ppn);
  p.max_nodes = p.max_nodes * p.procs_per_node / ppn;
  p.procs_per_node = ppn;
  return p;
}

xp::RunResult run(const xp::Platform& plat, const wl::Spec& workload,
                  int procs, int co, coll::OverlapMode overlap) {
  xp::RunSpec spec;
  spec.platform = plat;
  spec.workload = workload;
  spec.nprocs = procs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = overlap;
  spec.options.hierarchical = true;
  spec.options.leader_policy = coll::LeaderPolicy::Spread;
  spec.options.local_aggregators = co;
  spec.seed = 7;
  return xp::execute(spec);
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const int nodes = quick ? 4 : 6;
  bool ok = true;

  for (const char* pname : {"crill", "ibex"}) {
    const xp::Platform base =
        std::string(pname) == "crill" ? xp::scaled(xp::crill())
                                      : xp::scaled(xp::ibex());
    std::printf("== Local aggregators (co) grid: %s, write-comm-2, "
                "spread leaders, %d nodes ==\n",
                pname, nodes);
    xp::Table t({"ppn", "msg", "co", "time(ms)", "gather-crit(ms)",
                 "overlap(comm)", "vs co=1"});
    for (const int ppn : {4, 8, 16}) {
      const xp::Platform plat = with_ppn(base, ppn);
      const int procs = nodes * ppn;
      struct Size {
        const char* label;
        std::uint64_t bytes;
      };
      // Small transfers make the gather chain the bottleneck; large ones
      // are bandwidth-bound and bound the scheme's overhead.
      const std::vector<Size> sizes = quick
          ? std::vector<Size>{{"64K", 64ull << 10}, {"1M", 1ull << 20}}
          : std::vector<Size>{{"64K", 64ull << 10},
                              {"256K", 256ull << 10},
                              {"1M", 1ull << 20}};
      for (const Size& sz : sizes) {
        const wl::Spec workload = wl::make_ior(sz.bytes);
        std::vector<int> cos = {1, 2, 4};
        if (ppn > 4) cos.push_back(ppn);
        Cell cell;
        cell.platform = pname;
        cell.ppn = ppn;
        cell.size_label = sz.label;
        std::vector<double> comm_overlap;
        for (const int co : cos) {
          cell.cos.push_back(co);
          cell.runs.push_back(
              run(plat, workload, procs, co, coll::OverlapMode::WriteComm2));
          comm_overlap.push_back(
              run(plat, workload, procs, co, coll::OverlapMode::Comm)
                  .pipelined_overlap);
        }
        // Self-check: explicit co=1 equals the default single-leader run
        // bit-for-bit (the differential suite pins every field; the bench
        // spot-checks the timeline and traffic).
        xp::RunSpec def;
        def.platform = plat;
        def.workload = workload;
        def.nprocs = procs;
        def.options.cb_size = xp::kCbSize;
        def.options.overlap = coll::OverlapMode::WriteComm2;
        def.options.hierarchical = true;
        def.options.leader_policy = coll::LeaderPolicy::Spread;
        def.seed = 7;
        const xp::RunResult d = xp::execute(def);
        if (d.makespan != cell.runs[0].makespan ||
            d.inter_node_bytes != cell.runs[0].inter_node_bytes) {
          std::printf("FAIL: co=1 is not identical to the single-leader "
                      "run (%s ppn=%d %s)\n",
                      pname, ppn, sz.label);
          ok = false;
        }
        for (std::size_t i = 0; i < cell.runs.size(); ++i) {
          const xp::RunResult& r = cell.runs[i];
          if (r.bytes != cell.runs[0].bytes) {
            std::printf("FAIL: co=%d changed the written volume\n",
                        cell.cos[i]);
            ok = false;
          }
          const double base_ms = sim::to_millis(cell.runs[0].makespan);
          char gain[32];
          std::snprintf(gain, sizeof(gain), "%+.1f%%",
                        (base_ms - sim::to_millis(r.makespan)) / base_ms *
                            100.0);
          t.add_row({std::to_string(ppn), sz.label,
                     std::to_string(cell.cos[i]), xp::fmt_ms(r.makespan),
                     xp::fmt_ms(r.gather_critical),
                     xp::fmt_pct(comm_overlap[i]),
                     i == 0 ? std::string("-") : std::string(gain)});
        }
        const int best = cell.best_by_gather();
        if (ppn == 16 && sz.bytes <= (64ull << 10) && best == 0) {
          std::printf("note: co=1 still holds the shortest gather chain at "
                      "%s ppn=16 %s\n",
                      pname, sz.label);
        }
      }
    }
    t.print();
    std::puts("");
  }

  std::puts("Pipelining bound: each lane leader forwards as soon as its own "
            "gather\ncompletes — no whole-node barrier — so the intra-node "
            "critical path is the\nslowest *lane*, not the whole node.");
  if (!ok) {
    std::puts("FAIL: see messages above");
    return 1;
  }
  return 0;
}
