// Subfiling study: when does splitting the collective write into k
// sub-communicators (one file each, Options::sub_comm_count) beat the
// paper's single shared file?
//
//   A. k=1 degeneracy: forcing a run through the subfiling machinery
//      (per-file stripe override equal to the platform default) is
//      bit-identical to the plain shared-file runner, per scheduler —
//      the subfiling layer is free when unused.
//   B. Shared vs subfiled on the Table-I grid: every (benchmark, size,
//      procs) cell of the quick grid measured blocking (NoOverlap) at
//      k in {1, 2, 4}, with the shared-file write-comm-2 time as context.
//      Subfiling attacks the same bottleneck as the overlap schedulers —
//      the collective/shuffle share of the cycle — by shrinking the group
//      instead of hiding the exchange, so it wins exactly where that share
//      dominates (small discontiguous pieces, many procs, slow fabric).
//   C. Stripe-unit sweep (gio-style): one subfiled cell swept over
//      per-subfile stripe units, 1 MiB to 512 MiB.
//   D. Auto-k: what coll::decide_sub_comm_count picks per cell from one
//      blocking probe, next to the measured best k.
//   E. Determinism: the subfiled (k=2) overlap sweep is bit-identical at
//      --jobs 1 and --jobs 8.
//
// Self-checks (exit 1 on failure):
//   - k=1 degeneracy for all five schedulers;
//   - at least one Table-I cell where k>1 strictly beats the shared file;
//   - subfiled runs verify byte-exact (every k, every cell, rep 0);
//   - auto-k picks k=1 where splitting loses and k>1 in at least one cell;
//   - jobs-1 and jobs-8 subfiled sweeps identical.
//
//   ./build/bench/fig_subfiling [--quick]

#include <algorithm>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/autotune.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"
#include "simbase/rng.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

/// The fields two runs must agree on to count as bit-identical (mirrors
/// tests/subfiling_diff_test.cpp).
bool same_run(const xp::RunResult& a, const xp::RunResult& b) {
  return a.completion == b.completion && a.makespan == b.makespan &&
         a.bytes == b.bytes && a.aggregators == b.aggregators &&
         a.cycles == b.cycles && a.inter_node_bytes == b.inter_node_bytes &&
         a.inter_node_messages == b.inter_node_messages &&
         a.intra_node_bytes == b.intra_node_bytes &&
         a.rank_sum.total == b.rank_sum.total &&
         a.io_error == b.io_error && a.verify_error == b.verify_error;
}

/// Minimum turnaround over `reps` seeds for one cell at one k.
double min_ms_at(const xp::RunSpec& cell, int k, int reps,
                 std::uint64_t seed_base, std::string* verify_out) {
  xp::RunSpec spec = cell;
  spec.options.sub_comm_count = k;
  double best = 0.0;
  for (int rep = 0; rep < reps; ++rep) {
    spec.seed = sim::Rng::derive_seed(seed_base, static_cast<std::uint64_t>(rep));
    spec.verify = rep == 0;  // one byte-exact rep per cell is plenty
    const xp::RunResult r = xp::execute(spec);
    if (rep == 0 && verify_out) *verify_out = r.verify_error;
    const double ms = sim::to_millis(r.makespan);
    if (rep == 0 || ms < best) best = ms;
  }
  return best;
}

bool same_tables(const std::vector<xp::OverlapSeries>& a,
                 const std::vector<xp::OverlapSeries>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].min_ms != b[i].min_ms) return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr, "usage: fig_subfiling [--quick]\n");
    return 2;
  }
  const int reps = args.quick ? 1 : 2;
  bool ok = true;

  // -------------------------------------------------------------------------
  // A. k=1 degeneracy through the subfiling machinery
  // -------------------------------------------------------------------------
  std::puts("== A. k=1 through the subfiling machinery vs the plain "
            "runner ==\n");
  for (coll::OverlapMode m : kModes) {
    xp::RunSpec spec;
    spec.platform = xp::scaled(xp::ibex());
    spec.workload = wl::make_tile1m(1, 2);
    spec.nprocs = 16;
    spec.options.cb_size = xp::kCbSize;
    spec.options.overlap = m;
    spec.verify = true;
    spec.seed = sim::Rng::derive_seed(17, static_cast<std::uint64_t>(m));
    const xp::RunResult plain = xp::execute(spec);
    // A per-file stripe unit equal to the platform default changes no
    // byte's placement but routes the run through execute_multi.
    xp::RunSpec forced = spec;
    forced.options.subfile_stripe_unit = spec.platform.pfs.stripe_size;
    const xp::RunResult multi = xp::execute(forced);
    if (!same_run(plain, multi)) {
      std::printf("FAIL: k=1 subfiling run differs from the plain runner "
                  "(%s)\n", coll::to_string(m));
      ok = false;
    }
  }
  if (ok) {
    std::puts("self-check A: k=1 bit-identical to the shared-file runner, "
              "all five schedulers\n");
  }

  // -------------------------------------------------------------------------
  // B. Shared vs subfiled, Table-I cells
  // -------------------------------------------------------------------------
  const std::vector<std::string> plats =
      args.quick ? std::vector<std::string>{"crill"}
                 : std::vector<std::string>{"crill", "ibex"};
  const std::vector<int> procs_grid =
      args.quick ? std::vector<int>{100} : std::vector<int>{64, 100};
  std::printf("== B. Blocking write, shared file vs k sub-files (min over "
              "%d reps; wc2 = shared write-comm-2 context) ==\n\n", reps);
  xp::Table grid({"platform", "benchmark", "size", "procs", "shared(ms)",
                  "k=2(ms)", "k=4(ms)", "best", "wc2(ms)"});
  int wins = 0, cells = 0;
  std::vector<double> shared_ms, best_split_ms;  // per cell, for D
  std::vector<xp::RunSpec> cell_specs;
  for (const std::string& pname : plats) {
    const xp::Platform plat = xp::platform_by_name(pname);
    for (const xp::SweepCase& c : xp::paper_workloads()) {
      for (int procs : procs_grid) {
        xp::RunSpec cell;
        cell.platform = plat;
        cell.workload = c.workload;
        cell.nprocs = procs;
        cell.options.cb_size = xp::kCbSize;
        cell.options.overlap = coll::OverlapMode::None;
        const std::uint64_t cell_seed = sim::Rng::derive_seed(
            0x5F11, static_cast<std::uint64_t>(cells));
        std::string verr;
        const double k1 = min_ms_at(cell, 1, reps, cell_seed, &verr);
        if (!verr.empty()) {
          std::printf("FAIL: shared-file verify: %s\n", verr.c_str());
          ok = false;
        }
        const double k2 = min_ms_at(cell, 2, reps, cell_seed, &verr);
        if (!verr.empty()) {
          std::printf("FAIL: k=2 verify: %s\n", verr.c_str());
          ok = false;
        }
        const double k4 = min_ms_at(cell, 4, reps, cell_seed, &verr);
        if (!verr.empty()) {
          std::printf("FAIL: k=4 verify: %s\n", verr.c_str());
          ok = false;
        }
        xp::RunSpec wc2 = cell;
        wc2.options.overlap = coll::OverlapMode::WriteComm2;
        const double ctx = min_ms_at(wc2, 1, reps, cell_seed, nullptr);
        const bool split_wins = k2 < k1 || k4 < k1;
        if (split_wins) ++wins;
        ++cells;
        shared_ms.push_back(k1);
        best_split_ms.push_back(std::min(k2, k4));
        cell_specs.push_back(cell);
        grid.add_row({pname, wl::to_string(c.kind), c.size_label,
                      std::to_string(procs), fmt3(k1), fmt3(k2), fmt3(k4),
                      split_wins ? (k2 <= k4 ? "k=2 *" : "k=4 *") : "shared",
                      fmt3(ctx)});
      }
    }
  }
  grid.print();
  std::printf("\nresult B: subfiling beats the shared file in %d of %d "
              "blocking cells (*)\n\n", wins, cells);
  if (wins == 0) {
    std::puts("FAIL: no Table-I cell where k>1 beats the shared file");
    ok = false;
  }

  // -------------------------------------------------------------------------
  // C. Per-subfile stripe-unit sweep (gio-style)
  // -------------------------------------------------------------------------
  std::puts("== C. Stripe-unit sweep, crill tile256/L procs=100, k=2, "
            "blocking ==\n");
  {
    xp::RunSpec cell;
    cell.platform = xp::platform_by_name("crill");
    cell.workload = wl::make_tile256(2, 2048);
    cell.nprocs = 100;
    cell.options.cb_size = xp::kCbSize;
    cell.options.overlap = coll::OverlapMode::None;
    cell.options.sub_comm_count = 2;
    xp::Table su({"stripe unit", "min(ms)"});
    std::string note = "platform default";
    for (std::uint64_t unit :
         {0ull, 1ull << 20, 4ull << 20, 16ull << 20, 64ull << 20,
          256ull << 20, 512ull << 20}) {
      xp::RunSpec spec = cell;
      spec.options.subfile_stripe_unit = unit;
      const double ms = min_ms_at(spec, 2, reps, 0x57A1, nullptr);
      su.add_row({unit == 0 ? note : sim::format_bytes(unit), fmt3(ms)});
    }
    su.print();
  }

  // -------------------------------------------------------------------------
  // D. Auto-k per cell
  // -------------------------------------------------------------------------
  std::puts("\n== D. Probe-driven k (coll::decide_sub_comm_count) per "
            "cell ==\n");
  xp::Table autok({"platform", "benchmark", "size", "procs", "auto k",
                   "shared(ms)", "best split(ms)"});
  bool auto_split_somewhere = false;
  const std::vector<xp::SweepCase> cases = xp::paper_workloads();
  for (std::size_t i = 0; i < cell_specs.size(); ++i) {
    xp::RunSpec spec = cell_specs[i];
    spec.seed = sim::Rng::derive_seed(0x5F11, static_cast<std::uint64_t>(i));
    const int k = xp::auto_sub_comm_count(spec);
    if (k > 1) auto_split_somewhere = true;
    // Where the probes keep the shared file, splitting must not have been
    // a big win (the probes run blocking while this table may differ in
    // reps/seeds; allow 10% slack).
    if (k == 1 && best_split_ms[i] < 0.9 * shared_ms[i]) {
      std::printf("FAIL: auto kept the shared file but k>1 wins by >10%% "
                  "(cell %zu)\n", i);
      ok = false;
    }
    const xp::SweepCase& c =
        cases[(i / procs_grid.size()) % cases.size()];
    autok.add_row({cell_specs[i].platform.name, wl::to_string(c.kind),
                   c.size_label, std::to_string(cell_specs[i].nprocs),
                   std::to_string(k), fmt3(shared_ms[i]),
                   fmt3(best_split_ms[i])});
  }
  autok.print();
  if (!auto_split_somewhere) {
    std::puts("\nFAIL: auto-k never chose to split on this grid");
    ok = false;
  } else {
    std::puts("\nself-check D: auto-k splits where the probes measure a "
              "win and never refuses a >10% one");
  }

  // -------------------------------------------------------------------------
  // E. Worker-count determinism of the subfiled sweep
  // -------------------------------------------------------------------------
  {
    coll::Options base;
    base.sub_comm_count = 2;
    xp::ExecOptions e1, e8;
    e1.jobs = 1;
    e8.jobs = 8;
    const xp::Platform plat = xp::ibex();
    const auto serial =
        xp::run_overlap_sweep(plat, base, 1, 0xC57, /*quick=*/true, e1);
    const auto parallel =
        xp::run_overlap_sweep(plat, base, 1, 0xC57, /*quick=*/true, e8);
    if (!same_tables(serial, parallel)) {
      std::puts("\nFAIL: subfiled sweep differs between --jobs 1 and "
                "--jobs 8");
      ok = false;
    } else {
      std::puts("\nself-check E: subfiled (k=2) sweep bit-identical at "
                "--jobs 1 and --jobs 8");
    }
  }

  if (ok) std::puts("\nOK: subfiling acceptance criteria hold");
  return ok ? 0 : 1;
}
