// Reproduces the paper's section IV-A breakdown analysis: using the
// no-overlap code path, how much of the collective-write time is spent in
// the shuffle (communication) phase vs. the file-access phase on each
// platform? The paper reports ~93% file I/O / ~7% communication on crill
// and ~77% / ~23% on Ibex for Tile I/O 1M at 576 processes — the key
// mechanism behind the platforms' different overlap benefits.

#include <cstdio>
#include <string>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

struct Row {
  std::string platform;
  int procs;
  double comm_frac;
  double io_frac;
  sim::Duration makespan;
};

Row breakdown(const xp::Platform& platform, int procs) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(platform);
  spec.workload = wl::make_tile1m(1, 2);  // Tile 1M geometry, scaled
  spec.nprocs = procs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::None;
  spec.seed = 42;

  const xp::RunResult r = xp::execute(spec);
  // Attribution on the bottleneck aggregator, as in the paper's analysis:
  // the file phase only exists on aggregators, and only the critical
  // aggregator's shares are free of wait-for-straggler pollution.
  const auto& t = r.agg_max;
  // Synchronization waits absorb cycle-straggler noise (whichever
  // aggregator finishes early waits for the slowest at the next cycle), so
  // the communication share is computed from the data-movement phases.
  const double comm =
      static_cast<double>(t.shuffle + t.gather + t.forward + t.pack);
  const double io = static_cast<double>(t.write);
  const double denom = comm + io;
  return Row{spec.platform.name, procs, comm / denom, io / denom, r.makespan};
}

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";

  std::puts("== Communication vs. file-I/O breakdown (no-overlap, Tile 1M) ==");
  std::puts("Paper reference @576 procs: crill ~7% comm / 93% I/O;");
  std::puts("                            ibex ~23% comm / 77% I/O.\n");

  xp::Table table({"platform", "procs", "comm share", "I/O share", "time(ms)"});
  for (const auto& platform : {xp::crill(), xp::ibex()}) {
    for (int procs : quick ? std::vector<int>{16, 64}
                           : std::vector<int>{36, 64, 144}) {
      const Row row = breakdown(platform, procs);
      table.add_row({row.platform, std::to_string(row.procs),
                     xp::fmt_pct(row.comm_frac), xp::fmt_pct(row.io_frac),
                     xp::fmt_ms(row.makespan)});
    }
  }
  table.print();
  return 0;
}
