// Reproduces Figure 2: average relative improvement of each overlap
// algorithm over the no-overlap baseline on the crill cluster, per
// benchmark — averaging only the series where the algorithm actually beat
// the baseline (the paper's convention: "the average improvement ... if a
// performance improvement over the no overlap version was observed").
//
// Paper: crill averages range 3.7% - 9.2%, with the asynchronous-write
// algorithms above the communication-only overlap in every benchmark.

#include <cstdio>
#include <string>

#include "harness/sweep.hpp"
#include "simbase/stats.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

int run_improvement_figure(const xp::Platform& platform, const char* figure,
                           const char* paper_note, int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: %s [--quick] [--jobs N] [--progress] "
                 "[--paper-scale]\n",
                 argv[0]);
    return 2;
  }
  const bool quick = args.quick;
  const int reps = quick ? 2 : 3;

  std::printf("== %s: average positive improvement over no-overlap, %s ==\n",
              figure, platform.name.c_str());
  std::printf("%s%s\n\n", paper_note,
              args.paper_scale ? " (unscaled paper geometry)" : "");

  const auto sweep = xp::run_overlap_sweep(platform, reps, 0xF16, quick,
                                           args.exec, args.paper_scale);

  xp::Table table({"Benchmark", "Comm Overlap", "Write Overlap",
                   "Write-Comm Overlap", "Write-Comm 2 Overlap"});
  for (wl::Kind kind : {wl::Kind::Ior, wl::Kind::Tile256, wl::Kind::Tile1M,
                        wl::Kind::Flash}) {
    std::vector<std::string> row{wl::to_string(kind)};
    for (coll::OverlapMode m :
         {coll::OverlapMode::Comm, coll::OverlapMode::Write,
          coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2}) {
      sim::Summary positive;
      for (const auto& s : sweep) {
        if (s.kind != kind) continue;
        const double imp = s.improvement(m);
        if (imp > 0) positive.add(imp);
      }
      row.push_back(positive.empty() ? "--" : xp::fmt_pct(positive.mean()));
    }
    table.add_row(std::move(row));
  }
  table.print();
  return 0;
}

#ifndef TPIO_FIG3
int main(int argc, char** argv) {
  return run_improvement_figure(
      xp::crill(), "Fig. 2",
      "Paper: 3.7%-9.2%; async-write algorithms above comm overlap.", argc,
      argv);
}
#endif
