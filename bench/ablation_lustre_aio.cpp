// Ablation: pathological asynchronous-write support (paper, section V).
//
// "Some preliminary tests performed by the authors on a Lustre parallel
// file system showed very different results ... due to significant
// performance problems of the aio_write operations on Lustre."
// The storage model's aio_penalty reproduces this: as the async path
// degrades, the overlap algorithms that rely on it (Write, Write-Comm,
// Write-Comm-2) lose their advantage and eventually fall behind both the
// no-overlap baseline and the comm-only overlap.

#include <cstdio>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

int main() {
  std::puts("== Ablation: degrading aio quality (Lustre-like file system) ==");
  std::puts("Tile 1M, 64 procs, ibex fabric; aio penalty = async service "
            "multiplier.\n");

  xp::Table table({"aio penalty", "no-overlap", "comm", "write", "write-comm",
                   "write-comm-2", "best"});
  for (double penalty : {1.0, 1.3, 1.8, 2.5}) {
    xp::Platform plat = xp::scaled(xp::ibex());
    plat.pfs.aio_penalty = penalty;
    plat.pfs.aio_penalty_sigma = 0.0;
    std::vector<std::string> row{std::to_string(penalty).substr(0, 4)};
    double best = 1e300;
    const char* best_name = "";
    for (coll::OverlapMode m :
         {coll::OverlapMode::None, coll::OverlapMode::Comm,
          coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
          coll::OverlapMode::WriteComm2}) {
      xp::RunSpec spec;
      spec.platform = plat;
      spec.workload = wl::make_tile1m(1, 2);
      spec.nprocs = 64;
      spec.options.cb_size = xp::kCbSize;
      spec.options.overlap = m;
      spec.seed = 21;
      const double t = sim::to_millis(xp::execute(spec).makespan);
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.2f", t);
      row.push_back(buf);
      if (t < best) {
        best = t;
        best_name = coll::to_string(m);
      }
    }
    row.push_back(best_name);
    table.add_row(std::move(row));
  }
  table.print();
  std::puts("\nExpected: async-write algorithms lead at penalty 1.0 and "
            "surrender to blocking-write algorithms as aio degrades.");
  return 0;
}
