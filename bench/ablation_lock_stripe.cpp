// Ablation C: MPI_LOCK_SHARED vs MPI_LOCK_EXCLUSIVE (paper, section
// III-B2b — "the second option ... will serialize the shuffle phase and
// thus harm the performance"), and
// Ablation D: stripe-aligned file domains (Liao-style partitioning,
// related work section) vs plain even split.

#include <cstdio>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

double run(const xp::Platform& plat, const coll::Options& opt, int procs) {
  xp::RunSpec spec;
  spec.platform = plat;
  spec.workload = wl::make_tile1m(1, 2);
  spec.nprocs = procs;
  spec.options = opt;
  spec.seed = 41;
  return sim::to_millis(xp::execute(spec).makespan);
}

}  // namespace

int main() {
  const xp::Platform plat = xp::scaled(xp::ibex());

  std::puts("== Ablation C: passive-target lock type (Tile 1M, ibex) ==");
  std::puts("(storage accelerated 10x so the shuffle phase is the critical "
            "path and lock behaviour is visible)");
  xp::Platform fast = plat;
  fast.pfs.client_bw *= 10;
  fast.pfs.target_bw *= 10;
  xp::Table t1({"procs", "shared lock(ms)", "exclusive lock(ms)", "slowdown"});
  for (int procs : {16, 36, 64}) {
    coll::Options o;
    o.cb_size = xp::kCbSize;
    o.overlap = coll::OverlapMode::WriteComm2;
    o.transfer = coll::Transfer::OneSidedLock;
    o.lock_type = tpio::smpi::Mpi::LockType::Shared;
    const double shared = run(fast, o, procs);
    o.lock_type = tpio::smpi::Mpi::LockType::Exclusive;
    const double exclusive = run(fast, o, procs);
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%.2f", shared);
    std::snprintf(b, sizeof(b), "%.2f", exclusive);
    std::snprintf(c, sizeof(c), "%.2fx", exclusive / shared);
    t1.add_row({std::to_string(procs), a, b, c});
  }
  t1.print();
  std::puts("Expected: exclusive locks serialize origins; the slowdown "
            "grows with the process count.\n");

  std::puts("== Ablation D: stripe-aligned file domains ==");
  xp::Table t2({"platform", "aligned(ms)", "unaligned(ms)", "alignment gain"});
  for (const auto& base : {xp::crill(), xp::ibex()}) {
    const xp::Platform p = xp::scaled(base);
    coll::Options o;
    o.cb_size = xp::kCbSize;
    o.overlap = coll::OverlapMode::WriteComm2;
    o.stripe_align = true;
    const double aligned = run(p, o, 64);
    o.stripe_align = false;
    const double unaligned = run(p, o, 64);
    char a[32], b[32], c[32];
    std::snprintf(a, sizeof(a), "%.2f", aligned);
    std::snprintf(b, sizeof(b), "%.2f", unaligned);
    std::snprintf(c, sizeof(c), "%+.1f%%", (unaligned - aligned) / unaligned * 100);
    t2.add_row({p.name, a, b, c});
  }
  t2.print();
  std::puts("Unaligned domains split stripe chunks between aggregators: two "
            "writers touch one target chunk, costing extra requests.");
  return 0;
}
