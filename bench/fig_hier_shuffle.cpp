// Extension figure: two-level (intra-node) aggregation for the shuffle
// phase. Every rank first ships its cycle data to a node leader over the
// intra-node links; the leader coalesces contiguous pieces and forwards one
// merged message per (node, aggregator) across the network. The driver
// compares the direct and hierarchical shuffles on ibex — execution time
// plus the traffic trade the hierarchy makes (fewer/larger inter-node
// messages, extra intra-node copies) — and demonstrates the ppn=1
// degeneracy: with one process per node there is nothing to merge and the
// hierarchical path must collapse to the direct one exactly.

#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

xp::RunResult run(const xp::Platform& plat, const wl::Spec& workload,
                  int procs, bool hier) {
  xp::RunSpec spec;
  spec.platform = plat;
  spec.workload = workload;
  spec.nprocs = procs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::WriteComm2;
  spec.options.hierarchical = hier;
  spec.seed = 7;
  return xp::execute(spec);
}

std::string fmt_count(std::uint64_t n) { return std::to_string(n); }

}  // namespace

int main(int argc, char** argv) {
  const bool quick = argc > 1 && std::string(argv[1]) == "--quick";
  const xp::Platform plat = xp::scaled(xp::ibex());

  std::printf("== Two-level shuffle vs direct (ibex, write-comm-2, ppn=%d) ==\n",
              plat.procs_per_node);
  xp::Table t({"workload", "procs", "direct(ms)", "hier(ms)", "gain",
               "inter msgs d/h", "inter bytes d/h"});
  struct Case {
    const char* label;
    wl::Spec workload;
  };
  // Flash interleaves every rank's blocks inside each variable region, so
  // its shuffle crosses nodes no matter how ranks are placed — the pattern
  // the two-level scheme targets. The tile workloads place consecutive
  // ranks in consecutive file rows (mostly node-local at ppn=10); they
  // bound the hierarchy's overhead when there is little to merge.
  const std::vector<Case> cases = {
      {"flash", wl::make_flash(24, 2, 16 * 1024)},
      {"tile256", wl::make_tile256(2, 1024)},
      {"tile1m", wl::make_tile1m(1, 2)},
  };
  for (const Case& c : cases) {
    for (int procs : quick ? std::vector<int>{20, 40}
                           : std::vector<int>{20, 40, 80}) {
      const xp::RunResult d = run(plat, c.workload, procs, false);
      const xp::RunResult h = run(plat, c.workload, procs, true);
      const double dm = sim::to_millis(d.makespan);
      const double hm = sim::to_millis(h.makespan);
      char gain[32];
      std::snprintf(gain, sizeof(gain), "%+.1f%%", (dm - hm) / dm * 100);
      t.add_row({c.label, std::to_string(procs), xp::fmt_ms(d.makespan),
                 xp::fmt_ms(h.makespan), gain,
                 fmt_count(d.inter_node_messages) + " / " +
                     fmt_count(h.inter_node_messages),
                 sim::format_bytes(d.inter_node_bytes) + " / " +
                     sim::format_bytes(h.inter_node_bytes)});
    }
  }
  t.print();
  std::puts("The hierarchy may never *increase* inter-node bytes: each byte "
            "crosses\nthe network at most once (leader -> aggregator), and "
            "coalescing merges\nco-located pieces into fewer messages.\n");

  // ppn=1: every rank is its own node leader with nothing to gather — the
  // hierarchical code path must degenerate to the direct one, bit for bit.
  xp::Platform flat = plat;
  flat.name = "ibex-ppn1";
  flat.procs_per_node = 1;
  flat.max_nodes = plat.max_nodes * plat.procs_per_node;
  std::puts("== Degeneracy check: one process per node ==");
  xp::Table t1({"workload", "procs", "direct(ms)", "hier(ms)", "identical"});
  bool all_identical = true;
  for (const Case& c : cases) {
    const int procs = quick ? 16 : 32;
    const xp::RunResult d = run(flat, c.workload, procs, false);
    const xp::RunResult h = run(flat, c.workload, procs, true);
    const bool same = d.makespan == h.makespan &&
                      d.inter_node_messages == h.inter_node_messages &&
                      d.inter_node_bytes == h.inter_node_bytes;
    all_identical = all_identical && same;
    t1.add_row({c.label, std::to_string(procs), xp::fmt_ms(d.makespan),
                xp::fmt_ms(h.makespan), same ? "yes" : "NO"});
  }
  t1.print();
  if (!all_identical) {
    std::puts("FAIL: hierarchical mode did not degenerate at ppn=1");
    return 1;
  }
  return 0;
}
