// Reproduces Table I: for every test series (benchmark x platform x
// process count x problem size), which overlap algorithm achieved the
// lowest execution time? The paper's counts over 352 series:
//
//   benchmark    | none | comm | write | write-comm | write-comm-2
//   IOR          |  21  |  11  |  32   |    28      |   15
//   Tile I/O 256 |  17  |  13  |  18   |    31      |   26
//   Tile I/O 1M  |  10  |   6  |  18   |    20      |   17
//   Flash I/O    |  11  |  12  |  11   |    16      |   19
//   total        |  59  |  42  |  79   |    95      |   77
//
// Shape to reproduce: no clear single winner; algorithms with asynchronous
// writes (write / write-comm / write-comm-2) collectively dominate (71%),
// yet plain no-overlap still wins a non-trivial share (~16%).

#include <cstdio>
#include <map>
#include <string>

#include "harness/sweep.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;

namespace {

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr,
                 "usage: table1_overlap_wins [--quick] [--jobs N] "
                 "[--progress]\n");
    return 2;
  }
  const bool quick = args.quick;
  const int reps = quick ? 2 : 3;

  std::map<wl::Kind, std::map<coll::OverlapMode, int>> wins;
  std::map<coll::OverlapMode, int> total;
  int series_count = 0;

  for (const auto& platform : {xp::crill(), xp::ibex()}) {
    const auto sweep =
        xp::run_overlap_sweep(platform, reps, 0x7AB1E1, quick, args.exec);
    for (const auto& s : sweep) {
      wins[s.kind][s.winner()] += 1;
      total[s.winner()] += 1;
      ++series_count;
    }
  }

  std::printf(
      "== Table I: number of series in which an overlap algorithm was "
      "fastest (%d series, %d reps each) ==\n\n",
      series_count, reps);
  xp::Table table({"Benchmark", "No Overlap", "Comm Overlap", "Write Overlap",
                   "Write-Comm Overlap", "Write-Comm 2 Overlap"});
  for (wl::Kind kind : {wl::Kind::Ior, wl::Kind::Tile256, wl::Kind::Tile1M,
                        wl::Kind::Flash}) {
    std::vector<std::string> row{wl::to_string(kind)};
    for (coll::OverlapMode m : kModes) {
      row.push_back(std::to_string(wins[kind][m]));
    }
    table.add_row(std::move(row));
  }
  std::vector<std::string> row{"Total:"};
  int async_wins = 0;
  for (coll::OverlapMode m : kModes) {
    row.push_back(std::to_string(total[m]));
    if (m == coll::OverlapMode::Write || m == coll::OverlapMode::WriteComm ||
        m == coll::OverlapMode::WriteComm2) {
      async_wins += total[m];
    }
  }
  table.add_row(std::move(row));
  table.print();

  std::printf(
      "\nAsync-write algorithms won %d/%d series (%.0f%%; paper: 71%%); "
      "no-overlap won %d (%.0f%%; paper: ~16%%).\n",
      async_wins, series_count,
      100.0 * async_wins / series_count, total[coll::OverlapMode::None],
      100.0 * total[coll::OverlapMode::None] / series_count);
  return 0;
}
