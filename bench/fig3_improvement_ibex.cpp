// Reproduces Figure 3: average relative improvement of each overlap
// algorithm over no-overlap on the Ibex cluster (positive cases only).
// Paper: 8.6% - 22.3%, markedly higher than crill because a larger share
// of the collective-write time is communication (faster storage system).

#define TPIO_FIG3
#include "fig2_improvement_crill.cpp"

int main(int argc, char** argv) {
  return run_improvement_figure(
      tpio::xp::ibex(), "Fig. 3",
      "Paper: 8.6%-22.3%; higher than crill (storage is faster, so the "
      "communication share is larger).",
      argc, argv);
}
