// Ablation: MPI progress thread (paper, section III-A1).
//
// "MPI libraries provide progress for pending non-blocking data transfer
// operations either when invoking an MPI function, or more recently also
// through a specific progress thread." The consequence for collective
// write: a rendezvous message whose matching receive is already posted
// still stalls if its handshake arrives while the target rank sits in a
// blocking file write — unless a progress thread services it.
//
// Part 1 isolates the mechanism at the MPI level; part 2 shows the effect
// on a collective write where aggregators pre-post receives and then
// block in the file system (Comm-Overlap with slow senders).

#include <cstdio>
#include <vector>

#include "harness/sweep.hpp"
#include "mpi/mpi.hpp"
#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace sim = tpio::sim;
namespace smpi = tpio::smpi;
namespace net = tpio::net;

namespace {

/// Pre-posted rendezvous receive + blocking "write" blackout at the
/// target: returns the receive completion time.
sim::Time stalled_receive(bool progress_thread) {
  net::Topology topo{2, 1};
  xp::Platform plat = xp::scaled(xp::ibex());
  plat.mpi.progress_thread = progress_thread;
  net::Fabric fabric(topo, plat.fabric);
  smpi::Machine machine(fabric, plat.mpi);
  sim::Conductor c(2);
  sim::Time done = 0;
  const std::size_t n = 2 * plat.mpi.eager_limit;  // rendezvous for sure
  c.run([&](sim::RankCtx& ctx) {
    smpi::Mpi mpi(machine, ctx);
    std::vector<std::byte> buf(n);
    if (mpi.rank() == 0) {
      smpi::Request r = mpi.irecv(1, 0, buf);  // pre-posted
      // Blocking file write occupying the rank until t = 5 ms.
      mpi.set_unavailable_until(sim::milliseconds(5.0));
      mpi.ctx().advance(sim::milliseconds(5.0));
      mpi.wait(r);
      done = mpi.ctx().now();
    } else {
      mpi.ctx().advance(sim::microseconds(50));  // RTS lands mid-write
      mpi.send(0, 0, buf);
    }
  });
  return done;
}

}  // namespace

int main() {
  using tpio::net::Topology;
  std::puts("== Ablation: MPI progress thread ==\n");

  std::puts("Part 1 - pre-posted rendezvous receive, target blocked in a "
            "5 ms write, sender posts at t=50us:");
  const sim::Time without = stalled_receive(false);
  const sim::Time with = stalled_receive(true);
  std::printf("  receive completes at %s without a progress thread\n",
              sim::format_time(without).c_str());
  std::printf("  receive completes at %s with a progress thread\n",
              sim::format_time(with).c_str());
  std::printf("  (transfer %s the blocking write)\n\n",
              with < without ? "overlapped" : "did not overlap");
  return without > with ? 0 : 1;
}
