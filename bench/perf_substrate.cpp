// Wall-clock performance of the simulation substrate itself (not of the
// simulated schedulers): how fast the host executes whole collective-write
// runs and the quick Table I sweep. This is the tracked counterpart of
// BENCH_PERF.json (tools/bench_report) — the substrate-performance work
// (buffer pooling, copy coalescing, plan memoization, the timing-only fast
// path) is judged against these numbers, not against simulated makespans,
// which must stay bit-identical.
//
// Full run:  build/bench/perf_substrate            (or: ctest -C perf -L perf)
// Smoke run: --benchmark_min_time=0  (one iteration per benchmark; wired
//            into the default ctest pass so the suite cannot bit-rot).

#include <benchmark/benchmark.h>

#include <cstdint>

#include "core/plan_cache.hpp"
#include "core/segcopy.hpp"
#include "harness/sweep.hpp"
#include "simbase/bufpool.hpp"

namespace {

namespace coll = tpio::coll;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

xp::RunSpec make_spec(int nprocs, std::uint64_t block_bytes,
                      coll::OverlapMode mode, bool verify) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_ior(block_bytes);
  spec.nprocs = nprocs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = mode;
  spec.verify = verify;
  return spec;
}

// One full simulated run per iteration; args = (nprocs, MiB/proc, mode).
// items/sec == runs/sec; bytes/sec == simulated bytes shuffled+written per
// wall second (the substrate-throughput headline).
void BM_CollectiveWrite(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  const std::uint64_t block = static_cast<std::uint64_t>(state.range(1)) << 20;
  const coll::OverlapMode mode = kModes[state.range(2)];
  xp::RunSpec spec = make_spec(nprocs, block, mode, /*verify=*/false);
  std::uint64_t seed = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    spec.seed = ++seed;  // distinct measurements, as the sweep takes them
    const xp::RunResult r = xp::execute(spec);
    benchmark::DoNotOptimize(r.makespan);
    bytes += r.bytes;
  }
  state.SetLabel(coll::to_string(mode));
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CollectiveWrite)
    ->ArgsProduct({{16, 64}, {1, 4}, {0, 1, 2, 3, 4}})
    ->Unit(benchmark::kMillisecond);

// The materialized (verify=true) path for contrast: payload generation,
// every host-side copy, the digest. The gap between this and the
// verify=false twin is what the timing-only fast path buys.
void BM_CollectiveWriteVerified(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  xp::RunSpec spec = make_spec(nprocs, 1ull << 20,
                               coll::OverlapMode::WriteComm2, /*verify=*/true);
  std::uint64_t seed = 0;
  std::uint64_t bytes = 0;
  for (auto _ : state) {
    spec.seed = ++seed;
    const xp::RunResult r = xp::execute(spec);
    benchmark::DoNotOptimize(r.makespan);
    bytes += r.bytes;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_CollectiveWriteVerified)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

// Substrate-optimization ablation: the same run with the three host-side
// optimizations forced off (fresh allocations, per-segment copies, a plan
// rebuilt from scratch every run). Compare against the matching
// BM_CollectiveWrite row to see what the machinery is worth.
void BM_CollectiveWriteLegacy(benchmark::State& state) {
  const int nprocs = static_cast<int>(state.range(0));
  xp::RunSpec spec = make_spec(nprocs, 1ull << 20,
                               coll::OverlapMode::WriteComm2, /*verify=*/false);
  sim::BufferPool::set_recycling(false);
  coll::segcopy::set_coalescing(false);
  coll::PlanCache::set_enabled(false);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    spec.seed = ++seed;
    const xp::RunResult r = xp::execute(spec);
    benchmark::DoNotOptimize(r.makespan);
  }
  sim::BufferPool::set_recycling(true);
  coll::segcopy::set_coalescing(true);
  coll::PlanCache::set_enabled(true);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CollectiveWriteLegacy)->Arg(16)->Arg(64)->Unit(
    benchmark::kMillisecond);

// The quick Table I sweep end to end (every workload x process count x
// scheduler at one rep), serial, verify off — the wall-clock figure quoted
// in EXPERIMENTS.md and tracked across PRs in BENCH_PERF.json.
void BM_QuickSweep(benchmark::State& state) {
  xp::ExecOptions exec;
  exec.jobs = 1;
  for (auto _ : state) {
    const auto series = xp::run_overlap_sweep(xp::scaled(xp::ibex()),
                                              /*reps=*/1, /*seed=*/0xC0FFEE,
                                              /*quick=*/true, exec);
    benchmark::DoNotOptimize(series.size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_QuickSweep)->Unit(benchmark::kSecond)->Iterations(1);

}  // namespace

BENCHMARK_MAIN();
