// Extension experiment: the overlap design space applied to collective
// READ (the mirror of the paper's write study; related work: view-based
// collective I/O with read-ahead, Blas et al.). Per overlap scheduler,
// time a two-phase collective read of a Tile-1M-patterned file on both
// platforms. Expectation: read-ahead (the Write-mode mirror) hides the
// file-access phase behind the scatter, with larger gains on ibex.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "core/read_engine.hpp"
#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "workloads/workloads.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;
namespace net = tpio::net;
namespace smpi = tpio::smpi;
namespace pfs = tpio::pfs;

namespace {

double timed_read(const xp::Platform& plat, int procs,
                  coll::OverlapMode mode) {
  const net::Topology topo = net::Topology::fit(procs, plat.procs_per_node);
  net::Fabric fabric(topo, plat.fabric);
  smpi::Machine machine(fabric, plat.mpi);
  pfs::PfsParams pp = plat.pfs;
  pfs::StorageSystem storage(pp, &fabric);
  auto file = storage.create("in", pfs::Integrity::Store);
  const wl::Spec workload = wl::make_tile1m(1, 2);

  sim::Conductor conductor(topo.nprocs());
  sim::Time write_end = 0;
  conductor.run([&](sim::RankCtx& ctx) {
    smpi::Mpi mpi(machine, ctx);
    const coll::FileView view = workload.view(mpi.rank(), procs);
    // Populate the file first, then measure only the read.
    const auto data = wl::fill_local(view);
    coll::Options wopt;
    wopt.cb_size = xp::kCbSize;
    coll::collective_write(mpi, *file, view, data, wopt);
    mpi.barrier();
    if (mpi.rank() == 0) write_end = ctx.now();

    std::vector<std::byte> out(view.total_bytes());
    coll::Options ropt;
    ropt.cb_size = xp::kCbSize;
    ropt.overlap = mode;
    coll::collective_read(mpi, *file, view, out, ropt);
    // Spot-verify: the bytes must equal what this rank wrote.
    if (out != data) {
      std::fprintf(stderr, "READ VERIFICATION FAILED on rank %d\n",
                   mpi.rank());
      std::abort();
    }
  });
  return sim::to_millis(conductor.makespan() - write_end);
}

}  // namespace

int main() {
  std::puts("== Extension: overlap schedulers applied to collective READ ==");
  std::puts("Tile 1M pattern; read phase timed separately; every rank's "
            "bytes verified.\n");

  xp::Table table({"platform", "procs", "none(ms)", "comm", "read-ahead",
                   "read-comm", "read-comm-2", "best gain"});
  for (const char* pname : {"crill", "ibex"}) {
    const xp::Platform plat = xp::platform_by_name(pname);
    for (int procs : {36, 64}) {
      std::vector<std::string> row{pname, std::to_string(procs)};
      double base = 0, best = 1e300;
      for (coll::OverlapMode m :
           {coll::OverlapMode::None, coll::OverlapMode::Comm,
            coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
            coll::OverlapMode::WriteComm2}) {
        const double t = timed_read(plat, procs, m);
        if (m == coll::OverlapMode::None) base = t;
        best = std::min(best, t);
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%.2f", t);
        row.push_back(buf);
      }
      char g[32];
      std::snprintf(g, sizeof(g), "%+.1f%%", (base - best) / base * 100.0);
      row.push_back(g);
      table.add_row(std::move(row));
    }
  }
  table.print();
  return 0;
}
