// Fault resilience of the five overlap schedulers (fault-injection
// extension; pfs::FaultParams + coll::Options resilience knobs):
//
//   A. Completion time and retry volume vs injected write-fault rate, per
//      scheduler: transient failures cost retries + backoff but never
//      correctness (every run is byte-verified).
//   B. Straggler sweep: service-time factor on half the storage targets.
//      Asynchronous requests pay the factor squared (the paper's
//      pathological-aio asymmetry, section V), so the per-series winner
//      flips from an async-write scheduler on the healthy system to the
//      blocking NoOverlap baseline under heavy straggling.
//   C. Degraded mode: with Options::degrade_slowdown, an aggregator that
//      observes its async writes collapsing abandons the aio pipeline and
//      drains blocking — recovering most of the straggler loss.
//
// Self-checks (exit 1 on failure):
//   - rate 0 is bit-identical to the fault-free model, per scheduler and
//     repetition, at any resilience-knob setting (inert-knob guarantee);
//   - the straggler-free series is won by an async-write scheduler and the
//     heaviest one by NoOverlap (the winner flip);
//   - retry counts are identical at --jobs 1 and --jobs 8 (fault verdicts
//     and backoff jitter are pure functions, not shared-stream draws);
//   - degraded mode fires (degraded_cycles > 0) and beats the plain aio
//     pipeline under a late-onset straggler.
//
//   ./build/bench/fig_fault_resilience [--quick]

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "harness/sweep.hpp"
#include "simbase/rng.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;

namespace {

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

/// The tpio_sim default configuration (scaled ibex, tile1m, 16 procs): the
/// regime docs/FAULTS.md walks through, so the tables here are directly
/// comparable with the handbook's worked example.
xp::RunSpec base_spec() {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_tile1m(1, 2);
  spec.nprocs = 16;
  spec.options.cb_size = xp::kCbSize;
  // Deep retry budget: at the highest rate swept here (0.3) the per-op
  // give-up probability is 0.3^9 ~ 2e-5, so every table cell verifies.
  spec.options.max_retries = 8;
  spec.verify = true;
  return spec;
}

struct Cell {
  double min_ms = 0.0;
  int retries = 0;                   // summed over repetitions
  int giveups = 0;
  int degraded = 0;
  std::vector<sim::Duration> makespans;  // per repetition, for bit-compares
};

Cell run_cell(xp::RunSpec spec, int reps, std::uint64_t seed_base,
              bool* verified) {
  Cell c;
  for (int i = 0; i < reps; ++i) {
    spec.seed = sim::Rng::derive_seed(seed_base, static_cast<std::uint64_t>(i));
    const xp::RunResult r = xp::execute(spec);
    if (!r.verify_error.empty()) {
      std::printf("FAIL: verification: %s\n", r.verify_error.c_str());
      *verified = false;
    }
    if (c.makespans.empty() || sim::to_millis(r.makespan) < c.min_ms) {
      c.min_ms = sim::to_millis(r.makespan);
    }
    c.retries += r.faults.retries;
    c.giveups += r.faults.giveups;
    c.degraded += r.faults.degraded_cycles;
    c.makespans.push_back(r.makespan);
  }
  return c;
}

std::string fmt3(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  const xp::BenchArgs args = xp::parse_bench_args(argc, argv);
  if (!args.ok) {
    std::fprintf(stderr, "usage: fig_fault_resilience [--quick]\n");
    return 2;
  }
  const int reps = args.quick ? 2 : 3;
  const std::uint64_t seed_base = 1;
  bool ok = true;

  // -------------------------------------------------------------------------
  // A. Completion time vs fault rate
  // -------------------------------------------------------------------------
  const double rates[] = {0.0, 0.05, 0.1, 0.2, 0.3};
  std::printf("== A. Completion time (min over %d reps, ms) vs write-fault "
              "rate — scaled ibex, tile1m, 16 procs ==\n\n", reps);
  xp::Table rate_table(
      {"scheduler", "rate 0", "0.05", "0.1", "0.2", "0.3", "retries@0.3"});
  std::vector<std::vector<Cell>> rate_cells;  // [mode][rate]
  for (coll::OverlapMode m : kModes) {
    std::vector<Cell> row;
    std::vector<std::string> cells = {coll::to_string(m)};
    for (double rate : rates) {
      xp::RunSpec spec = base_spec();
      spec.options.overlap = m;
      spec.platform.pfs.faults.write_fail_rate = rate;
      spec.platform.pfs.faults.seed = 7;
      row.push_back(run_cell(spec, reps, seed_base, &ok));
      cells.push_back(fmt3(row.back().min_ms));
      if (row.back().giveups != 0) {
        std::printf("FAIL: %d give-ups at rate %.2f (%s)\n",
                    row.back().giveups, rate, coll::to_string(m));
        ok = false;
      }
    }
    cells.push_back(std::to_string(row.back().retries));
    rate_table.add_row(cells);
    rate_cells.push_back(std::move(row));
  }
  rate_table.print();
  std::puts("");

  // Self-check: the rate-0 column is bit-identical to the fault-free model
  // even with every resilience knob turned up — a disabled FaultModel
  // consumes no randomness and perturbs no timing.
  for (std::size_t mi = 0; mi < std::size(kModes); ++mi) {
    xp::RunSpec spec = base_spec();
    spec.options.overlap = kModes[mi];
    spec.options.max_retries = 2;                      // differs from column
    spec.options.retry_backoff = sim::milliseconds(9); // differs from column
    spec.platform.pfs.faults = pfs::FaultParams{};     // knob-free default
    bool v = true;
    const Cell healthy = run_cell(spec, reps, seed_base, &v);
    ok = ok && v;
    if (healthy.makespans != rate_cells[mi][0].makespans) {
      std::printf("FAIL: rate 0 not bit-identical to fault-free (%s)\n",
                  coll::to_string(kModes[mi]));
      ok = false;
    }
    if (rate_cells[mi][0].retries != 0) {
      std::printf("FAIL: retries at rate 0 (%s)\n",
                  coll::to_string(kModes[mi]));
      ok = false;
    }
  }
  std::puts("self-check A: rate 0 bit-identical to fault-free, all "
            "schedulers");

  // -------------------------------------------------------------------------
  // B. Straggler sweep: the winner flip
  // -------------------------------------------------------------------------
  // The sweep runs against a constant transient-fault backdrop (rate 0.3):
  // a degrading storage system stutters before it slows down. The backdrop
  // also separates the two blocking-write schedulers — comm-overlap issues
  // twice the write ops (half-size sub-buffers), so it carries twice the
  // retry/backoff exposure and falls behind the NoOverlap baseline.
  const double factors[] = {1.0, 2.0, 4.0, 6.0};
  std::printf("\n== B. Straggler sweep (factor on 8 of 16 targets, async "
              "pays factor^2; 0.3 fault backdrop) ==\n\n");
  xp::Table strag_table({"factor", "none", "comm", "write", "write-comm",
                         "write-comm-2", "winner"});
  coll::OverlapMode healthy_winner = coll::OverlapMode::None;
  coll::OverlapMode heavy_winner = coll::OverlapMode::None;
  for (double factor : factors) {
    std::vector<std::string> cells = {fmt3(factor)};
    double best = 0.0;
    coll::OverlapMode winner = coll::OverlapMode::None;
    bool first = true;
    for (coll::OverlapMode m : kModes) {
      xp::RunSpec spec = base_spec();
      spec.options.overlap = m;
      spec.platform.pfs.faults.write_fail_rate = 0.3;
      spec.platform.pfs.faults.seed = 7;
      if (factor > 1.0) {
        spec.platform.pfs.faults.straggler_factor = factor;
        spec.platform.pfs.faults.straggler_targets = 8;
      }
      const Cell c = run_cell(spec, reps, seed_base, &ok);
      cells.push_back(fmt3(c.min_ms));
      if (first || c.min_ms < best) {
        best = c.min_ms;
        winner = m;
      }
      first = false;
    }
    cells.push_back(coll::to_string(winner));
    strag_table.add_row(cells);
    if (factor == factors[0]) healthy_winner = winner;
    heavy_winner = winner;  // last iteration sticks
  }
  strag_table.print();
  std::puts("");

  const bool healthy_async = healthy_winner == coll::OverlapMode::Write ||
                             healthy_winner == coll::OverlapMode::WriteComm ||
                             healthy_winner == coll::OverlapMode::WriteComm2;
  if (!healthy_async) {
    std::printf("FAIL: straggler-free series won by %s, expected an "
                "async-write scheduler\n", coll::to_string(healthy_winner));
    ok = false;
  }
  if (heavy_winner != coll::OverlapMode::None) {
    std::printf("FAIL: heaviest straggler series won by %s, expected the "
                "blocking NoOverlap baseline\n",
                coll::to_string(heavy_winner));
    ok = false;
  }
  if (ok) {
    std::printf("self-check B: winner flips %s -> no_overlap under "
                "straggling\n", coll::to_string(healthy_winner));
  }

  // -------------------------------------------------------------------------
  // C. Degraded mode under a late-onset straggler
  // -------------------------------------------------------------------------
  std::printf("\n== C. Degraded mode (factor 6 on 8 targets after 5 ms, "
              "write scheduler) ==\n\n");
  xp::RunSpec plain = base_spec();
  plain.options.overlap = coll::OverlapMode::Write;
  plain.platform.pfs.faults.straggler_factor = 6.0;
  plain.platform.pfs.faults.straggler_targets = 8;
  plain.platform.pfs.faults.straggler_after = sim::milliseconds(5);
  xp::RunSpec degraded = plain;
  degraded.options.degrade_slowdown = 2.5;

  const Cell plain_c = run_cell(plain, reps, seed_base, &ok);
  const Cell degraded_c = run_cell(degraded, reps, seed_base, &ok);
  xp::Table deg_table({"variant", "min(ms)", "degraded cycles"});
  deg_table.add_row({"aio pipeline", fmt3(plain_c.min_ms), "0"});
  deg_table.add_row({"degrade 2.5x", fmt3(degraded_c.min_ms),
                     std::to_string(degraded_c.degraded)});
  deg_table.print();
  std::puts("");

  if (degraded_c.degraded == 0) {
    std::puts("FAIL: degraded mode never fired");
    ok = false;
  }
  if (degraded_c.min_ms >= plain_c.min_ms) {
    std::puts("FAIL: degraded mode no faster than the stalled aio pipeline");
    ok = false;
  }

  // -------------------------------------------------------------------------
  // D. Worker-count determinism of the retry counters
  // -------------------------------------------------------------------------
  auto retry_jobs = [&] {
    std::vector<xp::SweepJob> jobs;
    for (coll::OverlapMode m : kModes) {
      for (double rate : {0.1, 0.3}) {
        xp::RunSpec spec = base_spec();
        spec.options.overlap = m;
        spec.platform.pfs.faults.write_fail_rate = rate;
        spec.platform.pfs.faults.seed = 7;
        jobs.push_back(xp::SweepJob{
            std::string(coll::to_string(m)) + "/r" + fmt3(rate),
            [spec, reps, seed_base] {
              bool v = true;
              return static_cast<double>(
                  run_cell(spec, reps, seed_base, &v).retries);
            }});
      }
    }
    return jobs;
  }();
  xp::ExecOptions serial, eight;
  serial.jobs = 1;
  eight.jobs = 8;
  const std::vector<double> r1 = xp::run_jobs(retry_jobs, serial);
  const std::vector<double> r8 = xp::run_jobs(retry_jobs, eight);
  if (r1 != r8) {
    std::puts("FAIL: retry counts differ between --jobs 1 and --jobs 8");
    ok = false;
  } else {
    std::puts("self-check D: retry counts identical at --jobs 1 and "
              "--jobs 8");
  }

  if (ok) std::puts("\nOK: fault-resilience acceptance criteria hold");
  return ok ? 0 : 1;
}
