#pragma once

#include <bit>
#include <cstddef>
#include <span>
#include <vector>

#include "simbase/error.hpp"

namespace tpio::smpi::detail {

/// ceil(log2(n)) for n >= 1 — tree depth of synchronizing collectives.
inline int ceil_log2(int n) {
  TPIO_CHECK(n >= 1, "ceil_log2 of non-positive value");
  return std::bit_width(static_cast<unsigned>(n - 1));
}

/// Wire size of protocol control messages (RTS/CTS, lock traffic).
inline constexpr std::uint64_t kControlBytes = 64;

/// Unpack rank `rank`'s slice of a scatterv root payload: a table of
/// `nprocs` uint64 sizes followed by the concatenated per-rank blobs.
/// Every size-table entry is validated against the remaining payload
/// before any copy, so a malformed table can never drive memcpy past the
/// end of `packed`; every rank rejects a malformed payload, not only the
/// ranks whose slice happens to land out of bounds.
std::vector<std::byte> scatterv_unpack(std::span<const std::byte> packed,
                                       int nprocs, int rank);

}  // namespace tpio::smpi::detail
