#pragma once

#include <bit>

#include "simbase/error.hpp"

namespace tpio::smpi::detail {

/// ceil(log2(n)) for n >= 1 — tree depth of synchronizing collectives.
inline int ceil_log2(int n) {
  TPIO_CHECK(n >= 1, "ceil_log2 of non-positive value");
  return std::bit_width(static_cast<unsigned>(n - 1));
}

/// Wire size of protocol control messages (RTS/CTS, lock traffic).
inline constexpr std::uint64_t kControlBytes = 64;

}  // namespace tpio::smpi::detail
