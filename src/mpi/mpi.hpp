#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "net/fabric.hpp"
#include "sched/conductor.hpp"
#include "sched/sync.hpp"
#include "sched/timeline.hpp"
#include "simbase/time.hpp"

namespace tpio::smpi {

/// Matches any source rank in recv/irecv.
inline constexpr int kAnySource = -1;

using Tag = std::int64_t;

/// Tunables of the simulated MPI library (UCX-on-InfiniBand flavoured).
struct MpiParams {
  /// Messages strictly larger than this use the rendezvous protocol
  /// (the paper's Open MPI + UCX setup switches at 512 KB).
  std::uint64_t eager_limit = 512 * 1024;

  /// Per-message CPU overhead at the sender (descriptor + injection).
  sim::Duration send_overhead = sim::microseconds(0.5);
  /// Per-message CPU overhead at the receiver when a match completes.
  sim::Duration recv_overhead = sim::microseconds(0.5);
  /// Cost of scanning one entry of the unexpected-message queue. Aggregator
  /// processes with deep queues pay this on every posted receive — one of
  /// the two-sided costs the paper contrasts with one-sided transfers.
  sim::Duration match_cost = sim::nanoseconds(60);

  /// Per-put CPU overhead at the origin (no matching, no target CPU).
  sim::Duration put_overhead = sim::microseconds(1.5);
  /// One-way cost of passive-target lock protocol steps (lock request,
  /// release notification). Substantially above the wire latency: Open MPI
  /// implements passive-target locking with remote atomic compare-and-swap
  /// loops and agent processing, ~10-20 us per acquisition on InfiniBand.
  sim::Duration rma_control_latency = sim::microseconds(10.0);
  /// Memory-registration (pinning) cost per 4 KiB page when allocating an
  /// RMA window. Collective-I/O implementations allocate windows per
  /// operation, so this is a fixed per-call price of the one-sided shuffle
  /// variants.
  sim::Duration win_register_per_page = sim::microseconds(0.7);
  /// Service time of the target-side lock manager per lock/unlock request.
  /// Passive-target locks from many origins serialize here — the paper's
  /// reason why MPI_LOCK_EXCLUSIVE (and lock traffic in general) scales
  /// poorly with the origin count.
  sim::Duration lock_service = sim::microseconds(3.0);

  /// Per-hop cost of synchronizing collectives (barrier, fence):
  /// cost = ceil(log2 P) * collective_hop.
  sim::Duration collective_hop = sim::microseconds(2.5);
  /// Per-hop cost of node-local synchronizing collectives (node_barrier):
  /// shared-memory flag propagation, far below the fabric's collective_hop.
  sim::Duration node_collective_hop = sim::microseconds(0.4);
  /// Win_fence costs fence_cost_factor * barrier: closing an exposure
  /// epoch is a barrier plus a remote-completion flush of every pending
  /// RMA operation — "MPI_Win_fence is known to be an expensive
  /// operation" (paper, section III-B2a).
  double fence_cost_factor = 2.0;

  /// When true, rendezvous handshakes are serviced immediately regardless
  /// of what the target rank is doing (models an MPI progress thread).
  /// When false — the Open MPI default the paper measured — a rendezvous
  /// RTS that arrives while the target is inside a blocking file-system
  /// call waits for the target's next MPI activity.
  bool progress_thread = false;
};

class Machine;
class Window;

/// A non-blocking operation handle. Cheap to copy; wait/test through Mpi.
class Request {
 public:
  Request() = default;
  bool valid() const { return ev_ != nullptr; }

 private:
  friend class Mpi;
  explicit Request(sim::EventPtr ev) : ev_(std::move(ev)) {}
  sim::EventPtr ev_;
};

/// Per-rank MPI facade; construct on the rank's own thread, one per rank.
///
/// All `Mpi` objects of a run share one `Machine`. The interface mirrors
/// the MPI subset the two-phase collective-write engine needs: point-to-
/// point with eager/rendezvous protocols, small data-carrying collectives,
/// and one-sided windows with active- and passive-target synchronization.
class Mpi {
 public:
  Mpi(Machine& machine, sim::RankCtx& ctx);

  int rank() const { return ctx_->rank(); }
  int size() const;
  sim::RankCtx& ctx() { return *ctx_; }
  Machine& machine() { return *machine_; }

  // ----- point-to-point ---------------------------------------------------
  /// Post a non-blocking send; the payload is captured immediately, so the
  /// caller may reuse `data` as soon as the call returns.
  Request isend(int dst, Tag tag, std::span<const std::byte> data);
  /// Post a non-blocking receive into `buf` (matched by (src, tag); src may
  /// be kAnySource). `buf` must stay alive until the request completes.
  Request irecv(int src, Tag tag, std::span<std::byte> buf);

  void send(int dst, Tag tag, std::span<const std::byte> data);
  void recv(int src, Tag tag, std::span<std::byte> buf);

  void wait(Request& req);
  void waitall(std::span<Request> reqs);
  bool test(Request& req);

  // ----- progress accounting ----------------------------------------------
  /// Declare that this rank is about to block outside MPI until time `t`
  /// (e.g. a blocking file write): rendezvous handshakes targeting it are
  /// deferred until `t` unless a progress thread is configured.
  void set_unavailable_until(sim::Time t);

  // ----- collectives --------------------------------------------------------
  void barrier();
  // Sub-communicator helpers for the two-level shuffle. The node
  // communicator is implicit in the topology's block mapping; the leader
  // communicator has exactly one member per node.
  /// Ranks co-located on this rank's node, ascending.
  std::vector<int> node_ranks() const;
  /// Barrier over this rank's node only; costs
  /// ceil(log2 members) * node_collective_hop (shared-memory speed).
  void node_barrier();
  /// Barrier over the node-leader sub-communicator. Collective among
  /// exactly one rank per node — every leader must call it each time.
  void leader_barrier();
  /// Barrier over one lane of this rank's node (the sub-baton of the
  /// pipelined intra-node aggregation): collective among the `parties`
  /// members of lane `lane` only, at shared-memory cost
  /// ceil(log2 parties) * node_collective_hop. The (node, lane) sync point
  /// is created lazily under the baton on first arrival — the Machine
  /// predates the plan that defines lane geometry — and every arrival must
  /// name the same party count (checked).
  void lane_barrier(int lane, int parties);
  /// Everyone contributes `mine`; returns all contributions indexed by rank.
  std::vector<std::vector<std::byte>> allgatherv(std::span<const std::byte> mine);
  /// Fixed-size allgather: like allgatherv but every rank must contribute
  /// the same number of bytes (checked). The vehicle of compact per-rank
  /// summary exchanges — one cheap dissemination round trip instead of
  /// shipping full metadata blobs.
  std::vector<std::vector<std::byte>> allgather(std::span<const std::byte> mine);
  /// Targeted metadata delivery (sparse allgatherv): every rank contributes
  /// `mine` and names the half-open source interval [want_begin, want_end)
  /// whose blobs it needs. Returns (source rank, blob) pairs ascending by
  /// rank — always including this rank's own blob. With `dense` every
  /// rank materializes all P blobs instead; the virtual cost is identical
  /// either way, because it derives from the want topology all ranks
  /// declared, never from the host-side materialization switch.
  std::vector<std::pair<int, std::vector<std::byte>>> sparse_allgatherv(
      std::span<const std::byte> mine, int want_begin, int want_end,
      bool dense = false);

  enum class ReduceOp { Max, Min, Sum };
  /// Reduce-scatter over one element per rank: every rank contributes
  /// size() elements; rank r receives the op-reduction over all ranks of
  /// their elems[r]. Recursive-halving cost (Jocksch et al.); the data
  /// plane folds contributions into one shared accumulator, never
  /// materializing per-rank blobs.
  std::uint64_t reduce_scatter(std::span<const std::uint64_t> elems,
                               ReduceOp op);
  /// Butterfly allreduce (reduce_scatter + allgather cost shape) of one
  /// scalar. O(1) host memory per rank.
  std::uint64_t allreduce(std::uint64_t v, ReduceOp op);
  std::uint64_t allreduce_max(std::uint64_t v);
  std::uint64_t allreduce_min(std::uint64_t v);
  std::uint64_t allreduce_sum(std::uint64_t v);
  /// Root's buffer is broadcast into every rank's `data` (same size everywhere).
  void bcast(std::span<std::byte> data, int root);
  /// Every rank contributes `mine`; only `root` receives all contributions
  /// (indexed by rank; empty vectors elsewhere).
  std::vector<std::vector<std::byte>> gatherv(std::span<const std::byte> mine,
                                              int root);
  /// Root supplies one blob per rank; returns this rank's blob.
  std::vector<std::byte> scatterv(
      const std::vector<std::vector<std::byte>>& blobs, int root);

  // ----- one-sided ----------------------------------------------------------
  /// Collective window allocation; every rank passes its local exposure size
  /// (zero for ranks that only originate puts).
  std::shared_ptr<Window> win_allocate(std::size_t local_bytes);
  /// Active-target epoch boundary; collective over all ranks.
  void win_fence(Window& win);
  /// One-sided put into `target`'s window at byte offset `target_offset`.
  /// Completion/visibility is only guaranteed by the enclosing sync
  /// (fence or unlock).
  void put(Window& win, int target, std::size_t target_offset,
           std::span<const std::byte> data);
  enum class LockType { Shared, Exclusive };
  void win_lock(Window& win, int target, LockType type);
  /// Releases the lock; returns only after this origin's puts to `target`
  /// have landed (MPI passive-target completion semantics).
  void win_unlock(Window& win, int target);

 private:
  friend class Machine;

  /// One generation of the shared exchange slot: deposit `mine`, wait for
  /// the collective's closed-form cost, return the full blob table. `kind`
  /// selects the cost shape (see collectives.cpp); `root` and `want` feed
  /// the rooted and sparse variants.
  std::shared_ptr<const std::vector<std::vector<std::byte>>> exchange(
      std::span<const std::byte> mine, int kind, int root,
      std::pair<int, int> want);
  /// Shared reduce slot: fold `elems` element-wise into the generation's
  /// accumulator; `scatter` selects the reduce_scatter vs allreduce cost.
  std::shared_ptr<const std::vector<std::uint64_t>> reduce(
      std::span<const std::uint64_t> elems, bool scatter, ReduceOp op);

  Machine* machine_;
  sim::RankCtx* ctx_;
};

/// Shared state of the simulated MPI job: message queues, collective
/// staging, window registry. Create once per simulation, before conductor
/// threads start; thereafter all mutation happens under the baton.
class Machine {
 public:
  Machine(net::Fabric& fabric, const MpiParams& params);

  int size() const { return fabric_->topology().nprocs(); }
  const MpiParams& params() const { return params_; }
  net::Fabric& fabric() { return *fabric_; }

  /// ceil(log2 P) * collective_hop, the synchronizing-collective cost model.
  sim::Duration sync_collective_cost(int parties) const;

 private:
  friend class Mpi;
  friend class Window;

  struct Message {
    int src = 0;
    Tag tag = 0;
    bool rendezvous = false;
    std::vector<std::byte> payload;   // eager: captured at send time
    sim::Time arrival = 0;            // eager: payload arrival; rndv: RTS arrival
    // Rendezvous bookkeeping (valid when rendezvous == true):
    std::span<const std::byte> rndv_data;  // sender buffer (valid until matched)
    sim::Time sender_post = 0;             // when the sender posted
    sim::EventPtr send_done;               // sender's request event
  };

  struct PostedRecv {
    int src = 0;  // kAnySource allowed
    Tag tag = 0;
    std::span<std::byte> buf;
    sim::EventPtr done;
  };

  struct Endpoint {
    std::deque<Message> unexpected;
    std::deque<PostedRecv> posted;
    sim::Time unavailable_until = 0;
  };

  /// Earliest instant >= t at which `rank`'s MPI engine can service a
  /// rendezvous handshake (paper's progress discussion, section III-A1).
  sim::Time progress_at(int rank, sim::Time t) const;

  /// Completes the rendezvous protocol for a matched (msg, recv) pair and
  /// returns the receive completion time. Called under the baton.
  sim::Time finish_rendezvous(const Message& msg, int dst,
                              std::span<std::byte> buf, sim::Time match_time);

  static bool matches(const PostedRecv& r, int src, Tag tag) {
    return (r.src == kAnySource || r.src == src) && r.tag == tag;
  }

  net::Fabric* fabric_;
  MpiParams params_;
  std::vector<Endpoint> endpoints_;

  // Collective machinery (single job-wide communicator).
  sim::SyncPoint barrier_sync_;
  // Sub-communicator rendezvous: one per node, plus one for the node
  // leaders (parties = node count; exactly one rank per node arrives).
  std::vector<std::unique_ptr<sim::SyncPoint>> node_sync_;
  sim::SyncPoint leader_sync_;
  // Lane sub-batons, keyed by (node, lane); created lazily under the baton
  // because lane geometry is a plan property the Machine predates.
  std::map<std::pair<int, int>, std::unique_ptr<sim::SyncPoint>> lane_sync_;
  struct ExchangeSlot {
    int arrived = 0;
    int kind = -1;  // collective kind of this generation (first arrival sets)
    int root = -1;
    sim::Time max_clock = 0;
    std::shared_ptr<std::vector<std::vector<std::byte>>> blobs;
    // Sparse exchanges only: per-rank want interval [first, second), the
    // input of the want-topology cost model.
    std::vector<std::pair<int, int>> wants;
    sim::EventPtr release = std::make_shared<sim::Event>();
  };
  ExchangeSlot exchange_;
  struct ReduceSlot {
    int arrived = 0;
    int op = -1;
    bool scatter = false;
    sim::Time max_clock = 0;
    std::shared_ptr<std::vector<std::uint64_t>> accum;
    sim::EventPtr release = std::make_shared<sim::Event>();
  };
  ReduceSlot reduce_;

  // Window registry for collective win_allocate.
  struct WinCreateSlot {
    int arrived = 0;
    std::shared_ptr<Window> win;
  };
  WinCreateSlot win_create_;
  sim::SyncPoint win_sync_;
};

/// One-sided communication window (see Mpi::win_allocate).
///
/// Exposure memory lives per rank inside the window; puts copy bytes
/// immediately (host side) while virtual visibility is deferred to the
/// synchronization call, matching the access pattern of the two-phase
/// shuffle where targets only read after fence/barrier.
class Window {
 public:
  /// This rank's exposed memory.
  std::span<std::byte> local(int rank);
  std::size_t local_size(int rank) const;

 private:
  friend class Mpi;
  friend class Machine;
  explicit Window(Machine& m);

  struct LockWaiter {
    int origin;
    Mpi::LockType type;
    sim::EventPtr granted;
  };
  struct TargetState {
    std::vector<std::byte> mem;
    sim::Timeline lock_agent;  // serializes lock/unlock request handling
    // Active-target epoch tracking: latest put arrival this epoch.
    sim::Time epoch_last_arrival = 0;
    // Passive-target lock state.
    int shared_holders = 0;
    bool exclusive_held = false;
    std::deque<LockWaiter> queue;
    sim::Time last_release = 0;
  };
  // Per (origin) tracking of puts to each target in the current passive
  // epoch, for unlock completion semantics. Indexed [origin][target].
  std::vector<std::vector<sim::Time>> origin_put_arrival_;

  Machine* machine_;
  std::vector<TargetState> targets_;
  sim::SyncPoint fence_sync_;
};

}  // namespace tpio::smpi
