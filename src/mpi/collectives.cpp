#include <algorithm>
#include <cstring>

#include "mpi/internal.hpp"
#include "mpi/mpi.hpp"
#include "simbase/error.hpp"

namespace tpio::smpi {

using detail::ceil_log2;

// Collectives use a coarse cost model (one baton action per rank plus a
// closed-form duration) rather than a full point-to-point decomposition:
// the two-phase engine's data plane is p2p/RMA and is modelled in detail,
// while its collectives only move small metadata. The coarse model keeps
// large-rank simulations affordable without changing the cost ordering the
// paper's analysis depends on.

void Mpi::barrier() {
  machine_->barrier_sync_.arrive(*ctx_, machine_->sync_collective_cost(size()),
                                 /*floor=*/0, "mpi.barrier");
}

std::vector<int> Mpi::node_ranks() const {
  const net::Topology& topo = machine_->fabric_->topology();
  const int node = topo.node_of(rank());
  const int first = node * topo.procs_per_node;
  const int last = std::min((node + 1) * topo.procs_per_node, topo.nprocs());
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(last - first));
  for (int r = first; r < last; ++r) out.push_back(r);
  return out;
}

void Mpi::node_barrier() {
  Machine& m = *machine_;
  const int node = m.fabric_->topology().node_of(rank());
  sim::SyncPoint& sp = *m.node_sync_[static_cast<std::size_t>(node)];
  const sim::Duration cost =
      static_cast<sim::Duration>(ceil_log2(std::max(sp.parties(), 1))) *
      m.params_.node_collective_hop;
  sp.arrive(*ctx_, cost, /*floor=*/0, "mpi.node_barrier");
}

void Mpi::leader_barrier() {
  Machine& m = *machine_;
  m.leader_sync_.arrive(*ctx_,
                        m.sync_collective_cost(m.fabric_->topology().nodes),
                        /*floor=*/0, "mpi.leader_barrier");
}

std::vector<std::vector<std::byte>> Mpi::allgatherv(
    std::span<const std::byte> mine) {
  Machine& m = *machine_;
  const int P = size();

  struct Captured {
    std::shared_ptr<std::vector<std::vector<std::byte>>> blobs;
    sim::EventPtr release;
  };
  Captured cap = ctx_->act([&]() -> Captured {
    Machine::ExchangeSlot& slot = m.exchange_;
    if (!slot.blobs) {
      slot.blobs = std::make_shared<std::vector<std::vector<std::byte>>>(
          static_cast<std::size_t>(P));
    }
    auto& blob = (*slot.blobs)[static_cast<std::size_t>(rank())];
    blob.assign(mine.begin(), mine.end());
    slot.arrived += 1;
    slot.max_clock = std::max(slot.max_clock, ctx_->now());
    Captured c{slot.blobs, slot.release};
    if (slot.arrived == P) {
      std::uint64_t total = 0;
      for (const auto& b : *slot.blobs) total += b.size();
      // Ring allgather: (P-1) rounds of latency, each rank forwards
      // (P-1)/P of the total volume through its NIC.
      const sim::Duration cost =
          static_cast<sim::Duration>(P - 1) * m.fabric_->params().inter_latency +
          sim::transfer_time(total - total / static_cast<std::uint64_t>(P),
                             m.fabric_->params().inter_bw) +
          m.sync_collective_cost(P);
      ctx_->complete(*slot.release, slot.max_clock + cost);
      slot = Machine::ExchangeSlot{};  // open next generation
    }
    return c;
  });
  ctx_->wait_event(*cap.release, "mpi.exchange");
  return *cap.blobs;
}

namespace {

std::vector<std::byte> to_bytes(std::uint64_t v) {
  std::vector<std::byte> b(sizeof(v));
  std::memcpy(b.data(), &v, sizeof(v));
  return b;
}

std::uint64_t from_bytes(const std::vector<std::byte>& b) {
  TPIO_CHECK(b.size() == sizeof(std::uint64_t), "bad scalar blob size");
  std::uint64_t v = 0;
  std::memcpy(&v, b.data(), sizeof(v));
  return v;
}

}  // namespace

std::uint64_t Mpi::allreduce_max(std::uint64_t v) {
  auto all = allgatherv(to_bytes(v));
  std::uint64_t r = 0;
  for (const auto& b : all) r = std::max(r, from_bytes(b));
  return r;
}

std::uint64_t Mpi::allreduce_min(std::uint64_t v) {
  auto all = allgatherv(to_bytes(v));
  std::uint64_t r = UINT64_MAX;
  for (const auto& b : all) r = std::min(r, from_bytes(b));
  return r;
}

std::uint64_t Mpi::allreduce_sum(std::uint64_t v) {
  auto all = allgatherv(to_bytes(v));
  std::uint64_t r = 0;
  for (const auto& b : all) r += from_bytes(b);
  return r;
}

std::vector<std::vector<std::byte>> Mpi::gatherv(
    std::span<const std::byte> mine, int root) {
  TPIO_CHECK(root >= 0 && root < size(), "gatherv: root out of range");
  // Data plane via the exchange slot; the cost model is the same class of
  // synchronizing collective. Non-roots drop the gathered set.
  auto all = allgatherv(mine);
  if (rank() != root) {
    for (auto& b : all) b.clear();
  }
  return all;
}

std::vector<std::byte> Mpi::scatterv(
    const std::vector<std::vector<std::byte>>& blobs, int root) {
  TPIO_CHECK(root >= 0 && root < size(), "scatterv: root out of range");
  TPIO_CHECK(rank() != root ||
                 blobs.size() == static_cast<std::size_t>(size()),
             "scatterv: root must supply one blob per rank");
  // Root contributes the concatenation; per-rank sizes ride in a header.
  std::vector<std::byte> mine;
  if (rank() == root) {
    std::vector<std::uint64_t> sizes;
    sizes.reserve(blobs.size());
    std::size_t total = 0;
    for (const auto& b : blobs) {
      sizes.push_back(b.size());
      total += b.size();
    }
    mine.resize(sizes.size() * sizeof(std::uint64_t) + total);
    std::memcpy(mine.data(), sizes.data(), sizes.size() * sizeof(std::uint64_t));
    std::size_t pos = sizes.size() * sizeof(std::uint64_t);
    for (const auto& b : blobs) {
      std::memcpy(mine.data() + pos, b.data(), b.size());
      pos += b.size();
    }
  }
  auto all = allgatherv(mine);
  const auto& packed = all[static_cast<std::size_t>(root)];
  const auto P = static_cast<std::size_t>(size());
  TPIO_CHECK(packed.size() >= P * sizeof(std::uint64_t),
             "scatterv: malformed root payload");
  std::vector<std::uint64_t> sizes(P);
  std::memcpy(sizes.data(), packed.data(), P * sizeof(std::uint64_t));
  std::size_t pos = P * sizeof(std::uint64_t);
  for (std::size_t r = 0; r < P; ++r) {
    if (r == static_cast<std::size_t>(rank())) {
      std::vector<std::byte> out(sizes[r]);
      std::memcpy(out.data(), packed.data() + pos, sizes[r]);
      return out;
    }
    pos += sizes[r];
  }
  return {};
}

void Mpi::bcast(std::span<std::byte> data, int root) {
  TPIO_CHECK(root >= 0 && root < size(), "bcast: root out of range");
  // Binomial-tree cost; data plane via the exchange slot (only the root's
  // contribution is read).
  auto all =
      allgatherv(rank() == root
                     ? std::span<const std::byte>(data.data(), data.size())
                     : std::span<const std::byte>{});
  const auto& src = all[static_cast<std::size_t>(root)];
  TPIO_CHECK(src.size() == data.size(), "bcast size mismatch across ranks");
  if (rank() != root) std::memcpy(data.data(), src.data(), src.size());
}

}  // namespace tpio::smpi
