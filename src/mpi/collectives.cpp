#include <algorithm>
#include <cstring>
#include <utility>

#include "mpi/internal.hpp"
#include "mpi/mpi.hpp"
#include "simbase/error.hpp"

namespace tpio::smpi {

using detail::ceil_log2;

// Collectives use a coarse cost model (one baton action per rank plus a
// closed-form duration) rather than a full point-to-point decomposition:
// the two-phase engine's data plane is p2p/RMA and is modelled in detail,
// while its collectives only move small metadata. The coarse model keeps
// large-rank simulations affordable without changing the cost ordering the
// paper's analysis depends on.
//
// The closed forms follow the optimized collectives of Jocksch et al.
// (arXiv:2006.13112): dissemination (Bruck-style) allgatherv in
// ceil(log2 P) latency rounds with the volume bottleneck at the rank that
// contributed least; binomial trees for the rooted collectives with the
// volume charged at the root's NIC; recursive halving/doubling for
// reduce_scatter and the butterfly allreduce built on it. Degenerate
// exchanges are free: P == 1 pays nothing, and empty contributions never
// pay a volume term (transfer_time(0) == 0 by construction).

void Mpi::barrier() {
  machine_->barrier_sync_.arrive(*ctx_, machine_->sync_collective_cost(size()),
                                 /*floor=*/0, "mpi.barrier");
}

std::vector<int> Mpi::node_ranks() const {
  const net::Topology& topo = machine_->fabric_->topology();
  const int node = topo.node_of(rank());
  const int first = topo.node_first(node);
  const int last = topo.node_last(node);
  std::vector<int> out;
  out.reserve(static_cast<std::size_t>(last - first));
  for (int r = first; r < last; ++r) out.push_back(r);
  return out;
}

void Mpi::node_barrier() {
  Machine& m = *machine_;
  const int node = m.fabric_->topology().node_of(rank());
  sim::SyncPoint& sp = *m.node_sync_[static_cast<std::size_t>(node)];
  const sim::Duration cost =
      static_cast<sim::Duration>(ceil_log2(std::max(sp.parties(), 1))) *
      m.params_.node_collective_hop;
  sp.arrive(*ctx_, cost, /*floor=*/0, "mpi.node_barrier");
}

void Mpi::leader_barrier() {
  Machine& m = *machine_;
  m.leader_sync_.arrive(*ctx_,
                        m.sync_collective_cost(m.fabric_->topology().nodes),
                        /*floor=*/0, "mpi.leader_barrier");
}

void Mpi::lane_barrier(int lane, int parties) {
  Machine& m = *machine_;
  TPIO_CHECK(parties >= 1, "lane_barrier requires at least one party");
  const int node = m.fabric_->topology().node_of(rank());
  sim::SyncPoint* sp = nullptr;
  ctx_->act([&] {
    auto& slot = m.lane_sync_[{node, lane}];
    if (!slot) slot = std::make_unique<sim::SyncPoint>(parties);
    sp = slot.get();
  });
  TPIO_CHECK(sp->parties() == parties,
             "lane_barrier called with mismatched party counts");
  const sim::Duration cost =
      static_cast<sim::Duration>(ceil_log2(std::max(parties, 1))) *
      m.params_.node_collective_hop;
  sp->arrive(*ctx_, cost, /*floor=*/0, "mpi.lane_barrier");
}

namespace {

/// Which collective a generation of the shared exchange slot carries.
/// Collectives are called in the same order on every rank, so a generation
/// is always homogeneous (checked at deposit time).
enum CollKind : int {
  kAllgatherv = 0,
  kAllgather,
  kGatherv,
  kScatterv,
  kBcast,
  kSparse,
};

std::uint64_t blob_total(const std::vector<std::vector<std::byte>>& blobs) {
  std::uint64_t total = 0;
  for (const auto& b : blobs) total += b.size();
  return total;
}

std::uint64_t blob_min(const std::vector<std::vector<std::byte>>& blobs) {
  std::uint64_t m = UINT64_MAX;
  for (const auto& b : blobs) m = std::min<std::uint64_t>(m, b.size());
  return m;
}

/// Closed-form duration of one exchange generation, computed by the last
/// arrival from the full blob table (and, for sparse exchanges, the want
/// topology). Never reads the materialization mode: dense and sparse
/// host-side delivery of the same exchange cost the same virtual time.
sim::Duration exchange_cost(Machine& m, int kind, int root,
                            const std::vector<std::vector<std::byte>>& blobs,
                            const std::vector<std::pair<int, int>>& wants) {
  const int P = static_cast<int>(blobs.size());
  if (P <= 1) return 0;  // a single rank has nobody to exchange with
  const sim::Duration lat = m.fabric().params().inter_latency;
  const double bw = m.fabric().params().inter_bw;
  const auto log_p = static_cast<sim::Duration>(ceil_log2(P));
  const sim::Duration sync = m.sync_collective_cost(P);

  switch (kind) {
    case kAllgatherv:
    case kAllgather: {
      // Dissemination allgatherv: ceil(log2 P) rounds; the volume
      // bottleneck is the rank that contributed least — it receives
      // total - min_blob bytes. Using the true minimum (not the average
      // total/P of the old ring formula) keeps uneven blob mixes from
      // undercharging the exchange.
      const std::uint64_t total = blob_total(blobs);
      return log_p * lat +
             sim::transfer_time(total - blob_min(blobs),
                                m.fabric().params().inter_bw) +
             sync;
    }
    case kGatherv: {
      // Binomial gather: tree latency, volume bound by the root's inbound
      // NIC (everything except the root's own contribution). Non-roots
      // forward strictly less, so charging everyone the allgatherv volume
      // (the old model) overstated the cost of every gather.
      const std::uint64_t total = blob_total(blobs);
      const auto& root_blob = blobs[static_cast<std::size_t>(root)];
      return log_p * lat +
             sim::transfer_time(total - root_blob.size(), bw) + sync;
    }
    case kScatterv: {
      // Binomial scatter: the root injects the whole packed payload down
      // the tree.
      const auto& packed = blobs[static_cast<std::size_t>(root)];
      return log_p * lat + sim::transfer_time(packed.size(), bw) + sync;
    }
    case kBcast: {
      // Binomial broadcast: every tree level forwards the full payload.
      const auto& src = blobs[static_cast<std::size_t>(root)];
      return log_p * (lat + sim::transfer_time(src.size(), bw)) + sync;
    }
    case kSparse: {
      // Targeted delivery: rank r pulls the blobs of its want interval
      // [b_r, e_r); source s pushes its blob to every rank wanting it.
      // The bottleneck rank's in/out traffic (bytes and message count)
      // prices the exchange; self-delivery is free.
      std::vector<std::uint64_t> prefix(static_cast<std::size_t>(P) + 1, 0);
      for (int i = 0; i < P; ++i) {
        prefix[static_cast<std::size_t>(i) + 1] =
            prefix[static_cast<std::size_t>(i)] +
            blobs[static_cast<std::size_t>(i)].size();
      }
      std::vector<std::int64_t> want_count(static_cast<std::size_t>(P) + 1,
                                           0);
      std::uint64_t max_bytes = 0, max_msgs = 0;
      for (int r = 0; r < P; ++r) {
        const auto [b, e] = wants[static_cast<std::size_t>(r)];
        want_count[static_cast<std::size_t>(b)] += 1;
        want_count[static_cast<std::size_t>(e)] -= 1;
        std::uint64_t in_bytes = prefix[static_cast<std::size_t>(e)] -
                                 prefix[static_cast<std::size_t>(b)];
        auto in_msgs = static_cast<std::uint64_t>(e - b);
        if (b <= r && r < e) {
          in_bytes -= blobs[static_cast<std::size_t>(r)].size();
          in_msgs -= 1;
        }
        max_bytes = std::max(max_bytes, in_bytes);
        max_msgs = std::max(max_msgs, in_msgs);
      }
      std::int64_t wanting = 0;
      for (int s = 0; s < P; ++s) {
        wanting += want_count[static_cast<std::size_t>(s)];
        const auto [b, e] = wants[static_cast<std::size_t>(s)];
        const auto out_msgs = static_cast<std::uint64_t>(
            wanting - ((b <= s && s < e) ? 1 : 0));
        max_msgs = std::max(max_msgs, out_msgs);
        max_bytes = std::max(
            max_bytes,
            out_msgs * blobs[static_cast<std::size_t>(s)].size());
      }
      sim::Duration cost = sync;
      if (max_msgs > 0) cost += log_p * lat;  // delivery handshake rounds
      // Per-message matching at the bottleneck rank (an aggregator pulling
      // P blobs pays queue processing per source, like its shuffle does).
      cost += static_cast<sim::Duration>(max_msgs) * m.params().match_cost;
      cost += sim::transfer_time(max_bytes, bw);
      return cost;
    }
    default:
      tpio::fail("exchange_cost: unknown collective kind");
  }
  return 0;
}

}  // namespace

std::shared_ptr<const std::vector<std::vector<std::byte>>> Mpi::exchange(
    std::span<const std::byte> mine, int kind, int root,
    std::pair<int, int> want) {
  Machine& m = *machine_;
  const int P = size();

  struct Captured {
    std::shared_ptr<std::vector<std::vector<std::byte>>> blobs;
    sim::EventPtr release;
  };
  Captured cap = ctx_->act([&]() -> Captured {
    Machine::ExchangeSlot& slot = m.exchange_;
    if (!slot.blobs) {
      slot.blobs = std::make_shared<std::vector<std::vector<std::byte>>>(
          static_cast<std::size_t>(P));
      slot.kind = kind;
      slot.root = root;
      if (kind == kSparse) {
        slot.wants.assign(static_cast<std::size_t>(P), {0, 0});
      }
    }
    TPIO_CHECK(slot.kind == kind && slot.root == root,
               "mismatched collective calls across ranks");
    auto& blob = (*slot.blobs)[static_cast<std::size_t>(rank())];
    blob.assign(mine.begin(), mine.end());
    if (kind == kSparse) slot.wants[static_cast<std::size_t>(rank())] = want;
    slot.arrived += 1;
    slot.max_clock = std::max(slot.max_clock, ctx_->now());
    Captured c{slot.blobs, slot.release};
    if (slot.arrived == P) {
      ctx_->complete(*slot.release,
                     slot.max_clock + exchange_cost(m, kind, root,
                                                    *slot.blobs, slot.wants));
      slot = Machine::ExchangeSlot{};  // open next generation
    }
    return c;
  });
  ctx_->wait_event(*cap.release, "mpi.exchange");
  return cap.blobs;
}

std::vector<std::vector<std::byte>> Mpi::allgatherv(
    std::span<const std::byte> mine) {
  return *exchange(mine, kAllgatherv, /*root=*/-1, {0, 0});
}

std::vector<std::vector<std::byte>> Mpi::allgather(
    std::span<const std::byte> mine) {
  auto table = exchange(mine, kAllgather, /*root=*/-1, {0, 0});
  for (const auto& b : *table) {
    TPIO_CHECK(b.size() == mine.size(),
               "allgather: contribution sizes differ across ranks");
  }
  return *table;
}

std::vector<std::pair<int, std::vector<std::byte>>> Mpi::sparse_allgatherv(
    std::span<const std::byte> mine, int want_begin, int want_end,
    bool dense) {
  TPIO_CHECK(0 <= want_begin && want_begin <= want_end && want_end <= size(),
             "sparse_allgatherv: want interval out of range");
  auto table = exchange(mine, kSparse, /*root=*/-1, {want_begin, want_end});
  std::vector<std::pair<int, std::vector<std::byte>>> out;
  if (dense) {
    out.reserve(table->size());
    for (int r = 0; r < size(); ++r) {
      out.emplace_back(r, (*table)[static_cast<std::size_t>(r)]);
    }
    return out;
  }
  const int me = rank();
  out.reserve(static_cast<std::size_t>(want_end - want_begin) + 1);
  for (int r = 0; r < size(); ++r) {
    if (r == me || (want_begin <= r && r < want_end)) {
      out.emplace_back(r, (*table)[static_cast<std::size_t>(r)]);
    }
  }
  return out;
}

namespace {

std::uint64_t reduce_identity(Mpi::ReduceOp op) {
  switch (op) {
    case Mpi::ReduceOp::Max: return 0;
    case Mpi::ReduceOp::Min: return UINT64_MAX;
    case Mpi::ReduceOp::Sum: return 0;
  }
  return 0;
}

std::uint64_t reduce_fold(std::uint64_t a, std::uint64_t b,
                          Mpi::ReduceOp op) {
  switch (op) {
    case Mpi::ReduceOp::Max: return std::max(a, b);
    case Mpi::ReduceOp::Min: return std::min(a, b);
    case Mpi::ReduceOp::Sum: return a + b;
  }
  return a;
}

}  // namespace

std::shared_ptr<const std::vector<std::uint64_t>> Mpi::reduce(
    std::span<const std::uint64_t> elems, bool scatter, ReduceOp op) {
  Machine& m = *machine_;
  const int P = size();

  struct Captured {
    std::shared_ptr<std::vector<std::uint64_t>> accum;
    sim::EventPtr release;
  };
  Captured cap = ctx_->act([&]() -> Captured {
    Machine::ReduceSlot& slot = m.reduce_;
    if (!slot.accum) {
      slot.accum = std::make_shared<std::vector<std::uint64_t>>(
          elems.size(), reduce_identity(op));
      slot.op = static_cast<int>(op);
      slot.scatter = scatter;
    }
    TPIO_CHECK(slot.accum->size() == elems.size() &&
                   slot.op == static_cast<int>(op) &&
                   slot.scatter == scatter,
               "mismatched reduce calls across ranks");
    for (std::size_t i = 0; i < elems.size(); ++i) {
      (*slot.accum)[i] = reduce_fold((*slot.accum)[i], elems[i], op);
    }
    slot.arrived += 1;
    slot.max_clock = std::max(slot.max_clock, ctx_->now());
    Captured c{slot.accum, slot.release};
    if (slot.arrived == P) {
      sim::Duration cost = 0;
      if (P > 1) {
        const auto n = static_cast<std::uint64_t>(elems.size()) *
                       sizeof(std::uint64_t);
        const sim::Duration lat = m.fabric().params().inter_latency;
        const double bw = m.fabric().params().inter_bw;
        const auto log_p = static_cast<sim::Duration>(ceil_log2(P));
        // Recursive halving moves (P-1)/P of the vector per rank in
        // ceil(log2 P) rounds; the butterfly allreduce is a reduce_scatter
        // followed by its mirror allgather — both terms doubled.
        const auto rounds = scatter ? log_p : 2 * log_p;
        const std::uint64_t vol = scatter ? n - n / static_cast<std::uint64_t>(P)
                                          : 2 * (n - n / static_cast<std::uint64_t>(P));
        cost = rounds * lat + sim::transfer_time(vol, bw) +
               m.sync_collective_cost(P);
      }
      ctx_->complete(*slot.release, slot.max_clock + cost);
      slot = Machine::ReduceSlot{};  // open next generation
    }
    return c;
  });
  ctx_->wait_event(*cap.release, "mpi.reduce");
  return cap.accum;
}

std::uint64_t Mpi::reduce_scatter(std::span<const std::uint64_t> elems,
                                  ReduceOp op) {
  TPIO_CHECK(elems.size() == static_cast<std::size_t>(size()),
             "reduce_scatter: one element per rank required");
  return (*reduce(elems, /*scatter=*/true, op))[static_cast<std::size_t>(
      rank())];
}

std::uint64_t Mpi::allreduce(std::uint64_t v, ReduceOp op) {
  return (*reduce({&v, 1}, /*scatter=*/false, op))[0];
}

std::uint64_t Mpi::allreduce_max(std::uint64_t v) {
  return allreduce(v, ReduceOp::Max);
}

std::uint64_t Mpi::allreduce_min(std::uint64_t v) {
  return allreduce(v, ReduceOp::Min);
}

std::uint64_t Mpi::allreduce_sum(std::uint64_t v) {
  return allreduce(v, ReduceOp::Sum);
}

std::vector<std::vector<std::byte>> Mpi::gatherv(
    std::span<const std::byte> mine, int root) {
  TPIO_CHECK(root >= 0 && root < size(), "gatherv: root out of range");
  auto table = exchange(mine, kGatherv, root, {0, 0});
  if (rank() != root) {
    // Non-roots never see the gathered set (and never pay for holding it).
    return std::vector<std::vector<std::byte>>(table->size());
  }
  return *table;
}

std::vector<std::byte> detail::scatterv_unpack(
    std::span<const std::byte> packed, int nprocs, int rank) {
  const auto P = static_cast<std::size_t>(nprocs);
  TPIO_CHECK(packed.size() >= P * sizeof(std::uint64_t),
             "scatterv: malformed root payload");
  std::vector<std::uint64_t> sizes(P);
  std::memcpy(sizes.data(), packed.data(), P * sizeof(std::uint64_t));
  std::size_t pos = P * sizeof(std::uint64_t);
  for (std::size_t r = 0; r < P; ++r) {
    TPIO_CHECK(sizes[r] <= packed.size() - pos,
               "scatterv: size table overruns the root payload");
    pos += sizes[r];
  }
  pos = P * sizeof(std::uint64_t);
  for (std::size_t r = 0; r < static_cast<std::size_t>(rank); ++r) {
    pos += sizes[r];
  }
  std::vector<std::byte> out(sizes[static_cast<std::size_t>(rank)]);
  std::memcpy(out.data(), packed.data() + pos, out.size());
  return out;
}

std::vector<std::byte> Mpi::scatterv(
    const std::vector<std::vector<std::byte>>& blobs, int root) {
  TPIO_CHECK(root >= 0 && root < size(), "scatterv: root out of range");
  TPIO_CHECK(rank() != root ||
                 blobs.size() == static_cast<std::size_t>(size()),
             "scatterv: root must supply one blob per rank");
  // Root contributes the concatenation; per-rank sizes ride in a header.
  std::vector<std::byte> mine;
  if (rank() == root) {
    std::vector<std::uint64_t> sizes;
    sizes.reserve(blobs.size());
    std::size_t total = 0;
    for (const auto& b : blobs) {
      sizes.push_back(b.size());
      total += b.size();
    }
    mine.resize(sizes.size() * sizeof(std::uint64_t) + total);
    std::memcpy(mine.data(), sizes.data(), sizes.size() * sizeof(std::uint64_t));
    std::size_t pos = sizes.size() * sizeof(std::uint64_t);
    for (const auto& b : blobs) {
      std::memcpy(mine.data() + pos, b.data(), b.size());
      pos += b.size();
    }
  }
  auto table = exchange(mine, kScatterv, root, {0, 0});
  return detail::scatterv_unpack((*table)[static_cast<std::size_t>(root)],
                                 size(), rank());
}

void Mpi::bcast(std::span<std::byte> data, int root) {
  TPIO_CHECK(root >= 0 && root < size(), "bcast: root out of range");
  auto table =
      exchange(rank() == root
                   ? std::span<const std::byte>(data.data(), data.size())
                   : std::span<const std::byte>{},
               kBcast, root, {0, 0});
  const auto& src = (*table)[static_cast<std::size_t>(root)];
  TPIO_CHECK(src.size() == data.size(), "bcast size mismatch across ranks");
  if (rank() != root) std::memcpy(data.data(), src.data(), src.size());
}

}  // namespace tpio::smpi
