#include <algorithm>
#include <bit>
#include <cstring>

#include "mpi/internal.hpp"
#include "mpi/mpi.hpp"
#include "simbase/error.hpp"

namespace tpio::smpi {

using detail::ceil_log2;
using detail::kControlBytes;

Machine::Machine(net::Fabric& fabric, const MpiParams& params)
    : fabric_(&fabric),
      params_(params),
      endpoints_(static_cast<std::size_t>(fabric.topology().nprocs())),
      barrier_sync_(fabric.topology().nprocs()),
      leader_sync_(fabric.topology().nodes),
      win_sync_(fabric.topology().nprocs()) {
  const net::Topology& topo = fabric.topology();
  node_sync_.reserve(static_cast<std::size_t>(topo.nodes));
  for (int n = 0; n < topo.nodes; ++n) {
    node_sync_.push_back(std::make_unique<sim::SyncPoint>(
        topo.node_last(n) - topo.node_first(n)));
  }
}

sim::Duration Machine::sync_collective_cost(int parties) const {
  return static_cast<sim::Duration>(ceil_log2(std::max(parties, 1))) *
         params_.collective_hop;
}

sim::Time Machine::progress_at(int rank, sim::Time t) const {
  if (params_.progress_thread) return t;
  return std::max(t, endpoints_[static_cast<std::size_t>(rank)].unavailable_until);
}

sim::Time Machine::finish_rendezvous(const Message& msg, int dst,
                                     std::span<std::byte> buf,
                                     sim::Time match_time) {
  TPIO_CHECK(msg.rendezvous, "finish_rendezvous on eager message");
  TPIO_CHECK(buf.size() >= msg.rndv_data.size(),
             "receive buffer smaller than rendezvous message");
  // The target's MPI engine processes the RTS no earlier than both the RTS
  // arrival and the match instant, then returns a clear-to-send.
  const sim::Time rts_processed = std::max(msg.arrival, match_time);
  const sim::Time cts_arrival =
      fabric_->transfer_control(dst, msg.src, rts_processed);
  // Bulk data moves once the sender side is both past its post time and has
  // received the CTS; the transfer itself is NIC-driven (RDMA), so neither
  // CPU is charged for the bytes.
  const sim::Time depart = std::max(cts_arrival, msg.sender_post);
  const sim::Time data_arrival =
      fabric_->transfer(msg.src, dst, msg.rndv_data.size(), depart);
  std::memcpy(buf.data(), msg.rndv_data.data(), msg.rndv_data.size());
  return data_arrival;
}

// --------------------------------------------------------------------------
// Mpi: point-to-point
// --------------------------------------------------------------------------

Mpi::Mpi(Machine& machine, sim::RankCtx& ctx)
    : machine_(&machine), ctx_(&ctx) {
  TPIO_CHECK(ctx.size() == machine.size(),
             "conductor rank count differs from fabric topology");
}

int Mpi::size() const { return machine_->size(); }

Request Mpi::isend(int dst, Tag tag, std::span<const std::byte> data) {
  TPIO_CHECK(dst >= 0 && dst < size(), "isend: destination out of range");
  Machine& m = *machine_;
  ctx_->advance(m.params_.send_overhead);
  auto done = std::make_shared<sim::Event>();

  ctx_->act([&] {
    Machine::Endpoint& ep = m.endpoints_[static_cast<std::size_t>(dst)];
    const bool eager = data.size() <= m.params_.eager_limit;
    if (eager) {
      const sim::Time arrival =
          m.fabric_->transfer(rank(), dst, data.size(), ctx_->now());
      // Try to land directly in a matching pre-posted receive (no target
      // CPU needed: tag matching is offloaded for the eager path).
      auto it = std::find_if(ep.posted.begin(), ep.posted.end(),
                             [&](const Machine::PostedRecv& r) {
                               return Machine::matches(r, rank(), tag);
                             });
      if (it != ep.posted.end()) {
        TPIO_CHECK(it->buf.size() >= data.size(),
                   "receive buffer smaller than incoming message");
        std::memcpy(it->buf.data(), data.data(), data.size());
        ctx_->complete(*it->done, arrival + m.params_.recv_overhead);
        ep.posted.erase(it);
      } else {
        Machine::Message msg;
        msg.src = rank();
        msg.tag = tag;
        msg.rendezvous = false;
        msg.payload.assign(data.begin(), data.end());
        msg.arrival = arrival;
        ep.unexpected.push_back(std::move(msg));
      }
      // Eager sends complete locally as soon as the payload is injected.
      ctx_->complete(*done, ctx_->now());
      return;
    }

    // Rendezvous: only an RTS goes out now; the bulk transfer is scheduled
    // when the target matches it (which requires target-side MPI progress).
    const sim::Time rts_arrival =
        m.fabric_->transfer_control(rank(), dst, ctx_->now());
    Machine::Message msg;
    msg.src = rank();
    msg.tag = tag;
    msg.rendezvous = true;
    msg.rndv_data = data;
    msg.arrival = rts_arrival;
    msg.sender_post = ctx_->now();
    msg.send_done = done;

    auto it = std::find_if(ep.posted.begin(), ep.posted.end(),
                           [&](const Machine::PostedRecv& r) {
                             return Machine::matches(r, rank(), tag);
                           });
    if (it != ep.posted.end()) {
      // Pre-posted receive: the handshake is serviced at the target's next
      // MPI-progress opportunity after the RTS lands.
      const sim::Time match = m.progress_at(dst, rts_arrival);
      const sim::Time data_arrival =
          m.finish_rendezvous(msg, dst, it->buf, match);
      ctx_->complete(*it->done, data_arrival + m.params_.recv_overhead);
      ctx_->complete(*done, data_arrival);
      ep.posted.erase(it);
    } else {
      ep.unexpected.push_back(std::move(msg));
    }
  });
  return Request(std::move(done));
}

Request Mpi::irecv(int src, Tag tag, std::span<std::byte> buf) {
  TPIO_CHECK(src == kAnySource || (src >= 0 && src < size()),
             "irecv: source out of range");
  Machine& m = *machine_;
  auto done = std::make_shared<sim::Event>();

  ctx_->act([&] {
    Machine::Endpoint& ep = m.endpoints_[static_cast<std::size_t>(rank())];
    // Walk the unexpected queue in arrival order; each scanned entry costs
    // CPU — the queue-depth penalty aggregators pay with two-sided shuffles.
    std::size_t scanned = 0;
    auto it = ep.unexpected.begin();
    for (; it != ep.unexpected.end(); ++it) {
      ++scanned;
      if ((src == kAnySource || it->src == src) && it->tag == tag) break;
    }
    ctx_->advance(static_cast<sim::Duration>(scanned) * m.params_.match_cost);

    if (it == ep.unexpected.end()) {
      ep.posted.push_back(Machine::PostedRecv{src, tag, buf, done});
      return;
    }

    if (!it->rendezvous) {
      TPIO_CHECK(buf.size() >= it->payload.size(),
                 "receive buffer smaller than incoming message");
      std::memcpy(buf.data(), it->payload.data(), it->payload.size());
      const sim::Time t = std::max(ctx_->now(), it->arrival);
      ctx_->complete(*done, t + m.params_.recv_overhead);
    } else {
      // We are inside an MPI call right now, so the RTS is serviced here.
      const sim::Time data_arrival =
          m.finish_rendezvous(*it, rank(), buf, ctx_->now());
      ctx_->complete(*it->send_done, data_arrival);
      ctx_->complete(*done, data_arrival + m.params_.recv_overhead);
    }
    ep.unexpected.erase(it);
  });
  return Request(std::move(done));
}

void Mpi::send(int dst, Tag tag, std::span<const std::byte> data) {
  Request r = isend(dst, tag, data);
  wait(r);
}

void Mpi::recv(int src, Tag tag, std::span<std::byte> buf) {
  Request r = irecv(src, tag, buf);
  wait(r);
}

void Mpi::wait(Request& req) {
  TPIO_CHECK(req.valid(), "wait on an empty request");
  ctx_->wait_event(*req.ev_, "mpi.wait");
  req.ev_.reset();
}

void Mpi::waitall(std::span<Request> reqs) {
  for (Request& r : reqs) {
    if (r.valid()) wait(r);
  }
}

bool Mpi::test(Request& req) {
  TPIO_CHECK(req.valid(), "test on an empty request");
  const bool done = ctx_->test_event(*req.ev_, sim::nanoseconds(100));
  if (done) req.ev_.reset();
  return done;
}

void Mpi::set_unavailable_until(sim::Time t) {
  Machine& m = *machine_;
  ctx_->act([&] {
    auto& until = m.endpoints_[static_cast<std::size_t>(rank())].unavailable_until;
    until = std::max(until, t);
  });
}

}  // namespace tpio::smpi
