#include <algorithm>
#include <cstring>

#include "mpi/internal.hpp"
#include "mpi/mpi.hpp"
#include "simbase/error.hpp"

namespace tpio::smpi {

using detail::kControlBytes;

Window::Window(Machine& m)
    : origin_put_arrival_(
          static_cast<std::size_t>(m.size()),
          std::vector<sim::Time>(static_cast<std::size_t>(m.size()), 0)),
      machine_(&m),
      targets_(static_cast<std::size_t>(m.size())),
      fence_sync_(m.size()) {}

std::span<std::byte> Window::local(int rank) {
  return targets_[static_cast<std::size_t>(rank)].mem;
}

std::size_t Window::local_size(int rank) const {
  return targets_[static_cast<std::size_t>(rank)].mem.size();
}

std::shared_ptr<Window> Mpi::win_allocate(std::size_t local_bytes) {
  Machine& m = *machine_;
  const int P = size();
  // Pinning the exposed pages is CPU work before the collective sync.
  const auto pages = static_cast<sim::Duration>((local_bytes + 4095) / 4096);
  ctx_->advance(pages * m.params_.win_register_per_page);
  std::shared_ptr<Window> win = ctx_->act([&] {
    Machine::WinCreateSlot& slot = m.win_create_;
    if (!slot.win) slot.win = std::shared_ptr<Window>(new Window(m));
    slot.win->targets_[static_cast<std::size_t>(rank())].mem.resize(local_bytes);
    std::shared_ptr<Window> w = slot.win;
    slot.arrived += 1;
    if (slot.arrived == P) slot = Machine::WinCreateSlot{};
    return w;
  });
  // Allocation is collective and synchronizing.
  m.barrier_sync_.arrive(*ctx_, m.sync_collective_cost(P), /*floor=*/0,
                         "mpi.win_allocate");
  return win;
}

void Mpi::put(Window& win, int target, std::size_t target_offset,
              std::span<const std::byte> data) {
  TPIO_CHECK(target >= 0 && target < size(), "put: target out of range");
  if (data.empty()) return;
  Machine& m = *machine_;
  ctx_->advance(m.params_.put_overhead);
  ctx_->act([&] {
    Window::TargetState& t = win.targets_[static_cast<std::size_t>(target)];
    TPIO_CHECK(target_offset + data.size() <= t.mem.size(),
               "put outside the target window");
    // The NIC moves the bytes; no CPU at the target, no matching anywhere.
    const sim::Time arrival =
        m.fabric_->transfer(rank(), target, data.size(), ctx_->now());
    std::memcpy(t.mem.data() + target_offset, data.data(), data.size());
    t.epoch_last_arrival = std::max(t.epoch_last_arrival, arrival);
    auto& mine = win.origin_put_arrival_[static_cast<std::size_t>(rank())]
                                        [static_cast<std::size_t>(target)];
    mine = std::max(mine, arrival);
  });
}

void Mpi::win_fence(Window& win) {
  Machine& m = *machine_;
  // The closing fence cannot release before every put of the epoch has
  // landed. Each arriver passes the epoch's current arrival maximum as a
  // floor; the sync point takes the max over arrivers, and by baton
  // ordering the *last* arriver observes every committed put of the epoch,
  // so the release time is exact.
  const int P = size();
  const sim::Time floor = ctx_->act([&] {
    sim::Time f = 0;
    for (const auto& t : win.targets_) {
      f = std::max(f, t.epoch_last_arrival);
    }
    return f;
  });
  const auto cost = static_cast<sim::Duration>(
      static_cast<double>(m.sync_collective_cost(P)) *
      m.params().fence_cost_factor);
  win.fence_sync_.arrive(*ctx_, cost, floor, "mpi.win_fence");
  // Open the next epoch. The guard keeps the reset from erasing a put that
  // an already-released rank issued for the new epoch (such a put's
  // arrival necessarily lies after this rank's post-release clock):
  ctx_->act([&] {
    for (auto& t : win.targets_) {
      if (t.epoch_last_arrival <= ctx_->now()) t.epoch_last_arrival = 0;
    }
  });
}

void Mpi::win_lock(Window& win, int target, LockType type) {
  TPIO_CHECK(target >= 0 && target < size(), "win_lock: target out of range");
  Machine& m = *machine_;
  auto granted = std::make_shared<sim::Event>();
  ctx_->act([&] {
    Window::TargetState& t = win.targets_[static_cast<std::size_t>(target)];
    const bool free_now =
        !t.exclusive_held &&
        (type == LockType::Shared ? t.queue.empty()
                                  : (t.shared_holders == 0 && t.queue.empty()));
    if (free_now) {
      if (type == LockType::Exclusive) {
        t.exclusive_held = true;
      } else {
        t.shared_holders += 1;
      }
      // Lock acquisition: control message to the target, serial handling
      // by the target's lock agent, response back. The lock is only
      // virtually free after the previous holder's release.
      const auto iv = t.lock_agent.reserve(
          std::max(ctx_->now() + m.params_.rma_control_latency,
                   t.last_release),
          m.params_.lock_service);
      ctx_->complete(*granted, iv.end + m.params_.rma_control_latency);
    } else {
      t.queue.push_back(Window::LockWaiter{rank(), type, granted});
    }
  });
  ctx_->wait_event(*granted, "mpi.win_lock");
}

void Mpi::win_unlock(Window& win, int target) {
  Machine& m = *machine_;
  ctx_->act([&] {
    Window::TargetState& t = win.targets_[static_cast<std::size_t>(target)];
    auto& mine = win.origin_put_arrival_[static_cast<std::size_t>(rank())]
                                        [static_cast<std::size_t>(target)];
    // Passive-target completion: unlock returns only after this origin's
    // RMA operations on the target have landed.
    const sim::Time flush = std::max(ctx_->now(), mine);
    mine = 0;
    // The release notification is handled by the same serial lock agent.
    const auto iv = t.lock_agent.reserve(
        flush + m.params_.rma_control_latency, m.params_.lock_service);
    const sim::Time released = iv.end;
    t.last_release = std::max(t.last_release, released);
    if (t.exclusive_held) {
      t.exclusive_held = false;
    } else {
      TPIO_CHECK(t.shared_holders > 0, "unlock without a held lock");
      t.shared_holders -= 1;
    }
    // Grant queued waiters in FIFO order: one exclusive, or a run of
    // shared locks.
    while (!t.queue.empty()) {
      Window::LockWaiter& w = t.queue.front();
      if (w.type == LockType::Exclusive) {
        if (t.shared_holders > 0 || t.exclusive_held) break;
        t.exclusive_held = true;
        ctx_->complete(*w.granted,
                       t.last_release + 2 * m.params_.rma_control_latency);
        t.queue.pop_front();
        break;
      }
      if (t.exclusive_held) break;
      t.shared_holders += 1;
      ctx_->complete(*w.granted,
                     t.last_release + 2 * m.params_.rma_control_latency);
      t.queue.pop_front();
    }
    ctx_->advance_to(released);
  });
}

}  // namespace tpio::smpi
