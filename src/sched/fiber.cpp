#include "sched/fiber.hpp"

#include <sys/mman.h>
#include <unistd.h>

#include <cstdint>
#include <cstdlib>

#include "simbase/error.hpp"

// Sanitizer feature detection (GCC defines __SANITIZE_*, Clang exposes
// __has_feature).
#if defined(__SANITIZE_ADDRESS__)
#define TPIO_FIBER_ASAN 1
#endif
#if defined(__SANITIZE_THREAD__)
#define TPIO_FIBER_TSAN 1
#endif
#if defined(__has_feature)
#if __has_feature(address_sanitizer) && !defined(TPIO_FIBER_ASAN)
#define TPIO_FIBER_ASAN 1
#endif
#if __has_feature(thread_sanitizer) && !defined(TPIO_FIBER_TSAN)
#define TPIO_FIBER_TSAN 1
#endif
#endif

#ifdef TPIO_FIBER_ASAN
#include <sanitizer/common_interface_defs.h>
#endif
#ifdef TPIO_FIBER_TSAN
#include <sanitizer/tsan_interface.h>
#endif

// The x86-64 switcher is a dozen instructions; every other architecture
// falls back to ucontext (correct everywhere POSIX, costs a sigprocmask
// syscall pair per switch). -DTPIO_FIBER_UCONTEXT forces the fallback.
#if defined(__x86_64__) && !defined(TPIO_FIBER_UCONTEXT)
#define TPIO_FIBER_ASM_X86_64 1
#else
#include <ucontext.h>
#endif

namespace tpio::sim {

namespace {

thread_local Fiber* t_current = nullptr;

std::size_t round_up(std::size_t n, std::size_t align) {
  return (n + align - 1) / align * align;
}

std::size_t page_size() {
  const long p = ::sysconf(_SC_PAGESIZE);
  return p > 0 ? static_cast<std::size_t>(p) : 4096;
}

}  // namespace

extern "C" void tpio_fiber_main(void* f);

#ifdef TPIO_FIBER_ASM_X86_64

// tpio_fiber_swap(save_sp /*rdi*/, load_sp /*rsi*/): push the SysV
// callee-saved state (GP registers plus the mxcsr/x87 control words),
// publish the old stack pointer through *save_sp, adopt the new stack and
// return on it. The matching initial frame is built in the constructor.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl tpio_fiber_swap\n"
    ".hidden tpio_fiber_swap\n"
    ".type tpio_fiber_swap,@function\n"
    "tpio_fiber_swap:\n"
    "  pushq %rbp\n"
    "  pushq %rbx\n"
    "  pushq %r12\n"
    "  pushq %r13\n"
    "  pushq %r14\n"
    "  pushq %r15\n"
    "  subq $8, %rsp\n"
    "  stmxcsr (%rsp)\n"
    "  fnstcw 4(%rsp)\n"
    "  movq %rsp, (%rdi)\n"
    "  movq %rsi, %rsp\n"
    "  ldmxcsr (%rsp)\n"
    "  fldcw 4(%rsp)\n"
    "  addq $8, %rsp\n"
    "  popq %r15\n"
    "  popq %r14\n"
    "  popq %r13\n"
    "  popq %r12\n"
    "  popq %rbx\n"
    "  popq %rbp\n"
    "  retq\n"
    ".size tpio_fiber_swap, .-tpio_fiber_swap\n");

// First activation of a fiber lands here via the ret in tpio_fiber_swap,
// with the Fiber* planted in %r12 by the initial frame. .cfi_undefined rip
// terminates any unwind attempt at the stack base.
__asm__(
    ".text\n"
    ".align 16\n"
    ".globl tpio_fiber_trampoline\n"
    ".hidden tpio_fiber_trampoline\n"
    ".type tpio_fiber_trampoline,@function\n"
    "tpio_fiber_trampoline:\n"
    ".cfi_startproc\n"
    ".cfi_undefined rip\n"
    "  movq %r12, %rdi\n"
    "  callq tpio_fiber_main\n"
    "  ud2\n"
    ".cfi_endproc\n"
    ".size tpio_fiber_trampoline, .-tpio_fiber_trampoline\n");

extern "C" {
void tpio_fiber_swap(void** save_sp, void* load_sp);
void tpio_fiber_trampoline();
}

#else  // ucontext fallback

namespace {
struct UcPair {
  ucontext_t fiber_uc;
  ucontext_t host_uc;
};

void uc_trampoline(unsigned hi, unsigned lo) {
  tpio_fiber_main(reinterpret_cast<void*>(
      (static_cast<std::uintptr_t>(hi) << 32) |
      static_cast<std::uintptr_t>(lo)));
}
}  // namespace

#endif

Fiber::Fiber(std::size_t stack_bytes, Entry entry, void* arg)
    : entry_(entry), arg_(arg) {
  const std::size_t page = page_size();
  stack_bytes_ = round_up(std::max(stack_bytes, page), page);
  map_bytes_ = stack_bytes_ + page;  // + guard page below the stack
  void* m = ::mmap(nullptr, map_bytes_, PROT_READ | PROT_WRITE,
                   MAP_PRIVATE | MAP_ANONYMOUS | MAP_NORESERVE | MAP_STACK,
                   -1, 0);
  TPIO_CHECK(m != MAP_FAILED, "fiber stack mmap failed");
  TPIO_CHECK(::mprotect(m, page, PROT_NONE) == 0,
             "fiber guard-page mprotect failed");
  map_base_ = m;
  stack_lo_ = static_cast<char*>(m) + page;

#ifdef TPIO_FIBER_ASM_X86_64
  // Initial frame, mirroring tpio_fiber_swap's save layout (ascending):
  //   [mxcsr|fcw][r15][r14][r13][r12 = this][rbx][rbp][ret = trampoline]
  // Top-of-stack is page-aligned, so rsp % 16 == 0 when the trampoline
  // begins and the ABI alignment holds at the call below it.
  char* top = static_cast<char*>(stack_lo_) + stack_bytes_;
  void** slots = reinterpret_cast<void**>(top) - 8;
  std::uint32_t* fpw = reinterpret_cast<std::uint32_t*>(&slots[0]);
  std::uint32_t mxcsr = 0;
  std::uint16_t fcw = 0;
  __asm__ volatile("stmxcsr %0" : "=m"(mxcsr));
  __asm__ volatile("fnstcw %0" : "=m"(fcw));
  fpw[0] = mxcsr;
  fpw[1] = fcw;
  slots[1] = nullptr;  // r15
  slots[2] = nullptr;  // r14
  slots[3] = nullptr;  // r13
  slots[4] = this;     // r12 -> trampoline's argument
  slots[5] = nullptr;  // rbx
  slots[6] = nullptr;  // rbp
  slots[7] = reinterpret_cast<void*>(&tpio_fiber_trampoline);
  fiber_sp_ = slots;
#else
  auto* uc = new UcPair{};
  TPIO_CHECK(::getcontext(&uc->fiber_uc) == 0, "getcontext failed");
  uc->fiber_uc.uc_stack.ss_sp = stack_lo_;
  uc->fiber_uc.uc_stack.ss_size = stack_bytes_;
  uc->fiber_uc.uc_link = nullptr;
  const auto self = reinterpret_cast<std::uintptr_t>(this);
  ::makecontext(&uc->fiber_uc, reinterpret_cast<void (*)()>(&uc_trampoline),
                2, static_cast<unsigned>(self >> 32),
                static_cast<unsigned>(self & 0xFFFFFFFFu));
  fiber_sp_ = uc;
#endif

#ifdef TPIO_FIBER_TSAN
  tsan_fiber_ = __tsan_create_fiber(0);
#endif
}

Fiber::~Fiber() {
#ifdef TPIO_FIBER_TSAN
  if (tsan_fiber_) __tsan_destroy_fiber(tsan_fiber_);
#endif
#ifndef TPIO_FIBER_ASM_X86_64
  delete static_cast<UcPair*>(fiber_sp_);
#endif
  if (map_base_) ::munmap(map_base_, map_bytes_);
}

Fiber* Fiber::current() { return t_current; }

void Fiber::resume() {
  TPIO_CHECK(!finished_, "resume of a finished fiber");
  TPIO_CHECK(t_current != this, "re-entrant resume of a running fiber");
  Fiber* prev = t_current;
  t_current = this;
#ifdef TPIO_FIBER_TSAN
  tsan_host_ = __tsan_get_current_fiber();
  __tsan_switch_to_fiber(tsan_fiber_, 0);
#endif
#ifdef TPIO_FIBER_ASAN
  __sanitizer_start_switch_fiber(&asan_host_fake_, stack_lo_, stack_bytes_);
#endif
#ifdef TPIO_FIBER_ASM_X86_64
  tpio_fiber_swap(&host_sp_, fiber_sp_);
#else
  auto* uc = static_cast<UcPair*>(fiber_sp_);
  TPIO_CHECK(::swapcontext(&uc->host_uc, &uc->fiber_uc) == 0,
             "swapcontext into fiber failed");
#endif
  // Back on the host stack: the fiber suspended or finished.
#ifdef TPIO_FIBER_ASAN
  __sanitizer_finish_switch_fiber(asan_host_fake_, nullptr, nullptr);
#endif
  t_current = prev;
}

void Fiber::suspend() {
  Fiber* f = t_current;
  TPIO_CHECK(f != nullptr, "Fiber::suspend outside a running fiber");
#ifdef TPIO_FIBER_TSAN
  __tsan_switch_to_fiber(f->tsan_host_, 0);
#endif
#ifdef TPIO_FIBER_ASAN
  __sanitizer_start_switch_fiber(&f->asan_fiber_fake_, f->asan_host_bottom_,
                                 f->asan_host_size_);
#endif
#ifdef TPIO_FIBER_ASM_X86_64
  tpio_fiber_swap(&f->fiber_sp_, f->host_sp_);
#else
  auto* uc = static_cast<UcPair*>(f->fiber_sp_);
  TPIO_CHECK(::swapcontext(&uc->fiber_uc, &uc->host_uc) == 0,
             "swapcontext to host failed");
#endif
  // Resumed again.
#ifdef TPIO_FIBER_ASAN
  __sanitizer_finish_switch_fiber(f->asan_fiber_fake_, &f->asan_host_bottom_,
                                  &f->asan_host_size_);
#endif
}

void Fiber::run_entry(Fiber* f) {
#ifdef TPIO_FIBER_ASAN
  // First arrival on this stack: no fake stack to restore yet; capture the
  // host stack bounds for the switches back.
  __sanitizer_finish_switch_fiber(nullptr, &f->asan_host_bottom_,
                                  &f->asan_host_size_);
#endif
  f->entry_(f->arg_);
  f->finished_ = true;
  // Final switch home; this context is never resumed again.
#ifdef TPIO_FIBER_TSAN
  __tsan_switch_to_fiber(f->tsan_host_, 0);
#endif
#ifdef TPIO_FIBER_ASAN
  // nullptr releases this fiber's fake stack: it is dying.
  __sanitizer_start_switch_fiber(nullptr, f->asan_host_bottom_,
                                 f->asan_host_size_);
#endif
#ifdef TPIO_FIBER_ASM_X86_64
  void* discard = nullptr;
  tpio_fiber_swap(&discard, f->host_sp_);
#else
  auto* uc = static_cast<UcPair*>(f->fiber_sp_);
  (void)::swapcontext(&uc->fiber_uc, &uc->host_uc);
#endif
  // Unreachable: a finished fiber is never resumed (asserted in resume()).
}

extern "C" void tpio_fiber_main(void* f) {
  Fiber::run_entry(static_cast<Fiber*>(f));
}

std::size_t Fiber::default_stack_bytes() {
  // Re-read per call (called once per Conductor::run, not per switch) so
  // tests and long-lived processes can adjust the override.
  if (const char* e = std::getenv("TPIO_FIBER_STACK_KB")) {
    char* end = nullptr;
    const unsigned long kb = std::strtoul(e, &end, 10);
    if (end != e && *end == '\0' && kb >= 16 && kb <= (1ul << 20)) {
      return static_cast<std::size_t>(kb) << 10;
    }
  }
#if defined(TPIO_FIBER_ASAN) || defined(TPIO_FIBER_TSAN)
  return std::size_t{1} << 20;
#else
  return std::size_t{256} << 10;
#endif
}

}  // namespace tpio::sim
