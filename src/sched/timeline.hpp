#pragma once

#include <string>

#include "simbase/rng.hpp"
#include "simbase/time.hpp"

namespace tpio::sim {

/// A serially-reusable modelled resource (a NIC direction, a storage target,
/// an I/O server): requests are served FIFO in the order they are committed
/// under the simulation baton, which — because the baton enforces
/// virtual-time order — is virtual-time order of the requesting actions.
///
/// `reserve()` returns the service interval [start, end): start is
/// max(earliest, previous end) and the duration may be inflated by the
/// attached noise model (shared-machine variability).
class Timeline {
 public:
  explicit Timeline(std::string name = "") : name_(std::move(name)) {}

  struct Interval {
    Time start;
    Time end;
  };

  /// Must be called while holding the simulation baton.
  Interval reserve(Time earliest, Duration duration);

  /// Attach (or detach with nullptr) a noise source; not owned.
  void set_noise(NoiseModel* noise) { noise_ = noise; }

  Time next_free() const { return next_free_; }
  Duration busy_time() const { return busy_; }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  Time next_free_ = 0;
  Duration busy_ = 0;
  NoiseModel* noise_ = nullptr;
};

}  // namespace tpio::sim
