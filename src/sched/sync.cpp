#include "sched/sync.hpp"

#include <algorithm>

#include "simbase/error.hpp"

namespace tpio::sim {

SyncPoint::SyncPoint(int parties) : parties_(parties) {
  TPIO_CHECK(parties > 0, "SyncPoint needs at least one party");
}

Time SyncPoint::arrive(RankCtx& ctx, Duration extra_cost, Time floor,
                       const char* site) {
  EventPtr release = ctx.act([&] {
    Generation& g = active_;
    g.arrived += 1;
    g.max_clock = std::max({g.max_clock, ctx.now(), floor});
    g.max_extra = std::max(g.max_extra, extra_cost);
    EventPtr ev = g.release;
    if (g.arrived == parties_) {
      ctx.complete(*ev, g.max_clock + g.max_extra);
      active_ = Generation{};  // open the next generation
    }
    return ev;
  });
  ctx.wait_event(*release, site);
  return release->time();
}

}  // namespace tpio::sim
