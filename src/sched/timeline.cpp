#include "sched/timeline.hpp"

#include <algorithm>
#include <cmath>

#include "simbase/error.hpp"

namespace tpio::sim {

Timeline::Interval Timeline::reserve(Time earliest, Duration duration) {
  TPIO_CHECK(earliest >= 0, "reserve with negative start");
  TPIO_CHECK(duration >= 0, "reserve with negative duration");
  Duration d = duration;
  if (noise_ != nullptr && duration > 0) {
    d = static_cast<Duration>(
        std::llround(static_cast<double>(duration) * noise_->factor()));
    d = std::max<Duration>(d, 1);
  }
  const Time start = std::max(earliest, next_free_);
  const Time end = start + d;
  next_free_ = end;
  busy_ += d;
  return {start, end};
}

}  // namespace tpio::sim
