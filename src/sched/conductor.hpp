#pragma once

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <span>
#include <string>
#include <vector>

#include "sched/fiber.hpp"
#include "simbase/time.hpp"

namespace tpio::sim {

class Conductor;
class RankCtx;

/// How the conductor executes its rank programs.
///
/// `Fibers` (the default) multiplexes every rank as a cooperatively
/// scheduled stackful fiber on the single calling host thread: baton
/// handoffs and event waits are plain user-space context switches, so rank
/// counts are bounded by memory (a small stack per rank), not by OS
/// threads — this is what makes 576-process paper-scale runs and
/// 8192-rank sweeps feasible. `Threads` is the legacy thread-per-rank
/// execution, kept behind this flag for one release so differential tests
/// can assert the virtual schedules are bit-identical; it tops out around
/// the host's thread limits. Both backends produce identical schedules —
/// the baton protocol already serializes every action into one total
/// (clock, rank) order, so the N threads never bought parallelism.
enum class ConductorBackend { Fibers, Threads };

const char* to_string(ConductorBackend b);

/// One-shot completion notice carrying a virtual completion time.
///
/// Events are the only way simulated ranks wait for each other or for
/// modelled hardware (network transfers, storage requests). An event is
/// completed exactly once, by a rank acting under the baton, with a time
/// that must not precede that rank's own clock; waiters resume at
/// max(own clock, event time).
class Event {
 public:
  bool done() const { return done_; }
  Time time() const { return time_; }

 private:
  friend class Conductor;
  friend class RankCtx;
  bool done_ = false;
  Time time_ = 0;
  std::vector<int> waiters_;
};

using EventPtr = std::shared_ptr<Event>;

/// Per-rank handle passed to the rank's program.
///
/// All methods must be called from the owning rank's execution context
/// (its fiber, or its thread under the legacy backend). `act()` runs a
/// critical section under the global simulation baton: the section
/// executes only when this rank holds the minimal (clock, rank) pair
/// among runnable ranks, which serializes every mutation of shared
/// simulation state in virtual-time order and makes whole-program
/// schedules deterministic.
///
/// Multi-group (multi-tenant) runs: `rank()`/`size()` are *group-local* —
/// each tenant's program sees MPI-style ranks 0..n_t-1 — while the
/// scheduler orders the baton by a conductor-global id (tenant blocks in
/// registration order). A single-group conductor has global == local, so
/// solo runs are bit-identical to the pre-group code path.
class RankCtx {
 public:
  int rank() const { return rank_; }
  int size() const;
  /// Group (tenant) index this rank belongs to; 0 in single-group runs.
  int group() const { return group_; }
  Time now() const { return clock_; }

  /// Local computation: advance only this rank's clock. No synchronization.
  void advance(Duration d);

  /// Jump this rank's clock forward to `t` (no-op if already past it).
  void advance_to(Time t);

  /// Execute `fn()` while holding the simulation baton.
  /// `fn` may touch shared simulation state and complete events.
  template <class F>
  auto act(F&& fn) {
    baton_acquire();
    struct Releaser {
      RankCtx* c;
      ~Releaser() { c->baton_release(); }
    } rel{this};
    return fn();
  }

  /// Complete `ev` at time `t` (must be >= now()). Call under act().
  void complete(Event& ev, Time t);

  /// Block until `ev` completes; clock advances to max(now, ev.time()).
  /// `site` labels the wait in deadlock reports (static string only, e.g.
  /// "mpi.recv") — pass the most specific tag the caller knows.
  void wait_event(Event& ev, const char* site = "wait_event");

  /// Block until all events complete; clock ends at the max completion time
  /// (but never moves backwards).
  void wait_all_events(std::span<const EventPtr> evs,
                       const char* site = "wait_event");

  /// True once `ev` has completed — without blocking. Advances the clock by
  /// `poll_cost` to model the test call itself. (MPI_Test analogue.)
  bool test_event(Event& ev, Duration poll_cost = 0);

  Conductor& conductor() { return *conductor_; }

 private:
  friend class Conductor;
  RankCtx(Conductor* c, int gid);

  void baton_acquire();
  void baton_release();

  Conductor* conductor_;
  int gid_;    // conductor-global scheduling id (baton order)
  int rank_;   // group-local rank (what the program sees)
  int group_;  // owning group index
  Time clock_ = 0;
};

/// Deterministic discrete-event conductor.
///
/// Runs N rank programs — as cooperatively scheduled fibers on the calling
/// thread (default) or as N host threads (legacy backend) — granting the
/// right to mutate shared simulation state ("the baton") to the runnable
/// rank with the smallest (virtual clock, rank id). Blocked ranks are
/// excluded from the grant until another rank completes the event they
/// wait on. Given the same programs and seeds this yields bit-identical
/// virtual schedules on any host and either backend, regardless of OS
/// thread scheduling.
class Conductor {
 public:
  explicit Conductor(int nranks);
  Conductor(int nranks, ConductorBackend backend);
  /// Multi-group conductor: one block of ranks per group (tenant), all
  /// multiplexed on the same baton/fiber scheduler. Group g's ranks get
  /// global ids [base_g, base_g + sizes[g]) and see group-local
  /// rank()/size(); the baton still grants strictly by (clock, global id),
  /// so cross-tenant interleaving is a deterministic function of virtual
  /// time alone.
  explicit Conductor(const std::vector<int>& group_sizes);
  Conductor(const std::vector<int>& group_sizes, ConductorBackend backend);
  ~Conductor();

  /// Process-wide default backend: ConductorBackend::Fibers, unless the
  /// TPIO_CONDUCTOR environment variable ("fibers" | "threads") or
  /// set_default_backend() says otherwise.
  static ConductorBackend default_backend();
  static void set_default_backend(ConductorBackend b);

  ConductorBackend backend() const { return backend_; }

  /// Execute `program(ctx)` for every rank; returns when all rank
  /// programs have finished. Rethrows the first exception raised by any
  /// rank. Under the fiber backend everything runs on the calling thread.
  /// Multi-group conductors run the same program for every group (each
  /// rank still sees its group-local rank()/size()).
  void run(const std::function<void(RankCtx&)>& program);

  /// Execute `programs[g](ctx)` for every rank of every group g (one
  /// program per group; programs.size() must equal groups()). The
  /// per-group programs are multiplexed on one scheduler — the
  /// multi-tenant execution primitive.
  void run(const std::vector<std::function<void(RankCtx&)>>& programs);

  int size() const { return static_cast<int>(states_.size()); }

  int groups() const { return static_cast<int>(group_size_.size()); }
  int group_size(int g) const;
  /// Global id of group `g`'s rank 0.
  int group_base(int g) const;

  /// Virtual time at which global rank `rank` finished its program (valid
  /// after run()).
  Time finish_time(int rank) const;

  /// max over ranks of finish_time — the simulated wall-clock of the job.
  Time makespan() const;

  /// max over group `g`'s ranks of finish_time — the group's completion.
  Time group_makespan(int g) const;

  /// Total number of baton acquisitions (diagnostic / perf counter).
  std::uint64_t actions() const { return actions_; }

 private:
  friend class RankCtx;

  enum class Status { Runnable, Blocked, Done };

  struct FiberJob {
    Conductor* conductor = nullptr;
    int rank = 0;
    const std::function<void(RankCtx&)>* program = nullptr;
  };

  struct RankState {
    Time registered_clock = 0;
    Status status = Status::Runnable;
    bool wake_pending = false;
    const char* block_site = "";
    /// Times the abort protocol released this rank from a Blocked wait;
    /// must end at exactly 1 for ranks blocked when the run aborts.
    int abort_wakes = 0;
    Time finish_time = 0;
    std::condition_variable cv;    // Threads backend only
    std::unique_ptr<Fiber> fiber;  // Fibers backend only
    FiberJob job;
  };

  // Shared-state helpers. Under the Threads backend they require mutex_;
  // under the Fibers backend all of run() is single-threaded.
  bool is_min(int rank) const;
  void update_entry(int rank, Time clock);
  void notify_min();  // Threads only; no-op under Fibers
  void complete_locked(RankCtx& actor, Event& ev, Time t);
  void block_current(std::unique_lock<std::mutex>& lk, RankCtx& ctx,
                     const char* site);  // Threads
  void fiber_block_current(RankCtx& ctx, const char* site);

  /// All live ranks blocked? Records the verdict in first_error_ and
  /// aborts the run (waking every blocked rank exactly once). Never
  /// throws — callers act on aborted_.
  bool detect_deadlock();
  std::string deadlock_message() const;

  /// Record `e` as the run's error (first writer wins) and wake every
  /// blocked rank exactly once so it can unwind. Idempotent.
  void abort_with(std::exception_ptr e);
  [[noreturn]] void throw_aborted();

  void run_threads(const std::vector<std::function<void(RankCtx&)>>& programs);
  void run_fibers(const std::vector<std::function<void(RankCtx&)>>& programs);
  void fiber_body(int gid, const std::function<void(RankCtx&)>& program);
  int group_of(int gid) const;

  ConductorBackend backend_;
  std::vector<int> group_size_;  // ranks per group
  std::vector<int> group_base_;  // first global id per group
  std::mutex mutex_;
  std::vector<std::unique_ptr<RankState>> states_;
  std::set<std::pair<Time, int>> runnable_;
  int alive_ = 0;
  bool aborted_ = false;
  std::exception_ptr first_error_;
  std::uint64_t actions_ = 0;
};

}  // namespace tpio::sim
