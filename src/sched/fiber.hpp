#pragma once

#include <cstddef>

namespace tpio::sim {

extern "C" void tpio_fiber_main(void* f);

/// Minimal stackful coroutine ("fiber") for the conductor's cooperative
/// rank scheduler.
///
/// A fiber owns a private mmap'd stack (guard page below, MAP_NORESERVE so
/// untouched pages cost no RSS) and a saved register context. `resume()`
/// switches the calling host thread onto the fiber's stack until the fiber
/// either calls `suspend()` or returns from its entry function; control
/// then returns to the `resume()` caller. Switches are plain user-space
/// register swaps — no futex, no scheduler handoff, no syscall — which is
/// what lets one host thread multiplex thousands of simulated ranks.
///
/// Threading: a fiber must always be resumed from the same host thread
/// (the conductor drives all of a run's fibers from one thread; distinct
/// conductors on distinct threads are fine). `suspend()` must only be
/// called from inside a running fiber. Exceptions thrown inside a fiber
/// must be caught before the entry function returns — they cannot
/// propagate across the context switch.
///
/// Sanitizers: switches carry the ASan fake-stack and TSan fiber
/// annotations, so fiber-backed simulations stay clean under
/// -DTPIO_SANITIZE=address|thread.
class Fiber {
 public:
  using Entry = void (*)(void*);

  /// Create a suspended fiber that will run `entry(arg)` when first
  /// resumed. `stack_bytes` is rounded up to whole pages.
  Fiber(std::size_t stack_bytes, Entry entry, void* arg);
  ~Fiber();

  Fiber(const Fiber&) = delete;
  Fiber& operator=(const Fiber&) = delete;

  /// Run the fiber until it suspends or finishes. Must not be called on a
  /// finished fiber or from inside any fiber of the same thread's
  /// currently-running chain.
  void resume();

  /// Yield from the running fiber back to its resume() caller. The next
  /// resume() returns control right here.
  static void suspend();

  /// True once the entry function has returned; the fiber can no longer
  /// be resumed (its stack is retained until destruction).
  bool finished() const { return finished_; }

  /// The fiber currently running on this thread (nullptr on the host
  /// stack). Lets blocking primitives assert they are on a fiber.
  static Fiber* current();

  /// Stack size used by Conductor-created fibers: TPIO_FIBER_STACK_KB
  /// env override, else 256 KiB (1 MiB under ASan/TSan, whose
  /// instrumented frames and redzones are several times larger).
  static std::size_t default_stack_bytes();

 private:
  friend void tpio_fiber_main(void* f);
  static void run_entry(Fiber* f);

  void* map_base_ = nullptr;    // mmap region including the guard page
  std::size_t map_bytes_ = 0;   // total mapping size
  void* stack_lo_ = nullptr;    // usable stack bottom (above the guard)
  std::size_t stack_bytes_ = 0; // usable stack size
  void* fiber_sp_ = nullptr;    // saved context of the suspended fiber
  void* host_sp_ = nullptr;     // saved context of the host while running
  Entry entry_;
  void* arg_;
  bool finished_ = false;

  // Sanitizer bookkeeping (unused members cost nothing when disabled).
  void* tsan_fiber_ = nullptr;
  void* tsan_host_ = nullptr;
  void* asan_host_fake_ = nullptr;   // host's fake stack while fiber runs
  void* asan_fiber_fake_ = nullptr;  // fiber's fake stack while suspended
  const void* asan_host_bottom_ = nullptr;
  std::size_t asan_host_size_ = 0;
};

}  // namespace tpio::sim
