#include "sched/conductor.hpp"

#include <algorithm>
#include <thread>

#include "simbase/error.hpp"

namespace tpio::sim {

Conductor::Conductor(int nranks) {
  TPIO_CHECK(nranks > 0, "conductor needs at least one rank");
  states_.reserve(static_cast<std::size_t>(nranks));
  for (int r = 0; r < nranks; ++r) {
    states_.push_back(std::make_unique<RankState>());
    runnable_.insert({0, r});
  }
  alive_ = nranks;
}

int RankCtx::size() const { return conductor_->size(); }

void RankCtx::advance(Duration d) {
  TPIO_CHECK(d >= 0, "cannot advance by a negative duration");
  clock_ += d;
}

void RankCtx::advance_to(Time t) { clock_ = std::max(clock_, t); }

bool Conductor::is_min(int rank) const {
  TPIO_CHECK(!runnable_.empty(), "is_min with empty runnable set");
  return runnable_.begin()->second == rank;
}

void Conductor::update_entry(int rank, Time clock) {
  RankState& st = *states_[static_cast<std::size_t>(rank)];
  TPIO_CHECK(st.status == Status::Runnable, "update_entry on non-runnable rank");
  if (st.registered_clock == clock) return;
  runnable_.erase({st.registered_clock, rank});
  st.registered_clock = clock;
  runnable_.insert({clock, rank});
}

void Conductor::notify_min() {
  if (runnable_.empty()) return;
  states_[static_cast<std::size_t>(runnable_.begin()->second)]->cv.notify_one();
}

void Conductor::throw_aborted() {
  throw Error("simulation aborted (another rank raised an error)");
}

void RankCtx::baton_acquire() {
  Conductor& c = *conductor_;
  std::unique_lock lk(c.mutex_);
  if (c.aborted_) c.throw_aborted();
  Conductor::RankState& st = *c.states_[static_cast<std::size_t>(rank_)];
  c.update_entry(rank_, clock_);
  c.notify_min();
  st.cv.wait(lk, [&] { return c.aborted_ || c.is_min(rank_); });
  if (c.aborted_) c.throw_aborted();
  ++c.actions_;
  lk.release();  // keep the mutex held for the duration of the action
}

void RankCtx::baton_release() {
  Conductor& c = *conductor_;
  c.update_entry(rank_, clock_);
  c.notify_min();
  c.mutex_.unlock();
}

void RankCtx::complete(Event& ev, Time t) {
  // Caller holds the baton (asserted indirectly: completing without the
  // baton would race; we at least enforce causality).
  Conductor& c = *conductor_;
  TPIO_CHECK(!ev.done_, "event completed twice");
  TPIO_CHECK(t >= clock_, "event completion time precedes the actor's clock");
  c.complete_locked(*this, ev, t);
}

void Conductor::complete_locked(RankCtx&, Event& ev, Time t) {
  ev.done_ = true;
  ev.time_ = t;
  for (int w : ev.waiters_) {
    RankState& st = *states_[static_cast<std::size_t>(w)];
    TPIO_CHECK(st.status == Status::Blocked, "event waiter not blocked");
    st.status = Status::Runnable;
    st.wake_pending = true;
    st.registered_clock = std::max(st.registered_clock, t);
    runnable_.insert({st.registered_clock, w});
  }
  ev.waiters_.clear();
  // The new min may be one of the woken ranks; baton_release will notify,
  // but notify here as well so waiters resume even when the completer goes
  // on to block without releasing through the normal path.
  notify_min();
}

void Conductor::block_current(std::unique_lock<std::mutex>& lk, RankCtx& ctx,
                              const char* reason) {
  RankState& st = *states_[static_cast<std::size_t>(ctx.rank_)];
  TPIO_CHECK(st.status == Status::Runnable, "blocking a non-runnable rank");
  runnable_.erase({st.registered_clock, ctx.rank_});
  st.status = Status::Blocked;
  st.wake_pending = false;
  st.block_reason = reason;
  check_deadlock();
  notify_min();
  st.cv.wait(lk, [&] {
    return aborted_ || (st.wake_pending && is_min(ctx.rank_));
  });
  if (aborted_) throw_aborted();
  st.wake_pending = false;
  st.block_reason = "";
}

void RankCtx::wait_event(Event& ev) {
  Conductor& c = *conductor_;
  std::unique_lock lk(c.mutex_);
  if (c.aborted_) c.throw_aborted();
  if (!ev.done_) {
    c.update_entry(rank_, clock_);
    ev.waiters_.push_back(rank_);
    c.block_current(lk, *this, "wait_event");
    TPIO_CHECK(ev.done_, "woken from wait_event but event not done");
  }
  clock_ = std::max(clock_, ev.time_);
  c.update_entry(rank_, clock_);
  c.notify_min();
}

void RankCtx::wait_all_events(std::span<const EventPtr> evs) {
  for (const EventPtr& e : evs) {
    TPIO_CHECK(e != nullptr, "null event in wait_all_events");
    wait_event(*e);
  }
}

bool RankCtx::test_event(Event& ev, Duration poll_cost) {
  advance(poll_cost);
  // Determinism requires all potentially-earlier actions to have committed,
  // i.e. this rank must hold the baton when it peeks.
  return act([&] { return ev.done_ && ev.time_ <= clock_; });
}

void Conductor::check_deadlock() {
  if (!runnable_.empty() || alive_ == 0) return;
  std::string msg = "simulation deadlock: all live ranks blocked (";
  bool first = true;
  for (std::size_t r = 0; r < states_.size(); ++r) {
    if (states_[r]->status == Status::Blocked) {
      if (!first) msg += ", ";
      msg += "rank " + std::to_string(r) + ": " + states_[r]->block_reason;
      first = false;
    }
  }
  msg += ")";
  aborted_ = true;
  if (!first_error_) first_error_ = std::make_exception_ptr(Error(msg));
  for (auto& st : states_) st->cv.notify_all();
  throw Error(msg);
}

void Conductor::run(const std::function<void(RankCtx&)>& program) {
  std::vector<std::thread> threads;
  threads.reserve(states_.size());
  for (int r = 0; r < size(); ++r) {
    threads.emplace_back([this, r, &program] {
      RankCtx ctx(this, r);
      bool ok = true;
      try {
        program(ctx);
      } catch (...) {
        ok = false;
        std::lock_guard lk(mutex_);
        if (!first_error_) first_error_ = std::current_exception();
        aborted_ = true;
        for (auto& st : states_) st->cv.notify_all();
      }
      std::lock_guard lk(mutex_);
      RankState& st = *states_[static_cast<std::size_t>(r)];
      if (st.status == Status::Runnable) {
        runnable_.erase({st.registered_clock, r});
      }
      st.status = Status::Done;
      st.finish_time = ctx.clock_;
      --alive_;
      if (ok && !aborted_) {
        // Finishing may starve blocked ranks of their only waker.
        try {
          check_deadlock();
        } catch (...) {
          // recorded in first_error_; this thread is exiting anyway
        }
      }
      notify_min();
    });
  }
  for (auto& t : threads) t.join();
  if (first_error_) std::rethrow_exception(first_error_);
}

Time Conductor::finish_time(int rank) const {
  TPIO_CHECK(rank >= 0 && rank < size(), "finish_time: rank out of range");
  const RankState& st = *states_[static_cast<std::size_t>(rank)];
  TPIO_CHECK(st.status == Status::Done, "finish_time before rank finished");
  return st.finish_time;
}

Time Conductor::makespan() const {
  Time m = 0;
  for (int r = 0; r < size(); ++r) m = std::max(m, finish_time(r));
  return m;
}

}  // namespace tpio::sim
