#include "sched/conductor.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <thread>

#include "simbase/bufpool.hpp"
#include "simbase/error.hpp"

namespace tpio::sim {

const char* to_string(ConductorBackend b) {
  return b == ConductorBackend::Fibers ? "fibers" : "threads";
}

namespace {
// Process-wide default backend; -1 = not yet resolved from the
// environment. Resolved once, overridable via set_default_backend.
std::atomic<int> g_default_backend{-1};
}  // namespace

ConductorBackend Conductor::default_backend() {
  int b = g_default_backend.load(std::memory_order_relaxed);
  if (b < 0) {
    ConductorBackend resolved = ConductorBackend::Fibers;
    if (const char* e = std::getenv("TPIO_CONDUCTOR")) {
      const std::string v(e);
      if (v == "threads" || v == "thread") {
        resolved = ConductorBackend::Threads;
      } else {
        TPIO_CHECK(v == "fibers" || v == "fiber" || v.empty(),
                   "TPIO_CONDUCTOR must be 'fibers' or 'threads' (got '" + v +
                       "')");
      }
    }
    b = static_cast<int>(resolved);
    g_default_backend.store(b, std::memory_order_relaxed);
  }
  return static_cast<ConductorBackend>(b);
}

void Conductor::set_default_backend(ConductorBackend b) {
  g_default_backend.store(static_cast<int>(b), std::memory_order_relaxed);
}

Conductor::Conductor(int nranks) : Conductor(nranks, default_backend()) {}

Conductor::Conductor(int nranks, ConductorBackend backend)
    : Conductor(std::vector<int>{nranks}, backend) {}

Conductor::Conductor(const std::vector<int>& group_sizes)
    : Conductor(group_sizes, default_backend()) {}

Conductor::Conductor(const std::vector<int>& group_sizes,
                     ConductorBackend backend)
    : backend_(backend) {
  TPIO_CHECK(!group_sizes.empty(), "conductor needs at least one group");
  int total = 0;
  group_size_.reserve(group_sizes.size());
  group_base_.reserve(group_sizes.size());
  for (int n : group_sizes) {
    TPIO_CHECK(n > 0, "conductor group needs at least one rank");
    group_base_.push_back(total);
    group_size_.push_back(n);
    total += n;
  }
  states_.reserve(static_cast<std::size_t>(total));
  for (int r = 0; r < total; ++r) {
    states_.push_back(std::make_unique<RankState>());
    runnable_.insert({0, r});
  }
  alive_ = total;
}

Conductor::~Conductor() = default;

int Conductor::group_of(int gid) const {
  // Groups are small in number (tenants); a linear scan from the back
  // finds the containing block.
  for (int g = groups() - 1; g >= 0; --g) {
    if (gid >= group_base_[static_cast<std::size_t>(g)]) return g;
  }
  tpio::fail("group_of: global id outside every group");
}

int Conductor::group_size(int g) const {
  TPIO_CHECK(g >= 0 && g < groups(), "group index out of range");
  return group_size_[static_cast<std::size_t>(g)];
}

int Conductor::group_base(int g) const {
  TPIO_CHECK(g >= 0 && g < groups(), "group index out of range");
  return group_base_[static_cast<std::size_t>(g)];
}

RankCtx::RankCtx(Conductor* c, int gid)
    : conductor_(c),
      gid_(gid),
      rank_(gid - c->group_base(c->group_of(gid))),
      group_(c->group_of(gid)) {}

int RankCtx::size() const { return conductor_->group_size(group_); }

void RankCtx::advance(Duration d) {
  TPIO_CHECK(d >= 0, "cannot advance by a negative duration");
  clock_ += d;
}

void RankCtx::advance_to(Time t) { clock_ = std::max(clock_, t); }

bool Conductor::is_min(int rank) const {
  TPIO_CHECK(!runnable_.empty(), "is_min with empty runnable set");
  return runnable_.begin()->second == rank;
}

void Conductor::update_entry(int rank, Time clock) {
  RankState& st = *states_[static_cast<std::size_t>(rank)];
  TPIO_CHECK(st.status == Status::Runnable, "update_entry on non-runnable rank");
  if (st.registered_clock == clock) return;
  runnable_.erase({st.registered_clock, rank});
  st.registered_clock = clock;
  runnable_.insert({clock, rank});
}

void Conductor::notify_min() {
  if (backend_ != ConductorBackend::Threads) return;
  if (runnable_.empty()) return;
  states_[static_cast<std::size_t>(runnable_.begin()->second)]->cv.notify_one();
}

void Conductor::throw_aborted() {
  throw Error("simulation aborted (another rank raised an error)");
}

void Conductor::abort_with(std::exception_ptr e) {
  if (!first_error_) first_error_ = std::move(e);
  if (aborted_) return;
  aborted_ = true;
  if (backend_ == ConductorBackend::Fibers) {
    // Release every blocked fiber exactly once; the scheduler resumes each
    // in (clock, rank) order and it unwinds through throw_aborted().
    for (std::size_t r = 0; r < states_.size(); ++r) {
      RankState& st = *states_[r];
      if (st.status != Status::Blocked) continue;
      st.abort_wakes += 1;
      TPIO_CHECK(st.abort_wakes == 1, "abort woke a blocked rank twice");
      st.status = Status::Runnable;
      st.wake_pending = true;
      runnable_.insert({st.registered_clock, static_cast<int>(r)});
    }
  } else {
    // Threads observe aborted_ through their own condition variables (the
    // wake is counted where the blocked thread notices, block_current).
    for (auto& st : states_) st->cv.notify_all();
  }
}

void RankCtx::baton_acquire() {
  Conductor& c = *conductor_;
  if (c.backend_ == ConductorBackend::Fibers) {
    if (c.aborted_) c.throw_aborted();
    c.update_entry(gid_, clock_);
    while (!c.aborted_ && !c.is_min(gid_)) Fiber::suspend();
    if (c.aborted_) c.throw_aborted();
    ++c.actions_;
    return;
  }
  std::unique_lock lk(c.mutex_);
  if (c.aborted_) c.throw_aborted();
  Conductor::RankState& st = *c.states_[static_cast<std::size_t>(gid_)];
  c.update_entry(gid_, clock_);
  c.notify_min();
  st.cv.wait(lk, [&] { return c.aborted_ || c.is_min(gid_); });
  if (c.aborted_) c.throw_aborted();
  ++c.actions_;
  lk.release();  // keep the mutex held for the duration of the action
}

void RankCtx::baton_release() {
  Conductor& c = *conductor_;
  if (c.backend_ == ConductorBackend::Fibers) {
    c.update_entry(gid_, clock_);
    return;
  }
  c.update_entry(gid_, clock_);
  c.notify_min();
  c.mutex_.unlock();
}

void RankCtx::complete(Event& ev, Time t) {
  // Caller holds the baton (asserted indirectly: completing without the
  // baton would race; we at least enforce causality).
  Conductor& c = *conductor_;
  TPIO_CHECK(!ev.done_, "event completed twice");
  TPIO_CHECK(t >= clock_, "event completion time precedes the actor's clock");
  c.complete_locked(*this, ev, t);
}

void Conductor::complete_locked(RankCtx&, Event& ev, Time t) {
  ev.done_ = true;
  ev.time_ = t;
  for (int w : ev.waiters_) {
    RankState& st = *states_[static_cast<std::size_t>(w)];
    TPIO_CHECK(st.status == Status::Blocked, "event waiter not blocked");
    st.status = Status::Runnable;
    st.wake_pending = true;
    st.registered_clock = std::max(st.registered_clock, t);
    runnable_.insert({st.registered_clock, w});
  }
  ev.waiters_.clear();
  // The new min may be one of the woken ranks; baton_release will notify,
  // but notify here as well so waiters resume even when the completer goes
  // on to block without releasing through the normal path.
  notify_min();
}

void Conductor::block_current(std::unique_lock<std::mutex>& lk, RankCtx& ctx,
                              const char* site) {
  RankState& st = *states_[static_cast<std::size_t>(ctx.gid_)];
  TPIO_CHECK(st.status == Status::Runnable, "blocking a non-runnable rank");
  runnable_.erase({st.registered_clock, ctx.gid_});
  st.status = Status::Blocked;
  st.wake_pending = false;
  st.block_site = site;
  if (!detect_deadlock()) notify_min();
  st.cv.wait(lk, [&] {
    return aborted_ || (st.wake_pending && is_min(ctx.gid_));
  });
  if (aborted_) {
    if (st.status == Status::Blocked) {
      st.abort_wakes += 1;
      TPIO_CHECK(st.abort_wakes == 1, "abort woke a blocked rank twice");
    }
    throw_aborted();
  }
  st.wake_pending = false;
  st.block_site = "";
}

void Conductor::fiber_block_current(RankCtx& ctx, const char* site) {
  RankState& st = *states_[static_cast<std::size_t>(ctx.gid_)];
  TPIO_CHECK(st.status == Status::Runnable, "blocking a non-runnable rank");
  runnable_.erase({st.registered_clock, ctx.gid_});
  st.status = Status::Blocked;
  st.wake_pending = false;
  st.block_site = site;
  Fiber::suspend();
  // Resumed: either our event completed (complete_locked re-queued us and
  // the scheduler picked us as min) or the run aborted.
  if (aborted_) throw_aborted();
  TPIO_CHECK(st.status == Status::Runnable && st.wake_pending,
             "fiber resumed while still blocked");
  st.wake_pending = false;
  st.block_site = "";
}

void RankCtx::wait_event(Event& ev, const char* site) {
  Conductor& c = *conductor_;
  if (c.backend_ == ConductorBackend::Fibers) {
    if (c.aborted_) c.throw_aborted();
    if (!ev.done_) {
      c.update_entry(gid_, clock_);
      ev.waiters_.push_back(gid_);
      c.fiber_block_current(*this, site);
      TPIO_CHECK(ev.done_, "woken from wait_event but event not done");
    }
    clock_ = std::max(clock_, ev.time_);
    c.update_entry(gid_, clock_);
    return;
  }
  std::unique_lock lk(c.mutex_);
  if (c.aborted_) c.throw_aborted();
  if (!ev.done_) {
    c.update_entry(gid_, clock_);
    ev.waiters_.push_back(gid_);
    c.block_current(lk, *this, site);
    TPIO_CHECK(ev.done_, "woken from wait_event but event not done");
  }
  clock_ = std::max(clock_, ev.time_);
  c.update_entry(gid_, clock_);
  c.notify_min();
}

void RankCtx::wait_all_events(std::span<const EventPtr> evs,
                              const char* site) {
  for (const EventPtr& e : evs) {
    TPIO_CHECK(e != nullptr, "null event in wait_all_events");
    wait_event(*e, site);
  }
}

bool RankCtx::test_event(Event& ev, Duration poll_cost) {
  advance(poll_cost);
  // Determinism requires all potentially-earlier actions to have committed,
  // i.e. this rank must hold the baton when it peeks.
  return act([&] { return ev.done_ && ev.time_ <= clock_; });
}

std::string Conductor::deadlock_message() const {
  // Bounded report: at 8192 ranks an exhaustive listing would build a
  // megabyte string (under the lock, on the Threads backend); the first
  // few blockers with their wait sites and registered clocks are what a
  // human needs to find the cycle.
  constexpr std::size_t kMaxListed = 16;
  std::size_t blocked = 0;
  std::string msg = "simulation deadlock: all live ranks blocked (";
  for (std::size_t r = 0; r < states_.size(); ++r) {
    const RankState& st = *states_[r];
    if (st.status != Status::Blocked) continue;
    ++blocked;
    if (blocked > kMaxListed) continue;
    if (blocked > 1) msg += ", ";
    msg += "rank " + std::to_string(r) + ": " + st.block_site + " @" +
           std::to_string(st.registered_clock) + "ns";
  }
  if (blocked > kMaxListed) {
    msg += ", +" + std::to_string(blocked - kMaxListed) + " more";
  }
  msg += ")";
  return msg;
}

bool Conductor::detect_deadlock() {
  if (!runnable_.empty() || alive_ == 0 || aborted_) return false;
  abort_with(std::make_exception_ptr(Error(deadlock_message())));
  return true;
}

void Conductor::run(const std::function<void(RankCtx&)>& program) {
  // Every group runs the same program (each rank still sees group-local
  // rank()/size()); single-group conductors hit the historical path.
  run(std::vector<std::function<void(RankCtx&)>>(
      static_cast<std::size_t>(groups()), program));
}

void Conductor::run(const std::vector<std::function<void(RankCtx&)>>& programs) {
  TPIO_CHECK(static_cast<int>(programs.size()) == groups(),
             "conductor run: one program required per group");
  for (const auto& p : programs) {
    TPIO_CHECK(static_cast<bool>(p), "conductor run: empty program");
  }
  if (backend_ == ConductorBackend::Fibers) {
    run_fibers(programs);
  } else {
    run_threads(programs);
  }
}

void Conductor::fiber_body(int rank, const std::function<void(RankCtx&)>& program) {
  RankCtx ctx(this, rank);
  try {
    program(ctx);
  } catch (...) {
    abort_with(std::current_exception());
  }
  RankState& st = *states_[static_cast<std::size_t>(rank)];
  TPIO_CHECK(st.status != Status::Blocked, "rank finished while blocked");
  if (st.status == Status::Runnable) {
    runnable_.erase({st.registered_clock, rank});
  }
  st.status = Status::Done;
  st.finish_time = ctx.clock_;
  --alive_;
  // A finish can starve blocked ranks of their only waker; the scheduler
  // loop delivers the deadlock verdict once it sees the empty runnable set.
}

void Conductor::run_fibers(
    const std::vector<std::function<void(RankCtx&)>>& programs) {
  const std::size_t stack_bytes = Fiber::default_stack_bytes();
  for (int r = 0; r < size(); ++r) {
    RankState& st = *states_[static_cast<std::size_t>(r)];
    st.job = FiberJob{this, r,
                      &programs[static_cast<std::size_t>(group_of(r))]};
    st.fiber = std::make_unique<Fiber>(
        stack_bytes,
        [](void* p) {
          auto* job = static_cast<FiberJob*>(p);
          job->conductor->fiber_body(job->rank, *job->program);
        },
        &st.job);
  }
  // Cooperative scheduling loop: always resume the runnable rank with the
  // smallest (registered clock, rank) pair. A resumed fiber runs — local
  // advances, baton actions while it stays minimal — until it must wait
  // (baton order or an event), then control returns here.
  for (;;) {
    if (runnable_.empty()) {
      if (alive_ == 0) break;
      TPIO_CHECK(detect_deadlock(),
                 "scheduler stalled without a deadlock verdict");
      continue;  // woken fibers unwind on the next iterations
    }
    const int r = runnable_.begin()->second;
    states_[static_cast<std::size_t>(r)]->fiber->resume();
  }
  for (auto& st : states_) {
    TPIO_CHECK(!st->fiber || st->fiber->finished(),
               "conductor finished with a live fiber");
    st->fiber.reset();
  }
  // Rank threads used to drain their BufferPool free lists into the
  // process-wide reservoir when they died; with fibers the host thread
  // lives on, so enforce its retention cap here instead (run teardown is
  // the fiber-era analogue of rank-thread death).
  BufferPool::trim_local();
  if (first_error_) std::rethrow_exception(first_error_);
}

void Conductor::run_threads(
    const std::vector<std::function<void(RankCtx&)>>& programs) {
  std::vector<std::thread> threads;
  threads.reserve(states_.size());
  for (int r = 0; r < size(); ++r) {
    const std::function<void(RankCtx&)>& program =
        programs[static_cast<std::size_t>(group_of(r))];
    threads.emplace_back([this, r, &program] {
      RankCtx ctx(this, r);
      bool ok = true;
      try {
        program(ctx);
      } catch (...) {
        ok = false;
        std::lock_guard lk(mutex_);
        abort_with(std::current_exception());
      }
      std::lock_guard lk(mutex_);
      RankState& st = *states_[static_cast<std::size_t>(r)];
      if (st.status == Status::Runnable) {
        runnable_.erase({st.registered_clock, r});
      }
      st.status = Status::Done;
      st.finish_time = ctx.clock_;
      --alive_;
      if (ok && !aborted_) {
        // Finishing may starve blocked ranks of their only waker. The
        // verdict is recorded in first_error_ by detect_deadlock — no
        // exception needs to pass through this (exiting) thread.
        detect_deadlock();
      }
      notify_min();
    });
  }
  for (auto& t : threads) t.join();
  if (first_error_) std::rethrow_exception(first_error_);
}

Time Conductor::finish_time(int rank) const {
  TPIO_CHECK(rank >= 0 && rank < size(), "finish_time: rank out of range");
  const RankState& st = *states_[static_cast<std::size_t>(rank)];
  TPIO_CHECK(st.status == Status::Done, "finish_time before rank finished");
  return st.finish_time;
}

Time Conductor::makespan() const {
  Time m = 0;
  for (int r = 0; r < size(); ++r) m = std::max(m, finish_time(r));
  return m;
}

Time Conductor::group_makespan(int g) const {
  const int base = group_base(g);
  const int n = group_size(g);
  Time m = 0;
  for (int r = base; r < base + n; ++r) m = std::max(m, finish_time(r));
  return m;
}

}  // namespace tpio::sim
