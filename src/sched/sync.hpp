#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "sched/conductor.hpp"
#include "simbase/time.hpp"

namespace tpio::sim {

/// Reusable N-party rendezvous on virtual time.
///
/// Each party calls arrive(); all parties resume at
///   max(arrival clocks) + max(extra_cost arguments).
/// This is the coarse model used for tightly-coupled synchronizing
/// collectives (barrier, fence, allreduce of a scalar): the cost formula is
/// supplied by the caller (typically O(log P) * (latency + overhead)), and
/// the structure contributes exactly one baton action per party, keeping
/// large-rank simulations affordable.
///
/// Only one generation can ever be incomplete (every party passes generation
/// g before any party reaches g+1), so a single active slot suffices;
/// laggards of a completed generation keep the release event alive through
/// the shared pointer they captured on arrival.
class SyncPoint {
 public:
  explicit SyncPoint(int parties);

  /// Block until all parties of the current generation arrive. Returns the
  /// common release time (also this rank's clock upon return):
  ///   max(arrival clocks, floors) + max(extra_cost).
  /// `floor` lets a party pin the release to an absolute time — e.g. a fence
  /// must not release before the last RMA put of the epoch has landed.
  /// `site` labels the wait in deadlock reports (static string only).
  Time arrive(RankCtx& ctx, Duration extra_cost = 0, Time floor = 0,
              const char* site = "sync.arrive");

  int parties() const { return parties_; }

 private:
  struct Generation {
    int arrived = 0;
    Time max_clock = 0;
    Duration max_extra = 0;
    EventPtr release = std::make_shared<Event>();
  };

  int parties_;
  Generation active_;  // mutated only under the baton
};

}  // namespace tpio::sim
