#include "pfs/pfs.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "simbase/error.hpp"

namespace tpio::pfs {

// ---------------------------------------------------------------------------
// Fault model
// ---------------------------------------------------------------------------

std::uint64_t FaultModel::op_key(int node, std::uint64_t offset,
                                 std::uint64_t length) {
  // SplitMix64-style fold of the operation's stable identity. Must not
  // depend on issue time or call order: two runs that issue the same
  // logical ops in different interleavings get the same keys.
  std::uint64_t z = static_cast<std::uint64_t>(node) * 0x9e3779b97f4a7c15ULL;
  z ^= offset + 0xbf58476d1ce4e5b9ULL + (z << 6) + (z >> 2);
  z ^= length + 0x94d049bb133111ebULL + (z << 6) + (z >> 2);
  return z;
}

bool FaultModel::fails(double rate, std::uint64_t key, std::uint64_t salt,
                       int attempt) const {
  if (attempt < p_.fail_until_attempt) return true;
  if (rate <= 0.0) return false;
  // Pure function of (seed, key, salt, attempt): a private two-level
  // derived stream per (op, attempt), independent of every other draw in
  // the simulation.
  sim::Rng rng(sim::Rng::derive_seed(
      sim::Rng::derive_seed(p_.seed, key ^ (salt << 56)),
      static_cast<std::uint64_t>(attempt)));
  return rng.next_double() < rate;
}

std::string fault_tag(const FaultParams& p) {
  FaultModel m(p);
  if (!m.enabled()) return {};
  std::string tag = "|faults=1|wrate=" + std::to_string(p.write_fail_rate) +
                    "|rrate=" + std::to_string(p.read_fail_rate) +
                    "|fseed=" + std::to_string(p.seed);
  if (p.fail_until_attempt > 1) {
    tag += "|until=" + std::to_string(p.fail_until_attempt);
  }
  if (p.straggler_targets > 0 && p.straggler_factor > 1.0) {
    tag += "|strag=" + std::to_string(p.straggler_factor) + "x" +
           std::to_string(p.straggler_targets) + "@" +
           std::to_string(p.straggler_after);
  }
  return tag;
}

StorageSystem::StorageSystem(const PfsParams& params, net::Fabric* fabric)
    : params_(params), fabric_(fabric), faults_(params.faults) {
  TPIO_CHECK(params.num_targets > 0, "storage system needs targets");
  TPIO_CHECK(params.stripe_size > 0, "stripe size must be positive");
  TPIO_CHECK(params.target_bw > 0 && params.client_bw > 0,
             "storage bandwidths must be positive");
  TPIO_CHECK(params.aio_penalty >= 1.0, "aio penalty must be >= 1");
  TPIO_CHECK(!params.share_compute_nic || fabric != nullptr,
             "share_compute_nic requires a fabric");
  const FaultParams& f = params.faults;
  TPIO_CHECK(f.write_fail_rate >= 0.0 && f.write_fail_rate <= 1.0,
             "write_fail_rate must be in [0, 1]");
  TPIO_CHECK(f.read_fail_rate >= 0.0 && f.read_fail_rate <= 1.0,
             "read_fail_rate must be in [0, 1]");
  TPIO_CHECK(f.fail_until_attempt >= 0, "fail_until_attempt must be >= 0");
  TPIO_CHECK(f.straggler_factor >= 1.0, "straggler factor must be >= 1");
  TPIO_CHECK(f.straggler_targets >= 0 &&
                 f.straggler_targets <= params.num_targets,
             "straggler_targets must be in [0, num_targets]");
  TPIO_CHECK(f.straggler_after >= 0, "straggler_after must be >= 0");
  targets_.reserve(static_cast<std::size_t>(params.num_targets));
  for (int t = 0; t < params.num_targets; ++t) {
    targets_.emplace_back("ost[" + std::to_string(t) + "]", params.qos);
    if (params.noise_sigma > 0.0) {
      noise_.push_back(std::make_unique<sim::NoiseModel>(
          params.noise_sigma,
          sim::Rng::derive_seed(params.noise_seed,
                                static_cast<std::uint64_t>(t))));
      targets_.back().set_noise(noise_.back().get());
    }
  }
}

QosStats StorageSystem::tenant_stats(int tenant) const {
  QosStats out;
  for (const ServiceQueue& q : targets_) out += q.stats(tenant);
  return out;
}

const ServiceQueue& StorageSystem::target(int t) const {
  TPIO_CHECK(t >= 0 && t < static_cast<int>(targets_.size()),
             "target index out of range");
  return targets_[static_cast<std::size_t>(t)];
}

sim::Timeline& StorageSystem::client_channel(int node) {
  TPIO_CHECK(node >= 0, "negative node id");
  while (client_tx_.size() <= static_cast<std::size_t>(node)) {
    client_tx_.emplace_back("stor_tx[" + std::to_string(client_tx_.size()) +
                            "]");
  }
  return client_tx_[static_cast<std::size_t>(node)];
}

std::shared_ptr<File> StorageSystem::create(std::string name,
                                            Integrity integrity) {
  return create(std::move(name), integrity, TenantClass{}, 0);
}

std::shared_ptr<File> StorageSystem::create(std::string name,
                                            Integrity integrity,
                                            const TenantClass& tenant,
                                            int node_offset) {
  return create(std::move(name), integrity, tenant, node_offset,
                FileStriping{});
}

std::shared_ptr<File> StorageSystem::create(std::string name,
                                            Integrity integrity,
                                            const TenantClass& tenant,
                                            int node_offset,
                                            const FileStriping& striping) {
  TPIO_CHECK(tenant.id >= 0, "tenant id must be >= 0");
  TPIO_CHECK(tenant.weight > 0.0, "tenant weight must be positive");
  TPIO_CHECK(node_offset >= 0, "node offset must be >= 0");
  TPIO_CHECK(striping.stripe_factor >= 0 &&
                 striping.stripe_factor <= params_.num_targets,
             "stripe factor must be in [0, num_targets]");
  TPIO_CHECK(striping.target_offset >= 0 &&
                 striping.target_offset < params_.num_targets,
             "target offset must be in [0, num_targets)");
  return std::shared_ptr<File>(new File(*this, std::move(name), integrity,
                                        tenant, node_offset, striping));
}

// ---------------------------------------------------------------------------
// Content recording / verification
// ---------------------------------------------------------------------------

std::uint64_t File::stripe_size() const {
  return striping_.stripe_unit > 0 ? striping_.stripe_unit
                                   : sys_->params_.stripe_size;
}

int File::target_of(std::uint64_t stripe_idx) const {
  const auto nt = static_cast<std::uint64_t>(sys_->params_.num_targets);
  const auto factor = striping_.stripe_factor > 0
                          ? static_cast<std::uint64_t>(striping_.stripe_factor)
                          : nt;
  return static_cast<int>(
      (static_cast<std::uint64_t>(striping_.target_offset) +
       stripe_idx % factor) %
      nt);
}

std::uint64_t File::mix(std::uint64_t offset, std::byte value) {
  // SplitMix64 finalizer over (offset, value); summed commutatively per
  // chunk, so write order does not matter while any misplaced, missing or
  // corrupted byte changes the digest.
  std::uint64_t z = offset * 0x9e3779b97f4a7c15ULL +
                    (static_cast<std::uint64_t>(value) + 1) * 0xff51afd7ed558ccdULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void File::record(std::uint64_t offset, std::span<const std::byte> data,
                  sim::Time visible_at) {
  // Submission accounting is immediate — the storage system has accepted
  // the bytes — but the *content* only becomes observable once the write
  // completes on the virtual timeline.
  size_ = std::max(size_, offset + data.size());
  if (!data.empty()) min_offset_ = std::min(min_offset_, offset);
  bytes_accepted_ += data.size();
  sys_->bytes_written_ += data.size();
  if (integrity_ == Integrity::None || data.empty()) return;

  PendingWrite w;
  w.visible_at = visible_at;
  w.offset = offset;
  w.length = data.size();
  if (integrity_ == Integrity::Store) {
    w.bytes.assign(data.begin(), data.end());
  } else {
    // Digest mode: fold each chunk's contribution now (the caller may
    // overwrite its buffer after submission) and retain only the deltas.
    const std::uint64_t ss = stripe_size();
    std::uint64_t pos = offset;
    std::size_t consumed = 0;
    while (consumed < data.size()) {
      const std::uint64_t in_chunk = pos % ss;
      const std::uint64_t n =
          std::min<std::uint64_t>(ss - in_chunk, data.size() - consumed);
      std::uint64_t delta = 0;
      for (std::uint64_t i = 0; i < n; ++i) {
        delta += mix(pos + i, data[consumed + i]);
      }
      w.deltas.push_back(delta);
      pos += n;
      consumed += static_cast<std::size_t>(n);
    }
  }
  pending_.push_back(std::move(w));
}

void File::apply_content(const PendingWrite& w) {
  const std::uint64_t ss = stripe_size();
  std::uint64_t pos = w.offset;
  std::uint64_t left = w.length;
  std::size_t consumed = 0;
  std::size_t delta_idx = 0;
  while (left > 0) {
    const std::uint64_t chunk_idx = pos / ss;
    const std::uint64_t in_chunk = pos % ss;
    const std::uint64_t n = std::min(ss - in_chunk, left);
    Chunk& c = chunks_[chunk_idx];
    c.written += n;
    if (integrity_ == Integrity::Store) {
      if (c.bytes.empty()) c.bytes.resize(ss);
      std::memcpy(c.bytes.data() + in_chunk, w.bytes.data() + consumed, n);
    } else {
      c.digest += w.deltas[delta_idx++];
    }
    pos += n;
    left -= n;
    consumed += static_cast<std::size_t>(n);
  }
}

void File::flush_content(sim::Time upto) {
  if (pending_.empty()) return;
  std::vector<PendingWrite> keep;
  for (PendingWrite& w : pending_) {
    if (w.visible_at <= upto) {
      apply_content(w);
    } else {
      keep.push_back(std::move(w));
    }
  }
  pending_.swap(keep);
}

std::vector<std::byte> File::read_back(std::uint64_t offset,
                                       std::uint64_t len) const {
  TPIO_CHECK(integrity_ == Integrity::Store,
             "read_back requires Integrity::Store");
  // Post-run inspection: every scheduled write has logically completed.
  const_cast<File*>(this)->flush_content(std::numeric_limits<sim::Time>::max());
  std::vector<std::byte> out(len, std::byte{0});
  const std::uint64_t ss = stripe_size();
  std::uint64_t pos = offset;
  std::uint64_t copied = 0;
  while (copied < len) {
    const std::uint64_t chunk_idx = pos / ss;
    const std::uint64_t in_chunk = pos % ss;
    const std::uint64_t n = std::min(ss - in_chunk, len - copied);
    auto it = chunks_.find(chunk_idx);
    if (it != chunks_.end() && !it->second.bytes.empty()) {
      std::memcpy(out.data() + copied, it->second.bytes.data() + in_chunk, n);
    }
    pos += n;
    copied += n;
  }
  return out;
}

std::string File::verify(
    const std::function<std::byte(std::uint64_t)>& expected) const {
  TPIO_CHECK(integrity_ != Integrity::None,
             "verify requires Store or Digest integrity");
  // Post-run inspection: every scheduled write has logically completed.
  const_cast<File*>(this)->flush_content(std::numeric_limits<sim::Time>::max());
  // Subfiles keep their members' global offsets, so the written extent is
  // [base_offset, size) — a shared file (base 0) reduces to the historical
  // whole-file check.
  const std::uint64_t base = base_offset();
  if (bytes_accepted_ != size_ - base) {
    return "bytes written (" + std::to_string(bytes_accepted_) +
           ") != written extent (" + std::to_string(size_ - base) +
           " bytes at [" + std::to_string(base) + ", " +
           std::to_string(size_) + ")): holes or overlapping writes";
  }
  const std::uint64_t ss = stripe_size();
  const std::uint64_t nchunks = (size_ + ss - 1) / ss;
  for (std::uint64_t ci = base / ss; ci < nchunks; ++ci) {
    auto it = chunks_.find(ci);
    const std::uint64_t lo = std::max(base, ci * ss);
    const std::uint64_t hi = std::min(size_, ci * ss + ss);
    if (it == chunks_.end()) {
      return "chunk " + std::to_string(ci) + " never written";
    }
    const Chunk& c = it->second;
    if (c.written != hi - lo) {
      return "chunk " + std::to_string(ci) + " has " +
             std::to_string(c.written) + " bytes, expected " +
             std::to_string(hi - lo);
    }
    if (integrity_ == Integrity::Store) {
      for (std::uint64_t o = lo; o < hi; ++o) {
        if (c.bytes[o - ci * ss] != expected(o)) {
          return "byte mismatch at offset " + std::to_string(o);
        }
      }
    } else {
      std::uint64_t want = 0;
      for (std::uint64_t o = lo; o < hi; ++o) want += mix(o, expected(o));
      if (c.digest != want) {
        return "digest mismatch in chunk " + std::to_string(ci);
      }
    }
  }
  return {};
}

// ---------------------------------------------------------------------------
// Timing
// ---------------------------------------------------------------------------

sim::Time File::schedule_write(sim::RankCtx& ctx, int node,
                               std::uint64_t offset,
                               std::span<const std::byte> data, bool async,
                               int attempt, IoStatus& status) {
  const PfsParams& p = sys_->params_;
  const FaultModel& faults = sys_->faults_;
  // Tenant files address the shared system's node space: client channels,
  // NIC sharing and fault-oracle keys all see the global node, so two
  // tenants' same-shaped ops stay distinct. Solo files have offset 0.
  const int gnode = node + node_offset_;

  // Fault verdict for this attempt, decided at submission (the storage
  // system knows the request will bounce) but observable to the program
  // only through wait()/the blocking return. When the fault layer is
  // disabled this draws no RNG at all.
  status = IoStatus::Ok;
  if (faults.enabled() &&
      faults.write_fails(FaultModel::op_key(gnode, offset, data.size()),
                         attempt)) {
    status = IoStatus::TransientError;
  }

  // The client streams stripe chunks: each chunk is pushed through the
  // node's storage channel (and, on co-located storage, the compute NIC),
  // then serviced by its target. Injection of chunk k+1 overlaps the
  // service of chunk k — one write call keeps client and servers busy
  // concurrently, as a real striping client does.
  sim::Timeline& client = sys_->client_channel(gnode);
  const double penalty = async ? p.aio_penalty : 1.0;
  const std::uint64_t ss = stripe_size();
  sim::Time done = ctx.now();
  sim::Time cursor = ctx.now() + p.op_overhead;  // per-call dispatch cost
  std::uint64_t pos = offset;
  std::uint64_t left = data.size();
  while (left > 0) {
    const std::uint64_t stripe_idx = pos / ss;
    const std::uint64_t in_chunk = pos % ss;
    const std::uint64_t n = std::min(ss - in_chunk, left);
    // The aio penalty applies to the whole async path: kernel aio threads
    // also stream the data through the client stack.
    const auto inject_time = static_cast<sim::Duration>(std::llround(
        static_cast<double>(sim::transfer_time(n, p.client_bw)) * penalty));
    sim::Time injected = client.reserve(cursor, inject_time).end;
    if (p.share_compute_nic) {
      injected =
          std::max(injected, sys_->fabric_->reserve_tx(gnode, n, cursor));
    }
    const auto tid = static_cast<std::size_t>(target_of(stripe_idx));
    // Straggler targets service slowly (asymmetrically so for aio; see
    // FaultParams::straggler_factor). The onset check uses the earliest
    // possible service time — a deterministic function of the request, not
    // of the target's queue depth.
    const sim::Time earliest = injected + p.storage_latency;
    const double slow =
        faults.service_factor(static_cast<int>(tid), async, earliest);
    const auto service = static_cast<sim::Duration>(
        std::llround(static_cast<double>(p.request_overhead +
                                         sim::transfer_time(n, p.target_bw)) *
                     penalty * slow));
    const auto iv = sys_->targets_[tid].reserve(earliest, service, tenant_);
    done = std::max(done, iv.end);
    pos += n;
    left -= n;
  }
  // Content is snapshotted now (submission semantics) but becomes
  // observable only at `done`, when the last chunk is durable. A faulted
  // attempt consumed its service but nothing became durable — it must not
  // be recorded, or verify() would double-count the retried region.
  if (status == IoStatus::Ok) record(offset, data, done);
  return done;
}

WriteOp File::start_read(sim::RankCtx& ctx, int node, std::uint64_t offset,
                         std::span<std::byte> out, bool async, int attempt) {
  auto ev = std::make_shared<sim::Event>();
  IoStatus status = IoStatus::Ok;
  ctx.act([&] {
    // Reads observe exactly the writes that completed by issue time.
    // Baton actions execute in nondecreasing virtual time, so flushing up
    // to now() here is deterministic across schedules and worker counts.
    flush_content(ctx.now());
    // Timing mirrors the write path: per-chunk target service, then the
    // client pulls the bytes through its storage channel.
    const PfsParams& p = sys_->params_;
    const FaultModel& faults = sys_->faults_;
    const int gnode = node + node_offset_;
    if (faults.enabled() &&
        faults.read_fails(FaultModel::op_key(gnode, offset, out.size()),
                          attempt)) {
      status = IoStatus::TransientError;
    }
    const double penalty = async ? p.aio_penalty : 1.0;
    sim::Timeline& client = sys_->client_channel(gnode);
    const std::uint64_t ss = stripe_size();
    sim::Time done = ctx.now();
    sim::Time cursor = ctx.now() + p.op_overhead;
    std::uint64_t pos = offset;
    std::uint64_t left = out.size();
    std::size_t into = 0;
    // Content: stored bytes or zero. A faulted read still fills `out` —
    // like a failed pread, the buffer contents are not to be trusted and
    // the caller learns that through wait(). One fill for the whole span
    // instead of one per stripe chunk; stored chunks are overlaid below.
    std::fill(out.begin(), out.end(), std::byte{0});
    while (left > 0) {
      const std::uint64_t stripe_idx = pos / ss;
      const std::uint64_t in_chunk = pos % ss;
      const std::uint64_t n = std::min(ss - in_chunk, left);
      const auto tid = static_cast<std::size_t>(target_of(stripe_idx));
      const sim::Time earliest = cursor + p.storage_latency;
      const double slow =
          faults.service_factor(static_cast<int>(tid), async, earliest);
      const auto service = static_cast<sim::Duration>(
          std::llround(static_cast<double>(
                           p.request_overhead + sim::transfer_time(n, p.target_bw)) *
                       penalty * slow));
      const auto iv = sys_->targets_[tid].reserve(earliest, service, tenant_);
      const auto pull =
          client.reserve(iv.end, sim::transfer_time(n, p.client_bw));
      done = std::max(done, pull.end);

      auto it = chunks_.find(stripe_idx);
      if (integrity_ == Integrity::Store && it != chunks_.end() &&
          !it->second.bytes.empty()) {
        std::memcpy(out.data() + into, it->second.bytes.data() + in_chunk, n);
      }
      pos += n;
      left -= n;
      into += static_cast<std::size_t>(n);
    }
    ctx.complete(*ev, done);
  });
  return WriteOp(std::move(ev), status);
}

IoStatus File::read_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                       std::span<std::byte> out, int attempt) {
  WriteOp op = start_read(ctx, node, offset, out, false, attempt);
  return wait(ctx, op);
}

WriteOp File::start_write(sim::RankCtx& ctx, int node, std::uint64_t offset,
                          std::span<const std::byte> data, bool async,
                          int attempt) {
  auto ev = std::make_shared<sim::Event>();
  IoStatus status = IoStatus::Ok;
  ctx.act([&] {
    const sim::Time done =
        schedule_write(ctx, node, offset, data, async, attempt, status);
    ctx.complete(*ev, done);
  });
  return WriteOp(std::move(ev), status);
}

WriteOp File::iwrite_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                        std::span<const std::byte> data, int attempt) {
  return start_write(ctx, node, offset, data, true, attempt);
}

IoStatus File::write_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                        std::span<const std::byte> data, int attempt) {
  sim::Time done = 0;
  IoStatus status = IoStatus::Ok;
  ctx.act([&] {
    done = schedule_write(ctx, node, offset, data, false, attempt, status);
  });
  ctx.advance_to(done);
  return status;
}

IoStatus File::wait(sim::RankCtx& ctx, WriteOp& op) {
  TPIO_CHECK(op.valid(), "wait on an empty write operation");
  ctx.wait_event(*op.ev_, "pfs.write_wait");
  op.ev_.reset();
  return op.status_;
}

}  // namespace tpio::pfs
