#include "pfs/qos.hpp"

#include <algorithm>
#include <cmath>

#include "simbase/error.hpp"

namespace tpio::pfs {

const char* to_string(QosPolicy p) {
  switch (p) {
    case QosPolicy::Fifo:
      return "fifo";
    case QosPolicy::FairShare:
      return "fair";
    case QosPolicy::Priority:
      return "priority";
  }
  tpio::fail("unknown QosPolicy");
}

QosPolicy parse_qos(const std::string& s) {
  if (s == "fifo") return QosPolicy::Fifo;
  if (s == "fair" || s == "fairshare" || s == "fair-share") {
    return QosPolicy::FairShare;
  }
  if (s == "priority" || s == "prio") return QosPolicy::Priority;
  tpio::fail("unknown QoS policy '" + s + "' (expected fifo|fair|priority)");
}

ServiceQueue::Lane& ServiceQueue::lane(const TenantClass& who) {
  TPIO_CHECK(who.id >= 0, "tenant id must be >= 0");
  TPIO_CHECK(who.weight > 0.0, "tenant weight must be positive");
  if (static_cast<std::size_t>(who.id) >= lanes_.size()) {
    lanes_.resize(static_cast<std::size_t>(who.id) + 1);
  }
  Lane& ln = lanes_[static_cast<std::size_t>(who.id)];
  ln.used = true;
  ln.weight = who.weight;
  return ln;
}

sim::Timeline::Interval ServiceQueue::reserve(sim::Time earliest,
                                              sim::Duration duration,
                                              const TenantClass& who) {
  TPIO_CHECK(earliest >= 0, "reserve with negative start");
  TPIO_CHECK(duration >= 0, "reserve with negative duration");
  // Noise inflation exactly as sim::Timeline applies it — one draw per
  // nonzero reservation, same rounding — so a FIFO queue with one tenant
  // replays the historical Timeline schedule bit-for-bit.
  sim::Duration d = duration;
  if (noise_ != nullptr && duration > 0) {
    d = static_cast<sim::Duration>(
        std::llround(static_cast<double>(duration) * noise_->factor()));
    d = std::max<sim::Duration>(d, 1);
  }

  Lane& ln = lane(who);
  const sim::Time own_prev = ln.next_free;
  sim::Time start = 0;
  sim::Duration served = d;

  switch (policy_) {
    case QosPolicy::Fifo: {
      start = std::max(earliest, fifo_next_free_);
      fifo_next_free_ = start + served;
      // Queueing behind own earlier requests is not interference.
      ln.stats.cross_wait += start - std::max(earliest, own_prev);
      break;
    }
    case QosPolicy::FairShare: {
      // Each tenant queues only behind its own lane; contention shows up
      // as a service stretch proportional to the backlogged weight.
      start = std::max(earliest, own_prev);
      double active_weight = who.weight;
      for (std::size_t t = 0; t < lanes_.size(); ++t) {
        if (static_cast<int>(t) == who.id) continue;
        const Lane& other = lanes_[t];
        if (other.used && other.next_free > start) {
          active_weight += other.weight;
        }
      }
      const double stretch = active_weight / who.weight;  // >= 1
      served = static_cast<sim::Duration>(
          std::llround(static_cast<double>(d) * stretch));
      ln.stats.cross_wait += served - d;
      break;
    }
    case QosPolicy::Priority: {
      // Wait behind the committed horizon of every class at this priority
      // or higher; lower-priority work never delays this request.
      start = std::max(earliest, own_prev);
      for (const auto& [prio, free_at] : class_free_) {
        if (prio >= who.priority) start = std::max(start, free_at);
      }
      sim::Time& horizon = class_free_[who.priority];
      horizon = std::max(horizon, start + served);
      ln.stats.cross_wait += start - std::max(earliest, own_prev);
      break;
    }
  }

  const sim::Time end = start + served;
  ln.next_free = std::max(ln.next_free, end);
  busy_ += served;
  ln.stats.requests += 1;
  ln.stats.busy += served;
  int active = 1;
  for (std::size_t t = 0; t < lanes_.size(); ++t) {
    if (static_cast<int>(t) == who.id) continue;
    if (lanes_[t].used && lanes_[t].next_free > start) ++active;
  }
  ln.stats.peak_active = std::max(ln.stats.peak_active, active);
  return {start, end};
}

sim::Time ServiceQueue::next_free() const {
  sim::Time t = fifo_next_free_;
  for (const Lane& ln : lanes_) t = std::max(t, ln.next_free);
  for (const auto& [prio, free_at] : class_free_) t = std::max(t, free_at);
  return t;
}

QosStats ServiceQueue::stats(int tenant) const {
  if (tenant < 0 || static_cast<std::size_t>(tenant) >= lanes_.size()) {
    return {};
  }
  return lanes_[static_cast<std::size_t>(tenant)].stats;
}

}  // namespace tpio::pfs
