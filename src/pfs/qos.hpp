#pragma once

#include <map>
#include <string>
#include <vector>

#include "sched/timeline.hpp"
#include "simbase/time.hpp"

namespace tpio::pfs {

/// Queuing discipline of a shared storage resource serving several tenants
/// (concurrent jobs). All three disciplines degenerate to plain FIFO — and
/// are bit-identical to a bare sim::Timeline — when only one tenant ever
/// uses the queue, which is the lone-tenant isolation guarantee the
/// differential tests pin.
enum class QosPolicy {
  /// First-come-first-served in virtual-time (baton) order; exactly the
  /// historical single-job Timeline semantics.
  Fifo,
  /// Weighted fair sharing: each tenant queues behind its own lane only,
  /// and service is stretched by (sum of active tenant weights / own
  /// weight) — a generalized-processor-sharing approximation. With equal
  /// weights a tenant's service is never stretched by more than the number
  /// of simultaneously active tenants.
  FairShare,
  /// Strict priority: a request waits behind the committed horizon of
  /// every class at its own priority or higher, and is never delayed by
  /// lower-priority work. The top-priority tenant is never slower than it
  /// would be under FIFO.
  Priority,
};

const char* to_string(QosPolicy p);
/// Parse "fifo" | "fair" | "priority"; throws tpio::Error otherwise.
QosPolicy parse_qos(const std::string& s);

/// Identity of the job a storage request is billed to. Solo runs use the
/// default (tenant 0, weight 1, priority 0), which makes every QoS
/// discipline collapse to FIFO.
struct TenantClass {
  int id = 0;           // dense tenant index, 0-based
  double weight = 1.0;  // FairShare share (> 0)
  int priority = 0;     // Priority class; higher wins
};

/// Per-tenant interference accounting of one ServiceQueue (or the rollup
/// across a storage system's targets).
struct QosStats {
  /// Requests this tenant issued.
  std::uint64_t requests = 0;
  /// Service time the resource spent on this tenant (after noise and any
  /// fair-share stretch).
  sim::Duration busy = 0;
  /// Start delay beyond what this tenant's own previous request explains —
  /// queueing attributable to *other* tenants. Zero in any solo run.
  sim::Duration cross_wait = 0;
  /// Max number of tenants simultaneously backlogged at this tenant's
  /// request commit times (>= 1 once the tenant issued anything) — the
  /// per-target queue-depth/interference counter.
  int peak_active = 0;

  QosStats& operator+=(const QosStats& o) {
    requests += o.requests;
    busy += o.busy;
    cross_wait += o.cross_wait;
    peak_active = peak_active > o.peak_active ? peak_active : o.peak_active;
    return *this;
  }
};

/// A serially-reusable storage resource shared by tenants under a QoS
/// policy. Replaces the bare sim::Timeline for PFS targets: reserve() is
/// called under the simulation baton (so commit order equals virtual-time
/// order, the same determinism argument as Timeline), takes the requesting
/// tenant, and returns the service interval.
///
/// Single-tenant bit-identity: with one tenant, every policy computes
/// start = max(earliest, previous end) and applies exactly Timeline's
/// noise inflation — byte-for-byte the historical schedule.
class ServiceQueue {
 public:
  explicit ServiceQueue(std::string name, QosPolicy policy = QosPolicy::Fifo)
      : name_(std::move(name)), policy_(policy) {}

  /// Attach (or detach with nullptr) a noise source; not owned.
  void set_noise(sim::NoiseModel* noise) { noise_ = noise; }

  /// Commit `who`'s request of `duration` starting no earlier than
  /// `earliest`. Must be called while holding the simulation baton.
  sim::Timeline::Interval reserve(sim::Time earliest, sim::Duration duration,
                                  const TenantClass& who);

  /// Earliest instant a new FIFO arrival could start (max over all lanes).
  sim::Time next_free() const;
  sim::Duration busy_time() const { return busy_; }
  const std::string& name() const { return name_; }
  QosPolicy policy() const { return policy_; }

  /// Accounting for `tenant` (zeroes if it never issued here).
  QosStats stats(int tenant) const;

 private:
  struct Lane {
    sim::Time next_free = 0;
    double weight = 1.0;
    QosStats stats;
    bool used = false;
  };

  Lane& lane(const TenantClass& who);

  std::string name_;
  QosPolicy policy_;
  sim::NoiseModel* noise_ = nullptr;
  sim::Time fifo_next_free_ = 0;         // Fifo: the single shared lane
  std::vector<Lane> lanes_;              // by tenant id
  std::map<int, sim::Time> class_free_;  // Priority: horizon per class
  sim::Duration busy_ = 0;
};

}  // namespace tpio::pfs
