#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "pfs/qos.hpp"
#include "simbase/error.hpp"
#include "sched/conductor.hpp"
#include "sched/timeline.hpp"
#include "simbase/rng.hpp"
#include "simbase/time.hpp"
#include "simbase/units.hpp"

namespace tpio::pfs {

/// How a file retains what was written, trading memory for verifiability.
enum class Integrity {
  /// Keep every byte (read_back works). For tests and small examples.
  Store,
  /// Keep an order-independent fingerprint + byte count per stripe chunk.
  /// Verifies exactly-once writes byte-for-byte without storing data —
  /// the mode benchmark sweeps use.
  Digest,
  /// Keep nothing but timing. For the largest sweeps.
  None,
};

/// Typed outcome of one file-system operation attempt. The storage model
/// never fails silently: an injected fault surfaces here, on both the
/// blocking and the asynchronous paths, and the caller decides whether to
/// retry (see coll::Options::max_retries).
enum class IoStatus {
  Ok,
  /// Injected transient failure (FaultParams): the attempt consumed its
  /// full service time but no content became durable. Retryable — a later
  /// attempt of the same operation draws its own fault decision.
  TransientError,
};

/// Deterministic fault-injection configuration of a storage system.
///
/// All fields default to "healthy": a value-constructed FaultParams is
/// exactly the fault-free model, and a simulation with these defaults is
/// bit-identical to one built before the fault layer existed (no RNG is
/// consumed, no timing changes). Every knob is deterministic: fault
/// decisions are pure functions of (seed, operation key, attempt), never
/// of wall-clock, thread schedule, or call order.
struct FaultParams {
  /// Per-attempt probability that a write op fails transiently, in [0, 1].
  double write_fail_rate = 0.0;
  /// Per-attempt probability that a read op fails transiently, in [0, 1].
  double read_fail_rate = 0.0;
  /// Seed of the fault stream. Deliberately separate from the run's noise
  /// seed: the fault *scenario* stays fixed while measurement noise varies
  /// across repetitions.
  std::uint64_t seed = 1;
  /// Deterministic failure schedule: attempts 1..N-1 of *every* operation
  /// fail regardless of the rates above. 1 (or 0) disables. Used to force
  /// exact retry counts and give-up paths in tests.
  int fail_until_attempt = 1;
  /// Service-time multiplier (>= 1) applied on straggler targets — the
  /// slow-OST / slow-I/O-server model. Asynchronous requests on a straggler
  /// pay the factor twice (factor^2): a congested server services its
  /// synchronous RPCs with priority while background aio requests queue
  /// behind everything else — the same asymmetry the paper measured as
  /// pathological aio_write on Lustre (section V), here emerging from
  /// injected per-server variance. See docs/FAULTS.md.
  double straggler_factor = 1.0;
  /// Number of straggler targets (the first N of the system). 0 disables.
  int straggler_targets = 0;
  /// Virtual time at which the stragglers begin to lag (fail-slow servers);
  /// 0 = slow from the start. Service requested before this instant runs at
  /// full speed, which is what the engine's degraded-mode detector needs to
  /// establish a healthy baseline.
  sim::Time straggler_after = 0;
};

/// Pure-function fault oracle shared by all files of a storage system.
///
/// Owns no mutable state: each decision hashes (seed, operation key,
/// attempt) through the simulation's SplitMix64 stream, so the verdict for
/// a given operation is independent of how many other operations ran, in
/// which order, on how many worker threads — the property behind the
/// "identical retry counts at any --jobs N" guarantee.
class FaultModel {
 public:
  FaultModel() = default;
  explicit FaultModel(const FaultParams& p) : p_(p) {}

  const FaultParams& params() const { return p_; }

  /// True when any knob deviates from the healthy default. When false, the
  /// storage paths skip the fault layer entirely (bit-identity guarantee).
  bool enabled() const {
    return p_.write_fail_rate > 0.0 || p_.read_fail_rate > 0.0 ||
           p_.fail_until_attempt > 1 ||
           (p_.straggler_factor > 1.0 && p_.straggler_targets > 0);
  }

  /// Fault verdict for attempt `attempt` (1-based) of the write op `key`.
  bool write_fails(std::uint64_t key, int attempt) const {
    return fails(p_.write_fail_rate, key, 0x57u, attempt);
  }
  /// Fault verdict for attempt `attempt` (1-based) of the read op `key`.
  bool read_fails(std::uint64_t key, int attempt) const {
    return fails(p_.read_fail_rate, key, 0x5Eu, attempt);
  }

  /// Service-time multiplier of `target` for a request whose service is
  /// scheduled no earlier than `at`: straggler_factor on straggler targets
  /// (squared for asynchronous requests — see FaultParams), 1 otherwise.
  double service_factor(int target, bool async, sim::Time at) const {
    if (p_.straggler_targets <= 0 || p_.straggler_factor <= 1.0) return 1.0;
    if (target >= p_.straggler_targets || at < p_.straggler_after) return 1.0;
    return async ? p_.straggler_factor * p_.straggler_factor
                 : p_.straggler_factor;
  }

  /// Stable identity of one operation: (issuing node, file region). Two
  /// attempts of the same logical operation share the key and differ only
  /// in `attempt`, so retry schedules are reproducible.
  static std::uint64_t op_key(int node, std::uint64_t offset,
                              std::uint64_t length);

 private:
  bool fails(double rate, std::uint64_t key, std::uint64_t salt,
             int attempt) const;

  FaultParams p_;
};

/// Compact textual fingerprint of a fault configuration, empty for the
/// healthy default. Used to tag sweep-checkpoint manifests so results
/// recorded under one fault scenario can never be spliced into another.
std::string fault_tag(const FaultParams& p);

/// BeeGFS-flavoured parallel file system model. All durations are virtual
/// nanoseconds, all bandwidths bytes/second.
struct PfsParams {
  int num_targets = 16;
  std::uint64_t stripe_size = sim::MiB;
  /// Sustained write bandwidth of one storage target.
  double target_bw = 125e6;
  /// Per-chunk request overhead (RPC, metadata, head movement).
  sim::Duration request_overhead = sim::microseconds(250);
  /// Per-write-call dispatch overhead at the client (syscall, aio setup,
  /// request marshalling) — the fixed price of issuing one write, however
  /// large. Splitting a buffer into more, smaller writes pays it more
  /// often, which is why halving the collective buffer is not free.
  sim::Duration op_overhead = sim::microseconds(150);
  /// Client-side injection bandwidth (storage NIC of a compute node).
  double client_bw = 2.5e9;
  /// One-way latency from client to storage target.
  sim::Duration storage_latency = sim::microseconds(30);
  /// Crill-style co-located storage: storage traffic also occupies the
  /// node's compute-fabric transmit channel.
  bool share_compute_nic = false;
  /// Service-time multiplier applied to *asynchronous* writes only.
  /// 1.0 models ideal aio; slightly above 1 models the dispatch/kernel-
  /// thread overhead of healthy aio (BeeGFS); >>1 models the pathological
  /// aio_write behaviour the paper observed on Lustre.
  double aio_penalty = 1.0;
  /// Run-to-run variability of aio quality: the effective penalty of a job
  /// is aio_penalty * max(1, lognormal(aio_penalty_sigma)) — some runs see
  /// near-ideal background progress, others see sluggish kernel aio. The
  /// experiment runner draws this once per run from its seed.
  double aio_penalty_sigma = 0.0;
  /// Variability of target service times (shared storage).
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 1;
  /// Fault injection (transient failures, straggler targets). Defaults to
  /// the healthy, bit-identical-to-fault-free model.
  FaultParams faults;
  /// Queuing discipline of the storage targets when several tenants share
  /// the system. Fifo (the default) with a single tenant is bit-identical
  /// to the pre-QoS model.
  QosPolicy qos = QosPolicy::Fifo;
};

class File;

/// Per-file striping overrides (gio-style subfiling knobs). Every field's
/// zero value means "inherit the system-wide default", so a value-
/// constructed FileStriping is byte- and timing-identical to the historical
/// system-uniform striping — the k=1 bit-identity guarantee leans on this.
struct FileStriping {
  /// Stripe unit of this file in bytes; 0 = PfsParams::stripe_size. The
  /// gio benchmark sweeps this 1 MB–512 MB per subfile.
  std::uint64_t stripe_unit = 0;
  /// Number of targets this file stripes over (the striping factor);
  /// 0 = all of the system's targets.
  int stripe_factor = 0;
  /// First target of this file's stripe set (mod num_targets). Subfiled
  /// runs spread disjoint files over disjoint target subsets by offsetting
  /// each file, as `lfs setstripe -i` does.
  int target_offset = 0;
};

/// Handle of an asynchronous write or read; completed by the storage model
/// at the time the last stripe chunk is durably on (or off) its target.
///
/// Value-constructed handles are fully zero-initialized and report
/// valid() == false; every field carries a default member initializer so a
/// `WriteOp op;` never holds indeterminate state (regression: fault_test
/// WriteOpValueInitialized).
class WriteOp {
 public:
  WriteOp() = default;
  bool valid() const { return ev_ != nullptr; }
  /// Scheduled completion time (valid from issue until wait() consumes the
  /// handle).
  sim::Time completion() const {
    TPIO_CHECK(ev_ != nullptr, "completion() on an empty/consumed WriteOp");
    return ev_->time();
  }
  /// Outcome of the attempt. Decided deterministically at submission but —
  /// like a real aio error — only *observable* by the program through
  /// File::wait(), which returns it; exposed here for the bookkeeping of a
  /// consumed handle and for tests. Ok for an empty handle.
  IoStatus status() const { return status_; }

 private:
  friend class File;
  WriteOp(sim::EventPtr ev, IoStatus status)
      : ev_(std::move(ev)), status_(status) {}
  sim::EventPtr ev_ = nullptr;
  IoStatus status_ = IoStatus::Ok;
};

/// A cluster-wide storage system: `num_targets` independent targets, files
/// striped across them round-robin by stripe index. Owns the target and
/// client-channel timelines and the fault oracle; Files hold a non-owning
/// back-pointer and must not outlive it.
class StorageSystem {
 public:
  /// `fabric` may be null; required only when share_compute_nic is set.
  /// Validates PfsParams (positive geometry/bandwidths, rates in [0, 1],
  /// straggler factor >= 1) and throws tpio::Error on violation.
  StorageSystem(const PfsParams& params, net::Fabric* fabric);

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  std::shared_ptr<File> create(std::string name, Integrity integrity);

  /// Multi-tenant create: the file's I/O is billed to `tenant` under the
  /// system's QoS policy, and the caller's tenant-local compute nodes are
  /// translated by `node_offset` onto the shared system's node space
  /// (client storage channels, compute-NIC sharing, fault-oracle keys).
  /// The default create() is exactly create(name, integrity, {}, 0).
  std::shared_ptr<File> create(std::string name, Integrity integrity,
                               const TenantClass& tenant, int node_offset);

  /// Subfiling create: like the tenant overload, plus per-file striping
  /// overrides (stripe unit, striping factor, first target). A default-
  /// constructed FileStriping makes this exactly the overload above.
  std::shared_ptr<File> create(std::string name, Integrity integrity,
                               const TenantClass& tenant, int node_offset,
                               const FileStriping& striping);

  const PfsParams& params() const { return params_; }
  const FaultModel& faults() const { return faults_; }

  /// Aggregate bytes accepted across all files (diagnostic). Failed
  /// attempts contribute nothing.
  std::uint64_t bytes_written() const { return bytes_written_; }

  /// Per-tenant interference accounting summed across all targets.
  QosStats tenant_stats(int tenant) const;
  /// One target's service queue (diagnostics/tests).
  const ServiceQueue& target(int t) const;

 private:
  friend class File;
  PfsParams params_;
  net::Fabric* fabric_;
  FaultModel faults_;
  std::vector<std::unique_ptr<sim::NoiseModel>> noise_;
  std::vector<ServiceQueue> targets_;
  std::vector<sim::Timeline> client_tx_;  // lazily sized per node
  std::uint64_t bytes_written_ = 0;

  sim::Timeline& client_channel(int node);
};

/// One striped file. All I/O entry points must run on a rank thread; the
/// caller passes its RankCtx and the compute node it runs on (for client-
/// side channel contention). Offsets and lengths are bytes; `attempt`
/// parameters are 1-based and thread through to the fault oracle so a
/// retry of the same region draws a fresh verdict.
class File {
 public:
  /// Asynchronous write: returns immediately with the scheduled completion.
  /// Models aio_write / MPI_File_iwrite_at — service proceeds on storage
  /// resources regardless of what the issuing rank does afterwards.
  WriteOp iwrite_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                    std::span<const std::byte> data, int attempt = 1);

  /// Schedule a write without advancing the caller's clock. `async` selects
  /// the aio service path (and its penalty). Callers that want blocking
  /// semantics plus bookkeeping between scheduling and completion — e.g.
  /// declaring an MPI-progress blackout for the write's duration — use this
  /// and then wait().
  WriteOp start_write(sim::RankCtx& ctx, int node, std::uint64_t offset,
                      std::span<const std::byte> data, bool async,
                      int attempt = 1);

  /// Blocking write: the rank's clock advances to durable completion.
  /// Returns the attempt's outcome; on TransientError the full service
  /// time elapsed but nothing became durable. (Callers that also run an
  /// MPI engine should declare the rank unavailable for the same interval;
  /// see coll::CollectiveWriter.)
  IoStatus write_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                    std::span<const std::byte> data, int attempt = 1);

  /// Consume `op`, blocking until its completion time; returns the
  /// operation's outcome — the point where an injected failure becomes
  /// observable, like the error slot of a real aiocb.
  IoStatus wait(sim::RankCtx& ctx, WriteOp& op);

  /// Schedule a read of [offset, offset+out.size()) into `out`. Contents
  /// come from stored chunks (Store mode); unwritten bytes — and all bytes
  /// in Digest/None modes — read as zero, with full timing either way.
  /// Content visibility follows the virtual timeline: a read issued before
  /// an asynchronous write's completion does not observe that write's data.
  /// `async` selects the aio path, as for writes. A read that draws a
  /// transient fault still fills `out` (the bytes are untrustworthy, as
  /// after a failed pread) and reports the failure through wait().
  WriteOp start_read(sim::RankCtx& ctx, int node, std::uint64_t offset,
                     std::span<std::byte> out, bool async, int attempt = 1);

  /// Blocking read: clock advances to completion. Returns the outcome.
  IoStatus read_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                   std::span<std::byte> out, int attempt = 1);

  // ----- inspection / verification -----------------------------------------
  const std::string& name() const { return name_; }
  Integrity integrity() const { return integrity_; }
  /// Effective stripe size of this file: the per-file stripe_unit override
  /// when set, else the storage system's stripe_size.
  std::uint64_t stripe_size() const;
  /// Per-file striping overrides (all-zero for files created without them).
  const FileStriping& striping() const { return striping_; }
  /// Parameters of the underlying storage system (e.g. for the autotune
  /// platform signature).
  const PfsParams& params() const { return sys_->params(); }
  /// Fault oracle of the underlying storage system (for retry jitter
  /// seeding and tests).
  const FaultModel& faults() const { return sys_->faults(); }
  /// Tenant this file's I/O is billed to (default tenant 0 for solo runs).
  const TenantClass& tenant() const { return tenant_; }
  /// First shared-system node of this file's tenant (0 for solo runs).
  int node_offset() const { return node_offset_; }
  /// Highest successfully written offset + 1 (0 for an empty file).
  std::uint64_t size() const { return size_; }
  /// Lowest successfully written offset (0 for an empty file). Subfiles
  /// keep their members' *global* offsets, so a subfile's written extent is
  /// [base_offset, size), not [0, size); verify() checks exactly that.
  std::uint64_t base_offset() const {
    return bytes_accepted_ > 0 ? min_offset_ : 0;
  }
  /// Bytes accepted by successful write attempts (failed attempts are not
  /// counted — they never became durable).
  std::uint64_t bytes_written() const { return bytes_accepted_; }

  /// Store mode only: copy out a region; unwritten bytes read as zero.
  std::vector<std::byte> read_back(std::uint64_t offset, std::uint64_t len) const;

  /// Store/Digest modes: check that the region [0, size) was written
  /// exactly once and that every byte equals `expected(offset)`.
  /// Returns an empty string on success, else a human-readable mismatch.
  /// A write that gave up after exhausting its retries leaves a hole that
  /// this reports.
  std::string verify(const std::function<std::byte(std::uint64_t)>& expected) const;

  /// Order-independent fingerprint of one (offset, value) pair — exposed so
  /// workloads can compute expected digests without materializing data.
  static std::uint64_t mix(std::uint64_t offset, std::byte value);

 private:
  friend class StorageSystem;
  File(StorageSystem& sys, std::string name, Integrity integrity,
       const TenantClass& tenant, int node_offset,
       const FileStriping& striping)
      : sys_(&sys),
        name_(std::move(name)),
        integrity_(integrity),
        tenant_(tenant),
        node_offset_(node_offset),
        striping_(striping) {}

  /// Target serving stripe index `stripe_idx` of this file: round-robin
  /// over the file's stripe set (striping factor wide, rotated by
  /// target_offset). With no overrides this is stripe_idx % num_targets.
  int target_of(std::uint64_t stripe_idx) const;

  struct Chunk {
    std::vector<std::byte> bytes;   // Store mode
    std::uint64_t digest = 0;       // Digest mode (commutative sum of mix())
    std::uint64_t written = 0;      // bytes accepted into this chunk
  };

  /// Content handed to the storage system but not yet durable: snapshotted
  /// at submission (the caller may reuse its buffer immediately, like
  /// aio_write), applied to chunks_ only once the virtual clock passes the
  /// write's completion — a read issued before then sees the old contents.
  struct PendingWrite {
    sim::Time visible_at = 0;       // write completion time
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::vector<std::byte> bytes;   // Store mode: submission-time snapshot
    // Digest mode: per-chunk digest deltas precomputed at submission (in
    // chunk order), so no byte copy is retained.
    std::vector<std::uint64_t> deltas;
  };

  /// Record content + compute service completion. Under the baton. A
  /// faulted attempt (status out-param) consumes service but records no
  /// content.
  sim::Time schedule_write(sim::RankCtx& ctx, int node, std::uint64_t offset,
                           std::span<const std::byte> data, bool async,
                           int attempt, IoStatus& status);
  /// Account the write immediately (size, byte counters) and queue its
  /// content to become visible at `visible_at`.
  void record(std::uint64_t offset, std::span<const std::byte> data,
              sim::Time visible_at);
  /// Apply every pending write with visible_at <= `upto` to chunks_.
  void flush_content(sim::Time upto);
  void apply_content(const PendingWrite& w);

  StorageSystem* sys_;
  std::string name_;
  Integrity integrity_;
  TenantClass tenant_;
  int node_offset_ = 0;
  FileStriping striping_;
  std::uint64_t size_ = 0;
  std::uint64_t bytes_accepted_ = 0;
  std::uint64_t min_offset_ = UINT64_MAX;
  std::unordered_map<std::uint64_t, Chunk> chunks_;  // by chunk index
  std::vector<PendingWrite> pending_;  // submission order
};

}  // namespace tpio::pfs
