#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/fabric.hpp"
#include "simbase/error.hpp"
#include "sched/conductor.hpp"
#include "sched/timeline.hpp"
#include "simbase/rng.hpp"
#include "simbase/time.hpp"
#include "simbase/units.hpp"

namespace tpio::pfs {

/// How a file retains what was written, trading memory for verifiability.
enum class Integrity {
  /// Keep every byte (read_back works). For tests and small examples.
  Store,
  /// Keep an order-independent fingerprint + byte count per stripe chunk.
  /// Verifies exactly-once writes byte-for-byte without storing data —
  /// the mode benchmark sweeps use.
  Digest,
  /// Keep nothing but timing. For the largest sweeps.
  None,
};

/// BeeGFS-flavoured parallel file system model.
struct PfsParams {
  int num_targets = 16;
  std::uint64_t stripe_size = sim::MiB;
  /// Sustained write bandwidth of one storage target.
  double target_bw = 125e6;
  /// Per-chunk request overhead (RPC, metadata, head movement).
  sim::Duration request_overhead = sim::microseconds(250);
  /// Per-write-call dispatch overhead at the client (syscall, aio setup,
  /// request marshalling) — the fixed price of issuing one write, however
  /// large. Splitting a buffer into more, smaller writes pays it more
  /// often, which is why halving the collective buffer is not free.
  sim::Duration op_overhead = sim::microseconds(150);
  /// Client-side injection bandwidth (storage NIC of a compute node).
  double client_bw = 2.5e9;
  /// One-way latency from client to storage target.
  sim::Duration storage_latency = sim::microseconds(30);
  /// Crill-style co-located storage: storage traffic also occupies the
  /// node's compute-fabric transmit channel.
  bool share_compute_nic = false;
  /// Service-time multiplier applied to *asynchronous* writes only.
  /// 1.0 models ideal aio; slightly above 1 models the dispatch/kernel-
  /// thread overhead of healthy aio (BeeGFS); >>1 models the pathological
  /// aio_write behaviour the paper observed on Lustre.
  double aio_penalty = 1.0;
  /// Run-to-run variability of aio quality: the effective penalty of a job
  /// is aio_penalty * max(1, lognormal(aio_penalty_sigma)) — some runs see
  /// near-ideal background progress, others see sluggish kernel aio. The
  /// experiment runner draws this once per run from its seed.
  double aio_penalty_sigma = 0.0;
  /// Variability of target service times (shared storage).
  double noise_sigma = 0.0;
  std::uint64_t noise_seed = 1;
};

class File;

/// Handle of an asynchronous write; completed by the storage model at the
/// time the last stripe chunk is durably on its target.
class WriteOp {
 public:
  WriteOp() = default;
  bool valid() const { return ev_ != nullptr; }
  /// Scheduled completion time (valid from issue until wait() consumes the
  /// handle).
  sim::Time completion() const {
    TPIO_CHECK(ev_ != nullptr, "completion() on an empty/consumed WriteOp");
    return ev_->time();
  }

 private:
  friend class File;
  explicit WriteOp(sim::EventPtr ev) : ev_(std::move(ev)) {}
  sim::EventPtr ev_;
};

/// A cluster-wide storage system: `num_targets` independent targets, files
/// striped across them round-robin by stripe index.
class StorageSystem {
 public:
  /// `fabric` may be null; required only when share_compute_nic is set.
  StorageSystem(const PfsParams& params, net::Fabric* fabric);

  StorageSystem(const StorageSystem&) = delete;
  StorageSystem& operator=(const StorageSystem&) = delete;

  std::shared_ptr<File> create(std::string name, Integrity integrity);

  const PfsParams& params() const { return params_; }

  /// Aggregate bytes accepted across all files (diagnostic).
  std::uint64_t bytes_written() const { return bytes_written_; }

 private:
  friend class File;
  PfsParams params_;
  net::Fabric* fabric_;
  std::vector<std::unique_ptr<sim::NoiseModel>> noise_;
  std::vector<sim::Timeline> targets_;
  std::vector<sim::Timeline> client_tx_;  // lazily sized per node
  std::uint64_t bytes_written_ = 0;

  sim::Timeline& client_channel(int node);
};

/// One striped file. All I/O entry points must run on a rank thread; the
/// caller passes its RankCtx and the compute node it runs on (for client-
/// side channel contention).
class File {
 public:
  /// Asynchronous write: returns immediately with the scheduled completion.
  /// Models aio_write / MPI_File_iwrite_at — service proceeds on storage
  /// resources regardless of what the issuing rank does afterwards.
  WriteOp iwrite_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                    std::span<const std::byte> data);

  /// Schedule a write without advancing the caller's clock. `async` selects
  /// the aio service path (and its penalty). Callers that want blocking
  /// semantics plus bookkeeping between scheduling and completion — e.g.
  /// declaring an MPI-progress blackout for the write's duration — use this
  /// and then wait().
  WriteOp start_write(sim::RankCtx& ctx, int node, std::uint64_t offset,
                      std::span<const std::byte> data, bool async);

  /// Blocking write: the rank's clock advances to durable completion.
  /// (Callers that also run an MPI engine should declare the rank
  /// unavailable for the same interval; see coll::CollectiveWriter.)
  void write_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
                std::span<const std::byte> data);

  void wait(sim::RankCtx& ctx, WriteOp& op);

  /// Schedule a read of [offset, offset+out.size()) into `out`. Contents
  /// come from stored chunks (Store mode); unwritten bytes — and all bytes
  /// in Digest/None modes — read as zero, with full timing either way.
  /// Content visibility follows the virtual timeline: a read issued before
  /// an asynchronous write's completion does not observe that write's data.
  /// `async` selects the aio path, as for writes.
  WriteOp start_read(sim::RankCtx& ctx, int node, std::uint64_t offset,
                     std::span<std::byte> out, bool async);

  /// Blocking read: clock advances to completion.
  void read_at(sim::RankCtx& ctx, int node, std::uint64_t offset,
               std::span<std::byte> out);

  // ----- inspection / verification -----------------------------------------
  const std::string& name() const { return name_; }
  Integrity integrity() const { return integrity_; }
  /// Stripe size of the underlying storage system.
  std::uint64_t stripe_size() const;
  /// Parameters of the underlying storage system (e.g. for the autotune
  /// platform signature).
  const PfsParams& params() const { return sys_->params(); }
  /// Highest written offset + 1 (0 for an empty file).
  std::uint64_t size() const { return size_; }
  std::uint64_t bytes_written() const { return bytes_accepted_; }

  /// Store mode only: copy out a region; unwritten bytes read as zero.
  std::vector<std::byte> read_back(std::uint64_t offset, std::uint64_t len) const;

  /// Store/Digest modes: check that the region [0, size) was written
  /// exactly once and that every byte equals `expected(offset)`.
  /// Returns an empty string on success, else a human-readable mismatch.
  std::string verify(const std::function<std::byte(std::uint64_t)>& expected) const;

  /// Order-independent fingerprint of one (offset, value) pair — exposed so
  /// workloads can compute expected digests without materializing data.
  static std::uint64_t mix(std::uint64_t offset, std::byte value);

 private:
  friend class StorageSystem;
  File(StorageSystem& sys, std::string name, Integrity integrity)
      : sys_(&sys), name_(std::move(name)), integrity_(integrity) {}

  struct Chunk {
    std::vector<std::byte> bytes;   // Store mode
    std::uint64_t digest = 0;       // Digest mode (commutative sum of mix())
    std::uint64_t written = 0;      // bytes accepted into this chunk
  };

  /// Content handed to the storage system but not yet durable: snapshotted
  /// at submission (the caller may reuse its buffer immediately, like
  /// aio_write), applied to chunks_ only once the virtual clock passes the
  /// write's completion — a read issued before then sees the old contents.
  struct PendingWrite {
    sim::Time visible_at = 0;       // write completion time
    std::uint64_t offset = 0;
    std::uint64_t length = 0;
    std::vector<std::byte> bytes;   // Store mode: submission-time snapshot
    // Digest mode: per-chunk digest deltas precomputed at submission (in
    // chunk order), so no byte copy is retained.
    std::vector<std::uint64_t> deltas;
  };

  /// Record content + compute service completion. Under the baton.
  sim::Time schedule_write(sim::RankCtx& ctx, int node, std::uint64_t offset,
                           std::span<const std::byte> data, bool async);
  /// Account the write immediately (size, byte counters) and queue its
  /// content to become visible at `visible_at`.
  void record(std::uint64_t offset, std::span<const std::byte> data,
              sim::Time visible_at);
  /// Apply every pending write with visible_at <= `upto` to chunks_.
  void flush_content(sim::Time upto);
  void apply_content(const PendingWrite& w);

  StorageSystem* sys_;
  std::string name_;
  Integrity integrity_;
  std::uint64_t size_ = 0;
  std::uint64_t bytes_accepted_ = 0;
  std::unordered_map<std::uint64_t, Chunk> chunks_;  // by chunk index
  std::vector<PendingWrite> pending_;  // submission order
};

}  // namespace tpio::pfs
