#include "simbase/rng.hpp"

#include <cmath>

#include "simbase/error.hpp"

namespace tpio::sim {

std::uint64_t Rng::next_below(std::uint64_t bound) {
  TPIO_CHECK(bound > 0, "next_below bound must be positive");
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return v % bound;
}

double Rng::next_normal() {
  // Box-Muller; discard the paired value for simplicity and determinism.
  double u1 = next_double();
  double u2 = next_double();
  while (u1 <= 0.0) u1 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

std::uint64_t Rng::derive_seed(std::uint64_t master, std::uint64_t salt) {
  // One splitmix step over (master ^ rotated salt) decorrelates streams.
  std::uint64_t z = master ^ (salt * 0x9e3779b97f4a7c15ULL + 0x632be59bd9b4e019ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

double NoiseModel::factor() {
  if (sigma_ <= 0.0) return 1.0;
  return std::exp(sigma_ * rng_.next_normal());
}

}  // namespace tpio::sim
