#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace tpio::sim {

/// Size-classed recycling allocator for the simulation's transient byte
/// buffers (collective sub-buffers, shuffle staging, per-rank payloads).
///
/// The hot path of a simulated collective write allocates the same buffer
/// shapes every cycle and every run; a sweep re-pays malloc + page-fault +
/// memset for gigabytes of memory whose *contents* the virtual timeline
/// never depends on. The pool checks buffers out of per-thread free lists
/// (power-of-two size classes, no lock on the common path) and takes them
/// back when the RAII handle dies.
///
/// Lifecycle: `local()` returns this thread's pool. A dying thread's pool
/// donates its free lists to a process-wide reservoir (mutex-protected,
/// byte-capped) from which other threads' pools repopulate their local
/// lists. Under the fiber-backed conductor rank programs share the one
/// host thread, which never dies mid-process — so the conductor calls
/// `trim_local()` at run teardown (the fiber-era analogue of rank-thread
/// death), and long-lived threads are additionally bounded by a per-thread
/// retained-byte cap enforced on every release (overflow spills straight
/// to the reservoir). Buffers may be acquired on one thread and released
/// on another — the release simply lands in the releasing thread's pool.
///
/// Bit-identity: recycling changes *where* a buffer's storage comes from,
/// never what the simulation computes. `zeroed` acquisition reproduces the
/// all-zero contents of a fresh std::vector for buffers whose bytes may be
/// read before being fully written; non-zeroed acquisition is reserved for
/// buffers that are completely overwritten (or never read at all —
/// Options::materialize == false). set_recycling(false) turns every
/// acquire into a plain heap allocation, the legacy arm of the
/// differential tests.
class BufferPool {
 public:
  /// RAII handle of one checked-out buffer. Movable, not copyable; the
  /// destructor returns the storage to the destroying thread's pool.
  class Buffer {
   public:
    Buffer() = default;
    Buffer(Buffer&& o) noexcept
        : mem_(std::move(o.mem_)), cap_(o.cap_), size_(o.size_) {
      o.cap_ = o.size_ = 0;
    }
    Buffer& operator=(Buffer&& o) noexcept {
      if (this != &o) {
        reset();
        mem_ = std::move(o.mem_);
        cap_ = o.cap_;
        size_ = o.size_;
        o.cap_ = o.size_ = 0;
      }
      return *this;
    }
    Buffer(const Buffer&) = delete;
    Buffer& operator=(const Buffer&) = delete;
    ~Buffer() { reset(); }

    /// Return the storage to the pool now (no-op on an empty handle).
    void reset();

    std::byte* data() { return mem_.get(); }
    const std::byte* data() const { return mem_.get(); }
    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }
    std::span<std::byte> span() { return {mem_.get(), size_}; }
    std::span<const std::byte> span() const { return {mem_.get(), size_}; }

   private:
    friend class BufferPool;
    std::unique_ptr<std::byte[]> mem_;
    std::size_t cap_ = 0;   // class-rounded capacity
    std::size_t size_ = 0;  // requested size
  };

  /// The calling thread's pool. Never throws; constructed on first use.
  static BufferPool& local();

  /// Check out a buffer of exactly `n` bytes (n == 0 yields an empty
  /// handle). `zeroed` guarantees all-zero contents like a fresh
  /// std::vector — required whenever any byte might be read before being
  /// written; pass false for buffers that are fully overwritten or whose
  /// contents are never consumed.
  Buffer acquire(std::size_t n, bool zeroed);

  /// Process-wide counters (relaxed atomics; approximate under races).
  struct Stats {
    std::uint64_t acquires = 0;   // non-empty acquisitions
    std::uint64_t hits = 0;       // served from a local free list
    std::uint64_t reservoir_hits = 0;  // served from the global reservoir
    std::uint64_t fresh = 0;      // heap allocations
  };
  static Stats stats();
  static void reset_stats();

  /// Test hook: false makes acquire() heap-allocate and release() free —
  /// the legacy allocation behaviour. Thread-safe; default true.
  static void set_recycling(bool on);
  static bool recycling();

  /// Drop every buffer parked in the global reservoir (local lists are
  /// unreachable from other threads and simply age out). For tests.
  static void drain_reservoir();

  /// Bytes currently retained by the calling thread's free lists.
  static std::size_t local_retained_bytes();

  /// Cap the calling thread's retained bytes; releases that would exceed
  /// the cap spill to the global reservoir instead of being kept locally.
  /// Returns the previous cap. Default kDefaultLocalCapBytes.
  static std::size_t set_local_cap_bytes(std::size_t cap);

  /// Donate the calling thread's free lists to the global reservoir now —
  /// what a dying rank thread used to do implicitly. The fiber-backed
  /// conductor calls this at run teardown.
  static void trim_local();

  /// Default per-thread retained-byte cap (64 MiB): generous enough that
  /// the steady-state working set of a sweep worker stays fully local,
  /// small enough that a long-lived host thread cannot hoard unbounded
  /// freed buffers across heterogeneous runs.
  static constexpr std::size_t kDefaultLocalCapBytes = std::size_t{64} << 20;

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

 private:
  BufferPool() = default;
  ~BufferPool();  // donates remaining free lists to the global reservoir

  friend class Buffer;
  void release(std::unique_ptr<std::byte[]> mem, std::size_t cap);
  void donate_all();  // move every local free list into the reservoir

  // Size classes are powers of two: class k holds buffers of capacity
  // 2^k. 48 classes cover anything a simulation can ask for.
  static constexpr int kClasses = 48;
  // Bound the per-thread cache: a class keeps at most this many buffers;
  // overflow goes to the reservoir (which enforces a byte cap).
  static constexpr std::size_t kMaxPerClass = 16;

  struct Node {
    std::unique_ptr<std::byte[]> mem;
    std::size_t cap = 0;
  };
  std::vector<Node> free_[kClasses];
  std::size_t retained_bytes_ = 0;  // sum of caps across free_
  std::size_t cap_bytes_ = kDefaultLocalCapBytes;
};

}  // namespace tpio::sim
