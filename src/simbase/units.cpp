#include "simbase/units.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "simbase/error.hpp"

namespace tpio::sim {

std::uint64_t parse_bytes(std::string_view text) {
  TPIO_CHECK(!text.empty(), "empty byte-size string");
  const std::string s(text);
  char* end = nullptr;
  const double value = std::strtod(s.c_str(), &end);
  TPIO_CHECK(end != s.c_str(), "no number in byte-size string: " + s);
  TPIO_CHECK(std::isfinite(value), "byte size out of range: " + s);
  TPIO_CHECK(value >= 0.0, "negative byte size: " + s);

  std::string suffix;
  for (const char* p = end; *p; ++p) {
    if (!std::isspace(static_cast<unsigned char>(*p))) {
      suffix += static_cast<char>(std::tolower(static_cast<unsigned char>(*p)));
    }
  }
  double mult = 1.0;
  if (suffix.empty() || suffix == "b") {
    mult = 1.0;
  } else if (suffix == "k" || suffix == "kb" || suffix == "kib") {
    mult = static_cast<double>(KiB);
  } else if (suffix == "m" || suffix == "mb" || suffix == "mib") {
    mult = static_cast<double>(MiB);
  } else if (suffix == "g" || suffix == "gb" || suffix == "gib") {
    mult = static_cast<double>(GiB);
  } else {
    fail("unknown byte-size suffix '" + suffix + "' in: " + s);
  }
  // llround on a value beyond long long is undefined behaviour and used to
  // wrap silently (e.g. "99999999999G"); reject anything that cannot be
  // represented exactly enough in 63 bits.
  const double scaled = value * mult;
  TPIO_CHECK(scaled < 9.2e18, "byte size overflows 64 bits: " + s);
  return static_cast<std::uint64_t>(std::llround(scaled));
}

std::string format_bytes(std::uint64_t bytes) {
  char buf[64];
  const double b = static_cast<double>(bytes);
  if (bytes >= GiB) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB", b / static_cast<double>(GiB));
  } else if (bytes >= MiB) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB", b / static_cast<double>(MiB));
  } else if (bytes >= KiB) {
    std::snprintf(buf, sizeof(buf), "%.2f KiB", b / static_cast<double>(KiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%llu B", static_cast<unsigned long long>(bytes));
  }
  return buf;
}

std::string format_bandwidth(double bytes_per_second) {
  char buf[64];
  if (bytes_per_second >= static_cast<double>(GiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f GiB/s", bytes_per_second / static_cast<double>(GiB));
  } else if (bytes_per_second >= static_cast<double>(MiB)) {
    std::snprintf(buf, sizeof(buf), "%.2f MiB/s", bytes_per_second / static_cast<double>(MiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f KiB/s", bytes_per_second / static_cast<double>(KiB));
  }
  return buf;
}

}  // namespace tpio::sim
