#pragma once

#include <stdexcept>
#include <string>

namespace tpio {

/// Thrown on violated invariants and misuse of the simulation APIs.
///
/// The simulator favours loud failure over undefined behaviour: every
/// precondition that user code could plausibly violate is checked.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] void fail(const std::string& msg);

}  // namespace tpio

/// Precondition / invariant check that survives NDEBUG builds.
#define TPIO_CHECK(cond, msg)                                        \
  do {                                                               \
    if (!(cond)) {                                                   \
      ::tpio::fail(std::string(__FILE__) + ":" +                     \
                   std::to_string(__LINE__) + ": check `" #cond      \
                   "` failed: " + (msg));                            \
    }                                                                \
  } while (0)
