#include "simbase/bufpool.hpp"

#include <atomic>
#include <bit>
#include <cstring>
#include <mutex>

namespace tpio::sim {

namespace {

std::atomic<bool> g_recycling{true};
std::atomic<std::uint64_t> g_acquires{0};
std::atomic<std::uint64_t> g_hits{0};
std::atomic<std::uint64_t> g_reservoir_hits{0};
std::atomic<std::uint64_t> g_fresh{0};

int class_of(std::size_t n) {
  if (n <= 1) return 0;
  return static_cast<int>(std::bit_width(n - 1));
}

/// Process-wide parking lot for buffers whose owning thread exited (the
/// conductor spawns fresh rank threads per run). Leaked on purpose: the
/// reservoir must outlive every thread_local pool destructor, and a static
/// pointer keeps it reachable so leak checkers stay quiet.
struct Reservoir {
  std::mutex mu;
  struct Node {
    std::unique_ptr<std::byte[]> mem;
    std::size_t cap = 0;
  };
  std::vector<Node> free_[48];
  std::size_t bytes = 0;
  // Cap the parked memory; beyond it donated buffers are simply freed.
  static constexpr std::size_t kCapBytes = std::size_t{1} << 30;  // 1 GiB
};

Reservoir& reservoir() {
  static Reservoir* r = new Reservoir;
  return *r;
}

}  // namespace

void BufferPool::Buffer::reset() {
  if (!mem_) return;
  if (g_recycling.load(std::memory_order_relaxed)) {
    BufferPool::local().release(std::move(mem_), cap_);
  } else {
    mem_.reset();
  }
  cap_ = size_ = 0;
}

BufferPool& BufferPool::local() {
  thread_local BufferPool pool;
  return pool;
}

BufferPool::~BufferPool() {
  // Thread exit: park the free lists in the reservoir so other threads
  // inherit the memory instead of re-allocating it.
  donate_all();
}

void BufferPool::donate_all() {
  Reservoir& r = reservoir();
  std::lock_guard<std::mutex> lk(r.mu);
  for (int k = 0; k < kClasses; ++k) {
    for (Node& n : free_[k]) {
      if (r.bytes + n.cap > Reservoir::kCapBytes) continue;  // overflow: free
      r.bytes += n.cap;
      r.free_[k].push_back(Reservoir::Node{std::move(n.mem), n.cap});
    }
    free_[k].clear();
  }
  retained_bytes_ = 0;
}

BufferPool::Buffer BufferPool::acquire(std::size_t n, bool zeroed) {
  Buffer b;
  if (n == 0) return b;
  g_acquires.fetch_add(1, std::memory_order_relaxed);
  const int k = class_of(n);
  const std::size_t cap = std::size_t{1} << k;

  if (g_recycling.load(std::memory_order_relaxed)) {
    auto& list = free_[k];
    if (!list.empty()) {
      b.mem_ = std::move(list.back().mem);
      b.cap_ = list.back().cap;
      list.pop_back();
      retained_bytes_ -= b.cap_;
      g_hits.fetch_add(1, std::memory_order_relaxed);
      if (zeroed) std::memset(b.mem_.get(), 0, n);
      b.size_ = n;
      return b;
    }
    Reservoir& r = reservoir();
    std::lock_guard<std::mutex> lk(r.mu);
    if (!r.free_[k].empty()) {
      b.mem_ = std::move(r.free_[k].back().mem);
      b.cap_ = r.free_[k].back().cap;
      r.free_[k].pop_back();
      r.bytes -= b.cap_;
      g_reservoir_hits.fetch_add(1, std::memory_order_relaxed);
      if (zeroed) std::memset(b.mem_.get(), 0, n);
      b.size_ = n;
      return b;
    }
  }

  // Fresh allocation. new std::byte[cap] default-initializes — no memset
  // unless the caller asked for zeroed contents.
  g_fresh.fetch_add(1, std::memory_order_relaxed);
  b.mem_ = std::unique_ptr<std::byte[]>(new std::byte[cap]);
  b.cap_ = cap;
  if (zeroed) std::memset(b.mem_.get(), 0, n);
  b.size_ = n;
  return b;
}

void BufferPool::release(std::unique_ptr<std::byte[]> mem, std::size_t cap) {
  const int k = class_of(cap);
  auto& list = free_[k];
  if (list.size() >= kMaxPerClass || retained_bytes_ + cap > cap_bytes_) {
    // Local list full or thread over its retained-byte cap: park in the
    // reservoir instead of keeping (or leaking growth into) local lists.
    Reservoir& r = reservoir();
    std::lock_guard<std::mutex> lk(r.mu);
    if (r.bytes + cap <= Reservoir::kCapBytes) {
      r.bytes += cap;
      r.free_[k].push_back(Reservoir::Node{std::move(mem), cap});
    }
    return;  // over cap: unique_ptr frees on scope exit
  }
  retained_bytes_ += cap;
  list.push_back(Node{std::move(mem), cap});
}

std::size_t BufferPool::local_retained_bytes() {
  return local().retained_bytes_;
}

std::size_t BufferPool::set_local_cap_bytes(std::size_t cap) {
  BufferPool& p = local();
  const std::size_t prev = p.cap_bytes_;
  p.cap_bytes_ = cap;
  return prev;
}

void BufferPool::trim_local() { local().donate_all(); }

BufferPool::Stats BufferPool::stats() {
  Stats s;
  s.acquires = g_acquires.load(std::memory_order_relaxed);
  s.hits = g_hits.load(std::memory_order_relaxed);
  s.reservoir_hits = g_reservoir_hits.load(std::memory_order_relaxed);
  s.fresh = g_fresh.load(std::memory_order_relaxed);
  return s;
}

void BufferPool::reset_stats() {
  g_acquires.store(0, std::memory_order_relaxed);
  g_hits.store(0, std::memory_order_relaxed);
  g_reservoir_hits.store(0, std::memory_order_relaxed);
  g_fresh.store(0, std::memory_order_relaxed);
}

void BufferPool::set_recycling(bool on) {
  g_recycling.store(on, std::memory_order_relaxed);
}

bool BufferPool::recycling() {
  return g_recycling.load(std::memory_order_relaxed);
}

void BufferPool::drain_reservoir() {
  Reservoir& r = reservoir();
  std::lock_guard<std::mutex> lk(r.mu);
  for (auto& list : r.free_) list.clear();
  r.bytes = 0;
}

}  // namespace tpio::sim
