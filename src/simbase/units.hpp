#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace tpio::sim {

inline constexpr std::uint64_t KiB = 1024ULL;
inline constexpr std::uint64_t MiB = 1024ULL * KiB;
inline constexpr std::uint64_t GiB = 1024ULL * MiB;

/// Parse a byte size like "512", "64K", "32MB", "1.5GiB" (case-insensitive;
/// K/M/G with or without "B"/"iB" all mean powers of 1024, matching the
/// convention of MPI I/O tuning parameters). Throws tpio::Error on bad input.
std::uint64_t parse_bytes(std::string_view text);

/// Human-readable size, e.g. "32.0 MiB".
std::string format_bytes(std::uint64_t bytes);

/// Bandwidth rendering, e.g. "2.6 GiB/s" from bytes-per-second.
std::string format_bandwidth(double bytes_per_second);

}  // namespace tpio::sim
