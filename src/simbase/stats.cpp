#include "simbase/stats.hpp"

#include <algorithm>
#include <cmath>

#include "simbase/error.hpp"

namespace tpio::sim {

double Summary::min() const {
  TPIO_CHECK(!values_.empty(), "min of empty summary");
  return *std::min_element(values_.begin(), values_.end());
}

double Summary::max() const {
  TPIO_CHECK(!values_.empty(), "max of empty summary");
  return *std::max_element(values_.begin(), values_.end());
}

double Summary::mean() const {
  TPIO_CHECK(!values_.empty(), "mean of empty summary");
  double s = 0.0;
  for (double v : values_) s += v;
  return s / static_cast<double>(values_.size());
}

double Summary::median() const { return percentile(50.0); }

double Summary::stddev() const {
  if (values_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0.0;
  for (double v : values_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(values_.size() - 1));
}

double Summary::percentile(double p) const {
  TPIO_CHECK(!values_.empty(), "percentile of empty summary");
  TPIO_CHECK(p >= 0.0 && p <= 100.0, "percentile out of range");
  std::vector<double> sorted = values_;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted.front();
  const double pos = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double relative_improvement(double baseline, double candidate) {
  TPIO_CHECK(baseline > 0.0, "baseline must be positive");
  return (baseline - candidate) / baseline;
}

}  // namespace tpio::sim
