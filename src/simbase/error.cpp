#include "simbase/error.hpp"

namespace tpio {

void fail(const std::string& msg) { throw Error(msg); }

}  // namespace tpio
