#pragma once

#include <cstddef>
#include <vector>

namespace tpio::sim {

/// Order statistics and moments over a sample of doubles.
///
/// Used by the experiment harness for the paper's reporting conventions:
/// minimum across repetitions for point comparisons (fig. 1), mean of
/// positive relative improvements (figs. 2-3).
class Summary {
 public:
  void add(double v) { values_.push_back(v); }
  bool empty() const { return values_.empty(); }
  std::size_t count() const { return values_.size(); }

  double min() const;
  double max() const;
  double mean() const;
  double median() const;
  /// Sample standard deviation (n-1 denominator); 0 for n < 2.
  double stddev() const;
  /// Linear-interpolated percentile, p in [0, 100].
  double percentile(double p) const;

  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
};

/// Relative improvement of `candidate` over `baseline` execution time:
/// (baseline - candidate) / baseline. Positive = candidate faster.
double relative_improvement(double baseline, double candidate);

}  // namespace tpio::sim
