#include "simbase/time.hpp"

#include <cmath>
#include <cstdio>

namespace tpio::sim {

Duration transfer_time(std::uint64_t bytes, double bytes_per_second) {
  if (bytes == 0) return 0;
  if (bytes_per_second <= 0.0) return kTimeNever;
  const double ns = static_cast<double>(bytes) / bytes_per_second * 1e9;
  return static_cast<Duration>(std::ceil(ns));
}

std::string format_time(Duration d) {
  char buf[64];
  const double ad = std::abs(static_cast<double>(d));
  if (ad >= 1e9) {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_seconds(d));
  } else if (ad >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", to_millis(d));
  } else if (ad >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.3f us", to_micros(d));
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns", static_cast<long long>(d));
  }
  return buf;
}

}  // namespace tpio::sim
