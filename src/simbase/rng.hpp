#pragma once

#include <cstdint>

namespace tpio::sim {

/// Deterministic 64-bit PRNG (SplitMix64).
///
/// Chosen over std::mt19937_64 because its output for a given seed is fully
/// specified here, not by the standard library implementation — a requirement
/// for bit-identical simulation schedules across toolchains.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next_u64() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound);

  /// Standard normal deviate (Box-Muller, one value per call).
  double next_normal();

  /// Derive an independent stream; mixing `salt` gives per-purpose streams
  /// (per rank, per resource, per repetition) from one master seed.
  static std::uint64_t derive_seed(std::uint64_t master, std::uint64_t salt);

 private:
  std::uint64_t state_;
};

/// Multiplicative log-normal noise around 1.0.
///
/// Models run-to-run variability of shared resources (a busy parallel file
/// system, a congested fabric). `sigma` is the standard deviation of the
/// underlying normal; sigma == 0 disables noise entirely and is the
/// deterministic fast path used by correctness tests.
class NoiseModel {
 public:
  NoiseModel(double sigma, std::uint64_t seed) : sigma_(sigma), rng_(seed) {}

  /// A factor >= ~e^{-3 sigma}; multiply a service duration by it.
  double factor();

  double sigma() const { return sigma_; }

 private:
  double sigma_;
  Rng rng_;
};

}  // namespace tpio::sim
