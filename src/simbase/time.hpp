#pragma once

#include <cstdint>
#include <string>

namespace tpio::sim {

/// Virtual simulation time in integer nanoseconds.
///
/// All simulation clocks, resource timelines and completion events use this
/// type. Integer ticks keep schedules bit-identical across hosts and avoid
/// floating-point drift when many small durations accumulate.
using Time = std::int64_t;

/// A span of virtual time, also in nanoseconds.
using Duration = std::int64_t;

inline constexpr Time kTimeZero = 0;
inline constexpr Time kTimeNever = INT64_MAX;

inline constexpr Duration nanoseconds(std::int64_t n) { return n; }
inline constexpr Duration microseconds(double us) {
  return static_cast<Duration>(us * 1e3);
}
inline constexpr Duration milliseconds(double ms) {
  return static_cast<Duration>(ms * 1e6);
}
inline constexpr Duration seconds(double s) {
  return static_cast<Duration>(s * 1e9);
}

inline constexpr double to_seconds(Duration d) { return static_cast<double>(d) * 1e-9; }
inline constexpr double to_micros(Duration d) { return static_cast<double>(d) * 1e-3; }
inline constexpr double to_millis(Duration d) { return static_cast<double>(d) * 1e-6; }

/// Duration to transfer `bytes` at `bytes_per_second`, rounded up to a tick.
Duration transfer_time(std::uint64_t bytes, double bytes_per_second);

/// Human-readable rendering, e.g. "12.34 ms" or "850 ns".
std::string format_time(Duration d);

}  // namespace tpio::sim
