#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace tpio::sim {

/// CRC-64 (ECMA-182 polynomial, reflected), table-driven.
///
/// The parallel file system's "sink" mode keeps one CRC per stripe chunk
/// instead of the data itself, so benchmark runs writing many gigabytes of
/// virtual data can still be verified byte-for-byte against a workload
/// generator's expected pattern without storing the bytes.
std::uint64_t crc64(std::uint64_t seed, std::span<const std::byte> data);

inline std::uint64_t crc64(std::span<const std::byte> data) {
  return crc64(0, data);
}

}  // namespace tpio::sim
