#include "simbase/crc.hpp"

#include <array>

namespace tpio::sim {
namespace {

constexpr std::uint64_t kPoly = 0xC96C5795D7870F42ULL;  // ECMA-182, reflected

std::array<std::uint64_t, 256> make_table() {
  std::array<std::uint64_t, 256> t{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint64_t crc = i;
    for (int b = 0; b < 8; ++b) {
      crc = (crc >> 1) ^ ((crc & 1) ? kPoly : 0);
    }
    t[i] = crc;
  }
  return t;
}

const std::array<std::uint64_t, 256>& table() {
  static const auto t = make_table();
  return t;
}

}  // namespace

std::uint64_t crc64(std::uint64_t seed, std::span<const std::byte> data) {
  const auto& t = table();
  std::uint64_t crc = ~seed;
  for (std::byte b : data) {
    crc = t[(crc ^ static_cast<std::uint64_t>(b)) & 0xFF] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace tpio::sim
