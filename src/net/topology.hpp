#pragma once

#include <algorithm>

#include "simbase/error.hpp"

namespace tpio::net {

/// Placement of MPI ranks onto cluster nodes (block mapping, the Open MPI
/// default of `--map-by core`): rank r lives on node (rank_offset + r) /
/// procs_per_node. The last node may be partially filled (`ranks` <
/// nodes * procs_per_node), and — for sub-communicator views whose rank 0
/// starts mid-node — the first node may be partially filled too
/// (`rank_offset` > 0). Whole-world topologies always have rank_offset 0.
struct Topology {
  int nodes = 1;
  int procs_per_node = 1;
  /// Actual rank count; 0 means "all nodes full".
  int ranks = 0;
  /// Slot of rank 0 within its node (0 <= rank_offset < procs_per_node).
  /// Nonzero only for rank-granular sub-views: a subgroup carved out of a
  /// larger job keeps its members' physical node slots, so its first node
  /// contributes procs_per_node - rank_offset ranks. At rank_offset == 0
  /// every formula below reduces exactly to the historical block mapping.
  int rank_offset = 0;

  /// Central validity check. Aggregate initialization bypasses fit()'s
  /// argument checks, so every accessor funnels through here: malformed
  /// shapes (non-positive sizes, rank counts that would leave a node other
  /// than the last one empty or overflow the machine) fail on first use
  /// instead of corrupting downstream arithmetic (e.g. node_of dividing by
  /// zero, or a fabric built with zero NICs).
  void validate() const {
    TPIO_CHECK(nodes > 0 && procs_per_node > 0,
               "topology sizes must be positive");
    TPIO_CHECK(rank_offset >= 0 && rank_offset < procs_per_node,
               "topology rank_offset must lie within the first node");
    TPIO_CHECK(rank_offset == 0 || ranks > 0,
               "rank-offset topologies must carry an explicit rank count");
    TPIO_CHECK(ranks >= 0 && rank_offset + ranks <= nodes * procs_per_node,
               "topology rank count exceeds node capacity");
    TPIO_CHECK(ranks == 0 || rank_offset + ranks > (nodes - 1) * procs_per_node,
               "topology leaves a node empty (only the ends may be partial)");
  }

  int nprocs() const {
    validate();
    return ranks > 0 ? ranks : nodes * procs_per_node;
  }

  int node_of(int rank) const {
    TPIO_CHECK(rank >= 0 && rank < nprocs(), "rank outside topology");
    return (rank_offset + rank) / procs_per_node;
  }

  /// First rank living on `node` (ranks are contiguous per node).
  int node_first(int node) const {
    TPIO_CHECK(node >= 0 && node < nodes, "node outside topology");
    return std::max(0, node * procs_per_node - rank_offset);
  }

  /// One past the last rank living on `node`.
  int node_last(int node) const {
    TPIO_CHECK(node >= 0 && node < nodes, "node outside topology");
    return std::min(nprocs(), (node + 1) * procs_per_node - rank_offset);
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Smallest topology with `ppn` procs/node that holds `nprocs` ranks.
  static Topology fit(int nprocs, int ppn) {
    TPIO_CHECK(nprocs > 0 && ppn > 0, "topology sizes must be positive");
    return Topology{(nprocs + ppn - 1) / ppn, ppn, nprocs};
  }

  /// Rank-granular sub-view: the topology seen by `count` contiguous ranks
  /// of `world` starting at world rank `base`. Members keep their physical
  /// node slots, so the view may start and end mid-node. Pair the result
  /// with the base's node for fabric-view placement (world.node_of(base)).
  static Topology sub_view(const Topology& world, int base, int count) {
    TPIO_CHECK(count > 0 && base >= 0 && base + count <= world.nprocs(),
               "sub-view outside world topology");
    const int first_node = world.node_of(base);
    const int last_node = world.node_of(base + count - 1);
    Topology t;
    t.nodes = last_node - first_node + 1;
    t.procs_per_node = world.procs_per_node;
    t.ranks = count;
    t.rank_offset =
        (world.rank_offset + base) - first_node * world.procs_per_node;
    t.validate();
    return t;
  }
};

}  // namespace tpio::net
