#pragma once

#include "simbase/error.hpp"

namespace tpio::net {

/// Placement of MPI ranks onto cluster nodes (block mapping, the Open MPI
/// default of `--map-by core`): rank r lives on node r / procs_per_node.
/// The last node may be partially filled (`ranks` < nodes * procs_per_node).
struct Topology {
  int nodes = 1;
  int procs_per_node = 1;
  /// Actual rank count; 0 means "all nodes full".
  int ranks = 0;

  /// Central validity check. Aggregate initialization bypasses fit()'s
  /// argument checks, so every accessor funnels through here: malformed
  /// shapes (non-positive sizes, rank counts that would leave a node other
  /// than the last one empty or overflow the machine) fail on first use
  /// instead of corrupting downstream arithmetic (e.g. node_of dividing by
  /// zero, or a fabric built with zero NICs).
  void validate() const {
    TPIO_CHECK(nodes > 0 && procs_per_node > 0,
               "topology sizes must be positive");
    TPIO_CHECK(ranks >= 0 && ranks <= nodes * procs_per_node,
               "topology rank count exceeds node capacity");
    TPIO_CHECK(ranks == 0 || ranks > (nodes - 1) * procs_per_node,
               "topology leaves a node empty (only the last may be partial)");
  }

  int nprocs() const {
    validate();
    return ranks > 0 ? ranks : nodes * procs_per_node;
  }

  int node_of(int rank) const {
    TPIO_CHECK(rank >= 0 && rank < nprocs(), "rank outside topology");
    return rank / procs_per_node;
  }

  bool same_node(int a, int b) const { return node_of(a) == node_of(b); }

  /// Smallest topology with `ppn` procs/node that holds `nprocs` ranks.
  static Topology fit(int nprocs, int ppn) {
    TPIO_CHECK(nprocs > 0 && ppn > 0, "topology sizes must be positive");
    return Topology{(nprocs + ppn - 1) / ppn, ppn, nprocs};
  }
};

}  // namespace tpio::net
