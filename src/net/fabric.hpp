#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "net/topology.hpp"
#include "sched/timeline.hpp"
#include "simbase/rng.hpp"
#include "simbase/time.hpp"

namespace tpio::net {

/// LogGP-style fabric parameters.
///
/// CPU overheads (o_s, o_r) are charged to rank clocks by the MPI layer;
/// the fabric models only wire latency, serialization bandwidth, and
/// endpoint contention (one NIC per node, one channel per direction).
struct FabricParams {
  double inter_bw = 3.0e9;          // bytes/s, node <-> node
  double intra_bw = 8.0e9;          // bytes/s, shared-memory copies
  sim::Duration inter_latency = sim::microseconds(1.8);
  sim::Duration intra_latency = sim::microseconds(0.4);
  double noise_sigma = 0.0;         // service-time variability
  std::uint64_t noise_seed = 1;
};

/// Cluster interconnect model: a full-bisection fabric with contention at
/// the node endpoints. Each node has one NIC with independent transmit and
/// receive channels; intra-node traffic uses a per-node memory channel.
///
/// Incast — many ranks sending to one aggregator node — serializes on that
/// node's receive channel, which is the first-order contention effect in
/// the two-phase shuffle.
class Fabric {
 public:
  Fabric(const Topology& topo, const FabricParams& params);

  /// Tenant view over a shared parent fabric: presents a tenant-local
  /// topology (nodes renumbered from 0) while every reservation lands on
  /// the parent's per-node NIC/memory timelines at `node_offset + local
  /// node` — so co-scheduled tenants contend for the same endpoints. The
  /// view keeps its own byte/message counters (per-tenant interference
  /// accounting) and also feeds the parent's aggregate counters. A lone
  /// view at offset 0 over an idle parent of the same size is
  /// bit-identical to a standalone Fabric built with the parent's params.
  /// The parent must outlive the view.
  Fabric(Fabric& parent, const Topology& local_topo, int node_offset);

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  /// Model one message of `bytes` from `src` to `dst` departing no earlier
  /// than `depart`. Returns the arrival time of the last byte at the
  /// destination's memory. Must be called under the simulation baton.
  sim::Time transfer(int src, int dst, std::uint64_t bytes, sim::Time depart);

  /// Reserve transmit-side capacity only (e.g. a storage client pushing to
  /// a remote target when the storage fabric is shared with MPI traffic).
  sim::Time reserve_tx(int node, std::uint64_t bytes, sim::Time start);

  /// Arrival time of a small protocol/control message (RTS, CTS, acks):
  /// control traffic travels on its own virtual lane and does not queue
  /// behind bulk transfers.
  sim::Time transfer_control(int src, int dst, sim::Time depart) const;

  const Topology& topology() const { return topo_; }
  const FabricParams& params() const { return params_; }

  /// Serialization time of `bytes` on an inter-node link (no contention).
  sim::Duration wire_time(std::uint64_t bytes) const;

  /// Total bytes that crossed node boundaries (diagnostic).
  std::uint64_t inter_node_bytes() const { return inter_bytes_; }
  /// Number of bulk transfers that crossed node boundaries (diagnostic;
  /// the quantity the hierarchical shuffle exists to reduce).
  std::uint64_t inter_node_messages() const { return inter_msgs_; }
  /// Total bytes moved over intra-node memory channels (diagnostic).
  std::uint64_t intra_node_bytes() const { return intra_bytes_; }

  /// True when this fabric is a tenant view over a shared parent.
  bool is_view() const { return parent_ != nullptr; }
  /// First parent node this view maps onto (0 for standalone fabrics).
  int node_offset() const { return node_offset_; }

 private:
  // Timeline resolution: standalone fabrics own their per-node channels;
  // views borrow the parent's at a node offset.
  sim::Timeline& tx_chan(int global_node);
  sim::Timeline& rx_chan(int global_node);
  sim::Timeline& mem_chan(int global_node);

  Topology topo_;
  FabricParams params_;
  Fabric* parent_ = nullptr;
  int node_offset_ = 0;
  std::vector<std::unique_ptr<sim::NoiseModel>> noise_;  // one per timeline
  std::vector<sim::Timeline> nic_tx_, nic_rx_, mem_;     // per node
  std::uint64_t inter_bytes_ = 0;
  std::uint64_t inter_msgs_ = 0;
  std::uint64_t intra_bytes_ = 0;
};

}  // namespace tpio::net
