#include "net/fabric.hpp"

#include <string>

#include "simbase/error.hpp"

namespace tpio::net {

Fabric::Fabric(const Topology& topo, const FabricParams& params)
    : topo_(topo), params_(params) {
  topo.validate();
  TPIO_CHECK(params.inter_bw > 0 && params.intra_bw > 0,
             "fabric bandwidths must be positive");
  nic_tx_.reserve(static_cast<std::size_t>(topo.nodes));
  nic_rx_.reserve(static_cast<std::size_t>(topo.nodes));
  mem_.reserve(static_cast<std::size_t>(topo.nodes));
  for (int n = 0; n < topo.nodes; ++n) {
    nic_tx_.emplace_back("nic_tx[" + std::to_string(n) + "]");
    nic_rx_.emplace_back("nic_rx[" + std::to_string(n) + "]");
    mem_.emplace_back("mem[" + std::to_string(n) + "]");
  }
  if (params.noise_sigma > 0.0) {
    // One independent noise stream per timeline keeps schedules
    // deterministic regardless of traffic interleaving across nodes.
    for (int n = 0; n < topo.nodes; ++n) {
      auto mk = [&](std::uint64_t salt) {
        return std::make_unique<sim::NoiseModel>(
            params.noise_sigma,
            sim::Rng::derive_seed(params.noise_seed,
                                  static_cast<std::uint64_t>(n) * 4 + salt));
      };
      noise_.push_back(mk(0));
      nic_tx_[static_cast<std::size_t>(n)].set_noise(noise_.back().get());
      noise_.push_back(mk(1));
      nic_rx_[static_cast<std::size_t>(n)].set_noise(noise_.back().get());
      noise_.push_back(mk(2));
      mem_[static_cast<std::size_t>(n)].set_noise(noise_.back().get());
    }
  }
}

Fabric::Fabric(Fabric& parent, const Topology& local_topo, int node_offset)
    : topo_(local_topo),
      params_(parent.params_),
      parent_(&parent),
      node_offset_(node_offset) {
  TPIO_CHECK(!parent.is_view(), "fabric views cannot nest");
  local_topo.validate();
  TPIO_CHECK(node_offset >= 0, "fabric view: negative node offset");
  TPIO_CHECK(node_offset + local_topo.nodes <= parent.topo_.nodes,
             "fabric view: tenant nodes exceed the shared system");
}

sim::Timeline& Fabric::tx_chan(int global_node) {
  return (parent_ ? parent_->nic_tx_
                  : nic_tx_)[static_cast<std::size_t>(global_node)];
}

sim::Timeline& Fabric::rx_chan(int global_node) {
  return (parent_ ? parent_->nic_rx_
                  : nic_rx_)[static_cast<std::size_t>(global_node)];
}

sim::Timeline& Fabric::mem_chan(int global_node) {
  return (parent_ ? parent_->mem_ : mem_)[static_cast<std::size_t>(global_node)];
}

sim::Duration Fabric::wire_time(std::uint64_t bytes) const {
  return sim::transfer_time(bytes, params_.inter_bw);
}

sim::Time Fabric::transfer(int src, int dst, std::uint64_t bytes,
                           sim::Time depart) {
  const int sn = topo_.node_of(src);
  const int dn = topo_.node_of(dst);
  if (sn == dn) {
    // Intra-node: a copy through the node's memory system.
    intra_bytes_ += bytes;
    if (parent_) parent_->intra_bytes_ += bytes;
    const sim::Duration t = sim::transfer_time(bytes, params_.intra_bw);
    auto iv = mem_chan(sn + node_offset_).reserve(depart, t);
    return iv.start + params_.intra_latency + (iv.end - iv.start);
  }
  // Inter-node, cut-through: the message occupies the source transmit
  // channel for its serialization time; after the wire latency the same
  // stream occupies the destination receive channel. Contention at either
  // endpoint delays it.
  inter_bytes_ += bytes;
  inter_msgs_ += 1;
  if (parent_) {
    parent_->inter_bytes_ += bytes;
    parent_->inter_msgs_ += 1;
  }
  const sim::Duration t = sim::transfer_time(bytes, params_.inter_bw);
  auto tx = tx_chan(sn + node_offset_).reserve(depart, t);
  auto rx = rx_chan(dn + node_offset_)
                .reserve(tx.start + params_.inter_latency, tx.end - tx.start);
  return rx.end;
}

sim::Time Fabric::transfer_control(int src, int dst, sim::Time depart) const {
  const bool same = topo_.node_of(src) == topo_.node_of(dst);
  return depart + (same ? params_.intra_latency : params_.inter_latency);
}

sim::Time Fabric::reserve_tx(int node, std::uint64_t bytes, sim::Time start) {
  TPIO_CHECK(node >= 0 && node < topo_.nodes, "reserve_tx: bad node");
  const sim::Duration t = sim::transfer_time(bytes, params_.inter_bw);
  return tx_chan(node + node_offset_).reserve(start, t).end;
}

}  // namespace tpio::net
