#include "workloads/workloads.hpp"

#include <cmath>

#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace tpio::wl {

const char* to_string(Kind k) {
  switch (k) {
    case Kind::Ior: return "IOR";
    case Kind::Tile256: return "Tile I/O 256";
    case Kind::Tile1M: return "Tile I/O 1M";
    case Kind::Flash: return "Flash I/O";
  }
  return "?";
}

std::pair<int, int> grid_dims(int P) {
  TPIO_CHECK(P > 0, "grid_dims of non-positive process count");
  int gx = static_cast<int>(std::sqrt(static_cast<double>(P)));
  while (gx > 1 && P % gx != 0) --gx;
  return {gx, P / gx};
}

std::byte expected_byte(std::uint64_t offset) {
  // Non-periodic in offset; see pfs tests for why the o/977 term matters.
  return static_cast<std::byte>((offset * 131 + offset / 977 + 5) & 0xFF);
}

void fill_into(const coll::FileView& view, std::span<std::byte> data) {
  TPIO_CHECK(data.size() == view.total_bytes(),
             "fill_into buffer size does not match the view");
  std::size_t pos = 0;
  for (const coll::Extent& e : view.extents) {
    // Incremental form of expected_byte(): one division per extent instead
    // of one per byte (this fill dominates large benchmark runs otherwise).
    std::uint64_t mul = e.offset * 131;
    std::uint64_t div = e.offset / 977;
    std::uint64_t rem = e.offset % 977;
    for (std::uint64_t i = 0; i < e.length; ++i) {
      data[pos++] = static_cast<std::byte>((mul + div + 5) & 0xFF);
      mul += 131;
      if (++rem == 977) {
        rem = 0;
        ++div;
      }
    }
  }
}

std::vector<std::byte> fill_local(const coll::FileView& view) {
  std::vector<std::byte> data(view.total_bytes());
  fill_into(view, data);
  return data;
}

std::uint64_t Spec::bytes_per_proc() const {
  switch (kind) {
    case Kind::Ior:
      return ior_block;
    case Kind::Tile256:
    case Kind::Tile1M:
      return elem_bytes * static_cast<std::uint64_t>(elems_x) *
             static_cast<std::uint64_t>(elems_y);
    case Kind::Flash:
      return static_cast<std::uint64_t>(nvars) *
             static_cast<std::uint64_t>(blocks_per_proc) * block_bytes;
  }
  return 0;
}

coll::FileView Spec::view(int rank, int P) const {
  TPIO_CHECK(rank >= 0 && rank < P, "workload rank out of range");
  coll::FileView v;
  switch (kind) {
    case Kind::Ior: {
      // transfer size == block size, segment count 1 (paper IV-1): each
      // process owns one contiguous block.
      v.extents.push_back(coll::Extent{
          static_cast<std::uint64_t>(rank) * ior_block, ior_block});
      break;
    }
    case Kind::Tile256:
    case Kind::Tile1M: {
      // gx*gy tile grid over a row-major global element array. The tile of
      // `rank` starts at tile coordinates (tx, ty); each of its elems_y
      // rows is one contiguous extent of elems_x elements.
      const auto [gx, gy] = grid_dims(P);
      (void)gy;
      const int tx = rank % gx;
      const int ty = rank / gx;
      const std::uint64_t row_bytes =
          static_cast<std::uint64_t>(gx) * static_cast<std::uint64_t>(elems_x) *
          elem_bytes;
      for (int iy = 0; iy < elems_y; ++iy) {
        const std::uint64_t global_row =
            static_cast<std::uint64_t>(ty) * static_cast<std::uint64_t>(elems_y) +
            static_cast<std::uint64_t>(iy);
        const std::uint64_t off =
            global_row * row_bytes +
            static_cast<std::uint64_t>(tx) *
                static_cast<std::uint64_t>(elems_x) * elem_bytes;
        v.extents.push_back(coll::Extent{
            off, static_cast<std::uint64_t>(elems_x) * elem_bytes});
      }
      break;
    }
    case Kind::Flash: {
      // Checkpoint layout: variable-major; within a variable, processes'
      // block slabs are laid out by rank. One extent per variable.
      const std::uint64_t slab =
          static_cast<std::uint64_t>(blocks_per_proc) * block_bytes;
      const std::uint64_t var_bytes = slab * static_cast<std::uint64_t>(P);
      for (int var = 0; var < nvars; ++var) {
        v.extents.push_back(coll::Extent{
            static_cast<std::uint64_t>(var) * var_bytes +
                static_cast<std::uint64_t>(rank) * slab,
            slab});
      }
      break;
    }
  }
  return v;
}

std::string Spec::describe() const {
  std::string s = to_string(kind);
  switch (kind) {
    case Kind::Ior:
      s += " block=" + sim::format_bytes(ior_block);
      break;
    case Kind::Tile256:
    case Kind::Tile1M:
      s += " elem=" + sim::format_bytes(elem_bytes) + " " +
           std::to_string(elems_x) + "x" + std::to_string(elems_y) +
           "/proc";
      break;
    case Kind::Flash:
      s += " vars=" + std::to_string(nvars) +
           " blocks=" + std::to_string(blocks_per_proc) + "x" +
           sim::format_bytes(block_bytes);
      break;
  }
  s += " (" + sim::format_bytes(bytes_per_proc()) + "/proc)";
  return s;
}

Spec make_ior(std::uint64_t block_bytes) {
  Spec s;
  s.kind = Kind::Ior;
  s.ior_block = block_bytes;
  return s;
}

Spec make_tile256(int elems_x, int elems_y) {
  Spec s;
  s.kind = Kind::Tile256;
  s.elem_bytes = 256;
  s.elems_x = elems_x;
  s.elems_y = elems_y;
  return s;
}

Spec make_tile1m(int elems_x, int elems_y) {
  Spec s;
  s.kind = Kind::Tile1M;
  s.elem_bytes = sim::MiB;
  s.elems_x = elems_x;
  s.elems_y = elems_y;
  return s;
}

Spec make_flash(int nvars, int blocks_per_proc, std::uint64_t block_bytes) {
  Spec s;
  s.kind = Kind::Flash;
  s.nvars = nvars;
  s.blocks_per_proc = blocks_per_proc;
  s.block_bytes = block_bytes;
  return s;
}

}  // namespace tpio::wl
