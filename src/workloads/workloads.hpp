#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace tpio::wl {

/// The benchmark family a workload mimics (section IV of the paper).
enum class Kind {
  Ior,      // 1-D contiguous block per process (transfer = block size)
  Tile256,  // 2-D dense tiles, 256-byte elements (many tiny segments)
  Tile1M,   // 2-D dense tiles, 1 MiB elements (large segments)
  Flash,    // FLASH checkpoint: variable-major blocked layout
};

const char* to_string(Kind k);

/// A scalable description of one benchmark workload. Geometry parameters
/// are scaled-down versions of the paper's (absolute sizes shrink, access
/// *pattern* — segment counts, interleaving, stride structure — is kept).
struct Spec {
  Kind kind = Kind::Ior;

  // IOR: one contiguous block of `ior_block` bytes per process.
  std::uint64_t ior_block = 0;

  // Tile I/O: gx*gy process grid (derived from P), each process owns a
  // tile of elems_x * elems_y elements of elem_bytes each; the global
  // array is row-major over elements.
  std::uint64_t elem_bytes = 0;
  int elems_x = 0;
  int elems_y = 0;

  // FLASH: nvars variables; per variable each process contributes
  // blocks_per_proc * block_bytes contiguously (variable-major file).
  int nvars = 0;
  int blocks_per_proc = 0;
  std::uint64_t block_bytes = 0;

  /// This rank's file view for a P-process job.
  coll::FileView view(int rank, int P) const;

  /// Bytes contributed by one process.
  std::uint64_t bytes_per_proc() const;

  std::string describe() const;
};

/// Paper-shaped presets, scaled by `scale` in (0, 1] relative to the
/// published geometry (scale 1 reproduces the paper's sizes; benches use
/// ~1/64 to keep simulation memory and time in check).
Spec make_ior(std::uint64_t block_bytes);
Spec make_tile256(int elems_x, int elems_y);
Spec make_tile1m(int elems_x, int elems_y);
Spec make_flash(int nvars, int blocks_per_proc, std::uint64_t block_bytes);

/// Process-grid factorization for tile workloads: the most square gx*gy
/// with gx*gy == P (gx <= gy). Perfect squares give gx == gy == sqrt(P),
/// matching the paper's setup.
std::pair<int, int> grid_dims(int P);

/// Deterministic expected content of the output file at `offset` — the
/// global ground truth every workload's data is generated from, so any
/// shuffle/placement error is detectable at verification.
std::byte expected_byte(std::uint64_t offset);

/// Materialize the local send buffer for `view` (extent bytes in order).
std::vector<std::byte> fill_local(const coll::FileView& view);

/// Same pattern written into caller-provided storage of exactly
/// view.total_bytes() — lets the harness reuse pooled buffers instead of
/// allocating a fresh vector per (rank, run).
void fill_into(const coll::FileView& view, std::span<std::byte> data);

}  // namespace tpio::wl
