#pragma once

// Runtime overlap-scheduler selection (OverlapMode::Auto).
//
// The paper's central practical finding is that no fixed overlap algorithm
// wins everywhere: async-write variants take most series, no-overlap still
// wins where aio_write is pathological (Lustre, section V), and the winner
// tracks the platform's communication/IO time share (section IV-A). This
// module turns that analysis into a runtime policy: the engine executes the
// first K cycles as blocking probes, reduces the measured per-cycle costs
// job-wide, and decide() maps them onto one of the five fixed schedulers.
// A persistent JSON tuning cache keyed by platform signature x workload
// shape x procs lets later opens of the same configuration skip the probes.
//
// Probes run through the same resilient write path as every scheduler
// (retries, backoff, give-ups — see Options::max_retries), so Auto
// composes with fault injection; probe costs include any retry time the
// fault scenario charged, which is exactly what the decision should see.

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "net/topology.hpp"
#include "pfs/pfs.hpp"

namespace tpio::smpi {
struct MpiParams;
}

namespace tpio::net {
struct FabricParams;
}

namespace tpio::coll {

class Plan;

/// Per-cycle probe costs in virtual nanoseconds, max-reduced over the job
/// so every rank feeds decide() the same numbers. Shuffle cost is the
/// job-wide bottleneck (any rank); write costs come from the bottleneck
/// aggregator (non-aggregators report zero and drop out of the max).
struct ProbeStats {
  double shuffle_ns = 0.0;      // blocking shuffle + its metadata sync
  double write_block_ns = 0.0;  // blocking write service
  double write_async_ns = 0.0;  // async write, init + immediate wait
  bool has_async = false;       // at least one async probe ran
};

/// Thresholds of the decision model; defaults live in coll::Options
/// (auto_* knobs) and are calibrated on the quick Table I grid.
struct AutoPolicy {
  /// Async writes are rejected when their per-cycle floor (aio_ratio *
  /// blocking write) exceeds the blocking pipeline's floor
  /// max(shuffle, blocking write) by more than this fraction — the Lustre
  /// guard of the paper's section V. The default absorbs the platforms'
  /// aio jitter (sigma <= 0.08) without tripping on healthy aio.
  double aio_margin = 0.15;
  /// Bad-aio regime: minimum comm share for Comm to beat NoOverlap.
  double comm_floor = 0.10;
  /// Good-aio regime: below this comm share the plain Write scheduler is
  /// chosen (a non-blocking shuffle has nothing to hide behind).
  double write_only_ceiling = 0.04;
  /// Good-aio regime: at/above this comm share the joint-wait scheduler
  /// (WriteComm) is preferred. Defaults out of range — WriteComm2's
  /// data-flow ordering dominates it on every measured grid — but kept as
  /// a knob so every switch target stays reachable.
  double joint_wait_floor = 2.0;

  static AutoPolicy from(const Options& o) {
    return AutoPolicy{o.auto_aio_margin, o.auto_comm_floor,
                      o.auto_write_only_ceiling, o.auto_joint_wait_floor};
  }
};

/// Shuffle share of a probed cycle: shuffle / (shuffle + blocking write).
double probe_comm_share(const ProbeStats& s);
/// Async-write quality: async / blocking per-cycle cost (1 = free aio).
/// Falls back to 1 when no async probe ran.
double probe_aio_ratio(const ProbeStats& s);

/// Map probe statistics onto a fixed scheduler. Pure and deterministic:
/// identical inputs give identical outputs on every rank.
OverlapMode decide(const ProbeStats& s, const AutoPolicy& p);

/// Sub-communicator counts worth probing for one geometry: powers of two
/// in [1, min(nodes, num_targets, 8)]. Splitting only helps when there is
/// something to split over — multiple nodes (smaller collectives) and
/// multiple storage targets (subfiles on disjoint stripe sets) — so a
/// single-node or single-target system probes nothing but the shared file.
std::vector<int> sub_comm_candidates(const net::Topology& topo,
                                     int num_targets);

/// Pick a sub-communicator count (Options::sub_comm_count) from probed
/// makespans, one per candidate k (sub_comm_candidates order; candidates
/// not probed may be omitted from the tail). Pure and deterministic: a
/// doubling search that accepts a larger k only while it improves the
/// previously accepted probe by at least `min_gain` (fractional, see
/// Options::auto_subfile_floor) and stops at the first non-improvement —
/// whether splitting pays is a property of the whole platform (per-request
/// storage overheads, stream limits, fabric speed), which one shared-file
/// cycle cannot reveal but two cheap probe runs measure directly.
int decide_sub_comm_count(const std::vector<double>& probe_ms,
                          double min_gain);

/// Hardware fingerprint of the simulated platform, built from the knobs
/// that shape the comm/IO balance. Deliberately excludes per-run noise
/// seeds and the jittered aio penalty so repeated measurements of one
/// machine share a cache entry.
std::string platform_signature(const net::Topology& topo,
                               const net::FabricParams& fabric,
                               const smpi::MpiParams& mpi,
                               const pfs::PfsParams& pfs);

/// Shape fingerprint of one collective write (ranks, volume, buffer
/// budget, primitive) — together with the platform signature the
/// tuning-cache key. Deliberately geometry-independent (no cycle counts
/// or sub-buffer sizes): a warm start replans with the chosen scheduler's
/// native geometry, so the key must agree between the Auto plan that
/// stored the decision and the fixed-mode plan that consumes it.
std::string workload_signature(int nprocs, std::uint64_t global_bytes,
                               const Options& opt);
std::string workload_signature(const Plan& plan, const Options& opt);

/// Persistent JSON map of signature -> chosen scheduler. All accessors are
/// safe against concurrent use from parallel sweep workers in this process
/// (a global mutex serializes them) and store() re-reads and merges before
/// the atomic tmp+rename write, so concurrent writers of *different* keys
/// never lose entries.
class TuningCache {
 public:
  /// True + `out` when `key` is present in the cache file at `path`.
  /// A missing or malformed file is simply a miss.
  static bool lookup(const std::string& path, const std::string& key,
                     OverlapMode& out);
  /// Insert/overwrite `key` and persist atomically (tmp + rename).
  static void store(const std::string& path, const std::string& key,
                    OverlapMode mode);
};

}  // namespace tpio::coll
