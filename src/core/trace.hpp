#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "simbase/time.hpp"

namespace tpio::coll {

/// One engine phase execution on one rank.
struct TraceEvent {
  const char* name;   // "shuffle_init", "write_wait", ...
  int cycle;          // internal cycle, -1 if not applicable
  sim::Time begin;
  sim::Time end;
};

/// Per-rank recording of collective-I/O phases, exportable in the Chrome
/// tracing JSON format (chrome://tracing, Perfetto): ranks appear as
/// threads, phases as duration events on the virtual timeline. Attach one
/// Trace per rank via Options::trace to see exactly how a scheduler
/// pipelines shuffles against file accesses.
class Trace {
 public:
  void add(const char* name, int cycle, sim::Time begin, sim::Time end) {
    events_.push_back(TraceEvent{name, cycle, begin, end});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }

  /// JSON array elements for this rank (tid = rank), without brackets.
  std::string chrome_events(int rank) const;

  /// A complete chrome://tracing document for a set of ranks' traces.
  static std::string chrome_document(std::span<const Trace> per_rank);

 private:
  std::vector<TraceEvent> events_;
};

/// RAII recorder used by the engines; no-op when trace == nullptr.
class ScopedTraceEvent {
 public:
  ScopedTraceEvent(Trace* t, const char* name, int cycle, sim::Time begin)
      : trace_(t), name_(name), cycle_(cycle), begin_(begin) {}
  void finish(sim::Time end) {
    if (trace_ != nullptr) trace_->add(name_, cycle_, begin_, end);
    trace_ = nullptr;
  }

 private:
  Trace* trace_;
  const char* name_;
  int cycle_;
  sim::Time begin_;
};

}  // namespace tpio::coll
