#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "net/topology.hpp"

namespace tpio::coll {

/// One piece of a rank's data destined for (a cycle of) a file domain.
struct Segment {
  std::uint64_t file_offset = 0;   // absolute offset in the file
  std::uint64_t local_offset = 0;  // offset into the rank's local buffer
  std::uint64_t length = 0;
};

/// The distribution plan of one collective write, identical on every rank
/// (derived deterministically from the exchanged views). Owns no payload.
class Plan {
 public:
  /// `views[r]` is rank r's file view; `topo` maps ranks to nodes.
  Plan(std::vector<FileView> views, const net::Topology& topo,
       std::uint64_t stripe_size, const Options& opt);

  int num_aggregators() const { return static_cast<int>(domains_.size()); }
  int num_cycles() const { return num_cycles_; }
  std::uint64_t sub_buffer_bytes() const { return sub_buffer_; }
  std::uint64_t global_bytes() const { return global_bytes_; }
  std::uint64_t range_begin() const { return range_begin_; }
  std::uint64_t range_end() const { return range_end_; }

  bool is_aggregator(int rank) const;
  /// Index into domains for an aggregator rank (-1 otherwise).
  int agg_index(int rank) const;
  /// The rank serving aggregator index `a`.
  int agg_rank(int a) const { return agg_ranks_[static_cast<std::size_t>(a)]; }

  struct Range {
    std::uint64_t begin = 0, end = 0;
    std::uint64_t size() const { return end - begin; }
  };
  /// File-domain of aggregator `a` (may be empty).
  Range domain(int a) const { return domains_[static_cast<std::size_t>(a)]; }
  /// The slice of domain `a` processed in cycle `c`.
  Range cycle_range(int a, int c) const;

  /// Segments of rank `r`'s view that fall in [lo, hi), with local offsets.
  std::vector<Segment> segments_in(int r, std::uint64_t lo,
                                   std::uint64_t hi) const;
  /// Total bytes of rank `r`'s view inside [lo, hi) (cheaper than
  /// materializing the segments).
  std::uint64_t bytes_in(int r, std::uint64_t lo, std::uint64_t hi) const;

  // ----- two-level (hierarchical) routing ---------------------------------
  /// Whether this plan was built with Options::hierarchical.
  bool hierarchical() const { return hierarchical_; }
  const net::Topology& topology() const { return topo_; }
  /// The rank elected leader of `node` (per Options::leader_policy).
  int leader_rank(int node) const {
    return leader_by_node_[static_cast<std::size_t>(node)];
  }
  /// The leader of `rank`'s node.
  int leader_of(int rank) const { return leader_rank(topo_.node_of(rank)); }
  bool is_leader(int rank) const { return leader_of(rank) == rank; }
  /// Half-open rank interval [first, last) living on `node` (block
  /// mapping; the last node may be partially filled).
  std::pair<int, int> node_rank_range(int node) const;
  /// Union of the node's members' segments inside [lo, hi): coalesced
  /// (touching/overlapping pieces merged), ordered by file offset, with
  /// `local_offset` re-purposed as the position inside the node's merged
  /// message. Single-member nodes return segments_in(member) verbatim so
  /// the hierarchical path degenerates to the direct one exactly.
  std::vector<Segment> node_segments_in(int node, std::uint64_t lo,
                                        std::uint64_t hi) const;
  /// Bytes of the merged node message for [lo, hi) (coalesced size).
  std::uint64_t node_bytes_in(int node, std::uint64_t lo,
                              std::uint64_t hi) const;

  const FileView& view(int r) const {
    return views_[static_cast<std::size_t>(r)];
  }

 private:
  std::vector<FileView> views_;
  net::Topology topo_;
  bool hierarchical_ = false;
  std::vector<int> leader_by_node_;  // per node
  std::vector<std::vector<std::uint64_t>> local_prefix_;  // per rank, per extent
  std::vector<Range> domains_;   // per aggregator index
  std::vector<int> agg_ranks_;   // per aggregator index
  std::vector<int> agg_index_of_rank_;
  std::uint64_t range_begin_ = 0;
  std::uint64_t range_end_ = 0;
  std::uint64_t global_bytes_ = 0;
  std::uint64_t sub_buffer_ = 0;
  int num_cycles_ = 0;
};

/// Automatic aggregator-count selection (approximation of Chaarawi &
/// Gabriel's runtime algorithm, ref [5]): enough aggregators that each has
/// work, at most one per node by default.
int auto_aggregator_count(std::uint64_t total_bytes, std::uint64_t cb_size,
                          const net::Topology& topo);

}  // namespace tpio::coll
