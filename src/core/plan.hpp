#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "core/types.hpp"
#include "net/topology.hpp"

namespace tpio::coll {

/// One piece of a rank's data destined for (a cycle of) a file domain.
struct Segment {
  std::uint64_t file_offset = 0;   // absolute offset in the file
  std::uint64_t local_offset = 0;  // offset into the rank's local buffer
  std::uint64_t length = 0;
};

/// Everything about a collective write's geometry that is derivable from
/// the per-rank ViewSummary table alone: file range, global volume,
/// aggregator placement, file domains, leader election, cycle count. Built
/// once per (summary table, topology, options) and shared across ranks via
/// shared_ptr — per-rank copies of the O(P) placement arrays would put the
/// O(P²) aggregate memory the two-stage exchange removes right back.
class PlanSkeleton {
 public:
  PlanSkeleton(std::span<const ViewSummary> summaries,
               const net::Topology& topo, std::uint64_t stripe_size,
               const Options& opt);

  int num_aggregators() const { return static_cast<int>(domains_.size()); }
  int num_cycles() const { return num_cycles_; }
  std::uint64_t sub_buffer_bytes() const { return sub_buffer_; }
  std::uint64_t global_bytes() const { return global_bytes_; }
  std::uint64_t range_begin() const { return range_begin_; }
  std::uint64_t range_end() const { return range_end_; }

  bool is_aggregator(int rank) const {
    return agg_index_of_rank_[static_cast<std::size_t>(rank)] >= 0;
  }
  int agg_index(int rank) const {
    return agg_index_of_rank_[static_cast<std::size_t>(rank)];
  }
  int agg_rank(int a) const { return agg_ranks_[static_cast<std::size_t>(a)]; }

  struct Range {
    std::uint64_t begin = 0, end = 0;
    std::uint64_t size() const { return end - begin; }
  };
  Range domain(int a) const { return domains_[static_cast<std::size_t>(a)]; }
  Range cycle_range(int a, int c) const;

  bool hierarchical() const { return hierarchical_; }
  const net::Topology& topology() const { return topo_; }
  int leader_rank(int node) const {
    return leader_by_node_[static_cast<std::size_t>(node)];
  }
  /// Lane leader of `rank`'s own lane (== leader_rank(node) at co = 1).
  int leader_of(int rank) const {
    const int node = topo_.node_of(rank);
    return lane_leader(node, lane_of(rank));
  }
  bool is_leader(int rank) const { return leader_of(rank) == rank; }
  std::pair<int, int> node_rank_range(int node) const;

  // ----- lane geometry (Options::local_aggregators, Kang et al.'s co) -----
  /// The requested co (>= 1); per-node lane counts are clamped to the
  /// node's member count.
  int local_aggregators() const { return local_aggs_; }
  /// Lanes on `node`: min(co, members). 1 at co = 1.
  int lanes(int node) const {
    return static_cast<int>(lane_leaders_[static_cast<std::size_t>(node)].size());
  }
  /// The rank elected leader of lane `lane` on `node`.
  int lane_leader(int node, int lane) const {
    return lane_leaders_[static_cast<std::size_t>(node)]
                        [static_cast<std::size_t>(lane)];
  }
  /// Half-open rank interval [first, last) of lane `lane` on `node`.
  /// Lanes are contiguous, non-empty, and partition the node's members;
  /// each lane's leader lives inside its own lane.
  std::pair<int, int> lane_rank_range(int node, int lane) const;
  /// Index of the lane containing `rank` within its node.
  int lane_of(int rank) const;

 private:
  net::Topology topo_;
  bool hierarchical_ = false;
  int local_aggs_ = 1;
  std::vector<int> leader_by_node_;  // per node: lane 0's leader
  std::vector<std::vector<int>> lane_leaders_;  // per node, per lane
  std::vector<std::vector<int>> lane_bounds_;   // per node: lanes+1 boundaries
  std::vector<Range> domains_;       // per aggregator index
  std::vector<int> agg_ranks_;       // per aggregator index
  std::vector<int> agg_index_of_rank_;
  std::uint64_t range_begin_ = 0;
  std::uint64_t range_end_ = 0;
  std::uint64_t global_bytes_ = 0;
  std::uint64_t sub_buffer_ = 0;
  int num_cycles_ = 0;
};

/// The distribution plan of one collective write: a shared geometry
/// skeleton plus the full views this rank actually holds. On the sparse
/// metadata path a plain sender holds only its own view, a node leader its
/// node's views, an aggregator all of them; the dense path (and the legacy
/// constructor) holds every view. Geometry queries are answered by the
/// skeleton and are identical on every rank regardless of which views it
/// holds; view queries (segments_in, view, ...) require the view to be
/// held and fail loudly otherwise. Owns no payload.
class Plan {
 public:
  /// Legacy dense construction: `views[r]` is rank r's file view. Builds
  /// the skeleton from the views' own summaries — bit-identical geometry
  /// to the two-stage path by construction — and holds every view.
  Plan(std::vector<FileView> views, const net::Topology& topo,
       std::uint64_t stripe_size, const Options& opt);

  /// Partial construction from a shared skeleton plus the (rank, view)
  /// pairs delivered to this rank, ascending by rank.
  Plan(std::shared_ptr<const PlanSkeleton> skeleton,
       std::vector<std::pair<int, FileView>> held);

  int num_aggregators() const { return skel_->num_aggregators(); }
  int num_cycles() const { return skel_->num_cycles(); }
  std::uint64_t sub_buffer_bytes() const { return skel_->sub_buffer_bytes(); }
  std::uint64_t global_bytes() const { return skel_->global_bytes(); }
  std::uint64_t range_begin() const { return skel_->range_begin(); }
  std::uint64_t range_end() const { return skel_->range_end(); }

  bool is_aggregator(int rank) const { return skel_->is_aggregator(rank); }
  /// Index into domains for an aggregator rank (-1 otherwise).
  int agg_index(int rank) const { return skel_->agg_index(rank); }
  /// The rank serving aggregator index `a`.
  int agg_rank(int a) const { return skel_->agg_rank(a); }

  using Range = PlanSkeleton::Range;
  /// File-domain of aggregator `a` (may be empty).
  Range domain(int a) const { return skel_->domain(a); }
  /// The slice of domain `a` processed in cycle `c`.
  Range cycle_range(int a, int c) const { return skel_->cycle_range(a, c); }

  /// Segments of rank `r`'s view that fall in [lo, hi), with local offsets.
  /// Requires rank `r`'s view to be held.
  std::vector<Segment> segments_in(int r, std::uint64_t lo,
                                   std::uint64_t hi) const;
  /// Total bytes of rank `r`'s view inside [lo, hi) (cheaper than
  /// materializing the segments). Requires rank `r`'s view to be held.
  std::uint64_t bytes_in(int r, std::uint64_t lo, std::uint64_t hi) const;

  // ----- two-level (hierarchical) routing ---------------------------------
  /// Whether this plan was built with Options::hierarchical.
  bool hierarchical() const { return skel_->hierarchical(); }
  const net::Topology& topology() const { return skel_->topology(); }
  /// The rank elected leader of `node` (per Options::leader_policy).
  int leader_rank(int node) const { return skel_->leader_rank(node); }
  /// The leader of `rank`'s node.
  int leader_of(int rank) const { return skel_->leader_of(rank); }
  bool is_leader(int rank) const { return skel_->is_leader(rank); }
  /// Half-open rank interval [first, last) living on `node` (block
  /// mapping; the last node may be partially filled).
  std::pair<int, int> node_rank_range(int node) const {
    return skel_->node_rank_range(node);
  }
  /// Union of the node's members' segments inside [lo, hi): coalesced
  /// (touching/overlapping pieces merged), ordered by file offset, with
  /// `local_offset` re-purposed as the position inside the node's merged
  /// message. Single-member nodes return segments_in(member) verbatim so
  /// the hierarchical path degenerates to the direct one exactly. Requires
  /// every member's view to be held.
  std::vector<Segment> node_segments_in(int node, std::uint64_t lo,
                                        std::uint64_t hi) const;
  /// Bytes of the merged node message for [lo, hi) (coalesced size).
  std::uint64_t node_bytes_in(int node, std::uint64_t lo,
                              std::uint64_t hi) const;

  // ----- lanes (Options::local_aggregators > 1) ---------------------------
  /// Requested local aggregators per node (co); 1 = single-leader scheme.
  int local_aggregators() const { return skel_->local_aggregators(); }
  /// Lanes on `node` (min(co, members)).
  int lanes(int node) const { return skel_->lanes(node); }
  int lane_leader(int node, int lane) const {
    return skel_->lane_leader(node, lane);
  }
  std::pair<int, int> lane_rank_range(int node, int lane) const {
    return skel_->lane_rank_range(node, lane);
  }
  int lane_of(int rank) const { return skel_->lane_of(rank); }
  /// Union of the lane members' segments inside [lo, hi) — the merged
  /// message lane `lane`'s leader forwards; same coalescing and
  /// local_offset convention as node_segments_in. With one lane per node
  /// this is node_segments_in verbatim. Requires the lane members' views.
  std::vector<Segment> lane_segments_in(int node, int lane, std::uint64_t lo,
                                        std::uint64_t hi) const;
  /// Bytes of the merged lane message for [lo, hi).
  std::uint64_t lane_bytes_in(int node, int lane, std::uint64_t lo,
                              std::uint64_t hi) const;

  /// Rank `r`'s full view; requires it to be held on this rank.
  const FileView& view(int r) const {
    return views_[static_cast<std::size_t>(held_slot(r))];
  }
  /// Whether rank `r`'s full view was delivered to this rank.
  bool holds_view(int r) const;

  const PlanSkeleton& skeleton() const { return *skel_; }
  std::shared_ptr<const PlanSkeleton> skeleton_ptr() const { return skel_; }

 private:
  /// Coalesced union of ranks [first, last)'s segments in [lo, hi) — the
  /// shared core of node_segments_in / lane_segments_in.
  std::vector<Segment> merged_segments_in(int first, int last,
                                          std::uint64_t lo,
                                          std::uint64_t hi) const;
  /// Index into views_/prefix_ for a held rank; fails if not held.
  std::size_t held_slot(int r) const;
  void index_views();

  std::shared_ptr<const PlanSkeleton> skel_;
  std::vector<int> held_ranks_;   // ascending; == [0, P) on the dense path
  std::vector<FileView> views_;   // parallel to held_ranks_
  std::vector<std::vector<std::uint64_t>> prefix_;  // parallel, per extent
  bool dense_ = false;            // held_ranks_ is exactly [0, P)
};

/// Automatic aggregator-count selection (approximation of Chaarawi &
/// Gabriel's runtime algorithm, ref [5]): enough aggregators that each has
/// work, at most one per node by default.
int auto_aggregator_count(std::uint64_t total_bytes, std::uint64_t cb_size,
                          const net::Topology& topo);

}  // namespace tpio::coll
