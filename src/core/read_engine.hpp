#pragma once

#include <span>

#include "core/plan.hpp"
#include "core/types.hpp"
#include "mpi/mpi.hpp"
#include "pfs/pfs.hpp"
#include "simbase/bufpool.hpp"

namespace tpio::coll {

/// Two-phase collective read — the mirror of the write engine and the
/// extension direction the paper's related work highlights (view-based
/// collective read with read-ahead, Blas et al.).
///
/// Per internal cycle, the aggregator reads its file-domain slice into a
/// collective sub-buffer (file access phase) and scatters each rank's
/// pieces back through the fabric (shuffle phase). The write engine's
/// overlap modes map naturally:
///
///   None       — read, then scatter, strictly alternating.
///   Comm       — non-blocking scatter overlaps the next blocking read.
///   Write      — *read-ahead*: asynchronous read of cycle c+1 overlaps
///                the scatter of cycle c (the read-side analogue of
///                asynchronous writes).
///   WriteComm  — asynchronous read and non-blocking scatter, joint wait.
///   WriteComm2 — data-flow ordering of the above.
///
/// The scatter uses two-sided messages (single-segment destinations
/// receive in place; multi-segment destinations are packed/unpacked with
/// per-segment CPU cost, as in the write engine).
///
/// Resilience mirrors the write engine: transiently failed reads
/// (pfs::FaultParams::read_fail_rate) are re-issued after a deterministic
/// exponential backoff up to Options::max_retries times, then abandoned
/// with a give-up recorded in fault_stats()/io_error().
class ReadEngine {
 public:
  ReadEngine(smpi::Mpi& mpi, pfs::File& file, const Plan& plan,
             std::span<std::byte> local_out, const Options& opt,
             PhaseTimings& timings);

  void run();

  /// Retry/give-up counters of this rank (valid after run(); all zero on a
  /// fault-free run). degraded_cycles stays zero — degraded mode is a
  /// write-pipeline feature.
  const FaultStats& fault_stats() const { return faults_; }
  /// First give-up description, empty when every read eventually succeeded.
  const std::string& io_error() const { return io_error_; }

  // Individual phases (exposed for white-box tests).
  void read_init(int cycle, int slot);    // aggregator: async file read
  void read_wait(int slot);
  void read_blocking(int cycle, int slot);
  void scatter_init(int cycle, int slot); // agg sends, everyone receives
  void scatter_wait(int slot);
  void scatter_blocking(int cycle, int slot);

 private:
  /// One multi-segment receive from aggregator `agg`: either a pooled
  /// staging buffer that scatter_wait unpacks, or — when the destination
  /// segments form one contiguous local run — no buffer at all (the
  /// message landed directly in out_) with `segs` kept for the unpack-CPU
  /// accounting that must be charged either way.
  struct RecvStage {
    int agg = -1;
    sim::BufferPool::Buffer buf;  // empty: landed directly in out_
    std::vector<Segment> segs;
  };
  struct ScatterState {
    int cycle = -1;
    bool pending = false;
    std::vector<smpi::Request> reqs;
    std::vector<sim::BufferPool::Buffer> send_bufs;
    std::vector<RecvStage> recv_bufs;

    void clear() {
      reqs.clear();
      send_bufs.clear();
      recv_bufs.clear();
    }
  };
  struct Slot {
    sim::BufferPool::Buffer cb;
    pfs::WriteOp rd;
    int rd_cycle = -1;
    ScatterState sc;
  };

  int slot_of(int cycle) const {
    return opt_.overlap == OverlapMode::None ? 0 : cycle % 2;
  }
  sim::Duration pack_cost(std::size_t segs, std::uint64_t bytes) const;

  /// Backoff before re-issuing attempt `attempt + 1` (same pure-function
  /// schedule as the write engine, salted differently).
  sim::Duration backoff_delay(int cycle, int attempt) const;
  void retry_backoff(int cycle, int attempt);
  void give_up(int cycle);
  /// Bounded-retry blocking read of `r` into `slot`'s sub-buffer, starting
  /// the fault oracle's attempt numbering at `first` (continuation of a
  /// failed asynchronous attempt passes 2).
  void read_attempts(int cycle, int slot, const Plan::Range& r,
                     int first = 1);

  void run_none();
  void run_comm();
  void run_read_ahead();
  void run_read_comm();
  void run_read_comm2();

  smpi::Mpi& mpi_;
  pfs::File& file_;
  const Plan& plan_;
  std::span<std::byte> out_;
  Options opt_;
  PhaseTimings& t_;
  int my_agg_ = -1;
  int node_ = 0;
  FaultStats faults_;
  std::string io_error_;
  Slot slots_[2];
};

/// Collective read of this rank's `view` into `out` (extent bytes in
/// order), together with every other rank. Collective call.
Result collective_read(smpi::Mpi& mpi, pfs::File& file, const FileView& view,
                       std::span<std::byte> out, const Options& opt);

}  // namespace tpio::coll
