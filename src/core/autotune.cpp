#include "core/autotune.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <mutex>
#include <sstream>

#include "core/plan.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "simbase/error.hpp"

namespace tpio::coll {

double probe_comm_share(const ProbeStats& s) {
  const double denom = s.shuffle_ns + s.write_block_ns;
  return denom > 0.0 ? s.shuffle_ns / denom : 0.0;
}

double probe_aio_ratio(const ProbeStats& s) {
  if (!s.has_async || s.write_block_ns <= 0.0) return 1.0;
  return s.write_async_ns / s.write_block_ns;
}

OverlapMode decide(const ProbeStats& s, const AutoPolicy& p) {
  const double share = probe_comm_share(s);
  const double ratio = probe_aio_ratio(s);
  // aio guard: an async-write scheduler's steady-state cycle can never beat
  // max(shuffle, async write) — the penalised write is on its critical
  // path every cycle — while the blocking-write pipeline (Comm) floors at
  // max(shuffle, blocking write). When the async floor exceeds the
  // blocking floor by more than the margin (jitter allowance), async
  // writes are a net loss — the Lustre regime — and only the
  // blocking-write schedulers compete.
  const double blocking_floor = std::max(s.shuffle_ns, s.write_block_ns);
  const double async_floor = ratio * s.write_block_ns;
  if (async_floor > (1.0 + p.aio_margin) * blocking_floor) {
    return share >= p.comm_floor ? OverlapMode::Comm : OverlapMode::None;
  }
  if (share < p.write_only_ceiling) return OverlapMode::Write;
  if (share >= p.joint_wait_floor) return OverlapMode::WriteComm;
  return OverlapMode::WriteComm2;
}

std::vector<int> sub_comm_candidates(const net::Topology& topo,
                                     int num_targets) {
  const int cap = std::min({topo.nodes, num_targets, 8});
  std::vector<int> ks{1};
  for (int k = 2; k <= cap; k *= 2) ks.push_back(k);
  return ks;
}

int decide_sub_comm_count(const std::vector<double>& probe_ms,
                          double min_gain) {
  TPIO_CHECK(!probe_ms.empty(), "need at least the shared-file probe");
  TPIO_CHECK(min_gain >= 0.0, "subfile improvement floor must be >= 0");
  // Doubling search over the probed candidates: accept k=2 only when it
  // beats the shared file by the gain floor, k=4 only when it beats the
  // accepted k=2, and so on. The first non-improvement ends the search —
  // fragmentation costs grow monotonically with k, so there is nothing
  // past the first regression.
  int best = 0;
  for (std::size_t i = 1; i < probe_ms.size(); ++i) {
    TPIO_CHECK(probe_ms[i] > 0.0, "probe makespans must be positive");
    if (probe_ms[i] < (1.0 - min_gain) * probe_ms[static_cast<std::size_t>(best)]) {
      best = static_cast<int>(i);
    } else {
      break;
    }
  }
  return 1 << best;
}

namespace {

std::string num(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.12g", v);
  return buf;
}

}  // namespace

std::string platform_signature(const net::Topology& topo,
                               const net::FabricParams& fabric,
                               const smpi::MpiParams& mpi,
                               const pfs::PfsParams& pfs) {
  // Only knobs that shape the comm/IO balance; per-run noise seeds and the
  // (jittered) aio penalty stay out so reps of one machine share a key.
  std::string s = "n" + std::to_string(topo.nodes) + "x" +
                  std::to_string(topo.procs_per_node);
  s += "|net" + num(fabric.inter_bw) + "/" + num(fabric.intra_bw);
  s += "|eager" + std::to_string(mpi.eager_limit);
  s += "|tgt" + std::to_string(pfs.num_targets) + "x" + num(pfs.target_bw);
  s += "|stripe" + std::to_string(pfs.stripe_size);
  s += "|client" + num(pfs.client_bw);
  s += pfs.share_compute_nic ? "|shared-nic" : "|dedicated-nic";
  return s;
}

std::string workload_signature(int nprocs, std::uint64_t global_bytes,
                               const Options& opt) {
  std::string s = "P" + std::to_string(nprocs);
  s += "|b" + std::to_string(global_bytes);
  s += "|cb" + std::to_string(opt.cb_size);
  s += "|agg" + std::to_string(opt.num_aggregators);
  s += std::string("|ts=") + to_string(opt.transfer);
  if (opt.hierarchical) s += "|hier";
  return s;
}

std::string workload_signature(const Plan& plan, const Options& opt) {
  return workload_signature(plan.topology().nprocs(), plan.global_bytes(),
                            opt);
}

// ---------------------------------------------------------------------------
// Tuning cache
// ---------------------------------------------------------------------------

namespace {

/// Serializes every cache access in this process: parallel sweep workers
/// run one engine per thread and may consult the same file concurrently.
std::mutex& cache_mutex() {
  static std::mutex mu;
  return mu;
}

constexpr const char* kMagic = "tpio-tuning-cache";

/// Cursor over the cache JSON; each parse_* returns false on mismatch.
struct Cursor {
  const char* p;
  const char* end;

  void ws() {
    while (p != end && (*p == ' ' || *p == '\n' || *p == '\r' || *p == '\t')) {
      ++p;
    }
  }
  bool lit(char c) {
    ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
  bool str(std::string& out) {
    ws();
    if (p == end || *p != '"') return false;
    ++p;
    out.clear();
    while (p != end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p == end) return false;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p == end) return false;
    ++p;
    return true;
  }
};

void json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: out += c;
    }
  }
  out += '"';
}

bool mode_by_name(const std::string& name, OverlapMode& out) {
  for (OverlapMode m : {OverlapMode::None, OverlapMode::Comm,
                        OverlapMode::Write, OverlapMode::WriteComm,
                        OverlapMode::WriteComm2}) {
    if (name == to_string(m)) {
      out = m;
      return true;
    }
  }
  return false;
}

/// Load `path` into `out`; false when absent or not a cache file. Caller
/// holds the cache mutex.
bool load_entries(const std::string& path,
                  std::map<std::string, OverlapMode>& out) {
  out.clear();
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  Cursor c{text.data(), text.data() + text.size()};
  std::string key;
  double version = 0.0;
  if (!c.lit('{') || !c.str(key) || key != kMagic || !c.lit(':')) return false;
  {
    c.ws();
    char* after = nullptr;
    version = std::strtod(c.p, &after);
    if (after == c.p || version != 1.0) return false;
    c.p = after;
  }
  if (!c.lit(',') || !c.str(key) || key != "entries" || !c.lit(':') ||
      !c.lit('{')) {
    return false;
  }
  c.ws();
  if (c.p != c.end && *c.p == '}') {
    ++c.p;
  } else {
    for (;;) {
      std::string value;
      OverlapMode mode{};
      if (!c.str(key) || !c.lit(':') || !c.str(value) ||
          !mode_by_name(value, mode)) {
        out.clear();
        return false;
      }
      out[key] = mode;
      if (c.lit(',')) continue;
      if (c.lit('}')) break;
      out.clear();
      return false;
    }
  }
  return c.lit('}');
}

void save_entries(const std::string& path,
                  const std::map<std::string, OverlapMode>& entries) {
  std::string text = "{\n  ";
  json_string(text, kMagic);
  text += ": 1,\n  ";
  json_string(text, "entries");
  text += ": {";
  bool first = true;
  for (const auto& [key, mode] : entries) {
    text += first ? "\n    " : ",\n    ";
    first = false;
    json_string(text, key);
    text += ": ";
    json_string(text, to_string(mode));
  }
  text += first ? "}\n}\n" : "\n  }\n}\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TPIO_CHECK(static_cast<bool>(out), "cannot write tuning cache " + tmp);
    out << text;
  }
  TPIO_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot move tuning cache into place: " + path);
}

}  // namespace

bool TuningCache::lookup(const std::string& path, const std::string& key,
                         OverlapMode& out) {
  std::lock_guard lk(cache_mutex());
  std::map<std::string, OverlapMode> entries;
  if (!load_entries(path, entries)) return false;
  const auto it = entries.find(key);
  if (it == entries.end()) return false;
  out = it->second;
  return true;
}

void TuningCache::store(const std::string& path, const std::string& key,
                        OverlapMode mode) {
  std::lock_guard lk(cache_mutex());
  // Re-read + merge under the lock so concurrent store()s of different
  // keys (parallel sweep workers) never lose each other's entries.
  std::map<std::string, OverlapMode> entries;
  load_entries(path, entries);
  entries[key] = mode;
  save_entries(path, entries);
}

}  // namespace tpio::coll
