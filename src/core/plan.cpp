#include "core/plan.hpp"

#include <algorithm>

#include "simbase/error.hpp"

namespace tpio::coll {

int auto_aggregator_count(std::uint64_t total_bytes, std::uint64_t cb_size,
                          const net::Topology& topo) {
  TPIO_CHECK(cb_size > 0, "collective buffer size must be positive");
  // One aggregator can usefully absorb a few buffers' worth per cycle
  // sequence; cap at one aggregator per node (NIC incast is per node).
  const std::uint64_t by_volume = (total_bytes + cb_size - 1) / cb_size;
  const auto a = static_cast<int>(
      std::min<std::uint64_t>(by_volume, static_cast<std::uint64_t>(topo.nodes)));
  return std::clamp(a, 1, topo.nprocs());
}

PlanSkeleton::PlanSkeleton(std::span<const ViewSummary> summaries,
                           const net::Topology& topo,
                           std::uint64_t stripe_size, const Options& opt)
    : topo_(topo), hierarchical_(opt.hierarchical) {
  const int P = topo.nprocs();
  TPIO_CHECK(static_cast<int>(summaries.size()) == P,
             "one view summary per rank required");

  // Global range and volume. Empty views carry the identity summary
  // (first_offset = MAX, last_end = 0), so min/max skip them naturally.
  range_begin_ = UINT64_MAX;
  range_end_ = 0;
  for (const ViewSummary& s : summaries) {
    range_begin_ = std::min(range_begin_, s.first_offset);
    range_end_ = std::max(range_end_, s.last_end);
    global_bytes_ += s.total_bytes;
  }
  if (global_bytes_ == 0) {
    range_begin_ = range_end_ = 0;
  }

  // Aggregator count and placement: spread across nodes first, then within.
  int A = opt.num_aggregators > 0
              ? std::min(opt.num_aggregators, P)
              : auto_aggregator_count(global_bytes_, opt.cb_size, topo);
  A = std::max(A, 1);
  agg_ranks_.reserve(static_cast<std::size_t>(A));
  agg_index_of_rank_.assign(static_cast<std::size_t>(P), -1);
  for (int i = 0; i < A; ++i) {
    const int node = i % topo.nodes;
    const int slot = i / topo.nodes;
    const int rank = topo.node_first(node) + slot;
    TPIO_CHECK(rank < topo.node_last(node),
               "more aggregators than processes on a node");
    TPIO_CHECK(agg_index_of_rank_[static_cast<std::size_t>(rank)] == -1,
               "duplicate aggregator placement");
    agg_index_of_rank_[static_cast<std::size_t>(rank)] = i;
    agg_ranks_.push_back(rank);
  }

  // Even byte-range file domains over [range_begin, range_end), optionally
  // aligned to stripe boundaries so one target is written by one aggregator.
  const std::uint64_t range = range_end_ - range_begin_;
  std::uint64_t per = (range + static_cast<std::uint64_t>(A) - 1) /
                      static_cast<std::uint64_t>(A);
  if (opt.stripe_align && stripe_size > 0 && per > 0) {
    per = (per + stripe_size - 1) / stripe_size * stripe_size;
  }
  domains_.reserve(static_cast<std::size_t>(A));
  std::uint64_t begin = range_begin_;
  for (int i = 0; i < A; ++i) {
    const std::uint64_t end = std::min(range_end_, begin + per);
    domains_.push_back(Range{begin, std::max(begin, end)});
    begin = domains_.back().end;
  }

  // Stripe-aligned rounding can exhaust the range before the last
  // aggregators get any bytes. Domains fill front to back, so only a
  // trailing run can be empty: drop those aggregators entirely rather than
  // have them allocate buffers and windows, join barriers, and inflate the
  // reported aggregator count for zero bytes of I/O.
  while (!domains_.empty() && domains_.back().size() == 0) {
    agg_index_of_rank_[static_cast<std::size_t>(agg_ranks_.back())] = -1;
    agg_ranks_.pop_back();
    domains_.pop_back();
  }

  // Lane geometry and leader election for the two-level shuffle. Each
  // node's members split into L = min(local_aggregators, members)
  // contiguous lanes, each electing one leader per leader_policy. co = 1
  // gives one lane per node whose leader is exactly the historical
  // election (Lowest -> first, Spread -> last - 1), so the single-leader
  // path is unchanged. Computed for every plan (cheap, O(P) total) so
  // tests and tools can query lane geometry without opting into
  // hierarchical routing. Runs after the empty-domain trim above so the
  // Superset policy elects against the aggregators that actually survive.
  local_aggs_ = std::max(opt.local_aggregators, 1);
  leader_by_node_.reserve(static_cast<std::size_t>(topo.nodes));
  lane_leaders_.reserve(static_cast<std::size_t>(topo.nodes));
  lane_bounds_.reserve(static_cast<std::size_t>(topo.nodes));
  for (int n = 0; n < topo.nodes; ++n) {
    const auto [first, last] = node_rank_range(n);
    const int m = last - first;
    const int L = std::min(local_aggs_, m);
    std::vector<int> bounds(static_cast<std::size_t>(L) + 1);
    std::vector<int> leaders(static_cast<std::size_t>(L));
    bounds.front() = first;
    bounds.back() = last;
    if (opt.leader_policy == LeaderPolicy::Superset) {
      // Leaders sit on the node's global aggregators first (ascending), so
      // their forward hop is node-local; remaining slots fall back to the
      // Spread pick (even-block ends) to keep gather CPU off aggregators.
      std::vector<int> picks;
      for (int r = first; r < last && static_cast<int>(picks.size()) < L; ++r)
        if (is_aggregator(r)) picks.push_back(r);
      const auto picked = [&](int r) {
        return std::find(picks.begin(), picks.end(), r) != picks.end();
      };
      for (int j = L - 1; j >= 0 && static_cast<int>(picks.size()) < L; --j) {
        int cand = first + ((j + 1) * m) / L - 1;
        while (cand >= first && picked(cand)) --cand;
        if (cand >= first) picks.push_back(cand);
      }
      for (int r = first; r < last && static_cast<int>(picks.size()) < L; ++r)
        if (!picked(r)) picks.push_back(r);
      std::sort(picks.begin(), picks.end());
      // Lane boundaries near the even split, clamped so that leader j lands
      // inside lane j; the clamp range is non-empty because the picks are
      // strictly increasing, and it keeps the lanes non-empty and ordered.
      for (int j = 1; j < L; ++j) {
        bounds[static_cast<std::size_t>(j)] =
            std::clamp(first + (j * m) / L, picks[static_cast<std::size_t>(j) - 1] + 1,
                       picks[static_cast<std::size_t>(j)]);
      }
      leaders = std::move(picks);
    } else {
      for (int j = 1; j < L; ++j)
        bounds[static_cast<std::size_t>(j)] = first + (j * m) / L;
      for (int j = 0; j < L; ++j) {
        leaders[static_cast<std::size_t>(j)] =
            opt.leader_policy == LeaderPolicy::Spread
                ? bounds[static_cast<std::size_t>(j) + 1] - 1
                : bounds[static_cast<std::size_t>(j)];
      }
    }
    leader_by_node_.push_back(leaders.front());
    lane_leaders_.push_back(std::move(leaders));
    lane_bounds_.push_back(std::move(bounds));
  }

  // Cycle count: the largest domain processed `sub_buffer_` bytes at a time.
  // Overlap modes split the collective buffer in two (paper, section III-A).
  // Auto always takes the split geometry: the plan is fixed for the whole
  // operation, and two sub-buffers let any scheduler — including the
  // blocking baseline — take over at the probe/switch boundary without
  // reallocation.
  sub_buffer_ = opt.overlap == OverlapMode::None ? opt.cb_size
                                                 : opt.cb_size / 2;
  TPIO_CHECK(sub_buffer_ > 0, "collective buffer too small to split");
  std::uint64_t max_domain = 0;
  for (const Range& d : domains_) max_domain = std::max(max_domain, d.size());
  num_cycles_ = static_cast<int>((max_domain + sub_buffer_ - 1) / sub_buffer_);
}

PlanSkeleton::Range PlanSkeleton::cycle_range(int a, int c) const {
  const Range d = domains_[static_cast<std::size_t>(a)];
  const std::uint64_t lo =
      d.begin + static_cast<std::uint64_t>(c) * sub_buffer_;
  if (lo >= d.end) return Range{d.end, d.end};
  return Range{lo, std::min(d.end, lo + sub_buffer_)};
}

std::pair<int, int> PlanSkeleton::node_rank_range(int node) const {
  TPIO_CHECK(node >= 0 && node < topo_.nodes, "node outside topology");
  const int first = topo_.node_first(node);
  const int last = topo_.node_last(node);
  TPIO_CHECK(first < last, "empty node in topology");
  return {first, last};
}

std::pair<int, int> PlanSkeleton::lane_rank_range(int node, int lane) const {
  TPIO_CHECK(node >= 0 && node < topo_.nodes, "node outside topology");
  const auto& bounds = lane_bounds_[static_cast<std::size_t>(node)];
  TPIO_CHECK(lane >= 0 && lane + 1 < static_cast<int>(bounds.size()),
             "lane outside the node's lane count");
  return {bounds[static_cast<std::size_t>(lane)],
          bounds[static_cast<std::size_t>(lane) + 1]};
}

int PlanSkeleton::lane_of(int rank) const {
  const int node = topo_.node_of(rank);
  const auto& bounds = lane_bounds_[static_cast<std::size_t>(node)];
  auto it = std::upper_bound(bounds.begin(), bounds.end(), rank);
  TPIO_CHECK(it != bounds.begin() && it != bounds.end(),
             "rank outside its node's lane bounds");
  return static_cast<int>(it - bounds.begin()) - 1;
}

namespace {

std::vector<ViewSummary> summarize_all(const std::vector<FileView>& views) {
  std::vector<ViewSummary> out;
  out.reserve(views.size());
  for (const FileView& v : views) out.push_back(v.summarize());
  return out;
}

}  // namespace

Plan::Plan(std::vector<FileView> views, const net::Topology& topo,
           std::uint64_t stripe_size, const Options& opt) {
  const int P = topo.nprocs();
  TPIO_CHECK(static_cast<int>(views.size()) == P,
             "one view per rank required");
  for (const FileView& v : views) v.validate();
  skel_ = std::make_shared<const PlanSkeleton>(summarize_all(views), topo,
                                               stripe_size, opt);
  views_ = std::move(views);
  held_ranks_.reserve(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) held_ranks_.push_back(r);
  index_views();
}

Plan::Plan(std::shared_ptr<const PlanSkeleton> skeleton,
           std::vector<std::pair<int, FileView>> held)
    : skel_(std::move(skeleton)) {
  TPIO_CHECK(skel_ != nullptr, "partial plan requires a skeleton");
  held_ranks_.reserve(held.size());
  views_.reserve(held.size());
  int prev = -1;
  for (auto& [r, v] : held) {
    TPIO_CHECK(r > prev, "held views must be ascending by rank");
    TPIO_CHECK(r >= 0 && r < skel_->topology().nprocs(),
               "held view rank outside the job");
    v.validate();
    held_ranks_.push_back(r);
    views_.push_back(std::move(v));
    prev = r;
  }
  index_views();
}

void Plan::index_views() {
  dense_ = static_cast<int>(held_ranks_.size()) ==
               skel_->topology().nprocs() &&
           (held_ranks_.empty() || held_ranks_.front() == 0);
  prefix_.resize(views_.size());
  for (std::size_t i = 0; i < views_.size(); ++i) {
    std::uint64_t pos = 0;
    prefix_[i].clear();
    prefix_[i].reserve(views_[i].extents.size());
    for (const Extent& e : views_[i].extents) {
      prefix_[i].push_back(pos);
      pos += e.length;
    }
  }
}

bool Plan::holds_view(int r) const {
  if (dense_) return r >= 0 && r < static_cast<int>(held_ranks_.size());
  return std::binary_search(held_ranks_.begin(), held_ranks_.end(), r);
}

std::size_t Plan::held_slot(int r) const {
  if (dense_) {
    TPIO_CHECK(r >= 0 && r < static_cast<int>(held_ranks_.size()),
               "rank outside the job");
    return static_cast<std::size_t>(r);
  }
  auto it = std::lower_bound(held_ranks_.begin(), held_ranks_.end(), r);
  TPIO_CHECK(it != held_ranks_.end() && *it == r,
             "view queried for a rank whose view was not delivered here — "
             "widen the want interval or use dense_metadata");
  return static_cast<std::size_t>(it - held_ranks_.begin());
}

std::vector<Segment> Plan::segments_in(int r, std::uint64_t lo,
                                       std::uint64_t hi) const {
  std::vector<Segment> out;
  if (lo >= hi) return out;
  const std::size_t slot = held_slot(r);
  const auto& exts = views_[slot].extents;
  const auto& prefix = prefix_[slot];
  // First extent whose end is past lo.
  auto it = std::lower_bound(
      exts.begin(), exts.end(), lo,
      [](const Extent& e, std::uint64_t v) { return e.end() <= v; });
  for (; it != exts.end() && it->offset < hi; ++it) {
    const std::uint64_t s = std::max(it->offset, lo);
    const std::uint64_t e = std::min(it->end(), hi);
    if (s >= e) continue;
    const auto idx = static_cast<std::size_t>(it - exts.begin());
    out.push_back(Segment{s, prefix[idx] + (s - it->offset), e - s});
  }
  return out;
}

std::vector<Segment> Plan::merged_segments_in(int first, int last,
                                              std::uint64_t lo,
                                              std::uint64_t hi) const {
  if (last - first == 1) return segments_in(first, lo, hi);
  std::vector<Segment> all;
  for (int m = first; m < last; ++m) {
    for (const Segment& g : segments_in(m, lo, hi)) all.push_back(g);
  }
  std::sort(all.begin(), all.end(),
            [](const Segment& a, const Segment& b) {
              return a.file_offset < b.file_offset;
            });
  std::vector<Segment> out;
  for (const Segment& g : all) {
    if (!out.empty() &&
        g.file_offset <= out.back().file_offset + out.back().length) {
      Segment& back = out.back();
      back.length = std::max(back.file_offset + back.length,
                             g.file_offset + g.length) -
                    back.file_offset;
    } else {
      out.push_back(Segment{g.file_offset, 0, g.length});
    }
  }
  std::uint64_t pos = 0;
  for (Segment& g : out) {
    g.local_offset = pos;
    pos += g.length;
  }
  return out;
}

std::vector<Segment> Plan::node_segments_in(int node, std::uint64_t lo,
                                            std::uint64_t hi) const {
  const auto [first, last] = node_rank_range(node);
  return merged_segments_in(first, last, lo, hi);
}

std::uint64_t Plan::node_bytes_in(int node, std::uint64_t lo,
                                  std::uint64_t hi) const {
  const auto [first, last] = node_rank_range(node);
  if (last - first == 1) return bytes_in(first, lo, hi);
  std::uint64_t n = 0;
  for (const Segment& g : node_segments_in(node, lo, hi)) n += g.length;
  return n;
}

std::vector<Segment> Plan::lane_segments_in(int node, int lane,
                                            std::uint64_t lo,
                                            std::uint64_t hi) const {
  const auto [first, last] = lane_rank_range(node, lane);
  return merged_segments_in(first, last, lo, hi);
}

std::uint64_t Plan::lane_bytes_in(int node, int lane, std::uint64_t lo,
                                  std::uint64_t hi) const {
  const auto [first, last] = lane_rank_range(node, lane);
  if (last - first == 1) return bytes_in(first, lo, hi);
  std::uint64_t n = 0;
  for (const Segment& g : lane_segments_in(node, lane, lo, hi)) n += g.length;
  return n;
}

std::uint64_t Plan::bytes_in(int r, std::uint64_t lo, std::uint64_t hi) const {
  if (lo >= hi) return 0;
  const std::size_t slot = held_slot(r);
  const auto& exts = views_[slot].extents;
  auto it = std::lower_bound(
      exts.begin(), exts.end(), lo,
      [](const Extent& e, std::uint64_t v) { return e.end() <= v; });
  std::uint64_t n = 0;
  for (; it != exts.end() && it->offset < hi; ++it) {
    const std::uint64_t s = std::max(it->offset, lo);
    const std::uint64_t e = std::min(it->end(), hi);
    if (s < e) n += e - s;
  }
  return n;
}

}  // namespace tpio::coll
