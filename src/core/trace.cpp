#include "core/trace.hpp"

#include <cstdio>

namespace tpio::coll {

namespace {

void append_event(std::string& out, const TraceEvent& e, int rank,
                  bool& first) {
  char buf[256];
  // Chrome tracing uses microsecond timestamps; virtual ns -> fractional us.
  std::snprintf(buf, sizeof(buf),
                "%s{\"name\":\"%s\",\"cat\":\"tpio\",\"ph\":\"X\","
                "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d,"
                "\"args\":{\"cycle\":%d}}",
                first ? "" : ",\n", e.name,
                static_cast<double>(e.begin) / 1e3,
                static_cast<double>(e.end - e.begin) / 1e3, rank, e.cycle);
  out += buf;
  first = false;
}

}  // namespace

std::string Trace::chrome_events(int rank) const {
  std::string out;
  bool first = true;
  for (const TraceEvent& e : events_) {
    append_event(out, e, rank, first);
  }
  return out;
}

std::string Trace::chrome_document(std::span<const Trace> per_rank) {
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (std::size_t r = 0; r < per_rank.size(); ++r) {
    for (const TraceEvent& e : per_rank[r].events()) {
      append_event(out, e, static_cast<int>(r), first);
    }
  }
  out += "\n],\"displayTimeUnit\":\"ms\"}\n";
  return out;
}

}  // namespace tpio::coll
