#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/mpi.hpp"
#include "simbase/time.hpp"
#include "simbase/units.hpp"

namespace tpio::coll {

class Trace;

/// One contiguous region of the shared file owned by a rank.
struct Extent {
  std::uint64_t offset = 0;
  std::uint64_t length = 0;

  std::uint64_t end() const { return offset + length; }
  friend bool operator==(const Extent&, const Extent&) = default;
};

/// Fixed-size digest of a FileView, the unit of the first (dense) stage of
/// the two-stage metadata exchange: every rank allgathers one ViewSummary
/// per rank — O(P·32B) instead of O(P·view) — and derives the aggregator
/// map, file range, and global byte count from the summaries alone. Full
/// views travel only in the second, targeted stage. Trivially copyable;
/// shipped as raw bytes.
struct ViewSummary {
  std::uint64_t first_offset = UINT64_MAX;  // min extent offset (empty: MAX)
  std::uint64_t last_end = 0;               // max extent end (empty: 0)
  std::uint64_t total_bytes = 0;            // sum of extent lengths
  std::uint64_t extent_count = 0;           // number of extents

  friend bool operator==(const ViewSummary&, const ViewSummary&) = default;
};
static_assert(sizeof(ViewSummary) == 32);

/// A rank's view of the file: sorted, non-overlapping extents. The rank's
/// local data buffer holds the extents' bytes contiguously, in order —
/// the flattened representation OMPIO derives from an MPI file view.
struct FileView {
  std::vector<Extent> extents;

  std::uint64_t total_bytes() const {
    std::uint64_t n = 0;
    for (const Extent& e : extents) n += e.length;
    return n;
  }

  /// Validate ordering/disjointness; throws tpio::Error on violation.
  void validate() const;

  /// Fixed-size digest for the first stage of the metadata exchange.
  ViewSummary summarize() const;

  /// Serialize to/from bytes for the metadata exchange.
  std::vector<std::byte> serialize() const;
  static FileView deserialize(const std::vector<std::byte>& blob);

  /// Sum of extent lengths of a serialized view, without deserializing.
  static std::uint64_t blob_total_bytes(const std::vector<std::byte>& blob);
};

/// Which internal operations of the two-phase cycle pipeline overlap
/// (section III-A of the paper).
enum class OverlapMode {
  None,        // classic two-phase, single collective buffer
  Comm,        // Alg. 1: non-blocking shuffle, blocking write
  Write,       // Alg. 2: blocking shuffle, asynchronous write
  WriteComm,   // Alg. 3: both non-blocking, joint wait
  WriteComm2,  // Alg. 4: both non-blocking, data-flow ordering
  Auto,        // probe the first cycles, then switch to the best of the
               // above at a cycle boundary (core/autotune.hpp)
};

/// Data-transfer primitive of the shuffle phase (section III-B).
enum class Transfer {
  TwoSided,       // Isend/Irecv
  OneSidedFence,  // Put + Win_fence (active target)
  OneSidedLock,   // Put + Win_lock/unlock + Barrier (passive target)
};

/// Which rank of each node acts as the node leader when the hierarchical
/// (two-level) shuffle is enabled (Options::hierarchical).
enum class LeaderPolicy {
  Lowest,    // first rank of each lane: co-locates leader and aggregator duty
  Spread,    // last rank of each lane: keeps gather CPU off aggregator ranks
  Superset,  // lane leaders sit on the node's global aggregators first, so
             // the inter-node forward hop is local for them (Kang et al.)
};

const char* to_string(OverlapMode m);
const char* to_string(Transfer t);
const char* to_string(LeaderPolicy p);

/// Tuning knobs of the collective write (OMPIO-flavoured defaults).
struct Options {
  /// Collective buffer per aggregator; overlap modes split it into two
  /// sub-buffers of half this size (paper, section III-A).
  std::uint64_t cb_size = 32 * sim::MiB;
  OverlapMode overlap = OverlapMode::WriteComm2;
  Transfer transfer = Transfer::TwoSided;
  /// 0 = automatic selection (volume-capped, one per node, ref [5]).
  int num_aggregators = 0;
  /// Align file-domain boundaries to the stripe size (Liao-style).
  bool stripe_align = true;
  /// Lock flavour for Transfer::OneSidedLock; the paper argues Shared is
  /// required for performance, Exclusive kept as an ablation.
  smpi::Mpi::LockType lock_type = smpi::Mpi::LockType::Shared;
  /// Two-level shuffle (Kang et al., intra-node request aggregation): each
  /// node elects a leader that gathers its co-located ranks' segments over
  /// intra-node links, coalesces contiguous pieces, and forwards one merged
  /// message per (node, aggregator, cycle). Composes with every overlap
  /// mode and transfer primitive; degenerates to the direct path on
  /// single-member nodes.
  bool hierarchical = false;
  LeaderPolicy leader_policy = LeaderPolicy::Lowest;
  /// Local aggregators per node (Kang et al.'s `co`): each node's members
  /// split into this many contiguous lanes, each lane electing its own
  /// leader per leader_policy. 1 (the default) is the single-leader scheme
  /// and stays bit-identical to the pre-lane hierarchical path on every
  /// RunResult field; > 1 additionally pipelines each lane's intra-node
  /// gather against its inter-node forwards (per-lane sub-batons replace
  /// the whole-node barrier). Clamped to the node's member count.
  int local_aggregators = 1;
  /// OverlapMode::Auto: leading cycles executed as blocking probes before
  /// the scheduler is chosen (clamped to the operation's cycle count).
  /// Even probes write blocking, odd ones through the aio path, so the
  /// decision sees the platform's real async-write quality.
  int probe_cycles = 4;
  /// OverlapMode::Auto: thresholds of the decision model (autotune.hpp).
  /// The aggregate type is defined there; defaults are calibrated on the
  /// quick Table I grid.
  double auto_aio_margin = 0.15;
  double auto_comm_floor = 0.10;
  double auto_write_only_ceiling = 0.04;
  double auto_joint_wait_floor = 2.0;
  /// OverlapMode::Auto: path of a persistent JSON tuning cache keyed by
  /// platform signature x workload shape x procs. A hit skips the probe
  /// cycles entirely (warm start); a cold decision is stored back. Empty
  /// disables the cache — required for bit-reproducible sweeps whose grid
  /// points must not influence each other.
  std::string tuning_cache;
  /// CPU bandwidth for pack/unpack memcpy at sender/aggregator.
  double pack_bw = 6e9;
  /// Per-segment CPU cost when packing/unpacking or issuing one put.
  sim::Duration seg_cpu = sim::nanoseconds(1500);
  /// Optional per-rank phase recording (chrome://tracing export); not
  /// owned, may be null. Each rank passes its own Trace.
  Trace* trace = nullptr;

  // ----- subfiling (sub-communicator multi-file write) ----------------------
  /// Number of sub-communicators (gio-style subfiling): the P ranks split
  /// into this many contiguous subgroups, each electing its own aggregator
  /// set and running an independent two-phase write into its own striped
  /// subfile. 1 (the default) is the shared-file mode and is bit-identical
  /// to the pre-subfiling path on every RunResult field; 0 asks the
  /// harness to pick k from probe cycles (xp::auto_sub_comm_count).
  int sub_comm_count = 1;
  /// Stripe unit of each subfile in bytes (pfs::FileStriping::stripe_unit,
  /// sweepable 1 MB-512 MB as in gio); 0 inherits the system stripe size.
  /// Also honoured at k == 1 for stripe-unit sweeps of the shared file.
  std::uint64_t subfile_stripe_unit = 0;
  /// Striping factor of each subfile — how many storage targets it spreads
  /// over; 0 = all targets. Subfile g starts its stripe set at target
  /// g * factor (mod num_targets), so k * factor <= num_targets gives the
  /// subfiles disjoint target subsets.
  int subfile_stripe_factor = 0;
  /// sub_comm_count == 0 (auto-k): minimum fractional improvement a larger
  /// k must show over the previously accepted probe run before auto-k
  /// accepts it (coll::decide_sub_comm_count); the default absorbs run-
  /// to-run noise so near-ties keep the shared file.
  double auto_subfile_floor = 0.02;

  // ----- resilience (fault injection: pfs::FaultParams) ---------------------
  /// Transiently failed writes/reads are retried up to this many times
  /// beyond the first attempt before the engine gives up (records a give-up
  /// in Result::faults and an error in Result::io_error, leaving a hole the
  /// file's verify() reports). Inert without injected faults: a fault-free
  /// run never retries and is bit-identical at any max_retries.
  int max_retries = 4;
  /// Base delay of the exponential retry backoff, virtual nanoseconds.
  /// Attempt k (k >= 2) waits base * 2^min(k-2, 16) * (1 + j), jitter j in
  /// [0, 1) drawn
  /// as a pure function of (fault seed, rank, cycle, attempt) — never from
  /// a shared stream — so backoff schedules are deterministic and
  /// bit-identical at any worker count. Accounted in PhaseTimings::backoff.
  sim::Duration retry_backoff = sim::microseconds(500);
  /// Straggler-aware degraded mode: when > 1, an aggregator whose completed
  /// asynchronous write cost more per byte than `degrade_slowdown` times the
  /// best per-byte cost it has observed abandons the aio pipeline and drains
  /// its remaining cycles with blocking writes (one bad server no longer
  /// stalls the double-buffer swap). 0 disables (default). The trigger uses
  /// only this rank's own deterministic observations, so degraded runs stay
  /// bit-identical across hosts and worker counts.
  double degrade_slowdown = 0.0;

  // ----- host-side performance (no effect on the virtual timeline) ----------
  /// false elides every payload memcpy on the host (pack, unpack, gather,
  /// PFS content snapshots) while still advancing the virtual clock by the
  /// same pack costs and byte counts. Every RunResult field is bit-identical
  /// either way; only the simulated file's *contents* become meaningless, so
  /// this must stay true whenever the file records content (digest/store
  /// integrity, i.e. spec.verify). The runner sets this from RunSpec::verify;
  /// it is excluded from autotune workload signatures and plan-cache keys.
  bool materialize = true;
  /// true makes the metadata exchange materialize every rank's full view on
  /// every rank (the pre-two-stage behaviour) instead of delivering full
  /// views only to the ranks that plan over them. Purely a host-memory /
  /// host-time toggle: the virtual cost of the exchange and every RunResult
  /// field are bit-identical either way (the differential `metadata` suite
  /// pins this). Default off; flip on to bisect a suspected delivery bug.
  bool dense_metadata = false;
};

/// Where a rank's blocked time went, in virtual nanoseconds. Mirrors the
/// paper's communication/IO breakdown analysis (section IV-A).
struct PhaseTimings {
  sim::Duration meta = 0;     // view exchange + planning collectives
  sim::Duration pack = 0;     // CPU pack/unpack
  sim::Duration gather = 0;   // intra-node leader gather (hierarchical mode)
  sim::Duration forward = 0;  // inter-node forward sends of pipelined lane
                              // leaders (hierarchical, local_aggregators > 1;
                              // the co = 1 path keeps forward time in shuffle
                              // for bit-identity, leaving this 0)
  sim::Duration shuffle = 0;  // blocked in sends/recvs/puts + their waits
  sim::Duration sync = 0;     // fences, barriers, lock traffic
  sim::Duration write = 0;    // blocked in file writes / write waits
  sim::Duration backoff = 0;  // retry backoff waits (fault injection)
  sim::Duration total = 0;    // whole collective_write

  PhaseTimings& operator+=(const PhaseTimings& o);
};

/// Resilience counters of one collective operation on one rank. All zero on
/// a fault-free run (and bit-identical to a build without the fault layer).
struct FaultStats {
  /// Write/read attempts that failed transiently and were re-issued.
  int retries = 0;
  /// Operations abandoned after Options::max_retries re-issues all failed;
  /// each leaves a hole in the file that verify() reports, and the first
  /// one sets Result::io_error.
  int giveups = 0;
  /// Cycles this rank drained through the blocking fallback after the
  /// degraded-mode trigger fired (Options::degrade_slowdown).
  int degraded_cycles = 0;

  FaultStats& operator+=(const FaultStats& o);
};

/// What OverlapMode::Auto decided for one operation. Identical on every
/// rank: the probe statistics are max-reduced job-wide before the decision
/// and cache hits are broadcast from rank 0.
struct AutoDecision {
  bool engaged = false;            // the run used OverlapMode::Auto
  OverlapMode chosen = OverlapMode::None;
  bool from_cache = false;         // warm start: probes skipped entirely
  int probe_cycles = 0;            // probes actually executed
  double comm_share = 0.0;         // shuffle / (shuffle + blocking write)
  double aio_ratio = 0.0;          // async / blocking per-cycle write cost
};

/// Outcome of one collective write on one rank.
struct Result {
  PhaseTimings timings;
  int aggregators = 0;
  int cycles = 0;
  std::uint64_t bytes_local = 0;   // this rank's contribution
  std::uint64_t bytes_global = 0;  // whole operation
  AutoDecision autotune;           // OverlapMode::Auto only
  /// Retry/give-up/degradation counters of this rank (fault injection).
  FaultStats faults;
  /// First give-up description on this rank; empty when every operation
  /// eventually succeeded. A non-empty value means the file has a hole.
  std::string io_error;
  /// Pipelined-overlap inputs (two-sided hierarchical runs with
  /// local_aggregators > 1, lane leaders only; both 0 everywhere else, in
  /// particular on every co = 1 run): summed lifetimes of this rank's
  /// forward messages (post instant to completion wait) and the part of
  /// that the rank spent blocked posting/waiting on them. The difference
  /// is forward time hidden under other work (typically the next cycle's
  /// lane gather); the runner rolls both up into a job-wide fraction.
  sim::Duration forward_lifetime = 0;
  sim::Duration forward_blocked = 0;
};

}  // namespace tpio::coll
