#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <span>

#include "core/plan.hpp"

namespace tpio::coll::segcopy {

/// Host-side memcpy coalescing over Plan segment lists. Two structural
/// facts make this safe:
///
///  * `Plan::segments_in(r, lo, hi)` walks a rank's sorted extents without
///    skipping, so the returned segments always occupy ONE contiguous run
///    of the rank's local buffer (each segment's local end equals the next
///    segment's local start). A multi-segment pack from the local buffer
///    is therefore a single copy — or no copy at all, when the packed
///    bytes can be sent as a span of the source.
///
///  * Within such a list, consecutive segments may additionally be
///    contiguous *in the file*; the per-segment copies into/out of a
///    collective buffer then collapse into one memcpy per file-contiguous
///    run.
///
/// Coalescing only changes how many host memcpys move the same bytes; the
/// virtual-timeline pack cost is still charged from the original segment
/// count by the callers. set_coalescing(false) restores the per-segment
/// copies — the legacy arm of the differential tests.

inline std::atomic<bool>& coalescing_flag() {
  static std::atomic<bool> on{true};
  return on;
}

inline void set_coalescing(bool on) {
  coalescing_flag().store(on, std::memory_order_relaxed);
}

inline bool coalescing() {
  return coalescing_flag().load(std::memory_order_relaxed);
}

/// One contiguous run of a rank's local buffer covering a whole segment
/// list. `ok` is expected to always hold for segments_in output; callers
/// keep a per-segment fallback anyway.
struct LocalRun {
  bool ok = false;
  std::uint64_t local_offset = 0;  // run start in the local buffer
  std::uint64_t total = 0;         // run length, == sum of segment lengths
};

inline LocalRun local_run(std::span<const Segment> segs) {
  LocalRun run;
  if (segs.empty()) {
    run.ok = true;
    return run;
  }
  run.local_offset = segs.front().local_offset;
  std::uint64_t next = run.local_offset;
  for (const Segment& s : segs) {
    if (s.local_offset != next) return run;  // ok == false
    next += s.length;
  }
  run.ok = true;
  run.total = next - run.local_offset;
  return run;
}

/// Invoke `fn(first, count, file_offset, length)` once per file-contiguous
/// run of `segs`: `first`/`count` delimit the run's segments, and
/// [file_offset, file_offset + length) is the file region they jointly
/// cover. With coalescing disabled every segment is its own run, which
/// reproduces the legacy one-memcpy-per-segment behaviour exactly.
template <class Fn>
void for_file_runs(std::span<const Segment> segs, Fn&& fn) {
  const bool merge = coalescing();
  std::size_t i = 0;
  while (i < segs.size()) {
    std::size_t j = i + 1;
    std::uint64_t len = segs[i].length;
    if (merge) {
      while (j < segs.size() &&
             segs[j].file_offset == segs[j - 1].file_offset + segs[j - 1].length) {
        len += segs[j].length;
        ++j;
      }
    }
    fn(i, j - i, segs[i].file_offset, len);
    i = j;
  }
}

/// Invoke `fn(first, count, local_offset, length)` once per run of `segs`
/// that is contiguous in the *local* buffer — the right grouping when the
/// source is the rank's own data and the destination is sequential (pack).
/// Per the segments_in contiguity property, the segments of one cycle
/// range always collapse into a single run here.
template <class Fn>
void for_local_runs(std::span<const Segment> segs, Fn&& fn) {
  const bool merge = coalescing();
  std::size_t i = 0;
  while (i < segs.size()) {
    std::size_t j = i + 1;
    std::uint64_t len = segs[i].length;
    if (merge) {
      while (j < segs.size() && segs[j].local_offset ==
                                    segs[j - 1].local_offset + segs[j - 1].length) {
        len += segs[j].length;
        ++j;
      }
    }
    fn(i, j - i, segs[i].local_offset, len);
    i = j;
  }
}

}  // namespace tpio::coll::segcopy
