#include "core/engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <tuple>

#include "core/autotune.hpp"
#include "core/plan_cache.hpp"
#include "core/segcopy.hpp"
#include "core/trace.hpp"
#include "simbase/bufpool.hpp"
#include "simbase/error.hpp"

namespace tpio::coll {

namespace {

/// Measure wall (virtual) time a rank spends inside `fn`, attributing it to
/// the given PhaseTimings field.
template <class F>
void timed(sim::RankCtx& ctx, sim::Duration& field, F&& fn) {
  const sim::Time before = ctx.now();
  fn();
  field += ctx.now() - before;
}

/// Tag space of the intra-node gather (member -> lane leader); disjoint
/// from the forward tags (plain cycle numbers) so a rank that is both a
/// member and an aggregator can never cross-match the two streams. The
/// lane index occupies the bits above the marker, giving every lane leader
/// its own tag space; lane 0 reproduces the historical single-leader tags
/// exactly.
smpi::Tag gather_tag(int cycle, int lane) {
  return static_cast<smpi::Tag>(cycle) | (smpi::Tag{1} << 40) |
         (static_cast<smpi::Tag>(lane) << 41);
}

}  // namespace

Engine::Engine(smpi::Mpi& mpi, pfs::File& file, const Plan& plan,
               std::span<const std::byte> local_data, const Options& opt,
               PhaseTimings& timings)
    : mpi_(mpi),
      file_(file),
      plan_(plan),
      data_(local_data),
      opt_(opt),
      t_(timings) {
  TPIO_CHECK(data_.size() == plan.view(mpi.rank()).total_bytes(),
             "local buffer size does not match the file view");
  // Timing-only mode must never meet a content-recording file: the digest
  // would be computed over unmaterialized bytes.
  TPIO_CHECK(opt_.materialize || file_.integrity() == pfs::Integrity::None,
             "Options::materialize == false requires Integrity::None");
  my_agg_ = plan_.agg_index(mpi_.rank());
  node_ = mpi_.machine().fabric().topology().node_of(mpi_.rank());
  if (opt_.hierarchical) {
    is_leader_ = plan_.is_leader(mpi_.rank());
    lane_ = plan_.lane_of(mpi_.rank());
    const auto [first, last] = plan_.lane_rank_range(node_, lane_);
    lane_first_ = first;
    lane_last_ = last;
    // Pipelined lane mode is an option-level property (uniform across
    // ranks even where small nodes clamp to one lane): the per-cycle sync
    // structure must agree job-wide.
    pipelined_ = plan_.local_aggregators() > 1;
  }

  const int nslots = opt_.overlap == OverlapMode::None ? 1 : 2;
  const std::uint64_t sb = plan_.sub_buffer_bytes();
  if (opt_.transfer == Transfer::TwoSided) {
    if (my_agg_ >= 0) {
      // Pooled sub-buffers, recycled across cycles and runs. Zeroing is
      // only needed when contents are recorded: file regions of a cycle
      // range not covered by any incoming segment keep the sub-buffer's
      // prior bytes, which a fresh std::vector guaranteed to be zero.
      for (int s = 0; s < nslots; ++s) {
        slots_[s].cb =
            sim::BufferPool::local().acquire(sb, /*zeroed=*/opt_.materialize);
      }
    }
  } else {
    // One-sided: the sub-buffers ARE the exposed windows; puts land
    // directly at their final position, no aggregator-side unpack.
    timed(mpi_.ctx(), t_.sync, [&] {
      for (int s = 0; s < nslots; ++s) {
        slots_[s].win =
            mpi_.win_allocate(my_agg_ >= 0 ? static_cast<std::size_t>(sb) : 0);
      }
    });
  }
}

std::span<std::byte> Engine::cb_span(int slot) {
  Slot& s = slots_[slot];
  if (opt_.transfer == Transfer::TwoSided) return s.cb.span();
  return s.win->local(mpi_.rank());
}

sim::Duration Engine::pack_cost(std::size_t segs, std::uint64_t bytes) const {
  return static_cast<sim::Duration>(segs) * opt_.seg_cpu +
         sim::transfer_time(bytes, opt_.pack_bw);
}

// ---------------------------------------------------------------------------
// Shuffle phase
// ---------------------------------------------------------------------------

std::vector<Segment> Engine::incoming_segments(int src, std::uint64_t lo,
                                               std::uint64_t hi) const {
  if (!opt_.hierarchical) return plan_.segments_in(src, lo, hi);
  // `src` is a lane leader; its message carries its lane's coalesced
  // union. One lane per node (co = 1) makes this the node union exactly.
  return plan_.lane_segments_in(plan_.topology().node_of(src),
                                plan_.lane_of(src), lo, hi);
}

void Engine::leader_gather(int cycle, int slot) {
  if (!opt_.hierarchical) return;
  Slot& s = slots_[slot];
  if (s.gathered_cycle == cycle) return;
  TPIO_CHECK(!s.sh.pending,
             "leader_gather while a shuffle is pending on slot");
  s.gathered_cycle = cycle;
  if (lane_last_ - lane_first_ <= 1) return;  // degenerate: direct path

  const int me = mpi_.rank();
  const int A = plan_.num_aggregators();

  // Pieces of member `m`, in the (aggregator, file-offset) pack order.
  auto pieces_of = [&](int m) {
    std::vector<Segment> out;
    for (int a = 0; a < A; ++a) {
      const Plan::Range r = plan_.cycle_range(a, cycle);
      for (const Segment& g : plan_.segments_in(m, r.begin, r.end)) {
        out.push_back(g);
      }
    }
    return out;
  };

  if (!is_leader_) {
    // Member: pack own pieces and hand them to the leader. The blocking
    // wait models the copy into node-shared staging; a single contiguous
    // piece goes zero-copy (the wait keeps the user buffer safe).
    const auto pieces = pieces_of(me);
    if (pieces.empty()) return;
    std::span<const std::byte> payload;
    sim::BufferPool::Buffer buf;
    if (pieces.size() == 1) {
      payload = data_.subspan(pieces[0].local_offset, pieces[0].length);
    } else {
      std::uint64_t total = 0;
      for (const Segment& g : pieces) total += g.length;
      const segcopy::LocalRun run = segcopy::coalescing()
                                        ? segcopy::local_run(pieces)
                                        : segcopy::LocalRun{};
      if (run.ok) {
        // Every piece lines up contiguously in the user buffer: the packed
        // message is a slice of it, so send in place (zero-copy).
        payload = data_.subspan(run.local_offset, run.total);
      } else {
        buf = sim::BufferPool::local().acquire(total, /*zeroed=*/false);
        if (opt_.materialize) {
          std::uint64_t pos = 0;
          segcopy::for_local_runs(
              pieces, [&](std::size_t, std::size_t, std::uint64_t off,
                          std::uint64_t len) {
                std::memcpy(buf.data() + pos, data_.data() + off, len);
                pos += len;
              });
        }
        payload = buf.span();
      }
      // Pack CPU is charged from the piece count regardless of how many
      // host copies actually moved the bytes.
      timed(mpi_.ctx(), t_.pack,
            [&] { mpi_.ctx().advance(pack_cost(pieces.size(), total)); });
    }
    timed(mpi_.ctx(), t_.gather, [&] {
      smpi::Request rq =
          mpi_.isend(plan_.leader_of(me), gather_tag(cycle, lane_), payload);
      mpi_.wait(rq);
    });
    return;
  }

  // Leader: derive the staging layout — concatenation over aggregators of
  // the lane's coalesced cycle segments, file-ordered within each
  // aggregator slice. Only leaders compute it (it reads every lane
  // member's view, which the sparse metadata exchange delivers to leaders
  // alone); members pack against pieces_of(me), whose positions the leader
  // re-derives when unpacking, so no gather metadata is exchanged.
  std::vector<Segment> layout;  // local_offset = position in stage
  std::uint64_t stage_bytes = 0;
  for (int a = 0; a < A; ++a) {
    const Plan::Range r = plan_.cycle_range(a, cycle);
    const auto segs = plan_.lane_segments_in(node_, lane_, r.begin, r.end);
    for (Segment g : segs) {
      g.local_offset += stage_bytes;
      layout.push_back(g);
    }
    if (!segs.empty()) {
      stage_bytes += segs.back().local_offset + segs.back().length;
    }
  }
  if (stage_bytes == 0) return;  // lane contributes nothing this cycle

  // Map a member piece to its slot in the merged layout. Union segments
  // are maximal coalesced runs, so each piece fits inside exactly one.
  auto stage_pos = [&](const Segment& piece) -> std::uint64_t {
    auto it = std::upper_bound(
        layout.begin(), layout.end(), piece.file_offset,
        [](std::uint64_t v, const Segment& g) { return v < g.file_offset; });
    TPIO_CHECK(it != layout.begin(), "gather piece outside node layout");
    --it;
    TPIO_CHECK(piece.file_offset >= it->file_offset &&
                   piece.file_offset + piece.length <=
                       it->file_offset + it->length,
               "gather piece straddles node layout");
    return it->local_offset + (piece.file_offset - it->file_offset);
  };

  // Receive every member's packed pieces, scatter them (and our own) into
  // the merged staging buffer.
  ScopedTraceEvent ev_(opt_.trace, "leader_gather", cycle, mpi_.ctx().now());
  struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
  // The staging buffer is fully covered by the members' pieces, so it
  // needs no zeroing; pooled, recycled across cycles and runs.
  s.stage = sim::BufferPool::local().acquire(stage_bytes, /*zeroed=*/false);
  std::vector<std::pair<int, sim::BufferPool::Buffer>> bufs;
  std::vector<smpi::Request> reqs;
  bufs.reserve(static_cast<std::size_t>(lane_last_ - lane_first_));
  reqs.reserve(static_cast<std::size_t>(lane_last_ - lane_first_));
  for (int m = lane_first_; m < lane_last_; ++m) {
    if (m == me) continue;
    std::uint64_t n = 0;
    for (int a = 0; a < A; ++a) {
      const Plan::Range r = plan_.cycle_range(a, cycle);
      n += plan_.bytes_in(m, r.begin, r.end);
    }
    if (n == 0) continue;
    bufs.emplace_back(m,
                      sim::BufferPool::local().acquire(n, /*zeroed=*/false));
    timed(mpi_.ctx(), t_.gather, [&] {
      reqs.push_back(
          mpi_.irecv(m, gather_tag(cycle, lane_), bufs.back().second.span()));
    });
  }
  const auto own = pieces_of(me);
  std::uint64_t own_bytes = 0;
  for (const Segment& g : own) own_bytes += g.length;
  if (opt_.materialize) {
    // File-contiguous pieces are also contiguous in the user buffer and in
    // the stage layout, so each run collapses into one copy.
    segcopy::for_file_runs(
        own, [&](std::size_t first, std::size_t, std::uint64_t,
                 std::uint64_t len) {
          std::memcpy(s.stage.data() + stage_pos(own[first]),
                      data_.data() + own[first].local_offset, len);
        });
  }
  if (own_bytes > 0) {
    timed(mpi_.ctx(), t_.pack,
          [&] { mpi_.ctx().advance(pack_cost(own.size(), own_bytes)); });
  }
  timed(mpi_.ctx(), t_.gather, [&] { mpi_.waitall(reqs); });
  std::size_t nsegs = 0;
  std::uint64_t bytes = 0;
  for (const auto& [m, buf] : bufs) {
    const auto pieces = pieces_of(m);
    std::uint64_t pos = 0;
    segcopy::for_file_runs(
        pieces, [&](std::size_t first, std::size_t, std::uint64_t,
                    std::uint64_t len) {
          if (opt_.materialize) {
            std::memcpy(s.stage.data() + stage_pos(pieces[first]),
                        buf.data() + pos, len);
          }
          pos += len;
        });
    TPIO_CHECK(pos == buf.size(), "gather unpack size mismatch");
    nsegs += pieces.size();
    bytes += pos;
  }
  if (bytes > 0) {
    timed(mpi_.ctx(), t_.pack,
          [&] { mpi_.ctx().advance(pack_cost(nsegs, bytes)); });
  }
}

void Engine::shuffle_init(int cycle, int slot) {
  leader_gather(cycle, slot);  // hierarchical mode only; no-op otherwise
  ScopedTraceEvent ev_(opt_.trace, "shuffle_init", cycle, mpi_.ctx().now());
  struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
  Slot& s = slots_[slot];
  TPIO_CHECK(!s.sh.pending, "shuffle_init while a shuffle is pending on slot");
  TPIO_CHECK(!s.wr.valid(),
             "shuffle_init into a sub-buffer with an outstanding write");
  s.sh.clear();  // keeps vector capacity: steady-state cycles don't allocate
  s.sh.cycle = cycle;
  s.sh.pending = true;

  const int me = mpi_.rank();
  const auto tag = static_cast<smpi::Tag>(cycle);

  if (opt_.transfer == Transfer::TwoSided) {
    // Per-cycle metadata synchronization (vulcan exchanges offsets/counts
    // at the start of every cycle). Besides its own cost this keeps
    // senders in lock-step with the aggregators: without it, eager senders
    // race arbitrarily far ahead and pre-deliver future cycles into
    // unexpected-message buffers, which no real implementation allows at
    // collective-buffer granularity.
    if (opt_.hierarchical && pipelined_) {
      // Pipelined lane mode: each lane syncs only among its own members —
      // the per-(leader, cycle) sub-baton. A lane leader whose gather is
      // done forwards immediately, without waiting for the node's other
      // lanes or for other nodes' leaders (no whole-node barrier, no
      // fabric-wide leader barrier on the per-cycle path).
      timed(mpi_.ctx(), t_.sync,
            [&] { mpi_.lane_barrier(lane_, lane_last_ - lane_first_); });
    } else if (opt_.hierarchical) {
      // Hierarchical metadata sync: members only need lockstep with their
      // node leader, leaders with the aggregators — most ranks pay the
      // cheap shared-memory barrier instead of the O(log P) fabric one.
      // At one rank per node this decomposes into exactly the flat
      // barrier (node_barrier is a 1-party no-op, leader_barrier spans
      // every rank).
      timed(mpi_.ctx(), t_.sync, [&] {
        mpi_.node_barrier();
        if (is_leader_) mpi_.leader_barrier();
      });
    } else {
      timed(mpi_.ctx(), t_.sync, [&] { mpi_.barrier(); });
    }
    // Aggregator side: one receive per contributing source — every rank on
    // the direct path, one per (node, lane) under hierarchy. A source whose
    // contribution is one contiguous piece lands directly at its final
    // position in the collective buffer (no staging, no unpack) — the
    // common case for contiguous workloads like IOR; multi-segment
    // contributions go through a staging buffer and are scattered at
    // shuffle_wait, paying CPU per segment and per byte.
    if (my_agg_ >= 0) {
      const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
      std::span<std::byte> cb = cb_span(slot);
      const int nodes = plan_.topology().nodes;
      int nsrc = mpi_.size();
      if (opt_.hierarchical) {
        nsrc = 0;
        for (int n = 0; n < nodes; ++n) nsrc += plan_.lanes(n);
      }
      s.sh.reqs.reserve(static_cast<std::size_t>(nsrc) +
                        static_cast<std::size_t>(plan_.num_aggregators()));
      s.sh.recv_bufs.reserve(static_cast<std::size_t>(nsrc));
      const auto post_recv = [&](int src) {
        auto segs = incoming_segments(src, r.begin, r.end);
        if (segs.empty()) return;
        std::span<std::byte> dest;
        if (segs.size() == 1) {
          dest = cb.subspan(segs[0].file_offset - r.begin, segs[0].length);
        } else {
          std::uint64_t n = 0;
          for (const Segment& g : segs) n += g.length;
          RecvStage st;
          st.src = src;
          st.buf = sim::BufferPool::local().acquire(n, /*zeroed=*/false);
          st.segs = std::move(segs);  // reused by shuffle_wait's scatter
          s.sh.recv_bufs.push_back(std::move(st));
          dest = s.sh.recv_bufs.back().buf.span();
        }
        timed(mpi_.ctx(), t_.shuffle,
              [&] { s.sh.reqs.push_back(mpi_.irecv(src, tag, dest)); });
      };
      if (opt_.hierarchical) {
        for (int n = 0; n < nodes; ++n) {
          for (int l = 0; l < plan_.lanes(n); ++l) {
            post_recv(plan_.lane_leader(n, l));
          }
        }
      } else {
        for (int i = 0; i < nsrc; ++i) post_recv(i);
      }
    }
    if (opt_.hierarchical && lane_last_ - lane_first_ > 1) {
      // Hierarchical forward: the lane leader sends one contiguous slice of
      // the staging buffer per destination aggregator, zero-copy (the slice
      // layout is exactly leader_gather's). Members already handed their
      // pieces to the leader and send nothing. In pipelined mode the posts
      // are timed into the forward bucket and the slot remembers the post
      // instant, feeding the pipelined-overlap stat at shuffle_wait.
      if (is_leader_) {
        if (pipelined_) {
          s.fwd_begin = mpi_.ctx().now();
        }
        std::uint64_t base = 0;
        sim::Duration& bucket = pipelined_ ? t_.forward : t_.shuffle;
        for (int a = 0; a < plan_.num_aggregators(); ++a) {
          const Plan::Range r = plan_.cycle_range(a, cycle);
          const std::uint64_t n =
              plan_.lane_bytes_in(node_, lane_, r.begin, r.end);
          if (n == 0) continue;
          const std::span<const std::byte> payload(s.stage.data() + base, n);
          timed(mpi_.ctx(), bucket, [&] {
            s.sh.reqs.push_back(mpi_.isend(plan_.agg_rank(a), tag, payload));
          });
          base += n;
        }
        if (pipelined_) {
          s.fwd_posted = base > 0;
          s.fwd_post_cost = mpi_.ctx().now() - s.fwd_begin;
        }
      }
      return;
    }
    // Sender side (direct path; also hierarchical single-member nodes): a
    // single contiguous piece is sent zero-copy from the user buffer;
    // scattered pieces still form one contiguous local run per cycle range
    // (see segcopy.hpp), so they too are sent in place — the pack CPU is
    // charged on the virtual timeline either way.
    const int A = plan_.num_aggregators();
    if (my_agg_ < 0) s.sh.reqs.reserve(static_cast<std::size_t>(A));
    s.sh.send_bufs.reserve(static_cast<std::size_t>(A));
    for (int a = 0; a < A; ++a) {
      const Plan::Range r = plan_.cycle_range(a, cycle);
      const auto segs = plan_.segments_in(me, r.begin, r.end);
      if (segs.empty()) continue;
      std::span<const std::byte> payload;
      if (segs.size() == 1) {
        payload = data_.subspan(segs[0].local_offset, segs[0].length);
      } else {
        std::uint64_t total = 0;
        for (const Segment& g : segs) total += g.length;
        const segcopy::LocalRun run = segcopy::coalescing()
                                          ? segcopy::local_run(segs)
                                          : segcopy::LocalRun{};
        if (run.ok) {
          // The packed message is byte-for-byte a slice of the user
          // buffer; it stays untouched until this slot's shuffle_wait,
          // the same lifetime the staging buffer had.
          payload = data_.subspan(run.local_offset, run.total);
        } else {
          sim::BufferPool::Buffer buf =
              sim::BufferPool::local().acquire(total, /*zeroed=*/false);
          if (opt_.materialize) {
            std::uint64_t pos = 0;
            segcopy::for_local_runs(
                segs, [&](std::size_t, std::size_t, std::uint64_t off,
                          std::uint64_t len) {
                  std::memcpy(buf.data() + pos, data_.data() + off, len);
                  pos += len;
                });
          }
          s.sh.send_bufs.push_back(std::move(buf));
          payload = s.sh.send_bufs.back().span();
        }
        timed(mpi_.ctx(), t_.pack,
              [&] { mpi_.ctx().advance(pack_cost(segs.size(), total)); });
      }
      timed(mpi_.ctx(), t_.shuffle, [&] {
        s.sh.reqs.push_back(mpi_.isend(plan_.agg_rank(a), tag, payload));
      });
    }
    return;
  }

  // One-sided variants.
  if (opt_.transfer == Transfer::OneSidedLock) {
    // Origins must not overwrite a sub-buffer whose previous content the
    // aggregator is still writing; the paper resolves this with a barrier.
    timed(mpi_.ctx(), t_.sync, [&] { mpi_.barrier(); });
  } else {
    // Active target: the opening fence starts the exposure epoch.
    timed(mpi_.ctx(), t_.sync, [&] { mpi_.win_fence(*s.win); });
  }

  if (opt_.hierarchical && lane_last_ - lane_first_ > 1) {
    // Hierarchical one-sided: only lane leaders originate puts — one per
    // coalesced union segment, sourced from the staging buffer. The gather
    // itself stays two-sided intra-node traffic (it models shared-memory
    // staging, not RMA). With co > 1 the lanes' leaders originate their
    // puts independently; the fence/barrier epoch structure is global
    // either way, so there is no per-cycle lane sync here. Put issue time
    // is charged to the forward bucket in pipelined mode (the lifetime
    // stat stays two-sided-only: put completion is epoch-based, so no
    // per-leader forward lifetime exists to measure).
    if (!is_leader_) return;
    std::uint64_t base = 0;
    sim::Duration& bucket = pipelined_ ? t_.forward : t_.shuffle;
    for (int a = 0; a < plan_.num_aggregators(); ++a) {
      const Plan::Range r = plan_.cycle_range(a, cycle);
      const auto segs = plan_.lane_segments_in(node_, lane_, r.begin, r.end);
      if (segs.empty()) continue;
      const int target = plan_.agg_rank(a);
      if (opt_.transfer == Transfer::OneSidedLock) {
        timed(mpi_.ctx(), t_.sync,
              [&] { mpi_.win_lock(*s.win, target, opt_.lock_type); });
      }
      timed(mpi_.ctx(), bucket, [&] {
        for (const Segment& g : segs) {
          mpi_.ctx().advance(opt_.seg_cpu);
          mpi_.put(*s.win, target, g.file_offset - r.begin,
                   s.stage.span().subspan(base + g.local_offset, g.length));
        }
      });
      if (opt_.transfer == Transfer::OneSidedLock) {
        timed(mpi_.ctx(), t_.sync, [&] { mpi_.win_unlock(*s.win, target); });
      }
      base += segs.back().local_offset + segs.back().length;
    }
    return;
  }

  for (int a = 0; a < plan_.num_aggregators(); ++a) {
    const Plan::Range r = plan_.cycle_range(a, cycle);
    const auto segs = plan_.segments_in(me, r.begin, r.end);
    if (segs.empty()) continue;
    const int target = plan_.agg_rank(a);
    if (opt_.transfer == Transfer::OneSidedLock) {
      timed(mpi_.ctx(), t_.sync,
            [&] { mpi_.win_lock(*s.win, target, opt_.lock_type); });
    }
    timed(mpi_.ctx(), t_.shuffle, [&] {
      for (const Segment& g : segs) {
        // Each contiguous piece goes straight to its final position in the
        // target's sub-buffer: origin-side placement, no target CPU.
        mpi_.ctx().advance(opt_.seg_cpu);
        mpi_.put(*s.win, target, g.file_offset - r.begin,
                 data_.subspan(g.local_offset, g.length));
      }
    });
    if (opt_.transfer == Transfer::OneSidedLock) {
      timed(mpi_.ctx(), t_.sync, [&] { mpi_.win_unlock(*s.win, target); });
    }
  }
}

void Engine::shuffle_wait(int slot) {
  ScopedTraceEvent ev_(opt_.trace, "shuffle_wait", slots_[slot].sh.cycle, mpi_.ctx().now());
  struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
  Slot& s = slots_[slot];
  TPIO_CHECK(s.sh.pending, "shuffle_wait without a pending shuffle");
  s.sh.pending = false;

  switch (opt_.transfer) {
    case Transfer::TwoSided: {
      // Pure lane leaders (not also aggregators) wait here only on their
      // own forward isends, so the blocked time is forward-completion wait;
      // a leader that is also an aggregator (Superset) waits on a mix of
      // recvs and forwards and keeps the historical shuffle attribution.
      const bool fwd_wait = s.fwd_posted && my_agg_ < 0;
      const sim::Time w0 = mpi_.ctx().now();
      timed(mpi_.ctx(), fwd_wait ? t_.forward : t_.shuffle,
            [&] { mpi_.waitall(s.sh.reqs); });
      if (s.fwd_posted) {
        // Pipelined-overlap stat: the forward lifetime runs from the post
        // instant to the end of this waitall; the leader was blocked on
        // forwarding while posting and (pure leaders only) inside the
        // waitall. Everything else in the lifetime — typically the next
        // cycle's lane gather under an overlapping scheduler — is forward
        // time hidden behind useful work. Host-side only: no virtual cost.
        fwd_lifetime_ += mpi_.ctx().now() - s.fwd_begin;
        fwd_blocked_ += s.fwd_post_cost;
        if (fwd_wait) fwd_blocked_ += mpi_.ctx().now() - w0;
        s.fwd_posted = false;
        s.fwd_post_cost = 0;
      }
      if (my_agg_ >= 0 && !s.sh.recv_bufs.empty()) {
        // Scatter staged multi-segment messages into the collective buffer
        // at their final offsets (single-segment sources already landed in
        // place), one copy per file-contiguous run. The segment layouts
        // were computed (and stored) at shuffle_init.
        const Plan::Range r = plan_.cycle_range(my_agg_, s.sh.cycle);
        std::span<std::byte> cb = cb_span(slot);
        std::size_t nsegs = 0;
        std::uint64_t bytes = 0;
        for (const RecvStage& st : s.sh.recv_bufs) {
          std::uint64_t pos = 0;
          segcopy::for_file_runs(
              st.segs, [&](std::size_t, std::size_t, std::uint64_t off,
                           std::uint64_t len) {
                if (opt_.materialize) {
                  std::memcpy(cb.data() + (off - r.begin), st.buf.data() + pos,
                              len);
                }
                pos += len;
              });
          TPIO_CHECK(pos == st.buf.size(), "unpack size mismatch");
          nsegs += st.segs.size();
          bytes += pos;
        }
        timed(mpi_.ctx(), t_.pack,
              [&] { mpi_.ctx().advance(pack_cost(nsegs, bytes)); });
      }
      break;
    }
    case Transfer::OneSidedFence:
      // Closing fence: completes all puts of the epoch, everywhere.
      timed(mpi_.ctx(), t_.sync, [&] { mpi_.win_fence(*s.win); });
      break;
    case Transfer::OneSidedLock:
      // Unlocks already guaranteed per-origin completion; the barrier tells
      // the aggregator that *all* origins are done.
      timed(mpi_.ctx(), t_.sync, [&] { mpi_.barrier(); });
      break;
  }
  s.sh.clear();
}

void Engine::shuffle_blocking(int cycle, int slot) {
  shuffle_init(cycle, slot);
  shuffle_wait(slot);
}

// ---------------------------------------------------------------------------
// I/O phase
// ---------------------------------------------------------------------------

sim::Duration Engine::backoff_delay(int cycle, int attempt) const {
  const int exp = std::min(attempt - 1, 16);
  const auto scaled = static_cast<sim::Duration>(
      opt_.retry_backoff * (sim::Duration{1} << exp));
  // Jitter is a pure function of (fault seed, rank, cycle, attempt) — no
  // shared stream, so the schedule is identical at any worker count.
  sim::Rng rng(sim::Rng::derive_seed(
      sim::Rng::derive_seed(file_.faults().params().seed ^ 0xB0FFull,
                            static_cast<std::uint64_t>(mpi_.rank())),
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cycle)) << 8) ^
          static_cast<std::uint64_t>(attempt)));
  return scaled +
         static_cast<sim::Duration>(std::llround(
             rng.next_double() * static_cast<double>(scaled)));
}

void Engine::retry_backoff(int cycle, int attempt) {
  ++faults_.retries;
  const sim::Duration d = backoff_delay(cycle, attempt);
  ScopedTraceEvent ev_(opt_.trace, "write_retry", cycle, mpi_.ctx().now());
  struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
  timed(mpi_.ctx(), t_.backoff, [&] { mpi_.ctx().advance(d); });
}

void Engine::give_up(const char* what, int cycle) {
  ++faults_.giveups;
  if (io_error_.empty()) {
    io_error_ = std::string(what) + " gave up after " +
                std::to_string(opt_.max_retries + 1) + " attempts (cycle " +
                std::to_string(cycle) + ", rank " +
                std::to_string(mpi_.rank()) + ")";
  }
  ScopedTraceEvent ev_(opt_.trace, "write_giveup", cycle, mpi_.ctx().now());
  ev_.finish(mpi_.ctx().now());
}

void Engine::observe_async_write(int cycle, sim::Duration d,
                                 std::uint64_t bytes) {
  if (opt_.degrade_slowdown <= 1.0 || degraded_ || bytes == 0) return;
  const double per_byte = static_cast<double>(d) / static_cast<double>(bytes);
  if (best_write_ns_per_byte_ <= 0.0 || per_byte < best_write_ns_per_byte_) {
    best_write_ns_per_byte_ = per_byte;
    return;
  }
  if (per_byte > opt_.degrade_slowdown * best_write_ns_per_byte_) {
    // This aggregator's storage path has gone pathological (straggling
    // server): abandon the aio pipeline, drain remaining cycles blocking.
    degraded_ = true;
    ScopedTraceEvent ev_(opt_.trace, "degrade", cycle, mpi_.ctx().now());
    ev_.finish(mpi_.ctx().now());
  }
}

void Engine::write_init(int cycle, int slot) {
  Slot& s = slots_[slot];
  TPIO_CHECK(!s.wr.valid(), "write_init with an outstanding write on slot");
  TPIO_CHECK(!s.sh.pending, "write_init while the sub-buffer is shuffling");
  if (my_agg_ < 0) return;  // non-aggregator: no write, no trace event
  const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
  if (r.size() == 0) return;
  if (degraded_) {
    // Degraded mode: the aio path on this aggregator is pathological —
    // drain the cycle blocking instead of queueing behind the straggler.
    // The scheduler's later write_wait finds no outstanding op.
    ++faults_.degraded_cycles;
    ScopedTraceEvent ev_(opt_.trace, "write_degraded", cycle,
                         mpi_.ctx().now());
    struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
    write_attempts(cycle, slot, r);
    return;
  }
  ScopedTraceEvent ev_(opt_.trace, "write_init", cycle, mpi_.ctx().now());
  struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
  s.wr_cycle = cycle;
  s.wr_submit = mpi_.ctx().now();
  s.wr_bytes = r.size();
  timed(mpi_.ctx(), t_.write, [&] {
    s.wr = file_.start_write(mpi_.ctx(), node_, r.begin,
                             cb_span(slot).subspan(0, r.size()),
                             /*async=*/true);
  });
}

void Engine::write_wait(int slot) {
  Slot& s = slots_[slot];
  if (!s.wr.valid()) return;  // non-aggregator or empty cycle: no trace event
  const int cycle = s.wr_cycle;
  pfs::IoStatus st = pfs::IoStatus::Ok;
  {
    ScopedTraceEvent ev_(opt_.trace, "write_wait", cycle, mpi_.ctx().now());
    struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
    const sim::Time done = s.wr.completion();
    timed(mpi_.ctx(), t_.write, [&] { st = file_.wait(mpi_.ctx(), s.wr); });
    if (st == pfs::IoStatus::Ok) {
      observe_async_write(cycle, done - s.wr_submit, s.wr_bytes);
    }
  }
  s.wr_cycle = -1;
  if (st == pfs::IoStatus::Ok) return;

  // The asynchronous attempt bounced. The sub-buffer still holds the
  // cycle's payload (the scheduler only reuses a slot after this wait), so
  // re-issue from it — blocking, like a degraded rewrite: the pipeline is
  // already stalled on this cycle, queueing another aio behind a flaky
  // server helps nobody.
  const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
  for (int attempt = 2;; ++attempt) {
    if (attempt > opt_.max_retries + 1) {
      give_up("async write", cycle);
      return;
    }
    retry_backoff(cycle, attempt - 1);
    ScopedTraceEvent ev_(opt_.trace, "write_blocking", cycle,
                         mpi_.ctx().now());
    struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
    timed(mpi_.ctx(), t_.write, [&] {
      pfs::WriteOp op = file_.start_write(mpi_.ctx(), node_, r.begin,
                                          cb_span(slot).subspan(0, r.size()),
                                          /*async=*/false, attempt);
      mpi_.set_unavailable_until(op.completion());
      st = file_.wait(mpi_.ctx(), op);
    });
    if (st == pfs::IoStatus::Ok) return;
  }
}

void Engine::write_attempts(int cycle, int slot, const Plan::Range& r) {
  // Bounded-retry blocking write of [r.begin, r.end) from the slot's
  // sub-buffer: attempt, and on transient failure back off and re-issue
  // until success or give-up.
  for (int attempt = 1;; ++attempt) {
    if (attempt > opt_.max_retries + 1) {
      give_up("blocking write", cycle);
      return;
    }
    if (attempt > 1) retry_backoff(cycle, attempt - 1);
    pfs::IoStatus st = pfs::IoStatus::Ok;
    timed(mpi_.ctx(), t_.write, [&] {
      pfs::WriteOp op = file_.start_write(mpi_.ctx(), node_, r.begin,
                                          cb_span(slot).subspan(0, r.size()),
                                          /*async=*/false, attempt);
      // A blocking pwrite keeps this rank out of the MPI progress engine
      // for its whole duration — the effect the paper identifies as the
      // weakness of communication-only overlap.
      mpi_.set_unavailable_until(op.completion());
      st = file_.wait(mpi_.ctx(), op);
    });
    if (st == pfs::IoStatus::Ok) return;
  }
}

void Engine::write_blocking(int cycle, int slot) {
  Slot& s = slots_[slot];
  TPIO_CHECK(!s.wr.valid(), "blocking write with an outstanding write on slot");
  TPIO_CHECK(!s.sh.pending, "blocking write while the sub-buffer is shuffling");
  if (my_agg_ < 0) return;  // non-aggregator: no write, no trace event
  const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
  if (r.size() == 0) return;
  ScopedTraceEvent ev_(opt_.trace, "write_blocking", cycle, mpi_.ctx().now());
  struct F_ { ScopedTraceEvent& e; smpi::Mpi& m; ~F_() { e.finish(m.ctx().now()); } } f_{ev_, mpi_};
  write_attempts(cycle, slot, r);
}

// ---------------------------------------------------------------------------
// Overlap schedulers (Algorithms 1-4 of the paper + the baseline)
// ---------------------------------------------------------------------------

void Engine::run() {
  if (plan_.num_cycles() == 0) return;
  if (opt_.overlap == OverlapMode::Auto) {
    run_auto();
    return;
  }
  run_scheduler(opt_.overlap, 0);
}

void Engine::run_scheduler(OverlapMode m, int first) {
  switch (m) {
    case OverlapMode::None: run_none(first); return;
    case OverlapMode::Comm: run_comm(first); return;
    case OverlapMode::Write: run_write(first); return;
    case OverlapMode::WriteComm: run_write_comm(first); return;
    case OverlapMode::WriteComm2: run_write_comm2(first); return;
    case OverlapMode::Auto: break;  // not a fixed scheduler
  }
  tpio::fail("run_scheduler needs a fixed overlap mode");
}

void Engine::run_none(int first) {
  // Classic two-phase: fully serial. As the Auto continuation (first > 0)
  // the plan keeps the split-buffer geometry, so slots alternate; every
  // operation is blocking either way.
  for (int c = first; c < plan_.num_cycles(); ++c) {
    shuffle_blocking(c, slot_of(c));
    write_blocking(c, slot_of(c));
  }
}

void Engine::run_comm(int first) {
  // Algorithm 1 (Communication Overlap): non-blocking shuffle, blocking
  // write. The next cycle's shuffle runs behind the current write.
  const int N = plan_.num_cycles();
  shuffle_init(first, slot_of(first));
  for (int c = first; c + 1 < N; ++c) {
    shuffle_init(c + 1, slot_of(c + 1));
    shuffle_wait(slot_of(c));
    write_blocking(c, slot_of(c));
  }
  shuffle_wait(slot_of(N - 1));
  write_blocking(N - 1, slot_of(N - 1));
}

void Engine::run_write(int first) {
  // Algorithm 2 (Write Overlap): blocking shuffle, asynchronous write. The
  // previous cycle's write drains while the next shuffle runs.
  const int N = plan_.num_cycles();
  shuffle_blocking(first, slot_of(first));
  write_init(first, slot_of(first));
  for (int c = first + 1; c < N; ++c) {
    shuffle_blocking(c, slot_of(c));
    write_init(c, slot_of(c));
    write_wait(slot_of(c - 1));
  }
  write_wait(slot_of(N - 1));
}

void Engine::run_write_comm(int first) {
  // Algorithm 3 (Write-Communication Overlap): asynchronous write and
  // non-blocking shuffle posted together, then a joint wait.
  const int N = plan_.num_cycles();
  shuffle_blocking(first, slot_of(first));
  for (int c = first; c < N; ++c) {
    write_init(c, slot_of(c));
    if (c + 1 < N) shuffle_init(c + 1, slot_of(c + 1));
    // wait_all(p1, p2): both the write and the shuffle must finish before
    // the buffers swap. Completing the shuffle first lets its aggregator-
    // side unpack overlap the tail of the in-flight write.
    if (c + 1 < N) shuffle_wait(slot_of(c + 1));
    write_wait(slot_of(c));
  }
}

void Engine::run_write_comm2(int first) {
  // Algorithm 4 (Write-Communication-2 Overlap), data-flow interpretation:
  // the completion of any non-blocking operation immediately posts its
  // follow-up (write after its shuffle, shuffle after the write that frees
  // its sub-buffer) instead of Algorithm 3's joint wait.
  //
  // The paper's listing contains an apparent typo (line 11 re-issues
  // write_init(p1) right before waiting on it); we implement the stated
  // intent — see DESIGN.md, "Notes on fidelity".
  const int N = plan_.num_cycles();
  shuffle_blocking(first, slot_of(first));
  write_init(first, slot_of(first));
  if (first + 1 < N) shuffle_init(first + 1, slot_of(first + 1));
  for (int c = first + 1; c < N; ++c) {
    shuffle_wait(slot_of(c));          // shuffle c finished ...
    write_init(c, slot_of(c));         // ... so its write posts immediately
    write_wait(slot_of(c - 1));        // write c-1 frees sub-buffer ...
    if (c + 1 < N) {
      shuffle_init(c + 1, slot_of(c + 1));  // ... so shuffle c+1 posts
    }
  }
  write_wait(slot_of(N - 1));
}

void Engine::run_auto() {
  const int N = plan_.num_cycles();
  AutoDecision& d = auto_decision_;
  d.engaged = true;

  // The warm-start path lives in collective_write(): a cache hit is
  // resolved *before* planning so the chosen scheduler runs with its
  // native buffer geometry rather than Auto's split sub-buffers. When this
  // engine runs, the cache (if any) missed — probe, decide, and store the
  // fresh decision under the same geometry-independent key.
  std::string key;
  if (!opt_.tuning_cache.empty()) {
    key = platform_signature(plan_.topology(),
                             mpi_.machine().fabric().params(),
                             mpi_.machine().params(), file_.params()) +
          "|" + workload_signature(plan_, opt_);
  }

  // Probe phase: K fully blocking cycles. Even cycles write through the
  // blocking path, odd ones through aio (init + immediate wait), so the
  // stats expose the platform's async-write quality. Blocking probes leave
  // both sub-buffers quiescent — the precondition for any scheduler to
  // take over at the switch boundary.
  const int K = std::min(std::max(opt_.probe_cycles, 1), N);
  d.probe_cycles = K;
  sim::Duration shuffle_ns = 0, write_block_ns = 0, write_async_ns = 0;
  int nblock = 0, nasync = 0;
  for (int c = 0; c < K; ++c) {
    const int slot = slot_of(c);
    const sim::Time s0 = mpi_.ctx().now();
    shuffle_blocking(c, slot);
    shuffle_ns += mpi_.ctx().now() - s0;
    const sim::Time w0 = mpi_.ctx().now();
    if (c % 2 == 0) {
      write_blocking(c, slot);
      write_block_ns += mpi_.ctx().now() - w0;
      ++nblock;
    } else {
      write_init(c, slot);
      write_wait(slot);
      write_async_ns += mpi_.ctx().now() - w0;
      ++nasync;
    }
  }

  // Job-wide consensus: max-reduce the per-cycle averages. Every rank sees
  // the bottleneck aggregator's write costs (non-aggregators report zero)
  // and the slowest rank's shuffle cost, so decide() is identical
  // everywhere. Attributed to meta like the other planning collectives.
  ProbeStats st;
  timed(mpi_.ctx(), t_.meta, [&] {
    st.shuffle_ns = static_cast<double>(mpi_.allreduce_max(
        static_cast<std::uint64_t>(shuffle_ns / K)));
    st.write_block_ns = static_cast<double>(mpi_.allreduce_max(
        static_cast<std::uint64_t>(nblock > 0 ? write_block_ns / nblock : 0)));
    st.write_async_ns = static_cast<double>(mpi_.allreduce_max(
        static_cast<std::uint64_t>(nasync > 0 ? write_async_ns / nasync : 0)));
  });
  st.has_async = nasync > 0 && st.write_async_ns > 0.0;

  d.comm_share = probe_comm_share(st);
  d.aio_ratio = probe_aio_ratio(st);
  d.chosen = decide(st, AutoPolicy::from(opt_));
  // Persist only decisions backed by both write paths; a one-cycle
  // operation never sampled aio and teaches the cache nothing.
  if (!key.empty() && st.has_async && mpi_.rank() == 0) {
    TuningCache::store(opt_.tuning_cache, key, d.chosen);
  }
  if (K < N) run_scheduler(d.chosen, K);
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

Result collective_write(smpi::Mpi& mpi, pfs::File& file, const FileView& view,
                        std::span<const std::byte> data, const Options& opt) {
  view.validate();
  TPIO_CHECK(data.size() == view.total_bytes(),
             "local buffer size does not match the file view");

  Result res;
  const sim::Time start = mpi.ctx().now();

  // Metadata phase, stage 1: allgather the fixed-size view summaries —
  // O(P·32B) per rank instead of the old O(P·view) full-blob allgatherv —
  // and derive the shared geometry skeleton deterministically on every
  // rank.
  PhaseTimings t;
  const sim::Time meta_start = mpi.ctx().now();
  const ViewSummary my_summary = view.summarize();
  std::vector<ViewSummary> summaries;
  {
    const auto blobs =
        mpi.allgather(std::as_bytes(std::span(&my_summary, 1)));
    summaries.resize(blobs.size());
    for (std::size_t r = 0; r < blobs.size(); ++r) {
      std::memcpy(&summaries[r], blobs[r].data(), sizeof(ViewSummary));
    }
  }
  const net::Topology& topo = mpi.machine().fabric().topology();
  const std::uint64_t stripe = file.stripe_size();

  // Warm start (OverlapMode::Auto + tuning cache): resolve the cached
  // decision before planning, so a hit runs the chosen scheduler with its
  // native buffer geometry — a fixed-mode plan, not Auto's split
  // sub-buffers. Rank 0 consults the host file and broadcasts, so every
  // rank replans identically even if cache files diverge across (real)
  // nodes; the broadcast costs virtual time (meta) like any collective.
  Options eff = opt;
  AutoDecision warm;
  if (opt.overlap == OverlapMode::Auto && !opt.tuning_cache.empty()) {
    std::uint64_t global_bytes = 0;
    for (const ViewSummary& s : summaries) global_bytes += s.total_bytes;
    const std::string key =
        platform_signature(topo, mpi.machine().fabric().params(),
                           mpi.machine().params(), file.params()) +
        "|" + workload_signature(topo.nprocs(), global_bytes, opt);
    std::byte msg[2] = {std::byte{0}, std::byte{0}};
    if (mpi.rank() == 0) {
      OverlapMode cached{};
      if (TuningCache::lookup(opt.tuning_cache, key, cached)) {
        msg[0] = std::byte{1};
        msg[1] = static_cast<std::byte>(cached);
      }
    }
    mpi.bcast(msg, 0);
    if (msg[0] == std::byte{1}) {
      warm.engaged = true;
      warm.chosen = static_cast<OverlapMode>(msg[1]);
      warm.from_cache = true;
      eff.overlap = warm.chosen;
    }
  }

  // The skeleton (aggregator map, domains, cycle count) comes from the
  // summaries alone, built once per geometry and shared across ranks.
  std::shared_ptr<const PlanSkeleton> skel =
      PlanCache::get_or_build_skeleton(summaries, topo, stripe, eff);

  // Stage 2: targeted delivery of the full view blobs. Aggregators plan
  // over every source (their incoming_segments walk all views); lane
  // leaders additionally unpack their members' gather pieces, so they pull
  // their lane's rank interval (the whole node at co = 1, where the lane
  // is the node); everyone else keeps only its own view.
  const int me = mpi.rank();
  const int P = topo.nprocs();
  int want_b = 0, want_e = 0;
  if (skel->is_aggregator(me)) {
    want_e = P;
  } else if (eff.hierarchical && skel->is_leader(me)) {
    std::tie(want_b, want_e) =
        skel->lane_rank_range(topo.node_of(me), skel->lane_of(me));
  }
  std::shared_ptr<const Plan> plan;
  {
    auto delivered = mpi.sparse_allgatherv(view.serialize(), want_b, want_e,
                                           eff.dense_metadata);
    if (static_cast<int>(delivered.size()) == P) {
      // Every view held (aggregator, or dense_metadata): share one dense
      // plan per geometry through the memoizing cache, as the legacy
      // single-stage path did — bit-identical to a fresh construction.
      std::vector<std::vector<std::byte>> blobs;
      blobs.reserve(delivered.size());
      for (auto& [r, b] : delivered) blobs.push_back(std::move(b));
      plan = PlanCache::get_or_build(blobs, topo, stripe, eff);
    } else {
      std::vector<std::pair<int, FileView>> held;
      held.reserve(delivered.size());
      for (auto& [r, b] : delivered) {
        held.emplace_back(r, FileView::deserialize(b));
      }
      plan = std::make_shared<const Plan>(skel, std::move(held));
    }
  }
  t.meta += mpi.ctx().now() - meta_start;

  Engine engine(mpi, file, *plan, data, eff, t);
  engine.run();

  t.total = mpi.ctx().now() - start;
  res.timings = t;
  res.autotune = warm.engaged ? warm : engine.auto_decision();
  res.faults = engine.fault_stats();
  res.io_error = engine.io_error();
  res.forward_lifetime = engine.forward_lifetime();
  res.forward_blocked = engine.forward_blocked();
  res.aggregators = plan->num_aggregators();
  res.cycles = plan->num_cycles();
  res.bytes_local = view.total_bytes();
  res.bytes_global = plan->global_bytes();
  return res;
}

}  // namespace tpio::coll
