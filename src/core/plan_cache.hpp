#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/plan.hpp"
#include "core/types.hpp"
#include "net/topology.hpp"

namespace tpio::coll {

/// Process-wide memoization of collective-write/read Plans.
///
/// Every rank of every run derives the same Plan from the exchanged views —
/// P identical constructions per collective call, repeated again for every
/// repetition and sweep point that shares the geometry. A Plan is immutable
/// after construction (const accessors only, no payload), so one instance
/// can safely back any number of concurrent engines; this cache hands out
/// `shared_ptr<const Plan>` keyed by the full input material:
///
///   (serialized views, topology, stripe size, plan-relevant Options)
///
/// The key embeds the exact serialized view blobs every rank already holds
/// after the metadata allgatherv, so two workloads collide only when they
/// are byte-identical — a hit returns a Plan bit-identical to the one the
/// caller would have built. Options enter through the fields the Plan
/// constructor reads: cb_size, the None-vs-split overlap geometry,
/// num_aggregators, stripe_align, hierarchical, and leader_policy.
///
/// Race-free under the sweep executor like the tuning cache: a global
/// mutex serializes lookup-and-build, so the P ranks of one run (and any
/// concurrent sweep workers sharing a geometry) trigger exactly one
/// construction. Memoization is a host-side optimization only — Plan
/// construction never advances the virtual clock, so cached and fresh
/// plans produce identical RunResults.
class PlanCache {
 public:
  /// Return the cached Plan for this key material, building (and caching)
  /// it on a miss. `view_blobs[r]` is rank r's FileView::serialize() blob,
  /// as produced by the metadata allgatherv.
  static std::shared_ptr<const Plan> get_or_build(
      const std::vector<std::vector<std::byte>>& view_blobs,
      const net::Topology& topo, std::uint64_t stripe_size,
      const Options& opt);

  /// Skeleton twin of get_or_build for the two-stage metadata exchange:
  /// keyed by the raw ViewSummary table (O(P·32B)) plus the same topology /
  /// stripe / Options header, so the P ranks of a run trigger exactly one
  /// skeleton construction. Plans themselves are not cached on the sparse
  /// path — each rank's Plan is a thin wrapper (shared skeleton + the few
  /// views delivered to it) whose construction is cheap and whose held set
  /// differs per rank.
  static std::shared_ptr<const PlanSkeleton> get_or_build_skeleton(
      const std::vector<ViewSummary>& summaries, const net::Topology& topo,
      std::uint64_t stripe_size, const Options& opt);

  struct Stats {
    std::uint64_t lookups = 0;
    std::uint64_t hits = 0;
    std::uint64_t entries = 0;  // currently cached plans + skeletons
  };
  static Stats stats();

  /// Drop every cached plan (in-flight shared_ptrs stay valid).
  static void clear();

  /// Test hook: false makes get_or_build construct a fresh Plan every
  /// call, the legacy behaviour. Thread-safe; default true.
  static void set_enabled(bool on);
  static bool enabled();
};

}  // namespace tpio::coll
