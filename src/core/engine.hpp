#pragma once

#include <memory>
#include <span>

#include "core/plan.hpp"
#include "core/types.hpp"
#include "mpi/mpi.hpp"
#include "pfs/pfs.hpp"
#include "simbase/bufpool.hpp"

namespace tpio::coll {

/// Execution engine of one collective write on one rank.
///
/// Owns the two collective sub-buffers (plain memory for two-sided
/// transfers, RMA windows for one-sided ones), implements the shuffle and
/// I/O phases, and sequences them according to the selected overlap
/// algorithm. Constructed and run by coll::collective_write(); exposed for
/// white-box tests of individual phases.
///
/// Resilience: every file write (blocking and asynchronous, all five
/// schedulers) runs under a bounded retry policy — a transiently failed
/// attempt (pfs::FaultParams injection) is re-issued after an exponential
/// backoff on the virtual timeline, up to Options::max_retries times, then
/// abandoned (give-up). With Options::degrade_slowdown set, an aggregator
/// that observes a pathologically slow asynchronous write switches its
/// remaining cycles to blocking writes (degraded mode). All of it is
/// deterministic: decisions derive from seeds and virtual-time
/// observations only, so runs are bit-identical at any worker count.
class Engine {
 public:
  Engine(smpi::Mpi& mpi, pfs::File& file, const Plan& plan,
         std::span<const std::byte> local_data, const Options& opt,
         PhaseTimings& timings);

  /// Execute all cycles with the configured overlap algorithm.
  void run();

  // ----- individual phase operations (also used by tests) -----------------
  /// Hierarchical-mode intra-node gather: the lane leader collects its
  /// lane's ranks' pieces of `cycle` into a per-slot staging buffer
  /// (coalesced, aggregator-major order) over intra-node links. With one
  /// lane per node (local_aggregators == 1) the lane is the whole node and
  /// this is the historical single-leader gather, byte for byte. No-op
  /// unless Options::hierarchical; idempotent per (cycle, slot); called
  /// automatically at the top of shuffle_init. Single-member lanes skip
  /// staging entirely — the direct send path is used unchanged.
  void leader_gather(int cycle, int slot);
  void shuffle_init(int cycle, int slot);
  void shuffle_wait(int slot);
  void shuffle_blocking(int cycle, int slot);
  void write_init(int cycle, int slot);
  void write_wait(int slot);
  void write_blocking(int cycle, int slot);

  /// OverlapMode::Auto only: what the probe phase decided (valid after
  /// run(); engaged == false for fixed overlap modes).
  const AutoDecision& auto_decision() const { return auto_decision_; }

  /// Retry/give-up/degradation counters of this rank (valid after run();
  /// all zero on a fault-free run).
  const FaultStats& fault_stats() const { return faults_; }
  /// First give-up description, empty when every write eventually
  /// succeeded. Mirrored into Result::io_error by collective_write().
  const std::string& io_error() const { return io_error_; }

  /// Pipelined-overlap inputs (two-sided pipelined lane leaders only; both
  /// zero otherwise — in particular on every co = 1 run). The lifetime of
  /// a cycle's forwards spans their post instant to the slot's waitall;
  /// blocked is the part the leader spent posting or waiting on them.
  sim::Duration forward_lifetime() const { return fwd_lifetime_; }
  sim::Duration forward_blocked() const { return fwd_blocked_; }

 private:
  /// One staged multi-segment receive: the source, its pooled landing
  /// buffer, and the segment layout it will be scattered with at
  /// shuffle_wait (computed once at shuffle_init instead of twice).
  struct RecvStage {
    int src = -1;
    sim::BufferPool::Buffer buf;
    std::vector<Segment> segs;
  };
  struct ShuffleState {
    int cycle = -1;
    bool pending = false;
    std::vector<smpi::Request> reqs;
    // Two-sided staging: send buffers (per destination aggregator) must
    // outlive the waitall; receive buffers (per source) are unpacked into
    // the collective buffer at shuffle_wait. Pooled storage, recycled
    // across cycles and runs; the vectors themselves keep their capacity
    // (clear, never reconstruct) so steady-state cycles do not allocate.
    std::vector<sim::BufferPool::Buffer> send_bufs;
    std::vector<RecvStage> recv_bufs;

    void clear() {
      reqs.clear();
      send_bufs.clear();
      recv_bufs.clear();
    }
  };
  struct Slot {
    sim::BufferPool::Buffer cb;          // two-sided sub-buffer (aggregators)
    std::shared_ptr<smpi::Window> win;   // one-sided sub-buffer
    ShuffleState sh;
    pfs::WriteOp wr;
    int wr_cycle = -1;  // cycle of the outstanding write, -1 if none
    sim::Time wr_submit = 0;      // issue time of the outstanding write
    std::uint64_t wr_bytes = 0;   // bytes of the outstanding write
    // Hierarchical mode, leaders of multi-member lanes only: the lane's
    // merged cycle payload, laid out as the concatenation over aggregators
    // of the coalesced lane segments. Forwards (sends/puts) reference this
    // memory, so it stays untouched until the slot's shuffle_wait.
    sim::BufferPool::Buffer stage;
    int gathered_cycle = -1;  // last cycle gathered into this slot
    // Pipelined lane mode (local_aggregators > 1), lane leaders only:
    // when this slot's forwards were posted, and the leader's blocked time
    // while posting them — inputs of the pipelined-overlap stat closed out
    // at the slot's shuffle_wait.
    bool fwd_posted = false;
    sim::Time fwd_begin = 0;
    sim::Duration fwd_post_cost = 0;
  };

  std::span<std::byte> cb_span(int slot);
  /// Segment layout of the message an aggregator receives from `src` for
  /// [lo, hi): per-rank segments on the direct path, the source node's
  /// coalesced union under hierarchy.
  std::vector<Segment> incoming_segments(int src, std::uint64_t lo,
                                         std::uint64_t hi) const;

  // Each scheduler runs cycles [first, num_cycles). `first` > 0 is the
  // Auto continuation: the probe cycles before it completed blocking, so
  // both sub-buffers are quiescent at the handoff boundary and any
  // scheduler can take over mid-operation.
  void run_none(int first);
  void run_comm(int first);        // Algorithm 1
  void run_write(int first);       // Algorithm 2
  void run_write_comm(int first);  // Algorithm 3
  void run_write_comm2(int first); // Algorithm 4 (data-flow interpretation)
  /// Dispatch to the fixed scheduler `m` starting at cycle `first`.
  void run_scheduler(OverlapMode m, int first);
  /// OverlapMode::Auto: consult the tuning cache, else probe, decide,
  /// persist, and hand the remaining cycles to the chosen scheduler.
  void run_auto();

  int slot_of(int cycle) const {
    return opt_.overlap == OverlapMode::None ? 0 : cycle % 2;
  }

  /// CPU cost of packing/unpacking `segs` segments totalling `bytes`.
  sim::Duration pack_cost(std::size_t segs, std::uint64_t bytes) const;

  /// Backoff before re-issuing attempt `attempt + 1` of `cycle`'s write:
  /// Options::retry_backoff * 2^(attempt-1) * (1 + jitter), jitter a pure
  /// function of (fault seed, rank, cycle, attempt).
  sim::Duration backoff_delay(int cycle, int attempt) const;
  /// Advance the virtual clock by backoff_delay, account it, trace it,
  /// count the retry.
  void retry_backoff(int cycle, int attempt);
  /// Record a give-up: count it, set io_error_ (first one wins), trace it.
  void give_up(const char* what, int cycle);
  /// Bounded-retry blocking write of `r` from `slot`'s sub-buffer.
  void write_attempts(int cycle, int slot, const Plan::Range& r);
  /// Feed the degraded-mode detector with one completed asynchronous
  /// write's observed (duration, bytes); may latch degraded_.
  void observe_async_write(int cycle, sim::Duration d, std::uint64_t bytes);

  smpi::Mpi& mpi_;
  pfs::File& file_;
  const Plan& plan_;
  std::span<const std::byte> data_;
  Options opt_;
  PhaseTimings& t_;
  int my_agg_ = -1;  // aggregator index of this rank, or -1
  int node_ = 0;
  // Hierarchical-mode geometry (valid when opt_.hierarchical).
  bool is_leader_ = false;
  int lane_ = 0;                        // this rank's lane within its node
  int lane_first_ = 0, lane_last_ = 0;  // this lane's rank range
  // Options::local_aggregators > 1: per-lane sub-batons replace the
  // whole-node + leader barriers, and lane leaders forward as soon as
  // their own gather completes (timed into PhaseTimings::forward).
  bool pipelined_ = false;
  // Pipelined-overlap inputs (host-side counters, zero virtual cost):
  // summed forward lifetimes and the portion the leader spent blocked.
  sim::Duration fwd_lifetime_ = 0;
  sim::Duration fwd_blocked_ = 0;
  AutoDecision auto_decision_;
  FaultStats faults_;
  std::string io_error_;
  // Degraded mode (Options::degrade_slowdown): once latched, write_init
  // drains cycles through the blocking path instead of the aio pipeline.
  bool degraded_ = false;
  double best_write_ns_per_byte_ = 0.0;  // 0 = no observation yet
  Slot slots_[2];
};

/// Perform a collective write of `data` (laid out per `view`) into `file`,
/// together with every other rank of the job. Collective: all ranks must
/// call with consistent Options.
Result collective_write(smpi::Mpi& mpi, pfs::File& file, const FileView& view,
                        std::span<const std::byte> data, const Options& opt);

}  // namespace tpio::coll
