#include "core/read_engine.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "core/plan_cache.hpp"
#include "core/segcopy.hpp"
#include "simbase/bufpool.hpp"
#include "simbase/error.hpp"

namespace tpio::coll {

namespace {

template <class F>
void timed(sim::RankCtx& ctx, sim::Duration& field, F&& fn) {
  const sim::Time before = ctx.now();
  fn();
  field += ctx.now() - before;
}

/// Scatter tags live in their own space so interleaved collective writes
/// and reads on one machine can never cross-match.
smpi::Tag scatter_tag(int cycle) {
  return static_cast<smpi::Tag>(cycle) | (smpi::Tag{1} << 30);
}

}  // namespace

ReadEngine::ReadEngine(smpi::Mpi& mpi, pfs::File& file, const Plan& plan,
                       std::span<std::byte> local_out, const Options& opt,
                       PhaseTimings& timings)
    : mpi_(mpi),
      file_(file),
      plan_(plan),
      out_(local_out),
      opt_(opt),
      t_(timings) {
  TPIO_CHECK(opt.transfer == Transfer::TwoSided,
             "collective read implements the two-sided scatter only");
  TPIO_CHECK(out_.size() == plan.view(mpi.rank()).total_bytes(),
             "output buffer size does not match the file view");
  my_agg_ = plan_.agg_index(mpi_.rank());
  node_ = mpi_.machine().fabric().topology().node_of(mpi_.rank());
  if (my_agg_ >= 0) {
    const int nslots = opt_.overlap == OverlapMode::None ? 1 : 2;
    for (int s = 0; s < nslots; ++s) {
      // start_read always defines every byte of the span it is handed
      // (zero-fill plus stored-content overlay), so the pooled sub-buffer
      // needs no zeroing even with materialized contents.
      slots_[s].cb = sim::BufferPool::local().acquire(
          plan_.sub_buffer_bytes(), /*zeroed=*/false);
    }
  }
}

sim::Duration ReadEngine::pack_cost(std::size_t segs,
                                    std::uint64_t bytes) const {
  return static_cast<sim::Duration>(segs) * opt_.seg_cpu +
         sim::transfer_time(bytes, opt_.pack_bw);
}

// ---------------------------------------------------------------------------
// File access phase
// ---------------------------------------------------------------------------

sim::Duration ReadEngine::backoff_delay(int cycle, int attempt) const {
  const int exp = std::min(attempt - 1, 16);
  const auto scaled = static_cast<sim::Duration>(
      opt_.retry_backoff * (sim::Duration{1} << exp));
  // Pure function of (fault seed, rank, cycle, attempt); the salt differs
  // from the write engine's so interleaved reads and writes never share a
  // jitter draw.
  sim::Rng rng(sim::Rng::derive_seed(
      sim::Rng::derive_seed(file_.faults().params().seed ^ 0x5EB0FFull,
                            static_cast<std::uint64_t>(mpi_.rank())),
      (static_cast<std::uint64_t>(static_cast<std::uint32_t>(cycle)) << 8) ^
          static_cast<std::uint64_t>(attempt)));
  return scaled +
         static_cast<sim::Duration>(std::llround(
             rng.next_double() * static_cast<double>(scaled)));
}

void ReadEngine::retry_backoff(int cycle, int attempt) {
  ++faults_.retries;
  timed(mpi_.ctx(), t_.backoff,
        [&] { mpi_.ctx().advance(backoff_delay(cycle, attempt)); });
}

void ReadEngine::give_up(int cycle) {
  ++faults_.giveups;
  if (io_error_.empty()) {
    io_error_ = "collective read gave up after " +
                std::to_string(opt_.max_retries + 1) + " attempts (cycle " +
                std::to_string(cycle) + ", rank " +
                std::to_string(mpi_.rank()) + ")";
  }
}

void ReadEngine::read_attempts(int cycle, int slot, const Plan::Range& r,
                               int first) {
  Slot& s = slots_[slot];
  for (int attempt = first;; ++attempt) {
    if (attempt > opt_.max_retries + 1) {
      give_up(cycle);
      return;
    }
    if (attempt > first) retry_backoff(cycle, attempt - 1);
    pfs::IoStatus st = pfs::IoStatus::Ok;
    timed(mpi_.ctx(), t_.write, [&] {
      pfs::WriteOp op = file_.start_read(
          mpi_.ctx(), node_, r.begin, s.cb.span().subspan(0, r.size()),
          /*async=*/false, attempt);
      mpi_.set_unavailable_until(op.completion());
      st = file_.wait(mpi_.ctx(), op);
    });
    if (st == pfs::IoStatus::Ok) return;
  }
}

void ReadEngine::read_init(int cycle, int slot) {
  Slot& s = slots_[slot];
  TPIO_CHECK(!s.rd.valid(), "read_init with an outstanding read on slot");
  TPIO_CHECK(!s.sc.pending,
             "read_init into a sub-buffer still being scattered");
  s.rd_cycle = cycle;
  if (my_agg_ < 0) return;
  const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
  if (r.size() == 0) return;
  timed(mpi_.ctx(), t_.write, [&] {
    s.rd = file_.start_read(mpi_.ctx(), node_, r.begin,
                            s.cb.span().subspan(0, r.size()),
                            /*async=*/true);
  });
}

void ReadEngine::read_wait(int slot) {
  Slot& s = slots_[slot];
  if (!s.rd.valid()) return;
  pfs::IoStatus st = pfs::IoStatus::Ok;
  timed(mpi_.ctx(), t_.write, [&] { st = file_.wait(mpi_.ctx(), s.rd); });
  if (st == pfs::IoStatus::Ok) return;
  // The asynchronous attempt bounced; re-read the cycle's range blocking
  // (the sub-buffer is only consumed after this wait), continuing the
  // attempt numbering so the fault oracle sees the retry as attempt 2.
  const Plan::Range r = plan_.cycle_range(my_agg_, s.rd_cycle);
  retry_backoff(s.rd_cycle, 1);
  read_attempts(s.rd_cycle, slot, r, /*first=*/2);
}

void ReadEngine::read_blocking(int cycle, int slot) {
  Slot& s = slots_[slot];
  TPIO_CHECK(!s.rd.valid(), "blocking read with an outstanding read on slot");
  TPIO_CHECK(!s.sc.pending,
             "blocking read into a sub-buffer still being scattered");
  s.rd_cycle = cycle;
  if (my_agg_ < 0) return;
  const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
  if (r.size() == 0) return;
  read_attempts(cycle, slot, r);
}

// ---------------------------------------------------------------------------
// Scatter (shuffle) phase
// ---------------------------------------------------------------------------

void ReadEngine::scatter_init(int cycle, int slot) {
  Slot& s = slots_[slot];
  TPIO_CHECK(!s.sc.pending, "scatter_init while a scatter is pending on slot");
  TPIO_CHECK(!s.rd.valid(),
             "scatter_init from a sub-buffer with an outstanding read");
  TPIO_CHECK(my_agg_ < 0 || s.rd_cycle == cycle,
             "scatter_init without the cycle's data in the sub-buffer");
  s.sc.clear();  // keeps vector capacity: steady-state cycles don't allocate
  s.sc.cycle = cycle;
  s.sc.pending = true;
  const int me = mpi_.rank();
  const smpi::Tag tag = scatter_tag(cycle);
  const int A = plan_.num_aggregators();
  s.sc.reqs.reserve(static_cast<std::size_t>(A) +
                    (my_agg_ >= 0 ? static_cast<std::size_t>(mpi_.size()) : 0));
  s.sc.recv_bufs.reserve(static_cast<std::size_t>(A));

  // Receive side first (pre-post): one message per aggregator that holds
  // pieces of this rank's view in this cycle. A destination whose pieces
  // form one contiguous local run — always the case for a cycle range, see
  // segcopy.hpp — receives straight into the output buffer; the unpack CPU
  // is still charged at scatter_wait from the retained segment list.
  for (int a = 0; a < A; ++a) {
    const Plan::Range r = plan_.cycle_range(a, cycle);
    auto segs = plan_.segments_in(me, r.begin, r.end);
    if (segs.empty()) continue;
    std::span<std::byte> dest;
    if (segs.size() == 1) {
      dest = out_.subspan(segs[0].local_offset, segs[0].length);
    } else {
      std::uint64_t n = 0;
      for (const Segment& g : segs) n += g.length;
      const segcopy::LocalRun run = segcopy::coalescing()
                                        ? segcopy::local_run(segs)
                                        : segcopy::LocalRun{};
      RecvStage st;
      st.agg = a;
      if (!run.ok) st.buf = sim::BufferPool::local().acquire(n, false);
      st.segs = std::move(segs);
      s.sc.recv_bufs.push_back(std::move(st));
      RecvStage& back = s.sc.recv_bufs.back();
      dest = run.ok ? out_.subspan(run.local_offset, run.total)
                    : back.buf.span();
    }
    timed(mpi_.ctx(), t_.shuffle, [&] {
      s.sc.reqs.push_back(mpi_.irecv(plan_.agg_rank(a), tag, dest));
    });
  }

  // Send side (aggregators): each destination's pieces, gathered from the
  // collective buffer; destinations whose pieces are contiguous in the
  // file go zero-copy (a slice of the sub-buffer), scattered ones are
  // packed with one copy per file-contiguous run.
  if (my_agg_ >= 0) {
    const Plan::Range r = plan_.cycle_range(my_agg_, cycle);
    std::span<std::byte> cb = s.cb.span();
    s.sc.send_bufs.reserve(static_cast<std::size_t>(mpi_.size()));
    for (int dst = 0; dst < mpi_.size(); ++dst) {
      const auto segs = plan_.segments_in(dst, r.begin, r.end);
      if (segs.empty()) continue;
      std::span<const std::byte> payload;
      if (segs.size() == 1) {
        payload = cb.subspan(segs[0].file_offset - r.begin, segs[0].length);
      } else {
        std::uint64_t total = 0;
        for (const Segment& g : segs) total += g.length;
        bool file_run = segcopy::coalescing();
        for (std::size_t i = 1; file_run && i < segs.size(); ++i) {
          file_run = segs[i].file_offset ==
                     segs[i - 1].file_offset + segs[i - 1].length;
        }
        if (file_run) {
          // The packed message is a contiguous slice of the sub-buffer;
          // the slice is stable until this slot's scatter_wait.
          payload = cb.subspan(segs[0].file_offset - r.begin, total);
        } else {
          sim::BufferPool::Buffer buf =
              sim::BufferPool::local().acquire(total, /*zeroed=*/false);
          if (opt_.materialize) {
            std::uint64_t pos = 0;
            segcopy::for_file_runs(
                segs, [&](std::size_t, std::size_t, std::uint64_t off,
                          std::uint64_t len) {
                  std::memcpy(buf.data() + pos,
                              cb.data() + (off - r.begin), len);
                  pos += len;
                });
          }
          s.sc.send_bufs.push_back(std::move(buf));
          payload = s.sc.send_bufs.back().span();
        }
        timed(mpi_.ctx(), t_.pack,
              [&] { mpi_.ctx().advance(pack_cost(segs.size(), total)); });
      }
      timed(mpi_.ctx(), t_.shuffle,
            [&] { s.sc.reqs.push_back(mpi_.isend(dst, tag, payload)); });
    }
  }
}

void ReadEngine::scatter_wait(int slot) {
  Slot& s = slots_[slot];
  TPIO_CHECK(s.sc.pending, "scatter_wait without a pending scatter");
  s.sc.pending = false;
  timed(mpi_.ctx(), t_.shuffle, [&] { mpi_.waitall(s.sc.reqs); });
  // Unpack staged multi-segment messages into the local view buffer
  // (direct-landed ones only charge the unpack CPU — the bytes are already
  // in place, in the same order the staged unpack would produce).
  if (!s.sc.recv_bufs.empty()) {
    std::size_t nsegs = 0;
    std::uint64_t bytes = 0;
    for (const RecvStage& st : s.sc.recv_bufs) {
      std::uint64_t pos = 0;
      if (st.buf.empty()) {
        for (const Segment& g : st.segs) pos += g.length;
      } else {
        segcopy::for_local_runs(
            st.segs, [&](std::size_t, std::size_t, std::uint64_t off,
                         std::uint64_t len) {
              if (opt_.materialize) {
                std::memcpy(out_.data() + off, st.buf.data() + pos, len);
              }
              pos += len;
            });
        TPIO_CHECK(pos == st.buf.size(), "scatter unpack size mismatch");
      }
      nsegs += st.segs.size();
      bytes += pos;
    }
    timed(mpi_.ctx(), t_.pack,
          [&] { mpi_.ctx().advance(pack_cost(nsegs, bytes)); });
  }
  s.sc.clear();
}

void ReadEngine::scatter_blocking(int cycle, int slot) {
  scatter_init(cycle, slot);
  scatter_wait(slot);
}

// ---------------------------------------------------------------------------
// Schedulers (mirrors of the write engine's Algorithms 1-4)
// ---------------------------------------------------------------------------

void ReadEngine::run() {
  if (plan_.num_cycles() == 0) return;
  switch (opt_.overlap) {
    case OverlapMode::None: run_none(); break;
    case OverlapMode::Comm: run_comm(); break;
    case OverlapMode::Write: run_read_ahead(); break;
    case OverlapMode::WriteComm: run_read_comm(); break;
    case OverlapMode::WriteComm2: run_read_comm2(); break;
    // Probe-based selection is a write-side feature (the paper's analysis
    // is of collective writes); reads fall back to the data-flow scheduler.
    case OverlapMode::Auto: run_read_comm2(); break;
  }
}

void ReadEngine::run_none() {
  for (int c = 0; c < plan_.num_cycles(); ++c) {
    read_blocking(c, 0);
    scatter_blocking(c, 0);
  }
}

void ReadEngine::run_comm() {
  // Non-blocking scatter of cycle c overlaps the blocking read of c+1.
  const int N = plan_.num_cycles();
  read_blocking(0, slot_of(0));
  for (int c = 0; c < N; ++c) {
    scatter_init(c, slot_of(c));
    if (c + 1 < N) read_blocking(c + 1, slot_of(c + 1));
    scatter_wait(slot_of(c));
  }
}

void ReadEngine::run_read_ahead() {
  // Asynchronous read of cycle c+1 behind the blocking scatter of c.
  const int N = plan_.num_cycles();
  read_init(0, slot_of(0));
  for (int c = 0; c < N; ++c) {
    read_wait(slot_of(c));
    if (c + 1 < N) read_init(c + 1, slot_of(c + 1));
    scatter_blocking(c, slot_of(c));
  }
}

void ReadEngine::run_read_comm() {
  // Joint wait of the in-flight read and scatter each iteration.
  const int N = plan_.num_cycles();
  read_blocking(0, slot_of(0));
  for (int c = 0; c < N; ++c) {
    scatter_init(c, slot_of(c));
    if (c + 1 < N) read_init(c + 1, slot_of(c + 1));
    if (c + 1 < N) read_wait(slot_of(c + 1));
    scatter_wait(slot_of(c));
  }
}

void ReadEngine::run_read_comm2() {
  // Data-flow: a completed read immediately posts its scatter; a completed
  // scatter immediately frees its slot for the next read.
  const int N = plan_.num_cycles();
  read_blocking(0, slot_of(0));
  scatter_init(0, slot_of(0));
  if (N > 1) read_init(1, slot_of(1));
  for (int c = 1; c < N; ++c) {
    read_wait(slot_of(c));
    scatter_init(c, slot_of(c));
    scatter_wait(slot_of(c - 1));
    if (c + 1 < N) read_init(c + 1, slot_of(c + 1));
  }
  scatter_wait(slot_of(N - 1));
}

// ---------------------------------------------------------------------------
// Facade
// ---------------------------------------------------------------------------

Result collective_read(smpi::Mpi& mpi, pfs::File& file, const FileView& view,
                       std::span<std::byte> out, const Options& opt) {
  view.validate();
  TPIO_CHECK(out.size() == view.total_bytes(),
             "output buffer size does not match the file view");

  Result res;
  const sim::Time start = mpi.ctx().now();
  PhaseTimings t;
  const sim::Time meta_start = mpi.ctx().now();

  // Two-stage metadata exchange, mirroring collective_write: summaries
  // first (fixed 32B per rank), then full views only to the aggregators
  // that scatter over every destination view. The read path is flat (no
  // hierarchical routing), so non-aggregators keep just their own view.
  const net::Topology& topo = mpi.machine().fabric().topology();
  const std::uint64_t stripe = file.stripe_size();
  const ViewSummary my_summary = view.summarize();
  std::vector<ViewSummary> summaries;
  {
    const auto blobs =
        mpi.allgather(std::as_bytes(std::span(&my_summary, 1)));
    summaries.resize(blobs.size());
    for (std::size_t r = 0; r < blobs.size(); ++r) {
      std::memcpy(&summaries[r], blobs[r].data(), sizeof(ViewSummary));
    }
  }
  std::shared_ptr<const PlanSkeleton> skel =
      PlanCache::get_or_build_skeleton(summaries, topo, stripe, opt);
  const int P = topo.nprocs();
  const bool agg = skel->is_aggregator(mpi.rank());
  std::shared_ptr<const Plan> plan;
  {
    auto delivered = mpi.sparse_allgatherv(
        view.serialize(), 0, agg ? P : 0, opt.dense_metadata);
    if (static_cast<int>(delivered.size()) == P) {
      std::vector<std::vector<std::byte>> blobs;
      blobs.reserve(delivered.size());
      for (auto& [r, b] : delivered) blobs.push_back(std::move(b));
      plan = PlanCache::get_or_build(blobs, topo, stripe, opt);
    } else {
      std::vector<std::pair<int, FileView>> held;
      held.reserve(delivered.size());
      for (auto& [r, b] : delivered) {
        held.emplace_back(r, FileView::deserialize(b));
      }
      plan = std::make_shared<const Plan>(skel, std::move(held));
    }
  }
  t.meta += mpi.ctx().now() - meta_start;

  ReadEngine engine(mpi, file, *plan, out, opt, t);
  engine.run();

  t.total = mpi.ctx().now() - start;
  res.timings = t;
  res.faults = engine.fault_stats();
  res.io_error = engine.io_error();
  res.aggregators = plan->num_aggregators();
  res.cycles = plan->num_cycles();
  res.bytes_local = view.total_bytes();
  res.bytes_global = plan->global_bytes();
  return res;
}

}  // namespace tpio::coll
