#include "core/types.hpp"

#include <algorithm>
#include <cstring>

#include "simbase/error.hpp"

namespace tpio::coll {

void FileView::validate() const {
  std::uint64_t prev_end = 0;
  bool first = true;
  for (const Extent& e : extents) {
    TPIO_CHECK(e.length > 0, "file view contains an empty extent");
    TPIO_CHECK(first || e.offset >= prev_end,
               "file view extents unsorted or overlapping");
    TPIO_CHECK(e.offset + e.length >= e.offset, "extent overflows uint64");
    prev_end = e.end();
    first = false;
  }
}

ViewSummary FileView::summarize() const {
  ViewSummary s;
  for (const Extent& e : extents) {
    s.first_offset = std::min(s.first_offset, e.offset);
    s.last_end = std::max(s.last_end, e.end());
    s.total_bytes += e.length;
  }
  s.extent_count = extents.size();
  return s;
}

std::vector<std::byte> FileView::serialize() const {
  std::vector<std::byte> out(extents.size() * sizeof(Extent));
  if (!extents.empty()) {
    std::memcpy(out.data(), extents.data(), out.size());
  }
  return out;
}

std::uint64_t FileView::blob_total_bytes(const std::vector<std::byte>& blob) {
  TPIO_CHECK(blob.size() % sizeof(Extent) == 0, "corrupt file-view blob");
  std::uint64_t total = 0;
  for (std::size_t off = 0; off < blob.size(); off += sizeof(Extent)) {
    Extent e;
    std::memcpy(&e, blob.data() + off, sizeof(Extent));
    total += e.length;
  }
  return total;
}

FileView FileView::deserialize(const std::vector<std::byte>& blob) {
  TPIO_CHECK(blob.size() % sizeof(Extent) == 0, "corrupt file-view blob");
  FileView v;
  v.extents.resize(blob.size() / sizeof(Extent));
  if (!blob.empty()) {
    std::memcpy(v.extents.data(), blob.data(), blob.size());
  }
  return v;
}

const char* to_string(OverlapMode m) {
  switch (m) {
    case OverlapMode::None: return "no-overlap";
    case OverlapMode::Comm: return "comm-overlap";
    case OverlapMode::Write: return "write-overlap";
    case OverlapMode::WriteComm: return "write-comm-overlap";
    case OverlapMode::WriteComm2: return "write-comm-2-overlap";
    case OverlapMode::Auto: return "auto";
  }
  return "?";
}

const char* to_string(Transfer t) {
  switch (t) {
    case Transfer::TwoSided: return "two-sided";
    case Transfer::OneSidedFence: return "one-sided-fence";
    case Transfer::OneSidedLock: return "one-sided-lock";
  }
  return "?";
}

const char* to_string(LeaderPolicy p) {
  switch (p) {
    case LeaderPolicy::Lowest: return "lowest";
    case LeaderPolicy::Spread: return "spread";
    case LeaderPolicy::Superset: return "superset";
  }
  return "?";
}

PhaseTimings& PhaseTimings::operator+=(const PhaseTimings& o) {
  meta += o.meta;
  pack += o.pack;
  gather += o.gather;
  forward += o.forward;
  shuffle += o.shuffle;
  sync += o.sync;
  write += o.write;
  backoff += o.backoff;
  total += o.total;
  return *this;
}

FaultStats& FaultStats::operator+=(const FaultStats& o) {
  retries += o.retries;
  giveups += o.giveups;
  degraded_cycles += o.degraded_cycles;
  return *this;
}

}  // namespace tpio::coll
