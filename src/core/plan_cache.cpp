#include "core/plan_cache.hpp"

#include <atomic>
#include <cstring>
#include <mutex>
#include <string>
#include <unordered_map>

namespace tpio::coll {

namespace {

std::atomic<bool> g_enabled{true};
std::atomic<std::uint64_t> g_lookups{0};
std::atomic<std::uint64_t> g_hits{0};

struct CacheState {
  std::mutex mu;
  std::unordered_map<std::string, std::shared_ptr<const Plan>> plans;
  std::unordered_map<std::string, std::shared_ptr<const PlanSkeleton>>
      skeletons;
  // Bound the footprint: past this many distinct geometries the cache is
  // simply cleared (in-use plans stay alive through their shared_ptrs).
  static constexpr std::size_t kMaxEntries = 256;
};

CacheState& state() {
  static CacheState* s = new CacheState;
  return *s;
}

void append_u64(std::string& key, std::uint64_t v) {
  char buf[sizeof v];
  std::memcpy(buf, &v, sizeof v);
  key.append(buf, sizeof v);
}

/// Shared key header: every non-view input the Plan/PlanSkeleton
/// constructors read, serialized verbatim.
void append_header(std::string& key, const net::Topology& topo,
                   std::uint64_t stripe, const Options& opt) {
  append_u64(key, static_cast<std::uint64_t>(topo.nodes));
  append_u64(key, static_cast<std::uint64_t>(topo.procs_per_node));
  append_u64(key, static_cast<std::uint64_t>(topo.rank_offset));
  append_u64(key, static_cast<std::uint64_t>(topo.nprocs()));
  append_u64(key, stripe);
  append_u64(key, opt.cb_size);
  append_u64(key, opt.overlap == OverlapMode::None ? 0 : 1);  // split geometry
  append_u64(key, static_cast<std::uint64_t>(opt.num_aggregators));
  append_u64(key, static_cast<std::uint64_t>(opt.local_aggregators));
  append_u64(key, (opt.stripe_align ? 1u : 0u) | (opt.hierarchical ? 2u : 0u) |
                      (opt.leader_policy == LeaderPolicy::Spread ? 4u : 0u) |
                      (opt.leader_policy == LeaderPolicy::Superset ? 8u : 0u));
}

/// Exact key material: every input the Plan constructor reads, serialized
/// verbatim (binary string; collisions require byte-identical inputs).
std::string make_key(const std::vector<std::vector<std::byte>>& blobs,
                     const net::Topology& topo, std::uint64_t stripe,
                     const Options& opt) {
  std::size_t total = 11 * sizeof(std::uint64_t);
  for (const auto& b : blobs) total += b.size() + sizeof(std::uint64_t);
  std::string key;
  key.reserve(total);
  append_header(key, topo, stripe, opt);
  for (const auto& b : blobs) {
    append_u64(key, b.size());
    key.append(reinterpret_cast<const char*>(b.data()), b.size());
  }
  return key;
}

/// Skeleton key: the same header plus the raw summary table (trivially
/// copyable, fixed 32 bytes per rank).
std::string make_skeleton_key(const std::vector<ViewSummary>& summaries,
                              const net::Topology& topo, std::uint64_t stripe,
                              const Options& opt) {
  std::string key;
  key.reserve(11 * sizeof(std::uint64_t) +
              summaries.size() * sizeof(ViewSummary));
  append_header(key, topo, stripe, opt);
  if (!summaries.empty()) {
    key.append(reinterpret_cast<const char*>(summaries.data()),
               summaries.size() * sizeof(ViewSummary));
  }
  return key;
}

std::shared_ptr<const Plan> build(
    const std::vector<std::vector<std::byte>>& blobs,
    const net::Topology& topo, std::uint64_t stripe, const Options& opt) {
  std::vector<FileView> views;
  views.reserve(blobs.size());
  for (const auto& b : blobs) views.push_back(FileView::deserialize(b));
  return std::make_shared<const Plan>(std::move(views), topo, stripe, opt);
}

}  // namespace

std::shared_ptr<const Plan> PlanCache::get_or_build(
    const std::vector<std::vector<std::byte>>& view_blobs,
    const net::Topology& topo, std::uint64_t stripe_size, const Options& opt) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return build(view_blobs, topo, stripe_size, opt);
  }
  g_lookups.fetch_add(1, std::memory_order_relaxed);
  std::string key = make_key(view_blobs, topo, stripe_size, opt);
  CacheState& s = state();
  // The mutex is held across the build on purpose: concurrent ranks of one
  // run present the same key, and one construction should serve them all.
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.plans.find(key);
  if (it != s.plans.end()) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  if (s.plans.size() >= CacheState::kMaxEntries) s.plans.clear();
  auto plan = build(view_blobs, topo, stripe_size, opt);
  s.plans.emplace(std::move(key), plan);
  return plan;
}

std::shared_ptr<const PlanSkeleton> PlanCache::get_or_build_skeleton(
    const std::vector<ViewSummary>& summaries, const net::Topology& topo,
    std::uint64_t stripe_size, const Options& opt) {
  if (!g_enabled.load(std::memory_order_relaxed)) {
    return std::make_shared<const PlanSkeleton>(summaries, topo, stripe_size,
                                                opt);
  }
  g_lookups.fetch_add(1, std::memory_order_relaxed);
  std::string key = make_skeleton_key(summaries, topo, stripe_size, opt);
  CacheState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  auto it = s.skeletons.find(key);
  if (it != s.skeletons.end()) {
    g_hits.fetch_add(1, std::memory_order_relaxed);
    return it->second;
  }
  if (s.skeletons.size() >= CacheState::kMaxEntries) s.skeletons.clear();
  auto skel = std::make_shared<const PlanSkeleton>(summaries, topo,
                                                   stripe_size, opt);
  s.skeletons.emplace(std::move(key), skel);
  return skel;
}

PlanCache::Stats PlanCache::stats() {
  Stats st;
  st.lookups = g_lookups.load(std::memory_order_relaxed);
  st.hits = g_hits.load(std::memory_order_relaxed);
  CacheState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  st.entries = s.plans.size() + s.skeletons.size();
  return st;
}

void PlanCache::clear() {
  CacheState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.plans.clear();
  s.skeletons.clear();
}

void PlanCache::set_enabled(bool on) {
  g_enabled.store(on, std::memory_order_relaxed);
}

bool PlanCache::enabled() { return g_enabled.load(std::memory_order_relaxed); }

}  // namespace tpio::coll
