#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

namespace tpio::xp {

/// One independent unit of sweep work: a stable key (unique within the
/// sweep; used for checkpointing and progress display) plus the closure
/// that produces its measurement. Jobs must be independent — each derives
/// its own seeds — so they can run concurrently in any order.
struct SweepJob {
  std::string key;
  /// Produces the job's scalar measurement — conventionally the series
  /// minimum in milliseconds, but any deterministic double works (the
  /// fault-resilience driver returns retry counts). Checkpoints store the
  /// value verbatim, so it must be reproducible from the job's own seeds.
  std::function<double()> run;
};

/// Execution policy of a sweep.
struct ExecOptions {
  /// Worker threads. 0 = hardware concurrency; 1 = run jobs inline on the
  /// calling thread in input order (the historical serial path). Because
  /// every job derives its own seeds, any value produces bit-identical
  /// result tables — only wall-clock changes.
  int jobs = 0;
  /// Live progress to stderr: jobs done/total, ETA, and the key of the
  /// longest-running in-flight job (the current bottleneck config).
  bool progress = false;
  /// Path of a JSON checkpoint file; empty disables checkpointing. Jobs
  /// already recorded in a matching checkpoint are not re-run; their
  /// results are merged from the file. The file is rewritten atomically as
  /// jobs complete, so an interrupted sweep resumes where it stopped.
  std::string checkpoint;
  /// Identifies the sweep grid (kind, platform, seed, reps, quick, plus
  /// any hierarchical/auto variants and the fault scenario — see
  /// pfs::fault_tag — so results measured under different physics can
  /// never be spliced together).
  /// run_jobs refuses to resume from a checkpoint whose manifest — or whose
  /// recorded grid signature (job count + key fingerprint) — differs from
  /// the current run: splicing results from a different grid would corrupt
  /// the tables silently, so a stale file is an error the user must clear,
  /// not something to paper over. Unparseable files (absent, truncated,
  /// foreign format) are simply overwritten.
  std::string manifest;
};

/// Effective worker count for a requested `jobs` value (0 -> hardware).
/// Always >= 1, even on platforms where hardware_concurrency() reports 0
/// (the standard permits it when the count is not computable).
int resolve_jobs(int jobs);

/// Worker count run_jobs actually launches: resolve_jobs(jobs) clamped to
/// the grid size (never more workers than jobs, never fewer than 1).
/// Exposed for tests.
int effective_workers(int jobs, std::size_t grid_jobs);

/// Run every job and return the results in input order, regardless of
/// completion order. With opt.jobs == 1 the jobs execute inline on the
/// calling thread; otherwise a bounded std::jthread pool drains them.
/// A job that throws aborts the sweep (the first exception is rethrown
/// after the pool winds down) — partial results are still checkpointed.
std::vector<double> run_jobs(const std::vector<SweepJob>& jobs,
                             const ExecOptions& opt);

// ---------------------------------------------------------------------------
// Checkpoint file format (exposed for tests and external tooling)
// ---------------------------------------------------------------------------

/// In-memory image of a sweep checkpoint: the grid manifest, the grid
/// signature it was written against, and the completed jobs' results by
/// key.
struct Checkpoint {
  std::string manifest;
  std::string grid;  // grid_signature() of the jobs this file belongs to
  std::map<std::string, double> done;
};

/// Structural fingerprint of a job grid: the job count plus an FNV-1a hash
/// over the ordered job keys. Two grids with the same manifest string but
/// different cases, mode sets, or orderings get different signatures.
std::string grid_signature(const std::vector<SweepJob>& jobs);

/// Load `path`; returns false (and leaves `out` empty) when the file is
/// absent or not a checkpoint this writer produced.
bool checkpoint_load(const std::string& path, Checkpoint& out);

/// Write `cp` to `path` atomically (temp file + rename).
void checkpoint_save(const std::string& path, const Checkpoint& cp);

}  // namespace tpio::xp
