#pragma once

#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/tenancy.hpp"
#include "sched/conductor.hpp"

namespace tpio::xp {

/// Parsed command line of the `tpio_sim` tool. Kept separate from the
/// binary so the parsing rules are unit-testable.
struct CliConfig {
  RunSpec spec;
  int reps = 3;
  std::uint64_t seed_base = 1;
  /// Multi-tenant shape (--tenants > 1 switches tpio_sim to the shared
  /// system): the measured spec runs as tenant 0 and each extra tenant
  /// clones it with the NoOverlap scheduler — a same-shape background
  /// writer hammering the same storage targets.
  int tenants = 1;
  ArrivalSpec arrival;
  pfs::QosPolicy qos = pfs::QosPolicy::Fifo;
  /// Rank execution substrate (--conductor); the binary installs it as the
  /// process default before running.
  sim::ConductorBackend conductor = sim::Conductor::default_backend();
  bool quick_help = false;
  std::string error;  // non-empty = parse failure (message for the user)
};

/// Parse `tpio_sim` arguments:
///   --platform crill|ibex|lustre     (default ibex)
///   --workload ior|tile256|tile1m|flash  (default tile1m)
///   --procs N                        (default 64)
///   --bytes-per-proc SIZE            (workload-dependent default)
///   --cb SIZE                        (default 4M)
///   --overlap none|comm|write|write-comm|write-comm-2|auto
///                                    (default write-comm-2)
///   --transfer two-sided|fence|lock  (default two-sided)
///   --aggregators N                  (default auto)
///   --probe-cycles N                 (OverlapMode::Auto probes, default 4)
///   --tuning-cache FILE              (OverlapMode::Auto decision cache)
///   --hierarchical                   (two-level shuffle, off by default)
///   --leader lowest|spread           (default lowest)
///   --reps N                         (default 3)
///   --seed N                         (default 1)
///   --verify                         (off by default)
///   --fault-rate R                   (per-attempt write-failure prob., 0)
///   --fault-seed N                   (fault-scenario seed, default 1)
///   --fail-until N                   (attempts 1..N-1 of every op fail)
///   --straggler F                    (service multiplier of slow targets)
///   --straggler-targets N            (how many targets straggle, 0)
///   --straggler-after MS             (virtual onset of the slowdown, 0)
///   --max-retries N                  (retry budget per op, default 4)
///   --degrade F                      (degraded-mode trigger ratio, off)
///   --conductor fibers|threads       (rank substrate, default fibers)
///   --help
/// Sizes accept K/M/G suffixes. Unknown flags, non-numeric / overflowing /
/// non-positive counts and zero byte-sizes all produce an error.
CliConfig parse_cli(const std::vector<std::string>& args);

/// Strict decimal integer parse shared by the CLI front ends: the whole
/// string must be consumed, the value must fit a long long and lie in
/// [lo, hi]. Returns false (leaving `out` untouched) otherwise.
bool parse_int_arg(const std::string& s, long long lo, long long hi,
                   long long& out);
/// Same strictness for unsigned 64-bit values (e.g. seeds).
bool parse_u64_arg(const std::string& s, std::uint64_t& out);
/// Same strictness for doubles (e.g. fault rates, straggler factors): the
/// whole string must parse, the value must be finite and in [lo, hi].
bool parse_double_arg(const std::string& s, double lo, double hi,
                      double& out);
/// Parse an `--arrival` value: "fixed:GAP_MS" | "poisson:MEAN_MS" |
/// "trace:MS,MS,..." (milliseconds of virtual time, >= 0). Returns false
/// on malformed input, leaving `out` untouched.
bool parse_arrival_arg(const std::string& s, ArrivalSpec& out);

/// The usage text printed for --help / errors.
std::string cli_usage();

/// Platform preset lookup by name ("crill", "ibex", "lustre").
/// Returns scaled (simulation-geometry) profiles; throws on unknown names.
Platform platform_by_name(const std::string& name);

}  // namespace tpio::xp
