#include "harness/platform.hpp"
#include <algorithm>

#include "simbase/time.hpp"
#include "simbase/units.hpp"

namespace tpio::xp {

Platform crill() {
  Platform p;
  p.name = "crill";
  p.procs_per_node = 48;
  p.max_nodes = 16;

  p.fabric.inter_bw = 2.6e9;
  p.fabric.intra_bw = 6.0e9;
  p.fabric.inter_latency = sim::microseconds(1.9);
  p.fabric.intra_latency = sim::microseconds(0.5);
  p.fabric.noise_sigma = 0.015;  // dedicated machine

  p.mpi.eager_limit = 512 * sim::KiB;  // Open MPI + UCX on InfiniBand
  p.mpi.send_overhead = sim::microseconds(0.6);
  p.mpi.recv_overhead = sim::microseconds(0.6);
  p.mpi.match_cost = sim::nanoseconds(25);  // older, slower cores
  p.mpi.put_overhead = sim::microseconds(1.8);
  p.mpi.rma_control_latency = sim::microseconds(12.0);
  p.mpi.collective_hop = sim::microseconds(8.0);

  // Two extra HDDs per node: storage is co-located with compute, so the
  // pool a job sees scales with the nodes it occupies (targets_per_node).
  // The weak storage makes runs I/O-dominated (the paper measures ~93% of
  // time in file access for Tile 1M @ 576).
  p.targets_per_node = 1;
  p.pfs.num_targets = 16;
  p.pfs.stripe_size = sim::MiB;
  p.pfs.target_bw = 190e6;
  p.pfs.request_overhead = sim::microseconds(350);
  p.pfs.op_overhead = sim::microseconds(600);
  p.pfs.client_bw = 2.6e9;
  p.pfs.storage_latency = sim::microseconds(60);
  p.pfs.share_compute_nic = true;
  p.pfs.aio_penalty = 1.05;
  p.pfs.aio_penalty_sigma = 0.08;
  p.pfs.noise_sigma = 0.02;
  return p;
}

Platform ibex() {
  Platform p;
  p.name = "ibex";
  p.procs_per_node = 40;
  p.max_nodes = 108;

  p.fabric.inter_bw = 3.4e9;
  p.fabric.intra_bw = 9.0e9;
  p.fabric.inter_latency = sim::microseconds(1.6);
  p.fabric.intra_latency = sim::microseconds(0.35);
  p.fabric.noise_sigma = 0.10;  // shared machine

  p.mpi.eager_limit = 512 * sim::KiB;
  p.mpi.send_overhead = sim::microseconds(0.45);
  p.mpi.recv_overhead = sim::microseconds(0.45);
  p.mpi.match_cost = sim::nanoseconds(15);
  p.mpi.put_overhead = sim::microseconds(1.5);
  p.mpi.rma_control_latency = sim::microseconds(10.0);
  p.mpi.collective_hop = sim::microseconds(6.0);

  // Large dedicated storage system: the 16 configured targets deliver an
  // order of magnitude more write bandwidth than crill's HDD pairs, so
  // communication is a visible fraction of the run (~23% in the paper's
  // breakdown) and overlap pays off more.
  p.pfs.num_targets = 16;
  p.pfs.stripe_size = sim::MiB;
  // Enterprise storage servers: the target pool is never the binding
  // constraint; a client's sustainable stream rate (RPC processing,
  // buffer management) is, as on production BeeGFS installations.
  p.pfs.target_bw = 2.0e9;
  p.pfs.request_overhead = sim::microseconds(60);
  p.pfs.op_overhead = sim::microseconds(250);
  p.pfs.client_bw = 1.6e9;
  p.pfs.storage_latency = sim::microseconds(40);
  p.pfs.share_compute_nic = false;
  p.pfs.aio_penalty = 1.01;
  p.pfs.aio_penalty_sigma = 0.04;
  p.pfs.noise_sigma = 0.12;
  return p;
}

Platform lustre() {
  Platform p = ibex();
  p.name = "lustre";
  p.pfs.aio_penalty = 2.2;
  p.pfs.aio_penalty_sigma = 0.25;
  return p;
}

void scale_geometry(Platform& p, std::uint64_t k, std::uint64_t proc_scale) {
  p.pfs.stripe_size = std::max<std::uint64_t>(p.pfs.stripe_size / k, 4096);
  // Shuffle messages are (sub-buffer / P): they shrink by k but P only
  // shrinks by proc_scale, so the eager/rendezvous boundary must scale by
  // k / proc_scale to keep messages in the same protocol regime as the
  // published runs.
  p.mpi.eager_limit =
      std::max<std::uint64_t>(p.mpi.eager_limit * proc_scale / k, 1024);
}

}  // namespace tpio::xp


