#include "harness/sweep.hpp"

#include <algorithm>
#include <cstdlib>
#include <cstring>

#include "harness/cli.hpp"

#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace tpio::xp {

Platform scaled(Platform p) {
  scale_geometry(p, kGeometryScale, kProcScale);
  p.procs_per_node = std::max(1, p.procs_per_node / kProcScale);
  return p;
}

Platform bench_platform(const Platform& p, bool paper_scale) {
  return paper_scale ? p : scaled(p);
}

std::uint64_t bench_cb_size(bool paper_scale) {
  return paper_scale ? kPaperCbSize : kCbSize;
}

std::vector<SweepCase> paper_workloads() {
  // Two problem sizes per benchmark, mirroring the paper's sweep over
  // transfer/block/tile geometries (scaled; see kGeometryScale).
  return {
      {wl::Kind::Ior, "1M", wl::make_ior(1ull << 20)},
      {wl::Kind::Ior, "4M", wl::make_ior(4ull << 20)},
      // Tile 256: element-granular discontiguity (512 B pieces), enough
      // rows that the runs span several cycles per domain.
      {wl::Kind::Tile256, "S", wl::make_tile256(2, 1024)},
      {wl::Kind::Tile256, "L", wl::make_tile256(2, 2048)},
      // Tile 1M: elements above the (scaled) rendezvous threshold.
      {wl::Kind::Tile1M, "S", wl::make_tile1m(1, 2)},
      {wl::Kind::Tile1M, "L", wl::make_tile1m(2, 2)},
      {wl::Kind::Flash, "S", wl::make_flash(24, 2, 16 * 1024)},
      {wl::Kind::Flash, "L", wl::make_flash(24, 4, 16 * 1024)},
  };
}

std::vector<int> paper_proc_counts(bool quick) {
  return paper_proc_counts(quick, /*paper_scale=*/false);
}

std::vector<int> paper_proc_counts(bool quick, bool paper_scale) {
  if (paper_scale) {
    // The published counts (kProcScale x the stand-ins below).
    if (quick) return {64, 256};
    return {64, 144, 256, 400};
  }
  if (quick) return {16, 64};
  return {16, 36, 64, 100};
}

coll::OverlapMode OverlapSeries::winner() const {
  TPIO_CHECK(!min_ms.empty(), "winner of empty series");
  // Auto is a selector, not a competing algorithm: it never "wins" a
  // series (Table I counts the paper's five fixed schedulers).
  auto competes = [](coll::OverlapMode m) {
    return m != coll::OverlapMode::Auto;
  };
  const auto begin = min_ms.begin();
  auto best = min_ms.end();
  for (auto it = begin; it != min_ms.end(); ++it) {
    if (!competes(it->first)) continue;
    if (best == min_ms.end() || it->second < best->second) best = it;
  }
  TPIO_CHECK(best != min_ms.end(), "winner needs a fixed-scheduler entry");
  // Exact ties go to the NoOverlap baseline explicitly (an overlap
  // algorithm must strictly beat it to count as a win); remaining ties
  // resolve in enum order. Relying on std::map iteration order alone
  // would bias the win counts silently.
  const auto base = min_ms.find(coll::OverlapMode::None);
  if (base != min_ms.end() && base->second <= best->second) {
    return coll::OverlapMode::None;
  }
  return best->first;
}

double OverlapSeries::improvement(coll::OverlapMode mode) const {
  const double base = min_ms.at(coll::OverlapMode::None);
  return (base - min_ms.at(mode)) / base;
}

namespace {

/// A stable, checkpoint-friendly identifier for one grid point.
std::string job_key(const SweepCase& c, int procs, const char* variant) {
  return std::string(wl::to_string(c.kind)) + "/" + c.size_label + "/p" +
         std::to_string(procs) + "/" + variant;
}

std::string sweep_manifest(const char* sweep, const Platform& plat, int reps,
                           std::uint64_t seed, bool quick,
                           const coll::Options& base, bool include_auto,
                           bool paper_scale = false) {
  std::string m = std::string(sweep) + "|platform=" + plat.name +
                  "|seed=" + std::to_string(seed) +
                  "|reps=" + std::to_string(reps) +
                  "|quick=" + (quick ? "1" : "0");
  // Unscaled grids run different geometry under the same job keys — keep
  // their checkpoints apart from the scaled stand-in grid's.
  if (paper_scale) m += "|paper=1";
  if (base.hierarchical) {
    // Keep hierarchical grids in their own checkpoint namespace — the job
    // keys coincide with the flat sweep's, only the options differ.
    m += std::string("|hier=1|leader=") + coll::to_string(base.leader_policy);
  }
  // Six-column (Auto) grids get their own namespace too; the executor also
  // fingerprints the job keys, so a five-column checkpoint can never be
  // spliced into a six-column table even with a hand-set manifest.
  if (include_auto) m += "|auto=1";
  // Fault-injected grids must never share a checkpoint with healthy ones
  // (identical job keys, different physics) — tag the scenario and the
  // resilience knobs that shape the results.
  m += pfs::fault_tag(plat.pfs.faults);
  if (pfs::FaultModel(plat.pfs.faults).enabled()) {
    m += "|retries=" + std::to_string(base.max_retries);
    if (base.degrade_slowdown > 0.0) {
      m += "|degrade=" + std::to_string(base.degrade_slowdown);
    }
  }
  // Subfiled grids run under different plans and storage layouts than the
  // shared-file grid (identical job keys) — keep their checkpoints apart.
  m += subfiling_tag(base);
  return m;
}

}  // namespace

std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             const coll::Options& base,
                                             int reps, std::uint64_t seed,
                                             bool quick,
                                             const ExecOptions& exec,
                                             bool include_auto,
                                             bool paper_scale) {
  const Platform plat = bench_platform(platform, paper_scale);
  std::vector<coll::OverlapMode> modes = {
      coll::OverlapMode::None, coll::OverlapMode::Comm,
      coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
      coll::OverlapMode::WriteComm2};
  if (include_auto) modes.push_back(coll::OverlapMode::Auto);

  // Plan the whole (series x algorithm) grid up front: every job carries a
  // seed derived from its grid position, so results are independent of both
  // execution order and worker count.
  std::vector<OverlapSeries> out;
  std::vector<SweepJob> jobs;
  std::vector<std::pair<std::size_t, coll::OverlapMode>> slot;  // per job
  std::uint64_t series_id = 0;
  for (const SweepCase& c : paper_workloads()) {
    for (int procs : paper_proc_counts(quick, paper_scale)) {
      OverlapSeries series;
      series.platform = plat.name;
      series.kind = c.kind;
      series.size_label = c.size_label;
      series.procs = procs;
      for (coll::OverlapMode mode : modes) {
        RunSpec spec;
        spec.platform = plat;
        spec.workload = c.workload;
        spec.nprocs = procs;
        spec.options = base;
        spec.options.cb_size = bench_cb_size(paper_scale);
        spec.options.overlap = mode;
        // Independent noise per (series, algorithm): real measurements of
        // different code versions are separate runs on the machine.
        const std::uint64_t job_seed = sim::Rng::derive_seed(
            seed, series_id * 16 + static_cast<std::uint64_t>(mode));
        jobs.push_back(SweepJob{job_key(c, procs, coll::to_string(mode)),
                                [spec, reps, job_seed] {
                                  const Series s =
                                      execute_series(spec, reps, job_seed);
                                  return sim::to_millis(s.min_makespan());
                                }});
        slot.emplace_back(out.size(), mode);
      }
      ++series_id;
      out.push_back(std::move(series));
    }
  }

  ExecOptions e = exec;
  if (e.manifest.empty()) {
    e.manifest = sweep_manifest("overlap", plat, reps, seed, quick, base,
                                include_auto, paper_scale);
  }
  const std::vector<double> min_ms = run_jobs(jobs, e);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[slot[i].first].min_ms[slot[i].second] = min_ms[i];
  }
  return out;
}

std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             int reps, std::uint64_t seed,
                                             bool quick,
                                             const ExecOptions& exec,
                                             bool paper_scale) {
  return run_overlap_sweep(platform, coll::Options{}, reps, seed, quick, exec,
                           /*include_auto=*/false, paper_scale);
}

std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             int reps, std::uint64_t seed,
                                             bool quick) {
  return run_overlap_sweep(platform, reps, seed, quick, ExecOptions{});
}

std::vector<OverlapSeries> run_contended_sweep(const Platform& platform,
                                               const coll::Options& base,
                                               const ContentionConfig& tenancy,
                                               int reps, std::uint64_t seed,
                                               bool quick,
                                               const ExecOptions& exec) {
  TPIO_CHECK(tenancy.neighbors >= 0, "neighbor count must be >= 0");
  const Platform plat = scaled(platform);
  const std::vector<coll::OverlapMode> modes = {
      coll::OverlapMode::None, coll::OverlapMode::Comm,
      coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
      coll::OverlapMode::WriteComm2};

  std::vector<OverlapSeries> out;
  std::vector<SweepJob> jobs;
  std::vector<std::pair<std::size_t, coll::OverlapMode>> slot;  // per job
  std::string tag;  // tenancy namespace of the checkpoint manifest
  std::uint64_t series_id = 0x80000;
  for (const SweepCase& c : paper_workloads()) {
    for (int procs : paper_proc_counts(quick)) {
      OverlapSeries series;
      series.platform = plat.name;
      series.kind = c.kind;
      series.size_label = c.size_label;
      series.procs = procs;
      for (coll::OverlapMode mode : modes) {
        RunSpec spec;
        spec.platform = plat;
        spec.workload = c.workload;
        spec.nprocs = procs;
        spec.options = base;
        spec.options.cb_size = kCbSize;
        spec.options.overlap = mode;

        MultiRunSpec mspec;
        mspec.tenants.push_back(spec);
        for (int n = 0; n < tenancy.neighbors; ++n) {
          RunSpec nb = tenancy.has_neighbor ? tenancy.neighbor : spec;
          nb.platform = plat;  // tenants share one machine
          if (!tenancy.has_neighbor) {
            nb.options.overlap = coll::OverlapMode::None;
          } else {
            nb.options.cb_size = kCbSize;
          }
          mspec.tenants.push_back(nb);
        }
        mspec.arrival = tenancy.arrival;
        mspec.qos = tenancy.qos;
        mspec.weights = tenancy.weights;
        mspec.priorities = tenancy.priorities;
        if (tag.empty()) tag = tenancy_tag(mspec);

        const std::uint64_t job_seed = sim::Rng::derive_seed(
            seed, series_id * 16 + static_cast<std::uint64_t>(mode));
        jobs.push_back(SweepJob{
            job_key(c, procs, coll::to_string(mode)), [mspec, reps, job_seed] {
              // Series semantics mirror execute_series: min over reps of
              // the measured tenant's turnaround, each rep on its own
              // derived seed.
              sim::Duration best = 0;
              MultiRunSpec ms = mspec;
              for (int i = 0; i < reps; ++i) {
                ms.seed = sim::Rng::derive_seed(job_seed,
                                                static_cast<std::uint64_t>(i));
                const MultiRunResult r = execute_multi(ms);
                for (const TenantResult& t : r.tenants) {
                  TPIO_CHECK(t.run.verify_error.empty(),
                             "verification failed: " + t.run.verify_error);
                }
                const sim::Duration m = r.tenants[0].run.makespan;
                best = (i == 0) ? m : std::min(best, m);
              }
              return sim::to_millis(best);
            }});
        slot.emplace_back(out.size(), mode);
      }
      ++series_id;
      out.push_back(std::move(series));
    }
  }

  ExecOptions e = exec;
  if (e.manifest.empty()) {
    e.manifest = sweep_manifest("overlap", plat, reps, seed, quick, base,
                                /*include_auto=*/false) +
                 "|contended=1" + tag;
  }
  const std::vector<double> min_ms = run_jobs(jobs, e);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[slot[i].first].min_ms[slot[i].second] = min_ms[i];
  }
  return out;
}

coll::Transfer PrimitiveSeries::winner() const {
  TPIO_CHECK(!min_ms.empty(), "winner of empty series");
  auto best = min_ms.begin();
  for (auto it = min_ms.begin(); it != min_ms.end(); ++it) {
    if (it->second < best->second) best = it;
  }
  // Exact ties go to the two-sided baseline explicitly (Fig. 4 counts
  // one-sided wins only when they strictly beat Isend/Irecv).
  const auto base = min_ms.find(coll::Transfer::TwoSided);
  if (base != min_ms.end() && base->second <= best->second) {
    return coll::Transfer::TwoSided;
  }
  return best->first;
}

double PrimitiveSeries::improvement(coll::Transfer t) const {
  const double base = min_ms.at(coll::Transfer::TwoSided);
  return (base - min_ms.at(t)) / base;
}

std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 const coll::Options& base,
                                                 int reps, std::uint64_t seed,
                                                 bool quick,
                                                 const ExecOptions& exec) {
  const Platform plat = scaled(platform);
  std::vector<PrimitiveSeries> out;
  std::vector<SweepJob> jobs;
  std::vector<std::pair<std::size_t, coll::Transfer>> slot;  // per job
  std::uint64_t series_id = 0x40000;
  for (const SweepCase& c : paper_workloads()) {
    if (c.kind == wl::Kind::Flash) continue;  // paper Fig. 4: IOR + Tile only
    for (int procs : paper_proc_counts(quick)) {
      PrimitiveSeries series;
      series.platform = plat.name;
      series.kind = c.kind;
      series.size_label = c.size_label;
      series.procs = procs;
      for (coll::Transfer t :
           {coll::Transfer::TwoSided, coll::Transfer::OneSidedFence,
            coll::Transfer::OneSidedLock}) {
        RunSpec spec;
        spec.platform = plat;
        spec.workload = c.workload;
        spec.nprocs = procs;
        spec.options = base;
        spec.options.cb_size = kCbSize;
        spec.options.overlap = coll::OverlapMode::WriteComm2;
        spec.options.transfer = t;
        // Primitives share the identical write path, so the aio-quality
        // and machine-noise draws are paired across them: the comparison
        // isolates the shuffle implementation, as the paper's same-day
        // back-to-back measurements effectively did.
        const std::uint64_t job_seed = sim::Rng::derive_seed(seed, series_id);
        jobs.push_back(SweepJob{job_key(c, procs, coll::to_string(t)),
                                [spec, reps, job_seed] {
                                  const Series s =
                                      execute_series(spec, reps, job_seed);
                                  return sim::to_millis(s.min_makespan());
                                }});
        slot.emplace_back(out.size(), t);
      }
      ++series_id;
      out.push_back(std::move(series));
    }
  }

  ExecOptions e = exec;
  if (e.manifest.empty()) {
    e.manifest = sweep_manifest("primitive", plat, reps, seed, quick, base,
                                /*include_auto=*/false);
  }
  const std::vector<double> min_ms = run_jobs(jobs, e);
  for (std::size_t i = 0; i < jobs.size(); ++i) {
    out[slot[i].first].min_ms[slot[i].second] = min_ms[i];
  }
  return out;
}

std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 int reps, std::uint64_t seed,
                                                 bool quick,
                                                 const ExecOptions& exec) {
  return run_primitive_sweep(platform, coll::Options{}, reps, seed, quick,
                             exec);
}

std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 int reps, std::uint64_t seed,
                                                 bool quick) {
  return run_primitive_sweep(platform, reps, seed, quick, ExecOptions{});
}

BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs out;
  for (int i = 1; i < argc; ++i) {
    const char* a = argv[i];
    if (std::strcmp(a, "--quick") == 0) {
      out.quick = true;
    } else if (std::strcmp(a, "--jobs") == 0 && i + 1 < argc) {
      long long jobs = 0;
      if (parse_int_arg(argv[++i], 0, 10'000, jobs)) {
        out.exec.jobs = static_cast<int>(jobs);
      } else {
        out.ok = false;  // non-numeric / negative / absurd worker counts
      }
    } else if (std::strcmp(a, "--progress") == 0) {
      out.exec.progress = true;
    } else if (std::strcmp(a, "--paper-scale") == 0) {
      out.paper_scale = true;
    } else {
      out.ok = false;
    }
  }
  return out;
}

}  // namespace tpio::xp
