#include "harness/sweep.hpp"

#include <algorithm>

#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace tpio::xp {

Platform scaled(Platform p) {
  scale_geometry(p, kGeometryScale, kProcScale);
  p.procs_per_node = std::max(1, p.procs_per_node / kProcScale);
  return p;
}

std::vector<SweepCase> paper_workloads() {
  // Two problem sizes per benchmark, mirroring the paper's sweep over
  // transfer/block/tile geometries (scaled; see kGeometryScale).
  return {
      {wl::Kind::Ior, "1M", wl::make_ior(1ull << 20)},
      {wl::Kind::Ior, "4M", wl::make_ior(4ull << 20)},
      // Tile 256: element-granular discontiguity (512 B pieces), enough
      // rows that the runs span several cycles per domain.
      {wl::Kind::Tile256, "S", wl::make_tile256(2, 1024)},
      {wl::Kind::Tile256, "L", wl::make_tile256(2, 2048)},
      // Tile 1M: elements above the (scaled) rendezvous threshold.
      {wl::Kind::Tile1M, "S", wl::make_tile1m(1, 2)},
      {wl::Kind::Tile1M, "L", wl::make_tile1m(2, 2)},
      {wl::Kind::Flash, "S", wl::make_flash(24, 2, 16 * 1024)},
      {wl::Kind::Flash, "L", wl::make_flash(24, 4, 16 * 1024)},
  };
}

std::vector<int> paper_proc_counts(bool quick) {
  if (quick) return {16, 64};
  return {16, 36, 64, 100};
}

coll::OverlapMode OverlapSeries::winner() const {
  TPIO_CHECK(!min_ms.empty(), "winner of empty series");
  auto best = min_ms.begin();
  for (auto it = min_ms.begin(); it != min_ms.end(); ++it) {
    if (it->second < best->second) best = it;
  }
  return best->first;
}

double OverlapSeries::improvement(coll::OverlapMode mode) const {
  const double base = min_ms.at(coll::OverlapMode::None);
  return (base - min_ms.at(mode)) / base;
}

std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             int reps, std::uint64_t seed,
                                             bool quick) {
  const Platform plat = scaled(platform);
  std::vector<OverlapSeries> out;
  std::uint64_t series_id = 0;
  for (const SweepCase& c : paper_workloads()) {
    for (int procs : paper_proc_counts(quick)) {
      OverlapSeries series;
      series.platform = plat.name;
      series.kind = c.kind;
      series.size_label = c.size_label;
      series.procs = procs;
      for (coll::OverlapMode mode :
           {coll::OverlapMode::None, coll::OverlapMode::Comm,
            coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
            coll::OverlapMode::WriteComm2}) {
        RunSpec spec;
        spec.platform = plat;
        spec.workload = c.workload;
        spec.nprocs = procs;
        spec.options.cb_size = kCbSize;
        spec.options.overlap = mode;
        // Independent noise per (series, algorithm): real measurements of
        // different code versions are separate runs on the machine.
        const Series s = execute_series(
            spec, reps,
            sim::Rng::derive_seed(seed, series_id * 16 +
                                            static_cast<std::uint64_t>(mode)));
        series.min_ms[mode] = sim::to_millis(s.min_makespan());
      }
      ++series_id;
      out.push_back(std::move(series));
    }
  }
  return out;
}

coll::Transfer PrimitiveSeries::winner() const {
  TPIO_CHECK(!min_ms.empty(), "winner of empty series");
  auto best = min_ms.begin();
  for (auto it = min_ms.begin(); it != min_ms.end(); ++it) {
    if (it->second < best->second) best = it;
  }
  return best->first;
}

double PrimitiveSeries::improvement(coll::Transfer t) const {
  const double base = min_ms.at(coll::Transfer::TwoSided);
  return (base - min_ms.at(t)) / base;
}

std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 int reps, std::uint64_t seed,
                                                 bool quick) {
  const Platform plat = scaled(platform);
  std::vector<PrimitiveSeries> out;
  std::uint64_t series_id = 0x40000;
  for (const SweepCase& c : paper_workloads()) {
    if (c.kind == wl::Kind::Flash) continue;  // paper Fig. 4: IOR + Tile only
    for (int procs : paper_proc_counts(quick)) {
      PrimitiveSeries series;
      series.platform = plat.name;
      series.kind = c.kind;
      series.size_label = c.size_label;
      series.procs = procs;
      for (coll::Transfer t :
           {coll::Transfer::TwoSided, coll::Transfer::OneSidedFence,
            coll::Transfer::OneSidedLock}) {
        RunSpec spec;
        spec.platform = plat;
        spec.workload = c.workload;
        spec.nprocs = procs;
        spec.options.cb_size = kCbSize;
        spec.options.overlap = coll::OverlapMode::WriteComm2;
        spec.options.transfer = t;
        // Primitives share the identical write path, so the aio-quality
        // and machine-noise draws are paired across them: the comparison
        // isolates the shuffle implementation, as the paper's same-day
        // back-to-back measurements effectively did.
        const Series s =
            execute_series(spec, reps, sim::Rng::derive_seed(seed, series_id));
        series.min_ms[t] = sim::to_millis(s.min_makespan());
      }
      ++series_id;
      out.push_back(std::move(series));
    }
  }
  return out;
}

}  // namespace tpio::xp
