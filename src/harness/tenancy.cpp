#include "harness/tenancy.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "net/topology.hpp"
#include "sched/conductor.hpp"
#include "simbase/bufpool.hpp"
#include "simbase/error.hpp"
#include "simbase/rng.hpp"

namespace tpio::xp {

const char* to_string(ArrivalModel m) {
  switch (m) {
    case ArrivalModel::Fixed:
      return "fixed";
    case ArrivalModel::Poisson:
      return "poisson";
    case ArrivalModel::Trace:
      return "trace";
  }
  tpio::fail("unknown ArrivalModel");
}

std::vector<sim::Time> arrival_times(const ArrivalSpec& spec, int n,
                                     std::uint64_t seed) {
  TPIO_CHECK(n > 0, "arrival_times needs at least one tenant");
  TPIO_CHECK(spec.gap >= 0, "arrival gap must be >= 0");
  std::vector<sim::Time> at(static_cast<std::size_t>(n), 0);
  switch (spec.model) {
    case ArrivalModel::Fixed:
      for (int i = 0; i < n; ++i) {
        at[static_cast<std::size_t>(i)] = static_cast<sim::Time>(i) * spec.gap;
      }
      break;
    case ArrivalModel::Poisson: {
      // Exponential inter-arrival gaps on a private derived stream: the
      // schedule is a pure function of (seed, gap, n).
      sim::Rng rng(sim::Rng::derive_seed(seed, 0xA221));
      sim::Time t = 0;
      for (int i = 1; i < n; ++i) {
        const double u = rng.next_double();
        const double gap = -static_cast<double>(spec.gap) *
                           std::log(std::max(1.0 - u, 1e-12));
        t += std::max<sim::Duration>(0, static_cast<sim::Duration>(
                                            std::llround(gap)));
        at[static_cast<std::size_t>(i)] = t;
      }
      break;
    }
    case ArrivalModel::Trace:
      TPIO_CHECK(static_cast<int>(spec.trace.size()) == n,
                 "arrival trace size must match the tenant count");
      for (int i = 0; i < n; ++i) {
        TPIO_CHECK(spec.trace[static_cast<std::size_t>(i)] >= 0,
                   "arrival instants must be >= 0");
        at[static_cast<std::size_t>(i)] =
            spec.trace[static_cast<std::size_t>(i)];
      }
      break;
  }
  return at;
}

MultiRunResult execute_multi(const MultiRunSpec& spec) {
  return execute_multi(spec, /*with_baselines=*/false);
}

namespace {

/// Dense subfile-local address space of one sub-communicator: the sorted,
/// coalesced union of the members' extents, with prefix sums. A subgroup
/// of an interleaved decomposition (tile rows, FLASH variables) owns file
/// regions riddled with other groups' bytes; its subfile instead packs
/// the group's data gap-free in global-offset order — the layout real
/// subfiling stacks produce (data subfiles plus an index recovering the
/// logical placement). to_global() is that index.
struct SubfileMap {
  std::vector<std::uint64_t> start;  // global start per segment, sorted
  std::vector<std::uint64_t> len;    // segment length
  std::vector<std::uint64_t> cum;    // subfile offset of each segment

  bool active() const { return !start.empty(); }

  /// Global file offset -> subfile offset (must hit a segment).
  std::uint64_t to_local(std::uint64_t off) const {
    const auto it = std::upper_bound(start.begin(), start.end(), off);
    TPIO_CHECK(it != start.begin(), "offset below every subfile segment");
    const auto i = static_cast<std::size_t>(it - start.begin()) - 1;
    TPIO_CHECK(off < start[i] + len[i], "offset in a subfile gap");
    return cum[i] + (off - start[i]);
  }

  /// Subfile offset -> global file offset (inverse of to_local).
  std::uint64_t to_global(std::uint64_t off) const {
    const auto it = std::upper_bound(cum.begin(), cum.end(), off);
    TPIO_CHECK(it != cum.begin(), "subfile offset below zero segment");
    const auto i = static_cast<std::size_t>(it - cum.begin()) - 1;
    TPIO_CHECK(off - cum[i] < len[i], "subfile offset past the last byte");
    return start[i] + (off - cum[i]);
  }
};

/// Union of the subgroup's member views ([base, base + count) in tenant
/// ranks), coalesced into maximal contiguous segments.
SubfileMap build_subfile_map(const wl::Spec& workload, int nprocs, int base,
                             int count) {
  std::vector<coll::Extent> all;
  for (int r = base; r < base + count; ++r) {
    const coll::FileView v = workload.view(r, nprocs);
    all.insert(all.end(), v.extents.begin(), v.extents.end());
  }
  std::sort(all.begin(), all.end(),
            [](const coll::Extent& a, const coll::Extent& b) {
              return a.offset < b.offset;
            });
  SubfileMap m;
  std::uint64_t total = 0;
  for (const coll::Extent& e : all) {
    if (e.length == 0) continue;
    if (!m.start.empty() && e.offset == m.start.back() + m.len.back()) {
      m.len.back() += e.length;  // extends the open segment
    } else {
      TPIO_CHECK(m.start.empty() ||
                     e.offset > m.start.back() + m.len.back(),
                 "overlapping member extents in a subgroup view");
      m.start.push_back(e.offset);
      m.len.push_back(e.length);
      m.cum.push_back(total);
    }
    total += e.length;
  }
  return m;
}

}  // namespace

std::vector<std::pair<int, int>> sub_comm_partition(int nprocs, int k) {
  TPIO_CHECK(nprocs > 0, "partition needs processes");
  TPIO_CHECK(k >= 1 && k <= nprocs,
             "sub_comm_count must be in [1, nprocs]");
  std::vector<std::pair<int, int>> out;
  out.reserve(static_cast<std::size_t>(k));
  const int quot = nprocs / k;
  const int rem = nprocs % k;
  int base = 0;
  for (int g = 0; g < k; ++g) {
    const int count = quot + (g < rem ? 1 : 0);
    out.emplace_back(base, count);
    base += count;
  }
  return out;
}

std::string subfiling_tag(const coll::Options& opt) {
  if (opt.sub_comm_count == 1 && opt.subfile_stripe_unit == 0 &&
      opt.subfile_stripe_factor == 0) {
    return {};
  }
  std::string tag = "|subk=" + std::to_string(opt.sub_comm_count);
  if (opt.subfile_stripe_unit > 0) {
    tag += "|sunit=" + std::to_string(opt.subfile_stripe_unit);
  }
  if (opt.subfile_stripe_factor > 0) {
    tag += "|sfac=" + std::to_string(opt.subfile_stripe_factor);
  }
  return tag;
}

MultiRunResult execute_multi(const MultiRunSpec& spec, bool with_baselines) {
  const int nt = static_cast<int>(spec.tenants.size());
  TPIO_CHECK(nt > 0, "multi-run needs at least one tenant");
  TPIO_CHECK(spec.weights.empty() ||
                 static_cast<int>(spec.weights.size()) == nt,
             "weights must be empty or one per tenant");
  TPIO_CHECK(spec.priorities.empty() ||
                 static_cast<int>(spec.priorities.size()) == nt,
             "priorities must be empty or one per tenant");
  const Platform& plat = spec.tenants[0].platform;
  for (const RunSpec& t : spec.tenants) {
    TPIO_CHECK(t.nprocs > 0, "run needs processes");
    TPIO_CHECK(t.platform.name == plat.name &&
                   t.platform.procs_per_node == plat.procs_per_node,
               "tenants must share one platform (they share the machine)");
  }

  // Tenant node blocks: tenant t owns global nodes
  // [offset_t, offset_t + nodes_t) of the shared machine.
  std::vector<net::Topology> topos;
  std::vector<int> offsets;
  int total_nodes = 0;
  topos.reserve(static_cast<std::size_t>(nt));
  offsets.reserve(static_cast<std::size_t>(nt));
  for (const RunSpec& t : spec.tenants) {
    topos.push_back(net::Topology::fit(t.nprocs, plat.procs_per_node));
    offsets.push_back(total_nodes);
    total_nodes += topos.back().nodes;
  }

  // Shared-system parameters, with noise/aio streams derived from the
  // multi-run seed by exactly the solo runner's salts — a lone tenant with
  // spec.seed == tenants[0].seed replays the solo schedule bit-for-bit.
  net::FabricParams fp = plat.fabric;
  fp.noise_seed = sim::Rng::derive_seed(spec.seed, 0xFAB);
  pfs::PfsParams pp = plat.pfs;
  pp.noise_seed = sim::Rng::derive_seed(spec.seed, 0x57C);
  if (pp.aio_penalty_sigma > 0.0) {
    sim::Rng rng(sim::Rng::derive_seed(spec.seed, 0xA10));
    const double jitter = std::exp(pp.aio_penalty_sigma * rng.next_normal());
    pp.aio_penalty *= std::max(1.0, jitter);
    pp.aio_penalty_sigma = 0.0;
  }
  if (plat.targets_per_node > 0) {
    pp.num_targets = std::max(1, total_nodes * plat.targets_per_node);
  }
  pp.qos = spec.qos;

  const net::Topology union_topo{total_nodes, plat.procs_per_node, 0};
  net::Fabric parent(union_topo, fp);
  pfs::StorageSystem storage(pp, &parent);

  const std::vector<sim::Time> arrivals =
      arrival_times(spec.arrival, nt, spec.seed);

  // Per-(tenant, subgroup) infrastructure over the shared substrate. Every
  // tenant splits into sub_comm_count contiguous sub-communicators; the
  // default of 1 makes the subgroup exactly the tenant, and every formula
  // below degenerates to the historical per-tenant path bit-for-bit (the
  // `subfiling` differential suite pins this).
  struct SubGroup {
    int tenant = 0;  // owning tenant
    int index = 0;   // sub-communicator index within the tenant
    int base = 0;    // first tenant-local rank
    int count = 0;   // ranks in the subgroup
  };
  std::vector<SubGroup> groups;          // flat, tenant-major
  std::vector<int> tenant_first_group;   // flat index of each tenant's g=0
  for (int t = 0; t < nt; ++t) {
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    const int k = ts.options.sub_comm_count;
    TPIO_CHECK(k >= 1, "sub_comm_count must be resolved (>= 1) by the "
                       "harness before execution (0 = auto)");
    tenant_first_group.push_back(static_cast<int>(groups.size()));
    for (const auto& [base, count] : sub_comm_partition(ts.nprocs, k)) {
      groups.push_back(SubGroup{t, static_cast<int>(groups.size()) -
                                       tenant_first_group.back(),
                                base, count});
    }
  }
  const int ng = static_cast<int>(groups.size());

  std::vector<std::unique_ptr<net::Fabric>> views;
  std::vector<std::unique_ptr<smpi::Machine>> machines;
  std::vector<std::shared_ptr<pfs::File>> files;
  std::vector<SubfileMap> maps(static_cast<std::size_t>(ng));
  std::vector<coll::Options> eff;
  std::vector<std::vector<coll::Result>> results(
      static_cast<std::size_t>(nt));
  std::vector<int> group_sizes;
  for (int t = 0; t < nt; ++t) {
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    coll::Options o = ts.options;
    o.materialize = ts.verify || spec.store_content;
    eff.push_back(o);
    results[static_cast<std::size_t>(t)].resize(
        static_cast<std::size_t>(ts.nprocs));
  }
  for (int gi = 0; gi < ng; ++gi) {
    const SubGroup& g = groups[static_cast<std::size_t>(gi)];
    const int t = g.tenant;
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    const net::Topology& tt = topos[static_cast<std::size_t>(t)];
    const int k = ts.options.sub_comm_count;
    // Rank-granular fabric view: the subgroup keeps its members' physical
    // node slots (it may start and end mid-node), placed at the tenant's
    // node block plus the subgroup's first node within the tenant.
    views.push_back(std::make_unique<net::Fabric>(
        parent, net::Topology::sub_view(tt, g.base, g.count),
        offsets[static_cast<std::size_t>(t)] + tt.node_of(g.base)));
    machines.push_back(std::make_unique<smpi::Machine>(*views.back(),
                                                       plat.mpi));
    // Billing class: one dense id per (tenant, subgroup) — for all-k=1 runs
    // the flat index equals the tenant index, so QoS lanes, stats and
    // fault-oracle inputs are unchanged. Subfiles inherit their tenant's
    // weight and priority (homogeneous sub-jobs of one tenant).
    pfs::TenantClass cls;
    cls.id = gi;
    cls.weight =
        spec.weights.empty() ? 1.0 : spec.weights[static_cast<std::size_t>(t)];
    cls.priority = spec.priorities.empty()
                       ? 0
                       : spec.priorities[static_cast<std::size_t>(t)];
    const pfs::Integrity integrity =
        spec.store_content
            ? pfs::Integrity::Store
            : (ts.verify ? pfs::Integrity::Digest : pfs::Integrity::None);
    // gio-style per-subfile striping: subfile g starts its stripe set at
    // target g * factor, so k * factor <= num_targets gives the subfiles
    // disjoint target subsets. All-zero striping inherits system defaults.
    pfs::FileStriping striping;
    striping.stripe_unit = ts.options.subfile_stripe_unit;
    striping.stripe_factor = ts.options.subfile_stripe_factor;
    if (striping.stripe_factor > 0) {
      striping.stripe_factor =
          std::min(striping.stripe_factor, storage.params().num_targets);
      striping.target_offset =
          (g.index * striping.stripe_factor) % storage.params().num_targets;
    }
    const std::string fname =
        k == 1 ? "tenant" + std::to_string(t)
               : "tenant" + std::to_string(t) + ".sub" +
                     std::to_string(g.index);
    files.push_back(storage.create(fname, integrity, cls,
                                   offsets[static_cast<std::size_t>(t)],
                                   striping));
    // Subfiles pack their group's data gap-free: an interleaved
    // decomposition leaves other groups' bytes between a subgroup's
    // extents, and the two-phase engine writes whole contiguous file
    // domains — so member offsets are rebased through the group's dense
    // map. The shared file (k == 1) keeps raw offsets, untouched.
    if (k > 1) {
      maps[static_cast<std::size_t>(gi)] =
          build_subfile_map(ts.workload, ts.nprocs, g.base, g.count);
    }
    group_sizes.push_back(g.count);
  }

  sim::Conductor conductor(group_sizes);
  std::vector<std::function<void(sim::RankCtx&)>> programs;
  programs.reserve(static_cast<std::size_t>(ng));
  for (int gi = 0; gi < ng; ++gi) {
    const SubGroup& g = groups[static_cast<std::size_t>(gi)];
    programs.push_back([&, gi, g](sim::RankCtx& ctx) {
      // The tenant's job enters the system at its arrival instant: every
      // reservation it makes starts no earlier. An arrival of 0 is a no-op,
      // preserving solo bit-identity.
      const RunSpec& ts = spec.tenants[static_cast<std::size_t>(g.tenant)];
      ctx.advance_to(arrivals[static_cast<std::size_t>(g.tenant)]);
      smpi::Mpi mpi(*machines[static_cast<std::size_t>(gi)], ctx);
      // The workload decomposition stays tenant-global: subgroup members
      // keep their tenant rank's extents (global file offsets), they just
      // plan and shuffle only among themselves.
      const int trank = g.base + mpi.rank();
      coll::FileView view = ts.workload.view(trank, ts.nprocs);
      sim::BufferPool::Buffer data = sim::BufferPool::local().acquire(
          view.total_bytes(), /*zeroed=*/false);
      // Buffer content is the rank's *logical* data (global offsets);
      // compaction only relocates where it lands in the subfile, and a
      // monotonic map keeps the extent order, so the flattened buffer
      // layout is unchanged.
      if (eff[static_cast<std::size_t>(g.tenant)].materialize) {
        wl::fill_into(view, data.span());
      }
      const SubfileMap& map = maps[static_cast<std::size_t>(gi)];
      if (map.active()) {
        for (coll::Extent& e : view.extents) e.offset = map.to_local(e.offset);
      }
      results[static_cast<std::size_t>(g.tenant)]
             [static_cast<std::size_t>(trank)] = coll::collective_write(
                 mpi, *files[static_cast<std::size_t>(gi)], view, data.span(),
                 eff[static_cast<std::size_t>(g.tenant)]);
    });
  }
  conductor.run(programs);

  MultiRunResult out;
  out.makespan = conductor.makespan();
  out.tenants.resize(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    const int k = ts.options.sub_comm_count;
    const int first = tenant_first_group[static_cast<std::size_t>(t)];
    const auto& res = results[static_cast<std::size_t>(t)];
    TenantResult& tr = out.tenants[static_cast<std::size_t>(t)];
    RunResult& r = tr.run;
    r.arrival = arrivals[static_cast<std::size_t>(t)];
    for (int g = 0; g < k; ++g) {
      r.completion = std::max(r.completion, conductor.group_makespan(first + g));
    }
    r.makespan = r.completion - r.arrival;
    // Geometry/volume roll-up over the tenant's subgroups: independent
    // plans sum their aggregators and bytes; cycles report the deepest
    // subgroup pipeline. At k == 1 all of this is res[0]'s own numbers.
    for (int g = 0; g < k; ++g) {
      const SubGroup& sg = groups[static_cast<std::size_t>(first + g)];
      const coll::Result& head = res[static_cast<std::size_t>(sg.base)];
      r.aggregators += head.aggregators;
      r.cycles = std::max(r.cycles, head.cycles);
      r.bytes += head.bytes_global;
      const net::Fabric& v = *views[static_cast<std::size_t>(first + g)];
      r.inter_node_bytes += v.inter_node_bytes();
      r.inter_node_messages += v.inter_node_messages();
      r.intra_node_bytes += v.intra_node_bytes();
    }
    r.autotune = res[0].autotune;
    sim::Duration fwd_lifetime = 0, fwd_blocked = 0;
    for (int rk = 0; rk < ts.nprocs; ++rk) {
      const auto& rr = res[static_cast<std::size_t>(rk)];
      r.rank_sum += rr.timings;
      r.faults += rr.faults;
      fwd_lifetime += rr.forward_lifetime;
      fwd_blocked += rr.forward_blocked;
      r.gather_critical = std::max(r.gather_critical, rr.timings.gather);
      if (r.io_error.empty()) {
        r.io_error = rr.io_error;
      }
    }
    // Same pipelined-overlap rollup as the solo runner: 0.0 when nothing
    // forwarded pipelined, so lone-tenant results stay field-identical.
    if (fwd_lifetime > 0) {
      r.pipelined_overlap = 1.0 - static_cast<double>(fwd_blocked) /
                                      static_cast<double>(fwd_lifetime);
    }
    for (int rk = 0; rk < ts.nprocs; ++rk) {
      const auto& tm = res[static_cast<std::size_t>(rk)].timings;
      if (tm.write > 0) {
        r.agg_sum += tm;
        if (tm.write > r.agg_max.write) r.agg_max = tm;
      }
    }
    for (int g = 0; g < k; ++g) {
      const SubGroup& sg = groups[static_cast<std::size_t>(first + g)];
      const pfs::File& f = *files[static_cast<std::size_t>(first + g)];
      const std::uint64_t want =
          res[static_cast<std::size_t>(sg.base)].bytes_global;
      if (ts.verify && r.verify_error.empty()) {
        // Subfiled content lives at compacted offsets; the group's map is
        // the subfile index that recovers the logical placement.
        const SubfileMap& map = maps[static_cast<std::size_t>(first + g)];
        r.verify_error =
            map.active() ? f.verify([&map](std::uint64_t o) {
              return wl::expected_byte(map.to_global(o));
            })
                         : f.verify(wl::expected_byte);
        if (!r.verify_error.empty() && k > 1) {
          r.verify_error = f.name() + ": " + r.verify_error;
        }
        if (r.verify_error.empty() && f.bytes_written() != want) {
          r.verify_error = "file holds " + std::to_string(f.bytes_written()) +
                           " of " + std::to_string(want) +
                           " expected bytes (I/O give-ups?)";
        }
      }
      tr.qos += storage.tenant_stats(first + g);
      if (k > 1) {
        SubfileResult sf;
        sf.group = g;
        sf.ranks = sg.count;
        sf.aggregators = res[static_cast<std::size_t>(sg.base)].aggregators;
        sf.bytes = want;
        sf.completion = conductor.group_makespan(first + g);
        sf.qos = storage.tenant_stats(first + g);
        r.subfiles.push_back(sf);
      }
    }
  }

  if (with_baselines) {
    for (int t = 0; t < nt; ++t) {
      RunSpec solo = spec.tenants[static_cast<std::size_t>(t)];
      solo.seed = spec.seed;
      const RunResult base = execute(solo);
      TenantResult& tr = out.tenants[static_cast<std::size_t>(t)];
      tr.slowdown = base.makespan > 0
                        ? static_cast<double>(tr.run.makespan) /
                              static_cast<double>(base.makespan)
                        : 0.0;
    }
  }
  return out;
}

std::string tenancy_tag(const MultiRunSpec& spec) {
  const bool trivial =
      spec.tenants.size() <= 1 && spec.qos == pfs::QosPolicy::Fifo &&
      spec.arrival.model == ArrivalModel::Fixed && spec.arrival.gap == 0 &&
      spec.weights.empty() && spec.priorities.empty();
  if (trivial) return {};
  std::string tag = "|tenants=" + std::to_string(spec.tenants.size()) +
                    "|qos=" + to_string(spec.qos) +
                    "|arrival=" + to_string(spec.arrival.model) + ":" +
                    std::to_string(spec.arrival.gap);
  if (spec.arrival.model == ArrivalModel::Trace) {
    for (sim::Time t : spec.arrival.trace) tag += "," + std::to_string(t);
  }
  if (!spec.weights.empty()) {
    tag += "|w=";
    for (double w : spec.weights) tag += std::to_string(w) + ",";
  }
  if (!spec.priorities.empty()) {
    tag += "|p=";
    for (int p : spec.priorities) tag += std::to_string(p) + ",";
  }
  return tag;
}

}  // namespace tpio::xp
