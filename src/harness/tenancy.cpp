#include "harness/tenancy.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "net/topology.hpp"
#include "sched/conductor.hpp"
#include "simbase/bufpool.hpp"
#include "simbase/error.hpp"
#include "simbase/rng.hpp"

namespace tpio::xp {

const char* to_string(ArrivalModel m) {
  switch (m) {
    case ArrivalModel::Fixed:
      return "fixed";
    case ArrivalModel::Poisson:
      return "poisson";
    case ArrivalModel::Trace:
      return "trace";
  }
  tpio::fail("unknown ArrivalModel");
}

std::vector<sim::Time> arrival_times(const ArrivalSpec& spec, int n,
                                     std::uint64_t seed) {
  TPIO_CHECK(n > 0, "arrival_times needs at least one tenant");
  TPIO_CHECK(spec.gap >= 0, "arrival gap must be >= 0");
  std::vector<sim::Time> at(static_cast<std::size_t>(n), 0);
  switch (spec.model) {
    case ArrivalModel::Fixed:
      for (int i = 0; i < n; ++i) {
        at[static_cast<std::size_t>(i)] = static_cast<sim::Time>(i) * spec.gap;
      }
      break;
    case ArrivalModel::Poisson: {
      // Exponential inter-arrival gaps on a private derived stream: the
      // schedule is a pure function of (seed, gap, n).
      sim::Rng rng(sim::Rng::derive_seed(seed, 0xA221));
      sim::Time t = 0;
      for (int i = 1; i < n; ++i) {
        const double u = rng.next_double();
        const double gap = -static_cast<double>(spec.gap) *
                           std::log(std::max(1.0 - u, 1e-12));
        t += std::max<sim::Duration>(0, static_cast<sim::Duration>(
                                            std::llround(gap)));
        at[static_cast<std::size_t>(i)] = t;
      }
      break;
    }
    case ArrivalModel::Trace:
      TPIO_CHECK(static_cast<int>(spec.trace.size()) == n,
                 "arrival trace size must match the tenant count");
      for (int i = 0; i < n; ++i) {
        TPIO_CHECK(spec.trace[static_cast<std::size_t>(i)] >= 0,
                   "arrival instants must be >= 0");
        at[static_cast<std::size_t>(i)] =
            spec.trace[static_cast<std::size_t>(i)];
      }
      break;
  }
  return at;
}

MultiRunResult execute_multi(const MultiRunSpec& spec) {
  return execute_multi(spec, /*with_baselines=*/false);
}

MultiRunResult execute_multi(const MultiRunSpec& spec, bool with_baselines) {
  const int nt = static_cast<int>(spec.tenants.size());
  TPIO_CHECK(nt > 0, "multi-run needs at least one tenant");
  TPIO_CHECK(spec.weights.empty() ||
                 static_cast<int>(spec.weights.size()) == nt,
             "weights must be empty or one per tenant");
  TPIO_CHECK(spec.priorities.empty() ||
                 static_cast<int>(spec.priorities.size()) == nt,
             "priorities must be empty or one per tenant");
  const Platform& plat = spec.tenants[0].platform;
  for (const RunSpec& t : spec.tenants) {
    TPIO_CHECK(t.nprocs > 0, "run needs processes");
    TPIO_CHECK(t.platform.name == plat.name &&
                   t.platform.procs_per_node == plat.procs_per_node,
               "tenants must share one platform (they share the machine)");
  }

  // Tenant node blocks: tenant t owns global nodes
  // [offset_t, offset_t + nodes_t) of the shared machine.
  std::vector<net::Topology> topos;
  std::vector<int> offsets;
  int total_nodes = 0;
  topos.reserve(static_cast<std::size_t>(nt));
  offsets.reserve(static_cast<std::size_t>(nt));
  for (const RunSpec& t : spec.tenants) {
    topos.push_back(net::Topology::fit(t.nprocs, plat.procs_per_node));
    offsets.push_back(total_nodes);
    total_nodes += topos.back().nodes;
  }

  // Shared-system parameters, with noise/aio streams derived from the
  // multi-run seed by exactly the solo runner's salts — a lone tenant with
  // spec.seed == tenants[0].seed replays the solo schedule bit-for-bit.
  net::FabricParams fp = plat.fabric;
  fp.noise_seed = sim::Rng::derive_seed(spec.seed, 0xFAB);
  pfs::PfsParams pp = plat.pfs;
  pp.noise_seed = sim::Rng::derive_seed(spec.seed, 0x57C);
  if (pp.aio_penalty_sigma > 0.0) {
    sim::Rng rng(sim::Rng::derive_seed(spec.seed, 0xA10));
    const double jitter = std::exp(pp.aio_penalty_sigma * rng.next_normal());
    pp.aio_penalty *= std::max(1.0, jitter);
    pp.aio_penalty_sigma = 0.0;
  }
  if (plat.targets_per_node > 0) {
    pp.num_targets = std::max(1, total_nodes * plat.targets_per_node);
  }
  pp.qos = spec.qos;

  const net::Topology union_topo{total_nodes, plat.procs_per_node, 0};
  net::Fabric parent(union_topo, fp);
  pfs::StorageSystem storage(pp, &parent);

  const std::vector<sim::Time> arrivals =
      arrival_times(spec.arrival, nt, spec.seed);

  // Per-tenant infrastructure over the shared substrate.
  std::vector<std::unique_ptr<net::Fabric>> views;
  std::vector<std::unique_ptr<smpi::Machine>> machines;
  std::vector<std::shared_ptr<pfs::File>> files;
  std::vector<coll::Options> eff;
  std::vector<std::vector<coll::Result>> results(
      static_cast<std::size_t>(nt));
  std::vector<int> group_sizes;
  for (int t = 0; t < nt; ++t) {
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    views.push_back(std::make_unique<net::Fabric>(
        parent, topos[static_cast<std::size_t>(t)],
        offsets[static_cast<std::size_t>(t)]));
    machines.push_back(std::make_unique<smpi::Machine>(*views.back(), plat.mpi));
    pfs::TenantClass cls;
    cls.id = t;
    cls.weight =
        spec.weights.empty() ? 1.0 : spec.weights[static_cast<std::size_t>(t)];
    cls.priority = spec.priorities.empty()
                       ? 0
                       : spec.priorities[static_cast<std::size_t>(t)];
    const pfs::Integrity integrity =
        spec.store_content
            ? pfs::Integrity::Store
            : (ts.verify ? pfs::Integrity::Digest : pfs::Integrity::None);
    files.push_back(storage.create("tenant" + std::to_string(t), integrity,
                                   cls, offsets[static_cast<std::size_t>(t)]));
    coll::Options o = ts.options;
    o.materialize = ts.verify || spec.store_content;
    eff.push_back(o);
    results[static_cast<std::size_t>(t)].resize(
        static_cast<std::size_t>(ts.nprocs));
    group_sizes.push_back(ts.nprocs);
  }

  sim::Conductor conductor(group_sizes);
  std::vector<std::function<void(sim::RankCtx&)>> programs;
  programs.reserve(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    programs.push_back([&, t](sim::RankCtx& ctx) {
      // The tenant's job enters the system at its arrival instant: every
      // reservation it makes starts no earlier. An arrival of 0 is a no-op,
      // preserving solo bit-identity.
      ctx.advance_to(arrivals[static_cast<std::size_t>(t)]);
      smpi::Mpi mpi(*machines[static_cast<std::size_t>(t)], ctx);
      const coll::FileView view =
          spec.tenants[static_cast<std::size_t>(t)].workload.view(mpi.rank(),
                                                                  ts.nprocs);
      sim::BufferPool::Buffer data = sim::BufferPool::local().acquire(
          view.total_bytes(), /*zeroed=*/false);
      if (eff[static_cast<std::size_t>(t)].materialize) {
        wl::fill_into(view, data.span());
      }
      results[static_cast<std::size_t>(t)]
             [static_cast<std::size_t>(mpi.rank())] = coll::collective_write(
                 mpi, *files[static_cast<std::size_t>(t)], view, data.span(),
                 eff[static_cast<std::size_t>(t)]);
    });
  }
  conductor.run(programs);

  MultiRunResult out;
  out.makespan = conductor.makespan();
  out.tenants.resize(static_cast<std::size_t>(nt));
  for (int t = 0; t < nt; ++t) {
    const RunSpec& ts = spec.tenants[static_cast<std::size_t>(t)];
    const auto& res = results[static_cast<std::size_t>(t)];
    TenantResult& tr = out.tenants[static_cast<std::size_t>(t)];
    RunResult& r = tr.run;
    r.arrival = arrivals[static_cast<std::size_t>(t)];
    r.completion = conductor.group_makespan(t);
    r.makespan = r.completion - r.arrival;
    r.aggregators = res[0].aggregators;
    r.cycles = res[0].cycles;
    r.bytes = res[0].bytes_global;
    r.autotune = res[0].autotune;
    const net::Fabric& v = *views[static_cast<std::size_t>(t)];
    r.inter_node_bytes = v.inter_node_bytes();
    r.inter_node_messages = v.inter_node_messages();
    r.intra_node_bytes = v.intra_node_bytes();
    for (int rk = 0; rk < ts.nprocs; ++rk) {
      r.rank_sum += res[static_cast<std::size_t>(rk)].timings;
      r.faults += res[static_cast<std::size_t>(rk)].faults;
      if (r.io_error.empty()) {
        r.io_error = res[static_cast<std::size_t>(rk)].io_error;
      }
    }
    for (int rk = 0; rk < ts.nprocs; ++rk) {
      const auto& tm = res[static_cast<std::size_t>(rk)].timings;
      if (tm.write > 0) {
        r.agg_sum += tm;
        if (tm.write > r.agg_max.write) r.agg_max = tm;
      }
    }
    const pfs::File& f = *files[static_cast<std::size_t>(t)];
    if (ts.verify) {
      r.verify_error = f.verify(wl::expected_byte);
      if (r.verify_error.empty() && f.bytes_written() != r.bytes) {
        r.verify_error = "file holds " + std::to_string(f.bytes_written()) +
                         " of " + std::to_string(r.bytes) +
                         " expected bytes (I/O give-ups?)";
      }
    }
    tr.qos = storage.tenant_stats(t);
  }

  if (with_baselines) {
    for (int t = 0; t < nt; ++t) {
      RunSpec solo = spec.tenants[static_cast<std::size_t>(t)];
      solo.seed = spec.seed;
      const RunResult base = execute(solo);
      TenantResult& tr = out.tenants[static_cast<std::size_t>(t)];
      tr.slowdown = base.makespan > 0
                        ? static_cast<double>(tr.run.makespan) /
                              static_cast<double>(base.makespan)
                        : 0.0;
    }
  }
  return out;
}

std::string tenancy_tag(const MultiRunSpec& spec) {
  const bool trivial =
      spec.tenants.size() <= 1 && spec.qos == pfs::QosPolicy::Fifo &&
      spec.arrival.model == ArrivalModel::Fixed && spec.arrival.gap == 0 &&
      spec.weights.empty() && spec.priorities.empty();
  if (trivial) return {};
  std::string tag = "|tenants=" + std::to_string(spec.tenants.size()) +
                    "|qos=" + to_string(spec.qos) +
                    "|arrival=" + to_string(spec.arrival.model) + ":" +
                    std::to_string(spec.arrival.gap);
  if (spec.arrival.model == ArrivalModel::Trace) {
    for (sim::Time t : spec.arrival.trace) tag += "," + std::to_string(t);
  }
  if (!spec.weights.empty()) {
    tag += "|w=";
    for (double w : spec.weights) tag += std::to_string(w) + ",";
  }
  if (!spec.priorities.empty()) {
    tag += "|p=";
    for (int p : spec.priorities) tag += std::to_string(p) + ",";
  }
  return tag;
}

}  // namespace tpio::xp
