#include "harness/cli.hpp"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdlib>

#include "harness/sweep.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace tpio::xp {

namespace {

wl::Spec workload_by_name(const std::string& name, std::uint64_t bytes,
                          std::string& error) {
  if (name == "ior") {
    return wl::make_ior(bytes != 0 ? bytes : 2ull << 20);
  }
  if (name == "tile256") {
    const std::uint64_t b = bytes != 0 ? bytes : 512ull << 10;
    // 512-byte rows; derive the row count from the requested volume.
    return wl::make_tile256(2, std::max(1, static_cast<int>(b / 512)));
  }
  if (name == "tile1m") {
    const std::uint64_t b = bytes != 0 ? bytes : 2ull << 20;
    return wl::make_tile1m(1, std::max(1, static_cast<int>(b >> 20)));
  }
  if (name == "flash") {
    const std::uint64_t b = bytes != 0 ? bytes : 3ull << 19;  // 1.5 MiB
    const auto per_var = std::max<std::uint64_t>(b / 24, 16 * 1024);
    return wl::make_flash(24, std::max(1, static_cast<int>(per_var / (16 * 1024))),
                          16 * 1024);
  }
  error = "unknown workload '" + name + "'";
  return {};
}

bool parse_overlap(const std::string& v, coll::OverlapMode& out) {
  if (v == "none") out = coll::OverlapMode::None;
  else if (v == "comm") out = coll::OverlapMode::Comm;
  else if (v == "write") out = coll::OverlapMode::Write;
  else if (v == "write-comm") out = coll::OverlapMode::WriteComm;
  else if (v == "write-comm-2") out = coll::OverlapMode::WriteComm2;
  else if (v == "auto") out = coll::OverlapMode::Auto;
  else return false;
  return true;
}

bool parse_transfer(const std::string& v, coll::Transfer& out) {
  if (v == "two-sided") out = coll::Transfer::TwoSided;
  else if (v == "fence") out = coll::Transfer::OneSidedFence;
  else if (v == "lock") out = coll::Transfer::OneSidedLock;
  else return false;
  return true;
}

bool parse_leader(const std::string& v, coll::LeaderPolicy& out) {
  if (v == "lowest") out = coll::LeaderPolicy::Lowest;
  else if (v == "spread") out = coll::LeaderPolicy::Spread;
  else if (v == "superset") out = coll::LeaderPolicy::Superset;
  else return false;
  return true;
}

}  // namespace

bool parse_int_arg(const std::string& s, long long lo, long long hi,
                   long long& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  // Whole-string consumption rejects trailing garbage ("12x"); ERANGE
  // rejects values strtoll had to clamp ("99999999999999999999").
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  if (v < lo || v > hi) return false;
  out = v;
  return true;
}

bool parse_u64_arg(const std::string& s, std::uint64_t& out) {
  if (s.empty() || s[0] == '-') return false;
  errno = 0;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_double_arg(const std::string& s, double lo, double hi,
                      double& out) {
  if (s.empty()) return false;
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(s.c_str(), &end);
  if (end != s.c_str() + s.size() || errno == ERANGE) return false;
  if (!std::isfinite(v) || v < lo || v > hi) return false;
  out = v;
  return true;
}

bool parse_arrival_arg(const std::string& s, ArrivalSpec& out) {
  const std::size_t colon = s.find(':');
  const std::string model = s.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string() : s.substr(colon + 1);
  ArrivalSpec parsed;
  if (model == "fixed" || model == "poisson") {
    parsed.model =
        model == "fixed" ? ArrivalModel::Fixed : ArrivalModel::Poisson;
    double ms = 0.0;
    if (!parse_double_arg(rest, 0.0, 1e12, ms)) return false;
    parsed.gap = sim::milliseconds(ms);
  } else if (model == "trace") {
    parsed.model = ArrivalModel::Trace;
    std::size_t pos = 0;
    while (pos <= rest.size()) {
      const std::size_t comma = rest.find(',', pos);
      const std::string tok =
          rest.substr(pos, comma == std::string::npos ? std::string::npos
                                                      : comma - pos);
      double ms = 0.0;
      if (!parse_double_arg(tok, 0.0, 1e12, ms)) return false;
      parsed.trace.push_back(sim::milliseconds(ms));
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
    if (parsed.trace.empty()) return false;
  } else {
    return false;
  }
  out = parsed;
  return true;
}

Platform platform_by_name(const std::string& name) {
  if (name == "crill") return scaled(crill());
  if (name == "ibex") return scaled(ibex());
  if (name == "lustre") return scaled(lustre());
  tpio::fail("unknown platform '" + name + "' (crill|ibex|lustre)");
}

std::string cli_usage() {
  return
      "tpio_sim - run one simulated collective-write experiment\n"
      "\n"
      "  --platform crill|ibex|lustre       cluster profile (default ibex)\n"
      "  --workload ior|tile256|tile1m|flash  access pattern (default tile1m)\n"
      "  --procs N                          MPI processes (default 64)\n"
      "  --bytes-per-proc SIZE              per-process volume (e.g. 4M)\n"
      "  --cb SIZE                          collective buffer (default 4M)\n"
      "  --overlap none|comm|write|write-comm|write-comm-2|auto\n"
      "  --transfer two-sided|fence|lock    shuffle primitive\n"
      "  --aggregators N                    0 = automatic\n"
      "  --probe-cycles N                   auto: probe cycles (default 4)\n"
      "  --tuning-cache FILE                auto: persistent decision cache\n"
      "  --hierarchical                     two-level (intra-node) shuffle\n"
      "  --leader lowest|spread|superset    lane-leader policy (default\n"
      "                                     lowest; superset puts leaders on\n"
      "                                     the node's aggregators)\n"
      "  --local-aggs N                     local aggregators (lanes) per\n"
      "                                     node; N > 1 pipelines each\n"
      "                                     lane's gather against its\n"
      "                                     forwards (default 1)\n"
      "  --dense-metadata                   materialize every rank's view on\n"
      "                                     every rank (legacy exchange; same\n"
      "                                     virtual cost, more host memory)\n"
      "  --reps N                           measurements (default 3)\n"
      "  --seed N                           master seed (default 1)\n"
      "  --verify                           check file contents\n"
      "  --fault-rate R                     per-attempt write-failure prob.\n"
      "  --fault-seed N                     fault-scenario seed (default 1)\n"
      "  --fail-until N                     attempts 1..N-1 of every op fail\n"
      "  --straggler F                      straggler service multiplier\n"
      "  --straggler-targets N              targets that straggle (default 0)\n"
      "  --straggler-after MS               virtual onset of the slowdown\n"
      "  --max-retries N                    retry budget per op (default 4)\n"
      "  --degrade F                        degraded-mode trigger ratio\n"
      "  --conductor fibers|threads         rank substrate (default fibers)\n"
      "  --tenants N                        run N copies on one shared PFS;\n"
      "                                     tenant 0 is measured, the rest\n"
      "                                     are NoOverlap background writers\n"
      "  --arrival fixed:MS|poisson:MS|trace:MS,MS,...\n"
      "                                     tenant arrival schedule (virtual\n"
      "                                     milliseconds; default fixed:0)\n"
      "  --qos fifo|fair|priority           shared-target queuing discipline\n"
      "                                     (priority: tenant 0 on top)\n"
      "  --sub-comms N|auto                 split ranks into N sub-\n"
      "                                     communicators, one file each\n"
      "                                     (subfiling; default 1 = shared\n"
      "                                     file; auto = probe-driven)\n"
      "  --stripe-unit SIZE                 per-(sub)file stripe unit\n"
      "                                     override (default: platform)\n"
      "  --stripe-factor N                  targets each (sub)file stripes\n"
      "                                     over (default: all targets)\n"
      "  --help\n";
}

CliConfig parse_cli(const std::vector<std::string>& args) {
  CliConfig cfg;
  std::string platform = "ibex";
  std::string workload = "tile1m";
  std::uint64_t bytes = 0;
  // Fault knobs land on the platform's storage system, which is built only
  // after the whole line parses — collect them here, apply at the end.
  pfs::FaultParams faults;
  cfg.spec.nprocs = 64;
  cfg.spec.options.cb_size = kCbSize;

  auto need_value = [&](std::size_t i) -> bool {
    if (i + 1 >= args.size()) {
      cfg.error = "flag " + args[i] + " needs a value";
      return false;
    }
    return true;
  };
  // Strict numeric parsing: rejects zero/negative counts, trailing
  // garbage, and overflowing values with a message naming the flag.
  auto int_flag = [&](const std::string& flag, const std::string& v,
                      long long lo, long long hi) -> long long {
    long long out = 0;
    if (!parse_int_arg(v, lo, hi, out)) {
      cfg.error = flag + " wants an integer in [" + std::to_string(lo) +
                  ", " + std::to_string(hi) + "], got '" + v + "'";
    }
    return out;
  };
  auto bytes_flag = [&](const std::string& flag,
                        const std::string& v) -> std::uint64_t {
    const std::uint64_t b = sim::parse_bytes(v);  // throws on malformed
    if (b == 0) cfg.error = flag + " wants a positive size, got '" + v + "'";
    return b;
  };
  auto double_flag = [&](const std::string& flag, const std::string& v,
                         double lo, double hi) -> double {
    double out = lo;
    if (!parse_double_arg(v, lo, hi, out)) {
      cfg.error = flag + " wants a number in [" + std::to_string(lo) + ", " +
                  std::to_string(hi) + "], got '" + v + "'";
    }
    return out;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    try {
      if (a == "--help" || a == "-h") {
        cfg.quick_help = true;
        return cfg;
      } else if (a == "--platform") {
        if (!need_value(i)) return cfg;
        platform = args[++i];
      } else if (a == "--workload") {
        if (!need_value(i)) return cfg;
        workload = args[++i];
      } else if (a == "--procs") {
        if (!need_value(i)) return cfg;
        cfg.spec.nprocs =
            static_cast<int>(int_flag(a, args[++i], 1, 1'000'000));
      } else if (a == "--bytes-per-proc") {
        if (!need_value(i)) return cfg;
        bytes = bytes_flag(a, args[++i]);
      } else if (a == "--cb") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.cb_size = bytes_flag(a, args[++i]);
      } else if (a == "--overlap") {
        if (!need_value(i)) return cfg;
        if (!parse_overlap(args[++i], cfg.spec.options.overlap)) {
          cfg.error = "unknown overlap mode '" + args[i] + "'";
        }
      } else if (a == "--transfer") {
        if (!need_value(i)) return cfg;
        if (!parse_transfer(args[++i], cfg.spec.options.transfer)) {
          cfg.error = "unknown transfer '" + args[i] + "'";
        }
      } else if (a == "--aggregators") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.num_aggregators =
            static_cast<int>(int_flag(a, args[++i], 0, 1'000'000));
      } else if (a == "--probe-cycles") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.probe_cycles =
            static_cast<int>(int_flag(a, args[++i], 1, 1'000'000));
      } else if (a == "--tuning-cache") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.tuning_cache = args[++i];
      } else if (a == "--hierarchical") {
        cfg.spec.options.hierarchical = true;
      } else if (a == "--dense-metadata") {
        cfg.spec.options.dense_metadata = true;
      } else if (a == "--leader") {
        if (!need_value(i)) return cfg;
        if (!parse_leader(args[++i], cfg.spec.options.leader_policy)) {
          cfg.error = "unknown leader policy '" + args[i] + "'";
        }
      } else if (a == "--local-aggs") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.local_aggregators =
            static_cast<int>(int_flag(a, args[++i], 1, 1'000'000));
      } else if (a == "--reps") {
        if (!need_value(i)) return cfg;
        cfg.reps = static_cast<int>(int_flag(a, args[++i], 1, 1'000'000));
      } else if (a == "--seed") {
        if (!need_value(i)) return cfg;
        if (!parse_u64_arg(args[++i], cfg.seed_base)) {
          cfg.error = "--seed wants an unsigned integer, got '" + args[i] + "'";
        }
      } else if (a == "--verify") {
        cfg.spec.verify = true;
      } else if (a == "--fault-rate") {
        if (!need_value(i)) return cfg;
        faults.write_fail_rate = double_flag(a, args[++i], 0.0, 1.0);
      } else if (a == "--fault-seed") {
        if (!need_value(i)) return cfg;
        if (!parse_u64_arg(args[++i], faults.seed)) {
          cfg.error =
              "--fault-seed wants an unsigned integer, got '" + args[i] + "'";
        }
      } else if (a == "--fail-until") {
        if (!need_value(i)) return cfg;
        faults.fail_until_attempt =
            static_cast<int>(int_flag(a, args[++i], 1, 1'000));
      } else if (a == "--straggler") {
        if (!need_value(i)) return cfg;
        faults.straggler_factor = double_flag(a, args[++i], 1.0, 1e6);
      } else if (a == "--straggler-targets") {
        if (!need_value(i)) return cfg;
        faults.straggler_targets =
            static_cast<int>(int_flag(a, args[++i], 0, 1'000'000));
      } else if (a == "--straggler-after") {
        if (!need_value(i)) return cfg;
        const double ms = double_flag(a, args[++i], 0.0, 1e12);
        faults.straggler_after =
            static_cast<sim::Time>(std::llround(ms * 1e6));
      } else if (a == "--max-retries") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.max_retries =
            static_cast<int>(int_flag(a, args[++i], 0, 1'000));
      } else if (a == "--degrade") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.degrade_slowdown =
            double_flag(a, args[++i], 0.0, 1e6);
      } else if (a == "--conductor") {
        if (!need_value(i)) return cfg;
        const std::string v = args[++i];
        if (v == "fibers") {
          cfg.conductor = sim::ConductorBackend::Fibers;
        } else if (v == "threads") {
          cfg.conductor = sim::ConductorBackend::Threads;
        } else {
          cfg.error = "--conductor wants fibers|threads, got '" + v + "'";
        }
      } else if (a == "--tenants") {
        if (!need_value(i)) return cfg;
        cfg.tenants = static_cast<int>(int_flag(a, args[++i], 1, 64));
      } else if (a == "--arrival") {
        if (!need_value(i)) return cfg;
        if (!parse_arrival_arg(args[++i], cfg.arrival)) {
          cfg.error = "--arrival wants fixed:MS|poisson:MS|trace:MS,MS,..., "
                      "got '" + args[i] + "'";
        }
      } else if (a == "--qos") {
        if (!need_value(i)) return cfg;
        cfg.qos = pfs::parse_qos(args[++i]);  // throws -> caught below
      } else if (a == "--sub-comms") {
        if (!need_value(i)) return cfg;
        const std::string v = args[++i];
        if (v == "auto") {
          cfg.spec.options.sub_comm_count = 0;  // resolved by the tool
        } else {
          cfg.spec.options.sub_comm_count =
              static_cast<int>(int_flag(a, v, 1, 1'000'000));
        }
      } else if (a == "--stripe-unit") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.subfile_stripe_unit = bytes_flag(a, args[++i]);
      } else if (a == "--stripe-factor") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.subfile_stripe_factor =
            static_cast<int>(int_flag(a, args[++i], 1, 1'000'000));
      } else {
        cfg.error = "unknown flag '" + a + "'";
      }
    } catch (const tpio::Error& e) {
      cfg.error = e.what();
    }
    if (!cfg.error.empty()) return cfg;
  }

  try {
    cfg.spec.platform = platform_by_name(platform);
    cfg.spec.platform.pfs.faults = faults;
    cfg.spec.workload = workload_by_name(workload, bytes, cfg.error);
  } catch (const tpio::Error& e) {
    cfg.error = e.what();
  }
  if (cfg.error.empty() && faults.straggler_targets >
                               cfg.spec.platform.pfs.num_targets) {
    cfg.error = "--straggler-targets exceeds the platform's " +
                std::to_string(cfg.spec.platform.pfs.num_targets) +
                " storage targets";
  }
  if (cfg.error.empty() &&
      cfg.spec.options.sub_comm_count > cfg.spec.nprocs) {
    cfg.error = "--sub-comms " +
                std::to_string(cfg.spec.options.sub_comm_count) +
                " exceeds --procs " + std::to_string(cfg.spec.nprocs);
  }
  if (cfg.error.empty() &&
      cfg.spec.options.local_aggregators >
          cfg.spec.platform.procs_per_node) {
    cfg.error = "--local-aggs " +
                std::to_string(cfg.spec.options.local_aggregators) +
                " exceeds the platform's " +
                std::to_string(cfg.spec.platform.procs_per_node) +
                " processes per node";
  }
  if (cfg.error.empty() &&
      cfg.spec.options.leader_policy == coll::LeaderPolicy::Superset &&
      cfg.spec.options.local_aggregators > 1) {
    // Superset needs one global aggregator per lane leader, or the fill
    // degenerates to Spread picks. Placement is round-robin over nodes, so
    // the per-node capacity is ceil(A / nodes); auto aggregator count
    // (--aggregators 0) guarantees only one.
    const int ppn = cfg.spec.platform.procs_per_node;
    const int nodes = (cfg.spec.nprocs + ppn - 1) / ppn;
    const int a = std::min(cfg.spec.options.num_aggregators, cfg.spec.nprocs);
    const int per_node = cfg.spec.options.num_aggregators == 0
                             ? 1
                             : (a + nodes - 1) / nodes;
    if (cfg.spec.options.local_aggregators > per_node) {
      cfg.error = "--leader superset with --local-aggs " +
                  std::to_string(cfg.spec.options.local_aggregators) +
                  " exceeds the " + std::to_string(per_node) +
                  " aggregator(s) per node; raise --aggregators or lower "
                  "--local-aggs";
    }
  }
  if (cfg.error.empty() && cfg.arrival.model == ArrivalModel::Trace &&
      static_cast<int>(cfg.arrival.trace.size()) != cfg.tenants) {
    cfg.error = "--arrival trace lists " +
                std::to_string(cfg.arrival.trace.size()) +
                " instants but --tenants is " + std::to_string(cfg.tenants);
  }
  return cfg;
}

}  // namespace tpio::xp
