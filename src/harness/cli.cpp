#include "harness/cli.hpp"

#include <cstdlib>

#include "harness/sweep.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace tpio::xp {

namespace {

/// Lustre-like profile: ibex hardware, pathological aio (paper, section V:
/// "significant performance problems of the aio_write operations on
/// Lustre").
Platform lustre() {
  Platform p = ibex();
  p.name = "lustre";
  p.pfs.aio_penalty = 2.2;
  p.pfs.aio_penalty_sigma = 0.25;
  return p;
}

wl::Spec workload_by_name(const std::string& name, std::uint64_t bytes,
                          std::string& error) {
  if (name == "ior") {
    return wl::make_ior(bytes != 0 ? bytes : 2ull << 20);
  }
  if (name == "tile256") {
    const std::uint64_t b = bytes != 0 ? bytes : 512ull << 10;
    // 512-byte rows; derive the row count from the requested volume.
    return wl::make_tile256(2, std::max(1, static_cast<int>(b / 512)));
  }
  if (name == "tile1m") {
    const std::uint64_t b = bytes != 0 ? bytes : 2ull << 20;
    return wl::make_tile1m(1, std::max(1, static_cast<int>(b >> 20)));
  }
  if (name == "flash") {
    const std::uint64_t b = bytes != 0 ? bytes : 3ull << 19;  // 1.5 MiB
    const auto per_var = std::max<std::uint64_t>(b / 24, 16 * 1024);
    return wl::make_flash(24, std::max(1, static_cast<int>(per_var / (16 * 1024))),
                          16 * 1024);
  }
  error = "unknown workload '" + name + "'";
  return {};
}

bool parse_overlap(const std::string& v, coll::OverlapMode& out) {
  if (v == "none") out = coll::OverlapMode::None;
  else if (v == "comm") out = coll::OverlapMode::Comm;
  else if (v == "write") out = coll::OverlapMode::Write;
  else if (v == "write-comm") out = coll::OverlapMode::WriteComm;
  else if (v == "write-comm-2") out = coll::OverlapMode::WriteComm2;
  else return false;
  return true;
}

bool parse_transfer(const std::string& v, coll::Transfer& out) {
  if (v == "two-sided") out = coll::Transfer::TwoSided;
  else if (v == "fence") out = coll::Transfer::OneSidedFence;
  else if (v == "lock") out = coll::Transfer::OneSidedLock;
  else return false;
  return true;
}

bool parse_leader(const std::string& v, coll::LeaderPolicy& out) {
  if (v == "lowest") out = coll::LeaderPolicy::Lowest;
  else if (v == "spread") out = coll::LeaderPolicy::Spread;
  else return false;
  return true;
}

}  // namespace

Platform platform_by_name(const std::string& name) {
  if (name == "crill") return scaled(crill());
  if (name == "ibex") return scaled(ibex());
  if (name == "lustre") return scaled(lustre());
  tpio::fail("unknown platform '" + name + "' (crill|ibex|lustre)");
}

std::string cli_usage() {
  return
      "tpio_sim - run one simulated collective-write experiment\n"
      "\n"
      "  --platform crill|ibex|lustre       cluster profile (default ibex)\n"
      "  --workload ior|tile256|tile1m|flash  access pattern (default tile1m)\n"
      "  --procs N                          MPI processes (default 64)\n"
      "  --bytes-per-proc SIZE              per-process volume (e.g. 4M)\n"
      "  --cb SIZE                          collective buffer (default 4M)\n"
      "  --overlap none|comm|write|write-comm|write-comm-2\n"
      "  --transfer two-sided|fence|lock    shuffle primitive\n"
      "  --aggregators N                    0 = automatic\n"
      "  --hierarchical                     two-level (intra-node) shuffle\n"
      "  --leader lowest|spread             node-leader policy (default lowest)\n"
      "  --reps N                           measurements (default 3)\n"
      "  --seed N                           master seed (default 1)\n"
      "  --verify                           check file contents\n"
      "  --help\n";
}

CliConfig parse_cli(const std::vector<std::string>& args) {
  CliConfig cfg;
  std::string platform = "ibex";
  std::string workload = "tile1m";
  std::uint64_t bytes = 0;
  cfg.spec.nprocs = 64;
  cfg.spec.options.cb_size = kCbSize;

  auto need_value = [&](std::size_t i) -> bool {
    if (i + 1 >= args.size()) {
      cfg.error = "flag " + args[i] + " needs a value";
      return false;
    }
    return true;
  };

  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& a = args[i];
    try {
      if (a == "--help" || a == "-h") {
        cfg.quick_help = true;
        return cfg;
      } else if (a == "--platform") {
        if (!need_value(i)) return cfg;
        platform = args[++i];
      } else if (a == "--workload") {
        if (!need_value(i)) return cfg;
        workload = args[++i];
      } else if (a == "--procs") {
        if (!need_value(i)) return cfg;
        cfg.spec.nprocs = std::atoi(args[++i].c_str());
        if (cfg.spec.nprocs <= 0) cfg.error = "--procs must be positive";
      } else if (a == "--bytes-per-proc") {
        if (!need_value(i)) return cfg;
        bytes = sim::parse_bytes(args[++i]);
      } else if (a == "--cb") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.cb_size = sim::parse_bytes(args[++i]);
      } else if (a == "--overlap") {
        if (!need_value(i)) return cfg;
        if (!parse_overlap(args[++i], cfg.spec.options.overlap)) {
          cfg.error = "unknown overlap mode '" + args[i] + "'";
        }
      } else if (a == "--transfer") {
        if (!need_value(i)) return cfg;
        if (!parse_transfer(args[++i], cfg.spec.options.transfer)) {
          cfg.error = "unknown transfer '" + args[i] + "'";
        }
      } else if (a == "--aggregators") {
        if (!need_value(i)) return cfg;
        cfg.spec.options.num_aggregators = std::atoi(args[++i].c_str());
      } else if (a == "--hierarchical") {
        cfg.spec.options.hierarchical = true;
      } else if (a == "--leader") {
        if (!need_value(i)) return cfg;
        if (!parse_leader(args[++i], cfg.spec.options.leader_policy)) {
          cfg.error = "unknown leader policy '" + args[i] + "'";
        }
      } else if (a == "--reps") {
        if (!need_value(i)) return cfg;
        cfg.reps = std::atoi(args[++i].c_str());
        if (cfg.reps <= 0) cfg.error = "--reps must be positive";
      } else if (a == "--seed") {
        if (!need_value(i)) return cfg;
        cfg.seed_base = std::strtoull(args[++i].c_str(), nullptr, 10);
      } else if (a == "--verify") {
        cfg.spec.verify = true;
      } else {
        cfg.error = "unknown flag '" + a + "'";
      }
    } catch (const tpio::Error& e) {
      cfg.error = e.what();
    }
    if (!cfg.error.empty()) return cfg;
  }

  try {
    cfg.spec.platform = platform_by_name(platform);
    cfg.spec.workload = workload_by_name(workload, bytes, cfg.error);
  } catch (const tpio::Error& e) {
    cfg.error = e.what();
  }
  return cfg;
}

}  // namespace tpio::xp
