#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "harness/executor.hpp"
#include "harness/runner.hpp"
#include "harness/tenancy.hpp"

namespace tpio::xp {

/// Scaled-experiment constants shared by every paper-reproduction bench.
///
/// The published experiments use GB-scale files, a 32 MiB collective
/// buffer, 1 MiB stripes and a 512 KiB eager limit on clusters of up to
/// 704 cores. The simulation reproduces the *dimensionless* regime at 1/8
/// geometry (collective buffer 4 MiB, stripe 128 KiB, eager limit 64 KiB)
/// with process counts {16..196} standing in for the paper's {64..704}
/// (a factor ~4 reduction) and per-process volumes of 0.5-4 MiB. Ratios
/// preserved: stripes per sub-buffer (16 = number of storage targets),
/// cycles per file domain (4-50), shuffle-message sizes straddling the
/// eager/rendezvous boundary.
inline constexpr std::uint64_t kGeometryScale = 8;
inline constexpr std::uint64_t kCbSize = 4ull << 20;
/// Process counts scale by ~4 vs the paper; procs-per-node scales with
/// them so node (and thus aggregator) counts match the published runs —
/// per-aggregator storage share, NIC incast degree and file-domain sizes
/// all depend on the node count, not the rank count.
inline constexpr int kProcScale = 4;
/// Collective buffer of the *unscaled* (paper-scale) runs: the published
/// 32 MiB (scaled runs use kCbSize).
inline constexpr std::uint64_t kPaperCbSize = 32ull << 20;

/// Platform preset with the benchmark geometry scaling applied.
Platform scaled(Platform p);

/// Platform for one bench grid: the preset verbatim at paper scale, the
/// 1/8-geometry stand-in otherwise.
Platform bench_platform(const Platform& p, bool paper_scale);
/// Collective buffer for one bench grid (paper 32 MiB vs scaled 4 MiB).
std::uint64_t bench_cb_size(bool paper_scale);

/// One benchmark configuration of the Table I / Figs. 2-3 sweep.
struct SweepCase {
  wl::Kind kind;
  std::string size_label;
  wl::Spec workload;
};

/// The paper's four benchmarks, two problem sizes each (section IV).
std::vector<SweepCase> paper_workloads();

/// Scaled stand-ins for the paper's process counts.
std::vector<int> paper_proc_counts(bool quick);
/// Process counts of one bench grid: the paper's published counts
/// (64..400, with the fiber conductor comfortably past the 576-proc Fig. 1
/// cells) at paper scale, the 1/kProcScale stand-ins otherwise.
std::vector<int> paper_proc_counts(bool quick, bool paper_scale);

/// Result of one test *series*: a fixed (platform, workload, process
/// count) measured `reps` times for every overlap algorithm; per-algorithm
/// minima decide the winner, as in the paper's methodology.
struct OverlapSeries {
  std::string platform;
  wl::Kind kind;
  std::string size_label;
  int procs = 0;
  std::map<coll::OverlapMode, double> min_ms;
  /// Fastest *fixed* scheduler of the series. OverlapMode::Auto entries
  /// (present on six-column grids) are skipped — Auto is a selector, not a
  /// competitor — and exact ties resolve to the NoOverlap baseline so an
  /// overlap algorithm only counts as a Table I win when it strictly beats
  /// it.
  coll::OverlapMode winner() const;
  /// (min_none - min_mode) / min_none; positive = mode faster.
  double improvement(coll::OverlapMode mode) const;
};

/// Run the full overlap-algorithm sweep on one platform.
///
/// The sweep is planned as a flat grid of independent (series, mode) jobs —
/// each with its seed derived up front from (seed, series, mode) — and
/// executed by the parallel sweep executor (harness/executor.hpp). Results
/// are merged back in grid order, so the returned tables are bit-identical
/// for every `exec.jobs` value; `exec.jobs == 1` runs the historical serial
/// path on the calling thread.
/// `paper_scale` runs the grid at the unscaled geometry: the platform
/// preset verbatim, the paper's process counts, and the 32 MiB collective
/// buffer. Checkpoints are namespaced separately from the scaled grid.
std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             int reps, std::uint64_t seed,
                                             bool quick,
                                             const ExecOptions& exec,
                                             bool paper_scale = false);
std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             int reps, std::uint64_t seed,
                                             bool quick);
/// Same sweep with caller-supplied base options (e.g. hierarchical mode);
/// the grid still overrides cb_size and the overlap algorithm per job.
/// With include_auto the grid gains a sixth column, OverlapMode::Auto,
/// measured exactly like the fixed schedulers (its job seed slot is
/// distinct, so the five fixed columns are bit-identical either way);
/// winner() ignores it.
std::vector<OverlapSeries> run_overlap_sweep(const Platform& platform,
                                             const coll::Options& base,
                                             int reps, std::uint64_t seed,
                                             bool quick,
                                             const ExecOptions& exec,
                                             bool include_auto = false,
                                             bool paper_scale = false);

/// Multi-tenant configuration of a contended sweep cell.
struct ContentionConfig {
  /// Background tenants sharing the system with the measured job.
  int neighbors = 1;
  /// Arrival schedule of all tenants (measured job is tenant 0).
  ArrivalSpec arrival;
  pfs::QosPolicy qos = pfs::QosPolicy::Fifo;
  /// Optional per-tenant FairShare weights / priority classes
  /// (size = neighbors + 1; empty = uniform).
  std::vector<double> weights;
  std::vector<int> priorities;
  /// Optional explicit neighbor job. When unset (has_neighbor == false)
  /// each neighbor clones the measured cell's workload and process count
  /// with the NoOverlap scheduler — a steady same-shape background writer
  /// hammering the same storage targets.
  RunSpec neighbor;
  bool has_neighbor = false;
};

/// The Table I overlap sweep under contention: every (series, algorithm)
/// cell runs as tenant 0 of a shared system with `tenancy.neighbors`
/// background jobs, and the recorded measurement is the *measured
/// tenant's* minimum turnaround (completion - arrival) across reps. Same
/// executor guarantees as run_overlap_sweep: the grid is planned up front
/// with per-job derived seeds, so tables are bit-identical at any
/// exec.jobs and on either conductor backend. Checkpoints are namespaced
/// by the tenancy configuration (tenancy_tag) on top of the usual
/// manifest, so contended results can never splice into idle-system ones.
std::vector<OverlapSeries> run_contended_sweep(const Platform& platform,
                                               const coll::Options& base,
                                               const ContentionConfig& tenancy,
                                               int reps, std::uint64_t seed,
                                               bool quick,
                                               const ExecOptions& exec);

/// Same sweep shape for the data-transfer-primitive study (Fig. 4):
/// Write-Comm-2 scheduler, three shuffle primitives.
struct PrimitiveSeries {
  std::string platform;
  wl::Kind kind;
  std::string size_label;
  int procs = 0;
  std::map<coll::Transfer, double> min_ms;
  /// Fastest primitive; exact ties resolve to the two-sided baseline
  /// (Fig. 4 counts one-sided wins only when strictly faster).
  coll::Transfer winner() const;
  double improvement(coll::Transfer t) const;  // vs two-sided
};

std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 int reps, std::uint64_t seed,
                                                 bool quick,
                                                 const ExecOptions& exec);
std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 int reps, std::uint64_t seed,
                                                 bool quick);
/// Primitive sweep with caller-supplied base options; the grid still
/// overrides cb_size, the scheduler and the transfer primitive per job.
std::vector<PrimitiveSeries> run_primitive_sweep(const Platform& platform,
                                                 const coll::Options& base,
                                                 int reps, std::uint64_t seed,
                                                 bool quick,
                                                 const ExecOptions& exec);

/// Command-line flags shared by the paper-reproduction bench drivers:
///   --quick        reduced grid / fewer reps
///   --jobs N       worker threads (0 = hardware concurrency, 1 = serial)
///   --progress     live sweep progress on stderr
///   --paper-scale  unscaled geometry: platform presets verbatim, the
///                  paper's process counts (incl. the 576-proc Fig. 1
///                  cells), 32 MiB collective buffer
/// Unknown flags set ok = false (caller prints usage and exits).
struct BenchArgs {
  bool quick = false;
  bool paper_scale = false;
  ExecOptions exec;
  bool ok = true;
};
BenchArgs parse_bench_args(int argc, char** argv);

}  // namespace tpio::xp
