#include "harness/runner.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "core/autotune.hpp"
#include "harness/tenancy.hpp"
#include "net/topology.hpp"
#include "sched/conductor.hpp"
#include "simbase/bufpool.hpp"
#include "simbase/error.hpp"
#include "simbase/rng.hpp"

namespace tpio::xp {

RunResult execute(const RunSpec& spec) {
  TPIO_CHECK(spec.nprocs > 0, "run needs processes");
  TPIO_CHECK(spec.options.sub_comm_count >= 1,
             "sub_comm_count must be resolved (>= 1) before execute; "
             "0 = auto is decided by xp::auto_sub_comm_count");

  // Subfiling (or per-file striping overrides): run through the
  // multi-group machinery as a single tenant. The lone-tenant path is
  // pinned bit-identical to the inline runner below by the contention and
  // subfiling differential suites.
  if (spec.options.sub_comm_count > 1 || spec.options.subfile_stripe_unit > 0 ||
      spec.options.subfile_stripe_factor > 0) {
    MultiRunSpec ms;
    ms.tenants = {spec};
    ms.seed = spec.seed;
    MultiRunResult mr = execute_multi(ms);
    return std::move(mr.tenants[0].run);
  }

  net::FabricParams fp = spec.platform.fabric;
  fp.noise_seed = sim::Rng::derive_seed(spec.seed, 0xFAB);
  pfs::PfsParams pp = spec.platform.pfs;
  pp.noise_seed = sim::Rng::derive_seed(spec.seed, 0x57C);
  if (pp.aio_penalty_sigma > 0.0) {
    // One aio-quality draw per run (see PfsParams::aio_penalty_sigma).
    sim::Rng rng(sim::Rng::derive_seed(spec.seed, 0xA10));
    const double jitter = std::exp(pp.aio_penalty_sigma * rng.next_normal());
    pp.aio_penalty *= std::max(1.0, jitter);
    pp.aio_penalty_sigma = 0.0;
  }

  const net::Topology topo =
      net::Topology::fit(spec.nprocs, spec.platform.procs_per_node);
  if (spec.platform.targets_per_node > 0) {
    pp.num_targets = std::max(1, topo.nodes * spec.platform.targets_per_node);
  }
  net::Fabric fabric(topo, fp);
  smpi::Machine machine(fabric, spec.platform.mpi);
  pfs::StorageSystem storage(pp, &fabric);
  auto file = storage.create(
      "run", spec.verify ? pfs::Integrity::Digest : pfs::Integrity::None);

  // Timing-only fast path: without verification the file records no
  // content, fault verdicts are pure functions of offsets, and no payload
  // byte is ever consumed — so the workload pattern is not materialized
  // and the engines skip every host-side payload copy. All RunResult
  // fields are bit-identical to a materialized run.
  coll::Options eff = spec.options;
  eff.materialize = spec.verify;

  sim::Conductor conductor(topo.nprocs());
  std::vector<coll::Result> results(static_cast<std::size_t>(topo.nprocs()));
  conductor.run([&](sim::RankCtx& ctx) {
    smpi::Mpi mpi(machine, ctx);
    const coll::FileView view = spec.workload.view(mpi.rank(), spec.nprocs);
    sim::BufferPool::Buffer data = sim::BufferPool::local().acquire(
        view.total_bytes(), /*zeroed=*/false);
    if (eff.materialize) wl::fill_into(view, data.span());
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data.span(), eff);
  });

  RunResult out;
  out.arrival = 0;
  out.completion = conductor.makespan();
  out.makespan = out.completion - out.arrival;
  out.aggregators = results[0].aggregators;
  out.cycles = results[0].cycles;
  out.bytes = results[0].bytes_global;
  out.autotune = results[0].autotune;
  out.inter_node_bytes = fabric.inter_node_bytes();
  out.inter_node_messages = fabric.inter_node_messages();
  out.intra_node_bytes = fabric.intra_node_bytes();
  sim::Duration fwd_lifetime = 0, fwd_blocked = 0;
  for (int r = 0; r < spec.nprocs; ++r) {
    const auto& res = results[static_cast<std::size_t>(r)];
    out.rank_sum += res.timings;
    out.faults += res.faults;
    fwd_lifetime += res.forward_lifetime;
    fwd_blocked += res.forward_blocked;
    out.gather_critical = std::max(out.gather_critical, res.timings.gather);
    if (out.io_error.empty()) {
      out.io_error = res.io_error;
    }
  }
  // Pipelined-overlap fraction: across all lane leaders and cycles, the
  // share of forward-message lifetime the leaders were NOT blocked on —
  // forwarding hidden under other work (typically the next lane gather).
  // 0.0 whenever no rank forwarded pipelined (non-hierarchical, co = 1,
  // one-sided), preserving field-for-field equality with legacy results.
  if (fwd_lifetime > 0) {
    out.pipelined_overlap =
        1.0 - static_cast<double>(fwd_blocked) /
                  static_cast<double>(fwd_lifetime);
  }
  // Aggregator attribution: aggregators are the ranks that reported write
  // time (non-aggregators never touch the file system).
  for (int r = 0; r < spec.nprocs; ++r) {
    const auto& t = results[static_cast<std::size_t>(r)].timings;
    if (t.write > 0) {
      out.agg_sum += t;
      if (t.write > out.agg_max.write) out.agg_max = t;
    }
  }
  if (spec.verify) {
    out.verify_error = file->verify(wl::expected_byte);
    // verify() checks consistency of what arrived; after give-ups the file
    // can be *consistently short* (trailing regions never written shrink
    // it), so also demand the full planned volume landed.
    if (out.verify_error.empty() && file->bytes_written() != out.bytes) {
      out.verify_error = "file holds " +
                         std::to_string(file->bytes_written()) + " of " +
                         std::to_string(out.bytes) +
                         " expected bytes (I/O give-ups?)";
    }
  }
  return out;
}

int auto_sub_comm_count(const RunSpec& spec) {
  const net::Topology topo =
      net::Topology::fit(spec.nprocs, spec.platform.procs_per_node);
  int num_targets = spec.platform.pfs.num_targets;
  if (spec.platform.targets_per_node > 0) {
    num_targets = std::max(1, topo.nodes * spec.platform.targets_per_node);
  }
  // Blocking probe runs at doubling k, lazily: the search stops at the
  // first candidate that fails the improvement floor, so the common
  // shared-file answer costs two probes. Probes are virtual-time runs of
  // the spec itself (same seed), so the decision is a pure function of
  // the spec — deterministic across workers and conductor backends.
  std::vector<double> probe_ms;
  for (const int k : coll::sub_comm_candidates(topo, num_targets)) {
    if (k > spec.nprocs) break;
    RunSpec probe = spec;
    probe.options.sub_comm_count = k;
    probe.options.overlap = coll::OverlapMode::None;
    probe.options.trace = nullptr;
    probe.options.tuning_cache.clear();
    probe.verify = false;
    const RunResult r = execute(probe);
    probe_ms.push_back(sim::to_millis(r.makespan));
    if (coll::decide_sub_comm_count(probe_ms,
                                    spec.options.auto_subfile_floor) < k) {
      break;  // k lost to the previous probe; larger k only fragments more
    }
  }
  return coll::decide_sub_comm_count(probe_ms, spec.options.auto_subfile_floor);
}

sim::Duration Series::min_makespan() const {
  TPIO_CHECK(!runs.empty(), "empty series");
  sim::Duration m = runs.front().makespan;
  for (const RunResult& r : runs) m = std::min(m, r.makespan);
  return m;
}

Series execute_series(RunSpec spec, int reps, std::uint64_t seed_base) {
  Series s;
  s.runs.reserve(static_cast<std::size_t>(reps));
  for (int i = 0; i < reps; ++i) {
    spec.seed = sim::Rng::derive_seed(seed_base, static_cast<std::uint64_t>(i));
    s.runs.push_back(execute(spec));
    TPIO_CHECK(s.runs.back().verify_error.empty(),
               "verification failed: " + s.runs.back().verify_error);
  }
  return s;
}

// ---------------------------------------------------------------------------
// Table output
// ---------------------------------------------------------------------------

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  TPIO_CHECK(cells.size() == headers_.size(), "table row arity mismatch");
  rows_.push_back(std::move(cells));
}

void Table::print() const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    std::string line = "|";
    for (std::size_t c = 0; c < row.size(); ++c) {
      line += " " + row[c] + std::string(width[c] - row[c].size(), ' ') + " |";
    }
    std::puts(line.c_str());
  };
  print_row(headers_);
  std::string sep = "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    sep += std::string(width[c] + 2, '-') + "|";
  }
  std::puts(sep.c_str());
  for (const auto& row : rows_) print_row(row);
}

std::string fmt_pct(double fraction) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f%%", fraction * 100.0);
  return buf;
}

std::string fmt_ms(sim::Duration d) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.2f", sim::to_millis(d));
  return buf;
}

std::string fmt_bw(double bytes_per_s) { return sim::format_bandwidth(bytes_per_s); }

}  // namespace tpio::xp
