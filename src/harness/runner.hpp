#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "harness/platform.hpp"
#include "pfs/qos.hpp"
#include "workloads/workloads.hpp"

namespace tpio::xp {

/// Per-subfile outcome of a subfiled run (Options::sub_comm_count > 1):
/// one entry per sub-communicator, in subgroup order.
struct SubfileResult {
  int group = 0;             // sub-communicator index, 0..k-1
  int ranks = 0;             // ranks in the subgroup
  int aggregators = 0;       // aggregator count the subgroup elected
  std::uint64_t bytes = 0;   // bytes the subgroup wrote to its subfile
  sim::Time completion = 0;  // virtual instant the subgroup finished
  pfs::QosStats qos;         // storage interference stats of the subfile
};

/// One fully-specified simulated collective-write job.
struct RunSpec {
  Platform platform;
  wl::Spec workload;
  int nprocs = 16;
  coll::Options options;
  /// Master seed; the runner derives independent fabric/storage noise
  /// streams from it. Distinct seeds model distinct "measurements" of the
  /// same configuration on a shared machine.
  std::uint64_t seed = 1;
  /// Verify file contents after the run (Digest) or only time it (None).
  bool verify = false;
};

struct RunResult {
  /// Virtual instant the job entered the system (0 for solo runs; a
  /// tenant's arrival offset in contended multi-runs).
  sim::Time arrival = 0;
  /// Virtual instant the slowest rank finished.
  sim::Time completion = 0;
  /// Turnaround: completion - arrival. For a job arriving at t=0 this is
  /// the historical "job completion (slowest rank)"; for delayed arrivals
  /// it measures the job itself, not the idle lead-in — which keeps
  /// bandwidth() and the sweep winner logic honest (a job delayed on an
  /// idle system reports the same makespan as one starting at 0).
  sim::Duration makespan = 0;
  coll::PhaseTimings rank_sum;       // timings summed over ranks
  coll::PhaseTimings agg_sum;        // timings summed over aggregators only
  /// Timings of the bottleneck aggregator (largest write time). Storage
  /// service is not perfectly balanced across aggregators; the early
  /// finishers wait for the slowest at the next cycle's synchronization,
  /// so per-phase shares are only meaningful on the critical aggregator.
  coll::PhaseTimings agg_max;
  int aggregators = 0;
  int cycles = 0;
  std::uint64_t bytes = 0;           // global volume
  // Fabric traffic counters (whole run, all ranks): what the hierarchical
  // shuffle trades — fewer/larger inter-node messages for intra-node copies.
  std::uint64_t inter_node_bytes = 0;
  std::uint64_t inter_node_messages = 0;
  std::uint64_t intra_node_bytes = 0;
  /// Pipelined intra-node aggregation (hierarchical, local_aggregators > 1,
  /// two-sided): fraction of the lane leaders' forward-message lifetimes
  /// hidden under other work (next cycle's gather) instead of blocking the
  /// leader. 0.0 whenever nothing forwarded pipelined — non-hierarchical
  /// runs, co = 1, one-sided transfers — so legacy results compare equal
  /// field-for-field.
  double pipelined_overlap = 0.0;
  /// Critical path of the intra-node gather: the largest per-rank gather
  /// time. This is the quantity local aggregators (co) attack — splitting a
  /// node into lanes shortens the serial chain of member receives on each
  /// leader. Deliberately excludes the forward bucket: co = 1 charges its
  /// forwards to `shuffle` (legacy field equality), so gather is the only
  /// bucket that means the same thing at every co.
  sim::Duration gather_critical = 0;
  /// OverlapMode::Auto only: what the probe phase decided (identical on
  /// every rank; engaged == false for fixed overlap modes).
  coll::AutoDecision autotune;
  /// Retry/give-up/degradation counters summed over all ranks (fault
  /// injection; all zero on a fault-free run). Deterministic: identical at
  /// any --jobs N for a given spec + seed.
  coll::FaultStats faults;
  /// First give-up description across ranks; empty when every operation
  /// eventually succeeded. Non-empty means the file has a hole (verify
  /// will also report it when requested).
  std::string io_error;
  std::string verify_error;          // empty = verified / not requested
  /// Subfiling only (Options::sub_comm_count > 1): per-subfile outcomes.
  /// Empty on every shared-file run, so k == 1 results compare equal to
  /// the pre-subfiling RunResult field-for-field.
  std::vector<SubfileResult> subfiles;
  double bandwidth() const {         // effective write bandwidth, bytes/s
    return makespan > 0
               ? static_cast<double>(bytes) / sim::to_seconds(makespan)
               : 0.0;
  }
};

/// Execute one job on a freshly-built simulated cluster.
RunResult execute(const RunSpec& spec);

/// Resolve Options::sub_comm_count == 0 ("auto-k") by measurement: run a
/// cheap blocking probe of `spec` (OverlapMode::None, no trace/verify,
/// same seed) at each k from coll::sub_comm_candidates — lazily, stopping
/// at the first k that fails the improvement floor — and pick via
/// coll::decide_sub_comm_count. Whether splitting pays is a property of
/// the whole platform (per-request storage overheads, stream limits,
/// fabric speed) that no single shared-file run reveals, so auto-k probes
/// instead of predicting. Deterministic: probe timings are virtual, so
/// the result is a pure function of the spec. Returns k >= 1; the caller
/// stores it into Options::sub_comm_count before execute().
int auto_sub_comm_count(const RunSpec& spec);

/// Minimum makespan across `reps` seeds (the paper compares per-point
/// minima across 3-9 measurements; see section IV).
struct Series {
  std::vector<RunResult> runs;
  sim::Duration min_makespan() const;
};
Series execute_series(RunSpec spec, int reps, std::uint64_t seed_base);

// ------------------------------------------------------------------------
// Table output
// ------------------------------------------------------------------------

/// Fixed-width console table, markdown-ish.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);
  void add_row(std::vector<std::string> cells);
  void print() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

std::string fmt_pct(double fraction);     // "12.3%"
std::string fmt_ms(sim::Duration d);      // "12.34"
std::string fmt_bw(double bytes_per_s);   // "1.23 GiB/s"

}  // namespace tpio::xp
