#include "harness/executor.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <set>
#include <sstream>
#include <thread>

#include "simbase/error.hpp"

namespace tpio::xp {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

// ---------------------------------------------------------------------------
// Minimal JSON (only the subset the checkpoint format needs)
// ---------------------------------------------------------------------------

void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

/// Cursor over a JSON text; every parse_* returns false on mismatch.
struct JsonCursor {
  const char* p;
  const char* end;

  void skip_ws() {
    while (p != end && (*p == ' ' || *p == '\n' || *p == '\r' || *p == '\t')) {
      ++p;
    }
  }
  bool literal(char c) {
    skip_ws();
    if (p == end || *p != c) return false;
    ++p;
    return true;
  }
  bool parse_string(std::string& out) {
    skip_ws();
    if (p == end || *p != '"') return false;
    ++p;
    out.clear();
    while (p != end && *p != '"') {
      if (*p == '\\') {
        ++p;
        if (p == end) return false;
        switch (*p) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (end - p < 5) return false;
            out += static_cast<char>(std::strtol(std::string(p + 1, p + 5).c_str(),
                                                 nullptr, 16));
            p += 4;
            break;
          }
          default: return false;
        }
        ++p;
      } else {
        out += *p++;
      }
    }
    if (p == end) return false;
    ++p;  // closing quote
    return true;
  }
  bool parse_number(double& out) {
    skip_ws();
    char* after = nullptr;
    out = std::strtod(p, &after);
    if (after == p) return false;
    p = after;
    return true;
  }
};

}  // namespace

std::string grid_signature(const std::vector<SweepJob>& jobs) {
  // FNV-1a over the ordered keys with a separator byte, so the signature
  // distinguishes re-orderings and key-boundary shifts, not just content.
  std::uint64_t h = 1469598103934665603ull;
  auto mix = [&h](unsigned char byte) {
    h ^= byte;
    h *= 1099511628211ull;
  };
  for (const SweepJob& j : jobs) {
    for (char ch : j.key) mix(static_cast<unsigned char>(ch));
    mix(0x1f);
  }
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%zu:%016llx", jobs.size(),
                static_cast<unsigned long long>(h));
  return buf;
}

bool checkpoint_load(const std::string& path, Checkpoint& out) {
  out = Checkpoint{};
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string text = ss.str();
  JsonCursor c{text.data(), text.data() + text.size()};

  std::string key;
  if (!c.literal('{') || !c.parse_string(key) || key != "manifest" ||
      !c.literal(':') || !c.parse_string(out.manifest) || !c.literal(',') ||
      !c.parse_string(key) || key != "grid" || !c.literal(':') ||
      !c.parse_string(out.grid) || !c.literal(',') ||
      !c.parse_string(key) || key != "done" || !c.literal(':') ||
      !c.literal('{')) {
    out = Checkpoint{};
    return false;
  }
  c.skip_ws();
  if (c.p != c.end && *c.p == '}') {
    ++c.p;
  } else {
    for (;;) {
      double v = 0.0;
      if (!c.parse_string(key) || !c.literal(':') || !c.parse_number(v)) {
        out = Checkpoint{};
        return false;
      }
      out.done[key] = v;
      if (c.literal(',')) continue;
      if (c.literal('}')) break;
      out = Checkpoint{};
      return false;
    }
  }
  if (!c.literal('}')) {
    out = Checkpoint{};
    return false;
  }
  return true;
}

void checkpoint_save(const std::string& path, const Checkpoint& cp) {
  std::string text = "{\n  ";
  append_json_string(text, "manifest");
  text += ": ";
  append_json_string(text, cp.manifest);
  text += ",\n  ";
  append_json_string(text, "grid");
  text += ": ";
  append_json_string(text, cp.grid);
  text += ",\n  ";
  append_json_string(text, "done");
  text += ": {";
  bool first = true;
  for (const auto& [key, value] : cp.done) {
    text += first ? "\n    " : ",\n    ";
    first = false;
    append_json_string(text, key);
    char buf[40];
    std::snprintf(buf, sizeof(buf), ": %.17g", value);
    text += buf;
  }
  text += first ? "}\n}\n" : "\n  }\n}\n";

  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    TPIO_CHECK(static_cast<bool>(out), "cannot write checkpoint " + tmp);
    out << text;
  }
  TPIO_CHECK(std::rename(tmp.c_str(), path.c_str()) == 0,
             "cannot move checkpoint into place: " + path);
}

int resolve_jobs(int jobs) {
  if (jobs > 0) return jobs;
  // hardware_concurrency() may legally return 0 ("not computable").
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  return static_cast<int>(hw);
}

int effective_workers(int jobs, std::size_t grid_jobs) {
  return std::min<int>(resolve_jobs(jobs),
                       static_cast<int>(std::max<std::size_t>(grid_jobs, 1)));
}

namespace {

/// Shared mutable state of one sweep execution. All fields under `mu`
/// except the claim counter, which workers advance lock-free.
struct SweepState {
  explicit SweepState(std::size_t n)
      : results(n, 0.0), status(n, Pending), started_at(n) {}

  enum Status : char { Pending, Running, Done, Restored };

  std::atomic<std::size_t> next{0};
  std::mutex mu;
  std::vector<double> results;
  std::vector<Status> status;
  std::vector<Clock::time_point> started_at;
  std::size_t completed = 0;   // finished this run (excludes restored)
  std::size_t restored = 0;    // satisfied from the checkpoint
  Clock::time_point run_start = Clock::now();
  bool aborted = false;
  std::exception_ptr first_error;
  Checkpoint checkpoint;       // mirrors the on-disk file
};

void report_progress(const std::vector<SweepJob>& jobs, SweepState& st) {
  // Caller holds st.mu.
  const std::size_t total = jobs.size();
  const std::size_t finished = st.completed + st.restored;
  std::size_t running = 0;
  std::ptrdiff_t slowest = -1;
  for (std::size_t i = 0; i < total; ++i) {
    if (st.status[i] != SweepState::Running) continue;
    ++running;
    if (slowest < 0 || st.started_at[i] < st.started_at[static_cast<std::size_t>(slowest)]) {
      slowest = static_cast<std::ptrdiff_t>(i);
    }
  }
  std::string line = "[sweep] " + std::to_string(finished) + "/" +
                     std::to_string(total) + " jobs, " +
                     std::to_string(running) + " running";
  if (st.completed > 0 && finished < total) {
    // ETA from this run's own throughput (restored jobs cost ~nothing):
    // elapsed wall-clock per completed job, scaled by the remaining count.
    // Concurrency is already folded in — elapsed/completed measures the
    // pool's aggregate rate, not a single worker's.
    const double elapsed = seconds_since(st.run_start);
    const double per_job = elapsed / static_cast<double>(st.completed);
    const double eta = per_job * static_cast<double>(total - finished);
    char buf[32];
    std::snprintf(buf, sizeof(buf), ", ETA %.0fs", eta);
    line += buf;
  }
  if (slowest >= 0) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), " (%.1fs)",
                  seconds_since(st.started_at[static_cast<std::size_t>(slowest)]));
    line += ", slowest: " + jobs[static_cast<std::size_t>(slowest)].key + buf;
  }
  std::fprintf(stderr, "%s\n", line.c_str());
}

/// Claim-execute-record loop shared by the pool workers and the serial path.
void drain(const std::vector<SweepJob>& jobs, const ExecOptions& opt,
           SweepState& st) {
  for (;;) {
    const std::size_t i = st.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= jobs.size()) return;
    {
      std::lock_guard lk(st.mu);
      if (st.aborted) return;
      if (st.status[i] == SweepState::Restored) continue;
      st.status[i] = SweepState::Running;
      st.started_at[i] = Clock::now();
    }
    double value = 0.0;
    try {
      value = jobs[i].run();
    } catch (...) {
      std::lock_guard lk(st.mu);
      if (!st.first_error) st.first_error = std::current_exception();
      st.aborted = true;
      st.status[i] = SweepState::Pending;
      return;
    }
    std::lock_guard lk(st.mu);
    st.results[i] = value;
    st.status[i] = SweepState::Done;
    ++st.completed;
    if (!opt.checkpoint.empty()) {
      st.checkpoint.done[jobs[i].key] = value;
      checkpoint_save(opt.checkpoint, st.checkpoint);
    }
    if (opt.progress) report_progress(jobs, st);
  }
}

}  // namespace

std::vector<double> run_jobs(const std::vector<SweepJob>& jobs,
                             const ExecOptions& opt) {
  {
    std::set<std::string> keys;
    for (const SweepJob& j : jobs) {
      TPIO_CHECK(keys.insert(j.key).second,
                 "duplicate sweep job key: " + j.key);
      TPIO_CHECK(static_cast<bool>(j.run), "sweep job without a body");
    }
  }
  SweepState st(jobs.size());
  st.checkpoint.manifest = opt.manifest;
  st.checkpoint.grid = grid_signature(jobs);

  // Resume: splice in results of a matching checkpoint, skip those jobs.
  // A checkpoint that parses but belongs to a different grid is a hard
  // error: silently re-running (or worse, splicing) would hide the fact
  // that half the table came from different options, a different case set,
  // or a different mode set.
  if (!opt.checkpoint.empty()) {
    Checkpoint prior;
    if (checkpoint_load(opt.checkpoint, prior)) {
      if (prior.manifest != opt.manifest) {
        tpio::fail("checkpoint " + opt.checkpoint +
                   " belongs to a different sweep\n  file manifest: " +
                   prior.manifest + "\n  this run:      " + opt.manifest +
                   "\ndelete the file (or point --checkpoint elsewhere) to "
                   "start fresh");
      }
      if (prior.grid != st.checkpoint.grid) {
        tpio::fail("checkpoint " + opt.checkpoint +
                   " was written against a different job grid (same "
                   "manifest, different cases/modes/order)\n  file grid: " +
                   prior.grid + "\n  this run:  " + st.checkpoint.grid +
                   "\ndelete the file (or point --checkpoint elsewhere) to "
                   "start fresh");
      }
      for (std::size_t i = 0; i < jobs.size(); ++i) {
        const auto it = prior.done.find(jobs[i].key);
        if (it == prior.done.end()) continue;
        st.results[i] = it->second;
        st.status[i] = SweepState::Restored;
        st.checkpoint.done[jobs[i].key] = it->second;
        ++st.restored;
      }
    }
    if (opt.progress && st.restored > 0) {
      std::fprintf(stderr, "[sweep] resumed %zu/%zu jobs from %s\n",
                   st.restored, jobs.size(), opt.checkpoint.c_str());
    }
  }

  const int workers = effective_workers(opt.jobs, jobs.size());
  if (workers <= 1) {
    // Serial path: inline, in input order, on the calling thread.
    drain(jobs, opt, st);
  } else {
    std::vector<std::jthread> pool;
    pool.reserve(static_cast<std::size_t>(workers));
    for (int w = 0; w < workers; ++w) {
      pool.emplace_back([&] { drain(jobs, opt, st); });
    }
  }

  if (st.first_error) std::rethrow_exception(st.first_error);
  TPIO_CHECK(st.completed + st.restored == jobs.size(),
             "sweep executor finished with unprocessed jobs");
  return std::move(st.results);
}

}  // namespace tpio::xp
