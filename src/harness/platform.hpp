#pragma once

#include <string>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "pfs/pfs.hpp"

namespace tpio::xp {

/// A cluster profile: everything the simulation substrate needs to stand in
/// for one of the paper's machines. The two presets below are calibrated to
/// the hardware description in section IV, with per-run noise seeds filled
/// in by the runner.
struct Platform {
  std::string name;
  int procs_per_node = 1;
  int max_nodes = 0;  // informational; fit() may exceed for big P
  /// Co-located storage (crill): the job's storage pool is the drives of
  /// the nodes it runs on, so the target count scales with the node count
  /// (targets = nodes * targets_per_node). 0 = fixed external system
  /// (pfs.num_targets).
  int targets_per_node = 0;
  net::FabricParams fabric;
  smpi::MpiParams mpi;
  pfs::PfsParams pfs;
};

/// University of Houston *crill*: 16 nodes x 48 cores (AMD Magny Cours),
/// QDR InfiniBand (~2.6 GB/s node-to-node), BeeGFS v7 striped over two
/// extra HDDs in each of the 16 compute nodes (storage shares the compute
/// interconnect), stripe 1 MB. Dedicated machine -> low variance.
Platform crill();

/// KAUST *Ibex* (Skylake partition): 40-core nodes, QDR InfiniBand
/// (~3.4 GB/s), large dedicated BeeGFS (16 targets used, stripe 1 MB) with
/// much higher write bandwidth. Shared machine -> high variance.
Platform ibex();

/// Lustre-like profile: ibex hardware, pathological aio (paper, section V:
/// "significant performance problems of the aio_write operations on
/// Lustre"). The regime where the blocking-write schedulers win.
Platform lustre();

/// Scale a platform's I/O geometry down by `k` for affordable simulation:
/// stripe size and eager limit shrink by k while bandwidths, latencies and
/// target counts stay physical. Pair with a collective buffer of
/// 32 MiB / k and per-process volumes scaled accordingly; the dimensionless
/// regime (stripes per sub-buffer >= storage targets, messages straddling
/// the eager/rendezvous boundary, cycles per domain) then matches the
/// paper's full-size setup.
void scale_geometry(Platform& p, std::uint64_t k, std::uint64_t proc_scale);

}  // namespace tpio::xp
