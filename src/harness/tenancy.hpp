#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "harness/runner.hpp"
#include "pfs/qos.hpp"

namespace tpio::xp {

/// When each tenant's job enters the shared system (virtual time).
enum class ArrivalModel {
  /// Tenant i arrives at i * gap.
  Fixed,
  /// Exponential inter-arrival gaps with mean `gap`, drawn deterministically
  /// from the multi-run seed (tenant 0 arrives at 0).
  Poisson,
  /// Explicit per-tenant arrival instants from `trace`.
  Trace,
};

const char* to_string(ArrivalModel m);

struct ArrivalSpec {
  ArrivalModel model = ArrivalModel::Fixed;
  /// Fixed: exact inter-arrival offset. Poisson: mean inter-arrival gap.
  sim::Duration gap = 0;
  /// Trace: arrival instant per tenant (size must match the tenant count).
  std::vector<sim::Time> trace;
};

/// Deterministic arrival instants for `n` tenants: a pure function of the
/// spec and `seed` (Poisson draws an independent derived stream), never of
/// worker count or host scheduling.
std::vector<sim::Time> arrival_times(const ArrivalSpec& spec, int n,
                                     std::uint64_t seed);

/// N concurrent jobs on one shared PFS + fabric. The shared system is
/// built from `tenants[0].platform` (every tenant must run the same
/// platform — they share the machine) sized to the union of the tenants'
/// node blocks, with noise streams derived from `seed` exactly as the solo
/// runner derives them — so a single tenant with spec.seed == seed is
/// bit-identical to execute(tenants[0]).
struct MultiRunSpec {
  std::vector<RunSpec> tenants;
  ArrivalSpec arrival;
  /// Queuing discipline of the shared storage targets.
  pfs::QosPolicy qos = pfs::QosPolicy::Fifo;
  /// FairShare weight per tenant; empty = all 1.0.
  std::vector<double> weights;
  /// Priority class per tenant (higher wins); empty = all 0.
  std::vector<int> priorities;
  /// Master seed of the *shared* system's noise/aio streams (per-tenant
  /// RunSpec::seed is ignored — tenants share one machine).
  std::uint64_t seed = 1;
  /// Retain full file contents (Integrity::Store) instead of digests —
  /// lets tests prove byte-exact cross-tenant isolation. Costs memory.
  bool store_content = false;
};

/// One tenant's outcome plus its interference accounting.
struct TenantResult {
  RunResult run;       // arrival/completion filled; makespan = turnaround
  pfs::QosStats qos;   // per-OST queue/interference rollup for this tenant
  /// Turnaround relative to the same spec alone on an idle system
  /// (computed only by execute_multi(..., with_baselines=true); 0 = not
  /// computed). >= 1 up to noise; fair-share bounds it by the tenant count.
  double slowdown = 0.0;
};

struct MultiRunResult {
  std::vector<TenantResult> tenants;
  /// Completion of the last tenant (virtual time).
  sim::Time makespan = 0;
};

/// Run every tenant concurrently on the shared system. Deterministic:
/// bit-identical at any executor worker count and on either conductor
/// backend. With `with_baselines`, each tenant's spec is also executed
/// solo (same seed) to fill TenantResult::slowdown.
MultiRunResult execute_multi(const MultiRunSpec& spec);
MultiRunResult execute_multi(const MultiRunSpec& spec, bool with_baselines);

/// Compact textual fingerprint of the tenancy configuration (tenant count,
/// arrivals, QoS, weights/priorities), empty for a default solo spec; used
/// to namespace sweep-checkpoint manifests so contended results can never
/// be spliced into idle-system ones.
std::string tenancy_tag(const MultiRunSpec& spec);

/// Contiguous partition of `nprocs` ranks into `k` sub-communicators:
/// subgroup g gets (base, count) with counts nprocs/k rounded up for the
/// first nprocs%k groups — the block split MPI_Comm_split would produce
/// for color = rank * k / nprocs. Requires 1 <= k <= nprocs.
std::vector<std::pair<int, int>> sub_comm_partition(int nprocs, int k);

/// Compact textual fingerprint of the subfiling configuration
/// (sub-communicator count, per-subfile stripe unit/factor), empty when
/// every knob is at its shared-file default; appended to sweep-checkpoint
/// manifests so subfiled grids can never splice into shared-file ones.
std::string subfiling_tag(const coll::Options& opt);

}  // namespace tpio::xp
