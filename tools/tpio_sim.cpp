// tpio_sim: command-line front end for one-off simulated collective-write
// experiments — the tool an I/O engineer points at a cluster profile and a
// workload shape before committing to MCA parameters.
//
//   tpio_sim --platform crill --workload tile1m --procs 100 \
//            --overlap write-comm-2 --reps 5 --verify

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/tenancy.hpp"
#include "simbase/error.hpp"
#include "simbase/rng.hpp"
#include "simbase/stats.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace sim = tpio::sim;
namespace coll = tpio::coll;

namespace {

// --tenants N: the measured spec runs as tenant 0 of a shared system with
// N-1 same-shape NoOverlap background writers. Reports the measured
// tenant's turnaround across reps plus its interference accounting; the
// first rep also runs each tenant solo to report slowdown factors.
int run_multi(const xp::CliConfig& cfg) {
  xp::MultiRunSpec ms;
  ms.tenants.assign(static_cast<std::size_t>(cfg.tenants), cfg.spec);
  for (int t = 1; t < cfg.tenants; ++t) {
    ms.tenants[static_cast<std::size_t>(t)].options.overlap =
        coll::OverlapMode::None;
  }
  ms.arrival = cfg.arrival;
  ms.qos = cfg.qos;
  if (cfg.qos == tpio::pfs::QosPolicy::Priority) {
    // The measured tenant rides the top class; neighbors are best-effort.
    ms.priorities.assign(static_cast<std::size_t>(cfg.tenants), 0);
    ms.priorities[0] = 1;
  }

  std::printf("tenants=%d arrival=%s qos=%s (tenant 0 measured, %d "
              "no-overlap background writer%s)\n",
              cfg.tenants, xp::to_string(cfg.arrival.model),
              tpio::pfs::to_string(cfg.qos), cfg.tenants - 1,
              cfg.tenants == 2 ? "" : "s");

  sim::Summary times;
  xp::MultiRunResult first;
  for (int rep = 0; rep < cfg.reps; ++rep) {
    ms.seed = sim::Rng::derive_seed(cfg.seed_base, static_cast<std::uint64_t>(rep));
    const xp::MultiRunResult r = xp::execute_multi(ms, rep == 0);
    if (rep == 0) first = r;
    times.add(sim::to_millis(r.tenants[0].run.makespan));
    for (int t = 0; t < cfg.tenants; ++t) {
      const auto& run = r.tenants[static_cast<std::size_t>(t)].run;
      if (!run.io_error.empty()) {
        std::printf("tenant %d io error: %s\n", t, run.io_error.c_str());
      }
      if (!run.verify_error.empty()) {
        std::printf("tenant %d verify error: %s\n", t,
                    run.verify_error.c_str());
        return 1;
      }
    }
  }

  for (int t = 0; t < cfg.tenants; ++t) {
    const auto& tr = first.tenants[static_cast<std::size_t>(t)];
    std::printf("tenant %d: arrival=%.3f ms turnaround=%.3f ms "
                "slowdown=%.2fx  [%llu storage reqs, cross-tenant wait "
                "%.3f ms, peak queue depth %d]\n",
                t, sim::to_millis(tr.run.arrival),
                sim::to_millis(tr.run.makespan), tr.slowdown,
                static_cast<unsigned long long>(tr.qos.requests),
                sim::to_millis(tr.qos.cross_wait), tr.qos.peak_active);
  }
  std::printf("system makespan (first rep): %.3f ms\n",
              sim::to_millis(first.makespan));
  std::printf("tenant 0 turnaround: min=%.3f ms  median=%.3f ms  "
              "max=%.3f ms\n",
              times.min(), times.median(), times.max());
  std::printf("tenant 0 effective bandwidth (best): %s\n",
              sim::format_bandwidth(
                  static_cast<double>(first.tenants[0].run.bytes) /
                  (times.min() * 1e-3))
                  .c_str());
  if (cfg.spec.verify) {
    std::puts("verification: OK (every tenant, all repetitions byte-exact)");
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const xp::CliConfig cfg =
      xp::parse_cli(std::vector<std::string>(argv + 1, argv + argc));
  if (cfg.quick_help) {
    std::fputs(xp::cli_usage().c_str(), stdout);
    return 0;
  }
  if (!cfg.error.empty()) {
    std::fprintf(stderr, "error: %s\n\n%s", cfg.error.c_str(),
                 xp::cli_usage().c_str());
    return 2;
  }
  sim::Conductor::set_default_backend(cfg.conductor);

  std::printf("platform=%s workload=[%s] procs=%d cb=%s overlap=%s "
              "transfer=%s reps=%d\n",
              cfg.spec.platform.name.c_str(),
              cfg.spec.workload.describe().c_str(), cfg.spec.nprocs,
              sim::format_bytes(cfg.spec.options.cb_size).c_str(),
              coll::to_string(cfg.spec.options.overlap),
              coll::to_string(cfg.spec.options.transfer), cfg.reps);

  xp::CliConfig resolved = cfg;
  if (cfg.spec.options.sub_comm_count == 0) {
    // --sub-comms auto: one blocking shared-file probe decides k.
    try {
      xp::RunSpec probe = cfg.spec;
      probe.seed = sim::Rng::derive_seed(cfg.seed_base, 0);
      const int k = xp::auto_sub_comm_count(probe);
      resolved.spec.options.sub_comm_count = k;
      std::printf("auto: sub-comms -> %d (probe-driven)\n", k);
    } catch (const tpio::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }
  const xp::CliConfig& run_cfg = resolved;

  if (run_cfg.tenants > 1) {
    try {
      return run_multi(run_cfg);
    } catch (const tpio::Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  // execute_series asserts post-run verification; with injected faults a
  // give-up legitimately leaves a hole — report that as a clean error.
  xp::Series series;
  try {
    series = xp::execute_series(run_cfg.spec, run_cfg.reps,
                                run_cfg.seed_base);
  } catch (const tpio::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  sim::Summary times;
  for (const auto& r : series.runs) {
    times.add(sim::to_millis(r.makespan));
  }
  const auto& first = series.runs.front();
  std::printf("geometry: %d aggregators, %d cycles, %s total\n",
              first.aggregators, first.cycles,
              sim::format_bytes(first.bytes).c_str());
  if (cfg.spec.options.local_aggregators > 1 || first.rank_sum.forward > 0) {
    // Pipelined intra-node aggregation (--local-aggs > 1): how much of the
    // lane leaders' forward traffic was hidden under the next gather.
    std::printf("pipelined forwards: %.3f ms forward time (summed over "
                "ranks), %.1f%% of forward lifetime hidden\n",
                sim::to_millis(first.rank_sum.forward),
                first.pipelined_overlap * 100.0);
  }
  for (const auto& sf : first.subfiles) {
    std::printf("subfile %d: %d ranks, %d aggregators, %s, done %.3f ms "
                "[%llu storage reqs, peak queue depth %d]\n",
                sf.group, sf.ranks, sf.aggregators,
                sim::format_bytes(sf.bytes).c_str(),
                sim::to_millis(sf.completion),
                static_cast<unsigned long long>(sf.qos.requests),
                sf.qos.peak_active);
  }
  if (first.autotune.engaged) {
    const auto& d = first.autotune;
    if (d.from_cache) {
      std::printf("auto: chose %s (tuning cache hit, no probes)\n",
                  coll::to_string(d.chosen));
    } else {
      std::printf(
          "auto: chose %s after %d probe cycles "
          "(comm share %.1f%%, aio ratio %.2f)\n",
          coll::to_string(d.chosen), d.probe_cycles, d.comm_share * 100.0,
          d.aio_ratio);
    }
  }
  if (tpio::pfs::FaultModel(cfg.spec.platform.pfs.faults).enabled()) {
    coll::FaultStats fs;
    for (const auto& r : series.runs) fs += r.faults;
    std::printf("faults: %d retries, %d giveups, %d degraded cycles "
                "(all reps; backoff %.3f ms total)\n",
                fs.retries, fs.giveups, fs.degraded_cycles,
                [&] {
                  sim::Duration b = 0;
                  for (const auto& r : series.runs) b += r.rank_sum.backoff;
                  return sim::to_millis(b);
                }());
    for (const auto& r : series.runs) {
      if (!r.io_error.empty()) {
        std::printf("io error: %s\n", r.io_error.c_str());
        break;
      }
    }
  }
  std::printf("time: min=%.3f ms  median=%.3f ms  max=%.3f ms\n",
              times.min(), times.median(), times.max());
  std::printf("effective bandwidth (best): %s\n",
              sim::format_bandwidth(static_cast<double>(first.bytes) /
                                    (times.min() * 1e-3))
                  .c_str());
  if (cfg.spec.verify) {
    std::puts("verification: OK (all repetitions byte-exact)");
  }
  return 0;
}
