// tpio_sim: command-line front end for one-off simulated collective-write
// experiments — the tool an I/O engineer points at a cluster profile and a
// workload shape before committing to MCA parameters.
//
//   tpio_sim --platform crill --workload tile1m --procs 100 \
//            --overlap write-comm-2 --reps 5 --verify

#include <cstdio>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "simbase/error.hpp"
#include "simbase/stats.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace sim = tpio::sim;
namespace coll = tpio::coll;

int main(int argc, char** argv) {
  const xp::CliConfig cfg =
      xp::parse_cli(std::vector<std::string>(argv + 1, argv + argc));
  if (cfg.quick_help) {
    std::fputs(xp::cli_usage().c_str(), stdout);
    return 0;
  }
  if (!cfg.error.empty()) {
    std::fprintf(stderr, "error: %s\n\n%s", cfg.error.c_str(),
                 xp::cli_usage().c_str());
    return 2;
  }
  sim::Conductor::set_default_backend(cfg.conductor);

  std::printf("platform=%s workload=[%s] procs=%d cb=%s overlap=%s "
              "transfer=%s reps=%d\n",
              cfg.spec.platform.name.c_str(),
              cfg.spec.workload.describe().c_str(), cfg.spec.nprocs,
              sim::format_bytes(cfg.spec.options.cb_size).c_str(),
              coll::to_string(cfg.spec.options.overlap),
              coll::to_string(cfg.spec.options.transfer), cfg.reps);

  // execute_series asserts post-run verification; with injected faults a
  // give-up legitimately leaves a hole — report that as a clean error.
  xp::Series series;
  try {
    series = xp::execute_series(cfg.spec, cfg.reps, cfg.seed_base);
  } catch (const tpio::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  sim::Summary times;
  for (const auto& r : series.runs) {
    times.add(sim::to_millis(r.makespan));
  }
  const auto& first = series.runs.front();
  std::printf("geometry: %d aggregators, %d cycles, %s total\n",
              first.aggregators, first.cycles,
              sim::format_bytes(first.bytes).c_str());
  if (first.autotune.engaged) {
    const auto& d = first.autotune;
    if (d.from_cache) {
      std::printf("auto: chose %s (tuning cache hit, no probes)\n",
                  coll::to_string(d.chosen));
    } else {
      std::printf(
          "auto: chose %s after %d probe cycles "
          "(comm share %.1f%%, aio ratio %.2f)\n",
          coll::to_string(d.chosen), d.probe_cycles, d.comm_share * 100.0,
          d.aio_ratio);
    }
  }
  if (tpio::pfs::FaultModel(cfg.spec.platform.pfs.faults).enabled()) {
    coll::FaultStats fs;
    for (const auto& r : series.runs) fs += r.faults;
    std::printf("faults: %d retries, %d giveups, %d degraded cycles "
                "(all reps; backoff %.3f ms total)\n",
                fs.retries, fs.giveups, fs.degraded_cycles,
                [&] {
                  sim::Duration b = 0;
                  for (const auto& r : series.runs) b += r.rank_sum.backoff;
                  return sim::to_millis(b);
                }());
    for (const auto& r : series.runs) {
      if (!r.io_error.empty()) {
        std::printf("io error: %s\n", r.io_error.c_str());
        break;
      }
    }
  }
  std::printf("time: min=%.3f ms  median=%.3f ms  max=%.3f ms\n",
              times.min(), times.median(), times.max());
  std::printf("effective bandwidth (best): %s\n",
              sim::format_bandwidth(static_cast<double>(first.bytes) /
                                    (times.min() * 1e-3))
                  .c_str());
  if (cfg.spec.verify) {
    std::puts("verification: OK (all repetitions byte-exact)");
  }
  return 0;
}
