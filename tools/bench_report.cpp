// Emits BENCH_PERF.json: the substrate wall-clock baseline tracked across
// PRs (see EXPERIMENTS.md, "Substrate performance methodology"). Two
// sections:
//
//   grid        — runs/sec and simulated-bytes/sec for whole collective
//                 writes over (nprocs x per-proc volume x scheduler),
//                 verify off, each cell timed over enough repetitions to
//                 pass a minimum wall budget;
//   quick_sweep — one serial quick Table I sweep (reps=1, jobs=1, verify
//                 off) timed end to end;
//   scale       — paper-scale single runs (576-rank Tile-I/O cell, 8192-rank
//                 IOR smoke) with wall time and the process peak-RSS
//                 high-water mark after each (absent when built against
//                 trees whose conductor cannot reach those rank counts);
//   metadata    — host-side cost of the metadata exchange at 4096 and
//                 8192 ranks: wall time and peak RSS of a full run under
//                 the sparse two-stage exchange vs the legacy dense
//                 materialization (--dense-metadata); virtual cost is
//                 identical by construction, so the delta is pure host
//                 time/memory (absent on trees without the sparse path);
//   contention  — a 3-tenant shared-system run (tenant 0 write-comm-2 plus
//                 two NoOverlap neighbors, fair-share storage) timed like a
//                 grid cell: multi-tenant runs/sec is the tracked figure
//                 (absent on trees without the tenancy layer);
//   subfiling   — the quick-grid crill tile256 cell, shared file vs
//                 --sub-comms 4, each timed like a grid cell: subfiled
//                 runs/sec tracks the multi-plan execution overhead
//                 (absent on trees without subfiling);
//   intranode   — the crill ppn=16 co grid (local aggregators per node,
//                 --local-aggs): per message size, the simulated makespan,
//                 intra-node gather critical path (max per-rank gather
//                 time) and the comm-overlap scheduler's pipelined-overlap
//                 fraction at co in {1, 2, 4, 16}, plus the winning co by
//                 each metric (absent on trees without local aggregation).
//
// Deliberately restricted to the long-stable harness API (execute,
// run_overlap_sweep, scaled presets) so the identical source compiles
// against older revisions of the tree — that is how before/after numbers
// for a substrate PR are produced: build this tool at both revisions, run
// both on the same idle host, diff the JSON.
//
// Usage: bench_report [--out FILE] [--label TEXT] [--min-cell-ms N]

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"

namespace coll = tpio::coll;
namespace wl = tpio::wl;
namespace xp = tpio::xp;
namespace pfs = tpio::pfs;

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t0) {
  return std::chrono::duration<double>(Clock::now() - t0).count();
}

constexpr coll::OverlapMode kModes[] = {
    coll::OverlapMode::None, coll::OverlapMode::Comm, coll::OverlapMode::Write,
    coll::OverlapMode::WriteComm, coll::OverlapMode::WriteComm2,
};

struct Cell {
  int nprocs = 0;
  std::uint64_t block_bytes = 0;
  coll::OverlapMode mode = coll::OverlapMode::None;
  int reps = 0;
  double wall_s = 0.0;
  double runs_per_s = 0.0;
  double sim_bytes_per_s = 0.0;
};

Cell time_cell(int nprocs, std::uint64_t block_bytes, coll::OverlapMode mode,
               double min_wall_s) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_ior(block_bytes);
  spec.nprocs = nprocs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = mode;
  spec.verify = false;

  Cell c;
  c.nprocs = nprocs;
  c.block_bytes = block_bytes;
  c.mode = mode;

  // Warm-up run: first-touch costs (plan construction on newer trees, page
  // faults) are not part of the steady-state figure.
  spec.seed = 1;
  (void)xp::execute(spec);

  const Clock::time_point t0 = Clock::now();
  std::uint64_t total_sim_bytes = 0;
  int reps = 0;
  do {
    spec.seed = static_cast<std::uint64_t>(2 + reps);
    total_sim_bytes += xp::execute(spec).bytes;
    ++reps;
  } while (seconds_since(t0) < min_wall_s || reps < 3);
  c.wall_s = seconds_since(t0);
  c.reps = reps;
  c.runs_per_s = reps / c.wall_s;
  c.sim_bytes_per_s = static_cast<double>(total_sim_bytes) / c.wall_s;
  return c;
}

/// Process peak-RSS high-water mark (MiB). Monotone over the process
/// lifetime, so scale points report "peak after this run".
double peak_rss_mib() {
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  return static_cast<double>(ru.ru_maxrss) / 1024.0;  // KiB on Linux
}

struct ScalePoint {
  const char* workload = "";
  int nprocs = 0;
  double wall_s = 0.0;
  double sim_ms = 0.0;
  double peak_rss_mib_after = 0.0;
};

ScalePoint time_scale_point(const char* name, wl::Spec workload, int nprocs,
                            coll::OverlapMode mode) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = std::move(workload);
  spec.nprocs = nprocs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = mode;
  spec.seed = static_cast<std::uint64_t>(nprocs);
  ScalePoint p;
  p.workload = name;
  p.nprocs = nprocs;
  const Clock::time_point t0 = Clock::now();
  const xp::RunResult r = xp::execute(spec);
  p.wall_s = seconds_since(t0);
  p.sim_ms = static_cast<double>(r.makespan) / 1e6;
  p.peak_rss_mib_after = peak_rss_mib();
  return p;
}

struct MetadataPoint {
  int nprocs = 0;
  int aggregators = 0;
  double sparse_wall_s = 0.0;
  double dense_wall_s = 0.0;
  double sparse_rss_mib_after = 0.0;
  double dense_rss_mib_after = 0.0;
  double meta_sim_ms = 0.0;  // virtual metadata phase, identical either way
  // Exact view-blob bytes materialized across all ranks by each path
  // (deterministic: a function of the workload and the aggregator count).
  // The per-rank peak is transient and fiber-serialized, so it never shows
  // in peak RSS; these totals are the honest memory figure.
  double sparse_delivered_mib = 0.0;
  double dense_delivered_mib = 0.0;
};

xp::RunSpec metadata_spec(int nprocs, bool dense) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_ior(16ull << 10);
  spec.nprocs = nprocs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::None;
  spec.options.dense_metadata = dense;
  spec.seed = static_cast<std::uint64_t>(nprocs);
  return spec;
}

/// Run one metadata leg in a forked child and report the child's own
/// wall time, peak RSS and virtual metadata-phase time. Peak RSS is
/// monotone within a process (Linux resets the high-water mark at fork),
/// so in-process legs would mask each other — and would floor the scale
/// section's tracked peaks at the dense-leg high-water. Isolation keeps
/// every reported number the cost of exactly one run.
bool run_metadata_leg(int nprocs, bool dense, double out[4]) {
  int fds[2];
  if (::pipe(fds) != 0) return false;
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::close(fds[0]);
    const Clock::time_point t0 = Clock::now();
    const xp::RunResult r = xp::execute(metadata_spec(nprocs, dense));
    double msg[4] = {seconds_since(t0), peak_rss_mib(),
                     static_cast<double>(r.rank_sum.meta) / 1e6,
                     static_cast<double>(r.aggregators)};
    const ssize_t wrote = ::write(fds[1], msg, sizeof(msg));
    ::_exit(wrote == static_cast<ssize_t>(sizeof(msg)) ? 0 : 1);
  }
  ::close(fds[1]);
  const bool got = pid > 0 &&
                   ::read(fds[0], out, 4 * sizeof(double)) ==
                       static_cast<ssize_t>(4 * sizeof(double));
  ::close(fds[0]);
  int status = 0;
  if (pid > 0) ::waitpid(pid, &status, 0);
  return got && WIFEXITED(status) && WEXITSTATUS(status) == 0;
}

struct ContentionPoint {
  int tenants = 3;
  int nprocs = 16;
  std::uint64_t block_bytes = 1ull << 20;
  int reps = 0;
  double wall_s = 0.0;
  double runs_per_s = 0.0;
  double t0_sim_ms = 0.0;  // measured tenant's turnaround (last rep)
};

ContentionPoint time_contention(double min_wall_s) {
  ContentionPoint p;
  xp::RunSpec measured;
  measured.platform = xp::scaled(xp::ibex());
  measured.workload = wl::make_ior(p.block_bytes);
  measured.nprocs = p.nprocs;
  measured.options.cb_size = xp::kCbSize;
  measured.options.overlap = coll::OverlapMode::WriteComm2;
  xp::RunSpec neighbor = measured;
  neighbor.options.overlap = coll::OverlapMode::None;

  xp::MultiRunSpec ms;
  ms.tenants = {measured, neighbor, neighbor};
  ms.qos = pfs::QosPolicy::FairShare;

  ms.seed = 1;
  (void)xp::execute_multi(ms);  // warm-up, as in time_cell

  const Clock::time_point t0 = Clock::now();
  int reps = 0;
  do {
    ms.seed = static_cast<std::uint64_t>(2 + reps);
    p.t0_sim_ms =
        static_cast<double>(xp::execute_multi(ms).tenants[0].run.makespan) /
        1e6;
    ++reps;
  } while (seconds_since(t0) < min_wall_s || reps < 3);
  p.wall_s = seconds_since(t0);
  p.reps = reps;
  p.runs_per_s = reps / p.wall_s;
  return p;
}

struct SubfilingPoint {
  int nprocs = 100;
  int sub_comms = 4;
  int shared_reps = 0, split_reps = 0;
  double shared_runs_per_s = 0.0, split_runs_per_s = 0.0;
  double shared_sim_ms = 0.0, split_sim_ms = 0.0;  // last rep's makespan
};

SubfilingPoint time_subfiling(double min_wall_s) {
  SubfilingPoint p;
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::crill());
  spec.workload = wl::make_tile256(2, 1024);  // the quick grid's tile256/S
  spec.nprocs = p.nprocs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::None;
  spec.verify = false;

  for (const bool split : {false, true}) {
    spec.options.sub_comm_count = split ? p.sub_comms : 1;
    spec.seed = 1;
    (void)xp::execute(spec);  // warm-up, as in time_cell
    const Clock::time_point t0 = Clock::now();
    int reps = 0;
    double sim_ms = 0.0;
    do {
      spec.seed = static_cast<std::uint64_t>(2 + reps);
      sim_ms = static_cast<double>(xp::execute(spec).makespan) / 1e6;
      ++reps;
    } while (seconds_since(t0) < min_wall_s || reps < 3);
    const double wall = seconds_since(t0);
    (split ? p.split_reps : p.shared_reps) = reps;
    (split ? p.split_runs_per_s : p.shared_runs_per_s) = reps / wall;
    (split ? p.split_sim_ms : p.shared_sim_ms) = sim_ms;
  }
  return p;
}

struct IntranodePoint {
  const char* size_label = "";
  std::uint64_t block_bytes = 0;
  std::vector<int> cos;
  std::vector<double> sim_ms;        // parallel to cos
  std::vector<double> gather_ms;     // intra-node critical path
  std::vector<double> overlap;       // pipelined-overlap fraction
  int winner_by_gather = 1;          // co with the shortest gather chain
  int winner_by_makespan = 1;
};

std::vector<IntranodePoint> time_intranode() {
  // The fig_local_aggs crill quick grid at ppn=16: 4 nodes re-packed to 16
  // ranks each, write-comm-2, spread lane leaders. Simulated figures only —
  // the winner table is what the acceptance gate tracks.
  xp::Platform plat = xp::scaled(xp::crill());
  plat.name += "-ppn16";
  plat.max_nodes = plat.max_nodes * plat.procs_per_node / 16;
  plat.procs_per_node = 16;
  const int procs = 4 * 16;

  std::vector<IntranodePoint> points;
  const std::pair<const char*, std::uint64_t> sizes[] = {
      {"64K", 64ull << 10}, {"256K", 256ull << 10}, {"1M", 1ull << 20}};
  for (const auto& [label, bytes] : sizes) {
    IntranodePoint p;
    p.size_label = label;
    p.block_bytes = bytes;
    for (const int co : {1, 2, 4, 16}) {
      xp::RunSpec spec;
      spec.platform = plat;
      spec.workload = wl::make_ior(bytes);
      spec.nprocs = procs;
      spec.options.cb_size = xp::kCbSize;
      spec.options.overlap = coll::OverlapMode::WriteComm2;
      spec.options.hierarchical = true;
      spec.options.leader_policy = coll::LeaderPolicy::Spread;
      spec.options.local_aggregators = co;
      spec.seed = 7;
      const xp::RunResult r = xp::execute(spec);
      // Overlap fraction under comm-overlap: the scheduler whose call
      // order lets a leader gather the next cycle between posting and
      // waiting on forwards (write-comm-2's per-rank overlap is
      // structurally zero — it posts then immediately waits).
      xp::RunSpec cspec = spec;
      cspec.options.overlap = coll::OverlapMode::Comm;
      const xp::RunResult c = xp::execute(cspec);
      p.cos.push_back(co);
      p.sim_ms.push_back(static_cast<double>(r.makespan) / 1e6);
      p.gather_ms.push_back(static_cast<double>(r.gather_critical) / 1e6);
      p.overlap.push_back(c.pipelined_overlap);
    }
    std::size_t bg = 0, bm = 0;
    for (std::size_t i = 1; i < p.cos.size(); ++i) {
      if (p.gather_ms[i] < p.gather_ms[bg]) bg = i;
      if (p.sim_ms[i] < p.sim_ms[bm]) bm = i;
    }
    p.winner_by_gather = p.cos[bg];
    p.winner_by_makespan = p.cos[bm];
    points.push_back(std::move(p));
  }
  return points;
}

std::string json_escape(const std::string& s) {
  std::string out;
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out += '\\';
    out += ch;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  std::string out_path;
  std::string label;
  double min_cell_ms = 300.0;
  for (int i = 1; i < argc; ++i) {
    if (!std::strcmp(argv[i], "--out") && i + 1 < argc) {
      out_path = argv[++i];
    } else if (!std::strcmp(argv[i], "--label") && i + 1 < argc) {
      label = argv[++i];
    } else if (!std::strcmp(argv[i], "--min-cell-ms") && i + 1 < argc) {
      min_cell_ms = std::atof(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: bench_report [--out FILE] [--label TEXT] "
                   "[--min-cell-ms N]\n");
      return 2;
    }
  }

  const double min_wall_s = min_cell_ms / 1000.0;
  std::vector<Cell> grid;
  for (int nprocs : {16, 64}) {
    for (std::uint64_t mib : {1ull, 4ull}) {
      for (coll::OverlapMode mode : kModes) {
        Cell c = time_cell(nprocs, mib << 20, mode, min_wall_s);
        std::fprintf(stderr, "grid p=%-3d %lluMiB/proc %-13s %4d reps  %7.2f runs/s\n",
                     c.nprocs, static_cast<unsigned long long>(mib),
                     coll::to_string(c.mode), c.reps, c.runs_per_s);
        grid.push_back(c);
      }
    }
  }

  // Quick Table I sweep, serial, verify off — the headline wall-clock.
  xp::ExecOptions exec;
  exec.jobs = 1;
  const Clock::time_point t0 = Clock::now();
  const auto series = xp::run_overlap_sweep(xp::scaled(xp::ibex()),
                                            /*reps=*/1, /*seed=*/0xC0FFEE,
                                            /*quick=*/true, exec);
  const double sweep_s = seconds_since(t0);
  std::fprintf(stderr, "quick sweep: %zu series, %.2f s wall\n", series.size(),
               sweep_s);

  // Metadata-exchange host costs: the 4096/8192-rank dense legs pay the
  // O(P^2) materialization the two-stage exchange removes. Every leg runs
  // in its own forked child (see run_metadata_leg) so each peak-RSS figure
  // is the cost of exactly one run.
  std::vector<MetadataPoint> metadata;
  for (int nprocs : {4096, 8192}) {
    MetadataPoint p;
    p.nprocs = nprocs;
    double leg[4] = {0, 0, 0, 0};
    if (run_metadata_leg(nprocs, false, leg)) {
      p.sparse_wall_s = leg[0];
      p.sparse_rss_mib_after = leg[1];
      p.meta_sim_ms = leg[2];
      p.aggregators = static_cast<int>(leg[3]);
    }
    if (run_metadata_leg(nprocs, true, leg)) {
      p.dense_wall_s = leg[0];
      p.dense_rss_mib_after = leg[1];
    }
    // Delivered-bytes accounting: dense hands every rank all P blobs;
    // sparse hands aggregators all P and every other rank its own only.
    const wl::Spec workload = metadata_spec(nprocs, false).workload;
    std::uint64_t total_blob = 0, own_sum = 0;
    for (int r = 0; r < nprocs; ++r) {
      const std::uint64_t b = workload.view(r, nprocs).serialize().size();
      total_blob += b;
      own_sum += b;
    }
    const double agg = static_cast<double>(p.aggregators);
    p.dense_delivered_mib = static_cast<double>(nprocs) *
                            static_cast<double>(total_blob) / (1024.0 * 1024.0);
    p.sparse_delivered_mib =
        (agg * static_cast<double>(total_blob) +
         static_cast<double>(own_sum) * (nprocs - agg) /
             static_cast<double>(nprocs) * 1.0) /
        (1024.0 * 1024.0);
    metadata.push_back(p);
  }
  for (const MetadataPoint& p : metadata) {
    std::fprintf(stderr,
                 "metadata p=%-5d sparse %6.2f s / %.1f MiB delivered   "
                 "dense %6.2f s / %.1f MiB delivered   meta %8.2f sim-ms\n",
                 p.nprocs, p.sparse_wall_s, p.sparse_delivered_mib,
                 p.dense_wall_s, p.dense_delivered_mib, p.meta_sim_ms);
  }

  // Paper-scale points (fiber conductor): the 576-process Tile-I/O cell of
  // Fig. 1 and an 8192-rank IOR smoke run, each a single measured run.
  std::vector<ScalePoint> scale;
  scale.push_back(time_scale_point("tile1m", wl::make_tile1m(1, 1), 576,
                                   coll::OverlapMode::WriteComm2));
  scale.push_back(time_scale_point("ior64k", wl::make_ior(64ull << 10), 8192,
                                   coll::OverlapMode::None));
  for (const ScalePoint& p : scale) {
    std::fprintf(stderr,
                 "scale p=%-5d %-7s %6.2f s wall  %8.2f sim-ms  peak RSS %.0f "
                 "MiB\n",
                 p.nprocs, p.workload, p.wall_s, p.sim_ms,
                 p.peak_rss_mib_after);
  }

  const ContentionPoint cont = time_contention(min_wall_s);
  std::fprintf(stderr,
               "contention t=%d p=%d %4d reps  %7.2f runs/s  t0 %.2f sim-ms\n",
               cont.tenants, cont.nprocs, cont.reps, cont.runs_per_s,
               cont.t0_sim_ms);

  const SubfilingPoint sub = time_subfiling(min_wall_s);
  std::fprintf(stderr,
               "subfiling p=%d shared %7.2f runs/s (%.2f sim-ms)   k=%d "
               "%7.2f runs/s (%.2f sim-ms)\n",
               sub.nprocs, sub.shared_runs_per_s, sub.shared_sim_ms,
               sub.sub_comms, sub.split_runs_per_s, sub.split_sim_ms);

  const std::vector<IntranodePoint> intra = time_intranode();
  for (const IntranodePoint& p : intra) {
    std::fprintf(stderr, "intranode crill ppn=16 %-4s winner: co=%d "
                 "(gather chain), co=%d (makespan)\n",
                 p.size_label, p.winner_by_gather, p.winner_by_makespan);
  }

  std::string j;
  j += "{\n";
  j += "  \"schema\": \"tpio-bench-perf-1\",\n";
  j += "  \"label\": \"" + json_escape(label) + "\",\n";
  j += "  \"grid\": [\n";
  for (std::size_t i = 0; i < grid.size(); ++i) {
    const Cell& c = grid[i];
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workload\": \"ior\", \"nprocs\": %d, "
                  "\"block_bytes\": %llu, \"overlap\": \"%s\", \"reps\": %d, "
                  "\"wall_s\": %.4f, \"runs_per_s\": %.3f, "
                  "\"sim_bytes_per_s\": %.0f}%s\n",
                  c.nprocs, static_cast<unsigned long long>(c.block_bytes),
                  coll::to_string(c.mode), c.reps, c.wall_s, c.runs_per_s,
                  c.sim_bytes_per_s, i + 1 < grid.size() ? "," : "");
    j += buf;
  }
  j += "  ],\n";
  char buf[512];
  std::snprintf(buf, sizeof(buf),
                "  \"quick_sweep\": {\"platform\": \"ibex\", \"reps\": 1, "
                "\"jobs\": 1, \"verify\": false, \"series\": %zu, "
                "\"wall_s\": %.3f},\n",
                series.size(), sweep_s);
  j += buf;
  j += "  \"scale\": [\n";
  for (std::size_t i = 0; i < scale.size(); ++i) {
    const ScalePoint& p = scale[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workload\": \"%s\", \"nprocs\": %d, "
                  "\"wall_s\": %.3f, \"sim_ms\": %.3f, "
                  "\"peak_rss_mib_after\": %.1f}%s\n",
                  p.workload, p.nprocs, p.wall_s, p.sim_ms,
                  p.peak_rss_mib_after, i + 1 < scale.size() ? "," : "");
    j += buf;
  }
  j += "  ],\n";
  j += "  \"metadata\": [\n";
  for (std::size_t i = 0; i < metadata.size(); ++i) {
    const MetadataPoint& p = metadata[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"workload\": \"ior16k\", \"nprocs\": %d, "
                  "\"aggregators\": %d, "
                  "\"sparse_wall_s\": %.3f, \"dense_wall_s\": %.3f, "
                  "\"sparse_peak_rss_mib\": %.1f, "
                  "\"dense_peak_rss_mib\": %.1f, "
                  "\"sparse_delivered_mib\": %.2f, "
                  "\"dense_delivered_mib\": %.2f, "
                  "\"meta_sim_ms\": %.3f}%s\n",
                  p.nprocs, p.aggregators, p.sparse_wall_s, p.dense_wall_s,
                  p.sparse_rss_mib_after, p.dense_rss_mib_after,
                  p.sparse_delivered_mib, p.dense_delivered_mib, p.meta_sim_ms,
                  i + 1 < metadata.size() ? "," : "");
    j += buf;
  }
  j += "  ],\n";
  std::snprintf(buf, sizeof(buf),
                "  \"contention\": {\"tenants\": %d, \"workload\": \"ior\", "
                "\"nprocs\": %d, \"block_bytes\": %llu, \"qos\": \"fair\", "
                "\"reps\": %d, \"wall_s\": %.4f, \"runs_per_s\": %.3f, "
                "\"t0_sim_ms\": %.3f},\n",
                cont.tenants, cont.nprocs,
                static_cast<unsigned long long>(cont.block_bytes), cont.reps,
                cont.wall_s, cont.runs_per_s, cont.t0_sim_ms);
  j += buf;
  std::snprintf(buf, sizeof(buf),
                "  \"subfiling\": {\"platform\": \"crill\", \"workload\": "
                "\"tile256\", \"nprocs\": %d, \"sub_comms\": %d, "
                "\"shared_reps\": %d, \"shared_runs_per_s\": %.3f, "
                "\"shared_sim_ms\": %.3f, \"split_reps\": %d, "
                "\"split_runs_per_s\": %.3f, \"split_sim_ms\": %.3f},\n",
                sub.nprocs, sub.sub_comms, sub.shared_reps,
                sub.shared_runs_per_s, sub.shared_sim_ms, sub.split_reps,
                sub.split_runs_per_s, sub.split_sim_ms);
  j += buf;
  j += "  \"intranode\": [\n";
  for (std::size_t i = 0; i < intra.size(); ++i) {
    const IntranodePoint& p = intra[i];
    std::snprintf(buf, sizeof(buf),
                  "    {\"platform\": \"crill\", \"ppn\": 16, \"workload\": "
                  "\"ior\", \"block_bytes\": %llu, \"size\": \"%s\", "
                  "\"winner_by_gather_co\": %d, \"winner_by_makespan_co\": "
                  "%d, \"cells\": [",
                  static_cast<unsigned long long>(p.block_bytes),
                  p.size_label, p.winner_by_gather, p.winner_by_makespan);
    j += buf;
    for (std::size_t k = 0; k < p.cos.size(); ++k) {
      std::snprintf(buf, sizeof(buf),
                    "{\"co\": %d, \"sim_ms\": %.3f, \"gather_crit_ms\": "
                    "%.3f, \"pipelined_overlap\": %.3f}%s",
                    p.cos[k], p.sim_ms[k], p.gather_ms[k], p.overlap[k],
                    k + 1 < p.cos.size() ? ", " : "");
      j += buf;
    }
    j += std::string("]}") + (i + 1 < intra.size() ? "," : "") + "\n";
  }
  j += "  ]\n";
  j += "}\n";

  if (!out_path.empty()) {
    std::FILE* f = std::fopen(out_path.c_str(), "w");
    if (!f) {
      std::fprintf(stderr, "cannot open %s\n", out_path.c_str());
      return 1;
    }
    std::fputs(j.c_str(), f);
    std::fclose(f);
  }
  std::fputs(j.c_str(), stdout);
  return 0;
}
