// docs_check: keep the documentation honest.
//
// Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for
//   (a) intra-repo markdown links `[text](target)` — every non-external
//       target must exist on disk, resolved relative to the linking file
//       (anchors are stripped; http(s)/mailto/pure-anchor links are
//       skipped),
//   (b) references to executable artifacts — every `bench/<name>`,
//       `examples/<name>`, or `tools/<name>` mentioned in prose or code
//       blocks must exist as a binary in the build tree, so the manual
//       can never name a driver that was renamed or dropped,
//   (c) coverage of the tuning surface — every field of coll::Options
//       (src/core/types.hpp) and every `--flag` the tpio_sim / tpio_sweep
//       CLIs accept must be mentioned in at least one document, so a knob
//       can never be grown without a sentence saying what it does, and
//   (d) experiment coverage — every `bench/fig_*` driver registered in
//       bench/CMakeLists.txt must have a section in EXPERIMENTS.md.
//
// Usage: docs_check <repo-root> <build-dir>
// Exit code 0 = clean; 1 = at least one broken reference (each printed).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0 || target.rfind("chrome://", 0) == 0 ||
         (!target.empty() && target[0] == '#');
}

// Markdown links: [text](target). Images and reference-style links are not
// used in this repository's docs; nested parentheses in targets are not
// either, so a non-greedy scan to the first ')' is exact.
std::vector<std::string> markdown_link_targets(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != ']' || text[i + 1] != '(') continue;
    std::size_t close = text.find(')', i + 2);
    if (close == std::string::npos) continue;
    out.push_back(text.substr(i + 2, close - (i + 2)));
  }
  return out;
}

bool name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Occurrences of `<kind>/<name>` where <name> is a plain identifier —
// matches both prose ("run `bench/table1_overlap_wins`") and shell lines
// ("build/bench/fig_hier_shuffle"). Paths with a file extension (.cpp,
// .md, ...) are source/doc references, not binaries, and are skipped.
std::set<std::string> binary_refs(const std::string& text,
                                  const std::string& kind) {
  std::set<std::string> out;
  const std::string needle = kind + "/";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    // Require a non-name character before `kind` so e.g. "microbench/x"
    // does not register as a bench reference ("build/bench/x" still does).
    if (pos > 0 && (name_char(text[pos - 1]) || text[pos - 1] == '.'))
      continue;
    std::size_t start = pos + needle.size();
    std::size_t end = start;
    while (end < text.size() && name_char(text[end])) ++end;
    if (end == start) continue;
    if (end < text.size() && text[end] == '.') continue;  // source file
    if (end < text.size() && text[end] == '/') continue;  // deeper path
    if (end < text.size() && text[end] == '*') continue;  // glob ("bench/micro_*")
    out.insert(text.substr(start, end - start));
  }
  return out;
}

// Member names of `struct <name> { ... };` in `text`: for every top-level
// `;`-terminated declaration, the identifier before the first `=` (or the
// `;` when there is no initializer). Method declarations do not occur in
// the structs this is pointed at (plain aggregates of knobs).
std::vector<std::string> struct_fields(const std::string& text,
                                       const std::string& name) {
  std::vector<std::string> out;
  std::size_t pos = text.find("struct " + name + " {");
  if (pos == std::string::npos) return out;
  pos = text.find('{', pos);
  int depth = 0;
  std::string stmt;
  for (std::size_t i = pos; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '{') {
      ++depth;
      continue;
    }
    if (c == '}') {
      if (--depth == 0) break;
      continue;
    }
    if (depth != 1) continue;
    // Strip // comments to end of line.
    if (c == '/' && i + 1 < text.size() && text[i + 1] == '/') {
      i = text.find('\n', i);
      if (i == std::string::npos) break;
      continue;
    }
    if (c == ';') {
      const std::size_t eq = stmt.find('=');
      std::string head = eq == std::string::npos ? stmt : stmt.substr(0, eq);
      std::size_t end = head.size();
      while (end > 0 && !name_char(head[end - 1])) --end;
      std::size_t start = end;
      while (start > 0 && name_char(head[start - 1])) --start;
      if (end > start) out.push_back(head.substr(start, end - start));
      stmt.clear();
    } else {
      stmt += c;
    }
  }
  return out;
}

// Every `--flag` spelled inside a string literal of `text` (CLI parse
// branches and usage strings alike).
std::set<std::string> cli_flags(const std::string& text) {
  std::set<std::string> out;
  for (std::size_t pos = text.find("--"); pos != std::string::npos;
       pos = text.find("--", pos + 2)) {
    if (pos == 0 || (text[pos - 1] != '"' && text[pos - 1] != ' ')) continue;
    std::size_t end = pos + 2;
    while (end < text.size() &&
           (std::isalnum(static_cast<unsigned char>(text[end])) ||
            text[end] == '-')) {
      ++end;
    }
    if (end > pos + 2) out.insert(text.substr(pos, end - pos));
  }
  return out;
}

// Names registered via `tpio_add_bench(<name> ...)`.
std::vector<std::string> bench_targets(const std::string& cmake_text) {
  std::vector<std::string> out;
  const std::string needle = "tpio_add_bench(";
  for (std::size_t pos = cmake_text.find(needle); pos != std::string::npos;
       pos = cmake_text.find(needle, pos + 1)) {
    std::size_t start = pos + needle.size();
    std::size_t end = start;
    while (end < cmake_text.size() && name_char(cmake_text[end])) ++end;
    if (end > start) out.push_back(cmake_text.substr(start, end - start));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: docs_check <repo-root> <build-dir>\n";
    return 2;
  }
  const fs::path repo = argv[1];
  const fs::path build = argv[2];

  std::vector<fs::path> docs;
  for (const char* root_doc : {"README.md", "DESIGN.md", "EXPERIMENTS.md"})
    if (fs::exists(repo / root_doc)) docs.push_back(repo / root_doc);
  if (fs::is_directory(repo / "docs"))
    for (const auto& e : fs::directory_iterator(repo / "docs"))
      if (e.path().extension() == ".md") docs.push_back(e.path());
  std::sort(docs.begin(), docs.end());

  int broken = 0;
  int links = 0, bins = 0;
  for (const fs::path& doc : docs) {
    const std::string text = slurp(doc);
    const fs::path base = doc.parent_path();

    for (const std::string& raw : markdown_link_targets(text)) {
      if (is_external(raw)) continue;
      std::string target = raw.substr(0, raw.find('#'));  // strip anchor
      if (target.empty()) continue;
      ++links;
      if (!fs::exists(base / target)) {
        std::cerr << doc.lexically_relative(repo).string()
                  << ": broken link -> " << raw << "\n";
        ++broken;
      }
    }

    for (const char* kind : {"bench", "examples", "tools"}) {
      for (const std::string& name : binary_refs(text, kind)) {
        ++bins;
        if (!fs::exists(build / kind / name)) {
          std::cerr << doc.lexically_relative(repo).string() << ": " << kind
                    << " binary not in build tree -> " << kind << "/" << name
                    << "\n";
          ++broken;
        }
      }
    }
  }

  // (c) Tuning-surface coverage: concatenate the whole doc corpus once;
  // every Options knob and CLI flag must occur somewhere in it.
  std::string corpus;
  for (const fs::path& doc : docs) corpus += slurp(doc);

  int knobs = 0;
  for (const std::string& field :
       struct_fields(slurp(repo / "src/core/types.hpp"), "Options")) {
    ++knobs;
    if (corpus.find(field) == std::string::npos) {
      std::cerr << "coll::Options::" << field
                << " is documented nowhere (README/DESIGN/EXPERIMENTS/docs)\n";
      ++broken;
    }
  }
  std::set<std::string> flags;
  for (const char* src : {"src/harness/cli.cpp", "tools/tpio_sim.cpp",
                          "tools/tpio_sweep.cpp"}) {
    for (const std::string& f : cli_flags(slurp(repo / src))) flags.insert(f);
  }
  for (const std::string& flag : flags) {
    ++knobs;
    if (corpus.find(flag) == std::string::npos) {
      std::cerr << "CLI flag " << flag
                << " is documented nowhere (README/DESIGN/EXPERIMENTS/docs)\n";
      ++broken;
    }
  }

  // (d) Every fig_* bench driver needs an EXPERIMENTS.md section.
  const std::string experiments = slurp(repo / "EXPERIMENTS.md");
  int figs = 0;
  for (const std::string& name :
       bench_targets(slurp(repo / "bench/CMakeLists.txt"))) {
    if (name.rfind("fig", 0) != 0) continue;
    ++figs;
    if (experiments.find("bench/" + name) == std::string::npos) {
      std::cerr << "bench/" << name << " has no EXPERIMENTS.md section\n";
      ++broken;
    }
  }

  std::cout << "docs_check: " << docs.size() << " documents, " << links
            << " intra-repo links, " << bins << " binary references, "
            << knobs << " knobs/flags, " << figs << " fig drivers, " << broken
            << " broken\n";
  return broken == 0 ? 0 : 1;
}
