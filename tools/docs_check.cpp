// docs_check: keep the documentation honest.
//
// Scans README.md, DESIGN.md, EXPERIMENTS.md and docs/*.md for
//   (a) intra-repo markdown links `[text](target)` — every non-external
//       target must exist on disk, resolved relative to the linking file
//       (anchors are stripped; http(s)/mailto/pure-anchor links are
//       skipped), and
//   (b) references to executable artifacts — every `bench/<name>`,
//       `examples/<name>`, or `tools/<name>` mentioned in prose or code
//       blocks must exist as a binary in the build tree, so the manual
//       can never name a driver that was renamed or dropped.
//
// Usage: docs_check <repo-root> <build-dir>
// Exit code 0 = clean; 1 = at least one broken reference (each printed).

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool is_external(const std::string& target) {
  return target.rfind("http://", 0) == 0 || target.rfind("https://", 0) == 0 ||
         target.rfind("mailto:", 0) == 0 || target.rfind("chrome://", 0) == 0 ||
         (!target.empty() && target[0] == '#');
}

// Markdown links: [text](target). Images and reference-style links are not
// used in this repository's docs; nested parentheses in targets are not
// either, so a non-greedy scan to the first ')' is exact.
std::vector<std::string> markdown_link_targets(const std::string& text) {
  std::vector<std::string> out;
  for (std::size_t i = 0; i + 1 < text.size(); ++i) {
    if (text[i] != ']' || text[i + 1] != '(') continue;
    std::size_t close = text.find(')', i + 2);
    if (close == std::string::npos) continue;
    out.push_back(text.substr(i + 2, close - (i + 2)));
  }
  return out;
}

bool name_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// Occurrences of `<kind>/<name>` where <name> is a plain identifier —
// matches both prose ("run `bench/table1_overlap_wins`") and shell lines
// ("build/bench/fig_hier_shuffle"). Paths with a file extension (.cpp,
// .md, ...) are source/doc references, not binaries, and are skipped.
std::set<std::string> binary_refs(const std::string& text,
                                  const std::string& kind) {
  std::set<std::string> out;
  const std::string needle = kind + "/";
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + 1)) {
    // Require a non-name character before `kind` so e.g. "microbench/x"
    // does not register as a bench reference ("build/bench/x" still does).
    if (pos > 0 && (name_char(text[pos - 1]) || text[pos - 1] == '.'))
      continue;
    std::size_t start = pos + needle.size();
    std::size_t end = start;
    while (end < text.size() && name_char(text[end])) ++end;
    if (end == start) continue;
    if (end < text.size() && text[end] == '.') continue;  // source file
    if (end < text.size() && text[end] == '/') continue;  // deeper path
    if (end < text.size() && text[end] == '*') continue;  // glob ("bench/micro_*")
    out.insert(text.substr(start, end - start));
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 3) {
    std::cerr << "usage: docs_check <repo-root> <build-dir>\n";
    return 2;
  }
  const fs::path repo = argv[1];
  const fs::path build = argv[2];

  std::vector<fs::path> docs;
  for (const char* root_doc : {"README.md", "DESIGN.md", "EXPERIMENTS.md"})
    if (fs::exists(repo / root_doc)) docs.push_back(repo / root_doc);
  if (fs::is_directory(repo / "docs"))
    for (const auto& e : fs::directory_iterator(repo / "docs"))
      if (e.path().extension() == ".md") docs.push_back(e.path());
  std::sort(docs.begin(), docs.end());

  int broken = 0;
  int links = 0, bins = 0;
  for (const fs::path& doc : docs) {
    const std::string text = slurp(doc);
    const fs::path base = doc.parent_path();

    for (const std::string& raw : markdown_link_targets(text)) {
      if (is_external(raw)) continue;
      std::string target = raw.substr(0, raw.find('#'));  // strip anchor
      if (target.empty()) continue;
      ++links;
      if (!fs::exists(base / target)) {
        std::cerr << doc.lexically_relative(repo).string()
                  << ": broken link -> " << raw << "\n";
        ++broken;
      }
    }

    for (const char* kind : {"bench", "examples", "tools"}) {
      for (const std::string& name : binary_refs(text, kind)) {
        ++bins;
        if (!fs::exists(build / kind / name)) {
          std::cerr << doc.lexically_relative(repo).string() << ": " << kind
                    << " binary not in build tree -> " << kind << "/" << name
                    << "\n";
          ++broken;
        }
      }
    }
  }

  std::cout << "docs_check: " << docs.size() << " documents, " << links
            << " intra-repo links, " << bins << " binary references, "
            << broken << " broken\n";
  return broken == 0 ? 0 : 1;
}
