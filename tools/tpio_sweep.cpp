// tpio_sweep: run the paper's benchmark sweep on one platform and emit
// machine-readable CSV (one row per series x algorithm) for external
// analysis/plotting.
//
//   tpio_sweep --platform crill [--primitives] [--quick] [--reps N] > out.csv

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/sweep.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;

int main(int argc, char** argv) {
  std::string platform = "ibex";
  bool primitives = false;
  bool quick = false;
  int reps = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--platform" && i + 1 < argc) {
      platform = argv[++i];
    } else if (a == "--primitives") {
      primitives = true;
    } else if (a == "--quick") {
      quick = true;
    } else if (a == "--reps" && i + 1 < argc) {
      reps = std::atoi(argv[++i]);
    } else {
      std::fprintf(stderr,
                   "usage: tpio_sweep [--platform crill|ibex|lustre] "
                   "[--primitives] [--quick] [--reps N]\n");
      return 2;
    }
  }

  // The sweep scales internally; pass the unscaled preset.
  xp::Platform plat;
  if (platform == "crill") plat = xp::crill();
  else if (platform == "ibex") plat = xp::ibex();
  else {
    std::fprintf(stderr, "unknown platform '%s'\n", platform.c_str());
    return 2;
  }

  if (primitives) {
    std::puts("platform,benchmark,size,procs,transfer,min_ms");
    for (const auto& s : xp::run_primitive_sweep(plat, reps, 0xC57, quick)) {
      for (const auto& [t, ms] : s.min_ms) {
        std::printf("%s,%s,%s,%d,%s,%.6f\n", s.platform.c_str(),
                    wl::to_string(s.kind), s.size_label.c_str(), s.procs,
                    coll::to_string(t), ms);
      }
    }
  } else {
    std::puts("platform,benchmark,size,procs,overlap,min_ms");
    for (const auto& s : xp::run_overlap_sweep(plat, reps, 0xC57, quick)) {
      for (const auto& [m, ms] : s.min_ms) {
        std::printf("%s,%s,%s,%d,%s,%.6f\n", s.platform.c_str(),
                    wl::to_string(s.kind), s.size_label.c_str(), s.procs,
                    coll::to_string(m), ms);
      }
    }
  }
  return 0;
}
