// tpio_sweep: run the paper's benchmark sweep on one platform and emit
// machine-readable CSV (one row per series x algorithm) for external
// analysis/plotting.
//
//   tpio_sweep --platform crill [--primitives] [--auto] [--hierarchical]
//              [--leader lowest|spread|superset] [--local-aggs N]
//              [--quick] [--reps N]
//              [--jobs N] [--conductor fibers|threads]
//              [--resume FILE] [--progress] > out.csv
//
// --auto adds a sixth column to the overlap sweep: the adaptive
// scheduler (OverlapMode::Auto), measured like the fixed five.
//
// Series are independent simulations, so the sweep fans out over a worker
// pool (--jobs, default: hardware concurrency); any worker count produces a
// byte-identical CSV because every grid point derives its own seed.
// --resume FILE checkpoints completed grid points to FILE (JSON) and, when
// re-run with the same grid, skips everything already recorded there.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/sweep.hpp"
#include "sched/conductor.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;

int main(int argc, char** argv) {
  std::string platform = "ibex";
  bool primitives = false;
  bool include_auto = false;
  bool quick = false;
  long long reps = 3;
  coll::Options base;
  tpio::pfs::FaultParams faults;
  xp::ExecOptions exec;
  exec.jobs = 0;  // hardware concurrency
  // --tenants > 1 switches the overlap sweep to the contended variant:
  // every grid cell runs as tenant 0 of a shared system with N-1
  // same-shape NoOverlap background writers.
  long long tenants = 1;
  xp::ContentionConfig tenancy;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--platform" && i + 1 < argc) {
      platform = argv[++i];
    } else if (a == "--primitives") {
      primitives = true;
    } else if (a == "--auto") {
      include_auto = true;
    } else if (a == "--hierarchical") {
      base.hierarchical = true;
    } else if (a == "--leader" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "lowest") base.leader_policy = coll::LeaderPolicy::Lowest;
      else if (v == "spread") base.leader_policy = coll::LeaderPolicy::Spread;
      else if (v == "superset")
        base.leader_policy = coll::LeaderPolicy::Superset;
      else {
        std::fprintf(stderr, "unknown leader policy '%s'\n", v.c_str());
        return 2;
      }
    } else if (a == "--local-aggs" && i + 1 < argc) {
      long long co = 0;
      if (!xp::parse_int_arg(argv[++i], 1, 1'000'000, co)) {
        std::fprintf(stderr, "--local-aggs wants a count >= 1, got '%s'\n",
                     argv[i]);
        return 2;
      }
      base.local_aggregators = static_cast<int>(co);
    } else if (a == "--quick") {
      quick = true;
    } else if (a == "--reps" && i + 1 < argc) {
      if (!xp::parse_int_arg(argv[++i], 1, 1'000'000, reps)) {
        std::fprintf(stderr, "--reps wants a count >= 1, got '%s'\n", argv[i]);
        return 2;
      }
    } else if (a == "--jobs" && i + 1 < argc) {
      long long jobs = 0;
      if (!xp::parse_int_arg(argv[++i], 0, 10'000, jobs)) {
        std::fprintf(stderr,
                     "--jobs wants a count >= 0 (0 = hardware), got '%s'\n",
                     argv[i]);
        return 2;
      }
      exec.jobs = static_cast<int>(jobs);
    } else if (a == "--conductor" && i + 1 < argc) {
      const std::string v = argv[++i];
      if (v == "fibers") {
        tpio::sim::Conductor::set_default_backend(
            tpio::sim::ConductorBackend::Fibers);
      } else if (v == "threads") {
        tpio::sim::Conductor::set_default_backend(
            tpio::sim::ConductorBackend::Threads);
      } else {
        std::fprintf(stderr, "--conductor wants fibers|threads, got '%s'\n",
                     v.c_str());
        return 2;
      }
    } else if (a == "--resume" && i + 1 < argc) {
      exec.checkpoint = argv[++i];
    } else if (a == "--progress") {
      exec.progress = true;
    } else if (a == "--fault-rate" && i + 1 < argc) {
      if (!xp::parse_double_arg(argv[++i], 0.0, 1.0, faults.write_fail_rate)) {
        std::fprintf(stderr, "--fault-rate wants a probability, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (a == "--fault-seed" && i + 1 < argc) {
      if (!xp::parse_u64_arg(argv[++i], faults.seed)) {
        std::fprintf(stderr,
                     "--fault-seed wants an unsigned integer, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (a == "--straggler" && i + 1 < argc) {
      if (!xp::parse_double_arg(argv[++i], 1.0, 1e6,
                                faults.straggler_factor)) {
        std::fprintf(stderr, "--straggler wants a factor >= 1, got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (a == "--straggler-targets" && i + 1 < argc) {
      long long n = 0;
      if (!xp::parse_int_arg(argv[++i], 0, 1'000'000, n)) {
        std::fprintf(stderr,
                     "--straggler-targets wants a count >= 0, got '%s'\n",
                     argv[i]);
        return 2;
      }
      faults.straggler_targets = static_cast<int>(n);
    } else if (a == "--max-retries" && i + 1 < argc) {
      long long n = 0;
      if (!xp::parse_int_arg(argv[++i], 0, 1'000, n)) {
        std::fprintf(stderr, "--max-retries wants a count >= 0, got '%s'\n",
                     argv[i]);
        return 2;
      }
      base.max_retries = static_cast<int>(n);
    } else if (a == "--tenants" && i + 1 < argc) {
      if (!xp::parse_int_arg(argv[++i], 1, 64, tenants)) {
        std::fprintf(stderr, "--tenants wants a count in [1, 64], got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (a == "--arrival" && i + 1 < argc) {
      if (!xp::parse_arrival_arg(argv[++i], tenancy.arrival)) {
        std::fprintf(stderr,
                     "--arrival wants fixed:MS|poisson:MS|trace:MS,MS,..., "
                     "got '%s'\n",
                     argv[i]);
        return 2;
      }
    } else if (a == "--qos" && i + 1 < argc) {
      try {
        tenancy.qos = tpio::pfs::parse_qos(argv[++i]);
      } catch (const tpio::Error& e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
      }
    } else if (a == "--sub-comms" && i + 1 < argc) {
      long long k = 0;
      if (!xp::parse_int_arg(argv[++i], 1, 1'000'000, k)) {
        std::fprintf(stderr, "--sub-comms wants a count >= 1, got '%s'\n",
                     argv[i]);
        return 2;
      }
      base.sub_comm_count = static_cast<int>(k);
    } else if (a == "--stripe-unit" && i + 1 < argc) {
      try {
        base.subfile_stripe_unit = tpio::sim::parse_bytes(argv[++i]);
      } catch (const tpio::Error& e) {
        std::fprintf(stderr, "--stripe-unit: %s\n", e.what());
        return 2;
      }
    } else if (a == "--stripe-factor" && i + 1 < argc) {
      long long n = 0;
      if (!xp::parse_int_arg(argv[++i], 1, 1'000'000, n)) {
        std::fprintf(stderr, "--stripe-factor wants a count >= 1, got '%s'\n",
                     argv[i]);
        return 2;
      }
      base.subfile_stripe_factor = static_cast<int>(n);
    } else {
      std::fprintf(stderr,
                   "usage: tpio_sweep [--platform crill|ibex|lustre] "
                   "[--primitives] [--auto] [--hierarchical] "
                   "[--leader lowest|spread|superset] [--local-aggs N] "
                   "[--quick] [--reps N] [--jobs N] "
                   "[--conductor fibers|threads] "
                   "[--resume FILE] [--progress] "
                   "[--fault-rate R] [--fault-seed N] [--straggler F] "
                   "[--straggler-targets N] [--max-retries N] "
                   "[--tenants N] [--arrival fixed:MS|poisson:MS|"
                   "trace:MS,MS,...] [--qos fifo|fair|priority] "
                   "[--sub-comms N] [--stripe-unit SIZE] "
                   "[--stripe-factor N]\n");
      return 2;
    }
  }

  // The sweep scales internally; pass the unscaled preset.
  xp::Platform plat;
  if (platform == "crill") plat = xp::crill();
  else if (platform == "ibex") plat = xp::ibex();
  else if (platform == "lustre") plat = xp::lustre();
  else {
    std::fprintf(stderr, "unknown platform '%s' (crill|ibex|lustre)\n",
                 platform.c_str());
    return 2;
  }
  // Fault scenario rides on the platform's storage system; the sweep's
  // checkpoint manifest is tagged with it, so a faulty grid can never
  // resume from a healthy checkpoint (or vice versa).
  plat.pfs.faults = faults;

  if (base.local_aggregators > plat.procs_per_node) {
    std::fprintf(stderr,
                 "--local-aggs %d exceeds the platform's %d processes "
                 "per node\n",
                 base.local_aggregators, plat.procs_per_node);
    return 2;
  }
  if (base.leader_policy == coll::LeaderPolicy::Superset &&
      base.local_aggregators > 1) {
    // The sweep always runs with automatic aggregator selection, which
    // guarantees only one global aggregator per node — not enough to host
    // more than one superset lane leader.
    std::fprintf(stderr,
                 "--leader superset with --local-aggs %d exceeds the 1 "
                 "aggregator per node the sweep's automatic election "
                 "guarantees; use --leader spread for co > 1 sweeps\n",
                 base.local_aggregators);
    return 2;
  }

  // The executor refuses stale --resume checkpoints (and other invariant
  // violations) by throwing; report those as a clean CLI error, not an
  // uncaught-exception abort.
  try {
    if (tenants > 1) {
      if (primitives) {
        std::fprintf(stderr,
                     "--primitives and --tenants cannot be combined "
                     "(the contended sweep covers the overlap grid)\n");
        return 2;
      }
      tenancy.neighbors = static_cast<int>(tenants) - 1;
      std::puts("platform,benchmark,size,procs,overlap,min_ms");
      for (const auto& s : xp::run_contended_sweep(
               plat, base, tenancy, static_cast<int>(reps), 0xC57, quick,
               exec)) {
        for (const auto& [m, ms] : s.min_ms) {
          std::printf("%s,%s,%s,%d,%s,%.6f\n", s.platform.c_str(),
                      wl::to_string(s.kind), s.size_label.c_str(), s.procs,
                      coll::to_string(m), ms);
        }
      }
    } else if (primitives) {
      std::puts("platform,benchmark,size,procs,transfer,min_ms");
      for (const auto& s : xp::run_primitive_sweep(
               plat, base, static_cast<int>(reps), 0xC57, quick, exec)) {
        for (const auto& [t, ms] : s.min_ms) {
          std::printf("%s,%s,%s,%d,%s,%.6f\n", s.platform.c_str(),
                      wl::to_string(s.kind), s.size_label.c_str(), s.procs,
                      coll::to_string(t), ms);
        }
      }
    } else {
      std::puts("platform,benchmark,size,procs,overlap,min_ms");
      for (const auto& s :
           xp::run_overlap_sweep(plat, base, static_cast<int>(reps), 0xC57,
                                 quick, exec, include_auto)) {
        for (const auto& [m, ms] : s.min_ms) {
          std::printf("%s,%s,%s,%d,%s,%.6f\n", s.platform.c_str(),
                      wl::to_string(s.kind), s.size_label.c_str(), s.procs,
                      coll::to_string(m), ms);
        }
      }
    }
  } catch (const tpio::Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
