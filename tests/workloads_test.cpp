#include <gtest/gtest.h>

#include <map>

#include "workloads/workloads.hpp"

namespace wl = tpio::wl;
namespace coll = tpio::coll;

namespace {

/// A job-wide coverage check: all ranks' extents must tile [0, total)
/// exactly once.
void expect_full_coverage(const wl::Spec& spec, int P) {
  std::map<std::uint64_t, std::uint64_t> regions;  // offset -> end
  std::uint64_t total = 0;
  for (int r = 0; r < P; ++r) {
    const coll::FileView v = spec.view(r, P);
    v.validate();
    EXPECT_EQ(v.total_bytes(), spec.bytes_per_proc());
    for (const coll::Extent& e : v.extents) {
      auto [it, inserted] = regions.emplace(e.offset, e.end());
      ASSERT_TRUE(inserted) << "duplicate extent offset " << e.offset;
      total += e.length;
    }
  }
  // Contiguity: sorted regions chain without gaps or overlaps.
  std::uint64_t pos = 0;
  for (const auto& [off, end] : regions) {
    ASSERT_EQ(off, pos) << "gap or overlap at offset " << off;
    pos = end;
  }
  EXPECT_EQ(pos, total);
  EXPECT_EQ(total, spec.bytes_per_proc() * static_cast<std::uint64_t>(P));
}

}  // namespace

TEST(GridDims, SquaresAndRectangles) {
  EXPECT_EQ(wl::grid_dims(16), (std::pair<int, int>{4, 4}));
  EXPECT_EQ(wl::grid_dims(64), (std::pair<int, int>{8, 8}));
  EXPECT_EQ(wl::grid_dims(729), (std::pair<int, int>{27, 27}));
  EXPECT_EQ(wl::grid_dims(8), (std::pair<int, int>{2, 4}));
  EXPECT_EQ(wl::grid_dims(12), (std::pair<int, int>{3, 4}));
  EXPECT_EQ(wl::grid_dims(7), (std::pair<int, int>{1, 7}));  // prime
  EXPECT_EQ(wl::grid_dims(1), (std::pair<int, int>{1, 1}));
}

TEST(Ior, OneContiguousBlockPerRank) {
  const auto spec = wl::make_ior(1 << 20);
  const auto v = spec.view(3, 8);
  ASSERT_EQ(v.extents.size(), 1u);
  EXPECT_EQ(v.extents[0].offset, 3u << 20);
  EXPECT_EQ(v.extents[0].length, 1u << 20);
  expect_full_coverage(spec, 8);
}

TEST(Tile, SegmentStructureMatchesGeometry) {
  // 4 ranks in a 2x2 grid, 3x2 elements of 256 B each.
  const auto spec = wl::make_tile256(3, 2);
  EXPECT_EQ(spec.bytes_per_proc(), 256u * 6);
  const auto v = spec.view(0, 4);
  ASSERT_EQ(v.extents.size(), 2u);  // one extent per element row
  EXPECT_EQ(v.extents[0].offset, 0u);
  EXPECT_EQ(v.extents[0].length, 3u * 256);
  // Row stride: gx * elems_x * elem = 2*3*256.
  EXPECT_EQ(v.extents[1].offset, 2u * 3 * 256);

  // Rank 1 = tile (1, 0): shifted by one tile width.
  const auto v1 = spec.view(1, 4);
  EXPECT_EQ(v1.extents[0].offset, 3u * 256);
}

TEST(Tile, FullCoverageSquare) {
  expect_full_coverage(wl::make_tile256(4, 4), 16);
  expect_full_coverage(wl::make_tile1m(2, 2), 9);
}

TEST(Tile, FullCoverageRectangularGrid) {
  expect_full_coverage(wl::make_tile256(5, 3), 12);  // 3x4 grid
  expect_full_coverage(wl::make_tile256(3, 2), 7);   // 1x7 degenerate
}

TEST(Tile, ElementSizesDiffer) {
  EXPECT_EQ(wl::make_tile256(4, 4).elem_bytes, 256u);
  EXPECT_EQ(wl::make_tile1m(4, 4).elem_bytes, 1u << 20);
}

TEST(Flash, VariableMajorLayout) {
  const auto spec = wl::make_flash(3, 2, 4096);
  const int P = 4;
  const auto v = spec.view(1, P);
  ASSERT_EQ(v.extents.size(), 3u);  // one per variable
  const std::uint64_t slab = 2 * 4096;
  const std::uint64_t var_bytes = slab * P;
  EXPECT_EQ(v.extents[0].offset, slab);              // var 0, rank 1
  EXPECT_EQ(v.extents[1].offset, var_bytes + slab);  // var 1, rank 1
  EXPECT_EQ(v.extents[0].length, slab);
  expect_full_coverage(spec, P);
}

TEST(Flash, CoverageWithManyVars) {
  expect_full_coverage(wl::make_flash(24, 5, 512), 6);
}

TEST(FillLocal, MatchesExpectedBytes) {
  const auto spec = wl::make_tile256(3, 2);
  const auto v = spec.view(2, 4);
  const auto data = wl::fill_local(v);
  ASSERT_EQ(data.size(), v.total_bytes());
  std::size_t pos = 0;
  for (const auto& e : v.extents) {
    for (std::uint64_t i = 0; i < e.length; ++i) {
      ASSERT_EQ(data[pos++], wl::expected_byte(e.offset + i));
    }
  }
}

TEST(Describe, MentionsGeometry) {
  EXPECT_NE(wl::make_ior(1 << 20).describe().find("IOR"), std::string::npos);
  EXPECT_NE(wl::make_tile256(4, 4).describe().find("256"), std::string::npos);
  EXPECT_NE(wl::make_flash(24, 8, 4096).describe().find("vars=24"),
            std::string::npos);
}
