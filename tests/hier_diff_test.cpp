// Differential harness for the hierarchical (two-level) shuffle: for the
// same decomposition and tuning, the hierarchical and direct code paths
// must produce byte-identical files, and the hierarchy may never *increase*
// inter-node traffic — member->leader hops are intra-node and each byte
// crosses the network at most once (leader -> aggregator), coalesced.

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "simbase/crc.hpp"
#include "simbase/rng.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

/// Round-robin chunk decomposition: rank r owns chunks r, r+P, r+2P, ...
/// Co-located ranks own adjacent chunks, so the leader's coalescing has
/// real work to do. Returns views; the file is [0, chunk*P*rounds).
std::vector<coll::FileView> strided_views(int P, std::uint64_t chunk,
                                          int rounds) {
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  for (int k = 0; k < rounds; ++k) {
    for (int r = 0; r < P; ++r) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(P) +
           static_cast<std::uint64_t>(r)) *
          chunk;
      views[static_cast<std::size_t>(r)].extents.push_back(
          coll::Extent{off, chunk});
    }
  }
  return views;
}

/// Random dense decomposition (as engine_fuzz_test's): random-length pieces
/// handed to random ranks, covering [0, total) exactly.
std::vector<coll::FileView> random_views(std::uint64_t seed, int P,
                                         std::uint64_t* total) {
  sim::Rng rng(seed);
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  std::uint64_t pos = 0;
  const int pieces = 20 + static_cast<int>(rng.next_below(60));
  for (int k = 0; k < pieces; ++k) {
    const std::uint64_t len = 1 + rng.next_below(25'000);
    const int owner =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    auto& v = views[static_cast<std::size_t>(owner)];
    if (!v.extents.empty() && v.extents.back().end() == pos) {
      v.extents.back().length += len;
    } else {
      v.extents.push_back(coll::Extent{pos, len});
    }
    pos += len;
  }
  *total = pos;
  return views;
}

struct RunOut {
  sim::Duration makespan = 0;
  std::uint64_t crc = 0;
  std::uint64_t inter_msgs = 0;
  std::uint64_t inter_bytes = 0;
  std::uint64_t intra_bytes = 0;
};

RunOut run_once(const ClusterSpec& cs,
                const std::vector<coll::FileView>& views, std::uint64_t total,
                const coll::Options& o) {
  Cluster cluster(cs);
  auto file = cluster.storage().create("diff", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    coll::collective_write(mpi, *file, view, data, o);
  });
  EXPECT_EQ(file->verify(file_byte), "")
      << "hier=" << o.hierarchical << " overlap=" << coll::to_string(o.overlap)
      << " transfer=" << coll::to_string(o.transfer);
  RunOut out;
  out.makespan = cluster.conductor().makespan();
  const auto bytes = file->read_back(0, total);
  out.crc = sim::crc64(bytes);
  out.inter_msgs = cluster.fabric().inter_node_messages();
  out.inter_bytes = cluster.fabric().inter_node_bytes();
  out.intra_bytes = cluster.fabric().intra_node_bytes();
  return out;
}

}  // namespace

// Every scheduler x primitive combination: hierarchical output must equal
// the direct output byte for byte, with no extra inter-node bytes.
TEST(HierDiff, AllSchedulerPrimitiveCombosByteIdentical) {
  ClusterSpec cs;
  cs.nodes = 3;
  cs.ppn = 3;
  const auto views = strided_views(9, 1500, 8);
  const std::uint64_t total = 1500ull * 9 * 8;

  for (int m = 0; m < 5; ++m) {
    for (int t = 0; t < 3; ++t) {
      coll::Options o;
      o.cb_size = 16384;
      o.overlap = static_cast<coll::OverlapMode>(m);
      o.transfer = static_cast<coll::Transfer>(t);
      const RunOut direct = run_once(cs, views, total, o);
      o.hierarchical = true;
      const RunOut hier = run_once(cs, views, total, o);
      EXPECT_EQ(direct.crc, hier.crc)
          << "overlap=" << coll::to_string(o.overlap)
          << " transfer=" << coll::to_string(o.transfer);
      EXPECT_LE(hier.inter_bytes, direct.inter_bytes)
          << "overlap=" << coll::to_string(o.overlap)
          << " transfer=" << coll::to_string(o.transfer);
    }
  }
}

// Randomized grid over topology shape (including partially-filled last
// nodes), decomposition, tuning and leader policy.
TEST(HierDiff, RandomizedGridHierMatchesDirect) {
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    sim::Rng rng(sim::Rng::derive_seed(seed, 0xD1FF));
    ClusterSpec cs;
    cs.nodes = 2 + static_cast<int>(rng.next_below(3));   // 2..4
    cs.ppn = 1 + static_cast<int>(rng.next_below(4));     // 1..4
    const int cap = cs.nodes * cs.ppn;
    const int floor = (cs.nodes - 1) * cs.ppn + 1;
    // Half the cases leave the last node partially filled.
    cs.ranks = rng.next_below(2) == 0
                   ? 0
                   : floor + static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(cap - floor + 1)));
    const int P = cs.ranks > 0 ? cs.ranks : cap;

    std::uint64_t total = 0;
    const auto views = random_views(seed, P, &total);
    coll::Options o;
    o.cb_size = 4096 + rng.next_below(30'000);
    o.overlap = static_cast<coll::OverlapMode>(rng.next_below(5));
    o.transfer = static_cast<coll::Transfer>(rng.next_below(3));
    o.leader_policy = rng.next_below(2) == 0 ? coll::LeaderPolicy::Lowest
                                             : coll::LeaderPolicy::Spread;
    const RunOut direct = run_once(cs, views, total, o);
    o.hierarchical = true;
    const RunOut hier = run_once(cs, views, total, o);
    EXPECT_EQ(direct.crc, hier.crc)
        << "seed=" << seed << " nodes=" << cs.nodes << " ppn=" << cs.ppn
        << " ranks=" << cs.ranks << " overlap=" << coll::to_string(o.overlap)
        << " transfer=" << coll::to_string(o.transfer)
        << " leader=" << coll::to_string(o.leader_policy);
    EXPECT_LE(hier.inter_bytes, direct.inter_bytes)
        << "seed=" << seed << " nodes=" << cs.nodes << " ppn=" << cs.ppn
        << " ranks=" << cs.ranks;
  }
}

// Dense node population: coalescing must strictly cut the inter-node
// message count (many co-located senders collapse into one per cycle).
TEST(HierDiff, HighPpnStrictlyReducesInterNodeMessages) {
  ClusterSpec cs;
  cs.nodes = 2;
  cs.ppn = 8;
  const auto views = strided_views(16, 800, 6);
  const std::uint64_t total = 800ull * 16 * 6;
  coll::Options o;
  o.cb_size = 16384;
  o.overlap = coll::OverlapMode::WriteComm2;
  const RunOut direct = run_once(cs, views, total, o);
  o.hierarchical = true;
  const RunOut hier = run_once(cs, views, total, o);
  EXPECT_EQ(direct.crc, hier.crc);
  EXPECT_LT(hier.inter_msgs, direct.inter_msgs);
  EXPECT_LE(hier.inter_bytes, direct.inter_bytes);
}

// One process per node: there is nothing to merge, so the hierarchical
// path must degenerate to the direct one exactly — same bytes, same
// messages, same virtual finishing time.
TEST(HierDiff, Ppn1DegeneratesToDirectExactly) {
  ClusterSpec cs;
  cs.nodes = 6;
  cs.ppn = 1;
  const auto views = strided_views(6, 2000, 5);
  const std::uint64_t total = 2000ull * 6 * 5;
  for (int m = 0; m < 5; ++m) {
    for (int t = 0; t < 3; ++t) {
      coll::Options o;
      o.cb_size = 8192;
      o.overlap = static_cast<coll::OverlapMode>(m);
      o.transfer = static_cast<coll::Transfer>(t);
      const RunOut direct = run_once(cs, views, total, o);
      o.hierarchical = true;
      const RunOut hier = run_once(cs, views, total, o);
      EXPECT_EQ(direct.crc, hier.crc);
      EXPECT_EQ(direct.makespan, hier.makespan)
          << "overlap=" << coll::to_string(o.overlap)
          << " transfer=" << coll::to_string(o.transfer);
      EXPECT_EQ(direct.inter_msgs, hier.inter_msgs);
      EXPECT_EQ(direct.inter_bytes, hier.inter_bytes);
      EXPECT_EQ(direct.intra_bytes, hier.intra_bytes);
    }
  }
}

// Both leader policies agree on file contents; Spread keeps the gather
// off the aggregator rank but must not change what lands on disk.
TEST(HierDiff, LeaderPoliciesAgreeOnFileContents) {
  ClusterSpec cs;
  cs.nodes = 3;
  cs.ppn = 4;
  cs.ranks = 10;  // partial last node
  const auto views = strided_views(10, 1200, 6);
  const std::uint64_t total = 1200ull * 10 * 6;
  coll::Options o;
  o.cb_size = 16384;
  o.overlap = coll::OverlapMode::WriteComm;
  o.hierarchical = true;
  o.leader_policy = coll::LeaderPolicy::Lowest;
  const RunOut lowest = run_once(cs, views, total, o);
  o.leader_policy = coll::LeaderPolicy::Spread;
  const RunOut spread = run_once(cs, views, total, o);
  EXPECT_EQ(lowest.crc, spread.crc);
}
