#include <gtest/gtest.h>

#include <vector>

#include "sched/conductor.hpp"
#include "sched/sync.hpp"

namespace sim = tpio::sim;
using sim::Conductor;
using sim::RankCtx;
using sim::SyncPoint;
using sim::Time;

TEST(SyncPoint, AllResumeAtMaxArrival) {
  const int n = 8;
  Conductor c(n);
  SyncPoint sp(n);
  c.run([&](RankCtx& ctx) {
    ctx.advance(static_cast<sim::Duration>(ctx.rank() * 100));
    const Time t = sp.arrive(ctx);
    EXPECT_EQ(t, (n - 1) * 100);
    EXPECT_EQ(ctx.now(), (n - 1) * 100);
  });
}

TEST(SyncPoint, ExtraCostUsesMax) {
  const int n = 4;
  Conductor c(n);
  SyncPoint sp(n);
  c.run([&](RankCtx& ctx) {
    // Arrivals all at clock 0; extra costs 0,10,20,30 -> release at 30.
    const Time t = sp.arrive(ctx, static_cast<sim::Duration>(ctx.rank() * 10));
    EXPECT_EQ(t, 30);
  });
}

TEST(SyncPoint, ReusableAcrossGenerations) {
  const int n = 6;
  const int rounds = 20;
  Conductor c(n);
  SyncPoint sp(n);
  c.run([&](RankCtx& ctx) {
    Time prev = -1;
    for (int i = 0; i < rounds; ++i) {
      ctx.advance(static_cast<sim::Duration>((ctx.rank() * 13 + i * 7) % 50 + 1));
      const Time t = sp.arrive(ctx);
      EXPECT_GT(t, prev);  // strictly increasing (everyone advances >= 1)
      prev = t;
    }
  });
}

TEST(SyncPoint, SinglePartyImmediate) {
  Conductor c(1);
  SyncPoint sp(1);
  c.run([&](RankCtx& ctx) {
    ctx.advance(42);
    EXPECT_EQ(sp.arrive(ctx, 8), 50);
    EXPECT_EQ(ctx.now(), 50);
  });
}

TEST(SyncPoint, BarrierSemanticsNoOneEscapesEarly) {
  // Classic barrier property: no rank's post-barrier clock is below any
  // rank's pre-barrier arrival clock.
  const int n = 16;
  Conductor c(n);
  SyncPoint sp(n);
  std::vector<Time> arrivals(n), releases(n);
  c.run([&](RankCtx& ctx) {
    ctx.advance(static_cast<sim::Duration>((ctx.rank() * 997) % 777));
    arrivals[static_cast<std::size_t>(ctx.rank())] = ctx.now();
    releases[static_cast<std::size_t>(ctx.rank())] = sp.arrive(ctx);
  });
  Time max_arrival = 0;
  for (Time a : arrivals) max_arrival = std::max(max_arrival, a);
  for (Time r : releases) EXPECT_EQ(r, max_arrival);
}

TEST(SyncPoint, SubsetOfRanksCanSync) {
  // Only even ranks participate in the sync point.
  const int n = 8;
  Conductor c(n);
  SyncPoint sp(n / 2);
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() % 2 == 0) {
      ctx.advance(static_cast<sim::Duration>(ctx.rank()));
      EXPECT_EQ(sp.arrive(ctx), 6);  // max even-rank arrival
    } else {
      ctx.advance(1'000'000);  // odd ranks uninvolved
    }
  });
}
