#include <gtest/gtest.h>

#include "harness/cli.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace coll = tpio::coll;
namespace wl = tpio::wl;
namespace sim = tpio::sim;

namespace {
xp::CliConfig parse(std::initializer_list<const char*> args) {
  return xp::parse_cli(std::vector<std::string>(args.begin(), args.end()));
}
}  // namespace

TEST(Cli, Defaults) {
  const auto cfg = parse({});
  EXPECT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_EQ(cfg.spec.platform.name, "ibex");
  EXPECT_EQ(cfg.spec.workload.kind, wl::Kind::Tile1M);
  EXPECT_EQ(cfg.spec.nprocs, 64);
  EXPECT_EQ(cfg.reps, 3);
  EXPECT_FALSE(cfg.spec.verify);
}

TEST(Cli, FullConfiguration) {
  const auto cfg = parse({"--platform", "crill", "--workload", "flash",
                          "--procs", "100", "--cb", "8M", "--overlap",
                          "write", "--transfer", "fence", "--aggregators",
                          "4", "--reps", "5", "--seed", "99", "--verify"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_EQ(cfg.spec.platform.name, "crill");
  EXPECT_EQ(cfg.spec.workload.kind, wl::Kind::Flash);
  EXPECT_EQ(cfg.spec.nprocs, 100);
  EXPECT_EQ(cfg.spec.options.cb_size, 8u * sim::MiB);
  EXPECT_EQ(cfg.spec.options.overlap, coll::OverlapMode::Write);
  EXPECT_EQ(cfg.spec.options.transfer, coll::Transfer::OneSidedFence);
  EXPECT_EQ(cfg.spec.options.num_aggregators, 4);
  EXPECT_EQ(cfg.reps, 5);
  EXPECT_EQ(cfg.seed_base, 99u);
  EXPECT_TRUE(cfg.spec.verify);
}

TEST(Cli, HierarchicalFlags) {
  EXPECT_FALSE(parse({}).spec.options.hierarchical);
  const auto cfg = parse({"--hierarchical", "--leader", "spread"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_TRUE(cfg.spec.options.hierarchical);
  EXPECT_EQ(cfg.spec.options.leader_policy, coll::LeaderPolicy::Spread);
  const auto lowest = parse({"--hierarchical", "--leader", "lowest"});
  EXPECT_EQ(lowest.spec.options.leader_policy, coll::LeaderPolicy::Lowest);
}

TEST(Cli, BytesPerProcShapesWorkload) {
  const auto cfg =
      parse({"--workload", "ior", "--bytes-per-proc", "4M"});
  ASSERT_TRUE(cfg.error.empty());
  EXPECT_EQ(cfg.spec.workload.bytes_per_proc(), 4u * sim::MiB);
}

TEST(Cli, HelpShortCircuits) {
  EXPECT_TRUE(parse({"--help"}).quick_help);
  EXPECT_TRUE(parse({"-h"}).quick_help);
  EXPECT_FALSE(xp::cli_usage().empty());
}

TEST(Cli, Errors) {
  EXPECT_FALSE(parse({"--bogus"}).error.empty());
  EXPECT_FALSE(parse({"--procs"}).error.empty());        // missing value
  EXPECT_FALSE(parse({"--procs", "-3"}).error.empty());
  EXPECT_FALSE(parse({"--overlap", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--transfer", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--platform", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--workload", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--cb", "12Q"}).error.empty());
  EXPECT_FALSE(parse({"--reps", "0"}).error.empty());
  EXPECT_FALSE(parse({"--leader"}).error.empty());       // missing value
  EXPECT_FALSE(parse({"--leader", "wat"}).error.empty());
}

TEST(Cli, RejectsZeroNegativeAndOverflowingNumbers) {
  // Regression: atoi-style parsing accepted "--procs 0", "--procs -4",
  // trailing garbage, and silently wrapped overflowing values.
  EXPECT_FALSE(parse({"--procs", "0"}).error.empty());
  EXPECT_FALSE(parse({"--procs", "-4"}).error.empty());
  EXPECT_FALSE(parse({"--procs", "64x"}).error.empty());
  EXPECT_FALSE(parse({"--procs", "99999999999999999999"}).error.empty());
  EXPECT_FALSE(parse({"--procs", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--aggregators", "-1"}).error.empty());
  EXPECT_TRUE(parse({"--aggregators", "0"}).error.empty());  // 0 = auto
  EXPECT_FALSE(parse({"--reps", "-2"}).error.empty());
  EXPECT_FALSE(parse({"--probe-cycles", "0"}).error.empty());
  EXPECT_FALSE(parse({"--seed", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--seed", "-1"}).error.empty());
  // Byte sizes: zero and 64-bit-overflowing values are malformed.
  EXPECT_FALSE(parse({"--cb", "0"}).error.empty());
  EXPECT_FALSE(parse({"--cb", "99999999999G"}).error.empty());
  EXPECT_FALSE(parse({"--bytes-per-proc", "0"}).error.empty());
  EXPECT_FALSE(parse({"--bytes-per-proc", "99999999999G"}).error.empty());
}

TEST(Cli, StrictIntParsers) {
  long long v = -1;
  EXPECT_TRUE(xp::parse_int_arg("42", 1, 100, v));
  EXPECT_EQ(v, 42);
  EXPECT_FALSE(xp::parse_int_arg("", 1, 100, v));
  EXPECT_FALSE(xp::parse_int_arg("42x", 1, 100, v));
  EXPECT_FALSE(xp::parse_int_arg("101", 1, 100, v));
  EXPECT_FALSE(xp::parse_int_arg("0", 1, 100, v));
  EXPECT_FALSE(xp::parse_int_arg("99999999999999999999", 1, 100, v));
  EXPECT_EQ(v, 42);  // failures leave the output untouched

  std::uint64_t u = 0;
  EXPECT_TRUE(xp::parse_u64_arg("18446744073709551615", u));
  EXPECT_EQ(u, 18446744073709551615ull);
  EXPECT_FALSE(xp::parse_u64_arg("-1", u));
  EXPECT_FALSE(xp::parse_u64_arg("18446744073709551616", u));  // 2^64
  EXPECT_FALSE(xp::parse_u64_arg("1.5", u));
}

TEST(Cli, AutoOverlapFlags) {
  const auto cfg = parse({"--overlap", "auto", "--probe-cycles", "6",
                          "--tuning-cache", "/tmp/tpio-cache.json"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_EQ(cfg.spec.options.overlap, coll::OverlapMode::Auto);
  EXPECT_EQ(cfg.spec.options.probe_cycles, 6);
  EXPECT_EQ(cfg.spec.options.tuning_cache, "/tmp/tpio-cache.json");
  EXPECT_FALSE(parse({"--tuning-cache"}).error.empty());  // missing value
}

TEST(Cli, PlatformPresets) {
  EXPECT_EQ(xp::platform_by_name("crill").name, "crill");
  EXPECT_EQ(xp::platform_by_name("ibex").name, "ibex");
  const auto lustre = xp::platform_by_name("lustre");
  EXPECT_EQ(lustre.name, "lustre");
  EXPECT_GT(lustre.pfs.aio_penalty, 2.0);  // pathological aio
  EXPECT_THROW(xp::platform_by_name("summit"), tpio::Error);
}

TEST(Cli, EndToEndTinyRun) {
  auto cfg = parse({"--workload", "ior", "--bytes-per-proc", "256K",
                    "--procs", "8", "--reps", "2", "--verify"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  const xp::Series s = xp::execute_series(cfg.spec, cfg.reps, cfg.seed_base);
  EXPECT_EQ(s.runs.size(), 2u);
  EXPECT_GT(s.min_makespan(), 0);
}
