#include <gtest/gtest.h>

#include "harness/cli.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace coll = tpio::coll;
namespace wl = tpio::wl;
namespace sim = tpio::sim;

namespace {
xp::CliConfig parse(std::initializer_list<const char*> args) {
  return xp::parse_cli(std::vector<std::string>(args.begin(), args.end()));
}
}  // namespace

TEST(Cli, Defaults) {
  const auto cfg = parse({});
  EXPECT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_EQ(cfg.spec.platform.name, "ibex");
  EXPECT_EQ(cfg.spec.workload.kind, wl::Kind::Tile1M);
  EXPECT_EQ(cfg.spec.nprocs, 64);
  EXPECT_EQ(cfg.reps, 3);
  EXPECT_FALSE(cfg.spec.verify);
}

TEST(Cli, FullConfiguration) {
  const auto cfg = parse({"--platform", "crill", "--workload", "flash",
                          "--procs", "100", "--cb", "8M", "--overlap",
                          "write", "--transfer", "fence", "--aggregators",
                          "4", "--reps", "5", "--seed", "99", "--verify"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_EQ(cfg.spec.platform.name, "crill");
  EXPECT_EQ(cfg.spec.workload.kind, wl::Kind::Flash);
  EXPECT_EQ(cfg.spec.nprocs, 100);
  EXPECT_EQ(cfg.spec.options.cb_size, 8u * sim::MiB);
  EXPECT_EQ(cfg.spec.options.overlap, coll::OverlapMode::Write);
  EXPECT_EQ(cfg.spec.options.transfer, coll::Transfer::OneSidedFence);
  EXPECT_EQ(cfg.spec.options.num_aggregators, 4);
  EXPECT_EQ(cfg.reps, 5);
  EXPECT_EQ(cfg.seed_base, 99u);
  EXPECT_TRUE(cfg.spec.verify);
}

TEST(Cli, HierarchicalFlags) {
  EXPECT_FALSE(parse({}).spec.options.hierarchical);
  const auto cfg = parse({"--hierarchical", "--leader", "spread"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  EXPECT_TRUE(cfg.spec.options.hierarchical);
  EXPECT_EQ(cfg.spec.options.leader_policy, coll::LeaderPolicy::Spread);
  const auto lowest = parse({"--hierarchical", "--leader", "lowest"});
  EXPECT_EQ(lowest.spec.options.leader_policy, coll::LeaderPolicy::Lowest);
}

TEST(Cli, BytesPerProcShapesWorkload) {
  const auto cfg =
      parse({"--workload", "ior", "--bytes-per-proc", "4M"});
  ASSERT_TRUE(cfg.error.empty());
  EXPECT_EQ(cfg.spec.workload.bytes_per_proc(), 4u * sim::MiB);
}

TEST(Cli, HelpShortCircuits) {
  EXPECT_TRUE(parse({"--help"}).quick_help);
  EXPECT_TRUE(parse({"-h"}).quick_help);
  EXPECT_FALSE(xp::cli_usage().empty());
}

TEST(Cli, Errors) {
  EXPECT_FALSE(parse({"--bogus"}).error.empty());
  EXPECT_FALSE(parse({"--procs"}).error.empty());        // missing value
  EXPECT_FALSE(parse({"--procs", "-3"}).error.empty());
  EXPECT_FALSE(parse({"--overlap", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--transfer", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--platform", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--workload", "wat"}).error.empty());
  EXPECT_FALSE(parse({"--cb", "12Q"}).error.empty());
  EXPECT_FALSE(parse({"--reps", "0"}).error.empty());
  EXPECT_FALSE(parse({"--leader"}).error.empty());       // missing value
  EXPECT_FALSE(parse({"--leader", "wat"}).error.empty());
}

TEST(Cli, PlatformPresets) {
  EXPECT_EQ(xp::platform_by_name("crill").name, "crill");
  EXPECT_EQ(xp::platform_by_name("ibex").name, "ibex");
  const auto lustre = xp::platform_by_name("lustre");
  EXPECT_EQ(lustre.name, "lustre");
  EXPECT_GT(lustre.pfs.aio_penalty, 2.0);  // pathological aio
  EXPECT_THROW(xp::platform_by_name("summit"), tpio::Error);
}

TEST(Cli, EndToEndTinyRun) {
  auto cfg = parse({"--workload", "ior", "--bytes-per-proc", "256K",
                    "--procs", "8", "--reps", "2", "--verify"});
  ASSERT_TRUE(cfg.error.empty()) << cfg.error;
  const xp::Series s = xp::execute_series(cfg.spec, cfg.reps, cfg.seed_base);
  EXPECT_EQ(s.runs.size(), 2u);
  EXPECT_GT(s.min_makespan(), 0);
}
