// Local-aggregation (Options::local_aggregators, Kang et al.'s co) suite:
//
//  - lane geometry invariants for every placement policy, including
//    partially-filled last nodes and co that does not divide ppn;
//  - per-lane byte conservation: the lanes of a node carry exactly the
//    node's merged payload, split but never duplicated or dropped;
//  - co == 1 degeneracy: explicit --local-aggs 1 is bit-identical to the
//    default single-leader scheme on every RunResult field, across all
//    five schedulers, three shuffle primitives, both conductor backends
//    and any executor worker count;
//  - co > 1 correctness fuzz: pipelined lanes must land the same bytes as
//    the single-leader run on randomized topologies and decompositions;
//  - the forward timing bucket and the pipelined-overlap statistic.
//
// Registered under the `localaggs` ctest label (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/engine.hpp"
#include "harness/cli.hpp"
#include "harness/executor.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "sched/conductor.hpp"
#include "simbase/crc.hpp"
#include "simbase/rng.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace net = tpio::net;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

/// Force a backend for the duration of one test body.
class BackendGuard {
 public:
  explicit BackendGuard(sim::ConductorBackend b)
      : prev_(sim::Conductor::default_backend()) {
    sim::Conductor::set_default_backend(b);
  }
  ~BackendGuard() { sim::Conductor::set_default_backend(prev_); }

 private:
  sim::ConductorBackend prev_;
};

/// Round-robin chunk decomposition (as hier_diff_test's): co-located ranks
/// own adjacent chunks, so lane coalescing has real work to do.
std::vector<coll::FileView> strided_views(int P, std::uint64_t chunk,
                                          int rounds) {
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  for (int k = 0; k < rounds; ++k) {
    for (int r = 0; r < P; ++r) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(P) +
           static_cast<std::uint64_t>(r)) *
          chunk;
      views[static_cast<std::size_t>(r)].extents.push_back(
          coll::Extent{off, chunk});
    }
  }
  return views;
}

/// Random dense decomposition covering [0, total) exactly, disjoint across
/// ranks.
std::vector<coll::FileView> random_views(std::uint64_t seed, int P,
                                         std::uint64_t* total) {
  sim::Rng rng(seed);
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  std::uint64_t pos = 0;
  const int pieces = 20 + static_cast<int>(rng.next_below(60));
  for (int k = 0; k < pieces; ++k) {
    const std::uint64_t len = 1 + rng.next_below(25'000);
    const int owner =
        static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    auto& v = views[static_cast<std::size_t>(owner)];
    if (!v.extents.empty() && v.extents.back().end() == pos) {
      v.extents.back().length += len;
    } else {
      v.extents.push_back(coll::Extent{pos, len});
    }
    pos += len;
  }
  *total = pos;
  return views;
}

struct RunOut {
  sim::Duration makespan = 0;
  std::uint64_t crc = 0;
  std::uint64_t inter_msgs = 0;
  std::uint64_t inter_bytes = 0;
  std::uint64_t intra_bytes = 0;
};

RunOut run_once(const ClusterSpec& cs,
                const std::vector<coll::FileView>& views, std::uint64_t total,
                const coll::Options& o) {
  Cluster cluster(cs);
  auto file = cluster.storage().create("lanes", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    coll::collective_write(mpi, *file, view, data, o);
  });
  EXPECT_EQ(file->verify(file_byte), "")
      << "co=" << o.local_aggregators
      << " leader=" << coll::to_string(o.leader_policy)
      << " overlap=" << coll::to_string(o.overlap)
      << " transfer=" << coll::to_string(o.transfer);
  RunOut out;
  out.makespan = cluster.conductor().makespan();
  const auto bytes = file->read_back(0, total);
  out.crc = sim::crc64(bytes);
  out.inter_msgs = cluster.fabric().inter_node_messages();
  out.inter_bytes = cluster.fabric().inter_node_bytes();
  out.intra_bytes = cluster.fabric().intra_node_bytes();
  return out;
}

/// Every RunResult field, forward bucket and overlap fraction included.
std::string fp(const xp::RunResult& r) {
  std::string s;
  auto add = [&](auto v) {
    s += std::to_string(v);
    s += '|';
  };
  auto add_timings = [&](const coll::PhaseTimings& t) {
    add(t.meta);
    add(t.pack);
    add(t.gather);
    add(t.forward);
    add(t.shuffle);
    add(t.sync);
    add(t.write);
    add(t.backoff);
    add(t.total);
  };
  add(r.arrival);
  add(r.completion);
  add(r.makespan);
  add_timings(r.rank_sum);
  add_timings(r.agg_sum);
  add_timings(r.agg_max);
  add(r.aggregators);
  add(r.cycles);
  add(r.bytes);
  add(r.inter_node_bytes);
  add(r.inter_node_messages);
  add(r.intra_node_bytes);
  add(r.pipelined_overlap);
  add(r.faults.retries);
  add(r.faults.giveups);
  add(r.faults.degraded_cycles);
  s += r.io_error;
  s += '|';
  s += r.verify_error;
  s += '|';
  return s;
}

coll::Plan make_plan(const net::Topology& topo,
                     std::vector<coll::FileView> views,
                     const coll::Options& o) {
  return coll::Plan(std::move(views), topo, 4096, o);
}

}  // namespace

// ---------------------------------------------------------------------------
// Lane geometry
// ---------------------------------------------------------------------------

// Lanes partition every node's members into contiguous non-empty intervals;
// each lane's leader lives inside its own lane; lane_of inverts
// lane_rank_range. Covers partial last nodes, co > ppn (clamped) and co
// that does not divide the member count, for all three policies.
TEST(LaneGeometry, PartitionLeadersAndInverse) {
  for (const coll::LeaderPolicy pol :
       {coll::LeaderPolicy::Lowest, coll::LeaderPolicy::Spread,
        coll::LeaderPolicy::Superset}) {
    for (int nodes = 1; nodes <= 4; ++nodes) {
      for (int ppn = 1; ppn <= 5; ++ppn) {
        for (int drop = 0; drop < ppn && drop < 2; ++drop) {
          const int P = nodes * ppn - drop;
          if (P < 1) continue;
          net::Topology topo{nodes, ppn, P == nodes * ppn ? 0 : P};
          for (const int co : {1, 2, 3, 5, 9}) {
            coll::Options o;
            o.cb_size = 4096;
            o.local_aggregators = co;
            o.leader_policy = pol;
            const coll::Plan plan =
                make_plan(topo, strided_views(P, 64, 1), o);
            EXPECT_EQ(plan.local_aggregators(), co);
            for (int n = 0; n < nodes; ++n) {
              const auto [first, last] = plan.node_rank_range(n);
              const int m = last - first;
              const int L = plan.lanes(n);
              EXPECT_EQ(L, std::min(co, m));
              int prev_leader = -1;
              int cursor = first;
              for (int l = 0; l < L; ++l) {
                const auto [lo, hi] = plan.lane_rank_range(n, l);
                EXPECT_EQ(lo, cursor) << "lanes must be contiguous";
                EXPECT_LT(lo, hi) << "lanes must be non-empty";
                cursor = hi;
                const int leader = plan.lane_leader(n, l);
                EXPECT_GE(leader, lo);
                EXPECT_LT(leader, hi) << "leader outside its own lane";
                EXPECT_GT(leader, prev_leader) << "leaders must ascend";
                prev_leader = leader;
                for (int r = lo; r < hi; ++r) {
                  EXPECT_EQ(plan.lane_of(r), l);
                  EXPECT_EQ(plan.leader_of(r), leader);
                }
              }
              EXPECT_EQ(cursor, last) << "lanes must cover the node";
              // Lane 0's leader is the node leader of the legacy scheme.
              EXPECT_EQ(plan.leader_rank(n), plan.lane_leader(n, 0));
            }
          }
        }
      }
    }
  }
}

// co == 1 reproduces the historical single-leader election exactly:
// Lowest -> first member, Spread -> last member.
TEST(LaneGeometry, Co1MatchesLegacyElection) {
  net::Topology topo{3, 4, 10};  // partial last node
  for (const auto& [pol, pick_last] :
       {std::pair{coll::LeaderPolicy::Lowest, false},
        std::pair{coll::LeaderPolicy::Spread, true}}) {
    coll::Options o;
    o.cb_size = 4096;
    o.leader_policy = pol;
    const coll::Plan plan = make_plan(topo, strided_views(10, 64, 1), o);
    for (int n = 0; n < 3; ++n) {
      const auto [first, last] = plan.node_rank_range(n);
      EXPECT_EQ(plan.leader_rank(n), pick_last ? last - 1 : first);
      EXPECT_EQ(plan.lanes(n), 1);
    }
  }
}

// Superset with enough explicitly-placed aggregators: every lane leader is
// one of the node's global aggregators, so the forward hop is node-local.
TEST(LaneGeometry, SupersetLeadersSitOnAggregators) {
  const int nodes = 3, ppn = 6, co = 2;
  net::Topology topo{nodes, ppn, 0};
  coll::Options o;
  o.cb_size = 4096;
  o.hierarchical = true;
  o.leader_policy = coll::LeaderPolicy::Superset;
  o.local_aggregators = co;
  o.num_aggregators = nodes * co;  // round-robin placement: co per node
  // Enough volume that stripe-aligned domains keep all nodes*co aggregators
  // non-empty (tiny totals collapse trailing domains, trimming their
  // aggregators — and Superset elects against the survivors).
  const coll::Plan plan =
      make_plan(topo, strided_views(nodes * ppn, 4096, 1), o);
  ASSERT_EQ(plan.num_aggregators(), nodes * co);
  for (int n = 0; n < nodes; ++n) {
    ASSERT_EQ(plan.lanes(n), co);
    for (int l = 0; l < co; ++l) {
      EXPECT_TRUE(plan.is_aggregator(plan.lane_leader(n, l)))
          << "node " << n << " lane " << l;
    }
  }
}

// ---------------------------------------------------------------------------
// Byte conservation
// ---------------------------------------------------------------------------

// For disjoint per-rank views, splitting a node into lanes must neither
// duplicate nor drop a byte: over any window, the lane messages sum to the
// node's merged message, which sums to the members' raw bytes; and the
// materialized lane segments agree with the cheap byte count.
TEST(LaneBytes, LanesConserveNodePayload) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng(sim::Rng::derive_seed(seed, 0x1A9E5));
    const int nodes = 2 + static_cast<int>(rng.next_below(3));
    const int ppn = 2 + static_cast<int>(rng.next_below(4));
    const int P = nodes * ppn -
                  static_cast<int>(rng.next_below(2));  // maybe partial
    net::Topology topo{nodes, ppn, P == nodes * ppn ? 0 : P};
    std::uint64_t total = 0;
    const auto views = random_views(seed, P, &total);
    coll::Options o;
    o.cb_size = 4096 + rng.next_below(20'000);
    o.local_aggregators = 2 + static_cast<int>(rng.next_below(3));
    o.leader_policy = rng.next_below(2) == 0 ? coll::LeaderPolicy::Spread
                                             : coll::LeaderPolicy::Superset;
    const coll::Plan plan = make_plan(topo, views, o);
    const std::uint64_t windows[][2] = {
        {0, total}, {0, total / 2}, {total / 3, 2 * total / 3}};
    for (const auto& w : windows) {
      const std::uint64_t lo = w[0], hi = w[1];
      for (int n = 0; n < nodes; ++n) {
        const auto [first, last] = plan.node_rank_range(n);
        std::uint64_t member_bytes = 0;
        for (int r = first; r < last; ++r) {
          member_bytes += plan.bytes_in(r, lo, hi);
        }
        std::uint64_t lane_bytes = 0;
        for (int l = 0; l < plan.lanes(n); ++l) {
          const std::uint64_t b = plan.lane_bytes_in(n, l, lo, hi);
          std::uint64_t seg_bytes = 0;
          for (const coll::Segment& s : plan.lane_segments_in(n, l, lo, hi)) {
            seg_bytes += s.length;
          }
          EXPECT_EQ(b, seg_bytes) << "seed=" << seed << " node=" << n
                                  << " lane=" << l;
          lane_bytes += b;
        }
        EXPECT_EQ(lane_bytes, plan.node_bytes_in(n, lo, hi))
            << "seed=" << seed << " node=" << n;
        EXPECT_EQ(lane_bytes, member_bytes)
            << "seed=" << seed << " node=" << n;
      }
    }
  }
}

// ---------------------------------------------------------------------------
// co == 1 degeneracy
// ---------------------------------------------------------------------------

// Explicit --local-aggs 1 must be bit-identical to the default
// single-leader scheme on every RunResult field, for all five schedulers x
// three primitives, on both conductor backends.
TEST(Co1Degeneracy, FieldIdenticalAcrossSchedulersPrimitivesBackends) {
  for (sim::ConductorBackend b :
       {sim::ConductorBackend::Fibers, sim::ConductorBackend::Threads}) {
    BackendGuard guard(b);
    for (int m = 0; m < 5; ++m) {
      for (int t = 0; t < 3; ++t) {
        xp::RunSpec spec;
        spec.platform = xp::scaled(xp::ibex());
        spec.workload = wl::make_tile256(2, 512);
        spec.nprocs = 20;
        spec.options.cb_size = xp::kCbSize;
        spec.options.overlap = static_cast<coll::OverlapMode>(m);
        spec.options.transfer = static_cast<coll::Transfer>(t);
        spec.options.hierarchical = true;
        spec.seed = 0xC0;
        spec.verify = true;
        const std::string base = fp(xp::execute(spec));
        spec.options.local_aggregators = 1;  // explicit co = 1
        EXPECT_EQ(base, fp(xp::execute(spec)))
            << "backend=" << sim::to_string(b)
            << " overlap=" << coll::to_string(spec.options.overlap)
            << " transfer=" << coll::to_string(spec.options.transfer);
      }
    }
  }
}

// The executor worker count must not leak into results: the same co grid
// produces bit-identical measurement tables at --jobs 1 and --jobs 8.
TEST(Co1Degeneracy, ExecutorJobsDoNotPerturbResults) {
  auto grid = [] {
    std::vector<xp::SweepJob> jobs;
    for (int m = 0; m < 5; ++m) {
      for (const int co : {1, 2}) {
        xp::RunSpec spec;
        spec.platform = xp::scaled(xp::crill());
        spec.workload = wl::make_tile1m(1, 1);
        spec.nprocs = 24;
        spec.options.cb_size = xp::kCbSize;
        spec.options.overlap = static_cast<coll::OverlapMode>(m);
        spec.options.hierarchical = true;
        spec.options.local_aggregators = co;
        spec.options.leader_policy = coll::LeaderPolicy::Spread;
        spec.seed = 0xBEEF + static_cast<std::uint64_t>(m);
        jobs.push_back({std::to_string(m) + "/co" + std::to_string(co),
                        [spec] {
                          return sim::to_millis(xp::execute(spec).makespan);
                        }});
      }
    }
    return jobs;
  }();
  xp::ExecOptions serial;
  serial.jobs = 1;
  xp::ExecOptions pool;
  pool.jobs = 8;
  const auto a = xp::run_jobs(grid, serial);
  const auto b = xp::run_jobs(grid, pool);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << grid[i].key;
  }
}

// ---------------------------------------------------------------------------
// co > 1 correctness fuzz
// ---------------------------------------------------------------------------

// Randomized topology / decomposition / tuning grid: the pipelined
// multi-lane run must land exactly the single-leader run's bytes. Includes
// partially-filled last nodes and co that does not divide ppn.
TEST(PipelinedLanes, RandomizedGridMatchesSingleLeader) {
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    sim::Rng rng(sim::Rng::derive_seed(seed, 0x1A9E));
    ClusterSpec cs;
    cs.nodes = 2 + static_cast<int>(rng.next_below(3));   // 2..4
    cs.ppn = 2 + static_cast<int>(rng.next_below(5));     // 2..6
    const int cap = cs.nodes * cs.ppn;
    const int floor = (cs.nodes - 1) * cs.ppn + 1;
    cs.ranks = rng.next_below(2) == 0
                   ? 0
                   : floor + static_cast<int>(rng.next_below(
                                 static_cast<std::uint64_t>(cap - floor + 1)));
    const int P = cs.ranks > 0 ? cs.ranks : cap;

    std::uint64_t total = 0;
    const auto views = random_views(seed, P, &total);
    coll::Options o;
    o.cb_size = 4096 + rng.next_below(30'000);
    o.overlap = static_cast<coll::OverlapMode>(rng.next_below(5));
    o.transfer = static_cast<coll::Transfer>(rng.next_below(3));
    o.hierarchical = true;
    // Superset rides the automatic election here (one aggregator per
    // node), exercising its Spread-style fallback fill.
    const std::uint64_t pol = rng.next_below(3);
    o.leader_policy = pol == 0   ? coll::LeaderPolicy::Lowest
                      : pol == 1 ? coll::LeaderPolicy::Spread
                                 : coll::LeaderPolicy::Superset;
    const RunOut single = run_once(cs, views, total, o);
    // 2..ppn+1: sometimes clamped, usually co does not divide ppn.
    o.local_aggregators =
        2 + static_cast<int>(rng.next_below(static_cast<std::uint64_t>(cs.ppn)));
    const RunOut lanes = run_once(cs, views, total, o);
    EXPECT_EQ(single.crc, lanes.crc)
        << "seed=" << seed << " nodes=" << cs.nodes << " ppn=" << cs.ppn
        << " ranks=" << cs.ranks << " co=" << o.local_aggregators
        << " overlap=" << coll::to_string(o.overlap)
        << " transfer=" << coll::to_string(o.transfer)
        << " leader=" << coll::to_string(o.leader_policy);
    // Same payload crosses the network (lanes split messages, never
    // duplicate bytes).
    EXPECT_EQ(single.inter_bytes, lanes.inter_bytes) << "seed=" << seed;
  }
}

// ---------------------------------------------------------------------------
// Forward bucket and overlap statistic
// ---------------------------------------------------------------------------

// Two-sided pipelined runs report forward time split out of shuffle and a
// pipelined-overlap fraction in [0, 1]; co = 1 keeps both at zero so
// legacy results compare equal field-for-field. The accounting identity
// holds with the forward bucket included.
TEST(PipelinedStats, ForwardBucketAndOverlapFraction) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_tile256(2, 512);
  spec.nprocs = 20;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::WriteComm2;
  spec.options.hierarchical = true;
  spec.options.leader_policy = coll::LeaderPolicy::Spread;
  spec.seed = 7;
  spec.verify = true;

  const xp::RunResult single = xp::execute(spec);
  EXPECT_EQ(single.rank_sum.forward, 0);
  EXPECT_EQ(single.pipelined_overlap, 0.0);

  spec.options.local_aggregators = 2;
  const xp::RunResult lanes = xp::execute(spec);
  EXPECT_EQ(lanes.verify_error, "");
  EXPECT_GT(lanes.rank_sum.forward, 0);
  EXPECT_GE(lanes.pipelined_overlap, 0.0);
  EXPECT_LE(lanes.pipelined_overlap, 1.0);
  const auto& t = lanes.rank_sum;
  EXPECT_LE(t.meta + t.pack + t.gather + t.forward + t.shuffle + t.sync +
                t.write + t.backoff,
            t.total);

  // gather_critical is the max per-rank gather bucket — comparable at any
  // co (forwards are charged to shuffle at co = 1, forward at co > 1, so
  // they stay out of the metric). Both schemes gather here (multi-member
  // lanes), so both report a nonzero chain. No monotonicity claim: the
  // bucket also counts waits induced by member arrival skew, which a
  // scheduler can shift between buckets; where the reduction lands is the
  // fig_local_aggs grid's business.
  EXPECT_GT(single.gather_critical, 0);
  EXPECT_GT(lanes.gather_critical, 0);

  // Under comm-overlap a leader starts the next cycle's lane gather
  // between posting its forwards and waiting on them, so part of the
  // forward lifetime is genuinely hidden; write-comm-2 posts then
  // immediately waits, which is why the check above only bounds the
  // fraction. This pins the stat actually registering overlap.
  spec.options.overlap = coll::OverlapMode::Comm;
  const xp::RunResult comm = xp::execute(spec);
  EXPECT_EQ(comm.verify_error, "");
  EXPECT_GT(comm.rank_sum.forward, 0);
  EXPECT_GT(comm.pipelined_overlap, 0.0);
  EXPECT_LE(comm.pipelined_overlap, 1.0);
  spec.options.overlap = coll::OverlapMode::WriteComm2;

  // One-sided transfers complete forwards under the global epoch; no
  // per-message lifetime exists, so the stat stays zero but the forward
  // issue time is still split out of shuffle.
  spec.options.transfer = coll::Transfer::OneSidedFence;
  const xp::RunResult fence = xp::execute(spec);
  EXPECT_EQ(fence.verify_error, "");
  EXPECT_GT(fence.rank_sum.forward, 0);
  EXPECT_EQ(fence.pipelined_overlap, 0.0);
}
