#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "harness/sweep.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

TEST(Sweep, ScaledPlatformGeometry) {
  const xp::Platform c = xp::scaled(xp::crill());
  EXPECT_EQ(c.pfs.stripe_size, sim::MiB / xp::kGeometryScale);
  EXPECT_EQ(c.mpi.eager_limit,
            512 * sim::KiB * xp::kProcScale / xp::kGeometryScale);
  EXPECT_EQ(c.procs_per_node, 48 / xp::kProcScale);
  const xp::Platform i = xp::scaled(xp::ibex());
  EXPECT_EQ(i.procs_per_node, 40 / xp::kProcScale);
}

TEST(Sweep, PaperWorkloadsCoverAllKinds) {
  const auto cases = xp::paper_workloads();
  EXPECT_EQ(cases.size(), 8u);  // two sizes per benchmark
  int kinds[4] = {0, 0, 0, 0};
  for (const auto& c : cases) {
    kinds[static_cast<int>(c.kind)] += 1;
    EXPECT_GT(c.workload.bytes_per_proc(), 0u);
  }
  for (int k : kinds) EXPECT_EQ(k, 2);
}

TEST(Sweep, ProcCountsQuickIsSubset) {
  const auto full = xp::paper_proc_counts(false);
  const auto quick = xp::paper_proc_counts(true);
  EXPECT_GT(full.size(), quick.size());
  for (int q : quick) {
    EXPECT_NE(std::find(full.begin(), full.end(), q), full.end());
  }
}

TEST(Sweep, SeriesWinnerAndImprovement) {
  xp::OverlapSeries s;
  s.min_ms[coll::OverlapMode::None] = 100.0;
  s.min_ms[coll::OverlapMode::Comm] = 90.0;
  s.min_ms[coll::OverlapMode::Write] = 80.0;
  s.min_ms[coll::OverlapMode::WriteComm] = 95.0;
  s.min_ms[coll::OverlapMode::WriteComm2] = 85.0;
  EXPECT_EQ(s.winner(), coll::OverlapMode::Write);
  EXPECT_DOUBLE_EQ(s.improvement(coll::OverlapMode::Write), 0.2);
  EXPECT_DOUBLE_EQ(s.improvement(coll::OverlapMode::None), 0.0);
}

TEST(Sweep, SeriesWinnerTieGoesToBaseline) {
  // Regression: std::map iteration order used to decide exact ties, which
  // silently credited an overlap algorithm with a "win" it did not earn.
  xp::OverlapSeries s;
  s.min_ms[coll::OverlapMode::None] = 80.0;
  s.min_ms[coll::OverlapMode::Comm] = 90.0;
  s.min_ms[coll::OverlapMode::Write] = 80.0;  // exact tie with baseline
  s.min_ms[coll::OverlapMode::WriteComm] = 95.0;
  s.min_ms[coll::OverlapMode::WriteComm2] = 85.0;
  EXPECT_EQ(s.winner(), coll::OverlapMode::None);
}

TEST(Sweep, SeriesWinnerIgnoresAutoColumn) {
  // Auto is a selector over the fixed five; even when its measured time is
  // the fastest (warm cache, no probes) it must not count as a Table I win.
  xp::OverlapSeries s;
  s.min_ms[coll::OverlapMode::None] = 100.0;
  s.min_ms[coll::OverlapMode::Comm] = 90.0;
  s.min_ms[coll::OverlapMode::Write] = 80.0;
  s.min_ms[coll::OverlapMode::WriteComm] = 95.0;
  s.min_ms[coll::OverlapMode::WriteComm2] = 85.0;
  s.min_ms[coll::OverlapMode::Auto] = 70.0;
  EXPECT_EQ(s.winner(), coll::OverlapMode::Write);

  xp::OverlapSeries only_auto;
  only_auto.min_ms[coll::OverlapMode::Auto] = 70.0;
  EXPECT_THROW(only_auto.winner(), tpio::Error);
}

TEST(Sweep, PrimitiveWinnerTieGoesToTwoSided) {
  xp::PrimitiveSeries s;
  s.min_ms[coll::Transfer::TwoSided] = 50.0;
  s.min_ms[coll::Transfer::OneSidedFence] = 50.0;  // exact tie
  s.min_ms[coll::Transfer::OneSidedLock] = 60.0;
  EXPECT_EQ(s.winner(), coll::Transfer::TwoSided);
}

TEST(Sweep, PrimitiveSeriesWinner) {
  xp::PrimitiveSeries s;
  s.min_ms[coll::Transfer::TwoSided] = 50.0;
  s.min_ms[coll::Transfer::OneSidedFence] = 40.0;
  s.min_ms[coll::Transfer::OneSidedLock] = 60.0;
  EXPECT_EQ(s.winner(), coll::Transfer::OneSidedFence);
  EXPECT_DOUBLE_EQ(s.improvement(coll::Transfer::OneSidedFence), 0.2);
  EXPECT_DOUBLE_EQ(s.improvement(coll::Transfer::OneSidedLock), -0.2);
}

TEST(Sweep, MiniOverlapSweepRuns) {
  // One tiny platform variant so the sweep machinery itself is covered.
  xp::Platform plat = xp::ibex();
  const auto series = xp::run_overlap_sweep(plat, /*reps=*/1, 7, /*quick=*/true);
  EXPECT_EQ(series.size(), 8u * 2u);  // 8 workloads x 2 quick proc counts
  for (const auto& s : series) {
    EXPECT_EQ(s.min_ms.size(), 5u);
    for (const auto& [mode, ms] : s.min_ms) {
      EXPECT_GT(ms, 0.0) << coll::to_string(mode);
    }
    // The winner is one of the measured modes and has the smallest time.
    const double best = s.min_ms.at(s.winner());
    for (const auto& [mode, ms] : s.min_ms) EXPECT_GE(ms, best);
  }
}

TEST(Sweep, MiniPrimitiveSweepRuns) {
  xp::Platform plat = xp::crill();
  const auto series =
      xp::run_primitive_sweep(plat, /*reps=*/1, 7, /*quick=*/true);
  EXPECT_EQ(series.size(), 6u * 2u);  // flash excluded, 2 proc counts
  for (const auto& s : series) {
    EXPECT_EQ(s.min_ms.size(), 3u);
    EXPECT_NE(s.kind, wl::Kind::Flash);
  }
}

TEST(Sweep, SweepDeterministicForSeed) {
  xp::Platform plat = xp::ibex();
  const auto a = xp::run_overlap_sweep(plat, 1, 11, true);
  const auto b = xp::run_overlap_sweep(plat, 1, 11, true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].min_ms, b[i].min_ms);
  }
}

TEST(Sweep, ParallelExecutionBitIdenticalToSerial) {
  // Every grid point derives its own seed, so the worker count must not
  // change a single bit of the result tables (EXPECT_EQ on the double maps
  // is exact equality, not a tolerance).
  xp::Platform plat = xp::ibex();
  xp::ExecOptions serial;
  serial.jobs = 1;
  xp::ExecOptions parallel;
  parallel.jobs = 4;
  const auto a = xp::run_primitive_sweep(plat, 1, 42, true, serial);
  const auto b = xp::run_primitive_sweep(plat, 1, 42, true, parallel);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].min_ms, b[i].min_ms);
    EXPECT_EQ(a[i].platform, b[i].platform);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].procs, b[i].procs);
  }
}

TEST(Sweep, ResumeFromCheckpointReproducesTable) {
  const std::string path =
      std::string(::testing::TempDir()) + "sweep_resume_ckpt.json";
  std::remove(path.c_str());
  xp::ExecOptions e;
  e.jobs = 2;
  e.checkpoint = path;
  const auto a = xp::run_primitive_sweep(xp::crill(), 1, 99, true, e);
  // The rerun restores every job from the checkpoint file (the default
  // manifest encodes platform/seed/reps/quick, so the grids match) and
  // must reproduce the identical table.
  const auto b = xp::run_primitive_sweep(xp::crill(), 1, 99, true, e);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].min_ms, b[i].min_ms);
  }
  std::remove(path.c_str());
}
