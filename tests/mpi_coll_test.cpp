#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"

namespace smpi = tpio::smpi;
namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

struct Rig {
  net::Topology topo;
  net::Fabric fabric;
  sim::Conductor conductor;
  smpi::Machine machine;

  explicit Rig(int nodes, int ppn = 1, smpi::MpiParams mp = {})
      : topo{nodes, ppn},
        fabric(topo, fabric_params()),
        conductor(topo.nprocs()),
        machine(fabric, mp) {}

  static net::FabricParams fabric_params() {
    net::FabricParams p;
    p.inter_bw = 1e9;
    p.intra_bw = 4e9;
    p.inter_latency = 100;
    p.intra_latency = 10;
    return p;
  }

  void run(const std::function<void(smpi::Mpi&)>& prog) {
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      prog(mpi);
    });
  }
};

}  // namespace

TEST(MpiColl, BarrierHoldsEveryoneToMax) {
  Rig rig(8);
  std::vector<sim::Time> after(8);
  rig.run([&](smpi::Mpi& mpi) {
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 1000);
    mpi.barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  for (int r = 1; r < 8; ++r) EXPECT_EQ(after[static_cast<std::size_t>(r)], after[0]);
  EXPECT_GE(after[0], 7000);  // at least the slowest arrival
  EXPECT_GT(after[0], 7000);  // plus a log-P cost
}

TEST(MpiColl, BarrierCostGrowsWithRanks) {
  auto cost = [](int n) {
    Rig rig(n);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      mpi.barrier();
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_LT(cost(2), cost(32));
}

TEST(MpiColl, NodeRanksListCoLocatedRanks) {
  Rig rig(3, 2);
  rig.run([&](smpi::Mpi& mpi) {
    const auto ranks = mpi.node_ranks();
    const int first = (mpi.rank() / 2) * 2;
    ASSERT_EQ(ranks.size(), 2u);
    EXPECT_EQ(ranks[0], first);
    EXPECT_EQ(ranks[1], first + 1);
  });
}

TEST(MpiColl, NodeBarrierSynchronizesWithinNodeOnly) {
  Rig rig(2, 3);
  std::vector<sim::Time> after(6);
  rig.run([&](smpi::Mpi& mpi) {
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 1000);
    mpi.node_barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  // Members of a node leave together, held to the slowest member.
  EXPECT_EQ(after[0], after[1]);
  EXPECT_EQ(after[1], after[2]);
  EXPECT_EQ(after[3], after[4]);
  EXPECT_EQ(after[4], after[5]);
  EXPECT_GE(after[0], 2000);
  EXPECT_GE(after[3], 5000);
  // Nodes do not wait for each other.
  EXPECT_LT(after[0], after[3]);
}

TEST(MpiColl, NodeBarrierSinglePartyIsFree) {
  // ppn=1: a one-party node barrier must neither block nor cost time —
  // the hierarchical engine relies on this to degenerate to the direct
  // path exactly.
  Rig rig(4, 1);
  rig.run([&](smpi::Mpi& mpi) {
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 500);
    const sim::Time before = mpi.ctx().now();
    mpi.node_barrier();
    EXPECT_EQ(mpi.ctx().now(), before);
  });
}

TEST(MpiColl, LeaderBarrierSpansOneRankPerNode) {
  Rig rig(3, 2);
  std::vector<sim::Time> after(6, -1);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() % 2 != 0) return;  // only the per-node "leaders" join
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 1000);
    mpi.leader_barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  EXPECT_EQ(after[0], after[2]);
  EXPECT_EQ(after[2], after[4]);
  EXPECT_GT(after[0], 4000);  // slowest leader + log-N hop cost
}

TEST(MpiColl, LeaderBarrierEqualsBarrierAtPpnOne) {
  // ppn=1: every rank is a leader, so the leader barrier is the global
  // barrier — identical parties, identical cost model.
  auto finish = [](bool leader) {
    Rig rig(4, 1);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 700);
      if (leader) mpi.leader_barrier();
      else mpi.barrier();
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_EQ(finish(true), finish(false));
}

TEST(MpiColl, AllgathervRoundTripsData) {
  Rig rig(6);
  rig.run([&](smpi::Mpi& mpi) {
    // Rank r contributes r+1 bytes, each = r.
    std::vector<std::byte> mine(static_cast<std::size_t>(mpi.rank() + 1),
                                static_cast<std::byte>(mpi.rank()));
    auto all = mpi.allgatherv(mine);
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      for (std::byte b : all[static_cast<std::size_t>(r)]) {
        EXPECT_EQ(b, static_cast<std::byte>(r));
      }
    }
  });
}

TEST(MpiColl, AllgathervEmptyContributionsAllowed) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> mine;
    if (mpi.rank() == 2) mine.assign(8, std::byte{42});
    auto all = mpi.allgatherv(mine);
    EXPECT_TRUE(all[0].empty());
    EXPECT_EQ(all[2].size(), 8u);
  });
}

TEST(MpiColl, RepeatedAllgathervGenerationsIsolated) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    for (int round = 0; round < 10; ++round) {
      std::vector<std::byte> mine(4, static_cast<std::byte>(mpi.rank() * 16 + round));
      auto all = mpi.allgatherv(mine);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                  static_cast<std::byte>(r * 16 + round))
            << "round " << round;
      }
    }
  });
}

TEST(MpiColl, AllreduceOps) {
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    const auto v = static_cast<std::uint64_t>(mpi.rank() + 1);  // 1..5
    EXPECT_EQ(mpi.allreduce_max(v), 5u);
    EXPECT_EQ(mpi.allreduce_min(v), 1u);
    EXPECT_EQ(mpi.allreduce_sum(v), 15u);
  });
}

TEST(MpiColl, BcastFromNonzeroRoot) {
  Rig rig(7);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> data(32);
    if (mpi.rank() == 3) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 3);
      }
    }
    mpi.bcast(data, 3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(data[i], static_cast<std::byte>(i * 3));
    }
  });
}

TEST(MpiColl, CollectiveAfterP2PTrafficStillCorrect) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> buf(16);
    if (mpi.rank() == 0) {
      mpi.send(1, 0, std::vector<std::byte>(16, std::byte{1}));
    } else if (mpi.rank() == 1) {
      mpi.recv(0, 0, buf);
    }
    const auto sum = mpi.allreduce_sum(1);
    EXPECT_EQ(sum, 4u);
  });
}

TEST(MpiColl, DeterministicCollectiveTimes) {
  auto once = [] {
    Rig rig(8);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      mpi.ctx().advance(static_cast<sim::Duration>((mpi.rank() * 97) % 31));
      for (int i = 0; i < 5; ++i) {
        std::vector<std::byte> mine(static_cast<std::size_t>(mpi.rank()) * 7 + 1);
        (void)mpi.allgatherv(mine);
      }
      mpi.barrier();
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_EQ(once(), once());
}

TEST(MpiColl, GathervOnlyRootReceives) {
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> mine(static_cast<std::size_t>(mpi.rank() + 1),
                                static_cast<std::byte>(0x40 + mpi.rank()));
    auto all = mpi.gatherv(mine, 2);
    if (mpi.rank() == 2) {
      for (int r = 0; r < 5; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                  static_cast<std::byte>(0x40 + r));
      }
    } else {
      for (const auto& b : all) EXPECT_TRUE(b.empty());
    }
  });
}

TEST(MpiColl, ScattervDistributesPerRankBlobs) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::vector<std::byte>> blobs;
    if (mpi.rank() == 1) {
      for (int r = 0; r < 4; ++r) {
        blobs.emplace_back(static_cast<std::size_t>(3 * r + 1),
                           static_cast<std::byte>(r * 11));
      }
    }
    const auto mine = mpi.scatterv(blobs, 1);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(3 * mpi.rank() + 1));
    for (std::byte b : mine) EXPECT_EQ(b, static_cast<std::byte>(mpi.rank() * 11));
  });
}

TEST(MpiColl, ScattervEmptyBlobsAllowed) {
  Rig rig(3);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::vector<std::byte>> blobs;
    if (mpi.rank() == 0) {
      blobs.resize(3);
      blobs[1].assign(5, std::byte{9});
    }
    const auto mine = mpi.scatterv(blobs, 0);
    if (mpi.rank() == 1) {
      EXPECT_EQ(mine.size(), 5u);
    } else {
      EXPECT_TRUE(mine.empty());
    }
  });
}
