#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <span>
#include <utility>
#include <vector>

#include "mpi/internal.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"

namespace smpi = tpio::smpi;
namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

struct Rig {
  net::Topology topo;
  net::Fabric fabric;
  sim::Conductor conductor;
  smpi::Machine machine;

  explicit Rig(int nodes, int ppn = 1, smpi::MpiParams mp = {})
      : topo{nodes, ppn},
        fabric(topo, fabric_params()),
        conductor(topo.nprocs()),
        machine(fabric, mp) {}

  static net::FabricParams fabric_params() {
    net::FabricParams p;
    p.inter_bw = 1e9;
    p.intra_bw = 4e9;
    p.inter_latency = 100;
    p.intra_latency = 10;
    return p;
  }

  void run(const std::function<void(smpi::Mpi&)>& prog) {
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      prog(mpi);
    });
  }
};

}  // namespace

TEST(MpiColl, BarrierHoldsEveryoneToMax) {
  Rig rig(8);
  std::vector<sim::Time> after(8);
  rig.run([&](smpi::Mpi& mpi) {
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 1000);
    mpi.barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  for (int r = 1; r < 8; ++r) EXPECT_EQ(after[static_cast<std::size_t>(r)], after[0]);
  EXPECT_GE(after[0], 7000);  // at least the slowest arrival
  EXPECT_GT(after[0], 7000);  // plus a log-P cost
}

TEST(MpiColl, BarrierCostGrowsWithRanks) {
  auto cost = [](int n) {
    Rig rig(n);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      mpi.barrier();
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_LT(cost(2), cost(32));
}

TEST(MpiColl, NodeRanksListCoLocatedRanks) {
  Rig rig(3, 2);
  rig.run([&](smpi::Mpi& mpi) {
    const auto ranks = mpi.node_ranks();
    const int first = (mpi.rank() / 2) * 2;
    ASSERT_EQ(ranks.size(), 2u);
    EXPECT_EQ(ranks[0], first);
    EXPECT_EQ(ranks[1], first + 1);
  });
}

TEST(MpiColl, NodeBarrierSynchronizesWithinNodeOnly) {
  Rig rig(2, 3);
  std::vector<sim::Time> after(6);
  rig.run([&](smpi::Mpi& mpi) {
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 1000);
    mpi.node_barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  // Members of a node leave together, held to the slowest member.
  EXPECT_EQ(after[0], after[1]);
  EXPECT_EQ(after[1], after[2]);
  EXPECT_EQ(after[3], after[4]);
  EXPECT_EQ(after[4], after[5]);
  EXPECT_GE(after[0], 2000);
  EXPECT_GE(after[3], 5000);
  // Nodes do not wait for each other.
  EXPECT_LT(after[0], after[3]);
}

TEST(MpiColl, NodeBarrierSinglePartyIsFree) {
  // ppn=1: a one-party node barrier must neither block nor cost time —
  // the hierarchical engine relies on this to degenerate to the direct
  // path exactly.
  Rig rig(4, 1);
  rig.run([&](smpi::Mpi& mpi) {
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 500);
    const sim::Time before = mpi.ctx().now();
    mpi.node_barrier();
    EXPECT_EQ(mpi.ctx().now(), before);
  });
}

TEST(MpiColl, LeaderBarrierSpansOneRankPerNode) {
  Rig rig(3, 2);
  std::vector<sim::Time> after(6, -1);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() % 2 != 0) return;  // only the per-node "leaders" join
    mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 1000);
    mpi.leader_barrier();
    after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  EXPECT_EQ(after[0], after[2]);
  EXPECT_EQ(after[2], after[4]);
  EXPECT_GT(after[0], 4000);  // slowest leader + log-N hop cost
}

TEST(MpiColl, LeaderBarrierEqualsBarrierAtPpnOne) {
  // ppn=1: every rank is a leader, so the leader barrier is the global
  // barrier — identical parties, identical cost model.
  auto finish = [](bool leader) {
    Rig rig(4, 1);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      mpi.ctx().advance(static_cast<sim::Duration>(mpi.rank()) * 700);
      if (leader) mpi.leader_barrier();
      else mpi.barrier();
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_EQ(finish(true), finish(false));
}

TEST(MpiColl, AllgathervRoundTripsData) {
  Rig rig(6);
  rig.run([&](smpi::Mpi& mpi) {
    // Rank r contributes r+1 bytes, each = r.
    std::vector<std::byte> mine(static_cast<std::size_t>(mpi.rank() + 1),
                                static_cast<std::byte>(mpi.rank()));
    auto all = mpi.allgatherv(mine);
    ASSERT_EQ(all.size(), 6u);
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r)].size(),
                static_cast<std::size_t>(r + 1));
      for (std::byte b : all[static_cast<std::size_t>(r)]) {
        EXPECT_EQ(b, static_cast<std::byte>(r));
      }
    }
  });
}

TEST(MpiColl, AllgathervEmptyContributionsAllowed) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> mine;
    if (mpi.rank() == 2) mine.assign(8, std::byte{42});
    auto all = mpi.allgatherv(mine);
    EXPECT_TRUE(all[0].empty());
    EXPECT_EQ(all[2].size(), 8u);
  });
}

TEST(MpiColl, RepeatedAllgathervGenerationsIsolated) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    for (int round = 0; round < 10; ++round) {
      std::vector<std::byte> mine(4, static_cast<std::byte>(mpi.rank() * 16 + round));
      auto all = mpi.allgatherv(mine);
      for (int r = 0; r < 4; ++r) {
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                  static_cast<std::byte>(r * 16 + round))
            << "round " << round;
      }
    }
  });
}

TEST(MpiColl, AllreduceOps) {
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    const auto v = static_cast<std::uint64_t>(mpi.rank() + 1);  // 1..5
    EXPECT_EQ(mpi.allreduce_max(v), 5u);
    EXPECT_EQ(mpi.allreduce_min(v), 1u);
    EXPECT_EQ(mpi.allreduce_sum(v), 15u);
  });
}

TEST(MpiColl, BcastFromNonzeroRoot) {
  Rig rig(7);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> data(32);
    if (mpi.rank() == 3) {
      for (std::size_t i = 0; i < data.size(); ++i) {
        data[i] = static_cast<std::byte>(i * 3);
      }
    }
    mpi.bcast(data, 3);
    for (std::size_t i = 0; i < data.size(); ++i) {
      EXPECT_EQ(data[i], static_cast<std::byte>(i * 3));
    }
  });
}

TEST(MpiColl, CollectiveAfterP2PTrafficStillCorrect) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> buf(16);
    if (mpi.rank() == 0) {
      mpi.send(1, 0, std::vector<std::byte>(16, std::byte{1}));
    } else if (mpi.rank() == 1) {
      mpi.recv(0, 0, buf);
    }
    const auto sum = mpi.allreduce_sum(1);
    EXPECT_EQ(sum, 4u);
  });
}

TEST(MpiColl, DeterministicCollectiveTimes) {
  auto once = [] {
    Rig rig(8);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      mpi.ctx().advance(static_cast<sim::Duration>((mpi.rank() * 97) % 31));
      for (int i = 0; i < 5; ++i) {
        std::vector<std::byte> mine(static_cast<std::size_t>(mpi.rank()) * 7 + 1);
        (void)mpi.allgatherv(mine);
      }
      mpi.barrier();
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_EQ(once(), once());
}

TEST(MpiColl, GathervOnlyRootReceives) {
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> mine(static_cast<std::size_t>(mpi.rank() + 1),
                                static_cast<std::byte>(0x40 + mpi.rank()));
    auto all = mpi.gatherv(mine, 2);
    if (mpi.rank() == 2) {
      for (int r = 0; r < 5; ++r) {
        ASSERT_EQ(all[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r + 1));
        EXPECT_EQ(all[static_cast<std::size_t>(r)][0],
                  static_cast<std::byte>(0x40 + r));
      }
    } else {
      for (const auto& b : all) EXPECT_TRUE(b.empty());
    }
  });
}

TEST(MpiColl, ScattervDistributesPerRankBlobs) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::vector<std::byte>> blobs;
    if (mpi.rank() == 1) {
      for (int r = 0; r < 4; ++r) {
        blobs.emplace_back(static_cast<std::size_t>(3 * r + 1),
                           static_cast<std::byte>(r * 11));
      }
    }
    const auto mine = mpi.scatterv(blobs, 1);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(3 * mpi.rank() + 1));
    for (std::byte b : mine) EXPECT_EQ(b, static_cast<std::byte>(mpi.rank() * 11));
  });
}

TEST(MpiColl, ScattervEmptyBlobsAllowed) {
  Rig rig(3);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::vector<std::byte>> blobs;
    if (mpi.rank() == 0) {
      blobs.resize(3);
      blobs[1].assign(5, std::byte{9});
    }
    const auto mine = mpi.scatterv(blobs, 0);
    if (mpi.rank() == 1) {
      EXPECT_EQ(mine.size(), 5u);
    } else {
      EXPECT_TRUE(mine.empty());
    }
  });
}

// ---------------------------------------------------------------------------
// Scalable metadata-exchange collectives: reduce_scatter, allgather,
// sparse_allgatherv, and the Jocksch-style cost-model fixes.
// ---------------------------------------------------------------------------

TEST(MpiColl, ReduceScatterReducesOneColumnPerRank) {
  // Rank r contributes elems[i] = (r+1)*(i+1); rank i must receive the
  // op-reduction of column i across all ranks.
  auto run_op = [](smpi::Mpi::ReduceOp op) {
    std::vector<std::uint64_t> got(4);
    Rig rig(4);
    rig.run([&](smpi::Mpi& mpi) {
      const auto r = static_cast<std::uint64_t>(mpi.rank());
      std::vector<std::uint64_t> elems(4);
      for (std::uint64_t i = 0; i < 4; ++i) elems[i] = (r + 1) * (i + 1);
      got[r] = mpi.reduce_scatter(elems, op);
    });
    return got;
  };
  const auto sums = run_op(smpi::Mpi::ReduceOp::Sum);
  const auto maxs = run_op(smpi::Mpi::ReduceOp::Max);
  const auto mins = run_op(smpi::Mpi::ReduceOp::Min);
  for (std::uint64_t i = 0; i < 4; ++i) {
    EXPECT_EQ(sums[i], (i + 1) * (1 + 2 + 3 + 4));
    EXPECT_EQ(maxs[i], (i + 1) * 4);
    EXPECT_EQ(mins[i], (i + 1) * 1);
  }
}

TEST(MpiColl, AllgatherFixedSizeRoundTrips) {
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    const std::uint32_t v = 0x1000u + static_cast<std::uint32_t>(mpi.rank());
    const auto out = mpi.allgather(std::as_bytes(std::span(&v, 1)));
    ASSERT_EQ(out.size(), 5u);
    for (std::uint32_t r = 0; r < 5; ++r) {
      ASSERT_EQ(out[r].size(), sizeof(std::uint32_t));
      std::uint32_t got = 0;
      std::memcpy(&got, out[r].data(), sizeof(got));
      EXPECT_EQ(got, 0x1000u + r);
    }
  });
}

TEST(MpiColl, ScattervMalformedSizeTableRejectedOnEveryRank) {
  // A size table claiming more bytes than the payload holds must be
  // rejected before any copy — by every rank, not only the ranks whose
  // slice happens to land out of bounds.
  const int nprocs = 3;
  std::vector<std::byte> packed(nprocs * sizeof(std::uint64_t) + 4);
  const std::uint64_t sizes[3] = {2, 2, 64};  // 64 overruns the 4-byte tail
  std::memcpy(packed.data(), sizes, sizeof(sizes));
  for (int r = 0; r < nprocs; ++r) {
    EXPECT_THROW(smpi::detail::scatterv_unpack(packed, nprocs, r),
                 tpio::Error);
  }
  // A payload shorter than its own size table is equally malformed.
  const std::vector<std::byte> stub(sizeof(std::uint64_t));
  EXPECT_THROW(smpi::detail::scatterv_unpack(stub, nprocs, 0), tpio::Error);
}

TEST(MpiColl, GathervCheaperThanAllgathervSameBlobs) {
  // gatherv charges the root-bound volume (total minus the root's own
  // blob); allgatherv charges the dissemination volume (total minus the
  // smallest blob). With the largest blob at the root, gatherv must
  // finish strictly earlier — the old model priced both identically.
  auto finish = [](bool gather) {
    Rig rig(6);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      const std::vector<std::byte> mine(
          1000u * (static_cast<std::size_t>(mpi.rank()) + 1));
      if (gather) {
        mpi.gatherv(mine, 5);
      } else {
        mpi.allgatherv(mine);
      }
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_LT(finish(true), finish(false));
}

TEST(MpiColl, AllgathervSingleRankIsFree) {
  // P = 1: no remote bytes, no hops, no sync — time must not move.
  Rig rig(1);
  rig.run([&](smpi::Mpi& mpi) {
    const sim::Time before = mpi.ctx().now();
    const std::vector<std::byte> mine(4096, std::byte{7});
    const auto out = mpi.allgatherv(mine);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].size(), 4096u);
    EXPECT_EQ(mpi.ctx().now(), before);
  });
}

TEST(MpiColl, AllgathervAllEmptyPaysNoVolumeTerm) {
  // All-empty exchange costs exactly the latency + sync floor: the
  // volume term must vanish with the payload.
  Rig rig(4);
  sim::Time t = 0;
  rig.run([&](smpi::Mpi& mpi) {
    const auto out = mpi.allgatherv({});
    ASSERT_EQ(out.size(), 4u);
    for (const auto& b : out) EXPECT_TRUE(b.empty());
    if (mpi.rank() == 0) t = mpi.ctx().now();
  });
  const sim::Duration floor_cost =
      static_cast<sim::Duration>(smpi::detail::ceil_log2(4)) * 100 +
      rig.machine.sync_collective_cost(4);
  EXPECT_EQ(t, floor_cost);
}

TEST(MpiColl, AllgathervChargesTotalMinusSmallestBlob) {
  // Two grids with the same total volume: the skewed one disseminates
  // more remote bytes (total - min). The old total - total/P formula
  // priced both at 3000 bytes; the fix must separate them.
  auto finish = [](std::vector<std::size_t> sizes) {
    Rig rig(4);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      const std::vector<std::byte> mine(
          sizes[static_cast<std::size_t>(mpi.rank())]);
      mpi.allgatherv(mine);
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_GT(finish({0, 0, 0, 4000}), finish({1000, 1000, 1000, 1000}));
}

TEST(MpiColl, SparseAllgathervDeliversWantedInterval) {
  Rig rig(6);
  rig.run([&](smpi::Mpi& mpi) {
    const int me = mpi.rank();
    const std::vector<std::byte> mine(
        static_cast<std::size_t>(me) + 1,
        static_cast<std::byte>(me));
    const int want_b = (me == 0) ? 2 : 0;
    const int want_e = (me == 0) ? 5 : 0;
    const auto got = mpi.sparse_allgatherv(mine, want_b, want_e);
    if (me == 0) {
      // Wanted [2,5) plus the rank's own blob, ascending by source.
      ASSERT_EQ(got.size(), 4u);
      const int expect_src[] = {0, 2, 3, 4};
      for (std::size_t i = 0; i < 4; ++i) EXPECT_EQ(got[i].first, expect_src[i]);
    } else {
      // No wants: only the rank's own blob comes back.
      ASSERT_EQ(got.size(), 1u);
      EXPECT_EQ(got[0].first, me);
    }
    for (const auto& [src, blob] : got) {
      ASSERT_EQ(blob.size(), static_cast<std::size_t>(src) + 1);
      for (std::byte b : blob) EXPECT_EQ(b, static_cast<std::byte>(src));
    }
  });
}

TEST(MpiColl, SparseAllgathervDenseFlagKeepsVirtualTime) {
  // dense=true is a host-materialization switch only: rank 1 gets all six
  // blobs instead of one, but the completion time is bit-identical because
  // the cost derives from the declared want topology.
  auto run_one = [](bool dense) {
    Rig rig(6);
    sim::Time t = 0;
    std::size_t rank1_blobs = 0;
    rig.run([&](smpi::Mpi& mpi) {
      const int me = mpi.rank();
      const std::vector<std::byte> mine(100u * (static_cast<std::size_t>(me) + 1));
      const int want_e = (me % 2 == 0) ? 6 : 0;
      const auto got = mpi.sparse_allgatherv(mine, 0, want_e, dense);
      if (me == 0) t = mpi.ctx().now();
      if (me == 1) rank1_blobs = got.size();
    });
    return std::pair{t, rank1_blobs};
  };
  const auto [t_sparse, n_sparse] = run_one(false);
  const auto [t_dense, n_dense] = run_one(true);
  EXPECT_EQ(t_sparse, t_dense);
  EXPECT_EQ(n_sparse, 1u);
  EXPECT_EQ(n_dense, 6u);
}

TEST(MpiColl, SparseAllgathervFullWantMatchesAllgathervData) {
  constexpr int P = 5;
  std::vector<std::vector<std::byte>> via_dense(P);
  std::vector<std::vector<std::byte>> via_sparse(P);
  auto payload = [](int r) {
    return std::vector<std::byte>(static_cast<std::size_t>(2 * r + 1),
                                  static_cast<std::byte>(r * 13));
  };
  {
    Rig rig(P);
    rig.run([&](smpi::Mpi& mpi) {
      const auto out = mpi.allgatherv(payload(mpi.rank()));
      if (mpi.rank() == 0) via_dense = out;
    });
  }
  {
    Rig rig(P);
    rig.run([&](smpi::Mpi& mpi) {
      const auto got = mpi.sparse_allgatherv(payload(mpi.rank()), 0, P);
      if (mpi.rank() != 0) return;
      ASSERT_EQ(got.size(), static_cast<std::size_t>(P));
      for (const auto& [src, blob] : got) {
        via_sparse[static_cast<std::size_t>(src)] = blob;
      }
    });
  }
  EXPECT_EQ(via_sparse, via_dense);
}

TEST(MpiColl, BcastRootAtLastRank) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::byte> buf(8);
    if (mpi.rank() == 3) {
      for (std::size_t i = 0; i < 8; ++i) {
        buf[i] = static_cast<std::byte>(0xA0 + i);
      }
    }
    mpi.bcast(buf, 3);
    for (std::size_t i = 0; i < 8; ++i) {
      EXPECT_EQ(buf[i], static_cast<std::byte>(0xA0 + i));
    }
  });
}

TEST(MpiColl, GathervRootAtLastRank) {
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    const std::vector<std::byte> mine(
        static_cast<std::size_t>(mpi.rank()),
        static_cast<std::byte>(mpi.rank()));
    const auto out = mpi.gatherv(mine, 4);
    ASSERT_EQ(out.size(), 5u);
    if (mpi.rank() == 4) {
      for (int r = 0; r < 5; ++r) {
        ASSERT_EQ(out[static_cast<std::size_t>(r)].size(),
                  static_cast<std::size_t>(r));
        for (std::byte b : out[static_cast<std::size_t>(r)]) {
          EXPECT_EQ(b, static_cast<std::byte>(r));
        }
      }
    } else {
      for (const auto& b : out) EXPECT_TRUE(b.empty());
    }
  });
}

TEST(MpiColl, ScattervRootAtLastRank) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    std::vector<std::vector<std::byte>> blobs;
    if (mpi.rank() == 3) {
      for (int r = 0; r < 4; ++r) {
        blobs.emplace_back(static_cast<std::size_t>(r + 1),
                           static_cast<std::byte>(r * 5));
      }
    }
    const auto mine = mpi.scatterv(blobs, 3);
    ASSERT_EQ(mine.size(), static_cast<std::size_t>(mpi.rank()) + 1);
    for (std::byte b : mine) EXPECT_EQ(b, static_cast<std::byte>(mpi.rank() * 5));
  });
}

TEST(MpiColl, MetadataCollectivesOnSingleNode) {
  // Single node, multiple ranks: the full two-stage vocabulary (summary
  // allgather, sparse delivery, reduce_scatter) must round-trip with no
  // inter-node fabric in play.
  Rig rig(1, 4);
  rig.run([&](smpi::Mpi& mpi) {
    const std::uint64_t v = static_cast<std::uint64_t>(mpi.rank()) + 1;
    const auto summaries = mpi.allgather(std::as_bytes(std::span(&v, 1)));
    ASSERT_EQ(summaries.size(), 4u);
    const auto got = mpi.sparse_allgatherv(
        std::as_bytes(std::span(&v, 1)), 0, mpi.rank() == 0 ? 4 : 0);
    EXPECT_EQ(got.size(), mpi.rank() == 0 ? 4u : 1u);
    std::vector<std::uint64_t> elems(4, v);
    EXPECT_EQ(mpi.reduce_scatter(elems, smpi::Mpi::ReduceOp::Sum),
              1u + 2u + 3u + 4u);
    EXPECT_EQ(mpi.allreduce_max(v), 4u);
  });
}

TEST(MpiColl, DeterministicSummaryExchangeTimes) {
  // The exact collective sequence of the two-stage metadata exchange,
  // repeated: completion times must be bit-identical across runs.
  auto once = [] {
    Rig rig(6, 2);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      const std::uint64_t v = static_cast<std::uint64_t>(mpi.rank()) * 7 + 1;
      mpi.allgather(std::as_bytes(std::span(&v, 1)));
      const std::vector<std::byte> blob(
          64u * (static_cast<std::size_t>(mpi.rank()) + 1));
      mpi.sparse_allgatherv(blob, 0, mpi.rank() < 3 ? 12 : 0);
      mpi.allreduce_max(v);
      if (mpi.rank() == 11) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_EQ(once(), once());
}
