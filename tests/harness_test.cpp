#include <gtest/gtest.h>

#include "harness/runner.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

xp::RunSpec small_spec(xp::Platform platform) {
  xp::RunSpec s;
  s.platform = std::move(platform);
  // Keep the simulated cluster small and fast: 4 ranks/node.
  s.platform.procs_per_node = 4;
  s.workload = wl::make_ior(512 * sim::KiB);
  s.nprocs = 16;
  s.options.cb_size = 512 * sim::KiB;
  s.options.overlap = coll::OverlapMode::None;
  s.seed = 7;
  return s;
}

}  // namespace

TEST(Runner, ExecutesAndVerifies) {
  auto spec = small_spec(xp::crill());
  spec.verify = true;
  const xp::RunResult r = xp::execute(spec);
  EXPECT_TRUE(r.verify_error.empty()) << r.verify_error;
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(r.bytes, 16u * 512 * sim::KiB);
  EXPECT_GE(r.aggregators, 1);
  EXPECT_GT(r.cycles, 0);
  EXPECT_GT(r.bandwidth(), 0.0);
}

TEST(Runner, SameSeedSameResult) {
  const auto spec = small_spec(xp::crill());
  EXPECT_EQ(xp::execute(spec).makespan, xp::execute(spec).makespan);
}

TEST(Runner, DifferentSeedsDiffer) {
  auto spec = small_spec(xp::ibex());
  const auto a = xp::execute(spec).makespan;
  spec.seed = 8;
  const auto b = xp::execute(spec).makespan;
  EXPECT_NE(a, b);  // ibex has double-digit noise
}

TEST(Runner, CrillSlowerStorageThanIbex) {
  // Same job, both platforms: crill's HDD-backed BeeGFS must be the
  // bottleneck (paper: Ibex storage "significantly higher write bandwidth").
  const auto tc = xp::execute(small_spec(xp::crill())).makespan;
  const auto ti = xp::execute(small_spec(xp::ibex())).makespan;
  EXPECT_GT(tc, ti);
}

TEST(Runner, PartialLastNodeWorks) {
  auto spec = small_spec(xp::crill());
  spec.nprocs = 13;  // 4 ranks/node -> 3 full nodes + 1 rank
  spec.workload = wl::make_ior(128 * sim::KiB);
  spec.verify = true;
  const auto r = xp::execute(spec);
  EXPECT_TRUE(r.verify_error.empty()) << r.verify_error;
  EXPECT_EQ(r.bytes, 13u * 128 * sim::KiB);
}

TEST(Runner, SeriesMinAcrossSeeds) {
  auto spec = small_spec(xp::ibex());
  const xp::Series s = xp::execute_series(spec, 4, 99);
  EXPECT_EQ(s.runs.size(), 4u);
  sim::Duration mn = s.runs[0].makespan;
  for (const auto& r : s.runs) mn = std::min(mn, r.makespan);
  EXPECT_EQ(s.min_makespan(), mn);
}

TEST(Runner, AggregatorTimingsSubsetOfRankSum) {
  auto spec = small_spec(xp::crill());
  const auto r = xp::execute(spec);
  EXPECT_GT(r.agg_sum.write, 0);
  EXPECT_LE(r.agg_sum.write, r.rank_sum.write);
  EXPECT_LE(r.agg_sum.shuffle, r.rank_sum.shuffle);
}

TEST(Runner, AllWorkloadKindsRunOnBothPlatforms) {
  for (const auto& platform : {xp::crill(), xp::ibex()}) {
    for (const wl::Spec& w :
         {wl::make_ior(256 * sim::KiB), wl::make_tile256(16, 8),
          wl::make_tile1m(1, 1), wl::make_flash(6, 2, 8192)}) {
      auto spec = small_spec(platform);
      spec.workload = w;
      spec.nprocs = 16;
      spec.verify = true;
      const auto r = xp::execute(spec);
      EXPECT_TRUE(r.verify_error.empty())
          << platform.name << " / " << w.describe() << ": " << r.verify_error;
    }
  }
}

TEST(Runner, OverlapModesAllVerifyOnIbex) {
  for (coll::OverlapMode m :
       {coll::OverlapMode::None, coll::OverlapMode::Comm,
        coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
        coll::OverlapMode::WriteComm2}) {
    auto spec = small_spec(xp::ibex());
    spec.options.overlap = m;
    spec.verify = true;
    const auto r = xp::execute(spec);
    EXPECT_TRUE(r.verify_error.empty()) << coll::to_string(m);
  }
}

TEST(Platforms, CalibrationSanity) {
  const auto c = xp::crill();
  const auto i = xp::ibex();
  EXPECT_LT(c.fabric.inter_bw, i.fabric.inter_bw);   // 2.6 vs 3.4 GB/s
  EXPECT_LT(c.pfs.target_bw, i.pfs.target_bw);       // HDD vs big system
  EXPECT_LT(c.fabric.noise_sigma, i.fabric.noise_sigma);  // dedicated/shared
  EXPECT_TRUE(c.pfs.share_compute_nic);
  EXPECT_FALSE(i.pfs.share_compute_nic);
  EXPECT_EQ(c.pfs.stripe_size, sim::MiB);
  EXPECT_EQ(i.pfs.stripe_size, sim::MiB);
  EXPECT_EQ(c.mpi.eager_limit, 512 * sim::KiB);
}

TEST(TableOutput, FormatsAligned) {
  xp::Table t({"alg", "time"});
  t.add_row({"no-overlap", "12.3"});
  t.add_row({"x", "4"});
  t.print();  // smoke: no crash; alignment eyeballed in bench output
  EXPECT_EQ(xp::fmt_pct(0.223), "22.3%");
  EXPECT_EQ(xp::fmt_ms(sim::milliseconds(12.5)), "12.50");
}
