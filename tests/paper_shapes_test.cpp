// Regression locks on the paper's headline shapes at test scale. These are
// the properties the benchmark suite reproduces at full sweep scale; the
// tests pin them at small, fast, noise-free configurations so a model or
// calibration change that silently breaks a headline result fails CI.

#include <gtest/gtest.h>

#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

xp::Platform quiet(xp::Platform p) {
  p = xp::scaled(p);
  p.fabric.noise_sigma = 0;
  p.pfs.noise_sigma = 0;
  p.pfs.aio_penalty_sigma = 0;
  return p;
}

double run_ms(const xp::Platform& plat, const wl::Spec& w, int procs,
              coll::OverlapMode mode,
              coll::Transfer transfer = coll::Transfer::TwoSided) {
  xp::RunSpec spec;
  spec.platform = plat;
  spec.workload = w;
  spec.nprocs = procs;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = mode;
  spec.options.transfer = transfer;
  spec.seed = 5;
  return sim::to_millis(xp::execute(spec).makespan);
}

}  // namespace

TEST(PaperShapes, IbexMuchFasterThanCrill) {
  // Ibex's storage system outperforms crill's HDD-backed BeeGFS (sec. IV).
  const auto w = wl::make_tile1m(1, 2);
  EXPECT_GT(run_ms(quiet(xp::crill()), w, 36, coll::OverlapMode::None),
            2 * run_ms(quiet(xp::ibex()), w, 36, coll::OverlapMode::None));
}

TEST(PaperShapes, OverlapGainLargerOnIbexThanCrill) {
  // Fig. 1: the overlap benefit tracks the communication share, which is
  // much larger on ibex.
  const auto w = wl::make_tile1m(1, 2);
  auto gain = [&](const xp::Platform& p) {
    const double none = run_ms(p, w, 36, coll::OverlapMode::None);
    const double wc2 = run_ms(p, w, 36, coll::OverlapMode::WriteComm2);
    return (none - wc2) / none;
  };
  const double crill = gain(quiet(xp::crill()));
  const double ibex = gain(quiet(xp::ibex()));
  EXPECT_GT(ibex, crill);
  EXPECT_GT(ibex, 0.05);   // double-digit-ish on ibex
  EXPECT_LT(crill, 0.10);  // single-digit on crill
}

TEST(PaperShapes, AsyncWriteOverlapBeatsCommOverlapOnIbex) {
  // The central conclusion: algorithms with asynchronous I/O outperform
  // overlap that relies on non-blocking communication only.
  const auto w = wl::make_tile1m(1, 2);
  const auto p = quiet(xp::ibex());
  EXPECT_LT(run_ms(p, w, 36, coll::OverlapMode::Write),
            run_ms(p, w, 36, coll::OverlapMode::Comm));
  EXPECT_LT(run_ms(p, w, 36, coll::OverlapMode::WriteComm2),
            run_ms(p, w, 36, coll::OverlapMode::Comm));
}

TEST(PaperShapes, TwoSidedBeatsOneSidedOnContiguousWorkloads) {
  // Fig. 4 main trend: synchronization costs of RMA epochs outweigh the
  // matching-free puts for IOR-like patterns.
  const auto w = wl::make_ior(1ull << 20);
  const auto p = quiet(xp::ibex());
  const double ts = run_ms(p, w, 36, coll::OverlapMode::WriteComm2,
                           coll::Transfer::TwoSided);
  EXPECT_LT(ts, run_ms(p, w, 36, coll::OverlapMode::WriteComm2,
                       coll::Transfer::OneSidedFence));
  EXPECT_LT(ts, run_ms(p, w, 36, coll::OverlapMode::WriteComm2,
                       coll::Transfer::OneSidedLock));
}

TEST(PaperShapes, OneSidedWinsTile256) {
  // Fig. 4 exception: element-granular discontiguity makes the aggregator's
  // two-sided unpack the bottleneck; origin-side RMA placement removes it.
  const auto w = wl::make_tile256(2, 1024);
  const auto p = quiet(xp::ibex());
  const double ts = run_ms(p, w, 36, coll::OverlapMode::WriteComm2,
                           coll::Transfer::TwoSided);
  const double fence = run_ms(p, w, 36, coll::OverlapMode::WriteComm2,
                              coll::Transfer::OneSidedFence);
  EXPECT_LT(fence, ts);
  EXPECT_GT((ts - fence) / ts, 0.10);  // a decisive win, not noise
}

TEST(PaperShapes, LustreLikeAioInvertsAsyncAdvantage) {
  // Section V: pathological aio makes blocking-write algorithms win.
  auto p = quiet(xp::ibex());
  p.pfs.aio_penalty = 2.5;
  const auto w = wl::make_tile1m(1, 2);
  EXPECT_LT(run_ms(p, w, 36, coll::OverlapMode::Comm),
            run_ms(p, w, 36, coll::OverlapMode::Write));
}

TEST(PaperShapes, CrillIsIoDominatedIbexLess) {
  // Section IV-A breakdown: crill's communication share is far below
  // ibex's.
  auto share = [&](const xp::Platform& p) {
    xp::RunSpec spec;
    spec.platform = p;
    spec.workload = wl::make_tile1m(1, 2);
    spec.nprocs = 36;
    spec.options.cb_size = xp::kCbSize;
    spec.options.overlap = coll::OverlapMode::None;
    spec.seed = 5;
    const auto r = xp::execute(spec);
    // Communication = shuffle + gather + forward + pack: gather and forward
    // are zero on this flat run but belong in the share so the formula
    // stays correct for hierarchical (and pipelined co > 1) configs.
    const double comm =
        static_cast<double>(r.agg_max.shuffle + r.agg_max.gather +
                            r.agg_max.forward + r.agg_max.pack);
    return comm / (comm + static_cast<double>(r.agg_max.write));
  };
  const double crill = share(quiet(xp::crill()));
  const double ibex = share(quiet(xp::ibex()));
  EXPECT_LT(crill, 0.10);  // paper: ~7%
  EXPECT_GT(ibex, crill);
  EXPECT_GT(ibex, 0.08);   // paper: ~23%
}
