// Differential harness for the two-stage metadata exchange: the sparse
// path (summary allgather + targeted view delivery) must be a pure
// host-memory optimization. Flipping Options::dense_metadata — or
// comparing the legacy dense Plan against a PlanSkeleton built from
// summaries alone — may never move a single RunResult field, on any
// scheduler, shuffle primitive, hierarchy setting, --jobs value or
// conductor backend.
//
// Registered under the `metadata` ctest label (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/engine.hpp"
#include "core/plan.hpp"
#include "core/read_engine.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "simbase/crc.hpp"
#include "simbase/rng.hpp"
#include "simbase/units.hpp"
#include "test_rig.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;
namespace net = tpio::net;

namespace {

/// Force a backend for the duration of one test body.
class BackendGuard {
 public:
  explicit BackendGuard(sim::ConductorBackend b)
      : prev_(sim::Conductor::default_backend()) {
    sim::Conductor::set_default_backend(b);
  }
  ~BackendGuard() { sim::Conductor::set_default_backend(prev_); }

 private:
  sim::ConductorBackend prev_;
};

void expect_identical(const xp::RunResult& a, const xp::RunResult& b,
                      const std::string& what) {
  EXPECT_EQ(a.makespan, b.makespan) << what;
  EXPECT_EQ(a.completion, b.completion) << what;
  EXPECT_EQ(a.cycles, b.cycles) << what;
  EXPECT_EQ(a.aggregators, b.aggregators) << what;
  EXPECT_EQ(a.bytes, b.bytes) << what;
  EXPECT_EQ(a.inter_node_bytes, b.inter_node_bytes) << what;
  EXPECT_EQ(a.inter_node_messages, b.inter_node_messages) << what;
  EXPECT_EQ(a.intra_node_bytes, b.intra_node_bytes) << what;
  EXPECT_EQ(a.rank_sum.meta, b.rank_sum.meta) << what;
  EXPECT_EQ(a.rank_sum.total, b.rank_sum.total) << what;
  EXPECT_EQ(a.agg_max.write, b.agg_max.write) << what;
  EXPECT_EQ(a.verify_error, "") << what;
  EXPECT_EQ(b.verify_error, "") << what;
}

}  // namespace

TEST(MetadataDiff, DenseSparseIdenticalAcrossSchedulersPrimitivesHierarchy) {
  // The full option matrix: 5 schedulers x 3 primitives x hier on/off.
  // Every observable of the run must be bit-identical between the sparse
  // delivery (default) and the legacy dense materialization.
  BackendGuard guard(sim::ConductorBackend::Fibers);
  for (int m = 0; m < 5; ++m) {
    for (int t = 0; t < 3; ++t) {
      for (bool hier : {false, true}) {
        xp::RunSpec spec;
        spec.platform = xp::scaled(xp::ibex());
        spec.workload = wl::make_tile1m(1, 1);
        spec.nprocs = 16;
        spec.options.cb_size = xp::kCbSize;
        spec.options.overlap = static_cast<coll::OverlapMode>(m);
        spec.options.transfer = static_cast<coll::Transfer>(t);
        spec.options.hierarchical = hier;
        spec.seed = 0xD1FF;
        spec.verify = true;
        const xp::RunResult sparse = xp::execute(spec);
        spec.options.dense_metadata = true;
        const xp::RunResult dense = xp::execute(spec);
        expect_identical(sparse, dense,
                         "overlap=" + std::string(coll::to_string(
                                          spec.options.overlap)) +
                             " transfer=" +
                             std::string(coll::to_string(
                                 spec.options.transfer)) +
                             " hier=" + std::to_string(hier));
      }
    }
  }
}

TEST(MetadataDiff, DenseSparseIdenticalOnReadPath) {
  // collective_read runs the same two-stage exchange (minus hierarchy);
  // dense materialization may change neither the bytes read nor the
  // virtual schedule.
  auto run_read = [](bool dense) {
    tpio::test::ClusterSpec cs;
    cs.nodes = 4;
    cs.ppn = 3;
    tpio::test::Cluster cluster(cs);
    auto file = cluster.storage().create("md", tpio::pfs::Integrity::Store);
    std::uint64_t crc = 0;
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      coll::FileView view;
      for (int row = 0; row < 6; ++row) {
        view.extents.push_back(coll::Extent{
            (static_cast<std::uint64_t>(row) * 12 +
             static_cast<std::uint64_t>(mpi.rank())) *
                2048,
            2048});
      }
      const auto data = tpio::test::fill_view(view);
      coll::Options wopt;
      wopt.cb_size = 16384;
      wopt.dense_metadata = dense;
      coll::collective_write(mpi, *file, view, data, wopt);
      mpi.barrier();
      std::vector<std::byte> out(view.total_bytes(), std::byte{0xEE});
      coll::collective_read(mpi, *file, view, out, wopt);
      EXPECT_EQ(out, data) << "rank " << mpi.rank();
      if (mpi.rank() == 0) crc = sim::crc64(out);
    });
    return std::pair{cluster.conductor().makespan(), crc};
  };
  const auto [t_sparse, crc_sparse] = run_read(false);
  const auto [t_dense, crc_dense] = run_read(true);
  EXPECT_EQ(t_sparse, t_dense);
  EXPECT_EQ(crc_sparse, crc_dense);
}

TEST(MetadataDiff, QuickSweepIdenticalAcrossJobsBackendsAndDensity) {
  // The acceptance differential: the quick Table-I sweep must produce the
  // identical table for every (backend, --jobs, dense_metadata) corner.
  // Exact double equality — the timeline is integer nanoseconds.
  struct Corner {
    sim::ConductorBackend backend;
    int jobs;
    bool dense;
  };
  const Corner corners[] = {
      {sim::ConductorBackend::Fibers, 1, false},
      {sim::ConductorBackend::Fibers, 8, true},
      {sim::ConductorBackend::Threads, 1, true},
      {sim::ConductorBackend::Threads, 8, false},
  };
  std::vector<std::vector<xp::OverlapSeries>> tables;
  for (const Corner& c : corners) {
    BackendGuard guard(c.backend);
    xp::ExecOptions exec;
    exec.jobs = c.jobs;
    coll::Options base;
    base.dense_metadata = c.dense;
    tables.push_back(
        xp::run_overlap_sweep(xp::ibex(), base, 1, 0x3E7A, true, exec));
  }
  for (std::size_t k = 1; k < tables.size(); ++k) {
    ASSERT_EQ(tables[k].size(), tables[0].size());
    for (std::size_t i = 0; i < tables[0].size(); ++i) {
      EXPECT_EQ(tables[k][i].procs, tables[0][i].procs);
      EXPECT_EQ(tables[k][i].min_ms, tables[0][i].min_ms)
          << "corner " << k << " series " << i;
    }
  }
}

TEST(MetadataDiff, SkeletonFromSummariesMatchesDensePlanGeometry) {
  // PlanSkeleton sees 32 bytes per rank; the dense Plan sees every extent.
  // Both must derive the same geometry — aggregator placement, domains,
  // cycles, leaders — for random decompositions.
  sim::Rng rng(0x5EED);
  for (int trial = 0; trial < 20; ++trial) {
    const int ppn = 1 + static_cast<int>(rng.next_below(4));
    const int nodes = 2 + static_cast<int>(rng.next_below(7));
    const int P = nodes * ppn;
    const net::Topology topo{nodes, ppn};
    std::vector<coll::FileView> views(static_cast<std::size_t>(P));
    std::uint64_t pos = rng.next_below(1 << 20);
    for (int k = 0; k < 50; ++k) {
      const int owner =
          static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
      const std::uint64_t len = 1 + rng.next_below(100'000);
      views[static_cast<std::size_t>(owner)].extents.push_back(
          coll::Extent{pos, len});
      pos += len + rng.next_below(4096);
    }
    coll::Options opt;
    opt.cb_size = 1 << 20;
    opt.hierarchical = (trial % 2 == 1);
    const std::uint64_t stripe = 128 * sim::KiB;

    std::vector<coll::ViewSummary> summaries;
    summaries.reserve(views.size());
    for (const auto& v : views) summaries.push_back(v.summarize());
    const coll::PlanSkeleton skel(summaries, topo, stripe, opt);
    const coll::Plan dense(views, topo, stripe, opt);

    ASSERT_EQ(skel.num_aggregators(), dense.num_aggregators()) << trial;
    EXPECT_EQ(skel.num_cycles(), dense.num_cycles()) << trial;
    EXPECT_EQ(skel.sub_buffer_bytes(), dense.sub_buffer_bytes()) << trial;
    EXPECT_EQ(skel.global_bytes(), dense.global_bytes()) << trial;
    EXPECT_EQ(skel.range_begin(), dense.range_begin()) << trial;
    EXPECT_EQ(skel.range_end(), dense.range_end()) << trial;
    for (int a = 0; a < skel.num_aggregators(); ++a) {
      EXPECT_EQ(skel.agg_rank(a), dense.agg_rank(a)) << trial;
      EXPECT_EQ(skel.domain(a).begin, dense.domain(a).begin) << trial;
      EXPECT_EQ(skel.domain(a).end, dense.domain(a).end) << trial;
    }
    for (int r = 0; r < P; ++r) {
      EXPECT_EQ(skel.is_aggregator(r), dense.is_aggregator(r)) << trial;
      EXPECT_EQ(skel.agg_index(r), dense.agg_index(r)) << trial;
    }
  }
}
