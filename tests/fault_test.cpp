// Fault-injection and resilient-write-path tests: the FaultModel oracle's
// pure-function contract, retry/give-up behaviour of both engines across
// every scheduler and transfer primitive, straggler degraded mode, and the
// determinism guarantees documented in docs/FAULTS.md.

#include <gtest/gtest.h>

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/read_engine.hpp"
#include "core/trace.hpp"
#include "harness/platform.hpp"
#include "harness/runner.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
namespace xp = tpio::xp;
namespace wl = tpio::wl;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

coll::FileView block_view(int rank, std::uint64_t n) {
  coll::FileView v;
  v.extents.push_back(coll::Extent{static_cast<std::uint64_t>(rank) * n, n});
  return v;
}

struct Config {
  coll::OverlapMode overlap;
  coll::Transfer transfer;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  std::string s = coll::to_string(info.param.overlap);
  s += "_";
  s += coll::to_string(info.param.transfer);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

/// Outcome of one clustered collective write under a fault scenario.
struct WriteOutcome {
  coll::FaultStats faults;          // summed over ranks
  std::vector<std::string> io_errors;
  std::uint64_t bytes_written = 0;  // durable bytes per File
  std::string verify_error;
  sim::Duration makespan = 0;
};

/// Run one collective write (block views, `n` bytes per rank) on a fresh
/// cluster configured with `faults`, and collect the resilience outcome.
WriteOutcome run_faulty_write(const pfs::FaultParams& faults,
                              const coll::Options& opt,
                              std::uint64_t n = 32768) {
  ClusterSpec spec;
  spec.pfs.faults = faults;
  Cluster cluster(spec);
  auto file = cluster.storage().create("out", pfs::Integrity::Store);
  std::vector<coll::Result> results(
      static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), n);
    const auto data = fill_view(view);
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, opt);
  });
  WriteOutcome out;
  for (const auto& r : results) {
    out.faults += r.faults;
    if (!r.io_error.empty()) out.io_errors.push_back(r.io_error);
  }
  out.bytes_written = file->bytes_written();
  out.verify_error = file->verify(file_byte);
  out.makespan = cluster.conductor().makespan();
  return out;
}

coll::Options base_options(const Config& cfg) {
  coll::Options o;
  o.cb_size = 8192;
  o.overlap = cfg.overlap;
  o.transfer = cfg.transfer;
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// WriteOp zero-initialization (regression)
// ---------------------------------------------------------------------------

TEST(WriteOp, ValueInitialized) {
  // A value-constructed handle must be fully determinate: not valid, and
  // reporting the neutral Ok status (regression for the default-member-
  // initializer fix — the engines keep empty WriteOps in their slots).
  pfs::WriteOp op;
  EXPECT_FALSE(op.valid());
  EXPECT_EQ(op.status(), pfs::IoStatus::Ok);

  pfs::WriteOp ops[3];  // aggregate element initialization, same contract
  for (const auto& o : ops) {
    EXPECT_FALSE(o.valid());
    EXPECT_EQ(o.status(), pfs::IoStatus::Ok);
  }
}

// ---------------------------------------------------------------------------
// FaultModel oracle
// ---------------------------------------------------------------------------

TEST(FaultModel, HealthyDefaultsAreDisabled) {
  EXPECT_FALSE(pfs::FaultModel().enabled());
  EXPECT_FALSE(pfs::FaultModel(pfs::FaultParams{}).enabled());
  EXPECT_EQ(pfs::fault_tag(pfs::FaultParams{}), "");

  // A different seed alone does not enable the model: with all rates at
  // their defaults there is no fault stream to seed.
  pfs::FaultParams seeded;
  seeded.seed = 0xDEADBEEF;
  EXPECT_FALSE(pfs::FaultModel(seeded).enabled());
  EXPECT_EQ(pfs::fault_tag(seeded), "");
}

TEST(FaultModel, VerdictIsPureFunctionOfKeyAndAttempt) {
  pfs::FaultParams p;
  p.write_fail_rate = 0.5;
  p.read_fail_rate = 0.5;
  p.seed = 1234;
  const pfs::FaultModel m(p);

  // Same (key, attempt) -> same verdict, however often and in whatever
  // order it is asked; and an independent model instance agrees.
  const pfs::FaultModel twin(p);
  std::vector<bool> first;
  for (int k = 0; k < 64; ++k) {
    first.push_back(m.write_fails(static_cast<std::uint64_t>(k), 1));
  }
  for (int k = 63; k >= 0; --k) {  // reversed order, interleaved with reads
    (void)m.read_fails(static_cast<std::uint64_t>(k), 1);
    EXPECT_EQ(m.write_fails(static_cast<std::uint64_t>(k), 1),
              first[static_cast<std::size_t>(k)]);
    EXPECT_EQ(twin.write_fails(static_cast<std::uint64_t>(k), 1),
              first[static_cast<std::size_t>(k)]);
  }

  // Rate 0.5 over many keys must produce both verdicts (sanity: the hash
  // actually spreads), and attempts draw independently.
  int fails = 0, attempt_flips = 0;
  for (int k = 0; k < 256; ++k) {
    const auto key = static_cast<std::uint64_t>(k) * 977 + 3;
    if (m.write_fails(key, 1)) ++fails;
    if (m.write_fails(key, 1) != m.write_fails(key, 2)) ++attempt_flips;
  }
  EXPECT_GT(fails, 64);
  EXPECT_LT(fails, 192);
  EXPECT_GT(attempt_flips, 0);
}

TEST(FaultModel, RateExtremesAndFailUntil) {
  pfs::FaultParams p;
  p.write_fail_rate = 0.0;
  p.read_fail_rate = 1.0;
  p.fail_until_attempt = 3;
  const pfs::FaultModel m(p);

  // fail_until_attempt takes precedence over the rates: attempts 1 and 2
  // fail even at rate 0, attempt 3 onward falls back to the rate.
  EXPECT_TRUE(m.write_fails(7, 1));
  EXPECT_TRUE(m.write_fails(7, 2));
  EXPECT_FALSE(m.write_fails(7, 3));   // rate 0: never past the schedule
  EXPECT_FALSE(m.write_fails(7, 99));
  EXPECT_TRUE(m.read_fails(7, 3));     // rate 1: always
  EXPECT_TRUE(m.read_fails(7, 99));
}

TEST(FaultModel, OpKeyIsStableAndDiscriminating) {
  const auto k = pfs::FaultModel::op_key(2, 4096, 512);
  EXPECT_EQ(k, pfs::FaultModel::op_key(2, 4096, 512));
  EXPECT_NE(k, pfs::FaultModel::op_key(3, 4096, 512));
  EXPECT_NE(k, pfs::FaultModel::op_key(2, 8192, 512));
  EXPECT_NE(k, pfs::FaultModel::op_key(2, 4096, 1024));
}

TEST(FaultModel, ServiceFactorAsymmetry) {
  pfs::FaultParams p;
  p.straggler_factor = 4.0;
  p.straggler_targets = 2;
  p.straggler_after = 1000;
  const pfs::FaultModel m(p);

  // Straggler targets pay the factor on blocking service and its square on
  // asynchronous service (the paper's pathological-aio asymmetry)...
  EXPECT_DOUBLE_EQ(m.service_factor(0, /*async=*/false, 1000), 4.0);
  EXPECT_DOUBLE_EQ(m.service_factor(1, /*async=*/true, 1000), 16.0);
  // ...healthy targets and pre-onset service run at full speed.
  EXPECT_DOUBLE_EQ(m.service_factor(2, false, 1000), 1.0);
  EXPECT_DOUBLE_EQ(m.service_factor(2, true, 1000), 1.0);
  EXPECT_DOUBLE_EQ(m.service_factor(0, true, 999), 1.0);

  // Degenerate configurations are inert.
  EXPECT_DOUBLE_EQ(pfs::FaultModel().service_factor(0, true, 0), 1.0);
  pfs::FaultParams no_targets = p;
  no_targets.straggler_targets = 0;
  EXPECT_DOUBLE_EQ(pfs::FaultModel(no_targets).service_factor(0, true, 1000),
                   1.0);
}

TEST(FaultModel, FaultTagDiscriminatesScenarios) {
  pfs::FaultParams a;
  a.write_fail_rate = 0.1;
  pfs::FaultParams b = a;
  b.seed = 2;
  pfs::FaultParams c = a;
  c.straggler_factor = 4.0;
  c.straggler_targets = 2;
  EXPECT_NE(pfs::fault_tag(a), "");
  EXPECT_NE(pfs::fault_tag(a), pfs::fault_tag(b));
  EXPECT_NE(pfs::fault_tag(a), pfs::fault_tag(c));
}

// ---------------------------------------------------------------------------
// Bit-identity of the healthy model
// ---------------------------------------------------------------------------

TEST(FaultFreeIdentity, InertKnobsDoNotPerturbTiming) {
  coll::Options base;
  base.cb_size = 8192;
  base.overlap = coll::OverlapMode::Write;  // exercises the aio path

  const WriteOutcome reference = run_faulty_write(pfs::FaultParams{}, base);
  EXPECT_EQ(reference.verify_error, "");
  EXPECT_EQ(reference.faults.retries, 0);
  EXPECT_EQ(reference.faults.giveups, 0);
  EXPECT_EQ(reference.faults.degraded_cycles, 0);

  // A disabled FaultModel must consume no randomness and change no timing:
  // different fault seed, different resilience knobs — same makespan, bit
  // for bit.
  pfs::FaultParams reseeded;
  reseeded.seed = 0x5EED;
  EXPECT_EQ(run_faulty_write(reseeded, base).makespan, reference.makespan);

  coll::Options tweaked = base;
  tweaked.max_retries = 9;
  tweaked.retry_backoff = sim::milliseconds(3);
  EXPECT_EQ(run_faulty_write(pfs::FaultParams{}, tweaked).makespan,
            reference.makespan);
}

// ---------------------------------------------------------------------------
// Retry paths across every scheduler and primitive
// ---------------------------------------------------------------------------

class FaultyCollectiveWrite : public testing::TestWithParam<Config> {};

TEST_P(FaultyCollectiveWrite, RetriedRunMatchesFaultFreeBytes) {
  const coll::Options opt = base_options(GetParam());

  const WriteOutcome healthy = run_faulty_write(pfs::FaultParams{}, opt);
  ASSERT_EQ(healthy.verify_error, "");
  EXPECT_EQ(healthy.faults.retries, 0);

  // Deterministic schedule: the first attempt of every operation fails, the
  // re-issue succeeds. The retried run must land the identical bytes.
  pfs::FaultParams f;
  f.fail_until_attempt = 2;
  const WriteOutcome faulty = run_faulty_write(f, opt);
  EXPECT_EQ(faulty.verify_error, "");
  EXPECT_EQ(faulty.bytes_written, healthy.bytes_written);
  EXPECT_GT(faulty.faults.retries, 0);
  EXPECT_EQ(faulty.faults.giveups, 0);
  EXPECT_TRUE(faulty.io_errors.empty());
  // Recovery costs time; it must never be free.
  EXPECT_GT(faulty.makespan, healthy.makespan);
}

TEST_P(FaultyCollectiveWrite, RandomFaultsRecoverAndStayDeterministic) {
  const coll::Options opt = base_options(GetParam());
  pfs::FaultParams f;
  f.write_fail_rate = 0.3;
  f.seed = 42;

  const WriteOutcome first = run_faulty_write(f, opt);
  EXPECT_EQ(first.verify_error, "");
  EXPECT_EQ(first.faults.giveups, 0);

  // Same scenario on a fresh cluster (fresh thread interleavings): retry
  // counts and timing must be bit-identical — fault verdicts and backoff
  // jitter are pure functions, never shared-stream draws.
  const WriteOutcome second = run_faulty_write(f, opt);
  EXPECT_EQ(second.faults.retries, first.faults.retries);
  EXPECT_EQ(second.makespan, first.makespan);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchedulers, FaultyCollectiveWrite,
    testing::Values(
        Config{coll::OverlapMode::None, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::Comm, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::Write, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::WriteComm, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::WriteComm2, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::WriteComm2, coll::Transfer::OneSidedFence},
        Config{coll::OverlapMode::WriteComm2, coll::Transfer::OneSidedLock}),
    config_name);

// ---------------------------------------------------------------------------
// Give-up propagation
// ---------------------------------------------------------------------------

TEST(GiveUp, PropagatesThroughResultAndLeavesHole) {
  pfs::FaultParams f;
  f.fail_until_attempt = 9;  // beyond any retry budget below
  coll::Options opt;
  opt.cb_size = 8192;
  opt.overlap = coll::OverlapMode::None;
  opt.max_retries = 1;  // 2 attempts per op, both doomed

  const WriteOutcome out = run_faulty_write(f, opt);
  EXPECT_GT(out.faults.giveups, 0);
  EXPECT_GT(out.faults.retries, 0);
  ASSERT_FALSE(out.io_errors.empty());
  EXPECT_NE(out.io_errors.front().find("gave up after 2 attempts"),
            std::string::npos)
      << out.io_errors.front();
  // Nothing became durable: every attempt of every op failed.
  EXPECT_EQ(out.bytes_written, 0u);
}

TEST(GiveUp, RunnerVerificationCatchesShortFile) {
  // End-to-end through the experiment runner: a run that gives up must
  // fail verification even when the surviving content is self-consistent
  // (a trailing hole shrinks the file rather than corrupting it).
  xp::RunSpec spec;
  spec.platform = xp::ibex();
  spec.workload = wl::make_ior(1 << 16);
  spec.nprocs = 16;
  spec.verify = true;
  spec.options.cb_size = 1 << 16;
  spec.options.max_retries = 1;
  spec.platform.pfs.faults.fail_until_attempt = 9;

  const xp::RunResult out = xp::execute(spec);
  EXPECT_GT(out.faults.giveups, 0);
  EXPECT_FALSE(out.io_error.empty());
  EXPECT_FALSE(out.verify_error.empty());
}

TEST(GiveUp, RunnerFaultStatsAreDeterministic) {
  xp::RunSpec spec;
  spec.platform = xp::ibex();
  spec.workload = wl::make_ior(1 << 16);
  spec.nprocs = 16;
  spec.verify = true;
  spec.seed = 77;
  spec.options.cb_size = 1 << 16;
  spec.options.max_retries = 8;  // 0.2^9 per-op give-up odds: effectively 0
  spec.platform.pfs.faults.write_fail_rate = 0.2;
  spec.platform.pfs.faults.seed = 7;

  const xp::RunResult a = xp::execute(spec);
  const xp::RunResult b = xp::execute(spec);
  EXPECT_EQ(a.verify_error, "");
  EXPECT_EQ(a.faults.retries, b.faults.retries);
  EXPECT_EQ(a.faults.giveups, b.faults.giveups);
  EXPECT_EQ(a.makespan, b.makespan);
}

// ---------------------------------------------------------------------------
// Read-path resilience
// ---------------------------------------------------------------------------

TEST(ReadResilience, RetriedReadsReturnCorrectBytes) {
  // fail_until_attempt = 2 makes every first attempt — write and read —
  // fail; both engines must recover and the read-back bytes must match.
  ClusterSpec spec;
  spec.pfs.faults.fail_until_attempt = 2;
  Cluster cluster(spec);
  auto file = cluster.storage().create("rt", pfs::Integrity::Store);
  std::vector<coll::Result> reads(static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), 20'000);
    const auto data = fill_view(view);
    coll::Options opt;
    opt.cb_size = 8192;
    coll::collective_write(mpi, *file, view, data, opt);
    mpi.barrier();

    std::vector<std::byte> out(view.total_bytes(), std::byte{0xEE});
    opt.overlap = coll::OverlapMode::Write;  // aio read path + recovery
    reads[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_read(mpi, *file, view, out, opt);
    ASSERT_EQ(out, data) << "rank " << mpi.rank() << " read wrong bytes";
  });
  coll::FaultStats total;
  for (const auto& r : reads) {
    total += r.faults;
    EXPECT_EQ(r.io_error, "");
  }
  EXPECT_GT(total.retries, 0);
  EXPECT_EQ(total.giveups, 0);
}

TEST(ReadResilience, ReadGiveUpPropagates) {
  // Writes succeed (healthy storage), then a second cluster sharing no
  // state re-reads under a doomed schedule. Reads and writes draw from
  // separate rate knobs, so only the read path is affected here.
  ClusterSpec spec;
  spec.pfs.faults.read_fail_rate = 1.0;
  Cluster cluster(spec);
  auto file = cluster.storage().create("rt", pfs::Integrity::Store);
  std::vector<coll::Result> reads(static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), 20'000);
    const auto data = fill_view(view);
    coll::Options opt;
    opt.cb_size = 8192;
    opt.max_retries = 1;
    coll::collective_write(mpi, *file, view, data, opt);
    mpi.barrier();

    std::vector<std::byte> out(view.total_bytes());
    reads[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_read(mpi, *file, view, out, opt);
  });
  EXPECT_EQ(file->verify(file_byte), "");  // writes were unaffected
  coll::FaultStats total;
  int with_error = 0;
  for (const auto& r : reads) {
    total += r.faults;
    if (!r.io_error.empty()) ++with_error;
  }
  EXPECT_GT(total.giveups, 0);
  EXPECT_GT(with_error, 0);
}

// ---------------------------------------------------------------------------
// Straggler degraded mode
// ---------------------------------------------------------------------------

TEST(DegradedMode, StragglerTriggersBlockingDrainWithTraceEvents) {
  // Establish a healthy-run baseline first; the straggler onset lands a
  // quarter of the way in, after the detector has seen fast completions.
  // 128 KiB per rank / (4 aggregators x 8 KiB cb) = 32 cycles: plenty of
  // post-onset cycles for the blocking drain to pay off.
  const std::uint64_t kPerRank = 131072;
  coll::Options opt;
  opt.cb_size = 8192;
  opt.overlap = coll::OverlapMode::Write;
  const WriteOutcome healthy =
      run_faulty_write(pfs::FaultParams{}, opt, kPerRank);
  ASSERT_EQ(healthy.verify_error, "");

  pfs::FaultParams f;
  f.straggler_factor = 8.0;
  f.straggler_targets = 4;  // every target of the test rig lags...
  f.straggler_after = healthy.makespan / 8;  // ...but only after warm-up

  coll::Options degrade = opt;
  degrade.degrade_slowdown = 2.0;

  ClusterSpec spec;
  spec.pfs.faults = f;
  Cluster cluster(spec);
  auto file = cluster.storage().create("out", pfs::Integrity::Store);
  std::vector<coll::Trace> traces(static_cast<std::size_t>(cluster.nprocs()));
  std::vector<coll::Result> results(
      static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), kPerRank);
    const auto data = fill_view(view);
    coll::Options o = degrade;
    o.trace = &traces[static_cast<std::size_t>(mpi.rank())];
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, o);
  });

  // The blocking drain still lands every byte.
  EXPECT_EQ(file->verify(file_byte), "");

  coll::FaultStats total;
  int degrade_events = 0, degraded_cycle_events = 0;
  for (std::size_t r = 0; r < traces.size(); ++r) {
    int here = 0;
    for (const auto& e : traces[r].events()) {
      if (std::string(e.name) == "degrade") {
        ++degrade_events;
        ++here;
      }
      if (std::string(e.name) == "write_degraded") {
        ++degraded_cycle_events;
        ++here;
      }
    }
    // Only aggregators touch the file; non-aggregator ranks must not carry
    // degraded-mode events.
    if (results[r].timings.write == 0) {
      EXPECT_EQ(here, 0) << "rank " << r;
    }
    total += results[r].faults;
  }
  EXPECT_GT(degrade_events, 0);
  EXPECT_GT(total.degraded_cycles, 0);
  // Every degraded cycle is traced exactly once.
  EXPECT_EQ(total.degraded_cycles, degraded_cycle_events);

  // The same straggler scenario without degraded mode must be slower: the
  // whole point of the blocking drain is to dodge the aio penalty square.
  const WriteOutcome undegraded = run_faulty_write(f, opt, kPerRank);
  EXPECT_EQ(undegraded.verify_error, "");
  EXPECT_GT(undegraded.makespan, cluster.conductor().makespan());
}

// ---------------------------------------------------------------------------
// Backoff accounting
// ---------------------------------------------------------------------------

TEST(BackoffAccounting, RetriesChargeTheBackoffBucket) {
  pfs::FaultParams f;
  f.fail_until_attempt = 3;  // two forced retries per operation
  coll::Options opt;
  opt.cb_size = 8192;
  opt.overlap = coll::OverlapMode::None;

  ClusterSpec spec;
  spec.pfs.faults = f;
  Cluster cluster(spec);
  auto file = cluster.storage().create("out", pfs::Integrity::Store);
  std::vector<coll::Result> results(
      static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), 32768);
    const auto data = fill_view(view);
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, opt);
  });
  EXPECT_EQ(file->verify(file_byte), "");

  sim::Duration backoff = 0;
  int retries = 0;
  for (const auto& r : results) {
    backoff += r.timings.backoff;
    retries += r.faults.retries;
    // The accounting identity holds with the backoff bucket included.
    const auto& t = r.timings;
    EXPECT_LE(t.meta + t.pack + t.gather + t.forward + t.shuffle + t.sync +
                  t.write + t.backoff,
              t.total);
  }
  EXPECT_GT(retries, 0);
  // Every retry waits at least the base backoff (jitter only adds).
  EXPECT_GE(backoff, static_cast<sim::Duration>(retries) * opt.retry_backoff);
}
