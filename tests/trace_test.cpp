#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/engine.hpp"
#include "core/trace.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::fill_view;

namespace {

std::vector<coll::Trace> traced_run(coll::OverlapMode mode, bool hier = false,
                                    int nodes = 4, int ppn = 2) {
  tpio::test::ClusterSpec cs;
  cs.nodes = nodes;
  cs.ppn = ppn;
  Cluster cluster(cs);
  std::vector<coll::Trace> traces(static_cast<std::size_t>(cluster.nprocs()));
  auto file = cluster.storage().create("tr", pfs::Integrity::None);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    coll::FileView v;
    v.extents.push_back(
        coll::Extent{static_cast<std::uint64_t>(mpi.rank()) * 20'000, 20'000});
    const auto data = fill_view(v);
    coll::Options o;
    o.cb_size = 16384;
    o.overlap = mode;
    o.hierarchical = hier;
    o.trace = &traces[static_cast<std::size_t>(mpi.rank())];
    coll::collective_write(mpi, *file, v, data, o);
  });
  return traces;
}

std::vector<int> event_cycles(const coll::Trace& t, const std::string& name) {
  std::vector<int> out;
  for (const auto& e : t.events()) {
    if (std::string(e.name) == name) out.push_back(e.cycle);
  }
  return out;
}

}  // namespace

TEST(Trace, RecordsPhasesOnEveryRank) {
  const auto traces = traced_run(coll::OverlapMode::WriteComm2);
  for (const auto& t : traces) {
    EXPECT_FALSE(t.empty());
  }
  // Aggregators must show write phases; everyone shows shuffles.
  bool any_write = false;
  for (const auto& t : traces) {
    bool shuffle = false;
    for (const auto& e : t.events()) {
      if (std::string(e.name).find("shuffle") != std::string::npos) {
        shuffle = true;
      }
      if (std::string(e.name).find("write") != std::string::npos) {
        any_write = true;
      }
    }
    EXPECT_TRUE(shuffle);
  }
  EXPECT_TRUE(any_write);
}

TEST(Trace, EventsWellFormedAndOrdered) {
  const auto traces = traced_run(coll::OverlapMode::Write);
  for (const auto& t : traces) {
    sim::Time prev_begin = 0;
    for (const auto& e : t.events()) {
      EXPECT_LE(e.begin, e.end);
      EXPECT_GE(e.begin, prev_begin);  // per-rank events begin in order
      prev_begin = e.begin;
      EXPECT_GE(e.cycle, 0);
    }
  }
}

TEST(Trace, OverlapVisibleInTimeline) {
  // In Write overlap, some write_wait (cycle c) must begin after the
  // shuffle of cycle c+1 began on the same rank — that IS the overlap.
  const auto traces = traced_run(coll::OverlapMode::Write);
  bool overlap_seen = false;
  for (const auto& t : traces) {
    sim::Time first_write_init = -1;
    for (const auto& e : t.events()) {
      if (std::string(e.name) == "write_init" && e.cycle == 0) {
        first_write_init = e.begin;
      }
      if (std::string(e.name) == "shuffle_init" && e.cycle == 1 &&
          first_write_init >= 0 && e.begin >= first_write_init) {
        overlap_seen = true;
      }
    }
  }
  EXPECT_TRUE(overlap_seen);
}

TEST(Trace, WriteEventsOnlyOnAggregatorRanks) {
  // With the Cluster geometry (4 nodes x 2 ppn, 160000 bytes, 16 KiB cb)
  // the plan places aggregators on the even ranks. Non-aggregators never
  // touch the file, so their traces must carry no write phases at all.
  for (coll::OverlapMode mode :
       {coll::OverlapMode::None, coll::OverlapMode::Comm,
        coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
        coll::OverlapMode::WriteComm2}) {
    const auto traces = traced_run(mode);
    for (std::size_t r = 0; r < traces.size(); ++r) {
      bool any_write = false;
      for (const auto& e : traces[r].events()) {
        if (std::string(e.name).find("write") != std::string::npos) {
          any_write = true;
        }
      }
      EXPECT_EQ(any_write, r % 2 == 0)
          << "rank " << r << " mode " << coll::to_string(mode);
    }
  }
}

TEST(Trace, WriteWaitCyclesMatchTheirWriteInits) {
  // Every write_wait must be labeled with the cycle of the write it waits
  // on (recorded at write_init time), under each asynchronous-write
  // scheduler — not with the slot's most recent shuffle cycle.
  for (coll::OverlapMode mode :
       {coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
        coll::OverlapMode::WriteComm2}) {
    const auto traces = traced_run(mode);
    for (std::size_t r = 0; r < traces.size(); ++r) {
      std::vector<int> inits;
      std::vector<int> waits;
      for (const auto& e : traces[r].events()) {
        if (std::string(e.name) == "write_init") inits.push_back(e.cycle);
        if (std::string(e.name) == "write_wait") waits.push_back(e.cycle);
      }
      if (r % 2 == 1) {
        EXPECT_TRUE(inits.empty() && waits.empty()) << "rank " << r;
        continue;
      }
      EXPECT_FALSE(inits.empty()) << "rank " << r;
      // One wait per init, covering exactly the same cycles. Waits are
      // posted in cycle order by every scheduler, so compare directly.
      std::sort(inits.begin(), inits.end());
      EXPECT_EQ(waits, inits)
          << "rank " << r << " mode " << coll::to_string(mode);
    }
  }
}

TEST(Trace, LeaderGatherEventsOnlyOnLeaderRanks) {
  // Hierarchical shuffle on the default geometry (4 nodes x 2 ppn): the
  // Lowest policy elects ranks 0, 2, 4, 6. Only leaders merge co-located
  // data, so only their traces may carry leader_gather phases — and with
  // every rank contributing each cycle, they all must.
  for (coll::OverlapMode mode :
       {coll::OverlapMode::None, coll::OverlapMode::Comm,
        coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
        coll::OverlapMode::WriteComm2}) {
    const auto traces = traced_run(mode, /*hier=*/true);
    for (std::size_t r = 0; r < traces.size(); ++r) {
      const auto gathers = event_cycles(traces[r], "leader_gather");
      if (r % 2 == 0) {
        EXPECT_FALSE(gathers.empty())
            << "rank " << r << " mode " << coll::to_string(mode);
      } else {
        EXPECT_TRUE(gathers.empty())
            << "rank " << r << " mode " << coll::to_string(mode);
      }
    }
  }
}

TEST(Trace, LeaderGatherCyclesMatchShuffleInits) {
  // Every cycle a leader shuffles, it first gathered that same cycle: the
  // leader_gather events must carry exactly the shuffle_init cycle labels,
  // in the same order, under every scheduler.
  for (coll::OverlapMode mode :
       {coll::OverlapMode::None, coll::OverlapMode::Comm,
        coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
        coll::OverlapMode::WriteComm2}) {
    const auto traces = traced_run(mode, /*hier=*/true);
    for (std::size_t r = 0; r < traces.size(); r += 2) {
      const auto gathers = event_cycles(traces[r], "leader_gather");
      const auto shuffles = event_cycles(traces[r], "shuffle_init");
      EXPECT_EQ(gathers, shuffles)
          << "rank " << r << " mode " << coll::to_string(mode);
    }
  }
}

TEST(Trace, NoLeaderGatherEventsAtPpnOne) {
  // One process per node: nothing to merge, the hierarchical path must
  // degenerate to the direct one — no gather phases anywhere.
  const auto traces = traced_run(coll::OverlapMode::WriteComm2, /*hier=*/true,
                                 /*nodes=*/8, /*ppn=*/1);
  for (std::size_t r = 0; r < traces.size(); ++r) {
    EXPECT_TRUE(event_cycles(traces[r], "leader_gather").empty())
        << "rank " << r;
  }
}

TEST(Trace, ChromeDocumentShape) {
  const auto traces = traced_run(coll::OverlapMode::None);
  const std::string doc = coll::Trace::chrome_document(traces);
  EXPECT_EQ(doc.find("{\"traceEvents\":["), 0u);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"tid\":0"), std::string::npos);
  EXPECT_NE(doc.find("shuffle_init"), std::string::npos);
  EXPECT_NE(doc.find("\"displayTimeUnit\":\"ms\""), std::string::npos);
  // Balanced braces at the ends.
  EXPECT_EQ(doc.back(), '\n');
}

TEST(Trace, NullTraceIsFreeOfEvents) {
  Cluster cluster;
  auto file = cluster.storage().create("tr", pfs::Integrity::None);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    coll::FileView v;
    v.extents.push_back(
        coll::Extent{static_cast<std::uint64_t>(mpi.rank()) * 4096, 4096});
    const auto data = fill_view(v);
    coll::Options o;  // trace == nullptr
    coll::collective_write(mpi, *file, v, data, o);
  });
  SUCCEED();  // merely must not crash
}
