// Property tests of the fabric model: conservation and monotonicity
// invariants that must hold for any traffic pattern.

#include <gtest/gtest.h>

#include <vector>

#include "net/fabric.hpp"
#include "simbase/rng.hpp"

namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

net::FabricParams flat() {
  net::FabricParams p;
  p.inter_bw = 1e9;
  p.intra_bw = 4e9;
  p.inter_latency = 100;
  p.intra_latency = 10;
  return p;
}

class NetFuzz : public testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(NetFuzz, ArrivalNeverBeforePhysicalMinimum) {
  // arrival >= depart + latency + serialization, whatever the contention.
  net::Topology topo{6, 2};
  net::Fabric f(topo, flat());
  sim::Rng rng(GetParam());
  for (int i = 0; i < 300; ++i) {
    const int src = static_cast<int>(rng.next_below(12));
    const int dst = static_cast<int>(rng.next_below(12));
    if (src == dst) continue;
    const std::uint64_t bytes = rng.next_below(1 << 20);
    const auto depart = static_cast<sim::Time>(rng.next_below(1'000'000));
    const sim::Time arr = f.transfer(src, dst, bytes, depart);
    const bool same = topo.same_node(src, dst);
    const sim::Duration lat = same ? 10 : 100;
    const double bw = same ? 4e9 : 1e9;
    EXPECT_GE(arr, depart + lat + sim::transfer_time(bytes, bw))
        << "src=" << src << " dst=" << dst << " bytes=" << bytes;
  }
}

TEST_P(NetFuzz, ChannelThroughputNeverExceedsBandwidth) {
  // Pushing N bytes through one receiver cannot finish faster than N/bw.
  net::Topology topo{9, 1};
  net::Fabric f(topo, flat());
  sim::Rng rng(GetParam() ^ 0xBEEF);
  std::uint64_t total = 0;
  sim::Time last = 0;
  for (int i = 0; i < 200; ++i) {
    const int src = 1 + static_cast<int>(rng.next_below(8));
    const std::uint64_t bytes = 1 + rng.next_below(1 << 18);
    total += bytes;
    last = std::max(last, f.transfer(src, 0, bytes, 0));
  }
  EXPECT_GE(last, sim::transfer_time(total, 1e9));
}

TEST_P(NetFuzz, InterNodeByteAccountingExact) {
  net::Topology topo{4, 2};
  net::Fabric f(topo, flat());
  sim::Rng rng(GetParam() ^ 0xCAFE);
  std::uint64_t expect = 0;
  for (int i = 0; i < 100; ++i) {
    const int src = static_cast<int>(rng.next_below(8));
    const int dst = static_cast<int>(rng.next_below(8));
    const std::uint64_t bytes = rng.next_below(10'000);
    f.transfer(src, dst, bytes, 0);
    if (!topo.same_node(src, dst)) expect += bytes;
  }
  EXPECT_EQ(f.inter_node_bytes(), expect);
}

TEST_P(NetFuzz, ControlLaneIndependentOfBulkBacklog) {
  net::Topology topo{2, 1};
  net::Fabric f(topo, flat());
  // Saturate the data channels...
  for (int i = 0; i < 20; ++i) f.transfer(0, 1, 1 << 20, 0);
  // ...control messages still arrive at pure latency.
  EXPECT_EQ(f.transfer_control(0, 1, 12345), 12345 + 100);
  EXPECT_EQ(f.transfer_control(1, 1, 777), 777 + 10);
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetFuzz, testing::Values(7u, 13u, 99u));

TEST(NetProperty, LaterDepartNeverEarlierArrival) {
  // Monotonicity: on a fresh fabric pair, delaying departure cannot make
  // the message arrive earlier.
  for (sim::Time d1 : {0, 500, 5000}) {
    net::Topology topo{2, 1};
    net::Fabric f1(topo, flat()), f2(topo, flat());
    const sim::Time a1 = f1.transfer(0, 1, 4096, d1);
    const sim::Time a2 = f2.transfer(0, 1, 4096, d1 + 1000);
    EXPECT_GE(a2, a1);
  }
}
