#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "simbase/error.hpp"
#include "simbase/units.hpp"

namespace smpi = tpio::smpi;
namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

struct Rig {
  net::Topology topo;
  net::Fabric fabric;
  sim::Conductor conductor;
  smpi::Machine machine;

  Rig(int nodes, int ppn, smpi::MpiParams mp = {},
      net::FabricParams fp = simple_fabric())
      : topo{nodes, ppn},
        fabric(topo, fp),
        conductor(topo.nprocs()),
        machine(fabric, mp) {}

  static net::FabricParams simple_fabric() {
    net::FabricParams p;
    p.inter_bw = 1e9;  // 1 byte per ns
    p.intra_bw = 4e9;
    p.inter_latency = 100;
    p.intra_latency = 10;
    return p;
  }

  void run(const std::function<void(smpi::Mpi&)>& prog) {
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      prog(mpi);
    });
  }
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 131 + seed) & 0xFF);
  }
  return v;
}

smpi::MpiParams zero_overhead_params() {
  smpi::MpiParams p;
  p.send_overhead = 0;
  p.recv_overhead = 0;
  p.match_cost = 0;
  p.collective_hop = 0;
  return p;
}

}  // namespace

TEST(MpiP2P, EagerSendRecvDeliversData) {
  Rig rig(2, 1);
  rig.run([&](smpi::Mpi& mpi) {
    const auto data = pattern(1024, 7);
    if (mpi.rank() == 0) {
      mpi.send(1, 42, data);
    } else {
      std::vector<std::byte> buf(1024);
      mpi.recv(0, 42, buf);
      EXPECT_EQ(buf, data);
    }
  });
}

TEST(MpiP2P, EagerSenderDoesNotWaitForReceiver) {
  Rig rig(2, 1, zero_overhead_params());
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      const auto data = pattern(1000, 1);
      mpi.send(1, 0, data);
      // Eager: local completion, no handshake with the (late) receiver.
      EXPECT_LT(mpi.ctx().now(), 100'000);
    } else {
      mpi.ctx().advance(1'000'000);  // receiver shows up late
      std::vector<std::byte> buf(1000);
      mpi.recv(0, 0, buf);
      EXPECT_EQ(buf, pattern(1000, 1));
    }
  });
}

TEST(MpiP2P, RendezvousSenderBlocksUntilReceiverMatches) {
  smpi::MpiParams mp = zero_overhead_params();
  mp.eager_limit = 1024;
  Rig rig(2, 1, mp);
  rig.run([&](smpi::Mpi& mpi) {
    const std::size_t n = 100'000;  // > eager limit -> rendezvous
    if (mpi.rank() == 0) {
      const auto data = pattern(n, 2);
      mpi.send(1, 0, data);
      // Receiver posts at t=1ms; sender cannot complete before that.
      EXPECT_GE(mpi.ctx().now(), sim::milliseconds(1.0));
    } else {
      mpi.ctx().advance(sim::milliseconds(1.0));
      std::vector<std::byte> buf(n);
      mpi.recv(0, 0, buf);
      EXPECT_EQ(buf, pattern(n, 2));
    }
  });
}

TEST(MpiP2P, RendezvousPrepostedStillDelivers) {
  smpi::MpiParams mp = zero_overhead_params();
  mp.eager_limit = 512;
  Rig rig(2, 1, mp);
  rig.run([&](smpi::Mpi& mpi) {
    const std::size_t n = 64 * 1024;
    if (mpi.rank() == 1) {
      std::vector<std::byte> buf(n);
      smpi::Request r = mpi.irecv(0, 5, buf);  // pre-posted
      mpi.wait(r);
      EXPECT_EQ(buf, pattern(n, 3));
    } else {
      mpi.ctx().advance(1000);
      mpi.send(1, 5, pattern(n, 3));
    }
  });
}

TEST(MpiP2P, UnavailableTargetDelaysRendezvousNotEager) {
  smpi::MpiParams mp = zero_overhead_params();
  mp.eager_limit = 1024;
  Rig rig(2, 1, mp);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 1) {
      std::vector<std::byte> small(100), big(10'000);
      smpi::Request r1 = mpi.irecv(0, 1, small);
      smpi::Request r2 = mpi.irecv(0, 2, big);
      // Simulates a blocking file write until t=1ms.
      mpi.set_unavailable_until(sim::milliseconds(1.0));
      mpi.ctx().advance(sim::milliseconds(1.0));
      mpi.wait(r1);
      // Eager message landed during the "write" — completion at arrival,
      // observed now.
      EXPECT_EQ(mpi.ctx().now(), sim::milliseconds(1.0));
      mpi.wait(r2);
      // Rendezvous handshake was deferred to t=1ms, then transferred.
      EXPECT_GE(mpi.ctx().now(), sim::milliseconds(1.0) + 10'000);
    } else {
      // Stagger past the receiver's unavailability declaration so the RTS
      // genuinely lands mid-"write".
      mpi.ctx().advance(10);
      mpi.send(1, 1, pattern(100, 4));
      mpi.send(1, 2, pattern(10'000, 5));
    }
  });
}

TEST(MpiP2P, ProgressThreadServicesRendezvousImmediately) {
  smpi::MpiParams mp = zero_overhead_params();
  mp.eager_limit = 1024;
  mp.progress_thread = true;
  Rig rig(2, 1, mp);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 1) {
      std::vector<std::byte> big(10'000);
      smpi::Request r = mpi.irecv(0, 2, big);
      mpi.set_unavailable_until(sim::milliseconds(1.0));
      mpi.ctx().advance(sim::milliseconds(1.0));
      mpi.wait(r);
      // With a progress thread, the transfer finished long before 1ms.
      EXPECT_EQ(mpi.ctx().now(), sim::milliseconds(1.0));
    } else {
      mpi.send(1, 2, pattern(10'000, 5));
    }
  });
}

TEST(MpiP2P, TagSelectsMessage) {
  Rig rig(2, 1);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 10, pattern(64, 1));
      mpi.send(1, 20, pattern(64, 2));
    } else {
      std::vector<std::byte> a(64), b(64);
      mpi.recv(0, 20, b);  // out of order by tag
      mpi.recv(0, 10, a);
      EXPECT_EQ(a, pattern(64, 1));
      EXPECT_EQ(b, pattern(64, 2));
    }
  });
}

TEST(MpiP2P, FifoOrderPerTag) {
  Rig rig(2, 1);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      for (unsigned i = 0; i < 8; ++i) mpi.send(1, 0, pattern(32, i));
    } else {
      for (unsigned i = 0; i < 8; ++i) {
        std::vector<std::byte> buf(32);
        mpi.recv(0, 0, buf);
        EXPECT_EQ(buf, pattern(32, i)) << "message " << i << " out of order";
      }
    }
  });
}

TEST(MpiP2P, AnySourceMatches) {
  Rig rig(3, 1);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::vector<std::byte> buf(16);
      mpi.recv(smpi::kAnySource, 0, buf);
      mpi.recv(smpi::kAnySource, 0, buf);
    } else {
      mpi.send(0, 0, pattern(16, static_cast<unsigned>(mpi.rank())));
    }
  });
}

TEST(MpiP2P, WaitallCompletesEverything) {
  Rig rig(4, 1);
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(3, std::vector<std::byte>(256));
      std::vector<smpi::Request> reqs;
      for (int s = 1; s < 4; ++s) {
        reqs.push_back(mpi.irecv(s, 0, bufs[static_cast<std::size_t>(s - 1)]));
      }
      mpi.waitall(reqs);
      for (int s = 1; s < 4; ++s) {
        EXPECT_EQ(bufs[static_cast<std::size_t>(s - 1)],
                  pattern(256, static_cast<unsigned>(s)));
      }
    } else {
      mpi.send(0, 0, pattern(256, static_cast<unsigned>(mpi.rank())));
    }
  });
}

TEST(MpiP2P, TestPollsWithoutBlocking) {
  Rig rig(2, 1, zero_overhead_params());
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 1) {
      std::vector<std::byte> buf(64);
      smpi::Request r = mpi.irecv(0, 0, buf);
      EXPECT_FALSE(mpi.test(r));  // sender still sleeping
      mpi.ctx().advance_to(sim::milliseconds(2.0));
      EXPECT_TRUE(mpi.test(r));
      EXPECT_EQ(buf, pattern(64, 9));
    } else {
      mpi.ctx().advance(sim::milliseconds(1.0));
      mpi.send(1, 0, pattern(64, 9));
    }
  });
}

TEST(MpiP2P, MatchCostScalesWithQueueDepth) {
  // A receive that scans a deep unexpected queue pays match_cost per entry.
  smpi::MpiParams mp = zero_overhead_params();
  mp.match_cost = 1000;  // exaggerate
  Rig rig(2, 1, mp);
  rig.run([&](smpi::Mpi& mpi) {
    const int nmsgs = 50;
    if (mpi.rank() == 0) {
      for (int i = 0; i < nmsgs; ++i) {
        mpi.send(1, i, pattern(8, static_cast<unsigned>(i)));
      }
    } else {
      mpi.ctx().advance_to(sim::milliseconds(1.0));
      std::vector<std::byte> buf(8);
      const sim::Time before = mpi.ctx().now();
      // Match the LAST message: scans all 50 entries.
      mpi.recv(0, nmsgs - 1, buf);
      EXPECT_GE(mpi.ctx().now() - before, 50 * 1000);
    }
  });
}

TEST(MpiP2P, IncastSerializesOnAggregatorNic) {
  // 8 single-rank nodes send 1 MB each to rank 0: arrivals serialized at
  // rank 0's receive channel -> total >= 8 MB / bw.
  smpi::MpiParams mp = zero_overhead_params();
  mp.eager_limit = 16 * sim::MiB;  // keep it eager to isolate the NIC effect
  Rig rig(9, 1, mp);
  rig.run([&](smpi::Mpi& mpi) {
    const std::size_t n = 1 << 20;
    if (mpi.rank() == 0) {
      std::vector<std::vector<std::byte>> bufs(8, std::vector<std::byte>(n));
      std::vector<smpi::Request> reqs;
      for (int s = 1; s <= 8; ++s) {
        reqs.push_back(mpi.irecv(s, 0, bufs[static_cast<std::size_t>(s - 1)]));
      }
      mpi.waitall(reqs);
      // 8 MiB at 1 byte/ns ~ 8.39 ms serialized.
      EXPECT_GE(mpi.ctx().now(), 8 * 1'048'576);
      EXPECT_LE(mpi.ctx().now(), 8 * 1'048'576 + 100'000);
    } else {
      mpi.send(0, 0, pattern(n, static_cast<unsigned>(mpi.rank())));
    }
  });
}

TEST(MpiP2P, SelfSendOnNodeUsesMemoryChannel) {
  Rig rig(1, 2, zero_overhead_params());
  rig.run([&](smpi::Mpi& mpi) {
    if (mpi.rank() == 0) {
      mpi.send(1, 0, pattern(4000, 3));
    } else {
      std::vector<std::byte> buf(4000);
      mpi.recv(0, 0, buf);
      // 4000 B at 4 B/ns + 10 ns latency.
      EXPECT_EQ(mpi.ctx().now(), 1010);
    }
  });
}

TEST(MpiP2P, BufferTooSmallThrows) {
  Rig rig(2, 1);
  EXPECT_THROW(rig.run([&](smpi::Mpi& mpi) {
                 if (mpi.rank() == 0) {
                   mpi.send(1, 0, pattern(128, 0));
                 } else {
                   std::vector<std::byte> buf(64);
                   mpi.recv(0, 0, buf);
                 }
               }),
               tpio::Error);
}

TEST(MpiP2P, MismatchedTagDeadlocks) {
  Rig rig(2, 1);
  EXPECT_THROW(rig.run([&](smpi::Mpi& mpi) {
                 if (mpi.rank() == 0) {
                   mpi.send(1, 1, pattern(8, 0));
                   std::vector<std::byte> b(8);
                   mpi.recv(1, 1, b);
                 } else {
                   std::vector<std::byte> b(8);
                   mpi.recv(0, 99, b);  // tag never sent
                 }
               }),
               tpio::Error);
}

TEST(MpiP2P, DeterministicTimesAcrossRuns) {
  auto once = [] {
    Rig rig(4, 2);
    std::vector<sim::Time> finish(8);
    rig.run([&](smpi::Mpi& mpi) {
      // All-to-one with mixed sizes.
      if (mpi.rank() == 0) {
        std::vector<std::vector<std::byte>> bufs;
        std::vector<smpi::Request> reqs;
        for (int s = 1; s < 8; ++s) {
          bufs.emplace_back(static_cast<std::size_t>(s) * 10'000);
          reqs.push_back(mpi.irecv(s, 0, bufs.back()));
        }
        mpi.waitall(reqs);
      } else {
        mpi.send(0, 0,
                 pattern(static_cast<std::size_t>(mpi.rank()) * 10'000,
                         static_cast<unsigned>(mpi.rank())));
      }
      finish[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
    });
    return finish;
  };
  EXPECT_EQ(once(), once());
}
