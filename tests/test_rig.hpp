#pragma once

// Shared test harness: a complete simulated cluster (fabric + MPI machine +
// parallel file system + conductor) with cheap-to-reason-about parameters.

#include <functional>
#include <memory>
#include <vector>

#include "core/engine.hpp"
#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"

namespace tpio::test {

struct ClusterSpec {
  int nodes = 4;
  int ppn = 2;
  int ranks = 0;  // 0 = nodes * ppn; else a partially-filled last node
  net::FabricParams fabric;
  smpi::MpiParams mpi;
  pfs::PfsParams pfs;

  ClusterSpec() {
    fabric.inter_bw = 1e9;
    fabric.intra_bw = 4e9;
    fabric.inter_latency = 100;
    fabric.intra_latency = 10;
    pfs.num_targets = 4;
    pfs.stripe_size = 4096;
    pfs.target_bw = 1e9;
    pfs.client_bw = 4e9;
    pfs.request_overhead = 100;
    pfs.storage_latency = 10;
  }
};

class Cluster {
 public:
  explicit Cluster(const ClusterSpec& spec = ClusterSpec{})
      : topo_{spec.nodes, spec.ppn, spec.ranks},
        fabric_(topo_, spec.fabric),
        conductor_(topo_.nprocs()),
        machine_(fabric_, spec.mpi),
        storage_(spec.pfs, &fabric_) {}

  int nprocs() const { return topo_.nprocs(); }
  net::Topology topology() const { return topo_; }
  net::Fabric& fabric() { return fabric_; }
  pfs::StorageSystem& storage() { return storage_; }
  sim::Conductor& conductor() { return conductor_; }

  /// Run `prog` on every rank with a fresh Mpi facade.
  void run(const std::function<void(smpi::Mpi&)>& prog) {
    conductor_.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine_, ctx);
      prog(mpi);
    });
  }

 private:
  net::Topology topo_;
  net::Fabric fabric_;
  sim::Conductor conductor_;
  smpi::Machine machine_;
  pfs::StorageSystem storage_;
};

/// Deterministic content for file offset `o` (non-periodic).
inline std::byte file_byte(std::uint64_t o) {
  return static_cast<std::byte>((o * 131 + o / 977 + 5) & 0xFF);
}

/// Build the local buffer for a view, filled with file_byte() content.
inline std::vector<std::byte> fill_view(const coll::FileView& v) {
  std::vector<std::byte> data(v.total_bytes());
  std::size_t pos = 0;
  for (const coll::Extent& e : v.extents) {
    for (std::uint64_t i = 0; i < e.length; ++i) {
      data[pos++] = file_byte(e.offset + i);
    }
  }
  return data;
}

}  // namespace tpio::test
