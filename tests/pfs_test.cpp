#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "simbase/error.hpp"

namespace pfs = tpio::pfs;
namespace sim = tpio::sim;

namespace {

pfs::PfsParams fast_params() {
  pfs::PfsParams p;
  p.num_targets = 4;
  p.stripe_size = 1024;
  p.target_bw = 1e9;   // 1 B/ns
  p.client_bw = 4e9;   // 4 B/ns
  p.request_overhead = 100;
  p.storage_latency = 10;
  p.op_overhead = 0;  // timing tests assert exact service times
  return p;
}

std::byte expected_byte(std::uint64_t o) {
  // Non-periodic in o (the o/1000 term breaks any power-of-two period), so
  // misplaced blocks can never alias to the right content.
  return static_cast<std::byte>((o * 31 + o / 1000 + 7) & 0xFF);
}

std::vector<std::byte> make_region(std::uint64_t off, std::uint64_t len) {
  std::vector<std::byte> v(len);
  for (std::uint64_t i = 0; i < len; ++i) v[i] = expected_byte(off + i);
  return v;
}

/// Run `fn(ctx)` on a single simulated rank.
void solo(const std::function<void(sim::RankCtx&)>& fn) {
  sim::Conductor c(1);
  c.run(fn);
}

}  // namespace

TEST(Pfs, StoreModeRoundTrip) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    auto data = make_region(0, 5000);
    f->write_at(ctx, 0, 0, data);
    EXPECT_EQ(f->read_back(0, 5000), data);
    EXPECT_EQ(f->size(), 5000u);
  });
}

TEST(Pfs, StoreModeScatteredWrites) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    // Write out of order, unaligned, spanning chunk boundaries.
    f->write_at(ctx, 0, 3000, make_region(3000, 2000));
    f->write_at(ctx, 0, 0, make_region(0, 3000));
    EXPECT_EQ(f->verify(expected_byte), "");
  });
}

TEST(Pfs, DigestModeVerifiesWithoutStoringBytes) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    f->write_at(ctx, 0, 4096, make_region(4096, 4096));
    f->write_at(ctx, 0, 0, make_region(0, 4096));
    EXPECT_EQ(f->verify(expected_byte), "");
  });
}

TEST(Pfs, DigestModeDetectsCorruption) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    auto data = make_region(0, 2048);
    data[777] ^= std::byte{0x1};
    f->write_at(ctx, 0, 0, data);
    EXPECT_NE(f->verify(expected_byte), "");
  });
}

TEST(Pfs, DigestModeDetectsMisplacedBytes) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    // Swap two regions: same bytes, wrong offsets.
    f->write_at(ctx, 0, 0, make_region(1024, 1024));
    f->write_at(ctx, 0, 1024, make_region(0, 1024));
    EXPECT_NE(f->verify(expected_byte), "");
  });
}

TEST(Pfs, VerifyDetectsHoles) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    f->write_at(ctx, 0, 0, make_region(0, 1000));
    f->write_at(ctx, 0, 2000, make_region(2000, 1000));  // gap [1000,2000)
    EXPECT_NE(f->verify(expected_byte), "");
  });
}

TEST(Pfs, VerifyDetectsDoubleWrites) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    f->write_at(ctx, 0, 0, make_region(0, 1000));
    f->write_at(ctx, 0, 0, make_region(0, 1000));
    EXPECT_NE(f->verify(expected_byte), "");
  });
}

TEST(Pfs, NoneModeRejectsVerification) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    f->write_at(ctx, 0, 0, make_region(0, 512));
    EXPECT_EQ(f->size(), 512u);
    EXPECT_THROW((void)f->verify(expected_byte), tpio::Error);
    EXPECT_THROW((void)f->read_back(0, 1), tpio::Error);
  });
}

TEST(Pfs, BlockingWriteAdvancesClockByServiceTime) {
  auto p = fast_params();
  p.request_overhead = 0;
  p.storage_latency = 0;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    // 1024 B: injection 256ns (4B/ns), then target 1024ns (1B/ns).
    f->write_at(ctx, 0, 0, make_region(0, 1024));
    EXPECT_EQ(ctx.now(), 256 + 1024);
  });
}

TEST(Pfs, StripingParallelizesAcrossTargets) {
  auto p = fast_params();
  p.request_overhead = 0;
  p.storage_latency = 0;
  p.client_bw = 1e12;  // make injection negligible
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    // 4 chunks of 1024 land on 4 distinct targets: ~1024ns total, not 4096.
    f->write_at(ctx, 0, 0, make_region(0, 4096));
    EXPECT_LE(ctx.now(), 1100);
  });
}

TEST(Pfs, SameTargetChunksSerialize) {
  auto p = fast_params();
  p.num_targets = 1;
  p.request_overhead = 0;
  p.storage_latency = 0;
  p.client_bw = 1e12;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    f->write_at(ctx, 0, 0, make_region(0, 4096));
    EXPECT_GE(ctx.now(), 4096);
  });
}

TEST(Pfs, AsyncWriteReturnsImmediatelyCompletesLater) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    auto data = make_region(0, 100'000);
    pfs::WriteOp op = f->iwrite_at(ctx, 0, 0, data);
    const sim::Time issued = ctx.now();
    EXPECT_LT(issued, 1000);  // issue cost is just the baton action
    const sim::Time scheduled = op.completion();
    EXPECT_GT(scheduled, issued + 20'000);
    ctx.advance(5'000);  // overlap with "computation"
    f->wait(ctx, op);
    EXPECT_EQ(ctx.now(), scheduled);
    EXPECT_EQ(f->verify(expected_byte), "");
  });
}

TEST(Pfs, AsyncOverlapBeatsTwoBlockingWrites) {
  auto run = [](bool async) {
    pfs::StorageSystem sys(fast_params(), nullptr);
    auto f = sys.create("t", pfs::Integrity::None);
    sim::Time finish = 0;
    solo([&](sim::RankCtx& ctx) {
      auto a = make_region(0, 50'000);
      auto b = make_region(50'000, 50'000);
      if (async) {
        auto o1 = f->iwrite_at(ctx, 0, 0, a);
        auto o2 = f->iwrite_at(ctx, 0, 50'000, b);
        f->wait(ctx, o1);
        f->wait(ctx, o2);
      } else {
        f->write_at(ctx, 0, 0, a);
        f->write_at(ctx, 0, 50'000, b);
      }
      finish = ctx.now();
    });
    return finish;
  };
  // With 4 targets and 1 KiB stripes both patterns keep targets busy, but
  // blocking serializes injection+service rounds; async pipelines them.
  EXPECT_LT(run(true), run(false));
}

TEST(Pfs, AioPenaltySlowsOnlyAsync) {
  auto p = fast_params();
  p.aio_penalty = 4.0;
  pfs::StorageSystem sys(p, nullptr);
  auto fa = sys.create("a", pfs::Integrity::None);
  auto fb = sys.create("b", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    auto data = make_region(0, 10'000);
    fa->write_at(ctx, 0, 0, data);
    const sim::Time blocking = ctx.now();
    auto op = fb->iwrite_at(ctx, 0, 0, data);
    fb->wait(ctx, op);
    const sim::Time async = ctx.now() - blocking;
    // The async service path carries the 4x penalty; the blocking one not.
    EXPECT_GT(async, 2 * blocking);
  });
}

TEST(Pfs, ConcurrentAggregatorsShareTargets) {
  auto p = fast_params();
  p.client_bw = 1e12;
  p.request_overhead = 0;
  p.storage_latency = 0;
  p.num_targets = 1;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::Digest);
  sim::Conductor c(2);
  std::vector<sim::Time> done(2);
  c.run([&](sim::RankCtx& ctx) {
    const std::uint64_t off = static_cast<std::uint64_t>(ctx.rank()) * 8192;
    f->write_at(ctx, ctx.rank(), off, make_region(off, 8192));
    done[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  // One target serves 16 KiB total: the later finisher sees ~16384ns.
  EXPECT_GE(std::max(done[0], done[1]), 16'000);
  EXPECT_EQ(f->verify(expected_byte), "");
}

TEST(Pfs, NoiseDeterministicPerSeed) {
  auto run = [](std::uint64_t seed) {
    auto p = fast_params();
    p.noise_sigma = 0.1;
    p.noise_seed = seed;
    pfs::StorageSystem sys(p, nullptr);
    auto f = sys.create("t", pfs::Integrity::None);
    sim::Time t = 0;
    solo([&](sim::RankCtx& ctx) {
      f->write_at(ctx, 0, 0, make_region(0, 50'000));
      t = ctx.now();
    });
    return t;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Pfs, SystemBytesCounter) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto a = sys.create("a", pfs::Integrity::None);
  auto b = sys.create("b", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    a->write_at(ctx, 0, 0, make_region(0, 1000));
    b->write_at(ctx, 0, 0, make_region(0, 500));
  });
  EXPECT_EQ(sys.bytes_written(), 1500u);
}
