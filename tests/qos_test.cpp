// Property/fuzz tests of the storage QoS layer: FIFO service queues are
// bit-identical to the historical bare Timeline, fair-share stretch is
// bounded by the active tenant count, strict priority never hurts the top
// class, and randomized end-to-end tenant mixes conserve every tenant's
// bytes with no cross-tenant content bleed under Integrity::Store.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"
#include "pfs/qos.hpp"
#include "sched/timeline.hpp"
#include "simbase/rng.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

namespace {

struct Request {
  int tenant = 0;
  sim::Time earliest = 0;
  sim::Duration duration = 0;
};

/// Random request stream in nondecreasing `earliest` order — the only
/// order reserve() is ever called in (the baton serializes commits in
/// virtual-time order).
std::vector<Request> random_stream(std::uint64_t seed, int tenants, int n) {
  sim::Rng rng(seed);
  std::vector<Request> out;
  sim::Time t = 0;
  for (int i = 0; i < n; ++i) {
    t += static_cast<sim::Time>(rng.next_u64() % 500);
    Request r;
    r.tenant = static_cast<int>(rng.next_u64() % static_cast<std::uint64_t>(tenants));
    r.earliest = t;
    r.duration = 1 + static_cast<sim::Duration>(rng.next_u64() % 1000);
    out.push_back(r);
  }
  return out;
}

TEST(ServiceQueue, FifoBitIdenticalToTimelineUnderNoise) {
  for (std::uint64_t seed : {1ull, 7ull, 99ull}) {
    // Same noise seed on both sides: the queue must consume the stream in
    // exactly the Timeline's draw order and rounding.
    sim::NoiseModel na(0.2, seed);
    sim::NoiseModel nb(0.2, seed);
    sim::Timeline tl("t");
    tl.set_noise(&na);
    pfs::ServiceQueue q("q", pfs::QosPolicy::Fifo);
    q.set_noise(&nb);
    const pfs::TenantClass solo;
    for (const Request& r : random_stream(seed, /*tenants=*/1, 200)) {
      const auto a = tl.reserve(r.earliest, r.duration);
      const auto b = q.reserve(r.earliest, r.duration, solo);
      ASSERT_EQ(a.start, b.start);
      ASSERT_EQ(a.end, b.end);
    }
    EXPECT_EQ(tl.next_free(), q.next_free());
    EXPECT_EQ(tl.busy_time(), q.busy_time());
  }
}

TEST(ServiceQueue, SoloFairShareAndPriorityCollapseToFifo) {
  for (pfs::QosPolicy p :
       {pfs::QosPolicy::FairShare, pfs::QosPolicy::Priority}) {
    sim::Timeline tl("t");
    pfs::ServiceQueue q("q", p);
    const pfs::TenantClass solo;
    for (const Request& r : random_stream(3, /*tenants=*/1, 200)) {
      const auto a = tl.reserve(r.earliest, r.duration);
      const auto b = q.reserve(r.earliest, r.duration, solo);
      ASSERT_EQ(a.start, b.start) << pfs::to_string(p);
      ASSERT_EQ(a.end, b.end) << pfs::to_string(p);
    }
    EXPECT_EQ(q.stats(0).cross_wait, 0) << pfs::to_string(p);
  }
}

TEST(ServiceQueue, FairShareStretchBoundedByTenantCount) {
  // Equal weights: however the requests interleave, no request's service
  // may stretch beyond (active tenants) x its nominal duration, and the
  // per-tenant rollup must stay internally consistent.
  for (std::uint64_t seed : {11ull, 12ull, 13ull, 14ull}) {
    const int tenants = 2 + static_cast<int>(seed % 3);
    pfs::ServiceQueue q("q", pfs::QosPolicy::FairShare);
    for (const Request& r : random_stream(seed, tenants, 400)) {
      pfs::TenantClass cls;
      cls.id = r.tenant;
      const auto iv = q.reserve(r.earliest, r.duration, cls);
      const sim::Duration served = iv.end - iv.start;
      ASSERT_GE(served, r.duration);
      ASSERT_LE(served, r.duration * tenants);
    }
    for (int t = 0; t < tenants; ++t) {
      const pfs::QosStats st = q.stats(t);
      EXPECT_LE(st.peak_active, tenants);
      EXPECT_GE(st.busy, 0);
    }
  }
}

TEST(ServiceQueue, FairShareNeverDelaysStartBehindOtherTenants) {
  // A fair-share lane starts at max(earliest, own previous end): another
  // tenant's backlog stretches service but never blocks admission.
  pfs::ServiceQueue q("q", pfs::QosPolicy::FairShare);
  pfs::TenantClass heavy;  // tenant 0 builds a deep backlog
  heavy.id = 0;
  q.reserve(0, 1'000'000, heavy);
  pfs::TenantClass light;
  light.id = 1;
  const auto iv = q.reserve(100, 10, light);
  EXPECT_EQ(iv.start, 100);
  EXPECT_EQ(iv.end, 120);  // stretched 2x by the active heavy tenant
}

TEST(ServiceQueue, PriorityTopClassNeverSlowerThanFifo) {
  // Same request stream through a strict-priority queue and a FIFO queue:
  // the top-priority tenant's completions under priority are <= its FIFO
  // completions, request by request (zero noise).
  for (std::uint64_t seed : {21ull, 22ull, 23ull}) {
    const int tenants = 3;
    pfs::ServiceQueue prio("p", pfs::QosPolicy::Priority);
    pfs::ServiceQueue fifo("f", pfs::QosPolicy::Fifo);
    for (const Request& r : random_stream(seed, tenants, 400)) {
      pfs::TenantClass cls;
      cls.id = r.tenant;
      cls.priority = (r.tenant == 0) ? 1 : 0;  // tenant 0 is the top class
      const auto a = prio.reserve(r.earliest, r.duration, cls);
      const auto b = fifo.reserve(r.earliest, r.duration, cls);
      if (r.tenant == 0) {
        ASSERT_LE(a.end, b.end);
      }
    }
  }
}

TEST(ServiceQueue, PriorityLowClassWaitsBehindHigh) {
  pfs::ServiceQueue q("q", pfs::QosPolicy::Priority);
  pfs::TenantClass hi;
  hi.id = 0;
  hi.priority = 2;
  pfs::TenantClass lo;
  lo.id = 1;
  lo.priority = 0;
  q.reserve(0, 1000, hi);
  const auto iv = q.reserve(0, 10, lo);
  EXPECT_EQ(iv.start, 1000);  // waits out the whole high-priority horizon
  const auto hi2 = q.reserve(0, 10, hi);
  EXPECT_EQ(hi2.start, 1000);  // unaffected by the low-priority commit
}

TEST(ServiceQueue, RejectsMalformedTenants) {
  pfs::ServiceQueue q("q", pfs::QosPolicy::FairShare);
  pfs::TenantClass bad;
  bad.id = -1;
  EXPECT_THROW(q.reserve(0, 1, bad), tpio::Error);
  bad.id = 0;
  bad.weight = 0.0;
  EXPECT_THROW(q.reserve(0, 1, bad), tpio::Error);
}

// ---------------------------------------------------------------------------
// End-to-end randomized tenant mixes.
// ---------------------------------------------------------------------------

xp::RunSpec tenant_spec(std::uint64_t pick, int procs) {
  xp::RunSpec s;
  s.platform = xp::scaled(xp::ibex());
  s.nprocs = procs;
  s.options.cb_size = 4ull << 20;
  s.verify = true;
  switch (pick % 3) {
    case 0:
      s.workload = wl::make_ior(1u << 19);
      s.options.overlap = coll::OverlapMode::WriteComm2;
      break;
    case 1:
      s.workload = wl::make_tile256(2, 256);
      s.options.overlap = coll::OverlapMode::None;
      break;
    default:
      s.workload = wl::make_flash(8, 2, 16 * 1024);
      s.options.overlap = coll::OverlapMode::Write;
      break;
  }
  return s;
}

TEST(QosFuzz, RandomMixesConserveBytesPerTenant) {
  // Randomized tenant mixes (count, shapes, arrivals, QoS policy): every
  // tenant's file must verify byte-exactly against its own workload —
  // byte conservation and no cross-tenant content bleed under
  // Integrity::Store — and the result geometry must be internally
  // consistent.
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    sim::Rng rng(sim::Rng::derive_seed(0xC0, seed));
    xp::MultiRunSpec m;
    const int nt = 1 + static_cast<int>(rng.next_u64() % 3);
    for (int t = 0; t < nt; ++t) {
      const int procs = (rng.next_u64() % 2) ? 8 : 16;
      m.tenants.push_back(tenant_spec(rng.next_u64(), procs));
    }
    const std::uint64_t qpick = rng.next_u64() % 3;
    m.qos = qpick == 0 ? pfs::QosPolicy::Fifo
                       : (qpick == 1 ? pfs::QosPolicy::FairShare
                                     : pfs::QosPolicy::Priority);
    if (m.qos == pfs::QosPolicy::Priority) {
      for (int t = 0; t < nt; ++t) {
        m.priorities.push_back(static_cast<int>(rng.next_u64() % 3));
      }
    }
    m.arrival.model =
        (rng.next_u64() % 2) ? xp::ArrivalModel::Poisson : xp::ArrivalModel::Fixed;
    m.arrival.gap = sim::microseconds(200);
    m.seed = seed;
    m.store_content = true;

    const xp::MultiRunResult r = xp::execute_multi(m);
    ASSERT_EQ(r.tenants.size(), static_cast<std::size_t>(nt));
    sim::Time last_completion = 0;
    for (int t = 0; t < nt; ++t) {
      const xp::RunResult& run = r.tenants[static_cast<std::size_t>(t)].run;
      EXPECT_EQ(run.verify_error, "") << "seed " << seed << " tenant " << t;
      EXPECT_EQ(run.io_error, "") << "seed " << seed << " tenant " << t;
      EXPECT_GT(run.bytes, 0u);
      EXPECT_GE(run.completion, run.arrival);
      EXPECT_EQ(run.makespan, run.completion - run.arrival);
      last_completion = std::max(last_completion, run.completion);
      EXPECT_GT(r.tenants[static_cast<std::size_t>(t)].qos.requests, 0u);
    }
    EXPECT_EQ(r.makespan, last_completion);
  }
}

TEST(QosFuzz, FairShareSlowdownBoundedByTenantCount) {
  // N identical tenants arriving together under fair share: tenants only
  // interact through the storage queues (disjoint node blocks), where the
  // per-request stretch is bounded by N — so the end-to-end slowdown is
  // bounded by N (small tolerance for schedule-composition effects).
  const int nt = 3;
  xp::MultiRunSpec m;
  for (int t = 0; t < nt; ++t) m.tenants.push_back(tenant_spec(0, 16));
  m.qos = pfs::QosPolicy::FairShare;
  m.seed = 31;
  const xp::MultiRunResult r = xp::execute_multi(m, /*with_baselines=*/true);
  for (int t = 0; t < nt; ++t) {
    const double sd = r.tenants[static_cast<std::size_t>(t)].slowdown;
    EXPECT_GE(sd, 1.0) << "tenant " << t;
    EXPECT_LE(sd, static_cast<double>(nt) * 1.05) << "tenant " << t;
  }
}

TEST(QosFuzz, StrictPriorityTopTenantNeverSlowerThanFifo) {
  // Same 3-tenant mix under FIFO and under strict priority with tenant 0
  // on top (zero noise, fixed schedulers): the top tenant's turnaround
  // under priority must not exceed its FIFO turnaround.
  xp::MultiRunSpec fifo;
  fifo.tenants = {tenant_spec(0, 16), tenant_spec(1, 16), tenant_spec(2, 16)};
  fifo.seed = 37;
  fifo.qos = pfs::QosPolicy::Fifo;

  xp::MultiRunSpec prio = fifo;
  prio.qos = pfs::QosPolicy::Priority;
  prio.priorities = {2, 0, 0};

  const xp::MultiRunResult a = xp::execute_multi(fifo);
  const xp::MultiRunResult b = xp::execute_multi(prio);
  EXPECT_LE(b.tenants[0].run.makespan, a.tenants[0].run.makespan);
  // And the interference accounting must see it: the top tenant's
  // cross-tenant wait under priority is bounded by its FIFO wait.
  EXPECT_LE(b.tenants[0].qos.cross_wait, a.tenants[0].qos.cross_wait);
}

}  // namespace
