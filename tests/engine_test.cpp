#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "core/engine.hpp"
#include "simbase/error.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

/// View generators ------------------------------------------------------

/// Contiguous 1-D block per rank (IOR-like).
coll::FileView block_view(int rank, int /*P*/, std::uint64_t n) {
  coll::FileView v;
  v.extents.push_back(coll::Extent{static_cast<std::uint64_t>(rank) * n, n});
  return v;
}

/// Strided view (tile-like): rank owns `rows` pieces of `piece` bytes with
/// stride P*piece (row-major interleave of P columns).
coll::FileView strided_view(int rank, int P, std::uint64_t piece, int rows) {
  coll::FileView v;
  for (int r = 0; r < rows; ++r) {
    const std::uint64_t off =
        (static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(P) +
         static_cast<std::uint64_t>(rank)) *
        piece;
    v.extents.push_back(coll::Extent{off, piece});
  }
  return v;
}

/// Irregular view: deterministic pseudo-random disjoint extents per rank.
coll::FileView ragged_view(int rank, int P, std::uint64_t chunk, int pieces) {
  // Global layout: sequence of `P * pieces` chunks; chunk k belongs to rank
  // (k*7+3) % P — deterministic and covering.
  coll::FileView v;
  const int total = P * pieces;
  for (int k = 0; k < total; ++k) {
    if ((k * 7 + 3) % P == rank) {
      v.extents.push_back(
          coll::Extent{static_cast<std::uint64_t>(k) * chunk, chunk});
    }
  }
  return v;
}

struct Config {
  coll::OverlapMode overlap;
  coll::Transfer transfer;
};

std::string config_name(const testing::TestParamInfo<Config>& info) {
  std::string s = coll::to_string(info.param.overlap);
  s += "_";
  s += coll::to_string(info.param.transfer);
  for (char& c : s) {
    if (c == '-') c = '_';
  }
  return s;
}

class CollectiveWrite : public testing::TestWithParam<Config> {};

/// Run a collective write with per-rank views from `make_view` and verify
/// the file contents byte-for-byte.
void run_and_verify(
    Cluster& cluster, const coll::Options& opt,
    const std::function<coll::FileView(int rank, int P)>& make_view,
    pfs::Integrity integrity = pfs::Integrity::Store) {
  auto file = cluster.storage().create("out", integrity);
  std::vector<coll::Result> results(
      static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = make_view(mpi.rank(), mpi.size());
    const auto data = fill_view(view);
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, opt);
  });
  ASSERT_EQ(file->verify(file_byte), "");
  // Every rank reports the same global geometry.
  for (const auto& r : results) {
    EXPECT_EQ(r.cycles, results[0].cycles);
    EXPECT_EQ(r.aggregators, results[0].aggregators);
    EXPECT_EQ(r.bytes_global, results[0].bytes_global);
  }
}

coll::Options base_options(const Config& cfg, std::uint64_t cb = 16384) {
  coll::Options o;
  o.cb_size = cb;
  o.overlap = cfg.overlap;
  o.transfer = cfg.transfer;
  return o;
}

}  // namespace

TEST_P(CollectiveWrite, BlockViewCorrect) {
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam()),
                 [](int r, int P) { return block_view(r, P, 20'000); });
}

TEST_P(CollectiveWrite, StridedViewCorrect) {
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam()), [](int r, int P) {
    return strided_view(r, P, 512, 24);
  });
}

TEST_P(CollectiveWrite, TinyPiecesManySegments) {
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam(), 4096), [](int r, int P) {
    return strided_view(r, P, 64, 40);
  });
}

TEST_P(CollectiveWrite, RaggedViewCorrect) {
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam()), [](int r, int P) {
    return ragged_view(r, P, 700, 12);
  });
}

TEST_P(CollectiveWrite, SingleCycleJob) {
  // Everything fits in one (sub-)buffer: overlap degenerates gracefully.
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam(), 1 << 20),
                 [](int r, int P) { return block_view(r, P, 1000); });
}

TEST_P(CollectiveWrite, UnevenContributions) {
  // Rank r owns r+1 KiB: aggregator loads are skewed.
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam()), [](int r, int P) {
    coll::FileView v;
    std::uint64_t off = 0;
    for (int k = 0; k < r; ++k) off += static_cast<std::uint64_t>(k + 1) * 1024;
    v.extents.push_back(
        coll::Extent{off, static_cast<std::uint64_t>(r + 1) * 1024});
    (void)P;
    return v;
  });
}

TEST_P(CollectiveWrite, SomeRanksContributeNothing) {
  Cluster cluster;
  run_and_verify(cluster, base_options(GetParam()), [](int r, int P) {
    coll::FileView v;
    if (r % 2 == 0) {
      v.extents.push_back(
          coll::Extent{static_cast<std::uint64_t>(r / 2) * 8000, 8000});
    }
    (void)P;
    return v;
  });
}

TEST_P(CollectiveWrite, DigestIntegrityMode) {
  Cluster cluster;
  run_and_verify(
      cluster, base_options(GetParam()),
      [](int r, int P) { return strided_view(r, P, 1024, 16); },
      pfs::Integrity::Digest);
}

TEST_P(CollectiveWrite, SingleAggregatorForced) {
  Cluster cluster;
  coll::Options o = base_options(GetParam());
  o.num_aggregators = 1;
  run_and_verify(cluster, o,
                 [](int r, int P) { return block_view(r, P, 12'000); });
}

TEST_P(CollectiveWrite, ManyAggregatorsForced) {
  Cluster cluster;  // 8 ranks
  coll::Options o = base_options(GetParam());
  o.num_aggregators = 8;
  run_and_verify(cluster, o,
                 [](int r, int P) { return block_view(r, P, 9'000); });
}

TEST_P(CollectiveWrite, NoStripeAlignment) {
  Cluster cluster;
  coll::Options o = base_options(GetParam());
  o.stripe_align = false;
  run_and_verify(cluster, o,
                 [](int r, int P) { return block_view(r, P, 10'001); });
}

TEST_P(CollectiveWrite, DeterministicMakespan) {
  auto once = [&] {
    Cluster cluster;
    auto file = cluster.storage().create("out", pfs::Integrity::None);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto view = strided_view(mpi.rank(), mpi.size(), 768, 10);
      const auto data = fill_view(view);
      coll::collective_write(mpi, *file, view, data,
                             base_options(GetParam()));
    });
    return cluster.conductor().makespan();
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CollectiveWrite,
    testing::Values(
        Config{coll::OverlapMode::None, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::Comm, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::Write, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::WriteComm, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::WriteComm2, coll::Transfer::TwoSided},
        Config{coll::OverlapMode::None, coll::Transfer::OneSidedFence},
        Config{coll::OverlapMode::Comm, coll::Transfer::OneSidedFence},
        Config{coll::OverlapMode::Write, coll::Transfer::OneSidedFence},
        Config{coll::OverlapMode::WriteComm, coll::Transfer::OneSidedFence},
        Config{coll::OverlapMode::WriteComm2, coll::Transfer::OneSidedFence},
        Config{coll::OverlapMode::None, coll::Transfer::OneSidedLock},
        Config{coll::OverlapMode::Comm, coll::Transfer::OneSidedLock},
        Config{coll::OverlapMode::Write, coll::Transfer::OneSidedLock},
        Config{coll::OverlapMode::WriteComm, coll::Transfer::OneSidedLock},
        Config{coll::OverlapMode::WriteComm2, coll::Transfer::OneSidedLock}),
    config_name);

// ---------------------------------------------------------------------------
// Non-parameterized engine behaviour
// ---------------------------------------------------------------------------

TEST(CollectiveWriteMisc, MismatchedBufferThrows) {
  Cluster cluster;
  auto file = cluster.storage().create("out", pfs::Integrity::None);
  EXPECT_THROW(cluster.run([&](tpio::smpi::Mpi& mpi) {
                 coll::FileView v = block_view(mpi.rank(), mpi.size(), 100);
                 std::vector<std::byte> data(50);  // wrong size
                 coll::collective_write(mpi, *file, v, data, coll::Options{});
               }),
               tpio::Error);
}

TEST(CollectiveWriteMisc, EmptyJobCompletes) {
  Cluster cluster;
  auto file = cluster.storage().create("out", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    coll::FileView v;
    auto res = coll::collective_write(mpi, *file, v, {}, coll::Options{});
    EXPECT_EQ(res.cycles, 0);
    EXPECT_EQ(res.bytes_global, 0u);
  });
  EXPECT_EQ(file->size(), 0u);
}

TEST(CollectiveWriteMisc, MoreAggregatorsThanStripesTrimsCleanly) {
  // 8 ranks x 512 B = one 4096 B stripe; four requested aggregators with
  // stripe alignment collapse to a single populated file domain. The empty
  // trailing aggregators are trimmed: every rank reports one aggregator
  // and the write is still complete and correct.
  Cluster cluster;
  auto file = cluster.storage().create("out", pfs::Integrity::Store);
  std::vector<coll::Result> results(
      static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto view = block_view(mpi.rank(), mpi.size(), 512);
    const auto data = fill_view(view);
    coll::Options o;
    o.cb_size = 16384;
    o.num_aggregators = 4;
    o.overlap = coll::OverlapMode::WriteComm2;
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, o);
  });
  ASSERT_EQ(file->verify(file_byte), "");
  for (const auto& r : results) {
    EXPECT_EQ(r.aggregators, 1);
    EXPECT_EQ(r.bytes_global, 4096u);
  }
}

TEST(CollectiveWriteMisc, TimingsAccountedAndTotalCovers) {
  Cluster cluster;
  auto file = cluster.storage().create("out", pfs::Integrity::None);
  std::vector<coll::Result> results(static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto view = block_view(mpi.rank(), mpi.size(), 30'000);
    const auto data = fill_view(view);
    coll::Options o;
    o.cb_size = 16384;
    o.overlap = coll::OverlapMode::None;
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, o);
  });
  for (const auto& r : results) {
    const auto& t = r.timings;
    EXPECT_GT(t.total, 0);
    // All eight buckets: omitting gather hid hierarchical-shuffle time from
    // the accounting identity.
    EXPECT_LE(t.meta + t.pack + t.gather + t.forward + t.shuffle + t.sync +
                  t.write + t.backoff,
              t.total);
    EXPECT_GT(t.shuffle + t.write + t.sync, 0);
  }
  // Aggregators spend time writing; pure senders do not.
  bool some_writer = false, some_nonwriter = false;
  for (const auto& r : results) {
    if (r.timings.write > 0) some_writer = true;
    else some_nonwriter = true;
  }
  EXPECT_TRUE(some_writer);
  EXPECT_TRUE(some_nonwriter);
}

TEST(CollectiveWriteMisc, GatherBucketAccountedInHierarchicalRuns) {
  // Regression: breakdown consumers summed {meta,pack,shuffle,sync,write}
  // and silently dropped the gather bucket, understating hierarchical
  // runs' communication time. The intra-node gather phase must show up in
  // the per-rank breakdown and still obey the accounting identity.
  Cluster cluster;
  auto file = cluster.storage().create("out_hier", pfs::Integrity::None);
  std::vector<coll::Result> results(static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto view = block_view(mpi.rank(), mpi.size(), 30'000);
    const auto data = fill_view(view);
    coll::Options o;
    o.cb_size = 16384;
    o.overlap = coll::OverlapMode::WriteComm2;
    o.hierarchical = true;
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, o);
  });
  bool some_gather = false;
  for (const auto& r : results) {
    const auto& t = r.timings;
    if (t.gather > 0) some_gather = true;
    EXPECT_LE(t.meta + t.pack + t.gather + t.forward + t.shuffle + t.sync +
                  t.write + t.backoff,
              t.total);
  }
  EXPECT_TRUE(some_gather);
}

TEST(CollectiveWriteMisc, TwoConsecutiveCollectivesSameFileRegionsDisjoint) {
  Cluster cluster;
  auto file = cluster.storage().create("out", pfs::Integrity::Store);
  const std::uint64_t half = 8 * 10'000;
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    coll::Options o;
    o.cb_size = 16384;
    // First half of the file, then second half, through the same engine.
    for (int round = 0; round < 2; ++round) {
      coll::FileView v;
      v.extents.push_back(coll::Extent{
          static_cast<std::uint64_t>(round) * half +
              static_cast<std::uint64_t>(mpi.rank()) * 10'000,
          10'000});
      const auto data = fill_view(v);
      coll::collective_write(mpi, *file, v, data, o);
    }
  });
  EXPECT_EQ(file->verify(file_byte), "");
  EXPECT_EQ(file->size(), 2 * half);
}

TEST(CollectiveWriteMisc, ExclusiveLockSlowerThanShared) {
  auto run = [](tpio::smpi::Mpi::LockType lt) {
    Cluster cluster;
    auto file = cluster.storage().create("out", pfs::Integrity::None);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto view = block_view(mpi.rank(), mpi.size(), 40'000);
      const auto data = fill_view(view);
      coll::Options o;
      o.cb_size = 32768;
      o.transfer = coll::Transfer::OneSidedLock;
      o.overlap = coll::OverlapMode::None;
      o.lock_type = lt;
      coll::collective_write(mpi, *file, view, data, o);
    });
    return cluster.conductor().makespan();
  };
  // The paper's argument for MPI_LOCK_SHARED: exclusive serializes origins.
  EXPECT_LT(run(tpio::smpi::Mpi::LockType::Shared),
            run(tpio::smpi::Mpi::LockType::Exclusive));
}
