// Paper-scale stress suite for the cooperative rank scheduler: the 576-rank
// Tile-I/O point the paper actually measures, a 4096-rank smoke run, and
// differential checks that the fiber substrate reproduces the legacy
// thread-per-rank results bit-identically.
//
// Registered under the `scale` ctest label with a wall-clock budget (see
// tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <sys/resource.h>

#include <chrono>

#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "simbase/units.hpp"

namespace xp = tpio::xp;
namespace wl = tpio::wl;
namespace coll = tpio::coll;
namespace sim = tpio::sim;

namespace {

/// Force a backend for the duration of one test body.
class BackendGuard {
 public:
  explicit BackendGuard(sim::ConductorBackend b)
      : prev_(sim::Conductor::default_backend()) {
    sim::Conductor::set_default_backend(b);
  }
  ~BackendGuard() { sim::Conductor::set_default_backend(prev_); }

 private:
  sim::ConductorBackend prev_;
};

}  // namespace

TEST(Scale, TileIoTableCellAt576Ranks) {
  // The paper's headline Tile-I/O geometry runs at 576 processes — the
  // point the thread-per-rank conductor could never reach. One quick cell:
  // tile1m, write-comm-2 scheduler, scaled Ibex.
  BackendGuard guard(sim::ConductorBackend::Fibers);
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_tile1m(1, 1);
  spec.nprocs = 576;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::WriteComm2;
  spec.seed = 576;
  const xp::RunResult r = xp::execute(spec);
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(r.bytes, 576ull * sim::MiB);
  EXPECT_GT(r.aggregators, 0);
  // And it must be a *measurement*, not a fluke: the same spec reruns to
  // the identical virtual schedule.
  EXPECT_EQ(xp::execute(spec).makespan, r.makespan);
}

TEST(Scale, SmokeRunAt4096Ranks) {
  // 4096 ranks, small per-rank volume: completes in seconds and in memory
  // (fiber stacks are MAP_NORESERVE; RSS stays bounded — measured numbers
  // live in docs/HANDBOOK.md).
  BackendGuard guard(sim::ConductorBackend::Fibers);
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_ior(64 * sim::KiB);
  spec.nprocs = 4096;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::None;
  spec.seed = 4096;
  const xp::RunResult r = xp::execute(spec);
  EXPECT_GT(r.makespan, 0);
  EXPECT_EQ(r.bytes, 4096ull * 64 * sim::KiB);
}

TEST(Scale, BackendsAgreeOnEveryRunResultField) {
  // Differential at small scale: every observable of a run — not just the
  // makespan — must match between substrates.
  auto run_with = [](sim::ConductorBackend b, int nprocs) {
    BackendGuard guard(b);
    xp::RunSpec spec;
    spec.platform = xp::scaled(xp::ibex());
    spec.workload = wl::make_tile1m(1, 2);
    spec.nprocs = nprocs;
    spec.options.cb_size = xp::kCbSize;
    spec.options.overlap = coll::OverlapMode::WriteComm2;
    spec.seed = 11;
    spec.verify = true;
    return xp::execute(spec);
  };
  for (int nprocs : {8, 16, 64}) {
    const xp::RunResult f = run_with(sim::ConductorBackend::Fibers, nprocs);
    const xp::RunResult t = run_with(sim::ConductorBackend::Threads, nprocs);
    EXPECT_EQ(f.makespan, t.makespan) << nprocs;
    EXPECT_EQ(f.cycles, t.cycles) << nprocs;
    EXPECT_EQ(f.aggregators, t.aggregators) << nprocs;
    EXPECT_EQ(f.bytes, t.bytes) << nprocs;
    EXPECT_EQ(f.inter_node_bytes, t.inter_node_bytes) << nprocs;
    EXPECT_EQ(f.inter_node_messages, t.inter_node_messages) << nprocs;
    EXPECT_EQ(f.intra_node_bytes, t.intra_node_bytes) << nprocs;
    EXPECT_EQ(f.verify_error, "") << nprocs;
    EXPECT_EQ(t.verify_error, "") << nprocs;
  }
}

TEST(Scale, QuickSweepByteIdenticalAcrossBackendsAndJobs) {
  // The acceptance differential: the quick Table-I sweep (16 and 64 ranks,
  // five schedulers) must produce identical tables on the fiber scheduler
  // at --jobs 8 and the legacy thread backend at --jobs 1. Exact double
  // equality — the virtual timeline is integer nanoseconds underneath.
  const xp::Platform plat = xp::ibex();  // run_overlap_sweep scales it
  std::vector<xp::OverlapSeries> fibers, threads;
  {
    BackendGuard guard(sim::ConductorBackend::Fibers);
    xp::ExecOptions exec;
    exec.jobs = 8;
    fibers = xp::run_overlap_sweep(plat, coll::Options{}, 1, 0xC57, true, exec);
  }
  {
    BackendGuard guard(sim::ConductorBackend::Threads);
    xp::ExecOptions exec;
    exec.jobs = 1;
    threads =
        xp::run_overlap_sweep(plat, coll::Options{}, 1, 0xC57, true, exec);
  }
  ASSERT_EQ(fibers.size(), threads.size());
  for (std::size_t i = 0; i < fibers.size(); ++i) {
    EXPECT_EQ(fibers[i].procs, threads[i].procs);
    EXPECT_EQ(fibers[i].min_ms, threads[i].min_ms) << "series " << i;
  }
}

TEST(Scale, MetadataExchangeSmokeAt4096Ranks) {
  // The two-stage metadata exchange at 4096 ranks: the sparse and dense
  // paths must agree on every RunResult field even at a scale where the
  // dense path materializes 4096 views on each of 4096 ranks, the run
  // must account a nonzero metadata phase, and the host-side cost of the
  // sparse run stays inside generous ceilings that an O(P^2) regression
  // would blow through. The tracked dense-vs-sparse host numbers live in
  // BENCH_PERF.json (tools/bench_report, `metadata` section).
  BackendGuard guard(sim::ConductorBackend::Fibers);
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::ibex());
  spec.workload = wl::make_ior(16 * sim::KiB);
  spec.nprocs = 4096;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::None;
  spec.seed = 4096;
  const auto t0 = std::chrono::steady_clock::now();
  const xp::RunResult sparse = xp::execute(spec);
  const double sparse_wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  EXPECT_GT(sparse.makespan, 0);
  EXPECT_GT(sparse.rank_sum.meta, 0);
  EXPECT_EQ(sparse.bytes, 4096ull * 16 * sim::KiB);
  EXPECT_LT(sparse_wall_s, 60.0);
  struct rusage ru {};
  ::getrusage(RUSAGE_SELF, &ru);
  EXPECT_LT(static_cast<double>(ru.ru_maxrss) / 1024.0, 8192.0)
      << "peak RSS after the sparse 4096-rank run (MiB)";

  spec.options.dense_metadata = true;
  const xp::RunResult dense = xp::execute(spec);
  EXPECT_EQ(dense.makespan, sparse.makespan);
  EXPECT_EQ(dense.completion, sparse.completion);
  EXPECT_EQ(dense.cycles, sparse.cycles);
  EXPECT_EQ(dense.aggregators, sparse.aggregators);
  EXPECT_EQ(dense.bytes, sparse.bytes);
  EXPECT_EQ(dense.inter_node_bytes, sparse.inter_node_bytes);
  EXPECT_EQ(dense.inter_node_messages, sparse.inter_node_messages);
  EXPECT_EQ(dense.intra_node_bytes, sparse.intra_node_bytes);
  EXPECT_EQ(dense.rank_sum.meta, sparse.rank_sum.meta);
}
