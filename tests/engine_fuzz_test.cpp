// Property fuzz: random disjoint file decompositions, random tuning
// options — every combination must produce a byte-exact file and be
// deterministic. This is the repository's broadest correctness net for
// the collective-write and -read engines.

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <vector>

#include "core/engine.hpp"
#include "core/plan.hpp"
#include "core/read_engine.hpp"
#include "simbase/rng.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

/// Deterministically partition a random-length file into random pieces
/// assigned to random ranks. Returns per-rank views (sorted, disjoint,
/// covering [base, base+total) exactly).
std::vector<coll::FileView> random_views(std::uint64_t seed, int P) {
  sim::Rng rng(seed);
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  std::uint64_t pos = 0;  // dense: verify() models a fully-covered file
  const int pieces = 20 + static_cast<int>(rng.next_below(60));
  for (int k = 0; k < pieces; ++k) {
    const std::uint64_t len = 1 + rng.next_below(30'000);
    const int owner = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    auto& v = views[static_cast<std::size_t>(owner)];
    // Merge with the previous extent when the same owner continues.
    if (!v.extents.empty() && v.extents.back().end() == pos) {
      v.extents.back().length += len;
    } else {
      v.extents.push_back(coll::Extent{pos, len});
    }
    pos += len;
  }
  return views;
}

/// Views with deliberate holes and a nonzero base offset; verified by
/// reading back each extent instead of whole-file coverage.
std::vector<coll::FileView> holey_views(std::uint64_t seed, int P) {
  sim::Rng rng(seed);
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  std::uint64_t pos = 1 + rng.next_below(10'000);
  for (int k = 0; k < 40; ++k) {
    const std::uint64_t len = 1 + rng.next_below(20'000);
    const int owner = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    views[static_cast<std::size_t>(owner)].extents.push_back(
        coll::Extent{pos, len});
    pos += len + rng.next_below(8'000);  // hole after every piece
  }
  return views;
}

struct FuzzCase {
  std::uint64_t seed;
  coll::OverlapMode overlap;
  coll::Transfer transfer;
};

class EngineFuzz : public testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(EngineFuzz, RandomViewsAllOptionCombos) {
  const std::uint64_t seed = GetParam();
  sim::Rng opt_rng(sim::Rng::derive_seed(seed, 0xF0));

  // A few random option combinations per seed.
  for (int combo = 0; combo < 3; ++combo) {
    Cluster cluster;
    const auto views = random_views(seed, cluster.nprocs());
    coll::Options o;
    o.cb_size = 2048 + opt_rng.next_below(30'000);
    o.overlap = static_cast<coll::OverlapMode>(opt_rng.next_below(5));
    o.transfer = static_cast<coll::Transfer>(opt_rng.next_below(3));
    o.num_aggregators = static_cast<int>(opt_rng.next_below(4));  // 0=auto
    o.stripe_align = opt_rng.next_below(2) == 0;

    auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto& view = views[static_cast<std::size_t>(mpi.rank())];
      const auto data = fill_view(view);
      coll::collective_write(mpi, *file, view, data, o);
    });
    ASSERT_EQ(file->verify(file_byte), "")
        << "seed=" << seed << " combo=" << combo
        << " overlap=" << coll::to_string(o.overlap)
        << " transfer=" << coll::to_string(o.transfer)
        << " cb=" << o.cb_size << " aggs=" << o.num_aggregators;
  }
}

TEST_P(EngineFuzz, HoleyViewsExtentsLandExactly) {
  // Sparse decompositions (holes, nonzero base): each rank's extents must
  // read back exactly; holes stay zero.
  const std::uint64_t seed = GetParam();
  Cluster cluster;
  const auto views = holey_views(seed, cluster.nprocs());
  coll::Options o;
  o.cb_size = 16384;
  o.overlap = coll::OverlapMode::WriteComm2;
  auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    coll::collective_write(mpi, *file, view, data, o);
  });
  for (const auto& view : views) {
    for (const auto& e : view.extents) {
      const auto got = file->read_back(e.offset, e.length);
      for (std::uint64_t i = 0; i < e.length; ++i) {
        ASSERT_EQ(got[i], file_byte(e.offset + i))
            << "seed=" << seed << " offset=" << e.offset + i;
      }
    }
  }
}

TEST_P(EngineFuzz, WriteThenReadRoundTrip) {
  const std::uint64_t seed = GetParam();
  Cluster cluster;
  const auto views = random_views(seed ^ 0xABCDEF, cluster.nprocs());
  sim::Rng opt_rng(sim::Rng::derive_seed(seed, 0xF1));
  coll::Options wopt;
  wopt.cb_size = 4096 + opt_rng.next_below(20'000);
  coll::Options ropt = wopt;
  ropt.overlap = static_cast<coll::OverlapMode>(opt_rng.next_below(5));

  auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    coll::collective_write(mpi, *file, view, data, wopt);
    mpi.barrier();
    std::vector<std::byte> out(view.total_bytes());
    coll::collective_read(mpi, *file, view, out, ropt);
    ASSERT_EQ(out, data) << "seed=" << seed << " rank=" << mpi.rank();
  });
}

TEST_P(EngineFuzz, DeterministicUnderFuzz) {
  const std::uint64_t seed = GetParam();
  auto once = [&] {
    Cluster cluster;
    const auto views = random_views(seed, cluster.nprocs());
    coll::Options o;
    o.cb_size = 16384;
    o.overlap = coll::OverlapMode::WriteComm2;
    auto file = cluster.storage().create("fuzz", pfs::Integrity::None);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto& view = views[static_cast<std::size_t>(mpi.rank())];
      const auto data = fill_view(view);
      coll::collective_write(mpi, *file, view, data, o);
    });
    return cluster.conductor().makespan();
  };
  EXPECT_EQ(once(), once());
}

namespace {

/// Random topology with ppn from the interesting set {1, 3, 8}; half the
/// draws leave the last node partially filled (the Topology::fit edge).
ClusterSpec random_topology(sim::Rng& rng, int ppn) {
  ClusterSpec cs;
  cs.nodes = 2 + static_cast<int>(rng.next_below(3));  // 2..4
  cs.ppn = ppn;
  const int cap = cs.nodes * ppn;
  const int min_ranks = (cs.nodes - 1) * ppn + 1;
  cs.ranks = rng.next_below(2) == 0
                 ? 0
                 : min_ranks + static_cast<int>(rng.next_below(
                       static_cast<std::uint64_t>(cap - min_ranks + 1)));
  return cs;
}

}  // namespace

TEST_P(EngineFuzz, HierarchicalRandomTopologiesByteExact) {
  const std::uint64_t seed = GetParam();
  sim::Rng rng(sim::Rng::derive_seed(seed, 0x41E2));
  for (int ppn : {1, 3, 8}) {
    const ClusterSpec cs = random_topology(rng, ppn);
    Cluster cluster(cs);
    const auto views =
        random_views(seed ^ static_cast<std::uint64_t>(ppn), cluster.nprocs());
    coll::Options o;
    o.cb_size = 2048 + rng.next_below(30'000);
    o.overlap = static_cast<coll::OverlapMode>(rng.next_below(5));
    o.transfer = static_cast<coll::Transfer>(rng.next_below(3));
    o.hierarchical = true;
    o.leader_policy = rng.next_below(2) == 0 ? coll::LeaderPolicy::Lowest
                                             : coll::LeaderPolicy::Spread;
    auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto& view = views[static_cast<std::size_t>(mpi.rank())];
      const auto data = fill_view(view);
      coll::collective_write(mpi, *file, view, data, o);
    });
    ASSERT_EQ(file->verify(file_byte), "")
        << "seed=" << seed << " nodes=" << cs.nodes << " ppn=" << cs.ppn
        << " ranks=" << cs.ranks << " overlap=" << coll::to_string(o.overlap)
        << " transfer=" << coll::to_string(o.transfer)
        << " leader=" << coll::to_string(o.leader_policy);
  }
}

TEST_P(EngineFuzz, HierarchicalLeaderAndSegmentProperties) {
  // Plan-level invariants of the two-level routing: exactly one leader per
  // node, each rank's leader lives on its own node, and the merged node
  // message neither drops nor duplicates any member byte.
  const std::uint64_t seed = GetParam();
  sim::Rng rng(sim::Rng::derive_seed(seed, 0x41E3));
  for (int ppn : {1, 3, 8}) {
    const ClusterSpec cs = random_topology(rng, ppn);
    const tpio::net::Topology topo{cs.nodes, cs.ppn, cs.ranks};
    const int P = topo.nprocs();
    const auto views = holey_views(seed ^ static_cast<std::uint64_t>(ppn), P);
    coll::Options o;
    o.cb_size = 4096 + rng.next_below(20'000);
    o.hierarchical = true;
    o.leader_policy = rng.next_below(2) == 0 ? coll::LeaderPolicy::Lowest
                                             : coll::LeaderPolicy::Spread;
    const coll::Plan plan(views, topo, 4096, o);

    // Leader assignment covers every rank exactly once.
    int leaders = 0;
    for (int r = 0; r < P; ++r) {
      if (plan.is_leader(r)) ++leaders;
      EXPECT_EQ(topo.node_of(plan.leader_of(r)), topo.node_of(r))
          << "rank " << r << " led from a foreign node";
    }
    EXPECT_EQ(leaders, topo.nodes);
    for (int n = 0; n < topo.nodes; ++n) {
      const auto [first, last] = plan.node_rank_range(n);
      EXPECT_GE(plan.leader_rank(n), first);
      EXPECT_LT(plan.leader_rank(n), last);
    }

    // Per (aggregator, cycle): the merged node message equals the interval
    // union of the members' segments — nothing dropped, nothing duplicated.
    for (int a = 0; a < plan.num_aggregators(); ++a) {
      for (int c = 0; c < plan.num_cycles(); ++c) {
        const auto r = plan.cycle_range(a, c);
        if (r.begin >= r.end) continue;
        for (int n = 0; n < topo.nodes; ++n) {
          const auto [first, last] = plan.node_rank_range(n);
          const auto merged = plan.node_segments_in(n, r.begin, r.end);
          // Expected: members' pieces merged with the same touching rule
          // (single-member nodes pass segments through verbatim).
          std::vector<coll::Segment> expect;
          if (last - first == 1) {
            expect = plan.segments_in(first, r.begin, r.end);
          } else {
            std::vector<coll::Segment> all;
            for (int m = first; m < last; ++m) {
              const auto segs = plan.segments_in(m, r.begin, r.end);
              all.insert(all.end(), segs.begin(), segs.end());
            }
            std::sort(all.begin(), all.end(),
                      [](const coll::Segment& x, const coll::Segment& y) {
                        return x.file_offset < y.file_offset;
                      });
            for (const auto& g : all) {
              if (!expect.empty() &&
                  g.file_offset <=
                      expect.back().file_offset + expect.back().length) {
                expect.back().length =
                    std::max(expect.back().file_offset + expect.back().length,
                             g.file_offset + g.length) -
                    expect.back().file_offset;
              } else {
                expect.push_back(g);
              }
            }
          }
          ASSERT_EQ(merged.size(), expect.size())
              << "seed=" << seed << " ppn=" << ppn << " node=" << n
              << " agg=" << a << " cycle=" << c;
          std::uint64_t pos = merged.empty() ? 0 : merged.front().local_offset;
          std::uint64_t bytes = 0;
          for (std::size_t i = 0; i < merged.size(); ++i) {
            EXPECT_EQ(merged[i].file_offset, expect[i].file_offset);
            EXPECT_EQ(merged[i].length, expect[i].length);
            if (last - first > 1) {
              // Merged messages are dense: local offsets form a prefix sum.
              EXPECT_EQ(merged[i].local_offset, pos);
              pos += merged[i].length;
            }
            bytes += merged[i].length;
          }
          EXPECT_EQ(plan.node_bytes_in(n, r.begin, r.end), bytes);
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                         88u));
