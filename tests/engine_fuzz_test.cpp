// Property fuzz: random disjoint file decompositions, random tuning
// options — every combination must produce a byte-exact file and be
// deterministic. This is the repository's broadest correctness net for
// the collective-write and -read engines.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "core/engine.hpp"
#include "core/read_engine.hpp"
#include "simbase/rng.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

/// Deterministically partition a random-length file into random pieces
/// assigned to random ranks. Returns per-rank views (sorted, disjoint,
/// covering [base, base+total) exactly).
std::vector<coll::FileView> random_views(std::uint64_t seed, int P) {
  sim::Rng rng(seed);
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  std::uint64_t pos = 0;  // dense: verify() models a fully-covered file
  const int pieces = 20 + static_cast<int>(rng.next_below(60));
  for (int k = 0; k < pieces; ++k) {
    const std::uint64_t len = 1 + rng.next_below(30'000);
    const int owner = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    auto& v = views[static_cast<std::size_t>(owner)];
    // Merge with the previous extent when the same owner continues.
    if (!v.extents.empty() && v.extents.back().end() == pos) {
      v.extents.back().length += len;
    } else {
      v.extents.push_back(coll::Extent{pos, len});
    }
    pos += len;
  }
  return views;
}

/// Views with deliberate holes and a nonzero base offset; verified by
/// reading back each extent instead of whole-file coverage.
std::vector<coll::FileView> holey_views(std::uint64_t seed, int P) {
  sim::Rng rng(seed);
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  std::uint64_t pos = 1 + rng.next_below(10'000);
  for (int k = 0; k < 40; ++k) {
    const std::uint64_t len = 1 + rng.next_below(20'000);
    const int owner = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
    views[static_cast<std::size_t>(owner)].extents.push_back(
        coll::Extent{pos, len});
    pos += len + rng.next_below(8'000);  // hole after every piece
  }
  return views;
}

struct FuzzCase {
  std::uint64_t seed;
  coll::OverlapMode overlap;
  coll::Transfer transfer;
};

class EngineFuzz : public testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(EngineFuzz, RandomViewsAllOptionCombos) {
  const std::uint64_t seed = GetParam();
  sim::Rng opt_rng(sim::Rng::derive_seed(seed, 0xF0));

  // A few random option combinations per seed.
  for (int combo = 0; combo < 3; ++combo) {
    Cluster cluster;
    const auto views = random_views(seed, cluster.nprocs());
    coll::Options o;
    o.cb_size = 2048 + opt_rng.next_below(30'000);
    o.overlap = static_cast<coll::OverlapMode>(opt_rng.next_below(5));
    o.transfer = static_cast<coll::Transfer>(opt_rng.next_below(3));
    o.num_aggregators = static_cast<int>(opt_rng.next_below(4));  // 0=auto
    o.stripe_align = opt_rng.next_below(2) == 0;

    auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto& view = views[static_cast<std::size_t>(mpi.rank())];
      const auto data = fill_view(view);
      coll::collective_write(mpi, *file, view, data, o);
    });
    ASSERT_EQ(file->verify(file_byte), "")
        << "seed=" << seed << " combo=" << combo
        << " overlap=" << coll::to_string(o.overlap)
        << " transfer=" << coll::to_string(o.transfer)
        << " cb=" << o.cb_size << " aggs=" << o.num_aggregators;
  }
}

TEST_P(EngineFuzz, HoleyViewsExtentsLandExactly) {
  // Sparse decompositions (holes, nonzero base): each rank's extents must
  // read back exactly; holes stay zero.
  const std::uint64_t seed = GetParam();
  Cluster cluster;
  const auto views = holey_views(seed, cluster.nprocs());
  coll::Options o;
  o.cb_size = 16384;
  o.overlap = coll::OverlapMode::WriteComm2;
  auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    coll::collective_write(mpi, *file, view, data, o);
  });
  for (const auto& view : views) {
    for (const auto& e : view.extents) {
      const auto got = file->read_back(e.offset, e.length);
      for (std::uint64_t i = 0; i < e.length; ++i) {
        ASSERT_EQ(got[i], file_byte(e.offset + i))
            << "seed=" << seed << " offset=" << e.offset + i;
      }
    }
  }
}

TEST_P(EngineFuzz, WriteThenReadRoundTrip) {
  const std::uint64_t seed = GetParam();
  Cluster cluster;
  const auto views = random_views(seed ^ 0xABCDEF, cluster.nprocs());
  sim::Rng opt_rng(sim::Rng::derive_seed(seed, 0xF1));
  coll::Options wopt;
  wopt.cb_size = 4096 + opt_rng.next_below(20'000);
  coll::Options ropt = wopt;
  ropt.overlap = static_cast<coll::OverlapMode>(opt_rng.next_below(5));

  auto file = cluster.storage().create("fuzz", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    coll::collective_write(mpi, *file, view, data, wopt);
    mpi.barrier();
    std::vector<std::byte> out(view.total_bytes());
    coll::collective_read(mpi, *file, view, out, ropt);
    ASSERT_EQ(out, data) << "seed=" << seed << " rank=" << mpi.rank();
  });
}

TEST_P(EngineFuzz, DeterministicUnderFuzz) {
  const std::uint64_t seed = GetParam();
  auto once = [&] {
    Cluster cluster;
    const auto views = random_views(seed, cluster.nprocs());
    coll::Options o;
    o.cb_size = 16384;
    o.overlap = coll::OverlapMode::WriteComm2;
    auto file = cluster.storage().create("fuzz", pfs::Integrity::None);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto& view = views[static_cast<std::size_t>(mpi.rank())];
      const auto data = fill_view(view);
      coll::collective_write(mpi, *file, view, data, o);
    });
    return cluster.conductor().makespan();
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineFuzz,
                         testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                         88u));
