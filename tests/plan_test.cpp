#include <gtest/gtest.h>

#include "core/plan.hpp"
#include "simbase/error.hpp"

namespace coll = tpio::coll;
namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

coll::Options opts(std::uint64_t cb, coll::OverlapMode m = coll::OverlapMode::None) {
  coll::Options o;
  o.cb_size = cb;
  o.overlap = m;
  o.stripe_align = false;
  return o;
}

/// 1-D block decomposition: rank r owns [r*n, (r+1)*n).
std::vector<coll::FileView> block_views(int P, std::uint64_t n) {
  std::vector<coll::FileView> v(static_cast<std::size_t>(P));
  for (int r = 0; r < P; ++r) {
    v[static_cast<std::size_t>(r)].extents.push_back(
        coll::Extent{static_cast<std::uint64_t>(r) * n, n});
  }
  return v;
}

}  // namespace

TEST(FileView, ValidateRejectsOverlapsAndEmpties) {
  coll::FileView ok;
  ok.extents = {{0, 10}, {10, 5}, {100, 1}};
  EXPECT_NO_THROW(ok.validate());

  coll::FileView empty_extent;
  empty_extent.extents = {{0, 0}};
  EXPECT_THROW(empty_extent.validate(), tpio::Error);

  coll::FileView overlapping;
  overlapping.extents = {{0, 10}, {5, 10}};
  EXPECT_THROW(overlapping.validate(), tpio::Error);

  coll::FileView unsorted;
  unsorted.extents = {{100, 10}, {0, 10}};
  EXPECT_THROW(unsorted.validate(), tpio::Error);
}

TEST(FileView, SerializeRoundTrip) {
  coll::FileView v;
  v.extents = {{7, 13}, {1000, 1}, {4096, 4096}};
  const auto blob = v.serialize();
  const auto w = coll::FileView::deserialize(blob);
  EXPECT_EQ(v.extents, w.extents);
  EXPECT_TRUE(coll::FileView::deserialize({}).extents.empty());
}

TEST(AutoAggregators, VolumeCappedByNodes) {
  net::Topology topo{16, 48};
  // Tiny job: one buffer's worth -> 1 aggregator.
  EXPECT_EQ(coll::auto_aggregator_count(1, 32 << 20, topo), 1);
  EXPECT_EQ(coll::auto_aggregator_count(32 << 20, 32 << 20, topo), 1);
  // Two buffers -> 2.
  EXPECT_EQ(coll::auto_aggregator_count((32 << 20) + 1, 32 << 20, topo), 2);
  // Huge volume -> capped at node count.
  EXPECT_EQ(coll::auto_aggregator_count(1ull << 40, 32 << 20, topo), 16);
}

TEST(AutoAggregators, CappedByProcs) {
  net::Topology topo{4, 1};
  EXPECT_EQ(coll::auto_aggregator_count(1ull << 40, 1 << 20, topo), 4);
}

TEST(Plan, DomainsPartitionRangeExactly) {
  net::Topology topo{4, 2};
  auto views = block_views(8, 1000);
  coll::Plan plan(views, topo, 0, opts(2000));
  const int A = plan.num_aggregators();
  ASSERT_GE(A, 1);
  std::uint64_t covered = 0;
  std::uint64_t prev_end = plan.range_begin();
  for (int a = 0; a < A; ++a) {
    auto d = plan.domain(a);
    EXPECT_EQ(d.begin, prev_end);
    prev_end = d.end;
    covered += d.size();
  }
  EXPECT_EQ(prev_end, plan.range_end());
  EXPECT_EQ(covered, 8000u);
  EXPECT_EQ(plan.global_bytes(), 8000u);
}

TEST(Plan, AggregatorsSpreadAcrossNodes) {
  net::Topology topo{4, 2};
  auto views = block_views(8, 1 << 20);
  coll::Options o = opts(1 << 20);
  o.num_aggregators = 4;
  coll::Plan plan(views, topo, 0, o);
  ASSERT_EQ(plan.num_aggregators(), 4);
  // One per node: ranks 0, 2, 4, 6.
  EXPECT_EQ(plan.agg_rank(0), 0);
  EXPECT_EQ(plan.agg_rank(1), 2);
  EXPECT_EQ(plan.agg_rank(2), 4);
  EXPECT_EQ(plan.agg_rank(3), 6);
  EXPECT_TRUE(plan.is_aggregator(2));
  EXPECT_FALSE(plan.is_aggregator(1));
  EXPECT_EQ(plan.agg_index(4), 2);
  EXPECT_EQ(plan.agg_index(5), -1);
}

TEST(Plan, MoreAggregatorsThanNodesWrapWithinNodes) {
  net::Topology topo{2, 4};
  auto views = block_views(8, 100);
  coll::Options o = opts(100);
  o.num_aggregators = 4;
  coll::Plan plan(views, topo, 0, o);
  // Nodes 0,1 then second pass: ranks 0, 4, 1, 5.
  EXPECT_EQ(plan.agg_rank(0), 0);
  EXPECT_EQ(plan.agg_rank(1), 4);
  EXPECT_EQ(plan.agg_rank(2), 1);
  EXPECT_EQ(plan.agg_rank(3), 5);
}

TEST(Plan, CycleCountFromLargestDomain) {
  net::Topology topo{2, 1};
  auto views = block_views(2, 1000);  // 2000 bytes, 2 aggregators
  coll::Options o = opts(300);        // sub-buffer 300 (no overlap)
  o.num_aggregators = 2;
  coll::Plan plan(views, topo, 0, o);
  // Domain of 1000 bytes each; ceil(1000/300) = 4 cycles.
  EXPECT_EQ(plan.num_cycles(), 4);
  EXPECT_EQ(plan.sub_buffer_bytes(), 300u);
}

TEST(Plan, OverlapHalvesSubBuffer) {
  net::Topology topo{2, 1};
  auto views = block_views(2, 1000);
  coll::Options o = opts(300, coll::OverlapMode::WriteComm2);
  o.num_aggregators = 2;
  coll::Plan plan(views, topo, 0, o);
  EXPECT_EQ(plan.sub_buffer_bytes(), 150u);
  EXPECT_EQ(plan.num_cycles(), 7);  // ceil(1000/150)
}

TEST(Plan, CycleRangesTileTheDomain) {
  net::Topology topo{1, 4};
  auto views = block_views(4, 777);
  coll::Options o = opts(100);
  o.num_aggregators = 2;
  coll::Plan plan(views, topo, 0, o);
  for (int a = 0; a < plan.num_aggregators(); ++a) {
    const auto d = plan.domain(a);
    std::uint64_t pos = d.begin;
    for (int c = 0; c < plan.num_cycles(); ++c) {
      const auto r = plan.cycle_range(a, c);
      EXPECT_EQ(r.begin, std::min(pos, d.end));
      pos = r.end;
    }
    EXPECT_EQ(pos, d.end);
  }
}

TEST(Plan, StripeAlignmentRoundsDomains) {
  net::Topology topo{2, 1};
  auto views = block_views(2, 1500);  // range 3000
  coll::Options o = opts(8192);
  o.num_aggregators = 2;
  o.stripe_align = true;
  coll::Plan plan(views, topo, 1024, o);
  // Unaligned split would be 1500/1500; aligned: 2048 then the rest.
  EXPECT_EQ(plan.domain(0).begin, 0u);
  EXPECT_EQ(plan.domain(0).end, 2048u);
  EXPECT_EQ(plan.domain(1).begin, 2048u);
  EXPECT_EQ(plan.domain(1).end, 3000u);
}

TEST(Plan, StripeAlignmentTrimsEmptyTrailingDomains) {
  // Four aggregators over a 2048-byte range with 1024-byte stripes:
  // rounding the per-aggregator share (512) up to a stripe leaves the last
  // two aggregators with nothing. They must be dropped from the plan, not
  // kept as zero-byte aggregators that allocate buffers and join barriers.
  net::Topology topo{4, 1};
  auto views = block_views(4, 512);
  coll::Options o = opts(8192);
  o.num_aggregators = 4;
  o.stripe_align = true;
  coll::Plan plan(views, topo, 1024, o);

  ASSERT_EQ(plan.num_aggregators(), 2);
  EXPECT_EQ(plan.domain(0).begin, 0u);
  EXPECT_EQ(plan.domain(0).end, 1024u);
  EXPECT_EQ(plan.domain(1).begin, 1024u);
  EXPECT_EQ(plan.domain(1).end, 2048u);
  EXPECT_TRUE(plan.is_aggregator(0));
  EXPECT_TRUE(plan.is_aggregator(1));
  EXPECT_FALSE(plan.is_aggregator(2));
  EXPECT_FALSE(plan.is_aggregator(3));
  EXPECT_EQ(plan.agg_index(2), -1);
  EXPECT_EQ(plan.num_cycles(), 1);  // 1024 <= 8192 sub-buffer
}

TEST(Plan, UnalignedTinyRangeAlsoTrims) {
  // Even without stripe alignment, a range smaller than the aggregator
  // count (per-aggregator share of 1 byte) exhausts before the tail.
  net::Topology topo{4, 1};
  std::vector<coll::FileView> views(4);
  views[0].extents = {{0, 3}};  // 3 bytes, 4 requested aggregators
  coll::Options o = opts(64);
  o.num_aggregators = 4;
  coll::Plan plan(views, topo, 0, o);
  EXPECT_EQ(plan.num_aggregators(), 3);
  EXPECT_EQ(plan.global_bytes(), 3u);
}

TEST(Plan, SegmentsRespectLocalOffsets) {
  // Rank with two extents: [100,150) and [300,400); local buffer holds
  // 50 + 100 bytes contiguously.
  net::Topology topo{1, 1};
  std::vector<coll::FileView> views(1);
  views[0].extents = {{100, 50}, {300, 100}};
  coll::Plan plan(views, topo, 0, opts(1 << 20));

  // Window covering the tail of extent 0 and head of extent 1.
  auto segs = plan.segments_in(0, 120, 350);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].file_offset, 120u);
  EXPECT_EQ(segs[0].local_offset, 20u);
  EXPECT_EQ(segs[0].length, 30u);
  EXPECT_EQ(segs[1].file_offset, 300u);
  EXPECT_EQ(segs[1].local_offset, 50u);
  EXPECT_EQ(segs[1].length, 50u);

  EXPECT_EQ(plan.bytes_in(0, 120, 350), 80u);
  EXPECT_EQ(plan.bytes_in(0, 0, 100), 0u);
  EXPECT_EQ(plan.bytes_in(0, 0, 1000), 150u);
  EXPECT_TRUE(plan.segments_in(0, 150, 300).empty());
}

TEST(Plan, LeaderPolicies) {
  net::Topology topo{3, 4, 10};  // partial last node: ranks 8, 9
  auto views = block_views(10, 100);
  coll::Options lo = opts(1 << 20);
  lo.hierarchical = true;
  coll::Plan lowest(views, topo, 0, lo);
  EXPECT_TRUE(lowest.hierarchical());
  EXPECT_EQ(lowest.leader_rank(0), 0);
  EXPECT_EQ(lowest.leader_rank(1), 4);
  EXPECT_EQ(lowest.leader_rank(2), 8);
  EXPECT_EQ(lowest.leader_of(5), 4);
  EXPECT_TRUE(lowest.is_leader(4));
  EXPECT_FALSE(lowest.is_leader(5));

  coll::Options sp = lo;
  sp.leader_policy = coll::LeaderPolicy::Spread;
  coll::Plan spread(views, topo, 0, sp);
  EXPECT_EQ(spread.leader_rank(0), 3);
  EXPECT_EQ(spread.leader_rank(1), 7);
  EXPECT_EQ(spread.leader_rank(2), 9);  // last node holds only 8, 9

  // Non-hierarchical plans still elect leaders (cheap) but report off.
  coll::Plan flat(views, topo, 0, opts(1 << 20));
  EXPECT_FALSE(flat.hierarchical());
}

TEST(Plan, NodeRankRanges) {
  net::Topology topo{3, 4, 10};
  auto views = block_views(10, 100);
  coll::Plan plan(views, topo, 0, opts(1 << 20));
  EXPECT_EQ(plan.node_rank_range(0), (std::pair<int, int>{0, 4}));
  EXPECT_EQ(plan.node_rank_range(1), (std::pair<int, int>{4, 8}));
  EXPECT_EQ(plan.node_rank_range(2), (std::pair<int, int>{8, 10}));
}

TEST(Plan, NodeSegmentsCoalesceAcrossMembers) {
  // Node 0 holds ranks 0 and 1 with interleaved-but-touching pieces; the
  // merged node message must be one run with dense local offsets.
  net::Topology topo{2, 2};
  std::vector<coll::FileView> views(4);
  views[0].extents = {{0, 100}, {200, 100}};
  views[1].extents = {{100, 100}, {400, 50}};
  views[2].extents = {{500, 100}};
  views[3].extents = {{600, 100}};
  coll::Plan plan(views, topo, 0, opts(1 << 20));

  const auto segs = plan.node_segments_in(0, 0, 1000);
  ASSERT_EQ(segs.size(), 2u);
  EXPECT_EQ(segs[0].file_offset, 0u);    // [0,100)+[100,200)+[200,300)
  EXPECT_EQ(segs[0].length, 300u);
  EXPECT_EQ(segs[0].local_offset, 0u);
  EXPECT_EQ(segs[1].file_offset, 400u);
  EXPECT_EQ(segs[1].length, 50u);
  EXPECT_EQ(segs[1].local_offset, 300u);  // dense in the merged message
  EXPECT_EQ(plan.node_bytes_in(0, 0, 1000), 350u);

  // Window clipping applies before the merge.
  const auto clipped = plan.node_segments_in(0, 150, 250);
  ASSERT_EQ(clipped.size(), 1u);
  EXPECT_EQ(clipped[0].file_offset, 150u);
  EXPECT_EQ(clipped[0].length, 100u);
  EXPECT_EQ(plan.node_bytes_in(0, 150, 250), 100u);
}

TEST(Plan, SingleMemberNodePassesSegmentsThrough) {
  // ppn=1: node_segments_in must return segments_in(member) verbatim —
  // including its local buffer offsets — so the hierarchical path
  // degenerates to the direct one exactly.
  net::Topology topo{2, 1};
  std::vector<coll::FileView> views(2);
  views[0].extents = {{100, 50}, {300, 100}};
  views[1].extents = {{150, 100}};
  coll::Plan plan(views, topo, 0, opts(1 << 20));
  const auto direct = plan.segments_in(0, 120, 350);
  const auto node = plan.node_segments_in(0, 120, 350);
  ASSERT_EQ(node.size(), direct.size());
  for (std::size_t i = 0; i < node.size(); ++i) {
    EXPECT_EQ(node[i].file_offset, direct[i].file_offset);
    EXPECT_EQ(node[i].local_offset, direct[i].local_offset);
    EXPECT_EQ(node[i].length, direct[i].length);
  }
  EXPECT_EQ(plan.node_bytes_in(0, 120, 350), plan.bytes_in(0, 120, 350));
}

TEST(Plan, EmptyJob) {
  net::Topology topo{2, 2};
  std::vector<coll::FileView> views(4);
  coll::Plan plan(views, topo, 0, opts(1 << 20));
  EXPECT_EQ(plan.global_bytes(), 0u);
  EXPECT_EQ(plan.num_cycles(), 0);
}

TEST(Plan, ViewsWithHolesStillPartition) {
  // Ranks write disjoint extents with large gaps; domains span the holes.
  net::Topology topo{2, 1};
  std::vector<coll::FileView> views(2);
  views[0].extents = {{0, 100}};
  views[1].extents = {{1'000'000, 100}};
  coll::Options o = opts(512);
  o.num_aggregators = 2;
  coll::Plan plan(views, topo, 0, o);
  EXPECT_EQ(plan.range_begin(), 0u);
  EXPECT_EQ(plan.range_end(), 1'000'100u);
  EXPECT_EQ(plan.global_bytes(), 200u);
  // Cycle count is driven by the (mostly empty) domain size.
  EXPECT_GT(plan.num_cycles(), 900);
}
