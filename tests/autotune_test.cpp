// OverlapMode::Auto: decision-model unit tests, differential byte-equality
// against every fixed scheduler it can switch to (the probe/switch handoff
// must never corrupt the file), tuning-cache behaviour (cold probe -> warm
// start, concurrent writers), and determinism of Auto-bearing sweeps under
// the parallel executor.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/autotune.hpp"
#include "core/engine.hpp"
#include "harness/sweep.hpp"
#include "simbase/crc.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
namespace xp = tpio::xp;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

/// A scratch file path removed on destruction.
struct TempFile {
  explicit TempFile(const char* stem)
      : path(std::string(::testing::TempDir()) + stem) {
    std::remove(path.c_str());
  }
  ~TempFile() {
    std::remove(path.c_str());
    std::remove((path + ".tmp").c_str());
  }
  std::string path;
};

coll::ProbeStats stats(double shuffle, double write_block,
                       double write_async) {
  coll::ProbeStats s;
  s.shuffle_ns = shuffle;
  s.write_block_ns = write_block;
  s.write_async_ns = write_async;
  s.has_async = write_async > 0.0;
  return s;
}

/// Round-robin chunk decomposition (as hier_diff_test's): rank r owns
/// chunks r, r+P, r+2P, ...
std::vector<coll::FileView> strided_views(int P, std::uint64_t chunk,
                                          int rounds) {
  std::vector<coll::FileView> views(static_cast<std::size_t>(P));
  for (int k = 0; k < rounds; ++k) {
    for (int r = 0; r < P; ++r) {
      const std::uint64_t off =
          (static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(P) +
           static_cast<std::uint64_t>(r)) *
          chunk;
      views[static_cast<std::size_t>(r)].extents.push_back(
          coll::Extent{off, chunk});
    }
  }
  return views;
}

struct RunOut {
  std::uint64_t crc = 0;
  coll::AutoDecision decision;
};

RunOut run_once(const ClusterSpec& cs,
                const std::vector<coll::FileView>& views, std::uint64_t total,
                const coll::Options& o) {
  Cluster cluster(cs);
  auto file = cluster.storage().create("auto_diff", pfs::Integrity::Store);
  std::vector<coll::Result> results(static_cast<std::size_t>(cluster.nprocs()));
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const auto& view = views[static_cast<std::size_t>(mpi.rank())];
    const auto data = fill_view(view);
    results[static_cast<std::size_t>(mpi.rank())] =
        coll::collective_write(mpi, *file, view, data, o);
  });
  EXPECT_EQ(file->verify(file_byte), "")
      << "overlap=" << coll::to_string(o.overlap)
      << " transfer=" << coll::to_string(o.transfer)
      << " hier=" << o.hierarchical;
  RunOut out;
  out.crc = sim::crc64(file->read_back(0, total));
  out.decision = results[0].autotune;
  return out;
}

/// Policy knobs that force decide() onto one scheduler regardless of the
/// measured probe costs, so every switch target is exercised.
coll::Options forced(coll::OverlapMode target) {
  coll::Options o;
  o.overlap = coll::OverlapMode::Auto;
  switch (target) {
    case coll::OverlapMode::None:
      o.auto_aio_margin = -1.0;  // async floor > 0: always bad-aio branch
      o.auto_comm_floor = 2.0;   // comm share can never reach it
      break;
    case coll::OverlapMode::Comm:
      o.auto_aio_margin = -1.0;
      o.auto_comm_floor = 0.0;
      break;
    case coll::OverlapMode::Write:
      o.auto_aio_margin = 1e9;  // good-aio branch
      o.auto_write_only_ceiling = 2.0;
      break;
    case coll::OverlapMode::WriteComm:
      o.auto_aio_margin = 1e9;
      o.auto_write_only_ceiling = -1.0;
      o.auto_joint_wait_floor = 0.0;
      break;
    case coll::OverlapMode::WriteComm2:
      o.auto_aio_margin = 1e9;
      o.auto_write_only_ceiling = -1.0;
      o.auto_joint_wait_floor = 2.0;
      break;
    case coll::OverlapMode::Auto:
      break;
  }
  return o;
}

}  // namespace

// ---------------------------------------------------------------------------
// Decision model
// ---------------------------------------------------------------------------

TEST(AutoDecide, ProbeShareAndRatio) {
  EXPECT_DOUBLE_EQ(coll::probe_comm_share(stats(25.0, 75.0, 0.0)), 0.25);
  EXPECT_DOUBLE_EQ(coll::probe_comm_share(stats(0.0, 0.0, 0.0)), 0.0);
  EXPECT_DOUBLE_EQ(coll::probe_aio_ratio(stats(10.0, 100.0, 150.0)), 1.5);
  // No async probe (single-cycle operation): neutral ratio, not zero.
  EXPECT_DOUBLE_EQ(coll::probe_aio_ratio(stats(10.0, 100.0, 0.0)), 1.0);
}

TEST(AutoDecide, GoodAioPicksAsyncSchedulers) {
  const coll::AutoPolicy p;  // defaults
  // Tiny comm share: nothing worth hiding; plain async Write wins.
  EXPECT_EQ(coll::decide(stats(1.0, 99.0, 99.0), p), coll::OverlapMode::Write);
  // Typical share: the data-flow scheduler (the paper's overall winner).
  EXPECT_EQ(coll::decide(stats(23.0, 77.0, 78.0), p),
            coll::OverlapMode::WriteComm2);
}

TEST(AutoDecide, BadAioFallsBackToBlockingSchedulers) {
  const coll::AutoPolicy p;  // defaults: aio_margin 1.0, comm_floor 0.10
  // Lustre regime: async premium (1.2x of write) dwarfs the hideable
  // shuffle cost. Visible comm share -> overlap shuffle only (Comm).
  EXPECT_EQ(coll::decide(stats(20.0, 80.0, 176.0), p),
            coll::OverlapMode::Comm);
  // Same pathology with negligible communication -> plain NoOverlap.
  EXPECT_EQ(coll::decide(stats(2.0, 98.0, 215.0), p), coll::OverlapMode::None);
}

TEST(AutoDecide, JointWaitReachableViaKnob) {
  coll::AutoPolicy p;
  p.joint_wait_floor = 0.20;
  EXPECT_EQ(coll::decide(stats(23.0, 77.0, 78.0), p),
            coll::OverlapMode::WriteComm);
}

TEST(AutoDecide, MarginGovernsTheAioGuard) {
  // Async floor 88ns vs blocking floor 80ns: a 10% premium passes the
  // default 15% margin but trips a tightened 5% one.
  const auto s = stats(20.0, 80.0, 88.0);
  coll::AutoPolicy p;
  EXPECT_EQ(coll::decide(s, p), coll::OverlapMode::WriteComm2);
  p.aio_margin = 0.05;
  EXPECT_EQ(coll::decide(s, p), coll::OverlapMode::Comm);
}

TEST(AutoDecide, PlatformSignatureIgnoresNoiseAndAioJitter) {
  const tpio::net::Topology topo{4, 8, 0};
  tpio::net::FabricParams fabric;
  tpio::smpi::MpiParams mpi;
  pfs::PfsParams a;
  pfs::PfsParams b = a;
  b.aio_penalty = 3.7;        // jittered per run by the harness
  b.aio_penalty_sigma = 0.9;  // noise shape
  b.noise_sigma = 0.5;
  EXPECT_EQ(coll::platform_signature(topo, fabric, mpi, a),
            coll::platform_signature(topo, fabric, mpi, b));
  b.target_bw = a.target_bw * 2;  // a real hardware difference
  EXPECT_NE(coll::platform_signature(topo, fabric, mpi, a),
            coll::platform_signature(topo, fabric, mpi, b));
}

// ---------------------------------------------------------------------------
// Differential byte-equality: probe phase + mid-operation switch
// ---------------------------------------------------------------------------

// Every switch target x shuffle primitive x hierarchy: the Auto run (probe
// cycles, then handoff at a cycle boundary) must land the same bytes as the
// fixed scheduler it chose, and must report that choice.
TEST(AutoDiff, AllSwitchTargetsBytesMatchFixedScheduler) {
  ClusterSpec cs;
  cs.nodes = 3;
  cs.ppn = 3;
  const auto views = strided_views(9, 1500, 8);
  const std::uint64_t total = 1500ull * 9 * 8;

  for (int m = 0; m < 5; ++m) {
    const auto target = static_cast<coll::OverlapMode>(m);
    for (int t = 0; t < 3; ++t) {
      for (bool hier : {false, true}) {
        coll::Options fixed;
        fixed.cb_size = 16384;
        fixed.overlap = target;
        fixed.transfer = static_cast<coll::Transfer>(t);
        fixed.hierarchical = hier;
        const RunOut ref = run_once(cs, views, total, fixed);
        EXPECT_FALSE(ref.decision.engaged);

        coll::Options au = forced(target);
        au.cb_size = fixed.cb_size;
        au.transfer = fixed.transfer;
        au.hierarchical = hier;
        const RunOut got = run_once(cs, views, total, au);
        EXPECT_TRUE(got.decision.engaged);
        EXPECT_EQ(got.decision.chosen, target)
            << "transfer=" << coll::to_string(fixed.transfer)
            << " hier=" << hier;
        EXPECT_FALSE(got.decision.from_cache);
        EXPECT_GT(got.decision.probe_cycles, 0);
        EXPECT_EQ(got.crc, ref.crc)
            << "target=" << coll::to_string(target)
            << " transfer=" << coll::to_string(fixed.transfer)
            << " hier=" << hier;
      }
    }
  }
}

// Degenerate handoffs: probes covering every cycle (no switch), and a
// single probe cycle (switch after cycle 0, odd/even probe split collapses
// to one blocking write).
TEST(AutoDiff, ProbeWindowEdgeCases) {
  ClusterSpec cs;
  cs.nodes = 2;
  cs.ppn = 2;
  const auto views = strided_views(4, 1200, 6);
  const std::uint64_t total = 1200ull * 4 * 6;

  coll::Options fixed;
  fixed.cb_size = 16384;
  fixed.overlap = coll::OverlapMode::None;
  const RunOut ref = run_once(cs, views, total, fixed);

  for (int probes : {1, 1000}) {
    coll::Options au = forced(coll::OverlapMode::None);
    au.cb_size = fixed.cb_size;
    au.probe_cycles = probes;
    const RunOut got = run_once(cs, views, total, au);
    EXPECT_EQ(got.crc, ref.crc) << "probe_cycles=" << probes;
    EXPECT_TRUE(got.decision.engaged);
    EXPECT_EQ(got.decision.chosen, coll::OverlapMode::None);
  }
}

// ---------------------------------------------------------------------------
// Tuning cache
// ---------------------------------------------------------------------------

TEST(TuningCache, ColdRunProbesWarmRunSkipsThem) {
  TempFile cache("autotune_cache_coldwarm.json");
  ClusterSpec cs;
  cs.nodes = 2;
  cs.ppn = 2;
  const auto views = strided_views(4, 1500, 6);
  const std::uint64_t total = 1500ull * 4 * 6;

  coll::Options o;
  o.cb_size = 16384;
  o.overlap = coll::OverlapMode::Auto;
  o.tuning_cache = cache.path;
  const RunOut cold = run_once(cs, views, total, o);
  EXPECT_TRUE(cold.decision.engaged);
  EXPECT_FALSE(cold.decision.from_cache);
  EXPECT_GT(cold.decision.probe_cycles, 0);

  const RunOut warm = run_once(cs, views, total, o);
  EXPECT_TRUE(warm.decision.engaged);
  EXPECT_TRUE(warm.decision.from_cache);
  EXPECT_EQ(warm.decision.probe_cycles, 0);
  EXPECT_EQ(warm.decision.chosen, cold.decision.chosen);
  EXPECT_EQ(warm.crc, cold.crc);

  // A different workload shape misses the cache and probes again.
  const auto views2 = strided_views(4, 1500, 10);
  const std::uint64_t total2 = 1500ull * 4 * 10;
  const RunOut other = run_once(cs, views2, total2, o);
  EXPECT_FALSE(other.decision.from_cache);
}

TEST(TuningCache, LookupMissesOnAbsentAndGarbageFiles) {
  coll::OverlapMode m{};
  EXPECT_FALSE(coll::TuningCache::lookup("/nonexistent/cache.json", "k", m));

  TempFile f("autotune_cache_garbage.json");
  std::FILE* out = std::fopen(f.path.c_str(), "w");
  ASSERT_NE(out, nullptr);
  std::fputs("not a cache", out);
  std::fclose(out);
  EXPECT_FALSE(coll::TuningCache::lookup(f.path, "k", m));

  // store() on top of garbage replaces it with a valid cache.
  coll::TuningCache::store(f.path, "k", coll::OverlapMode::Comm);
  ASSERT_TRUE(coll::TuningCache::lookup(f.path, "k", m));
  EXPECT_EQ(m, coll::OverlapMode::Comm);
}

TEST(TuningCache, StoreMergesAndOverwrites) {
  TempFile f("autotune_cache_merge.json");
  coll::TuningCache::store(f.path, "a", coll::OverlapMode::Write);
  coll::TuningCache::store(f.path, "b", coll::OverlapMode::None);
  coll::TuningCache::store(f.path, "a", coll::OverlapMode::WriteComm2);
  coll::OverlapMode m{};
  ASSERT_TRUE(coll::TuningCache::lookup(f.path, "a", m));
  EXPECT_EQ(m, coll::OverlapMode::WriteComm2);
  ASSERT_TRUE(coll::TuningCache::lookup(f.path, "b", m));
  EXPECT_EQ(m, coll::OverlapMode::None);
  EXPECT_FALSE(coll::TuningCache::lookup(f.path, "c", m));
}

TEST(TuningCache, ConcurrentWritersOfDistinctKeysLoseNothing) {
  TempFile f("autotune_cache_race.json");
  constexpr int kWriters = 8;
  constexpr int kKeysPerWriter = 10;
  {
    std::vector<std::jthread> pool;
    for (int w = 0; w < kWriters; ++w) {
      pool.emplace_back([&, w] {
        for (int k = 0; k < kKeysPerWriter; ++k) {
          coll::TuningCache::store(
              f.path, "w" + std::to_string(w) + "/k" + std::to_string(k),
              static_cast<coll::OverlapMode>((w + k) % 5));
        }
      });
    }
  }
  for (int w = 0; w < kWriters; ++w) {
    for (int k = 0; k < kKeysPerWriter; ++k) {
      coll::OverlapMode m{};
      ASSERT_TRUE(coll::TuningCache::lookup(
          f.path, "w" + std::to_string(w) + "/k" + std::to_string(k), m))
          << "w" << w << "/k" << k;
      EXPECT_EQ(m, static_cast<coll::OverlapMode>((w + k) % 5));
    }
  }
}

// ---------------------------------------------------------------------------
// Determinism under the parallel sweep executor
// ---------------------------------------------------------------------------

TEST(AutoSweep, SixColumnSweepBitIdenticalAcrossWorkerCounts) {
  const xp::Platform plat = xp::ibex();
  xp::ExecOptions serial;
  serial.jobs = 1;
  xp::ExecOptions parallel;
  parallel.jobs = 4;
  const auto a = xp::run_overlap_sweep(plat, coll::Options{}, 1, 21, true,
                                       serial, /*include_auto=*/true);
  const auto b = xp::run_overlap_sweep(plat, coll::Options{}, 1, 21, true,
                                       parallel, /*include_auto=*/true);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].min_ms.size(), 6u);
    EXPECT_EQ(a[i].min_ms, b[i].min_ms);  // exact double equality
    EXPECT_EQ(a[i].winner(), b[i].winner());
    EXPECT_NE(a[i].winner(), coll::OverlapMode::Auto);
  }
  // The five fixed columns are seeded independently of the Auto column, so
  // a five-column sweep of the same seed reproduces them exactly.
  const auto five = xp::run_overlap_sweep(plat, coll::Options{}, 1, 21, true,
                                          serial, /*include_auto=*/false);
  ASSERT_EQ(five.size(), a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (const auto& [mode, ms] : five[i].min_ms) {
      EXPECT_EQ(ms, a[i].min_ms.at(mode)) << coll::to_string(mode);
    }
  }
}

TEST(AutoSweep, ExecuteRepeatableForSeed) {
  xp::RunSpec spec;
  spec.platform = xp::scaled(xp::crill());
  spec.workload = tpio::wl::make_tile1m(1, 2);
  spec.nprocs = 16;
  spec.options.cb_size = xp::kCbSize;
  spec.options.overlap = coll::OverlapMode::Auto;
  spec.seed = 77;
  const auto a = xp::execute(spec);
  const auto b = xp::execute(spec);
  EXPECT_EQ(a.makespan, b.makespan);
  EXPECT_EQ(a.autotune.chosen, b.autotune.chosen);
  EXPECT_EQ(a.autotune.comm_share, b.autotune.comm_share);
  EXPECT_EQ(a.autotune.aio_ratio, b.autotune.aio_ratio);
}
