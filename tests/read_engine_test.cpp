#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "core/read_engine.hpp"
#include "simbase/error.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

coll::FileView block_view(int rank, std::uint64_t n) {
  coll::FileView v;
  v.extents.push_back(coll::Extent{static_cast<std::uint64_t>(rank) * n, n});
  return v;
}

coll::FileView strided_view(int rank, int P, std::uint64_t piece, int rows) {
  coll::FileView v;
  for (int r = 0; r < rows; ++r) {
    v.extents.push_back(coll::Extent{
        (static_cast<std::uint64_t>(r) * static_cast<std::uint64_t>(P) +
         static_cast<std::uint64_t>(rank)) *
            piece,
        piece});
  }
  return v;
}

/// Pre-populate a file with file_byte() content via a collective write,
/// then collectively read it back with the given options and check every
/// rank got exactly its view's bytes.
void write_then_read(
    Cluster& cluster, const coll::Options& read_opt,
    const std::function<coll::FileView(int rank, int P)>& make_view) {
  auto file = cluster.storage().create("rt", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = make_view(mpi.rank(), mpi.size());
    const auto data = fill_view(view);
    coll::Options wopt;
    wopt.cb_size = read_opt.cb_size;
    coll::collective_write(mpi, *file, view, data, wopt);
    mpi.barrier();

    std::vector<std::byte> out(view.total_bytes(), std::byte{0xEE});
    coll::collective_read(mpi, *file, view, out, read_opt);
    ASSERT_EQ(out, data) << "rank " << mpi.rank() << " read wrong bytes";
  });
}

class CollectiveRead : public testing::TestWithParam<coll::OverlapMode> {};

coll::Options read_options(coll::OverlapMode m, std::uint64_t cb = 16384) {
  coll::Options o;
  o.cb_size = cb;
  o.overlap = m;
  return o;
}

}  // namespace

TEST_P(CollectiveRead, BlockViewRoundTrips) {
  Cluster cluster;
  write_then_read(cluster, read_options(GetParam()),
                  [](int r, int) { return block_view(r, 20'000); });
}

TEST_P(CollectiveRead, StridedViewRoundTrips) {
  Cluster cluster;
  write_then_read(cluster, read_options(GetParam()),
                  [](int r, int P) { return strided_view(r, P, 512, 24); });
}

TEST_P(CollectiveRead, TinyPiecesRoundTrip) {
  Cluster cluster;
  write_then_read(cluster, read_options(GetParam(), 4096),
                  [](int r, int P) { return strided_view(r, P, 64, 30); });
}

TEST_P(CollectiveRead, SomeRanksReadNothing) {
  Cluster cluster;
  write_then_read(cluster, read_options(GetParam()), [](int r, int) {
    coll::FileView v;
    if (r % 2 == 0) {
      v.extents.push_back(
          coll::Extent{static_cast<std::uint64_t>(r / 2) * 9000, 9000});
    }
    return v;
  });
}

TEST_P(CollectiveRead, SingleCycle) {
  Cluster cluster;
  write_then_read(cluster, read_options(GetParam(), 1 << 20),
                  [](int r, int) { return block_view(r, 700); });
}

TEST_P(CollectiveRead, DeterministicMakespan) {
  auto once = [&] {
    Cluster cluster;
    auto file = cluster.storage().create("rt", pfs::Integrity::Store);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto view = strided_view(mpi.rank(), mpi.size(), 768, 10);
      const auto data = fill_view(view);
      coll::Options wopt;
      wopt.cb_size = 16384;
      coll::collective_write(mpi, *file, view, data, wopt);
      std::vector<std::byte> out(view.total_bytes());
      coll::collective_read(mpi, *file, view, out,
                            read_options(GetParam()));
    });
    return cluster.conductor().makespan();
  };
  EXPECT_EQ(once(), once());
}

INSTANTIATE_TEST_SUITE_P(
    AllModes, CollectiveRead,
    testing::Values(coll::OverlapMode::None, coll::OverlapMode::Comm,
                    coll::OverlapMode::Write, coll::OverlapMode::WriteComm,
                    coll::OverlapMode::WriteComm2),
    [](const testing::TestParamInfo<coll::OverlapMode>& info) {
      std::string s = coll::to_string(info.param);
      for (char& c : s) {
        if (c == '-') c = '_';
      }
      return s;
    });

TEST(CollectiveReadMisc, OneSidedScatterRejected) {
  Cluster cluster;
  auto file = cluster.storage().create("rt", pfs::Integrity::Store);
  EXPECT_THROW(cluster.run([&](tpio::smpi::Mpi& mpi) {
                 coll::FileView v = block_view(mpi.rank(), 512);
                 std::vector<std::byte> out(512);
                 coll::Options o;
                 o.transfer = coll::Transfer::OneSidedFence;
                 coll::collective_read(mpi, *file, v, out, o);
               }),
               tpio::Error);
}

TEST(CollectiveReadMisc, UnwrittenRegionsReadZero) {
  Cluster cluster;
  auto file = cluster.storage().create("rt", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    coll::FileView v = block_view(mpi.rank(), 1000);
    std::vector<std::byte> out(1000, std::byte{0xAB});
    coll::Options o;
    o.cb_size = 4096;
    coll::collective_read(mpi, *file, v, out, o);
    for (std::byte b : out) ASSERT_EQ(b, std::byte{0});
  });
}

TEST(CollectiveReadMisc, ReadAheadOverlapsScatter) {
  // With per-request fixed costs removed (so halving the buffer is free),
  // the read-ahead scheduler must beat strict alternation: cycle c+1's
  // file read proceeds behind cycle c's scatter.
  // Equal sub-buffer (hence cycle) geometry: the overlap mode halves its
  // collective buffer internally, so give it twice the budget.
  auto run = [](coll::OverlapMode m, std::uint64_t cb) {
    ClusterSpec spec;
    spec.pfs.op_overhead = 0;
    spec.pfs.request_overhead = 0;
    Cluster cluster(spec);
    auto file = cluster.storage().create("rt", pfs::Integrity::Store);
    cluster.run([&](tpio::smpi::Mpi& mpi) {
      const auto view = block_view(mpi.rank(), 30'000);
      const auto data = fill_view(view);
      coll::Options wopt;
      wopt.cb_size = 8192;
      coll::collective_write(mpi, *file, view, data, wopt);
      std::vector<std::byte> out(view.total_bytes());
      coll::collective_read(mpi, *file, view, out, read_options(m, cb));
    });
    return cluster.conductor().makespan();
  };
  EXPECT_LT(run(coll::OverlapMode::Write, 8192),
            run(coll::OverlapMode::None, 4096));
}

TEST(CollectiveReadMisc, WriteReadCycleTagsDoNotCollide) {
  // Interleave writes and reads on the same machine repeatedly.
  Cluster cluster;
  auto f1 = cluster.storage().create("a", pfs::Integrity::Store);
  auto f2 = cluster.storage().create("b", pfs::Integrity::Store);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    coll::Options o;
    o.cb_size = 8192;
    for (int round = 0; round < 3; ++round) {
      const auto view = block_view(mpi.rank(), 5000);
      const auto data = fill_view(view);
      auto& f = round % 2 == 0 ? *f1 : *f2;
      coll::collective_write(mpi, f, view, data, o);
      std::vector<std::byte> out(view.total_bytes());
      coll::collective_read(mpi, f, view, out, o);
      ASSERT_EQ(out, data);
    }
  });
}
