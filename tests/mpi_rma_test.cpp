#include <gtest/gtest.h>

#include <cstring>
#include <functional>
#include <vector>

#include "mpi/mpi.hpp"
#include "net/fabric.hpp"
#include "simbase/error.hpp"

namespace smpi = tpio::smpi;
namespace net = tpio::net;
namespace sim = tpio::sim;

namespace {

struct Rig {
  net::Topology topo;
  net::Fabric fabric;
  sim::Conductor conductor;
  smpi::Machine machine;

  explicit Rig(int nodes, int ppn = 1, smpi::MpiParams mp = {})
      : topo{nodes, ppn},
        fabric(topo, fabric_params()),
        conductor(topo.nprocs()),
        machine(fabric, mp) {}

  static net::FabricParams fabric_params() {
    net::FabricParams p;
    p.inter_bw = 1e9;
    p.intra_bw = 4e9;
    p.inter_latency = 100;
    p.intra_latency = 10;
    return p;
  }

  void run(const std::function<void(smpi::Mpi&)>& prog) {
    conductor.run([&](sim::RankCtx& ctx) {
      smpi::Mpi mpi(machine, ctx);
      prog(mpi);
    });
  }
};

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = static_cast<std::byte>((i * 17 + seed) & 0xFF);
  }
  return v;
}

}  // namespace

TEST(MpiRma, WindowAllocationSizesPerRank) {
  Rig rig(4);
  rig.run([&](smpi::Mpi& mpi) {
    // Only rank 0 exposes memory (the aggregator pattern).
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 4096 : 0);
    EXPECT_EQ(win->local_size(0), 4096u);
    EXPECT_EQ(win->local_size(1), 0u);
    EXPECT_EQ(win->local_size(3), 0u);
  });
}

TEST(MpiRma, FencePutFenceDeliversData) {
  Rig rig(3);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 2048 : 0);
    mpi.win_fence(*win);
    if (mpi.rank() == 1) {
      mpi.put(*win, 0, 0, pattern(1024, 1));
    } else if (mpi.rank() == 2) {
      mpi.put(*win, 0, 1024, pattern(1024, 2));
    }
    mpi.win_fence(*win);
    if (mpi.rank() == 0) {
      auto mem = win->local(0);
      const auto a = pattern(1024, 1);
      const auto b = pattern(1024, 2);
      EXPECT_EQ(0, std::memcmp(mem.data(), a.data(), 1024));
      EXPECT_EQ(0, std::memcmp(mem.data() + 1024, b.data(), 1024));
    }
  });
}

TEST(MpiRma, FenceWaitsForPutArrival) {
  Rig rig(2);
  std::vector<sim::Time> t_after(2);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? (1 << 20) : 0);
    mpi.win_fence(*win);
    if (mpi.rank() == 1) {
      mpi.put(*win, 0, 0, pattern(1 << 20, 3));  // ~1 ms on the wire
    }
    mpi.win_fence(*win);
    t_after[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
  });
  // Both ranks release at/after the put's arrival (~1M ns).
  EXPECT_GE(t_after[0], 1 << 20);
  EXPECT_EQ(t_after[0], t_after[1]);
}

TEST(MpiRma, RepeatedFenceEpochsIsolated) {
  Rig rig(3);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 256 : 0);
    for (unsigned epoch = 0; epoch < 8; ++epoch) {
      mpi.win_fence(*win);
      if (mpi.rank() == 1) {
        mpi.put(*win, 0, 0, pattern(128, epoch));
      }
      mpi.win_fence(*win);
      if (mpi.rank() == 0) {
        const auto expect = pattern(128, epoch);
        EXPECT_EQ(0, std::memcmp(win->local(0).data(), expect.data(), 128))
            << "epoch " << epoch;
      }
    }
  });
}

TEST(MpiRma, PutOutsideWindowThrows) {
  Rig rig(2);
  EXPECT_THROW(rig.run([&](smpi::Mpi& mpi) {
                 auto win = mpi.win_allocate(mpi.rank() == 0 ? 128 : 0);
                 mpi.win_fence(*win);
                 if (mpi.rank() == 1) {
                   mpi.put(*win, 0, 100, pattern(64, 0));  // 100+64 > 128
                 }
                 mpi.win_fence(*win);
               }),
               tpio::Error);
}

TEST(MpiRma, SharedLocksRunConcurrently) {
  // Two origins lock-shared the same target; both must hold simultaneously
  // (no serialization beyond control latency).
  Rig rig(3);
  std::vector<sim::Time> done(3);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 4096 : 0);
    if (mpi.rank() != 0) {
      mpi.win_lock(*win, 0, smpi::Mpi::LockType::Shared);
      mpi.put(*win, 0, static_cast<std::size_t>(mpi.rank() - 1) * 2048,
              pattern(2048, static_cast<unsigned>(mpi.rank())));
      mpi.win_unlock(*win, 0);
    }
    done[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
    mpi.barrier();
    if (mpi.rank() == 0) {
      const auto a = pattern(2048, 1), b = pattern(2048, 2);
      EXPECT_EQ(0, std::memcmp(win->local(0).data(), a.data(), 2048));
      EXPECT_EQ(0, std::memcmp(win->local(0).data() + 2048, b.data(), 2048));
    }
  });
  // Concurrent: neither waited for the other's full transfer.
  const sim::Time serial_estimate = 2 * 2048 + 2 * 2048;  // two transfers serialized twice
  EXPECT_LT(std::max(done[1], done[2]), serial_estimate + 100'000);
}

TEST(MpiRma, ExclusiveLocksSerialize) {
  Rig rig(3);
  std::vector<sim::Time> got_lock(3);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 64 : 0);
    if (mpi.rank() != 0) {
      mpi.win_lock(*win, 0, smpi::Mpi::LockType::Exclusive);
      got_lock[static_cast<std::size_t>(mpi.rank())] = mpi.ctx().now();
      mpi.ctx().advance(sim::milliseconds(1.0));  // long critical section
      mpi.win_unlock(*win, 0);
    }
    mpi.barrier();
  });
  // One of them must have acquired ~1ms after the other.
  const sim::Time t1 = got_lock[1], t2 = got_lock[2];
  EXPECT_GE(std::abs(t1 - t2), sim::milliseconds(1.0));
}

TEST(MpiRma, UnlockWaitsForOwnPuts) {
  Rig rig(2);
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(mpi.rank() == 0 ? (1 << 20) : 0);
    if (mpi.rank() == 1) {
      mpi.win_lock(*win, 0, smpi::Mpi::LockType::Shared);
      mpi.put(*win, 0, 0, pattern(1 << 20, 7));
      mpi.win_unlock(*win, 0);
      // The 1 MiB put needs ~1M ns on the wire; unlock cannot return sooner.
      EXPECT_GE(mpi.ctx().now(), 1 << 20);
    }
    mpi.barrier();
  });
}

TEST(MpiRma, LockPutBarrierMakesDataVisible) {
  // The paper's passive-target scheme: shared locks + puts + barrier.
  Rig rig(5);
  rig.run([&](smpi::Mpi& mpi) {
    const std::size_t chunk = 512;
    auto win = mpi.win_allocate(mpi.rank() == 0 ? 4 * chunk : 0);
    if (mpi.rank() != 0) {
      mpi.win_lock(*win, 0, smpi::Mpi::LockType::Shared);
      mpi.put(*win, 0, static_cast<std::size_t>(mpi.rank() - 1) * chunk,
              pattern(chunk, static_cast<unsigned>(mpi.rank())));
      mpi.win_unlock(*win, 0);
    }
    mpi.barrier();
    if (mpi.rank() == 0) {
      for (unsigned s = 1; s <= 4; ++s) {
        const auto expect = pattern(chunk, s);
        EXPECT_EQ(0, std::memcmp(win->local(0).data() + (s - 1) * chunk,
                                 expect.data(), chunk));
      }
    }
  });
}

TEST(MpiRma, TwoWindowsIndependent) {
  Rig rig(2);
  rig.run([&](smpi::Mpi& mpi) {
    auto w1 = mpi.win_allocate(mpi.rank() == 0 ? 128 : 0);
    auto w2 = mpi.win_allocate(mpi.rank() == 0 ? 128 : 0);
    mpi.win_fence(*w1);
    mpi.win_fence(*w2);
    if (mpi.rank() == 1) {
      mpi.put(*w1, 0, 0, pattern(128, 1));
      mpi.put(*w2, 0, 0, pattern(128, 2));
    }
    mpi.win_fence(*w1);
    mpi.win_fence(*w2);
    if (mpi.rank() == 0) {
      const auto a = pattern(128, 1), b = pattern(128, 2);
      EXPECT_EQ(0, std::memcmp(w1->local(0).data(), a.data(), 128));
      EXPECT_EQ(0, std::memcmp(w2->local(0).data(), b.data(), 128));
    }
  });
}

TEST(MpiRma, FenceCostExceedsBarrierFreePath) {
  // A fence epoch must cost at least the synchronizing-collective time.
  Rig rig(16);
  sim::Time with_fence = 0;
  rig.run([&](smpi::Mpi& mpi) {
    auto win = mpi.win_allocate(64);
    mpi.win_fence(*win);
    mpi.win_fence(*win);
    if (mpi.rank() == 0) with_fence = mpi.ctx().now();
  });
  EXPECT_GT(with_fence, 0);
}

TEST(MpiRma, DeterministicRmaSchedule) {
  auto once = [] {
    Rig rig(6);
    sim::Time t = 0;
    rig.run([&](smpi::Mpi& mpi) {
      auto win = mpi.win_allocate(mpi.rank() < 2 ? 8192 : 0);
      for (int epoch = 0; epoch < 4; ++epoch) {
        mpi.win_fence(*win);
        if (mpi.rank() >= 2) {
          mpi.put(*win, mpi.rank() % 2,
                  static_cast<std::size_t>(mpi.rank() - 2) * 512,
                  pattern(512, static_cast<unsigned>(epoch)));
        }
        mpi.win_fence(*win);
      }
      if (mpi.rank() == 0) t = mpi.ctx().now();
    });
    return t;
  };
  EXPECT_EQ(once(), once());
}
