#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "simbase/crc.hpp"
#include "simbase/error.hpp"
#include "simbase/rng.hpp"
#include "simbase/stats.hpp"
#include "simbase/time.hpp"
#include "simbase/units.hpp"

namespace sim = tpio::sim;

// ---------------------------------------------------------------- time

TEST(Time, TransferTimeBasics) {
  // 1 GiB/s -> 1 byte takes ~1 ns (ceil).
  EXPECT_EQ(sim::transfer_time(1, 1e9), 1);
  EXPECT_EQ(sim::transfer_time(0, 1e9), 0);
  // 1000 bytes at 1 GB/s = 1 us.
  EXPECT_EQ(sim::transfer_time(1000, 1e9), 1000);
}

TEST(Time, TransferTimeRoundsUp) {
  // 3 bytes at 2 bytes/ns = 1.5 ns -> 2 ns.
  EXPECT_EQ(sim::transfer_time(3, 2e9), 2);
}

TEST(Time, TransferTimeZeroBandwidthNever) {
  EXPECT_EQ(sim::transfer_time(10, 0.0), sim::kTimeNever);
}

TEST(Time, Literals) {
  EXPECT_EQ(sim::microseconds(1.0), 1000);
  EXPECT_EQ(sim::milliseconds(1.0), 1000000);
  EXPECT_EQ(sim::seconds(1.0), 1000000000);
  EXPECT_DOUBLE_EQ(sim::to_seconds(sim::seconds(2.5)), 2.5);
}

TEST(Time, Format) {
  EXPECT_EQ(sim::format_time(500), "500 ns");
  EXPECT_EQ(sim::format_time(sim::microseconds(1.5)), "1.500 us");
  EXPECT_EQ(sim::format_time(sim::milliseconds(12.345)), "12.345 ms");
  EXPECT_EQ(sim::format_time(sim::seconds(3.0)), "3.000 s");
}

// ---------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  sim::Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiffer) {
  sim::Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_EQ(same, 0);
}

TEST(Rng, DoubleInUnitInterval) {
  sim::Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = r.next_double();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, NextBelowInRange) {
  sim::Rng r(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextBelowRejectsZero) {
  sim::Rng r(9);
  EXPECT_THROW(r.next_below(0), tpio::Error);
}

TEST(Rng, NormalRoughlyStandard) {
  sim::Rng r(123);
  double sum = 0, sum2 = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = r.next_normal();
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.05);
  EXPECT_NEAR(var, 1.0, 0.1);
}

TEST(Rng, DeriveSeedDecorrelates) {
  const auto s1 = sim::Rng::derive_seed(42, 0);
  const auto s2 = sim::Rng::derive_seed(42, 1);
  EXPECT_NE(s1, s2);
  EXPECT_NE(s1, 42u);
}

TEST(Noise, ZeroSigmaIsIdentity) {
  sim::NoiseModel n(0.0, 1);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(n.factor(), 1.0);
}

TEST(Noise, PositiveSigmaVariesAroundOne) {
  sim::NoiseModel n(0.1, 77);
  double sum = 0;
  const int k = 10000;
  bool varied = false;
  double first = n.factor();
  for (int i = 0; i < k; ++i) {
    const double f = n.factor();
    EXPECT_GT(f, 0.0);
    if (f != first) varied = true;
    sum += f;
  }
  EXPECT_TRUE(varied);
  // lognormal mean = exp(sigma^2/2) ~ 1.005
  EXPECT_NEAR(sum / k, 1.005, 0.05);
}

// ---------------------------------------------------------------- units

TEST(Units, ParsePlainBytes) {
  EXPECT_EQ(sim::parse_bytes("0"), 0u);
  EXPECT_EQ(sim::parse_bytes("512"), 512u);
  EXPECT_EQ(sim::parse_bytes("512B"), 512u);
}

TEST(Units, ParseSuffixes) {
  EXPECT_EQ(sim::parse_bytes("1K"), 1024u);
  EXPECT_EQ(sim::parse_bytes("1kb"), 1024u);
  EXPECT_EQ(sim::parse_bytes("1KiB"), 1024u);
  EXPECT_EQ(sim::parse_bytes("32MB"), 32u * sim::MiB);
  EXPECT_EQ(sim::parse_bytes("2g"), 2u * sim::GiB);
  EXPECT_EQ(sim::parse_bytes("1.5M"), 1536u * sim::KiB);
  EXPECT_EQ(sim::parse_bytes(" 4 MiB "), 4u * sim::MiB);
}

TEST(Units, ParseRejectsGarbage) {
  EXPECT_THROW(sim::parse_bytes(""), tpio::Error);
  EXPECT_THROW(sim::parse_bytes("abc"), tpio::Error);
  EXPECT_THROW(sim::parse_bytes("12X"), tpio::Error);
  EXPECT_THROW(sim::parse_bytes("-5M"), tpio::Error);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(sim::format_bytes(512), "512 B");
  EXPECT_EQ(sim::format_bytes(2 * sim::MiB), "2.00 MiB");
  EXPECT_EQ(sim::format_bytes(3 * sim::GiB), "3.00 GiB");
}

TEST(Units, RoundTripParseFormat) {
  for (std::uint64_t v : {1ull, 100ull, 4096ull, 1ull << 20, 7ull << 30}) {
    EXPECT_EQ(sim::parse_bytes(std::to_string(v)), v);
  }
}

// ---------------------------------------------------------------- stats

TEST(Stats, BasicMoments) {
  sim::Summary s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.median(), 2.5);
  EXPECT_NEAR(s.stddev(), 1.29099, 1e-4);
}

TEST(Stats, SingleValue) {
  sim::Summary s;
  s.add(5.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
  EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Stats, EmptyThrows) {
  sim::Summary s;
  EXPECT_TRUE(s.empty());
  EXPECT_THROW(s.min(), tpio::Error);
  EXPECT_THROW(s.mean(), tpio::Error);
}

TEST(Stats, Percentile) {
  sim::Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
  EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Stats, RelativeImprovement) {
  EXPECT_DOUBLE_EQ(sim::relative_improvement(10.0, 8.0), 0.2);
  EXPECT_DOUBLE_EQ(sim::relative_improvement(10.0, 12.0), -0.2);
  EXPECT_THROW(sim::relative_improvement(0.0, 1.0), tpio::Error);
}

// ---------------------------------------------------------------- crc

TEST(Crc, EmptyIsSeedStable) {
  EXPECT_EQ(sim::crc64({}), sim::crc64({}));
}

TEST(Crc, DetectsSingleBitFlip) {
  std::vector<std::byte> a(256), b(256);
  for (int i = 0; i < 256; ++i) a[i] = b[i] = static_cast<std::byte>(i);
  b[100] ^= std::byte{1};
  EXPECT_NE(sim::crc64(a), sim::crc64(b));
}

TEST(Crc, SeedChaining) {
  // crc(whole) differs from crc(parts) in general, but chaining must be
  // deterministic and order-sensitive.
  std::vector<std::byte> a(64, std::byte{0xAB}), b(64, std::byte{0xCD});
  const auto c1 = sim::crc64(sim::crc64(a), b);
  const auto c2 = sim::crc64(sim::crc64(a), b);
  EXPECT_EQ(c1, c2);
  EXPECT_NE(c1, sim::crc64(sim::crc64(b), a));
}

TEST(Crc, KnownDistinctInputsDistinct) {
  std::vector<std::byte> x{std::byte{1}, std::byte{2}, std::byte{3}};
  std::vector<std::byte> y{std::byte{3}, std::byte{2}, std::byte{1}};
  EXPECT_NE(sim::crc64(x), sim::crc64(y));
}
