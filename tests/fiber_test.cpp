#include <gtest/gtest.h>

#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "sched/fiber.hpp"

namespace sim = tpio::sim;
using sim::Fiber;

namespace {

constexpr std::size_t kStack = 64 * 1024;

}  // namespace

TEST(Fiber, RunsToCompletionOnFirstResume) {
  int hits = 0;
  Fiber f(kStack, [](void* p) { ++*static_cast<int*>(p); }, &hits);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(hits, 1);
}

TEST(Fiber, SuspendReturnsControlToResumer) {
  struct State {
    std::vector<int> log;
  } st;
  Fiber f(
      kStack,
      [](void* p) {
        auto* s = static_cast<State*>(p);
        s->log.push_back(1);
        Fiber::suspend();
        s->log.push_back(3);
        Fiber::suspend();
        s->log.push_back(5);
      },
      &st);
  f.resume();
  st.log.push_back(2);
  f.resume();
  st.log.push_back(4);
  EXPECT_FALSE(f.finished());
  f.resume();
  EXPECT_TRUE(f.finished());
  EXPECT_EQ(st.log, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(Fiber, CurrentTracksTheRunningFiber) {
  EXPECT_EQ(Fiber::current(), nullptr);
  Fiber* seen = nullptr;
  Fiber f(kStack, [](void* p) { *static_cast<Fiber**>(p) = Fiber::current(); },
          &seen);
  f.resume();
  EXPECT_EQ(seen, &f);
  EXPECT_EQ(Fiber::current(), nullptr);
}

TEST(Fiber, StacksAreIndependent) {
  // Two fibers interleave deep-ish call chains; each must keep its own
  // locals intact across the other's execution.
  struct State {
    int id;
    long sum = 0;
  };
  auto body = [](void* p) {
    auto* s = static_cast<State*>(p);
    long local[64];
    for (int i = 0; i < 64; ++i) local[i] = s->id * 1000 + i;
    Fiber::suspend();
    for (int i = 0; i < 64; ++i) s->sum += local[i];
  };
  State a{1}, b{2};
  Fiber fa(kStack, body, &a);
  Fiber fb(kStack, body, &b);
  fa.resume();
  fb.resume();
  fa.resume();
  fb.resume();
  long expect_a = 0, expect_b = 0;
  for (int i = 0; i < 64; ++i) {
    expect_a += 1000 + i;
    expect_b += 2000 + i;
  }
  EXPECT_EQ(a.sum, expect_a);
  EXPECT_EQ(b.sum, expect_b);
}

TEST(Fiber, ThousandsOfFibersFitInMemory) {
  // MAP_NORESERVE + guard-page stacks: creating a paper-scale fiber count
  // must neither exhaust memory nor descriptors. Each runs a shallow body.
  // TSan keeps per-fiber shadow state in its own fixed-size allocator,
  // which 8192 fibers exhaust; scale down there (the interleaving
  // coverage is unchanged — memory-fit is a non-sanitized property).
#if defined(__SANITIZE_THREAD__)
#define TPIO_TEST_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define TPIO_TEST_TSAN 1
#endif
#endif
#ifdef TPIO_TEST_TSAN
  const int n = 512;
#else
  const int n = 8192;
#endif
  long sum = 0;
  std::vector<std::unique_ptr<Fiber>> fibers;
  fibers.reserve(n);
  for (int i = 0; i < n; ++i) {
    fibers.push_back(std::make_unique<Fiber>(
        Fiber::default_stack_bytes(),
        [](void* p) {
          ++*static_cast<long*>(p);
          Fiber::suspend();
          ++*static_cast<long*>(p);
        },
        &sum));
  }
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(sum, n);
  for (auto& f : fibers) f->resume();
  EXPECT_EQ(sum, 2L * n);
  for (auto& f : fibers) EXPECT_TRUE(f->finished());
}

TEST(Fiber, DefaultStackRespectsEnvOverride) {
  // Save/restore around the probe; default_stack_bytes re-reads the env on
  // every call.
  const char* old = std::getenv("TPIO_FIBER_STACK_KB");
  const std::string saved = old ? old : "";
  ::setenv("TPIO_FIBER_STACK_KB", "512", 1);
  EXPECT_EQ(Fiber::default_stack_bytes(), 512u * 1024u);
  if (old) {
    ::setenv("TPIO_FIBER_STACK_KB", saved.c_str(), 1);
  } else {
    ::unsetenv("TPIO_FIBER_STACK_KB");
  }
}
