// Fuzz the deterministic conductor with random interaction graphs: random
// local advances, random cross-rank event completions and waits. Whatever
// the host scheduler does, the virtual schedule must be identical across
// reruns and causally sound (no event observed before its completion
// time).

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/conductor.hpp"
#include "sched/sync.hpp"
#include "simbase/rng.hpp"

namespace sim = tpio::sim;

namespace {

struct Log {
  std::vector<std::tuple<int, int, sim::Time>> entries;  // (rank, step, t)
};

/// Random program: each rank alternates local work, completing "its" events
/// and waiting on pseudo-random other ranks' events of earlier steps.
Log run_random_program(std::uint64_t seed, int P, int steps,
                       sim::ConductorBackend backend =
                           sim::Conductor::default_backend()) {
  sim::Conductor c(P, backend);
  // events[r][s]: completed by rank r at its step s.
  std::vector<std::vector<sim::EventPtr>> events(
      static_cast<std::size_t>(P));
  for (auto& v : events) {
    for (int s = 0; s < steps; ++s) v.push_back(std::make_shared<sim::Event>());
  }
  sim::SyncPoint barrier(P);
  Log log;
  c.run([&](sim::RankCtx& ctx) {
    const int r = ctx.rank();
    sim::Rng rng(sim::Rng::derive_seed(seed, static_cast<std::uint64_t>(r)));
    for (int s = 0; s < steps; ++s) {
      ctx.advance(static_cast<sim::Duration>(1 + rng.next_below(997)));
      // Complete my event for this step.
      ctx.act([&] {
        ctx.complete(*events[static_cast<std::size_t>(r)][static_cast<std::size_t>(s)],
                     ctx.now() + static_cast<sim::Time>(rng.next_below(500)));
      });
      // Wait on a random earlier-step event of a random rank. Earlier steps
      // only, so the dependency graph is acyclic across the barrier below.
      if (s > 0) {
        const int peer = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(P)));
        const int dep = static_cast<int>(rng.next_below(static_cast<std::uint64_t>(s)));
        sim::Event& ev =
            *events[static_cast<std::size_t>(peer)][static_cast<std::size_t>(dep)];
        ctx.wait_event(ev);
        EXPECT_GE(ctx.now(), ev.time());  // causality
      }
      // Periodic barrier keeps all ranks within one step of each other, so
      // every waited-on event is eventually completed (no deadlock).
      barrier.arrive(ctx);
      ctx.act([&] { log.entries.emplace_back(r, s, ctx.now()); });
    }
  });
  return log;
}

class ConductorFuzz : public testing::TestWithParam<std::uint64_t> {};

}  // namespace

TEST_P(ConductorFuzz, DeterministicRandomGraphs) {
  const auto a = run_random_program(GetParam(), 9, 12);
  const auto b = run_random_program(GetParam(), 9, 12);
  EXPECT_EQ(a.entries, b.entries);
}

TEST_P(ConductorFuzz, CommittedActionsNondecreasing) {
  const auto log = run_random_program(GetParam() ^ 0x5EED, 7, 10);
  sim::Time prev = 0;
  for (const auto& [rank, step, t] : log.entries) {
    EXPECT_GE(t, prev) << "action committed out of virtual-time order";
    prev = t;
  }
}

TEST_P(ConductorFuzz, FiberAndThreadSchedulesBitIdentical) {
  // The cross-backend differential: the same random interaction graph must
  // produce entry-for-entry identical action logs on the cooperative fiber
  // scheduler and on the legacy thread-per-rank backend.
  const auto fibers = run_random_program(GetParam() ^ 0xD1FF, 11, 14,
                                         sim::ConductorBackend::Fibers);
  const auto threads = run_random_program(GetParam() ^ 0xD1FF, 11, 14,
                                          sim::ConductorBackend::Threads);
  EXPECT_EQ(fibers.entries, threads.entries);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConductorFuzz,
                         testing::Values(101u, 202u, 303u, 404u, 505u));
