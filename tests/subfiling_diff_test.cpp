// Differential suite pinning the subfiling machinery's k == 1 degeneracy:
// a shared-file run routed through the multi-group machinery (forced by a
// per-subfile striping override equal to the platform default) must be
// bit-identical field-by-field to the inline solo runner, on every
// scheduler, shuffle primitive, hierarchy setting, seed, --jobs value and
// conductor backend. This is the contract that lets Options::sub_comm_count
// default to 1 without perturbing a single historical result.
//
// Registered under the `subfiling` ctest label (tests/CMakeLists.txt).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "harness/cli.hpp"
#include "harness/runner.hpp"
#include "harness/sweep.hpp"
#include "harness/tenancy.hpp"
#include "sched/conductor.hpp"

namespace coll = tpio::coll;
namespace sim = tpio::sim;
namespace wl = tpio::wl;
namespace xp = tpio::xp;

namespace {

/// Force a backend for the duration of one test body.
class BackendGuard {
 public:
  explicit BackendGuard(sim::ConductorBackend b)
      : prev_(sim::Conductor::default_backend()) {
    sim::Conductor::set_default_backend(b);
  }
  ~BackendGuard() { sim::Conductor::set_default_backend(prev_); }

 private:
  sim::ConductorBackend prev_;
};

/// Every RunResult field (verify_error included — both paths verify).
std::string fp(const xp::RunResult& r) {
  std::string s;
  auto add = [&](auto v) {
    s += std::to_string(v);
    s += '|';
  };
  auto add_timings = [&](const coll::PhaseTimings& t) {
    add(t.meta);
    add(t.pack);
    add(t.gather);
    add(t.forward);
    add(t.shuffle);
    add(t.sync);
    add(t.write);
    add(t.backoff);
    add(t.total);
  };
  add(r.arrival);
  add(r.completion);
  add(r.makespan);
  add_timings(r.rank_sum);
  add_timings(r.agg_sum);
  add_timings(r.agg_max);
  add(r.aggregators);
  add(r.cycles);
  add(r.bytes);
  add(r.inter_node_bytes);
  add(r.inter_node_messages);
  add(r.intra_node_bytes);
  add(r.pipelined_overlap);
  add(r.autotune.engaged);
  add(static_cast<int>(r.autotune.chosen));
  add(r.faults.retries);
  add(r.faults.giveups);
  add(r.faults.degraded_cycles);
  add(r.subfiles.size());
  s += r.io_error;
  s += '|';
  s += r.verify_error;
  s += '|';
  return s;
}

xp::RunSpec base_spec(wl::Spec w, int procs) {
  xp::RunSpec s;
  s.platform = xp::scaled(xp::ibex());
  s.workload = std::move(w);
  s.nprocs = procs;
  s.options.cb_size = xp::kCbSize;
  s.seed = 0xD1FF;
  s.verify = true;
  return s;
}

/// Route `spec` through the subfiling machinery without changing the
/// physical layout: one subfile striped exactly like the shared file.
xp::RunSpec forced(const xp::RunSpec& spec) {
  xp::RunSpec f = spec;
  f.options.subfile_stripe_unit = spec.platform.pfs.stripe_size;
  return f;
}

}  // namespace

TEST(SubfilingDiff, SharedFileIdenticalAcrossSchedulersPrimitivesHierarchy) {
  // The full option matrix: 5 schedulers x 3 primitives x hier on/off.
  BackendGuard guard(sim::ConductorBackend::Fibers);
  for (int m = 0; m < 5; ++m) {
    for (int t = 0; t < 3; ++t) {
      for (bool hier : {false, true}) {
        xp::RunSpec spec = base_spec(wl::make_tile1m(1, 1), 16);
        spec.options.overlap = static_cast<coll::OverlapMode>(m);
        spec.options.transfer = static_cast<coll::Transfer>(t);
        spec.options.hierarchical = hier;
        const std::string what =
            std::string(coll::to_string(spec.options.overlap)) + "/" +
            coll::to_string(spec.options.transfer) + " hier=" +
            std::to_string(hier);
        EXPECT_EQ(fp(xp::execute(spec)), fp(xp::execute(forced(spec))))
            << what;
      }
    }
  }
}

TEST(SubfilingDiff, SharedFileIdenticalAcrossSeedsAndBackends) {
  for (sim::ConductorBackend b :
       {sim::ConductorBackend::Fibers, sim::ConductorBackend::Threads}) {
    BackendGuard guard(b);
    for (std::uint64_t seed : {1ull, 0xD1FFull, 0xABCDEF01ull}) {
      xp::RunSpec spec = base_spec(wl::make_tile256(2, 256), 16);
      spec.options.overlap = coll::OverlapMode::WriteComm2;
      spec.seed = seed;
      EXPECT_EQ(fp(xp::execute(spec)), fp(xp::execute(forced(spec))))
          << "seed=" << seed;
    }
  }
}

TEST(SubfilingDiff, QuickSweepIdenticalAcrossJobsAndBackends) {
  // The acceptance differential: the quick Table-I sweep routed through
  // the subfiling machinery (k = 1 forced) must produce the identical
  // table as the plain path, for every (backend, --jobs) corner. Exact
  // double equality — the timeline is integer nanoseconds.
  struct Corner {
    sim::ConductorBackend backend;
    int jobs;
    bool force;
  };
  const Corner corners[] = {
      {sim::ConductorBackend::Fibers, 1, false},
      {sim::ConductorBackend::Fibers, 8, true},
      {sim::ConductorBackend::Threads, 1, true},
      {sim::ConductorBackend::Threads, 8, false},
  };
  std::vector<std::vector<xp::OverlapSeries>> tables;
  for (const Corner& c : corners) {
    BackendGuard guard(c.backend);
    xp::ExecOptions exec;
    exec.jobs = c.jobs;
    // The bench grid runs the scaled stand-in platform, so the no-op
    // striping override must match the *scaled* stripe size.
    coll::Options base;
    if (c.force) {
      base.subfile_stripe_unit = xp::scaled(xp::ibex()).pfs.stripe_size;
    }
    tables.push_back(
        xp::run_overlap_sweep(xp::ibex(), base, 1, 0x5F1D, true, exec));
  }
  for (std::size_t k = 1; k < tables.size(); ++k) {
    ASSERT_EQ(tables[k].size(), tables[0].size());
    for (std::size_t i = 0; i < tables[0].size(); ++i) {
      EXPECT_EQ(tables[k][i].procs, tables[0][i].procs);
      EXPECT_EQ(tables[k][i].min_ms, tables[0][i].min_ms)
          << "corner " << k << " series " << i;
    }
  }
}

TEST(SubfilingDiff, SharedFileRunsCarryNoSubfileResults) {
  // The k == 1 RunResult must compare equal to the pre-subfiling struct
  // field-for-field; in particular `subfiles` stays empty even when the
  // run was routed through the multi-group machinery.
  xp::RunSpec spec = base_spec(wl::make_ior(1u << 19), 16);
  const xp::RunResult plain = xp::execute(spec);
  const xp::RunResult routed = xp::execute(forced(spec));
  EXPECT_TRUE(plain.subfiles.empty());
  EXPECT_TRUE(routed.subfiles.empty());
}
