#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <vector>

#include "sched/conductor.hpp"
#include "simbase/error.hpp"

namespace sim = tpio::sim;
using sim::Conductor;
using sim::ConductorBackend;
using sim::Event;
using sim::EventPtr;
using sim::RankCtx;
using sim::Time;

// Every behavioural test runs on both rank substrates: the cooperative
// fiber scheduler (default) and the legacy thread-per-rank backend kept
// for differential checks.
class ConductorBackends
    : public ::testing::TestWithParam<ConductorBackend> {};

INSTANTIATE_TEST_SUITE_P(
    Backends, ConductorBackends,
    ::testing::Values(ConductorBackend::Fibers, ConductorBackend::Threads),
    [](const ::testing::TestParamInfo<ConductorBackend>& info) {
      return std::string(sim::to_string(info.param));
    });

TEST_P(ConductorBackends, SingleRankAdvances) {
  Conductor c(1, GetParam());
  c.run([](RankCtx& ctx) {
    EXPECT_EQ(ctx.now(), 0);
    ctx.advance(100);
    EXPECT_EQ(ctx.now(), 100);
    ctx.advance_to(50);  // no-op backwards
    EXPECT_EQ(ctx.now(), 100);
    ctx.advance_to(200);
    EXPECT_EQ(ctx.now(), 200);
  });
  EXPECT_EQ(c.finish_time(0), 200);
  EXPECT_EQ(c.makespan(), 200);
}

TEST_P(ConductorBackends, NegativeAdvanceThrows) {
  Conductor c(1, GetParam());
  EXPECT_THROW(c.run([](RankCtx& ctx) { ctx.advance(-1); }), tpio::Error);
}

TEST_P(ConductorBackends, ActionsExecuteInVirtualTimeOrder) {
  // Ranks act at staggered clocks; the shared log must observe ascending
  // virtual times regardless of host scheduling.
  const int n = 16;
  Conductor c(n, GetParam());
  std::vector<std::pair<Time, int>> log;
  c.run([&](RankCtx& ctx) {
    // Rank r performs 10 actions at clocks r, r+n, r+2n, ...
    for (int i = 0; i < 10; ++i) {
      ctx.advance_to(static_cast<Time>(ctx.rank() + i * n));
      ctx.act([&] { log.emplace_back(ctx.now(), ctx.rank()); });
    }
  });
  ASSERT_EQ(log.size(), 160u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first)
        << "action " << i << " committed out of order";
  }
}

TEST_P(ConductorBackends, TieBreakByRankId) {
  const int n = 8;
  Conductor c(n, GetParam());
  std::vector<int> order;
  c.run([&](RankCtx& ctx) {
    ctx.act([&] { order.push_back(ctx.rank()); });
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST_P(ConductorBackends, EventWaitAdvancesToCompletionTime) {
  Conductor c(2, GetParam());
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(1000);
      ctx.act([&] { ctx.complete(*ev, 1500); });
    } else {
      ctx.wait_event(*ev);
      EXPECT_EQ(ctx.now(), 1500);
    }
  });
  EXPECT_EQ(c.finish_time(1), 1500);
}

TEST_P(ConductorBackends, WaitOnAlreadyDoneEventJumpsForward) {
  Conductor c(2, GetParam());
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.act([&] { ctx.complete(*ev, 700); });
    } else {
      ctx.advance(10'000);  // waiter is already past the completion time
      ctx.wait_event(*ev);
      EXPECT_EQ(ctx.now(), 10'000);  // clock never moves backwards
    }
  });
}

TEST_P(ConductorBackends, CompleteBeforeActorClockThrows) {
  Conductor c(1, GetParam());
  auto ev = std::make_shared<Event>();
  EXPECT_THROW(c.run([&](RankCtx& ctx) {
                 ctx.advance(100);
                 ctx.act([&] { ctx.complete(*ev, 50); });
               }),
               tpio::Error);
}

TEST_P(ConductorBackends, DoubleCompleteThrows) {
  Conductor c(1, GetParam());
  auto ev = std::make_shared<Event>();
  EXPECT_THROW(c.run([&](RankCtx& ctx) {
                 ctx.act([&] { ctx.complete(*ev, 1); });
                 ctx.act([&] { ctx.complete(*ev, 2); });
               }),
               tpio::Error);
}

TEST_P(ConductorBackends, WaitAllEventsEndsAtMax) {
  Conductor c(2, GetParam());
  auto e1 = std::make_shared<Event>();
  auto e2 = std::make_shared<Event>();
  auto e3 = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.act([&] {
        ctx.complete(*e1, 300);
        ctx.complete(*e2, 900);
        ctx.complete(*e3, 600);
      });
    } else {
      std::vector<EventPtr> evs{e1, e2, e3};
      ctx.wait_all_events(evs);
      EXPECT_EQ(ctx.now(), 900);
    }
  });
}

TEST_P(ConductorBackends, TestEventSeesOnlyPastCompletions) {
  Conductor c(2, GetParam());
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      // Completes the event with a *future* timestamp.
      ctx.act([&] { ctx.complete(*ev, 5000); });
    } else {
      ctx.advance(1000);
      EXPECT_FALSE(ctx.test_event(*ev));  // done, but at t=5000 > 1000
      ctx.advance_to(6000);
      EXPECT_TRUE(ctx.test_event(*ev));
    }
  });
}

TEST_P(ConductorBackends, TestEventChargesPollCost) {
  Conductor c(1, GetParam());
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    ctx.act([&] { ctx.complete(*ev, 0); });
    ctx.test_event(*ev, 25);
    EXPECT_EQ(ctx.now(), 25);
  });
}

TEST_P(ConductorBackends, DeadlockDetected) {
  Conductor c(2, GetParam());
  auto ev = std::make_shared<Event>();  // nobody completes it
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() == 1) ctx.wait_event(*ev);
    });
    FAIL() << "expected deadlock error";
  } catch (const tpio::Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST_P(ConductorBackends, AllRanksBlockedDeadlockDetected) {
  Conductor c(3, GetParam());
  auto ev = std::make_shared<Event>();
  EXPECT_THROW(c.run([&](RankCtx& ctx) { ctx.wait_event(*ev); }), tpio::Error);
}

TEST_P(ConductorBackends, DeadlockReportNamesSiteAndClock) {
  Conductor c(2, GetParam());
  auto ev = std::make_shared<Event>();
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() == 1) {
        ctx.advance(420);
        ctx.wait_event(*ev, "test.rendezvous");
      }
    });
    FAIL() << "expected deadlock error";
  } catch (const tpio::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 1: test.rendezvous @420ns"), std::string::npos)
        << msg;
  }
}

TEST_P(ConductorBackends, DeadlockReportTruncatesToSixteenRanks) {
  const int n = 24;  // 16 listed + 8 elided
  Conductor c(n, GetParam());
  auto ev = std::make_shared<Event>();
  try {
    c.run([&](RankCtx& ctx) { ctx.wait_event(*ev, "test.hang"); });
    FAIL() << "expected deadlock error";
  } catch (const tpio::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("rank 15: test.hang"), std::string::npos) << msg;
    EXPECT_EQ(msg.find("rank 16:"), std::string::npos) << msg;
    EXPECT_NE(msg.find("+8 more"), std::string::npos) << msg;
  }
}

TEST_P(ConductorBackends, FinishingRankRecordsDeadlockVerdict) {
  // The last runnable rank finishing (not blocking) is what exposes the
  // deadlock; the verdict must be recorded in first_error_ and rethrown
  // from run() — the historical bug swallowed the throw on this path.
  Conductor c(3, GetParam());
  auto ev = std::make_shared<Event>();
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() != 0) ctx.wait_event(*ev, "test.orphaned");
      // Rank 0 finishes without completing ev.
    });
    FAIL() << "expected deadlock error";
  } catch (const tpio::Error& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("deadlock"), std::string::npos) << msg;
    EXPECT_NE(msg.find("test.orphaned"), std::string::npos) << msg;
  }
}

TEST_P(ConductorBackends, ExceptionInOneRankPropagates) {
  Conductor c(4, GetParam());
  auto ev = std::make_shared<Event>();
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() == 2) throw std::runtime_error("boom");
      ctx.wait_event(*ev);  // would otherwise deadlock
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    // Either the original error or the deadlock/abort notice, depending on
    // which thread records first; the original must win when rank 2 is
    // first to fail.
    SUCCEED();
  }
}

TEST_P(ConductorBackends, AbortWakesEveryBlockedRankExactlyOnce) {
  // Many ranks block; one throws. Every blocked rank must be released by
  // the abort protocol exactly once (the conductor asserts the wake count
  // internally) and run() must rethrow the original error. TSan-clean.
  const int n = 32;
  Conductor c(n, GetParam());
  auto ev = std::make_shared<Event>();
  std::atomic<int> unwound{0};
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() == n - 1) {
        ctx.advance(1'000'000);  // throw strictly after everyone blocked
        ctx.act([] {});
        throw std::runtime_error("late failure");
      }
      try {
        ctx.wait_event(*ev, "test.abort_wake");
      } catch (...) {
        unwound.fetch_add(1, std::memory_order_relaxed);
        throw;
      }
    });
    FAIL() << "expected exception";
  } catch (const std::exception&) {
    SUCCEED();
  }
  EXPECT_EQ(unwound.load(), n - 1);
}

TEST_P(ConductorBackends, DeterministicScheduleAcrossRuns) {
  // The exact interleaving (and thus the shared log) must be identical on
  // every execution with identical programs.
  auto run_once = [&] {
    Conductor c(8, GetParam());
    std::vector<std::pair<Time, int>> log;
    auto ev = std::make_shared<Event>();
    c.run([&](RankCtx& ctx) {
      const int r = ctx.rank();
      ctx.advance(static_cast<sim::Duration>((r * 37) % 11));
      ctx.act([&] { log.emplace_back(ctx.now(), r); });
      if (r == 0) {
        ctx.advance(100);
        ctx.act([&] { ctx.complete(*ev, ctx.now() + 5); });
      } else {
        ctx.wait_event(*ev);
      }
      ctx.act([&] { log.emplace_back(ctx.now(), r); });
    });
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  const auto d = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, d);
}

TEST(Conductor, BackendsProduceIdenticalSchedules) {
  // The determinism contract across substrates: the shared action log of
  // the fiber scheduler must equal the thread-per-rank log entry for entry.
  auto run_once = [](ConductorBackend backend) {
    Conductor c(12, backend);
    std::vector<std::pair<Time, int>> log;
    auto ev = std::make_shared<Event>();
    c.run([&](RankCtx& ctx) {
      const int r = ctx.rank();
      ctx.advance(static_cast<sim::Duration>((r * 53) % 17));
      ctx.act([&] { log.emplace_back(ctx.now(), r); });
      if (r == 0) {
        ctx.advance(200);
        ctx.act([&] { ctx.complete(*ev, ctx.now() + 9); });
      } else {
        ctx.wait_event(*ev);
      }
      ctx.act([&] { log.emplace_back(ctx.now(), r); });
    });
    return log;
  };
  EXPECT_EQ(run_once(ConductorBackend::Fibers),
            run_once(ConductorBackend::Threads));
}

TEST_P(ConductorBackends, ManyRanksStress) {
  const int n = 128;
  Conductor c(n, GetParam());
  std::vector<EventPtr> evs;
  for (int i = 0; i < n; ++i) evs.push_back(std::make_shared<Event>());
  // Chain: rank r waits for event r-1, then completes event r.
  c.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    if (r > 0) ctx.wait_event(*evs[static_cast<std::size_t>(r - 1)]);
    ctx.advance(10);
    ctx.act([&] { ctx.complete(*evs[static_cast<std::size_t>(r)], ctx.now()); });
  });
  // Serial chain: each rank adds 10ns.
  EXPECT_EQ(c.finish_time(n - 1), 10 * n);
  EXPECT_EQ(c.makespan(), 10 * n);
}

TEST(Conductor, FibersScaleToThousandsOfRanks) {
  // Thread-per-rank topped out near host thread limits; the fiber backend
  // must take rank counts that only fit as user-space stacks.
  const int n = 2048;
  Conductor c(n, ConductorBackend::Fibers);
  std::vector<EventPtr> evs;
  for (int i = 0; i < n; ++i) evs.push_back(std::make_shared<Event>());
  c.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    if (r > 0) ctx.wait_event(*evs[static_cast<std::size_t>(r - 1)]);
    ctx.advance(1);
    ctx.act([&] { ctx.complete(*evs[static_cast<std::size_t>(r)], ctx.now()); });
  });
  EXPECT_EQ(c.makespan(), n);
}

TEST_P(ConductorBackends, ActionCounterCounts) {
  Conductor c(2, GetParam());
  c.run([](RankCtx& ctx) {
    ctx.act([] {});
    ctx.act([] {});
  });
  EXPECT_GE(c.actions(), 4u);
}

TEST_P(ConductorBackends, FinishTimeBeforeDoneThrows) {
  Conductor c(1, GetParam());
  EXPECT_THROW((void)c.finish_time(0), tpio::Error);
  EXPECT_THROW((void)c.finish_time(5), tpio::Error);
}

TEST(Conductor, EnvSelectsDefaultBackend) {
  // set_default_backend overrides whatever TPIO_CONDUCTOR resolved to.
  const ConductorBackend before = Conductor::default_backend();
  Conductor::set_default_backend(ConductorBackend::Threads);
  EXPECT_EQ(Conductor(1).backend(), ConductorBackend::Threads);
  Conductor::set_default_backend(ConductorBackend::Fibers);
  EXPECT_EQ(Conductor(1).backend(), ConductorBackend::Fibers);
  Conductor::set_default_backend(before);
}
