#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "sched/conductor.hpp"
#include "simbase/error.hpp"

namespace sim = tpio::sim;
using sim::Conductor;
using sim::Event;
using sim::EventPtr;
using sim::RankCtx;
using sim::Time;

TEST(Conductor, SingleRankAdvances) {
  Conductor c(1);
  c.run([](RankCtx& ctx) {
    EXPECT_EQ(ctx.now(), 0);
    ctx.advance(100);
    EXPECT_EQ(ctx.now(), 100);
    ctx.advance_to(50);  // no-op backwards
    EXPECT_EQ(ctx.now(), 100);
    ctx.advance_to(200);
    EXPECT_EQ(ctx.now(), 200);
  });
  EXPECT_EQ(c.finish_time(0), 200);
  EXPECT_EQ(c.makespan(), 200);
}

TEST(Conductor, NegativeAdvanceThrows) {
  Conductor c(1);
  EXPECT_THROW(c.run([](RankCtx& ctx) { ctx.advance(-1); }), tpio::Error);
}

TEST(Conductor, ActionsExecuteInVirtualTimeOrder) {
  // Ranks act at staggered clocks; the shared log must observe ascending
  // virtual times regardless of host scheduling.
  const int n = 16;
  Conductor c(n);
  std::vector<std::pair<Time, int>> log;
  c.run([&](RankCtx& ctx) {
    // Rank r performs 10 actions at clocks r, r+n, r+2n, ...
    for (int i = 0; i < 10; ++i) {
      ctx.advance_to(static_cast<Time>(ctx.rank() + i * n));
      ctx.act([&] { log.emplace_back(ctx.now(), ctx.rank()); });
    }
  });
  ASSERT_EQ(log.size(), 160u);
  for (std::size_t i = 1; i < log.size(); ++i) {
    EXPECT_LE(log[i - 1].first, log[i].first)
        << "action " << i << " committed out of order";
  }
}

TEST(Conductor, TieBreakByRankId) {
  const int n = 8;
  Conductor c(n);
  std::vector<int> order;
  c.run([&](RankCtx& ctx) {
    ctx.act([&] { order.push_back(ctx.rank()); });
  });
  ASSERT_EQ(order.size(), static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) EXPECT_EQ(order[static_cast<std::size_t>(i)], i);
}

TEST(Conductor, EventWaitAdvancesToCompletionTime) {
  Conductor c(2);
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.advance(1000);
      ctx.act([&] { ctx.complete(*ev, 1500); });
    } else {
      ctx.wait_event(*ev);
      EXPECT_EQ(ctx.now(), 1500);
    }
  });
  EXPECT_EQ(c.finish_time(1), 1500);
}

TEST(Conductor, WaitOnAlreadyDoneEventJumpsForward) {
  Conductor c(2);
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.act([&] { ctx.complete(*ev, 700); });
    } else {
      ctx.advance(10'000);  // waiter is already past the completion time
      ctx.wait_event(*ev);
      EXPECT_EQ(ctx.now(), 10'000);  // clock never moves backwards
    }
  });
}

TEST(Conductor, CompleteBeforeActorClockThrows) {
  Conductor c(1);
  auto ev = std::make_shared<Event>();
  EXPECT_THROW(c.run([&](RankCtx& ctx) {
                 ctx.advance(100);
                 ctx.act([&] { ctx.complete(*ev, 50); });
               }),
               tpio::Error);
}

TEST(Conductor, DoubleCompleteThrows) {
  Conductor c(1);
  auto ev = std::make_shared<Event>();
  EXPECT_THROW(c.run([&](RankCtx& ctx) {
                 ctx.act([&] { ctx.complete(*ev, 1); });
                 ctx.act([&] { ctx.complete(*ev, 2); });
               }),
               tpio::Error);
}

TEST(Conductor, WaitAllEventsEndsAtMax) {
  Conductor c(2);
  auto e1 = std::make_shared<Event>();
  auto e2 = std::make_shared<Event>();
  auto e3 = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      ctx.act([&] {
        ctx.complete(*e1, 300);
        ctx.complete(*e2, 900);
        ctx.complete(*e3, 600);
      });
    } else {
      std::vector<EventPtr> evs{e1, e2, e3};
      ctx.wait_all_events(evs);
      EXPECT_EQ(ctx.now(), 900);
    }
  });
}

TEST(Conductor, TestEventSeesOnlyPastCompletions) {
  Conductor c(2);
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    if (ctx.rank() == 0) {
      // Completes the event with a *future* timestamp.
      ctx.act([&] { ctx.complete(*ev, 5000); });
    } else {
      ctx.advance(1000);
      EXPECT_FALSE(ctx.test_event(*ev));  // done, but at t=5000 > 1000
      ctx.advance_to(6000);
      EXPECT_TRUE(ctx.test_event(*ev));
    }
  });
}

TEST(Conductor, TestEventChargesPollCost) {
  Conductor c(1);
  auto ev = std::make_shared<Event>();
  c.run([&](RankCtx& ctx) {
    ctx.act([&] { ctx.complete(*ev, 0); });
    ctx.test_event(*ev, 25);
    EXPECT_EQ(ctx.now(), 25);
  });
}

TEST(Conductor, DeadlockDetected) {
  Conductor c(2);
  auto ev = std::make_shared<Event>();  // nobody completes it
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() == 1) ctx.wait_event(*ev);
    });
    FAIL() << "expected deadlock error";
  } catch (const tpio::Error& e) {
    EXPECT_NE(std::string(e.what()).find("deadlock"), std::string::npos);
  }
}

TEST(Conductor, AllRanksBlockedDeadlockDetected) {
  Conductor c(3);
  auto ev = std::make_shared<Event>();
  EXPECT_THROW(c.run([&](RankCtx& ctx) { ctx.wait_event(*ev); }), tpio::Error);
}

TEST(Conductor, ExceptionInOneRankPropagates) {
  Conductor c(4);
  auto ev = std::make_shared<Event>();
  try {
    c.run([&](RankCtx& ctx) {
      if (ctx.rank() == 2) throw std::runtime_error("boom");
      ctx.wait_event(*ev);  // would otherwise deadlock
    });
    FAIL() << "expected exception";
  } catch (const std::runtime_error& e) {
    // Either the original error or the deadlock/abort notice, depending on
    // which thread records first; the original must win when rank 2 is
    // first to fail.
    SUCCEED();
  }
}

TEST(Conductor, DeterministicScheduleAcrossRuns) {
  // The exact interleaving (and thus the shared log) must be identical on
  // every execution with identical programs.
  auto run_once = [] {
    Conductor c(8);
    std::vector<std::pair<Time, int>> log;
    auto ev = std::make_shared<Event>();
    c.run([&](RankCtx& ctx) {
      const int r = ctx.rank();
      ctx.advance(static_cast<sim::Duration>((r * 37) % 11));
      ctx.act([&] { log.emplace_back(ctx.now(), r); });
      if (r == 0) {
        ctx.advance(100);
        ctx.act([&] { ctx.complete(*ev, ctx.now() + 5); });
      } else {
        ctx.wait_event(*ev);
      }
      ctx.act([&] { log.emplace_back(ctx.now(), r); });
    });
    return log;
  };
  const auto a = run_once();
  const auto b = run_once();
  const auto d = run_once();
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, d);
}

TEST(Conductor, ManyRanksStress) {
  const int n = 128;
  Conductor c(n);
  std::vector<EventPtr> evs;
  for (int i = 0; i < n; ++i) evs.push_back(std::make_shared<Event>());
  // Chain: rank r waits for event r-1, then completes event r.
  c.run([&](RankCtx& ctx) {
    const int r = ctx.rank();
    if (r > 0) ctx.wait_event(*evs[static_cast<std::size_t>(r - 1)]);
    ctx.advance(10);
    ctx.act([&] { ctx.complete(*evs[static_cast<std::size_t>(r)], ctx.now()); });
  });
  // Serial chain: each rank adds 10ns.
  EXPECT_EQ(c.finish_time(n - 1), 10 * n);
  EXPECT_EQ(c.makespan(), 10 * n);
}

TEST(Conductor, ActionCounterCounts) {
  Conductor c(2);
  c.run([](RankCtx& ctx) {
    ctx.act([] {});
    ctx.act([] {});
  });
  EXPECT_GE(c.actions(), 4u);
}

TEST(Conductor, FinishTimeBeforeDoneThrows) {
  Conductor c(1);
  EXPECT_THROW((void)c.finish_time(0), tpio::Error);
  EXPECT_THROW((void)c.finish_time(5), tpio::Error);
}
