#include <gtest/gtest.h>

#include <functional>
#include <vector>

#include "pfs/pfs.hpp"
#include "sched/conductor.hpp"
#include "simbase/error.hpp"

namespace pfs = tpio::pfs;
namespace sim = tpio::sim;

namespace {

pfs::PfsParams fast_params() {
  pfs::PfsParams p;
  p.num_targets = 4;
  p.stripe_size = 1024;
  p.target_bw = 1e9;
  p.client_bw = 4e9;
  p.request_overhead = 100;
  p.storage_latency = 10;
  p.op_overhead = 0;
  return p;
}

std::byte pat(std::uint64_t o) {
  return static_cast<std::byte>((o * 29 + o / 700 + 3) & 0xFF);
}

std::vector<std::byte> region(std::uint64_t off, std::uint64_t len) {
  std::vector<std::byte> v(len);
  for (std::uint64_t i = 0; i < len; ++i) v[i] = pat(off + i);
  return v;
}

void solo(const std::function<void(sim::RankCtx&)>& fn) {
  sim::Conductor c(1);
  c.run(fn);
}

}  // namespace

TEST(PfsRead, RoundTripAfterWrite) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    const auto data = region(0, 10'000);
    f->write_at(ctx, 0, 0, data);
    std::vector<std::byte> out(10'000);
    f->read_at(ctx, 0, 0, out);
    EXPECT_EQ(out, data);
  });
}

TEST(PfsRead, UnalignedWindow) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    f->write_at(ctx, 0, 0, region(0, 8192));
    std::vector<std::byte> out(3000);
    f->read_at(ctx, 0, 700, out);  // crosses chunk boundaries unaligned
    EXPECT_EQ(out, region(700, 3000));
  });
}

TEST(PfsRead, HolesAndDigestModeReadZero) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto st = sys.create("s", pfs::Integrity::Store);
  auto dg = sys.create("d", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    st->write_at(ctx, 0, 2048, region(2048, 1024));
    std::vector<std::byte> out(1024, std::byte{0x7F});
    st->read_at(ctx, 0, 0, out);  // unwritten hole
    for (std::byte b : out) EXPECT_EQ(b, std::byte{0});

    dg->write_at(ctx, 0, 0, region(0, 1024));
    std::vector<std::byte> out2(1024, std::byte{0x7F});
    dg->read_at(ctx, 0, 0, out2);  // digest mode keeps no bytes
    for (std::byte b : out2) EXPECT_EQ(b, std::byte{0});
  });
}

TEST(PfsRead, TimingChargesTargetsAndClient) {
  auto p = fast_params();
  p.request_overhead = 0;
  p.storage_latency = 0;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    std::vector<std::byte> out(1024);
    f->read_at(ctx, 0, 0, out);
    // target 1024ns (1 B/ns) then client pull 256ns (4 B/ns).
    EXPECT_EQ(ctx.now(), 1024 + 256);
  });
}

TEST(PfsRead, AsyncReadOverlapsCompute) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    const auto data = region(0, 50'000);
    f->write_at(ctx, 0, 0, data);
    const sim::Time before = ctx.now();
    std::vector<std::byte> out(50'000);
    pfs::WriteOp op = f->start_read(ctx, 0, 0, out, true);
    EXPECT_EQ(ctx.now(), before);  // returns without advancing
    const sim::Time completion = op.completion();
    EXPECT_GT(completion, before);
    f->wait(ctx, op);
    EXPECT_EQ(ctx.now(), completion);
    EXPECT_EQ(out, data);
  });
}

TEST(PfsRead, AioPenaltyAppliesToAsyncReads) {
  auto p = fast_params();
  p.aio_penalty = 3.0;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    std::vector<std::byte> out(10'000);
    f->read_at(ctx, 0, 0, out);
    const sim::Time blocking = ctx.now();
    pfs::WriteOp op = f->start_read(ctx, 0, 0, out, true);
    f->wait(ctx, op);
    EXPECT_GT(ctx.now() - blocking, blocking);  // 3x slower async path
  });
}

TEST(PfsRead, StripedReadParallelizes) {
  auto p = fast_params();
  p.request_overhead = 0;
  p.storage_latency = 0;
  p.client_bw = 1e12;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  solo([&](sim::RankCtx& ctx) {
    std::vector<std::byte> out(4096);  // 4 chunks -> 4 targets
    f->read_at(ctx, 0, 0, out);
    EXPECT_LE(ctx.now(), 1100);
  });
}

TEST(PfsRead, ReadBeforeAsyncWriteCompletionSeesOldContents) {
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    const auto data = region(0, 10'000);
    pfs::WriteOp wr = f->iwrite_at(ctx, 0, 0, data);
    const sim::Time completion = wr.completion();
    ASSERT_GT(completion, ctx.now());

    // Content visibility follows the virtual timeline: a read issued while
    // the asynchronous write is still in flight observes the previous
    // contents (unwritten = zero), not the submitted bytes.
    std::vector<std::byte> early(10'000, std::byte{0x7F});
    pfs::WriteOp rd = f->start_read(ctx, 0, 0, early, false);
    f->wait(ctx, rd);
    for (std::byte b : early) ASSERT_EQ(b, std::byte{0});

    // Once the clock passes the write's completion, the data is there.
    f->wait(ctx, wr);
    EXPECT_GE(ctx.now(), completion);
    std::vector<std::byte> late(10'000);
    f->read_at(ctx, 0, 0, late);
    EXPECT_EQ(late, data);
  });
}

TEST(PfsRead, AsyncWriteSnapshotsContentAtSubmission) {
  // aio submission semantics: the file keeps the bytes as they were when
  // the write was issued, even if the caller reuses its buffer right away
  // (exactly what the double-buffered overlap schedulers do).
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto f = sys.create("t", pfs::Integrity::Store);
  solo([&](sim::RankCtx& ctx) {
    auto data = region(0, 4096);
    pfs::WriteOp wr = f->iwrite_at(ctx, 0, 0, data);
    std::fill(data.begin(), data.end(), std::byte{0xEE});  // reuse buffer
    f->wait(ctx, wr);
    std::vector<std::byte> out(4096);
    f->read_at(ctx, 0, 0, out);
    EXPECT_EQ(out, region(0, 4096));
  });
}

TEST(PfsRead, VerifyAndReadBackFlushInFlightWrites) {
  // Post-run inspection treats every scheduled write as complete, in both
  // content-retaining integrity modes — even if no rank ever waited.
  pfs::StorageSystem sys(fast_params(), nullptr);
  auto st = sys.create("s", pfs::Integrity::Store);
  auto dg = sys.create("d", pfs::Integrity::Digest);
  solo([&](sim::RankCtx& ctx) {
    (void)st->iwrite_at(ctx, 0, 0, region(0, 6000));
    (void)dg->iwrite_at(ctx, 0, 0, region(0, 6000));
  });
  EXPECT_EQ(st->read_back(0, 6000), region(0, 6000));
  EXPECT_EQ(st->verify(pat), "");
  EXPECT_EQ(dg->verify(pat), "");
}

TEST(PfsRead, ConcurrentReadersShareTargets) {
  auto p = fast_params();
  p.num_targets = 1;
  p.request_overhead = 0;
  p.storage_latency = 0;
  p.client_bw = 1e12;
  pfs::StorageSystem sys(p, nullptr);
  auto f = sys.create("t", pfs::Integrity::None);
  sim::Conductor c(2);
  std::vector<sim::Time> done(2);
  c.run([&](sim::RankCtx& ctx) {
    std::vector<std::byte> out(4096);
    f->read_at(ctx, ctx.rank(), static_cast<std::uint64_t>(ctx.rank()) * 4096,
               out);
    done[static_cast<std::size_t>(ctx.rank())] = ctx.now();
  });
  EXPECT_GE(std::max(done[0], done[1]), 8192);
}
