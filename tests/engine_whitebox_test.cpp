// White-box tests of the Engine's phase operations: scheduler invariants,
// misuse detection, and the timing mechanisms the overlap algorithms rely
// on (write pipelining, progress blackouts, sub-buffer double buffering).

#include <gtest/gtest.h>

#include <vector>

#include "core/engine.hpp"
#include "simbase/error.hpp"
#include "test_rig.hpp"

namespace coll = tpio::coll;
namespace pfs = tpio::pfs;
namespace sim = tpio::sim;
using tpio::test::Cluster;
using tpio::test::ClusterSpec;
using tpio::test::file_byte;
using tpio::test::fill_view;

namespace {

coll::FileView block_view(int rank, std::uint64_t n) {
  coll::FileView v;
  v.extents.push_back(coll::Extent{static_cast<std::uint64_t>(rank) * n, n});
  return v;
}

coll::Options two_slot_options() {
  coll::Options o;
  o.cb_size = 8192;  // sub-buffer 4096 with overlap
  o.overlap = coll::OverlapMode::WriteComm2;
  return o;
}

/// Run a program that drives Engine phases manually on every rank.
template <class F>
void drive(Cluster& cluster, const coll::Options& opt, std::uint64_t block,
           F&& f, pfs::Integrity integrity = pfs::Integrity::Store) {
  auto file = cluster.storage().create("wb", integrity);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), block);
    const auto data = fill_view(view);
    auto blobs = mpi.allgatherv(view.serialize());
    std::vector<coll::FileView> views;
    for (const auto& b : blobs) views.push_back(coll::FileView::deserialize(b));
    coll::Plan plan(std::move(views),
                    mpi.machine().fabric().topology(), file->stripe_size(),
                    opt);
    coll::PhaseTimings t;
    coll::Engine engine(mpi, *file, plan, data, opt, t);
    f(engine, plan, mpi);
  });
}

}  // namespace

TEST(EngineWhitebox, ManualPhaseSequenceWritesCorrectly) {
  Cluster cluster;
  auto file = cluster.storage().create("wb", pfs::Integrity::Store);
  const std::uint64_t block = 6000;
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    const coll::FileView view = block_view(mpi.rank(), block);
    const auto data = fill_view(view);
    auto blobs = mpi.allgatherv(view.serialize());
    std::vector<coll::FileView> views;
    for (const auto& b : blobs) views.push_back(coll::FileView::deserialize(b));
    coll::Options opt = two_slot_options();
    coll::Plan plan(std::move(views), mpi.machine().fabric().topology(),
                    file->stripe_size(), opt);
    coll::PhaseTimings t;
    coll::Engine engine(mpi, *file, plan, data, opt, t);
    // Hand-rolled no-overlap schedule on the two-slot engine.
    for (int c = 0; c < plan.num_cycles(); ++c) {
      engine.shuffle_blocking(c, c % 2);
      engine.write_blocking(c, c % 2);
    }
  });
  EXPECT_EQ(file->verify(file_byte), "");
}

TEST(EngineWhitebox, ShuffleIntoPendingWriteThrows) {
  Cluster cluster;
  EXPECT_THROW(
      drive(cluster, two_slot_options(), 6000,
            [](coll::Engine& e, const coll::Plan& plan, tpio::smpi::Mpi&) {
              ASSERT_GE(plan.num_cycles(), 2);
              e.shuffle_blocking(0, 0);
              e.write_init(0, 0);
              // Refilling slot 0 while its write is in flight is the bug
              // class the double-buffer invariant catches.
              e.shuffle_init(1, 0);
            }),
      tpio::Error);
}

TEST(EngineWhitebox, DoubleShuffleInitThrows) {
  Cluster cluster;
  EXPECT_THROW(
      drive(cluster, two_slot_options(), 6000,
            [](coll::Engine& e, const coll::Plan&, tpio::smpi::Mpi&) {
              e.shuffle_init(0, 0);
              e.shuffle_init(1, 0);
            }),
      tpio::Error);
}

TEST(EngineWhitebox, ShuffleWaitWithoutInitThrows) {
  Cluster cluster;
  EXPECT_THROW(drive(cluster, two_slot_options(), 6000,
                     [](coll::Engine& e, const coll::Plan&, tpio::smpi::Mpi&) {
                       e.shuffle_wait(0);
                     }),
               tpio::Error);
}

TEST(EngineWhitebox, WriteInitDuringShuffleThrows) {
  Cluster cluster;
  EXPECT_THROW(
      drive(cluster, two_slot_options(), 6000,
            [](coll::Engine& e, const coll::Plan&, tpio::smpi::Mpi&) {
              e.shuffle_init(0, 0);
              e.write_init(0, 0);  // sub-buffer still filling
            }),
      tpio::Error);
}

TEST(EngineWhitebox, DoubleWriteInitThrows) {
  Cluster cluster;
  EXPECT_THROW(
      drive(cluster, two_slot_options(), 6000,
            [](coll::Engine& e, const coll::Plan& plan, tpio::smpi::Mpi&) {
              ASSERT_GE(plan.num_cycles(), 2);
              e.shuffle_blocking(0, 0);
              e.write_init(0, 0);
              e.write_init(1, 0);
            }),
      tpio::Error);
}

TEST(EngineWhitebox, AsyncWritePipelinesAcrossSlots) {
  // The write of cycle 0 must drain while cycle 1 shuffles: the engine's
  // write_wait after an interleaved shuffle ends no later than issuing
  // both writes back-to-back blocking.
  ClusterSpec spec;
  Cluster interleaved(spec), serial(spec);
  const std::uint64_t block = 6000;

  sim::Time t_inter = 0, t_serial = 0;
  {
    drive(interleaved, two_slot_options(), block,
          [&](coll::Engine& e, const coll::Plan& plan, tpio::smpi::Mpi& mpi) {
            ASSERT_GE(plan.num_cycles(), 2);
            e.shuffle_blocking(0, 0);
            e.write_init(0, 0);
            e.shuffle_blocking(1, 1);  // overlaps write 0
            e.write_init(1, 1);
            e.write_wait(0);
            e.write_wait(1);
            for (int c = 2; c < plan.num_cycles(); ++c) {
              e.shuffle_blocking(c, c % 2);
              e.write_blocking(c, c % 2);
            }
            if (mpi.rank() == 0) t_inter = mpi.ctx().now();
          });
  }
  {
    drive(serial, two_slot_options(), block,
          [&](coll::Engine& e, const coll::Plan& plan, tpio::smpi::Mpi& mpi) {
            for (int c = 0; c < plan.num_cycles(); ++c) {
              e.shuffle_blocking(c, c % 2);
              e.write_blocking(c, c % 2);
            }
            if (mpi.rank() == 0) t_serial = mpi.ctx().now();
          });
  }
  EXPECT_LT(t_inter, t_serial);
}

TEST(EngineWhitebox, BlockingWriteDeclaresProgressBlackout) {
  // During an aggregator's blocking write, a rendezvous handshake from a
  // late sender must stall until the write completes.
  ClusterSpec spec;
  spec.mpi.eager_limit = 512;  // force rendezvous
  Cluster cluster(spec);
  std::vector<sim::Time> done(static_cast<std::size_t>(cluster.nprocs()), 0);

  auto file = cluster.storage().create("wb", pfs::Integrity::None);
  cluster.run([&](tpio::smpi::Mpi& mpi) {
    // Rank 0 acts as an "aggregator": posts a receive, then blocks in a
    // large write; rank 1 sends after the write started.
    const std::size_t n = 4096;
    if (mpi.rank() == 0) {
      std::vector<std::byte> buf(n);
      tpio::smpi::Request r = mpi.irecv(1, 9, buf);
      std::vector<std::byte> payload(200'000, std::byte{1});
      pfs::WriteOp op = file->start_write(mpi.ctx(), 0, 0, payload, false);
      mpi.set_unavailable_until(op.completion());
      const sim::Time write_end = op.completion();
      file->wait(mpi.ctx(), op);
      mpi.wait(r);
      // The transfer could not finish before the write returned.
      EXPECT_GE(mpi.ctx().now(), write_end);
    } else if (mpi.rank() == 1) {
      mpi.ctx().advance(sim::microseconds(5));
      mpi.send(0, 9, std::vector<std::byte>(n, std::byte{2}));
    }
  });
}

TEST(EngineWhitebox, RunMatchesManualSchedule) {
  // Engine::run() with OverlapMode::None equals the hand-rolled
  // shuffle+write loop, timing included.
  auto manual = [] {
    ClusterSpec spec;
    Cluster cluster(spec);
    sim::Time t = 0;
    coll::Options o;
    o.cb_size = 8192;
    o.overlap = coll::OverlapMode::None;
    drive(cluster, o, 6000,
          [&](coll::Engine& e, const coll::Plan& plan, tpio::smpi::Mpi& mpi) {
            for (int c = 0; c < plan.num_cycles(); ++c) {
              e.shuffle_blocking(c, 0);
              e.write_blocking(c, 0);
            }
            if (mpi.rank() == 0) t = mpi.ctx().now();
          });
    return t;
  };
  auto automatic = [] {
    ClusterSpec spec;
    Cluster cluster(spec);
    sim::Time t = 0;
    coll::Options o;
    o.cb_size = 8192;
    o.overlap = coll::OverlapMode::None;
    drive(cluster, o, 6000,
          [&](coll::Engine& e, const coll::Plan&, tpio::smpi::Mpi& mpi) {
            e.run();
            if (mpi.rank() == 0) t = mpi.ctx().now();
          });
    return t;
  };
  EXPECT_EQ(manual(), automatic());
}
