#include <gtest/gtest.h>

#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "simbase/error.hpp"

namespace net = tpio::net;
namespace sim = tpio::sim;

TEST(Topology, BlockMapping) {
  net::Topology t{4, 8};
  EXPECT_EQ(t.nprocs(), 32);
  EXPECT_EQ(t.node_of(0), 0);
  EXPECT_EQ(t.node_of(7), 0);
  EXPECT_EQ(t.node_of(8), 1);
  EXPECT_EQ(t.node_of(31), 3);
  EXPECT_TRUE(t.same_node(0, 7));
  EXPECT_FALSE(t.same_node(7, 8));
}

TEST(Topology, RankOutOfRangeThrows) {
  net::Topology t{2, 4};
  EXPECT_THROW(t.node_of(8), tpio::Error);
  EXPECT_THROW(t.node_of(-1), tpio::Error);
}

TEST(Topology, FitRoundsUp) {
  auto t = net::Topology::fit(33, 8);
  EXPECT_EQ(t.nodes, 5);
  EXPECT_EQ(t.procs_per_node, 8);
  auto exact = net::Topology::fit(32, 8);
  EXPECT_EQ(exact.nodes, 4);
}

TEST(Topology, ValidateCatchesMalformedShapes) {
  // Aggregate initialization bypasses fit()'s checks; the centralized
  // validate() must still reject malformed shapes on first use.
  EXPECT_THROW((net::Topology{0, 2}.nprocs()), tpio::Error);
  EXPECT_THROW((net::Topology{2, 0}.node_of(0)), tpio::Error);
  // More ranks than the machine holds.
  EXPECT_THROW((net::Topology{2, 2, 5}.nprocs()), tpio::Error);
  // Rank count so small a non-last node would sit empty.
  EXPECT_THROW((net::Topology{2, 2, 2}.nprocs()), tpio::Error);
  EXPECT_THROW((net::Topology{2, 2, -1}.nprocs()), tpio::Error);
  // Partial last node is the one legal shortfall.
  EXPECT_EQ((net::Topology{2, 2, 3}.nprocs()), 3);
  EXPECT_EQ((net::Topology{2, 2, 0}.nprocs()), 4);
}

TEST(Topology, FabricConstructorValidates) {
  const net::Topology bad{3, 4, 2};  // would leave two nodes empty
  EXPECT_THROW(net::Fabric(bad, net::FabricParams{}), tpio::Error);
}

namespace {

net::FabricParams flat_params() {
  net::FabricParams p;
  p.inter_bw = 1e9;   // 1 byte/ns
  p.intra_bw = 4e9;   // 4 bytes/ns
  p.inter_latency = 100;
  p.intra_latency = 10;
  p.noise_sigma = 0.0;
  return p;
}

}  // namespace

TEST(Fabric, SingleInterNodeMessage) {
  net::Topology topo{2, 1};
  net::Fabric f(topo, flat_params());
  // 1000 bytes at 1 byte/ns + 100ns latency, departing at t=0.
  const sim::Time arr = f.transfer(0, 1, 1000, 0);
  EXPECT_EQ(arr, 100 + 1000);
  EXPECT_EQ(f.inter_node_bytes(), 1000u);
  EXPECT_EQ(f.inter_node_messages(), 1u);
  EXPECT_EQ(f.intra_node_bytes(), 0u);
}

TEST(Fabric, IntraNodeUsesMemoryChannel) {
  net::Topology topo{1, 2};
  net::Fabric f(topo, flat_params());
  // 1000 bytes at 4 bytes/ns = 250ns + 10ns latency.
  const sim::Time arr = f.transfer(0, 1, 1000, 0);
  EXPECT_EQ(arr, 10 + 250);
  EXPECT_EQ(f.inter_node_bytes(), 0u);
  EXPECT_EQ(f.inter_node_messages(), 0u);
  EXPECT_EQ(f.intra_node_bytes(), 1000u);
}

TEST(Fabric, TrafficCountersSplitByLocality) {
  net::Topology topo{2, 2};
  net::Fabric f(topo, flat_params());
  f.transfer(0, 1, 300, 0);  // same node
  f.transfer(0, 2, 500, 0);  // crosses
  f.transfer(3, 1, 700, 0);  // crosses
  EXPECT_EQ(f.intra_node_bytes(), 300u);
  EXPECT_EQ(f.inter_node_bytes(), 1200u);
  EXPECT_EQ(f.inter_node_messages(), 2u);
}

TEST(Fabric, IncastSerializesAtReceiverNic) {
  net::Topology topo{3, 1};
  net::Fabric f(topo, flat_params());
  // Two senders to the same node, both depart at 0. Second is delayed by
  // the receive channel.
  const sim::Time a = f.transfer(0, 2, 1000, 0);
  const sim::Time b = f.transfer(1, 2, 1000, 0);
  EXPECT_EQ(a, 1100);
  EXPECT_EQ(b, 2100);  // queued behind the first at the rx channel
}

TEST(Fabric, OutcastSerializesAtSenderNic) {
  net::Topology topo{3, 1};
  net::Fabric f(topo, flat_params());
  const sim::Time a = f.transfer(0, 1, 1000, 0);
  const sim::Time b = f.transfer(0, 2, 1000, 0);
  EXPECT_EQ(a, 1100);
  EXPECT_EQ(b, 2100);  // tx channel busy until 2000
}

TEST(Fabric, DisjointPairsDoNotContend) {
  net::Topology topo{4, 1};
  net::Fabric f(topo, flat_params());
  const sim::Time a = f.transfer(0, 1, 1000, 0);
  const sim::Time b = f.transfer(2, 3, 1000, 0);
  EXPECT_EQ(a, 1100);
  EXPECT_EQ(b, 1100);
}

TEST(Fabric, LaterDepartureRespected) {
  net::Topology topo{2, 1};
  net::Fabric f(topo, flat_params());
  const sim::Time arr = f.transfer(0, 1, 500, 5000);
  EXPECT_EQ(arr, 5000 + 100 + 500);
}

TEST(Fabric, ZeroByteMessageIsLatencyOnly) {
  net::Topology topo{2, 1};
  net::Fabric f(topo, flat_params());
  EXPECT_EQ(f.transfer(0, 1, 0, 0), 100);
}

TEST(Fabric, WireTime) {
  net::Topology topo{2, 1};
  net::Fabric f(topo, flat_params());
  EXPECT_EQ(f.wire_time(4096), 4096);
}

TEST(Fabric, ReserveTxOccupiesTransmit) {
  net::Topology topo{2, 1};
  net::Fabric f(topo, flat_params());
  EXPECT_EQ(f.reserve_tx(0, 1000, 0), 1000);
  // An MPI message from the same node now queues behind the storage push.
  EXPECT_EQ(f.transfer(0, 1, 1000, 0), 100 + 2000);
}

TEST(Fabric, NoiseChangesTimesDeterministically) {
  net::Topology topo{2, 1};
  auto p = flat_params();
  p.noise_sigma = 0.1;
  p.noise_seed = 42;

  net::Fabric f1(topo, p), f2(topo, p);
  const sim::Time a1 = f1.transfer(0, 1, 100000, 0);
  const sim::Time a2 = f2.transfer(0, 1, 100000, 0);
  EXPECT_EQ(a1, a2);  // same seed -> identical

  p.noise_seed = 43;
  net::Fabric f3(topo, p);
  EXPECT_NE(f3.transfer(0, 1, 100000, 0), a1);  // different seed -> differs
}

TEST(Fabric, ManyMessagesAggregateBandwidth) {
  // 10 senders, one receiver: total time ~ n * size / bw at the rx channel.
  net::Topology topo{11, 1};
  net::Fabric f(topo, flat_params());
  sim::Time last = 0;
  for (int s = 0; s < 10; ++s) {
    last = std::max(last, f.transfer(s, 10, 10'000, 0));
  }
  EXPECT_GE(last, 100'000);          // serialized on rx
  EXPECT_LE(last, 100'000 + 2000);   // but only endpoint-limited
}
