#include <gtest/gtest.h>

#include "sched/timeline.hpp"
#include "simbase/error.hpp"
#include "simbase/rng.hpp"

namespace sim = tpio::sim;
using sim::Timeline;

TEST(Timeline, FifoServiceFromIdle) {
  Timeline t;
  auto a = t.reserve(0, 100);
  EXPECT_EQ(a.start, 0);
  EXPECT_EQ(a.end, 100);
  auto b = t.reserve(0, 50);
  EXPECT_EQ(b.start, 100);  // queued behind a
  EXPECT_EQ(b.end, 150);
}

TEST(Timeline, IdleGapRespected) {
  Timeline t;
  t.reserve(0, 10);
  auto b = t.reserve(1000, 10);  // resource idle between 10 and 1000
  EXPECT_EQ(b.start, 1000);
  EXPECT_EQ(b.end, 1010);
  EXPECT_EQ(t.next_free(), 1010);
}

TEST(Timeline, ZeroDurationReservation) {
  Timeline t;
  auto a = t.reserve(5, 0);
  EXPECT_EQ(a.start, 5);
  EXPECT_EQ(a.end, 5);
}

TEST(Timeline, BusyTimeAccumulates) {
  Timeline t;
  t.reserve(0, 100);
  t.reserve(500, 200);
  EXPECT_EQ(t.busy_time(), 300);
}

TEST(Timeline, NegativeArgumentsThrow) {
  Timeline t;
  EXPECT_THROW(t.reserve(-1, 10), tpio::Error);
  EXPECT_THROW(t.reserve(0, -10), tpio::Error);
}

TEST(Timeline, NoiseInflatesButStaysPositive) {
  sim::NoiseModel noise(0.2, 99);
  Timeline t;
  t.set_noise(&noise);
  sim::Duration total = 0;
  for (int i = 0; i < 200; ++i) {
    auto iv = t.reserve(0, 1000);
    const auto d = iv.end - iv.start;
    EXPECT_GE(d, 1);
    total += d;
  }
  // Lognormal(0.2) mean ~ 1.02: total near 200k, definitely not exactly.
  EXPECT_GT(total, 150'000);
  EXPECT_LT(total, 280'000);
  EXPECT_NE(total, 200'000);
}

TEST(Timeline, NoiseDeterministicPerSeed) {
  auto run = [] {
    sim::NoiseModel noise(0.1, 4242);
    Timeline t;
    t.set_noise(&noise);
    for (int i = 0; i < 50; ++i) t.reserve(0, 777);
    return t.next_free();
  };
  EXPECT_EQ(run(), run());
}

TEST(Timeline, ZeroDurationNotNoised) {
  sim::NoiseModel noise(0.5, 1);
  Timeline t;
  t.set_noise(&noise);
  auto iv = t.reserve(10, 0);
  EXPECT_EQ(iv.start, iv.end);
}
